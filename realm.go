package proxykit

import (
	"fmt"
	"sync"
	"time"

	"proxykit/internal/authz"
	"proxykit/internal/clock"
	"proxykit/internal/endserver"
	"proxykit/internal/group"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"

	acctpkg "proxykit/internal/accounting"
)

// Identity couples a principal with its signing keys.
type Identity = pubkey.Identity

// AuthzServer is an authorization server (§3.2).
type AuthzServer = authz.Server

// AuthzRule is one authorization-database rule.
type AuthzRule = authz.Rule

// GroupServer is a group server (§3.3).
type GroupServer = group.Server

// Realm wires an in-process proxykit deployment: a public-key directory
// (the name server of §6.1), a shared clock, and constructors for every
// service. It is the quickest way to use the library; distributed
// deployments use the cmd/ daemons instead.
type Realm struct {
	// Name is the realm name appended to principal names.
	Name string
	// Clock is the time source shared by all components; replace it
	// before creating identities/servers to control time in tests.
	Clock clock.Clock

	mu        sync.Mutex
	directory *pubkey.Directory
	ids       map[principal.ID]*pubkey.Identity
}

// NewRealm creates a realm using the system clock.
func NewRealm(name string) *Realm {
	return &Realm{
		Name:      name,
		Clock:     clock.System{},
		directory: pubkey.NewDirectory(),
		ids:       make(map[principal.ID]*pubkey.Identity),
	}
}

// Directory exposes the realm's key directory.
func (r *Realm) Directory() *pubkey.Directory { return r.directory }

// NewIdentity creates and registers an identity for name@realm.
func (r *Realm) NewIdentity(name string) (*Identity, error) {
	id := principal.New(name, r.Name)
	ident, err := pubkey.NewIdentity(id)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ids[id]; ok {
		return nil, fmt.Errorf("proxykit: identity %s already exists", id)
	}
	r.ids[id] = ident
	r.directory.RegisterIdentity(ident)
	return ident, nil
}

// Identity returns a previously created identity.
func (r *Realm) Identity(name string) (*Identity, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ident, ok := r.ids[principal.New(name, r.Name)]
	return ident, ok
}

// VerifyEnvFor builds a verification environment for a server identity.
// If the realm holds the server's identity, the environment can also
// unseal hybrid-mode proxy keys addressed to it (§6.1).
func (r *Realm) VerifyEnvFor(server Principal) *VerifyEnv {
	env := &proxy.VerifyEnv{
		Server:          server,
		Clock:           r.Clock,
		MaxSkew:         time.Minute,
		ResolveIdentity: r.directory.Resolver(),
	}
	r.mu.Lock()
	ident, ok := r.ids[server]
	r.mu.Unlock()
	if ok && ident.ECDH() != nil {
		env.UnsealProxyKey = proxy.UnsealWithECDH(ident.ECDH())
	}
	return env
}

// GrantCapability creates a bearer proxy from grantor with the given
// restrictions — a capability in the sense of §3.1.
func (r *Realm) GrantCapability(grantor *Identity, lifetime time.Duration, restrictions ...Restriction) (*Proxy, error) {
	return proxy.Grant(proxy.GrantParams{
		Grantor:       grantor.ID,
		GrantorSigner: grantor.Signer(),
		Restrictions:  restrict.Set(restrictions),
		Lifetime:      lifetime,
		Mode:          proxy.ModePublicKey,
		Clock:         r.Clock,
	})
}

// GrantConventional creates a conventional-cryptography capability in
// hybrid mode (§6.1): the proxy key is sealed to the end-server's
// published X25519 key, looked up in the realm directory, so only that
// server can check proof of possession.
func (r *Realm) GrantConventional(grantor *Identity, endServer Principal, lifetime time.Duration, restrictions ...Restriction) (*Proxy, error) {
	encPub, err := r.directory.LookupEncryption(endServer)
	if err != nil {
		return nil, err
	}
	rs := restrict.Set(restrictions)
	rs = rs.Merge(restrict.Set{restrict.IssuedFor{Servers: []Principal{endServer}}})
	return proxy.Grant(proxy.GrantParams{
		Grantor:       grantor.ID,
		GrantorSigner: grantor.Signer(),
		Restrictions:  rs,
		Lifetime:      lifetime,
		Mode:          proxy.ModeConventional,
		EndServerECDH: encPub,
		Clock:         r.Clock,
	})
}

// GrantDelegate creates a delegate proxy from grantor usable only by
// the named grantees.
func (r *Realm) GrantDelegate(grantor *Identity, grantees []Principal, lifetime time.Duration, restrictions ...Restriction) (*Proxy, error) {
	rs := restrict.Set{restrict.Grantee{Principals: grantees}}
	rs = rs.Merge(restrict.Set(restrictions))
	return proxy.Grant(proxy.GrantParams{
		Grantor:       grantor.ID,
		GrantorSigner: grantor.Signer(),
		Restrictions:  rs,
		Lifetime:      lifetime,
		Mode:          proxy.ModePublicKey,
		Clock:         r.Clock,
	})
}

// NewEndServer creates an application end-server with an identity in
// the realm.
func (r *Realm) NewEndServer(name string) (*EndServer, error) {
	ident, err := r.NewIdentity(name)
	if err != nil {
		return nil, err
	}
	return endserver.New(ident.ID, r.VerifyEnvFor(ident.ID), r.Clock), nil
}

// NewAuthzServer creates an authorization server (§3.2).
func (r *Realm) NewAuthzServer(name string) (*AuthzServer, error) {
	ident, err := r.NewIdentity(name)
	if err != nil {
		return nil, err
	}
	return authz.New(ident, r.Clock), nil
}

// NewGroupServer creates a group server (§3.3).
func (r *Realm) NewGroupServer(name string) (*GroupServer, error) {
	ident, err := r.NewIdentity(name)
	if err != nil {
		return nil, err
	}
	return group.New(ident, r.Clock), nil
}

// NewAccountingServer creates an accounting server (§4).
func (r *Realm) NewAccountingServer(name string) (*AccountingServer, error) {
	ident, err := r.NewIdentity(name)
	if err != nil {
		return nil, err
	}
	return acctpkg.NewServer(ident, r.directory.Resolver(), r.Clock), nil
}
