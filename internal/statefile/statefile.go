// Package statefile persists deployment state for the cmd/ daemons: a
// shared public-key directory file (the name server's database) and
// per-principal identity files holding private key seeds.
//
// The layout under a state directory is:
//
//	directory.json          name -> base64 public key
//	identities/<name>.json  private key seed (mode 0600)
//
// This is a development-deployment convenience; the trust root is the
// shared directory file, standing in for the authentication/name server
// of §6.1.
package statefile

import (
	"crypto/ed25519"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
)

// ErrNoIdentity is returned when an identity file does not exist.
var ErrNoIdentity = errors.New("statefile: identity not found")

// directoryFile is the shared directory's on-disk name.
const directoryFile = "directory.json"

// identityFile holds one principal's private keys: the Ed25519 signing
// seed and the X25519 encryption key.
type identityFile struct {
	Principal string `json:"principal"`
	SeedB64   string `json:"seed"`
	EncB64    string `json:"enc,omitempty"`
}

// identityPath returns the path for a principal's identity file.
func identityPath(stateDir string, id principal.ID) string {
	safe := strings.NewReplacer("/", "_", "@", "_at_").Replace(id.String())
	return filepath.Join(stateDir, "identities", safe+".json")
}

// CreateIdentity generates a new identity, saves its seed, and adds its
// public key to the shared directory.
func CreateIdentity(stateDir string, id principal.ID) (*pubkey.Identity, error) {
	seed, err := kcrypto.Nonce(ed25519.SeedSize)
	if err != nil {
		return nil, err
	}
	ident, err := pubkey.IdentityFromSeed(id, seed)
	if err != nil {
		return nil, err
	}
	path := identityPath(stateDir, id)
	if err := os.MkdirAll(filepath.Dir(path), 0o700); err != nil {
		return nil, fmt.Errorf("statefile: %w", err)
	}
	raw, err := json.MarshalIndent(identityFile{
		Principal: id.String(),
		SeedB64:   base64.StdEncoding.EncodeToString(seed),
		EncB64:    base64.StdEncoding.EncodeToString(ident.ECDH().Bytes()),
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		return nil, fmt.Errorf("statefile: %w", err)
	}
	if err := AddToDirectory(stateDir, id, ident.Public()); err != nil {
		return nil, err
	}
	return ident, nil
}

// LoadIdentity reads a previously created identity.
func LoadIdentity(stateDir string, id principal.ID) (*pubkey.Identity, error) {
	raw, err := os.ReadFile(identityPath(stateDir, id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNoIdentity, id)
		}
		return nil, fmt.Errorf("statefile: %w", err)
	}
	var f identityFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("statefile: parse identity: %w", err)
	}
	seed, err := base64.StdEncoding.DecodeString(f.SeedB64)
	if err != nil {
		return nil, fmt.Errorf("statefile: decode seed: %w", err)
	}
	if f.EncB64 == "" {
		// Legacy file without an encryption key: derive the signing
		// identity and a fresh encryption key.
		return pubkey.IdentityFromSeed(id, seed)
	}
	encPriv, err := base64.StdEncoding.DecodeString(f.EncB64)
	if err != nil {
		return nil, fmt.Errorf("statefile: decode enc key: %w", err)
	}
	return pubkey.IdentityFromKeys(id, seed, encPriv)
}

// LoadOrCreateIdentity loads an identity, creating it on first use.
func LoadOrCreateIdentity(stateDir string, id principal.ID) (*pubkey.Identity, error) {
	ident, err := LoadIdentity(stateDir, id)
	if err == nil {
		return ident, nil
	}
	if !errors.Is(err, ErrNoIdentity) {
		return nil, err
	}
	return CreateIdentity(stateDir, id)
}

// AddToDirectory records a public key binding in the shared directory
// file. Concurrent registrations (several daemons starting at once) are
// serialized with a lock file and committed with an atomic rename so a
// registration can neither be lost nor observed half-written.
func AddToDirectory(stateDir string, id principal.ID, pk *kcrypto.PublicKey) error {
	if err := os.MkdirAll(stateDir, 0o700); err != nil {
		return fmt.Errorf("statefile: %w", err)
	}
	unlock, err := lockDir(stateDir)
	if err != nil {
		return err
	}
	defer unlock()

	path := filepath.Join(stateDir, directoryFile)
	entries := map[string]string{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &entries); err != nil {
			return fmt.Errorf("statefile: parse directory: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("statefile: %w", err)
	}
	entries[id.String()] = base64.StdEncoding.EncodeToString(pk.Bytes())
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("statefile: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("statefile: %w", err)
	}
	return nil
}

// staleLockAge is how old a lock file must be before a waiter may break
// it (a crashed daemon must not wedge the deployment forever).
const staleLockAge = time.Minute

// lockDir takes an exclusive advisory lock on the state directory via a
// lock file, retrying briefly; it returns an unlock function.
//
// The lock file holds an owner token (random nonce + pid). The token
// closes two races the bare create/remove protocol had:
//
//   - Unlock removes the file only while it still holds this owner's
//     token. Without that check, a lock broken as stale and re-acquired
//     by a second process would then be removed by the original owner's
//     deferred unlock, silently unlocking the third waiter too.
//
//   - A stale lock is broken by renaming it to a unique name first and
//     removing the renamed file. Rename is atomic, so of N waiters that
//     all saw the same stale lock, exactly one wins; with a bare
//     os.Remove, a laggard waiter could delete a *fresh* lock that a
//     faster waiter had already created in the window.
func lockDir(stateDir string) (func(), error) {
	lock := filepath.Join(stateDir, ".lock")
	nonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	token := fmt.Sprintf("%x pid=%d\n", nonce, os.Getpid())
	deadline := time.Now().Add(5 * time.Second)
	for {
		f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
		if err == nil {
			_, werr := f.WriteString(token)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				_ = os.Remove(lock)
				return nil, fmt.Errorf("statefile: lock: %w", werr)
			}
			return func() {
				if cur, err := os.ReadFile(lock); err == nil && string(cur) == token {
					_ = os.Remove(lock)
				}
			}, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("statefile: lock: %w", err)
		}
		if info, serr := os.Stat(lock); serr == nil && time.Since(info.ModTime()) > staleLockAge {
			breakStaleLock(lock)
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("statefile: lock: timed out waiting for %s", lock)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// breakStaleLock removes a stale lock file without racing other
// waiters: the lock is renamed aside (atomic — of all waiters that saw
// the same stale lock, exactly one rename succeeds) and deleted only if
// the renamed file really is the stale one, not a fresh lock that
// slipped in between the caller's Stat and the rename.
func breakStaleLock(lock string) {
	nonce, err := kcrypto.Nonce(8)
	if err != nil {
		return
	}
	aside := fmt.Sprintf("%s.stale.%x", lock, nonce)
	if err := os.Rename(lock, aside); err != nil {
		return // someone else broke or released it first
	}
	if info, err := os.Stat(aside); err == nil && time.Since(info.ModTime()) > staleLockAge {
		_ = os.Remove(aside)
		return
	}
	// A live lock was displaced: link it back under the lock name (Link
	// never clobbers — if a new lock already took the name, the aside
	// copy is dropped and the displaced owner's unlock sees a token
	// mismatch and leaves the new lock alone).
	_ = os.Link(aside, lock)
	_ = os.Remove(aside)
}

// LoadDirectory reads the shared directory file into a Directory. A
// missing file yields an empty directory.
func LoadDirectory(stateDir string) (*pubkey.Directory, error) {
	dir := pubkey.NewDirectory()
	raw, err := os.ReadFile(filepath.Join(stateDir, directoryFile))
	if err != nil {
		if os.IsNotExist(err) {
			return dir, nil
		}
		return nil, fmt.Errorf("statefile: %w", err)
	}
	entries := map[string]string{}
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("statefile: parse directory: %w", err)
	}
	for name, b64 := range entries {
		id, err := principal.Parse(name)
		if err != nil {
			return nil, fmt.Errorf("statefile: directory entry %q: %w", name, err)
		}
		keyRaw, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return nil, fmt.Errorf("statefile: directory entry %q: %w", name, err)
		}
		pk, err := kcrypto.PublicKeyFromBytes(keyRaw)
		if err != nil {
			return nil, fmt.Errorf("statefile: directory entry %q: %w", name, err)
		}
		dir.Register(id, pk)
	}
	return dir, nil
}
