package statefile

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"

	"proxykit/internal/kcrypto"
	"proxykit/internal/proxy"
)

// proxyFile is the on-disk form of a proxy: public certificates plus,
// when held, the secret proxy key. The file is written 0600 because the
// key is the bearer credential.
type proxyFile struct {
	CertsB64 string `json:"certs"`
	KeyKind  string `json:"keyKind,omitempty"` // "symmetric" | "ed25519"
	KeyB64   string `json:"key,omitempty"`
}

// SaveProxy writes a proxy (certificates and key) to path.
func SaveProxy(path string, p *proxy.Proxy) error {
	f := proxyFile{CertsB64: base64.StdEncoding.EncodeToString(p.MarshalCerts())}
	switch key := p.Key.(type) {
	case nil:
	case *kcrypto.SymmetricKey:
		f.KeyKind = "symmetric"
		f.KeyB64 = base64.StdEncoding.EncodeToString(key.Bytes())
	case *kcrypto.KeyPair:
		f.KeyKind = "ed25519"
		f.KeyB64 = base64.StdEncoding.EncodeToString(key.Seed())
	default:
		return fmt.Errorf("statefile: unsupported proxy key type %T", p.Key)
	}
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o600)
}

// LoadProxy reads a proxy written by SaveProxy.
func LoadProxy(path string) (*proxy.Proxy, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("statefile: %w", err)
	}
	var f proxyFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("statefile: parse proxy: %w", err)
	}
	certsRaw, err := base64.StdEncoding.DecodeString(f.CertsB64)
	if err != nil {
		return nil, fmt.Errorf("statefile: decode certs: %w", err)
	}
	certs, err := proxy.UnmarshalCerts(certsRaw)
	if err != nil {
		return nil, err
	}
	p := &proxy.Proxy{Certs: certs}
	if f.KeyKind == "" {
		return p, nil
	}
	keyRaw, err := base64.StdEncoding.DecodeString(f.KeyB64)
	if err != nil {
		return nil, fmt.Errorf("statefile: decode key: %w", err)
	}
	switch f.KeyKind {
	case "symmetric":
		p.Key, err = kcrypto.SymmetricKeyFromBytes(keyRaw)
	case "ed25519":
		p.Key, err = kcrypto.KeyPairFromSeed(keyRaw)
	default:
		return nil, fmt.Errorf("statefile: unknown key kind %q", f.KeyKind)
	}
	if err != nil {
		return nil, err
	}
	return p, nil
}
