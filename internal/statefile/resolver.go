package statefile

import (
	"sync"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
)

// DynamicResolver returns an identity resolver backed by the state
// directory that re-reads directory.json whenever a lookup misses —
// so daemons see principals registered after they started (e.g. a peer
// daemon creating its identity during its own startup).
func DynamicResolver(stateDir string) func(principal.ID) (kcrypto.Verifier, error) {
	var (
		mu  sync.Mutex
		dir *pubkey.Directory
	)
	return func(id principal.ID) (kcrypto.Verifier, error) {
		mu.Lock()
		defer mu.Unlock()
		if dir != nil {
			if pk, err := dir.Lookup(id); err == nil {
				return pk, nil
			}
		}
		fresh, err := LoadDirectory(stateDir)
		if err != nil {
			return nil, err
		}
		dir = fresh
		return dir.Lookup(id)
	}
}
