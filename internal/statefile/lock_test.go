package statefile

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
)

// TestUnlockKeepsForeignLock: a lock that was broken as stale and
// re-acquired by someone else must survive the original owner's unlock.
// Before the owner-token fix, the deferred unlock removed whatever file
// sat at the lock path, silently unlocking a third party.
func TestUnlockKeepsForeignLock(t *testing.T) {
	dir := t.TempDir()
	unlock, err := lockDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	lock := filepath.Join(dir, ".lock")

	// Age the lock past the stale threshold and let a second locker
	// break and re-acquire it, as it would after the owner crashed.
	old := time.Now().Add(-2 * staleLockAge)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	unlock2, err := lockDir(dir)
	if err != nil {
		t.Fatalf("second locker could not break stale lock: %v", err)
	}
	defer unlock2()

	// The original owner's unlock fires late (crash recovery, deferred
	// call): the second locker's lock must still be there.
	unlock()
	if _, err := os.Stat(lock); err != nil {
		t.Fatalf("unlock removed a lock it no longer owned: %v", err)
	}
}

// TestBreakStaleLockKeepsFreshLock: breaking a stale lock must not
// delete a fresh lock that replaced it between the staleness check and
// the removal.
func TestBreakStaleLockKeepsFreshLock(t *testing.T) {
	dir := t.TempDir()
	lock := filepath.Join(dir, ".lock")
	if err := os.WriteFile(lock, []byte("fresh-owner\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	// Simulate the laggard waiter: it Stat'ed an old lock earlier, and
	// by the time it acts, the file at the path is fresh.
	breakStaleLock(lock)
	raw, err := os.ReadFile(lock)
	if err != nil {
		t.Fatalf("fresh lock was removed by a stale-lock break: %v", err)
	}
	if string(raw) != "fresh-owner\n" {
		t.Fatalf("lock content changed: %q", raw)
	}
}

func TestStaleLockBrokenAndReacquired(t *testing.T) {
	dir := t.TempDir()
	lock := filepath.Join(dir, ".lock")
	if err := os.WriteFile(lock, []byte("crashed\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleLockAge)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	unlock, err := lockDir(dir)
	if err != nil {
		t.Fatalf("stale lock not broken: %v", err)
	}
	unlock()
	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Fatalf("lock not released: %v", err)
	}
}

// TestDirectoryLockMultiProcess exercises the advisory lock across real
// process boundaries: several child processes concurrently register
// identities into one shared state directory. Every registration must
// survive — a lost update means two processes held the lock at once.
func TestDirectoryLockMultiProcess(t *testing.T) {
	if os.Getenv("STATEFILE_LOCK_CHILD") != "" {
		return // child work happens in TestDirectoryLockChild
	}
	if testing.Short() {
		t.Skip("multi-process test in -short mode")
	}
	dir := t.TempDir()
	const procs = 4
	errs := make(chan error, procs)
	for i := 0; i < procs; i++ {
		go func(i int) {
			cmd := exec.Command(os.Args[0], "-test.run=^TestDirectoryLockChild$")
			cmd.Env = append(os.Environ(),
				"STATEFILE_LOCK_CHILD=1",
				"STATEFILE_LOCK_DIR="+dir,
				fmt.Sprintf("STATEFILE_LOCK_PROC=%d", i))
			out, err := cmd.CombinedOutput()
			if err != nil {
				err = fmt.Errorf("child %d: %v\n%s", i, err, out)
			}
			errs <- err
		}(i)
	}
	for i := 0; i < procs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	pd, err := LoadDirectory(dir)
	if err != nil {
		t.Fatal(err)
	}
	const perProc = 8
	for i := 0; i < procs; i++ {
		for j := 0; j < perProc; j++ {
			id := principal.New(fmt.Sprintf("p%d-%d", i, j), "EXAMPLE.ORG")
			if _, err := pd.Lookup(id); err != nil {
				t.Errorf("registration lost: %s: %v", id, err)
			}
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".lock")); !os.IsNotExist(err) {
		t.Errorf("lock file left behind: %v", err)
	}
}

// TestDirectoryLockChild is the multi-process test's worker; it only
// does anything when re-executed by TestDirectoryLockMultiProcess.
func TestDirectoryLockChild(t *testing.T) {
	if os.Getenv("STATEFILE_LOCK_CHILD") == "" {
		t.Skip("child-only test")
	}
	dir := os.Getenv("STATEFILE_LOCK_DIR")
	proc := os.Getenv("STATEFILE_LOCK_PROC")
	for j := 0; j < 8; j++ {
		id := principal.New(fmt.Sprintf("p%s-%d", proc, j), "EXAMPLE.ORG")
		ident, err := pubkey.NewIdentity(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := AddToDirectory(dir, id, ident.Public()); err != nil {
			t.Fatal(err)
		}
	}
}
