package statefile

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"proxykit/internal/principal"
)

func TestCreateLoadIdentity(t *testing.T) {
	dir := t.TempDir()
	id := principal.New("alice", "EXAMPLE.ORG")

	created, err := CreateIdentity(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIdentity(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	if created.Public().KeyID() != loaded.Public().KeyID() {
		t.Fatal("loaded identity differs from created")
	}

	// The directory picked up the binding.
	d, err := LoadDirectory(dir)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := d.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if pk.KeyID() != created.Public().KeyID() {
		t.Fatal("directory key mismatch")
	}
}

func TestLoadIdentityMissing(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadIdentity(dir, principal.New("ghost", "R")); !errors.Is(err, ErrNoIdentity) {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadOrCreateIdempotent(t *testing.T) {
	dir := t.TempDir()
	id := principal.New("svc/host", "EXAMPLE.ORG")
	a, err := LoadOrCreateIdentity(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadOrCreateIdentity(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	if a.Public().KeyID() != b.Public().KeyID() {
		t.Fatal("LoadOrCreate regenerated the identity")
	}
}

func TestEmptyDirectory(t *testing.T) {
	d, err := LoadDirectory(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatal("phantom entries")
	}
}

func TestMultipleIdentitiesShareDirectory(t *testing.T) {
	dir := t.TempDir()
	ids := []principal.ID{
		principal.New("alice", "R"),
		principal.New("file/srv1", "R"),
		principal.New("bank", "R"),
	}
	for _, id := range ids {
		if _, err := CreateIdentity(dir, id); err != nil {
			t.Fatal(err)
		}
	}
	d, err := LoadDirectory(filepath.Clean(dir))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("directory len = %d", d.Len())
	}
}

func TestDynamicResolverSeesLateRegistrations(t *testing.T) {
	dir := t.TempDir()
	resolve := DynamicResolver(dir)

	// Nothing registered yet.
	if _, err := resolve(principal.New("late", "R")); err == nil {
		t.Fatal("resolved before registration")
	}
	// Register after the resolver was created (another daemon starting
	// up later) — the resolver must pick it up.
	ident, err := CreateIdentity(dir, principal.New("late", "R"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := resolve(principal.New("late", "R"))
	if err != nil {
		t.Fatal(err)
	}
	if v.KeyID() != ident.Public().KeyID() {
		t.Fatal("resolved wrong key")
	}
	// Cached thereafter.
	if _, err := resolve(principal.New("late", "R")); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIdentityCreation(t *testing.T) {
	dir := t.TempDir()
	const n = 12
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := CreateIdentity(dir, principal.New(fmt.Sprintf("svc%d", i), "R"))
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Every registration survived the concurrent read-modify-write.
	d, err := LoadDirectory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != n {
		t.Fatalf("directory has %d entries, want %d", d.Len(), n)
	}
}

func TestIdentityEncryptionKeyPersisted(t *testing.T) {
	dir := t.TempDir()
	id := principal.New("srv", "R")
	created, err := CreateIdentity(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIdentity(dir, id)
	if err != nil {
		t.Fatal(err)
	}
	// The encryption key must round-trip: something sealed to the
	// created identity's public half opens with the loaded private half.
	shared1, err := created.ECDH().SharedKey(loaded.ECDH().PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	shared2, err := loaded.ECDH().SharedKey(created.ECDH().PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !shared1.Equal(shared2) {
		t.Fatal("encryption key not persisted")
	}
}
