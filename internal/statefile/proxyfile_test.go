package statefile

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
)

func grantTestProxy(t *testing.T, mode proxy.Mode) (*proxy.Proxy, *pubkey.Identity, *kcrypto.SymmetricKey) {
	t.Helper()
	ident, err := pubkey.NewIdentity(principal.New("alice", "R"))
	if err != nil {
		t.Fatal(err)
	}
	endKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	p, err := proxy.Grant(proxy.GrantParams{
		Grantor:       ident.ID,
		GrantorSigner: ident.Signer(),
		Lifetime:      time.Hour,
		Mode:          mode,
		EndServerKey:  endKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, ident, endKey
}

func TestProxyFileRoundTripEd25519(t *testing.T) {
	p, ident, _ := grantTestProxy(t, proxy.ModePublicKey)
	path := filepath.Join(t.TempDir(), "p.json")
	if err := SaveProxy(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProxy(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key == nil || got.Key.KeyID() != p.Key.KeyID() {
		t.Fatal("proxy key not preserved")
	}
	// The reloaded proxy still verifies and proves possession.
	dir := pubkey.NewDirectory()
	dir.RegisterIdentity(ident)
	env := &proxy.VerifyEnv{Server: principal.New("sv", "R"), ResolveIdentity: dir.Resolver()}
	ch, _ := proxy.NewChallenge()
	pres, err := got.Present(ch, principal.New("sv", "R"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.VerifyPresentation(pres, ch); err != nil {
		t.Fatal(err)
	}
	// The file is private.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("proxy file mode = %v", info.Mode().Perm())
	}
}

func TestProxyFileRoundTripSymmetric(t *testing.T) {
	p, _, _ := grantTestProxy(t, proxy.ModeConventional)
	path := filepath.Join(t.TempDir(), "p.json")
	if err := SaveProxy(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProxy(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key == nil || got.Key.KeyID() != p.Key.KeyID() {
		t.Fatal("symmetric proxy key not preserved")
	}
}

func TestProxyFileKeyless(t *testing.T) {
	p, _, _ := grantTestProxy(t, proxy.ModePublicKey)
	p.Key = nil // certificates only (delegate transfer)
	path := filepath.Join(t.TempDir(), "p.json")
	if err := SaveProxy(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProxy(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != nil {
		t.Fatal("phantom key appeared")
	}
	if len(got.Certs) != 1 {
		t.Fatal("certs lost")
	}
}

func TestLoadProxyErrors(t *testing.T) {
	if _, err := LoadProxy(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProxy(bad); err == nil {
		t.Fatal("malformed file accepted")
	}
}
