package svc

import (
	"errors"

	"proxykit/internal/obs"
)

// Envelope metrics: every authenticated request crosses Seal on the
// client and Open on the service, so these two families account for
// the whole signed-envelope path, including replay suppression (§7.7).
var (
	mSeal = obs.Default.NewCounter("proxykit_envelope_seal_total",
		"Request envelopes signed by clients.")
	mOpen = obs.Default.NewCounterVec("proxykit_envelope_open_total",
		"Request envelopes verified by services, by outcome (ok, bad, stale, replayed).", "outcome")
	mDepositDupAcks = obs.Default.NewCounter("proxykit_svc_deposit_duplicate_acks_total",
		"Retried wire deposits whose duplicate-check refusal was taken as the lost ack of an earlier success.")
)

// openOutcome classifies an Open error into the metric label.
func openOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrReplayed):
		return "replayed"
	case errors.Is(err, ErrStale):
		return "stale"
	default:
		return "bad"
	}
}
