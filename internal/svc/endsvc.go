package svc

import (
	"context"
	"fmt"
	"sort"

	"proxykit/internal/acl"
	"proxykit/internal/clock"
	"proxykit/internal/endserver"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/transport"
	"proxykit/internal/wire"
)

// End-server RPC methods.
const (
	ChallengeMethod = "end.challenge"
	RequestMethod   = "end.request"
	HintsMethod     = "end.hints"
)

// EndService mounts an application end-server on the transport layer.
type EndService struct {
	srv    *endserver.Server
	opener *Opener
}

// NewEndService wraps srv.
func NewEndService(srv *endserver.Server, resolve func(principal.ID) (kcrypto.Verifier, error), clk clock.Clock) *EndService {
	return &EndService{srv: srv, opener: NewOpener(resolve, clk)}
}

// Mux returns the service's transport mux.
func (s *EndService) Mux() *transport.Mux {
	m := transport.NewMux()
	m.Handle(ChallengeMethod, func(context.Context, []byte) ([]byte, error) {
		return s.srv.Challenge()
	})
	m.Handle(RequestMethod, s.handleRequest)
	m.Handle(HintsMethod, s.handleHints)
	return m
}

// handleHints serves message 0 of Fig. 3: which subjects the object's
// ACL names. Unauthenticated — the hint is addressed to prospective
// clients.
func (s *EndService) handleHints(_ context.Context, body []byte) ([]byte, error) {
	d := wire.NewDecoder(body)
	object := d.String()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	subjects := s.srv.Hints(object)
	e := wire.NewEncoder(256)
	e.Uint32(uint32(len(subjects)))
	for _, sub := range subjects {
		sub.Principals.Encode(e)
		e.Uint32(uint32(len(sub.Groups)))
		for _, g := range sub.Groups {
			g.Encode(e)
		}
	}
	return e.Bytes(), nil
}

func (s *EndService) handleRequest(ctx context.Context, raw []byte) ([]byte, error) {
	from, body, err := s.opener.Open(RequestMethod, raw)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(body)
	object := d.String()
	op := d.String()
	challenge := d.Bytes32()
	presRaw := d.BytesSlice()
	nAmt := d.Uint32()
	amounts := make(map[string]int64, min(int(nAmt), 16))
	for i := uint32(0); i < nAmt && d.Err() == nil; i++ {
		cur := d.String()
		amounts[cur] = d.Int64()
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	req := &endserver.Request{
		Object:     object,
		Op:         op,
		Identities: []principal.ID{from},
		Challenge:  challenge,
		Amounts:    amounts,
	}
	for i, pr := range presRaw {
		p, err := proxy.UnmarshalPresentation(pr)
		if err != nil {
			return nil, fmt.Errorf("presentation %d: %w", i, err)
		}
		req.Proxies = append(req.Proxies, p)
	}
	dec, err := s.srv.AuthorizeCtx(ctx, req)
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(128)
	dec.Via.Encode(e)
	e.Bool(dec.ViaProxy)
	e.Uint32(uint32(len(dec.Trail)))
	for _, t := range dec.Trail {
		t.Encode(e)
	}
	return e.Bytes(), nil
}

// EndClient calls an end-server on behalf of an identity.
type EndClient struct {
	client transport.Client
	ident  *pubkey.Identity
	clk    clock.Clock
	retry  transport.RetryPolicy
}

// NewEndClient wraps a transport client.
func NewEndClient(c transport.Client, ident *pubkey.Identity, clk clock.Clock) *EndClient {
	if clk == nil {
		clk = clock.System{}
	}
	return &EndClient{client: c, ident: ident, clk: clk}
}

// SetRetry enables retrying of this client's RPCs; authenticated
// requests are re-sealed per attempt (fresh envelope nonce).
func (c *EndClient) SetRetry(p transport.RetryPolicy) { c.retry = p }

// Challenge fetches a fresh bearer-presentation challenge (one round
// trip).
func (c *EndClient) Challenge() ([]byte, error) {
	return rawCall(c.client, c.retry, ChallengeMethod, nil)
}

// Hints asks which subjects can authorize access to object (message 0
// of Fig. 3).
func (c *EndClient) Hints(object string) ([]acl.Subject, error) {
	e := wire.NewEncoder(64)
	e.String(object)
	resp, err := rawCall(c.client, c.retry, HintsMethod, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(resp)
	n := d.Uint32()
	out := make([]acl.Subject, 0, min(int(n), 64))
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		var h acl.Subject
		h.Principals = principal.DecodeCompound(d)
		gn := d.Uint32()
		for j := uint32(0); j < gn && d.Err() == nil; j++ {
			h.Groups = append(h.Groups, principal.DecodeGlobal(d))
		}
		out = append(out, h)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// RequestParams describe one operation request.
type RequestParams struct {
	// Object and Op name the action.
	Object string
	Op     string
	// Challenge covers the bearer proofs in Proxies, if any.
	Challenge []byte
	// Proxies accompany the request.
	Proxies []*proxy.Presentation
	// Amounts is requested resource consumption per currency.
	Amounts map[string]int64
}

// Decision mirrors the server's authorization decision.
type Decision struct {
	// Via is the acting principal.
	Via principal.ID
	// ViaProxy reports proxy-conveyed rights.
	ViaProxy bool
	// Trail is the delegation audit trail.
	Trail []principal.ID
}

// Request performs one authorized operation (one round trip, plus one
// earlier Challenge round trip when presenting bearer proxies).
func (c *EndClient) Request(p RequestParams) (*Decision, error) {
	e := wire.NewEncoder(512)
	e.String(p.Object)
	e.String(p.Op)
	e.Bytes32(p.Challenge)
	pres := make([][]byte, len(p.Proxies))
	for i, pr := range p.Proxies {
		pres[i] = pr.Marshal()
	}
	e.BytesSlice(pres)
	// Encode amounts in sorted currency order: map iteration would make
	// byte-identical requests encode differently run to run.
	e.Uint32(uint32(len(p.Amounts)))
	curs := make([]string, 0, len(p.Amounts))
	for cur := range p.Amounts {
		curs = append(curs, cur)
	}
	sort.Strings(curs)
	for _, cur := range curs {
		e.String(cur)
		e.Int64(p.Amounts[cur])
	}
	resp, err := sealedCall(c.client, c.ident, c.clk, c.retry, RequestMethod, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(resp)
	dec := &Decision{}
	dec.Via = principal.DecodeID(d)
	dec.ViaProxy = d.Bool()
	n := d.Uint32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		dec.Trail = append(dec.Trail, principal.DecodeID(d))
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return dec, nil
}
