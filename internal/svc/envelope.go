// Package svc exposes the proxykit services (authorization server,
// group server, accounting server, end-server) over the transport
// layer: request/response codecs, authenticated request envelopes, and
// client wrappers.
//
// Requests that require authentication travel in a signed envelope: the
// client signs the request body and a timestamp with its identity key,
// and the service verifies the signature through the public-key
// directory. This stands in for the "authenticated authorization
// request" arrow of Fig. 3 (in a Kerberos deployment an AP exchange
// would fill the same role).
package svc

import (
	"errors"
	"fmt"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
	"proxykit/internal/replay"
	"proxykit/internal/wire"
)

// Errors returned by envelope handling.
var (
	ErrBadEnvelope = errors.New("svc: invalid request envelope")
	ErrStale       = errors.New("svc: request timestamp outside window")
	ErrReplayed    = errors.New("svc: request replayed")
)

// envelopeSkew bounds request timestamp staleness.
const envelopeSkew = 2 * time.Minute

// Envelope is a signed request.
type Envelope struct {
	// From is the authenticated sender.
	From principal.ID
	// Method is bound into the signature so an envelope cannot be
	// replayed against another handler.
	Method string
	// Body is the request payload.
	Body []byte
	// Timestamp and Nonce limit replay.
	Timestamp time.Time
	Nonce     []byte
	// Signature covers everything above.
	Signature []byte
}

func envelopeBytes(from principal.ID, method string, body []byte, ts time.Time, nonce []byte) []byte {
	e := wire.NewEncoder(128 + len(body))
	e.String("svc-envelope-v1")
	from.Encode(e)
	e.String(method)
	e.Bytes32(body)
	e.Time(ts)
	e.Bytes32(nonce)
	return e.Bytes()
}

// Seal signs a request for transport.
func Seal(from *pubkey.Identity, method string, body []byte, clk clock.Clock) ([]byte, error) {
	if clk == nil {
		clk = clock.System{}
	}
	nonce, err := kcrypto.Nonce(16)
	if err != nil {
		return nil, err
	}
	ts := clk.Now()
	sig, err := from.Signer().Sign(envelopeBytes(from.ID, method, body, ts, nonce))
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(256 + len(body))
	from.ID.Encode(e)
	e.String(method)
	e.Bytes32(body)
	e.Time(ts)
	e.Bytes32(nonce)
	e.Bytes32(sig)
	mSeal.Inc()
	return e.Bytes(), nil
}

// Opener verifies envelopes for a service.
type Opener struct {
	resolve func(principal.ID) (kcrypto.Verifier, error)
	clk     clock.Clock
	cache   *replay.Cache
}

// NewOpener builds an Opener resolving sender keys through resolve.
func NewOpener(resolve func(principal.ID) (kcrypto.Verifier, error), clk clock.Clock) *Opener {
	if clk == nil {
		clk = clock.System{}
	}
	return &Opener{resolve: resolve, clk: clk, cache: replay.New(clk)}
}

// Open verifies a sealed envelope for method and returns the sender and
// body. Every verification outcome — including replay rejections — is
// counted in the envelope metrics.
func (o *Opener) Open(method string, raw []byte) (from principal.ID, body []byte, err error) {
	from, body, err = o.open(method, raw)
	mOpen.With(openOutcome(err)).Inc()
	return from, body, err
}

func (o *Opener) open(method string, raw []byte) (principal.ID, []byte, error) {
	d := wire.NewDecoder(raw)
	from := principal.DecodeID(d)
	gotMethod := d.String()
	body := d.Bytes32()
	ts := d.Time()
	nonce := d.Bytes32()
	sig := d.Bytes32()
	if err := d.Finish(); err != nil {
		return principal.ID{}, nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	if gotMethod != method {
		return principal.ID{}, nil, fmt.Errorf("%w: method %q in envelope for %q", ErrBadEnvelope, gotMethod, method)
	}
	v, err := o.resolve(from)
	if err != nil {
		return principal.ID{}, nil, fmt.Errorf("%w: resolve %s: %v", ErrBadEnvelope, from, err)
	}
	if err := v.Verify(envelopeBytes(from, method, body, ts, nonce), sig); err != nil {
		return principal.ID{}, nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	now := o.clk.Now()
	if ts.Before(now.Add(-envelopeSkew)) || ts.After(now.Add(envelopeSkew)) {
		return principal.ID{}, nil, fmt.Errorf("%w: at %v", ErrStale, ts)
	}
	if err := o.cache.Seen(fmt.Sprintf("env:%s:%x", from, nonce), ts.Add(2*envelopeSkew)); err != nil {
		return principal.ID{}, nil, fmt.Errorf("%w: %v", ErrReplayed, err)
	}
	return from, body, nil
}
