package svc

import (
	"fmt"

	"proxykit/internal/kcrypto"
	"proxykit/internal/proxy"
	"proxykit/internal/wire"
)

// Proxy-key kinds on the wire.
const (
	keyKindNone      uint8 = 0
	keyKindSymmetric uint8 = 1
	keyKindEd25519   uint8 = 2
)

// sealProxy encodes a granted proxy for the reply: certificates in the
// clear (they are public) and the proxy key sealed under the requester's
// ephemeral shared key.
func sealProxy(p *proxy.Proxy, shared *kcrypto.SymmetricKey) ([]byte, error) {
	e := wire.NewEncoder(1024)
	e.Bytes32(p.MarshalCerts())
	switch key := p.Key.(type) {
	case nil:
		e.Uint8(keyKindNone)
		e.Bytes32(nil)
	case *kcrypto.SymmetricKey:
		sealed, err := shared.Seal(key.Bytes())
		if err != nil {
			return nil, err
		}
		e.Uint8(keyKindSymmetric)
		e.Bytes32(sealed)
	case *kcrypto.KeyPair:
		sealed, err := shared.Seal(key.Seed())
		if err != nil {
			return nil, err
		}
		e.Uint8(keyKindEd25519)
		e.Bytes32(sealed)
	default:
		return nil, fmt.Errorf("svc: unsupported proxy key type %T", p.Key)
	}
	return e.Bytes(), nil
}

// openProxy decodes a sealed proxy reply.
func openProxy(raw []byte, shared *kcrypto.SymmetricKey) (*proxy.Proxy, error) {
	d := wire.NewDecoder(raw)
	certsRaw := d.Bytes32()
	kind := d.Uint8()
	sealedKey := d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	certs, err := proxy.UnmarshalCerts(certsRaw)
	if err != nil {
		return nil, err
	}
	p := &proxy.Proxy{Certs: certs}
	switch kind {
	case keyKindNone:
	case keyKindSymmetric:
		raw, err := shared.Open(sealedKey)
		if err != nil {
			return nil, fmt.Errorf("svc: open proxy key: %w", err)
		}
		if p.Key, err = kcrypto.SymmetricKeyFromBytes(raw); err != nil {
			return nil, err
		}
	case keyKindEd25519:
		seed, err := shared.Open(sealedKey)
		if err != nil {
			return nil, fmt.Errorf("svc: open proxy key: %w", err)
		}
		if p.Key, err = kcrypto.KeyPairFromSeed(seed); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("svc: unknown proxy key kind %d", kind)
	}
	return p, nil
}
