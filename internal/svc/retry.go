package svc

import (
	"errors"
	"strings"

	"proxykit/internal/accounting"
	"proxykit/internal/clock"
	"proxykit/internal/pubkey"
	"proxykit/internal/transport"
)

// sealedCall performs one authenticated RPC under pol, re-sealing the
// request on every attempt: Seal embeds a once-only nonce, so a
// byte-identical resend would be rejected by the service's Opener as a
// replay. This is why retry for sealed requests lives here rather than
// in transport.RetryClient, which resends the same bytes.
func sealedCall(client transport.Client, ident *pubkey.Identity, clk clock.Clock, pol transport.RetryPolicy, method string, body []byte) ([]byte, error) {
	// All attempts share one logical trace (a re-seal changes the
	// envelope bytes, not the operation), so retries render as sibling
	// spans under one parent instead of fresh root traces.
	c, finish := transport.TraceRetries(client, pol, method)
	var resp []byte
	err := pol.Do(method, func(int) error {
		sealed, serr := Seal(ident, method, body, clk)
		if serr != nil {
			return serr
		}
		var cerr error
		resp, cerr = c.Call(method, sealed)
		return cerr
	})
	finish(err)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// rawCall retries an unsealed RPC; the request carries no nonce, so the
// same bytes are safe to resend.
func rawCall(client transport.Client, pol transport.RetryPolicy, method string, body []byte) ([]byte, error) {
	c, finish := transport.TraceRetries(client, pol, method)
	var resp []byte
	err := pol.Do(method, func(int) error {
		var cerr error
		resp, cerr = c.Call(method, body)
		return cerr
	})
	finish(err)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// isRemoteDuplicate reports whether err is the wire form of the
// accounting server's duplicate-check-number refusal (§7.7).
func isRemoteDuplicate(err error) bool {
	var re *transport.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, accounting.ErrDuplicateCheck.Error())
}
