package svc

import (
	"context"
	"fmt"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/group"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/transport"
	"proxykit/internal/wire"
)

// GroupGrantMethod is the group server's RPC method (§3.3).
const GroupGrantMethod = "group.grant"

// GroupService mounts a group server on the transport layer.
type GroupService struct {
	srv    *group.Server
	opener *Opener
	env    *proxy.VerifyEnv
	clk    clock.Clock
}

// NewGroupService wraps srv.
func NewGroupService(srv *group.Server, resolve func(principal.ID) (kcrypto.Verifier, error), clk clock.Clock) *GroupService {
	if clk == nil {
		clk = clock.System{}
	}
	return &GroupService{
		srv:    srv,
		opener: NewOpener(resolve, clk),
		env: &proxy.VerifyEnv{
			Server:          srv.ID,
			Clock:           clk,
			ResolveIdentity: resolve,
		},
		clk: clk,
	}
}

// SetChainCache installs a verified-chain cache for the group proxies
// presented with grant requests (see proxy.ChainCache). Call during
// setup, before the service starts taking requests.
func (s *GroupService) SetChainCache(cc *proxy.ChainCache) {
	s.env.Cache = cc
}

// Mux returns the service's transport mux.
func (s *GroupService) Mux() *transport.Mux {
	m := transport.NewMux()
	m.Handle(GroupGrantMethod, s.handleGrant)
	return m
}

func (s *GroupService) handleGrant(ctx context.Context, raw []byte) ([]byte, error) {
	from, body, err := s.opener.Open(GroupGrantMethod, raw)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(body)
	ephPub := d.Bytes32()
	names := d.StringSlice()
	lifetime := time.Duration(d.Int64())
	delegate := d.Bool()
	presRaw := d.BytesSlice()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}

	verified, propagated, err := verifyGroupProxies(s.env, presRaw, from, s.clk)
	if err != nil {
		return nil, err
	}
	p, err := s.srv.GrantCtx(ctx, &group.GrantRequest{
		Client:         from,
		Groups:         names,
		VerifiedGroups: verified,
		Lifetime:       lifetime,
		Delegate:       delegate,
		Propagated:     propagated,
	})
	if err != nil {
		return nil, err
	}
	return sealReply(p, ephPub)
}

// GroupClient calls a group service on behalf of an identity.
type GroupClient struct {
	client transport.Client
	ident  *pubkey.Identity
	clk    clock.Clock
	retry  transport.RetryPolicy
}

// NewGroupClient wraps a transport client.
func NewGroupClient(c transport.Client, ident *pubkey.Identity, clk clock.Clock) *GroupClient {
	if clk == nil {
		clk = clock.System{}
	}
	return &GroupClient{client: c, ident: ident, clk: clk}
}

// SetRetry enables retrying of this client's RPCs; requests are
// re-sealed per attempt (fresh envelope nonce).
func (c *GroupClient) SetRetry(p transport.RetryPolicy) { c.retry = p }

// GroupGrantParams are the client-side request parameters.
type GroupGrantParams struct {
	// Groups are the local group names to assert.
	Groups []string
	// Lifetime of the proxy.
	Lifetime time.Duration
	// Delegate restricts the proxy to this client's identity.
	Delegate bool
	// ForeignProxies prove membership in nested foreign groups.
	ForeignProxies []*proxy.Presentation
}

// Grant requests a group-membership proxy.
func (c *GroupClient) Grant(p GroupGrantParams) (*proxy.Proxy, error) {
	eph, err := kcrypto.NewECDHKey()
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(256)
	e.Bytes32(eph.PublicBytes())
	e.StringSlice(p.Groups)
	e.Int64(int64(p.Lifetime))
	e.Bool(p.Delegate)
	pres := make([][]byte, len(p.ForeignProxies))
	for i, fp := range p.ForeignProxies {
		pres[i] = fp.Marshal()
	}
	e.BytesSlice(pres)

	resp, err := sealedCall(c.client, c.ident, c.clk, c.retry, GroupGrantMethod, e.Bytes())
	if err != nil {
		return nil, err
	}
	return openReply(resp, eph)
}
