package svc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/faultpoint"
	"proxykit/internal/principal"
	"proxykit/internal/transport"
)

// testRetry is a no-sleep, fixed-seed policy for deterministic tests.
func testRetry(attempts int) transport.RetryPolicy {
	return transport.RetryPolicy{
		MaxAttempts: attempts,
		Seed:        1,
		Sleep:       func(time.Duration) {},
	}
}

// acctFixture registers a bank service on the world's network and
// funds an account for alice.
func acctFixture(t *testing.T, w *world, svcName string) (*accounting.Server, *AcctClient) {
	t.Helper()
	bankIdent := w.ident(principal.New("bank-"+svcName, "ISI.EDU"))
	bank := accounting.NewServer(bankIdent, w.dir.Resolver(), w.clk)
	w.net.Register(svcName, NewAcctService(bank, w.dir.Resolver(), w.clk).Mux())
	ac := NewAcctClient(w.net.MustDial(svcName), w.ids[alice], w.clk)
	if err := ac.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	if err := bank.Mint("alice", "dollars", 1000); err != nil {
		t.Fatal(err)
	}
	return bank, ac
}

// TestSealedRetryUnderDrops: an AcctClient with a retry policy
// completes every call across a lossy network because each attempt is
// re-sealed with a fresh nonce.
func TestSealedRetryUnderDrops(t *testing.T) {
	w := newWorld(t)
	_, ac := acctFixture(t, w, "bankA")
	ac.SetRetry(testRetry(10))
	w.net.SetInjector(faultpoint.New(11,
		faultpoint.Rule{Method: BalanceMethod, Drop: 0.4}))

	for i := 0; i < 50; i++ {
		if bal, err := ac.Balance("alice", "dollars"); err != nil || bal != 1000 {
			t.Fatalf("call %d: balance = %d, %v", i, bal, err)
		}
	}
}

// TestTransportRetryReplaysSealedEnvelope documents why retry for
// authenticated requests lives in svc, not transport: resending the
// identical sealed bytes after a lost response trips the service's
// envelope replay cache.
func TestTransportRetryReplaysSealedEnvelope(t *testing.T) {
	w := newWorld(t)
	_, _ = acctFixture(t, w, "bankB")
	// Drop responses only after the request was processed (the request
	// reached the service, consuming its nonce).
	w.net.SetInjector(faultpoint.New(3, faultpoint.Rule{Method: BalanceMethod, Drop: 0.5}))

	rc := transport.NewRetryClient(w.net.MustDial("bankB"), testRetry(10))
	naive := NewAcctClient(rc, w.ids[alice], w.clk)
	var replayed bool
	for i := 0; i < 50 && !replayed; i++ {
		_, err := naive.Balance("alice", "dollars")
		var re *transport.RemoteError
		if errors.As(err, &re) && strings.Contains(re.Msg, "replayed") {
			replayed = true
		}
	}
	if !replayed {
		t.Fatal("byte-identical retry of a sealed envelope was never rejected as a replay; the re-seal requirement is untested")
	}
}

// TestDepositDupAckOverWire: wire deposits under loss converge to
// exactly-once credit. A deposit whose response was dropped is
// redelivered, refused as a duplicate check number, and that refusal is
// accepted as the lost ack.
func TestDepositDupAckOverWire(t *testing.T) {
	w := newWorld(t)
	bank, ac := acctFixture(t, w, "bankC")
	ac.SetRetry(testRetry(10))
	w.net.SetInjector(faultpoint.New(29,
		faultpoint.Rule{Method: DepositCheckMethod, Drop: 0.4}))

	bobAcct := NewAcctClient(w.net.MustDial("bankC"), w.ids[bob], w.clk)
	bobAcct.SetRetry(testRetry(10))
	if err := bobAcct.CreateAccount("bob"); err != nil {
		t.Fatal(err)
	}

	dupAcksBefore := mDepositDupAcks.Value()
	const n, amount = 10, 10
	for i := 0; i < n; i++ {
		check, err := accounting.WriteCheck(accounting.WriteCheckParams{
			Payor: w.ids[alice], Bank: bank.ID, Account: "alice",
			Payee: bob, Currency: "dollars", Amount: amount,
			Lifetime: time.Hour, Clock: w.clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		endorsed, err := check.Endorse(w.ids[bob], bank.ID, bank.ID, bank.Global("bob"), true, w.clk)
		if err != nil {
			t.Fatal(err)
		}
		r, err := bobAcct.DepositCheck(endorsed, "bob")
		if err != nil {
			t.Fatalf("deposit %d failed under loss: %v", i, err)
		}
		if !r.Collected || r.Amount != amount {
			t.Fatalf("deposit %d receipt = %+v", i, r)
		}
	}

	if bal, err := ac.Balance("alice", "dollars"); err != nil || bal != 1000-n*amount {
		t.Fatalf("alice = %d, %v; want %d (exactly-once debit)", bal, err, 1000-n*amount)
	}
	if bal, err := bobAcct.Balance("bob", "dollars"); err != nil || bal != n*amount {
		t.Fatalf("bob = %d, %v; want %d (exactly-once credit)", bal, err, n*amount)
	}
	if mDepositDupAcks.Value() == dupAcksBefore {
		t.Error("no duplicate-acks recorded — lost-response redelivery never exercised")
	}
}
