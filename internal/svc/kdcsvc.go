package svc

import (
	"context"
	"fmt"
	"time"

	"proxykit/internal/kerberos"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
	"proxykit/internal/transport"
	"proxykit/internal/wire"
)

// KDC RPC methods.
const (
	ASMethod  = "krb.as"
	TGSMethod = "krb.tgs"
)

// KDCService mounts a KDC on the transport layer. Kerberos messages are
// self-protecting (everything sensitive is sealed under long-term or
// session keys), so no envelope is needed.
type KDCService struct {
	kdc *kerberos.KDC
}

// NewKDCService wraps kdc.
func NewKDCService(kdc *kerberos.KDC) *KDCService {
	return &KDCService{kdc: kdc}
}

// Mux returns the service's transport mux.
func (s *KDCService) Mux() *transport.Mux {
	m := transport.NewMux()
	m.Handle(ASMethod, func(_ context.Context, body []byte) ([]byte, error) {
		req, err := decodeASRequest(body)
		if err != nil {
			return nil, err
		}
		reply, err := s.kdc.AuthService(req)
		if err != nil {
			return nil, err
		}
		return encodeASReply(reply), nil
	})
	m.Handle(TGSMethod, func(_ context.Context, body []byte) ([]byte, error) {
		req, err := decodeTGSRequest(body)
		if err != nil {
			return nil, err
		}
		reply, err := s.kdc.TicketGrantingService(req)
		if err != nil {
			return nil, err
		}
		return encodeASReply(reply), nil
	})
	return m
}

func encodeASRequest(r *kerberos.ASRequest) []byte {
	e := wire.NewEncoder(256)
	r.Client.Encode(e)
	r.Server.Encode(e)
	e.Int64(int64(r.Lifetime))
	e.Bytes32(r.Nonce)
	e.Bytes32(r.Preauth)
	r.Restrictions.Encode(e)
	return e.Bytes()
}

func decodeASRequest(b []byte) (*kerberos.ASRequest, error) {
	d := wire.NewDecoder(b)
	r := &kerberos.ASRequest{}
	r.Client = principal.DecodeID(d)
	r.Server = principal.DecodeID(d)
	r.Lifetime = time.Duration(d.Int64())
	r.Nonce = d.Bytes32()
	r.Preauth = d.Bytes32()
	rs, err := restrict.Decode(d)
	if err != nil {
		return nil, err
	}
	r.Restrictions = rs
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("svc: decode AS request: %w", err)
	}
	if len(r.Preauth) == 0 {
		r.Preauth = nil
	}
	return r, nil
}

func encodeASReply(r *kerberos.ASReply) []byte {
	e := wire.NewEncoder(512)
	e.Bytes32(r.Ticket.Marshal())
	e.Bytes32(r.EncPart)
	return e.Bytes()
}

func decodeASReply(b []byte) (*kerberos.ASReply, error) {
	d := wire.NewDecoder(b)
	traw := d.Bytes32()
	enc := d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("svc: decode AS reply: %w", err)
	}
	t, err := kerberos.UnmarshalTicket(traw)
	if err != nil {
		return nil, err
	}
	return &kerberos.ASReply{Ticket: t, EncPart: enc}, nil
}

func encodeTGSRequest(r *kerberos.TGSRequest) []byte {
	e := wire.NewEncoder(512)
	e.Bytes32(r.Ticket.Marshal())
	e.BytesSlice(r.GrantChain)
	e.Bytes32(r.Authenticator)
	r.Server.Encode(e)
	e.Int64(int64(r.Lifetime))
	e.Bytes32(r.Nonce)
	return e.Bytes()
}

func decodeTGSRequest(b []byte) (*kerberos.TGSRequest, error) {
	d := wire.NewDecoder(b)
	traw := d.Bytes32()
	chain := d.BytesSlice()
	auth := d.Bytes32()
	server := principal.DecodeID(d)
	lifetime := time.Duration(d.Int64())
	nonce := d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("svc: decode TGS request: %w", err)
	}
	t, err := kerberos.UnmarshalTicket(traw)
	if err != nil {
		return nil, err
	}
	return &kerberos.TGSRequest{
		Ticket:        t,
		GrantChain:    chain,
		Authenticator: auth,
		Server:        server,
		Lifetime:      lifetime,
		Nonce:         nonce,
	}, nil
}

// KDCClient implements kerberos.AS and kerberos.TGS over a transport
// client, so kerberos.Client works unchanged against a remote KDC.
type KDCClient struct {
	client transport.Client
}

// NewKDCClient wraps a transport client.
func NewKDCClient(c transport.Client) *KDCClient {
	return &KDCClient{client: c}
}

// AuthService implements kerberos.AS.
func (k *KDCClient) AuthService(req *kerberos.ASRequest) (*kerberos.ASReply, error) {
	resp, err := k.client.Call(ASMethod, encodeASRequest(req))
	if err != nil {
		return nil, err
	}
	return decodeASReply(resp)
}

// TicketGrantingService implements kerberos.TGS.
func (k *KDCClient) TicketGrantingService(req *kerberos.TGSRequest) (*kerberos.ASReply, error) {
	resp, err := k.client.Call(TGSMethod, encodeTGSRequest(req))
	if err != nil {
		return nil, err
	}
	return decodeASReply(resp)
}

var (
	_ kerberos.AS  = (*KDCClient)(nil)
	_ kerberos.TGS = (*KDCClient)(nil)
)
