package svc

import (
	"testing"
	"time"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
)

func grantFor(t *testing.T, mode proxy.Mode) *proxy.Proxy {
	t.Helper()
	ident, err := pubkey.NewIdentity(principal.New("g", "R"))
	if err != nil {
		t.Fatal(err)
	}
	endKey, err := kcrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	p, err := proxy.Grant(proxy.GrantParams{
		Grantor:       ident.ID,
		GrantorSigner: ident.Signer(),
		Lifetime:      time.Hour,
		Mode:          mode,
		EndServerKey:  endKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sharedKey(t *testing.T) *kcrypto.SymmetricKey {
	t.Helper()
	k, err := kcrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSealOpenProxyEd25519(t *testing.T) {
	p := grantFor(t, proxy.ModePublicKey)
	shared := sharedKey(t)
	raw, err := sealProxy(p, shared)
	if err != nil {
		t.Fatal(err)
	}
	got, err := openProxy(raw, shared)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key == nil || got.Key.KeyID() != p.Key.KeyID() {
		t.Fatal("ed25519 proxy key not preserved")
	}
}

func TestSealOpenProxySymmetric(t *testing.T) {
	p := grantFor(t, proxy.ModeConventional)
	shared := sharedKey(t)
	raw, err := sealProxy(p, shared)
	if err != nil {
		t.Fatal(err)
	}
	got, err := openProxy(raw, shared)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key == nil || got.Key.KeyID() != p.Key.KeyID() {
		t.Fatal("symmetric proxy key not preserved")
	}
}

func TestSealOpenProxyKeyless(t *testing.T) {
	p := grantFor(t, proxy.ModePublicKey)
	p.Key = nil
	shared := sharedKey(t)
	raw, err := sealProxy(p, shared)
	if err != nil {
		t.Fatal(err)
	}
	got, err := openProxy(raw, shared)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != nil {
		t.Fatal("phantom key")
	}
}

func TestOpenProxyWrongSharedKey(t *testing.T) {
	p := grantFor(t, proxy.ModePublicKey)
	raw, err := sealProxy(p, sharedKey(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := openProxy(raw, sharedKey(t)); err == nil {
		t.Fatal("wrong shared key opened the proxy key")
	}
}

func TestOpenProxyGarbage(t *testing.T) {
	if _, err := openProxy([]byte("garbage"), sharedKey(t)); err == nil {
		t.Fatal("garbage accepted")
	}
}

type oddSigner struct{}

func (oddSigner) Sign([]byte) ([]byte, error) { return nil, nil }
func (oddSigner) Scheme() kcrypto.Scheme      { return kcrypto.SchemeHMAC }
func (oddSigner) KeyID() string               { return "odd" }

func TestSealProxyUnsupportedKeyType(t *testing.T) {
	p := grantFor(t, proxy.ModePublicKey)
	p.Key = oddSigner{}
	if _, err := sealProxy(p, sharedKey(t)); err == nil {
		t.Fatal("unsupported key type accepted")
	}
}
