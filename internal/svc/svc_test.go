package svc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/acl"
	"proxykit/internal/authz"
	"proxykit/internal/clock"
	"proxykit/internal/endserver"
	"proxykit/internal/group"
	"proxykit/internal/kerberos"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
	"proxykit/internal/transport"
)

var (
	alice  = principal.New("alice", "ISI.EDU")
	bob    = principal.New("bob", "ISI.EDU")
	fileID = principal.New("file/sv1", "ISI.EDU")
)

// world wires a full service fabric over one in-memory network.
type world struct {
	t   *testing.T
	clk *clock.Fake
	dir *pubkey.Directory
	net *transport.Network
	ids map[principal.ID]*pubkey.Identity

	authzSrv *authz.Server
	groupSrv *group.Server
	endSrv   *endserver.Server
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{
		t:   t,
		clk: clock.NewFake(time.Unix(17_000_000, 0)),
		dir: pubkey.NewDirectory(),
		net: transport.NewNetwork(),
		ids: make(map[principal.ID]*pubkey.Identity),
	}
	for _, id := range []principal.ID{alice, bob, fileID} {
		w.ident(id)
	}

	authzIdent := w.ident(principal.New("authz", "ISI.EDU"))
	w.authzSrv = authz.New(authzIdent, w.clk)
	w.net.Register("authz", NewAuthzService(w.authzSrv, w.dir.Resolver(), w.clk).Mux())

	groupIdent := w.ident(principal.New("groups", "ISI.EDU"))
	w.groupSrv = group.New(groupIdent, w.clk)
	w.net.Register("groups", NewGroupService(w.groupSrv, w.dir.Resolver(), w.clk).Mux())

	env := &proxy.VerifyEnv{ResolveIdentity: w.dir.Resolver(), MaxSkew: time.Minute}
	w.endSrv = endserver.New(fileID, env, w.clk)
	w.net.Register("file", NewEndService(w.endSrv, w.dir.Resolver(), w.clk).Mux())
	return w
}

func (w *world) ident(id principal.ID) *pubkey.Identity {
	w.t.Helper()
	if ident, ok := w.ids[id]; ok {
		return ident
	}
	ident, err := pubkey.NewIdentity(id)
	if err != nil {
		w.t.Fatal(err)
	}
	w.ids[id] = ident
	w.dir.RegisterIdentity(ident)
	return ident
}

func TestEnvelopeRoundTripAndTamper(t *testing.T) {
	w := newWorld(t)
	opener := NewOpener(w.dir.Resolver(), w.clk)
	raw, err := Seal(w.ids[alice], "m", []byte("payload"), w.clk)
	if err != nil {
		t.Fatal(err)
	}
	from, body, err := opener.Open("m", raw)
	if err != nil {
		t.Fatal(err)
	}
	if from != alice || string(body) != "payload" {
		t.Fatalf("from=%v body=%q", from, body)
	}
	// Replay rejected.
	if _, _, err := opener.Open("m", raw); !errors.Is(err, ErrReplayed) {
		t.Fatalf("replay err = %v", err)
	}
	// Wrong method rejected.
	raw2, _ := Seal(w.ids[alice], "m", []byte("p"), w.clk)
	if _, _, err := opener.Open("other", raw2); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("method err = %v", err)
	}
	// Tampered byte rejected.
	raw3, _ := Seal(w.ids[alice], "m", []byte("p"), w.clk)
	raw3[len(raw3)-1] ^= 1
	if _, _, err := opener.Open("m", raw3); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("tamper err = %v", err)
	}
	// Stale timestamp rejected.
	raw4, _ := Seal(w.ids[alice], "m", []byte("p"), w.clk)
	w.clk.Advance(10 * time.Minute)
	if _, _, err := opener.Open("m", raw4); !errors.Is(err, ErrStale) {
		t.Fatalf("stale err = %v", err)
	}
}

func TestAuthorizationProtocolOverNetwork(t *testing.T) {
	// The full Fig. 3 flow: alice asks the authorization server for a
	// proxy, then uses it at the file server.
	w := newWorld(t)
	w.authzSrv.AddRule(authz.Rule{
		EndServer: fileID,
		Object:    "/etc/motd",
		Subject:   acl.Subject{Principals: principal.NewCompound(alice)},
		Ops:       []string{"read"},
	})
	w.endSrv.SetACL("/etc/motd", acl.New(acl.PrincipalEntry(w.authzSrv.ID, "read")))

	ac := NewAuthzClient(w.net.MustDial("authz"), w.ids[alice], w.clk)
	px, err := ac.Grant(GrantParams{EndServer: fileID, Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if px.Key == nil {
		t.Fatal("proxy key not recovered from sealed reply")
	}

	ec := NewEndClient(w.net.MustDial("file"), w.ids[alice], w.clk)
	ch, err := ec.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := px.Present(ch, fileID)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ec.Request(RequestParams{
		Object: "/etc/motd", Op: "read",
		Challenge: ch, Proxies: []*proxy.Presentation{pr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.ViaProxy || dec.Via != w.authzSrv.ID {
		t.Fatalf("decision = %+v", dec)
	}
	// Message accounting: 1 grant + 1 challenge + 1 request = 3 round
	// trips.
	if _, rts, _ := w.net.Stats().Snapshot(); rts != 3 {
		t.Fatalf("round trips = %d, want 3", rts)
	}

	// The proxy conveys only what the database allowed.
	ch2, _ := ec.Challenge()
	pr2, _ := px.Present(ch2, fileID)
	if _, err := ec.Request(RequestParams{
		Object: "/etc/motd", Op: "write",
		Challenge: ch2, Proxies: []*proxy.Presentation{pr2},
	}); err == nil {
		t.Fatal("write allowed")
	}
}

func TestGroupProtocolOverNetwork(t *testing.T) {
	// §3.3 composed flow: bob gets a group proxy, presents it to the
	// authorization server, which returns an authorization proxy.
	w := newWorld(t)
	staff := w.groupSrv.Global("staff")
	w.groupSrv.AddMember("staff", bob)
	w.authzSrv.AddRule(authz.Rule{
		EndServer: fileID,
		Object:    "/shared/doc",
		Subject:   acl.Subject{Groups: []principal.Global{staff}},
		Ops:       []string{"read"},
	})
	w.endSrv.SetACL("/shared/doc", acl.New(acl.PrincipalEntry(w.authzSrv.ID, "read")))

	gc := NewGroupClient(w.net.MustDial("groups"), w.ids[bob], w.clk)
	gpx, err := gc.Grant(GroupGrantParams{Groups: []string{"staff"}, Lifetime: time.Hour, Delegate: true})
	if err != nil {
		t.Fatal(err)
	}

	ac := NewAuthzClient(w.net.MustDial("authz"), w.ids[bob], w.clk)
	apx, err := ac.Grant(GrantParams{
		EndServer:    fileID,
		Lifetime:     time.Hour,
		GroupProxies: []*proxy.Presentation{gpx.PresentDelegate()},
	})
	if err != nil {
		t.Fatal(err)
	}

	ec := NewEndClient(w.net.MustDial("file"), w.ids[bob], w.clk)
	ch, _ := ec.Challenge()
	pr, err := apx.Present(ch, fileID)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ec.Request(RequestParams{
		Object: "/shared/doc", Op: "read",
		Challenge: ch, Proxies: []*proxy.Presentation{pr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Via != w.authzSrv.ID {
		t.Fatalf("via = %v", dec.Via)
	}

	// A non-member is refused by the group server.
	gcAlice := NewGroupClient(w.net.MustDial("groups"), w.ids[alice], w.clk)
	if _, err := gcAlice.Grant(GroupGrantParams{Groups: []string{"staff"}}); err == nil {
		t.Fatal("non-member granted group proxy")
	}
}

func TestAuthzRejectsBearerGroupProxies(t *testing.T) {
	w := newWorld(t)
	w.groupSrv.AddMember("staff", bob)
	gc := NewGroupClient(w.net.MustDial("groups"), w.ids[bob], w.clk)
	gpx, err := gc.Grant(GroupGrantParams{Groups: []string{"staff"}, Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := proxy.NewChallenge()
	bearer, err := gpx.Present(ch, w.authzSrv.ID)
	if err != nil {
		t.Fatal(err)
	}
	ac := NewAuthzClient(w.net.MustDial("authz"), w.ids[bob], w.clk)
	if _, err := ac.Grant(GrantParams{
		EndServer:    fileID,
		GroupProxies: []*proxy.Presentation{bearer},
	}); err == nil || !strings.Contains(err.Error(), "bearer") {
		t.Fatalf("err = %v", err)
	}
}

func TestAccountingServiceOverNetwork(t *testing.T) {
	w := newWorld(t)
	bankIdent := w.ident(principal.New("bank", "ISI.EDU"))
	bank := accounting.NewServer(bankIdent, w.dir.Resolver(), w.clk)
	w.net.Register("bank", NewAcctService(bank, w.dir.Resolver(), w.clk).Mux())

	aliceAcct := NewAcctClient(w.net.MustDial("bank"), w.ids[alice], w.clk)
	bobAcct := NewAcctClient(w.net.MustDial("bank"), w.ids[bob], w.clk)
	if err := aliceAcct.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	if err := bobAcct.CreateAccount("bob"); err != nil {
		t.Fatal(err)
	}
	if err := bank.Mint("alice", "dollars", 500); err != nil {
		t.Fatal(err)
	}

	// Balance + transfer over the wire.
	if bal, err := aliceAcct.Balance("alice", "dollars"); err != nil || bal != 500 {
		t.Fatalf("balance = %d, %v", bal, err)
	}
	if err := aliceAcct.Transfer("alice", "bob", "dollars", 100); err != nil {
		t.Fatal(err)
	}
	if bal, _ := bobAcct.Balance("bob", "dollars"); bal != 100 {
		t.Fatalf("bob = %d", bal)
	}
	// ACL enforcement holds over the wire: bob cannot debit alice.
	if err := bobAcct.Transfer("alice", "bob", "dollars", 1); err == nil {
		t.Fatal("unauthorized transfer accepted")
	}

	// A check written by alice, endorsed by bob, deposited over the
	// wire.
	check, err := accounting.WriteCheck(accounting.WriteCheckParams{
		Payor: w.ids[alice], Bank: bank.ID, Account: "alice",
		Payee: bob, Currency: "dollars", Amount: 50,
		Lifetime: time.Hour, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	endorsed, err := check.Endorse(w.ids[bob], bank.ID, bank.ID, bank.Global("bob"), true, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	r, err := bobAcct.DepositCheck(endorsed, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if r.Amount != 50 || r.Hops != 1 {
		t.Fatalf("receipt = %+v", r)
	}
	if bal, _ := bobAcct.Balance("bob", "dollars"); bal != 150 {
		t.Fatalf("bob = %d", bal)
	}
}

func TestKDCServiceOverNetwork(t *testing.T) {
	clk := clock.NewFake(time.Unix(19_000_000, 0))
	kdc, err := kerberos.NewKDC("ISI.EDU", clk)
	if err != nil {
		t.Fatal(err)
	}
	aliceKey, err := kdc.RegisterWithPassword(alice, "pw")
	if err != nil {
		t.Fatal(err)
	}
	fileKey, err := kdc.RegisterWithPassword(fileID, "svpw")
	if err != nil {
		t.Fatal(err)
	}

	net := transport.NewNetwork()
	net.Register("kdc", NewKDCService(kdc).Mux())
	kc := NewKDCClient(net.MustDial("kdc"))

	client := kerberos.NewClient(alice, aliceKey, clk)
	tgt, err := client.Login(kc, kdc.TGS(), time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	creds, err := client.RequestTicket(kc, tgt, fileID, time.Hour, restrict.Set{
		restrict.Quota{Currency: "pages", Limit: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := kerberos.NewServer(fileID, fileKey, clk)
	req, err := client.MakeAPRequest(creds, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := srv.VerifyAPRequest(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q := ctx.Restrictions.Quotas()["pages"]; q != 9 {
		t.Fatalf("quota = %d", q)
	}
	// Two KDC round trips: AS + TGS.
	if _, rts, _ := net.Stats().Snapshot(); rts != 2 {
		t.Fatalf("round trips = %d", rts)
	}
}

func TestEndServiceDelegatePath(t *testing.T) {
	w := newWorld(t)
	w.endSrv.SetACL("/doc", acl.New(acl.PrincipalEntry(alice, "read")))
	// Alice grants bob a delegate proxy out of band.
	px, err := proxy.Grant(proxy.GrantParams{
		Grantor:       alice,
		GrantorSigner: w.ids[alice].Signer(),
		Restrictions:  restrict.Set{restrict.Grantee{Principals: []principal.ID{bob}}},
		Lifetime:      time.Hour,
		Mode:          proxy.ModePublicKey,
		Clock:         w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	ec := NewEndClient(w.net.MustDial("file"), w.ids[bob], w.clk)
	dec, err := ec.Request(RequestParams{
		Object: "/doc", Op: "read",
		Proxies: []*proxy.Presentation{px.PresentDelegate()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Via != alice || !dec.ViaProxy {
		t.Fatalf("decision = %+v", dec)
	}
}

func TestAccountingStatementOverNetwork(t *testing.T) {
	w := newWorld(t)
	bankIdent := w.ident(principal.New("bank2", "ISI.EDU"))
	bank := accounting.NewServer(bankIdent, w.dir.Resolver(), w.clk)
	w.net.Register("bank2", NewAcctService(bank, w.dir.Resolver(), w.clk).Mux())

	ac := NewAcctClient(w.net.MustDial("bank2"), w.ids[alice], w.clk)
	if err := ac.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	if err := bank.Mint("alice", "dollars", 70); err != nil {
		t.Fatal(err)
	}
	txs, err := ac.Statement("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 1 || txs[0].Kind != accounting.TxMint || txs[0].Amount != 70 {
		t.Fatalf("statement = %+v", txs)
	}
	// Read rights enforced over the wire.
	bobAcct := NewAcctClient(w.net.MustDial("bank2"), w.ids[bob], w.clk)
	if _, err := bobAcct.Statement("alice"); err == nil {
		t.Fatal("statement readable without rights")
	}
}

func TestEndServiceHints(t *testing.T) {
	// Message 0 of Fig. 3: a prospective client asks which credentials
	// the object needs.
	w := newWorld(t)
	staff := w.groupSrv.Global("staff")
	w.endSrv.SetACL("/hinted", acl.New(
		acl.PrincipalEntry(w.authzSrv.ID, "read"),
		acl.GroupEntry(staff, "read"),
	))
	ec := NewEndClient(w.net.MustDial("file"), w.ids[bob], w.clk)
	hints, err := ec.Hints("/hinted")
	if err != nil {
		t.Fatal(err)
	}
	if len(hints) != 2 {
		t.Fatalf("hints = %+v", hints)
	}
	if len(hints[0].Principals) != 1 || hints[0].Principals[0] != w.authzSrv.ID {
		t.Fatalf("hint 0 = %+v", hints[0])
	}
	if len(hints[1].Groups) != 1 || hints[1].Groups[0] != staff {
		t.Fatalf("hint 1 = %+v", hints[1])
	}
	// Unknown objects yield no hints.
	none, err := ec.Hints("/unknown")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("phantom hints: %+v", none)
	}
}
