package svc

import (
	"context"
	"fmt"

	"proxykit/internal/accounting"
	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/transport"
	"proxykit/internal/wire"
)

// Accounting RPC methods.
const (
	CreateAccountMethod = "acct.create"
	BalanceMethod       = "acct.balance"
	TransferMethod      = "acct.transfer"
	DepositCheckMethod  = "acct.deposit-check"
	StatementMethod     = "acct.statement"
)

// AcctService mounts an accounting server on the transport layer.
// Bearer checks cannot be deposited over this interface — their proxy
// key must not transit — so wire deposits carry endorsed (delegate)
// checks, which is also the paper's Fig. 5 flow.
type AcctService struct {
	srv    *accounting.Server
	opener *Opener
}

// NewAcctService wraps srv.
func NewAcctService(srv *accounting.Server, resolve func(principal.ID) (kcrypto.Verifier, error), clk clock.Clock) *AcctService {
	return &AcctService{srv: srv, opener: NewOpener(resolve, clk)}
}

// Mux returns the service's transport mux.
func (s *AcctService) Mux() *transport.Mux {
	m := transport.NewMux()
	m.Handle(CreateAccountMethod, s.handleCreate)
	m.Handle(BalanceMethod, s.handleBalance)
	m.Handle(TransferMethod, s.handleTransfer)
	m.Handle(DepositCheckMethod, s.handleDeposit)
	m.Handle(StatementMethod, s.handleStatement)
	return m
}

func (s *AcctService) handleStatement(_ context.Context, raw []byte) ([]byte, error) {
	from, body, err := s.opener.Open(StatementMethod, raw)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(body)
	name := d.String()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	txs, err := s.srv.Statement(name, []principal.ID{from})
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(64 * len(txs))
	e.Uint32(uint32(len(txs)))
	for _, tx := range txs {
		e.Time(tx.Time)
		e.Uint8(uint8(tx.Kind))
		e.String(tx.Currency)
		e.Int64(tx.Amount)
		e.String(tx.Counterparty)
		e.String(tx.CheckNumber)
	}
	return e.Bytes(), nil
}

func (s *AcctService) handleCreate(_ context.Context, raw []byte) ([]byte, error) {
	from, body, err := s.opener.Open(CreateAccountMethod, raw)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(body)
	name := d.String()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	if err := s.srv.CreateAccount(name, from); err != nil {
		return nil, err
	}
	return []byte{1}, nil
}

func (s *AcctService) handleBalance(_ context.Context, raw []byte) ([]byte, error) {
	from, body, err := s.opener.Open(BalanceMethod, raw)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(body)
	name := d.String()
	currency := d.String()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	bal, err := s.srv.Balance(name, currency, []principal.ID{from})
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(8)
	e.Int64(bal)
	return e.Bytes(), nil
}

func (s *AcctService) handleTransfer(ctx context.Context, raw []byte) ([]byte, error) {
	from, body, err := s.opener.Open(TransferMethod, raw)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(body)
	src := d.String()
	dst := d.String()
	currency := d.String()
	amount := d.Int64()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	if err := s.srv.TransferCtx(ctx, src, dst, currency, amount, []principal.ID{from}); err != nil {
		return nil, err
	}
	return []byte{1}, nil
}

func (s *AcctService) handleDeposit(ctx context.Context, raw []byte) ([]byte, error) {
	from, body, err := s.opener.Open(DepositCheckMethod, raw)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(body)
	c, err := DecodeCheck(d)
	if err != nil {
		return nil, err
	}
	creditAccount := d.String()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	r, err := s.srv.DepositCheckCtx(ctx, c, []principal.ID{from}, creditAccount)
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(64)
	e.String(r.Number)
	e.String(r.Currency)
	e.Int64(r.Amount)
	e.Bool(r.Collected)
	e.Uint32(uint32(r.Hops))
	return e.Bytes(), nil
}

// EncodeCheck serializes a check's public parts (metadata and
// certificate chain; never the proxy key).
func EncodeCheck(e *wire.Encoder, c *accounting.Check) {
	e.String(c.Number)
	c.Bank.Encode(e)
	e.String(c.Account)
	e.String(c.Currency)
	e.Int64(c.Amount)
	c.Payee.Encode(e)
	e.Bytes32(c.Proxy.MarshalCerts())
}

// DecodeCheck reverses EncodeCheck: the check's public parts only, so
// a decoded check can be deposited or endorsed but never spent as the
// payee's bearer instrument (the proxy key never travels).
func DecodeCheck(d *wire.Decoder) (*accounting.Check, error) {
	c := &accounting.Check{}
	c.Number = d.String()
	c.Bank = principal.DecodeID(d)
	c.Account = d.String()
	c.Currency = d.String()
	c.Amount = d.Int64()
	c.Payee = principal.DecodeID(d)
	certsRaw := d.Bytes32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("svc: decode check: %w", err)
	}
	certs, err := proxy.UnmarshalCerts(certsRaw)
	if err != nil {
		return nil, err
	}
	c.Proxy = &proxy.Proxy{Certs: certs}
	return c, nil
}

// AcctClient calls an accounting service on behalf of an identity.
type AcctClient struct {
	client transport.Client
	ident  *pubkey.Identity
	clk    clock.Clock
	retry  transport.RetryPolicy
}

// NewAcctClient wraps a transport client.
func NewAcctClient(c transport.Client, ident *pubkey.Identity, clk clock.Clock) *AcctClient {
	if clk == nil {
		clk = clock.System{}
	}
	return &AcctClient{client: c, ident: ident, clk: clk}
}

// SetRetry enables retrying of this client's RPCs. Requests are
// re-sealed per attempt (fresh envelope nonce); DepositCheck
// additionally converts a duplicate-check refusal on a retry into
// success, since the bank's accept-once registry proves an earlier
// delivery was credited.
func (c *AcctClient) SetRetry(p transport.RetryPolicy) { c.retry = p }

func (c *AcctClient) call(method string, body []byte) ([]byte, error) {
	return sealedCall(c.client, c.ident, c.clk, c.retry, method, body)
}

// CreateAccount creates an account owned by this client.
func (c *AcctClient) CreateAccount(name string) error {
	e := wire.NewEncoder(32)
	e.String(name)
	_, err := c.call(CreateAccountMethod, e.Bytes())
	return err
}

// Balance reads a balance.
func (c *AcctClient) Balance(name, currency string) (int64, error) {
	e := wire.NewEncoder(32)
	e.String(name)
	e.String(currency)
	resp, err := c.call(BalanceMethod, e.Bytes())
	if err != nil {
		return 0, err
	}
	d := wire.NewDecoder(resp)
	bal := d.Int64()
	if err := d.Finish(); err != nil {
		return 0, err
	}
	return bal, nil
}

// Transfer moves funds between local accounts.
func (c *AcctClient) Transfer(from, to, currency string, amount int64) error {
	e := wire.NewEncoder(64)
	e.String(from)
	e.String(to)
	e.String(currency)
	e.Int64(amount)
	_, err := c.call(TransferMethod, e.Bytes())
	return err
}

// Statement fetches an account's transaction history.
func (c *AcctClient) Statement(name string) ([]accounting.Transaction, error) {
	e := wire.NewEncoder(32)
	e.String(name)
	resp, err := c.call(StatementMethod, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(resp)
	n := d.Uint32()
	out := make([]accounting.Transaction, 0, min(int(n), 1024))
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		out = append(out, accounting.Transaction{
			Time:         d.Time(),
			Kind:         accounting.TxKind(d.Uint8()),
			Currency:     d.String(),
			Amount:       d.Int64(),
			Counterparty: d.String(),
			CheckNumber:  d.String(),
		})
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// DepositCheck deposits an endorsed check into creditAccount. Under a
// retry policy a redelivered deposit may be refused as a duplicate
// check number; when that happens on a retry attempt the refusal is the
// lost acknowledgment of an earlier successful delivery (the bank's
// accept-once registry is the ack of record), so it is returned as a
// success with a minimal receipt.
func (c *AcctClient) DepositCheck(check *accounting.Check, creditAccount string) (*accounting.Receipt, error) {
	e := wire.NewEncoder(1024)
	EncodeCheck(e, check)
	e.String(creditAccount)
	body := e.Bytes()
	var resp []byte
	dupAck := false
	err := c.retry.Do(DepositCheckMethod, func(attempt int) error {
		sealed, serr := Seal(c.ident, DepositCheckMethod, body, c.clk)
		if serr != nil {
			return serr
		}
		r, cerr := c.client.Call(DepositCheckMethod, sealed)
		if cerr != nil && attempt > 0 && isRemoteDuplicate(cerr) {
			mDepositDupAcks.Inc()
			dupAck = true
			return nil
		}
		resp = r
		return cerr
	})
	if err != nil {
		return nil, err
	}
	if dupAck {
		return &accounting.Receipt{
			Number:    check.Number,
			Currency:  check.Currency,
			Amount:    check.Amount,
			Collected: true,
			Hops:      1,
		}, nil
	}
	d := wire.NewDecoder(resp)
	r := &accounting.Receipt{}
	r.Number = d.String()
	r.Currency = d.String()
	r.Amount = d.Int64()
	r.Collected = d.Bool()
	r.Hops = int(d.Uint32())
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return r, nil
}
