package svc

import (
	"context"
	"fmt"
	"time"

	"proxykit/internal/authz"
	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
	"proxykit/internal/transport"
	"proxykit/internal/wire"
)

// GrantMethod is the authorization server's RPC method (Fig. 3,
// messages 1 and 2).
const GrantMethod = "authz.grant"

// AuthzService mounts an authorization server on the transport layer.
type AuthzService struct {
	srv    *authz.Server
	opener *Opener
	env    *proxy.VerifyEnv
	clk    clock.Clock
}

// NewAuthzService wraps srv. resolve verifies request envelopes and
// presented group proxies.
func NewAuthzService(srv *authz.Server, resolve func(principal.ID) (kcrypto.Verifier, error), clk clock.Clock) *AuthzService {
	if clk == nil {
		clk = clock.System{}
	}
	return &AuthzService{
		srv:    srv,
		opener: NewOpener(resolve, clk),
		env: &proxy.VerifyEnv{
			Server:          srv.ID,
			Clock:           clk,
			ResolveIdentity: resolve,
		},
		clk: clk,
	}
}

// SetChainCache installs a verified-chain cache for the group proxies
// presented with grant requests (see proxy.ChainCache). Call during
// setup, before the service starts taking requests.
func (s *AuthzService) SetChainCache(cc *proxy.ChainCache) {
	s.env.Cache = cc
}

// Mux returns the service's transport mux.
func (s *AuthzService) Mux() *transport.Mux {
	m := transport.NewMux()
	m.Handle(GrantMethod, s.handleGrant)
	return m
}

func (s *AuthzService) handleGrant(ctx context.Context, raw []byte) ([]byte, error) {
	from, body, err := s.opener.Open(GrantMethod, raw)
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(body)
	ephPub := d.Bytes32()
	endServer := principal.DecodeID(d)
	nObjs := d.Uint32()
	objs := make([]authz.RequestedObject, 0, min(int(nObjs), 64))
	for i := uint32(0); i < nObjs && d.Err() == nil; i++ {
		objs = append(objs, authz.RequestedObject{Object: d.String(), Ops: d.StringSlice()})
	}
	lifetime := time.Duration(d.Int64())
	delegate := d.Bool()
	presRaw := d.BytesSlice()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}

	groups, propagated, err := verifyGroupProxies(s.env, presRaw, from, s.clk)
	if err != nil {
		return nil, err
	}
	p, err := s.srv.GrantCtx(ctx, &authz.GrantRequest{
		Client:     from,
		EndServer:  endServer,
		Objects:    objs,
		Lifetime:   lifetime,
		Delegate:   delegate,
		Groups:     groups,
		Propagated: propagated,
	})
	if err != nil {
		return nil, err
	}
	return sealReply(p, ephPub)
}

// verifyGroupProxies validates delegate group-proxy presentations
// accompanying a service request and returns the asserted memberships
// plus the restrictions to propagate (§7.9). Bearer presentations are
// rejected — services accept delegate group proxies so the envelope
// identity anchors them.
func verifyGroupProxies(env *proxy.VerifyEnv, presRaw [][]byte, from principal.ID, clk clock.Clock) (map[principal.Global]bool, restrict.Set, error) {
	if len(presRaw) == 0 {
		return nil, nil, nil
	}
	groups := make(map[principal.Global]bool)
	var propagated restrict.Set
	for i, raw := range presRaw {
		pr, err := proxy.UnmarshalPresentation(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("group proxy %d: %w", i, err)
		}
		if pr.Proof != nil {
			return nil, nil, fmt.Errorf("group proxy %d: bearer presentation not accepted by services", i)
		}
		v, err := env.VerifyPresentation(pr, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("group proxy %d: %w", i, err)
		}
		// Collect the groups this proxy may assert and test each.
		for _, r := range v.Restrictions {
			gm, ok := r.(restrict.GroupMembership)
			if !ok {
				continue
			}
			for _, g := range gm.Groups {
				if g.Server != v.Grantor {
					continue
				}
				ctx := &restrict.Context{
					Server:           env.Server,
					ClientIdentities: []principal.ID{from},
					AssertedGroups:   []principal.Global{g},
					Now:              clk.Now(),
				}
				if err := v.Authorize(ctx); err == nil {
					groups[g] = true
				}
			}
		}
		propagated = propagated.Merge(v.Restrictions)
	}
	return groups, propagated, nil
}

// sealReply performs the service side of the ephemeral key agreement
// and seals the granted proxy toward the requester.
func sealReply(p *proxy.Proxy, clientEphPub []byte) ([]byte, error) {
	eph, err := kcrypto.NewECDHKey()
	if err != nil {
		return nil, err
	}
	shared, err := eph.SharedKey(clientEphPub)
	if err != nil {
		return nil, err
	}
	sealed, err := sealProxy(p, shared)
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(256 + len(sealed))
	e.Bytes32(eph.PublicBytes())
	e.Bytes32(sealed)
	return e.Bytes(), nil
}

// openReply unwraps a sealed proxy reply with the client's ephemeral
// key.
func openReply(raw []byte, eph *kcrypto.ECDHKey) (*proxy.Proxy, error) {
	d := wire.NewDecoder(raw)
	serverPub := d.Bytes32()
	sealed := d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	shared, err := eph.SharedKey(serverPub)
	if err != nil {
		return nil, err
	}
	return openProxy(sealed, shared)
}

// AuthzClient calls an authorization service on behalf of an identity.
type AuthzClient struct {
	client transport.Client
	ident  *pubkey.Identity
	clk    clock.Clock
	retry  transport.RetryPolicy
}

// NewAuthzClient wraps a transport client.
func NewAuthzClient(c transport.Client, ident *pubkey.Identity, clk clock.Clock) *AuthzClient {
	if clk == nil {
		clk = clock.System{}
	}
	return &AuthzClient{client: c, ident: ident, clk: clk}
}

// SetRetry enables retrying of this client's RPCs; requests are
// re-sealed per attempt (fresh envelope nonce). Grant requests are
// idempotent — each attempt simply asks for a proxy again.
func (c *AuthzClient) SetRetry(p transport.RetryPolicy) { c.retry = p }

// GrantParams are the client-side request parameters.
type GrantParams struct {
	// EndServer the proxy should target.
	EndServer principal.ID
	// Objects requested; empty asks for everything allowed.
	Objects []authz.RequestedObject
	// Lifetime of the proxy.
	Lifetime time.Duration
	// Delegate restricts the proxy to this client's identity.
	Delegate bool
	// GroupProxies are delegate presentations proving memberships.
	GroupProxies []*proxy.Presentation
}

// Grant requests an authorization proxy (the full Fig. 3 exchange: one
// round trip, proxy key protected in transit).
func (c *AuthzClient) Grant(p GrantParams) (*proxy.Proxy, error) {
	eph, err := kcrypto.NewECDHKey()
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(512)
	e.Bytes32(eph.PublicBytes())
	p.EndServer.Encode(e)
	e.Uint32(uint32(len(p.Objects)))
	for _, o := range p.Objects {
		e.String(o.Object)
		e.StringSlice(o.Ops)
	}
	e.Int64(int64(p.Lifetime))
	e.Bool(p.Delegate)
	pres := make([][]byte, len(p.GroupProxies))
	for i, gp := range p.GroupProxies {
		pres[i] = gp.Marshal()
	}
	e.BytesSlice(pres)

	resp, err := sealedCall(c.client, c.ident, c.clk, c.retry, GrantMethod, e.Bytes())
	if err != nil {
		return nil, err
	}
	return openReply(resp, eph)
}
