package kcrypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSymmetricSignVerify(t *testing.T) {
	k, err := NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("restricted proxy certificate")
	sig, err := k.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Verify(msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestSymmetricVerifyRejectsTamper(t *testing.T) {
	k, err := NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("payload")
	sig, _ := k.Sign(msg)

	tests := []struct {
		name string
		msg  []byte
		sig  []byte
	}{
		{"flipped message bit", []byte("paylobd"), sig},
		{"truncated signature", msg, sig[:len(sig)-1]},
		{"empty signature", msg, nil},
		{"flipped signature bit", msg, flipBit(sig)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := k.Verify(tt.msg, tt.sig); !errors.Is(err, ErrBadSignature) {
				t.Fatalf("got %v, want ErrBadSignature", err)
			}
		})
	}
}

func TestSymmetricVerifyRejectsWrongKey(t *testing.T) {
	k1, _ := NewSymmetricKey()
	k2, _ := NewSymmetricKey()
	msg := []byte("msg")
	sig, _ := k1.Sign(msg)
	if err := k2.Verify(msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("got %v, want ErrBadSignature", err)
	}
}

func TestSymmetricKeyFromBytesRejectsShort(t *testing.T) {
	if _, err := SymmetricKeyFromBytes(make([]byte, 8)); !errors.Is(err, ErrShortKey) {
		t.Fatalf("got %v, want ErrShortKey", err)
	}
}

func TestSymmetricKeyFromBytesCopies(t *testing.T) {
	raw := bytes.Repeat([]byte{7}, SymmetricKeySize)
	k, err := SymmetricKeyFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] = 99 // mutating the caller's slice must not affect the key
	k2, _ := SymmetricKeyFromBytes(bytes.Repeat([]byte{7}, SymmetricKeySize))
	if !k.Equal(k2) {
		t.Fatal("key was aliased to caller slice")
	}
}

func TestBytesReturnsCopy(t *testing.T) {
	k, _ := NewSymmetricKey()
	b := k.Bytes()
	b[0] ^= 0xff
	k2, _ := SymmetricKeyFromBytes(k.Bytes())
	if !k.Equal(k2) {
		t.Fatal("Bytes() aliased internal key material")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	k, _ := NewSymmetricKey()
	for _, size := range []int{0, 1, 15, 16, 17, 1000} {
		pt := bytes.Repeat([]byte{0xab}, size)
		sealed, err := k.Seal(pt)
		if err != nil {
			t.Fatalf("seal %d: %v", size, err)
		}
		got, err := k.Open(sealed)
		if err != nil {
			t.Fatalf("open %d: %v", size, err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip mismatch at size %d", size)
		}
	}
}

func TestSealProducesFreshIVs(t *testing.T) {
	k, _ := NewSymmetricKey()
	a, _ := k.Seal([]byte("same plaintext"))
	b, _ := k.Seal([]byte("same plaintext"))
	if bytes.Equal(a, b) {
		t.Fatal("two seals of identical plaintext produced identical ciphertext")
	}
}

func TestOpenRejectsTamper(t *testing.T) {
	k, _ := NewSymmetricKey()
	sealed, _ := k.Seal([]byte("secret proxy key"))
	for i := range sealed {
		bad := make([]byte, len(sealed))
		copy(bad, sealed)
		bad[i] ^= 0x01
		if _, err := k.Open(bad); !errors.Is(err, ErrBadCiphertext) {
			t.Fatalf("tampered byte %d accepted: %v", i, err)
		}
	}
}

func TestOpenRejectsShortAndWrongKey(t *testing.T) {
	k1, _ := NewSymmetricKey()
	k2, _ := NewSymmetricKey()
	if _, err := k1.Open([]byte("short")); !errors.Is(err, ErrBadCiphertext) {
		t.Fatalf("short input: %v", err)
	}
	sealed, _ := k1.Seal([]byte("data"))
	if _, err := k2.Open(sealed); !errors.Is(err, ErrBadCiphertext) {
		t.Fatalf("wrong key: %v", err)
	}
}

func TestKeyPairSignVerify(t *testing.T) {
	kp, err := NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("public-key proxy certificate")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := kp.Public().Verify(msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := kp.Verify(msg, sig); err != nil {
		t.Fatalf("self verify: %v", err)
	}
	if err := kp.Public().Verify([]byte("other"), sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong msg accepted: %v", err)
	}
}

func TestKeyPairFromSeedDeterministic(t *testing.T) {
	seed := bytes.Repeat([]byte{3}, 32)
	a, err := KeyPairFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := KeyPairFromSeed(seed)
	if a.KeyID() != b.KeyID() {
		t.Fatal("same seed produced different identities")
	}
	if _, err := KeyPairFromSeed([]byte("short")); err == nil {
		t.Fatal("short seed accepted")
	}
}

func TestPublicKeyFromBytes(t *testing.T) {
	kp, _ := NewKeyPair()
	pk, err := PublicKeyFromBytes(kp.Public().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if pk.KeyID() != kp.KeyID() {
		t.Fatal("round-tripped public key has different KeyID")
	}
	msg := []byte("m")
	sig, _ := kp.Sign(msg)
	if err := pk.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
	if _, err := PublicKeyFromBytes([]byte("nope")); err == nil {
		t.Fatal("bad length accepted")
	}
}

func TestKeyIDsStableAndDistinct(t *testing.T) {
	k1, _ := NewSymmetricKey()
	k2, _ := NewSymmetricKey()
	if k1.KeyID() == k2.KeyID() {
		t.Fatal("distinct keys share KeyID")
	}
	k1b, _ := SymmetricKeyFromBytes(k1.Bytes())
	if k1.KeyID() != k1b.KeyID() {
		t.Fatal("KeyID not a pure function of key material")
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeHMAC.String() != "hmac-sha256" {
		t.Fatal(SchemeHMAC.String())
	}
	if SchemeEd25519.String() != "ed25519" {
		t.Fatal(SchemeEd25519.String())
	}
	if Scheme(99).String() != "scheme(99)" {
		t.Fatal(Scheme(99).String())
	}
}

func TestNonceAndDigest(t *testing.T) {
	a, err := Nonce(16)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Nonce(16)
	if bytes.Equal(a, b) {
		t.Fatal("nonces repeated")
	}
	if len(Digest([]byte("x"))) != 32 {
		t.Fatal("digest size")
	}
}

// Property: Seal/Open round-trips arbitrary plaintexts, and signatures
// verify over arbitrary messages.
func TestPropertySealOpen(t *testing.T) {
	k, _ := NewSymmetricKey()
	f := func(pt []byte) bool {
		sealed, err := k.Seal(pt)
		if err != nil {
			return false
		}
		got, err := k.Open(sealed)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySignVerify(t *testing.T) {
	k, _ := NewSymmetricKey()
	kp, _ := NewKeyPair()
	f := func(msg []byte) bool {
		s1, err1 := k.Sign(msg)
		s2, err2 := kp.Sign(msg)
		return err1 == nil && err2 == nil &&
			k.Verify(msg, s1) == nil && kp.Public().Verify(msg, s2) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a signature over msg never verifies over a different msg.
func TestPropertySignatureBinding(t *testing.T) {
	k, _ := NewSymmetricKey()
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		sig, _ := k.Sign(a)
		return errors.Is(k.Verify(b, sig), ErrBadSignature)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualNilSafety(t *testing.T) {
	var nilKey *SymmetricKey
	k, _ := NewSymmetricKey()
	if nilKey.Equal(k) || k.Equal(nilKey) {
		t.Fatal("nil compared equal to real key")
	}
	if !nilKey.Equal(nil) {
		t.Fatal("nil != nil")
	}
}

func flipBit(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	out[0] ^= 0x80
	return out
}
