package kcrypto

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
)

// ECDHKey is an ephemeral X25519 key used to establish a pairwise
// sealing key when a proxy key must cross the network: Fig. 3 returns
// the proxy key "protected from disclosure by encrypting it under the
// session key exchanged during authentication"; services that have no
// standing session key derive one with an ephemeral exchange instead.
type ECDHKey struct {
	priv *ecdh.PrivateKey
}

// NewECDHKey generates an ephemeral X25519 key.
func NewECDHKey() (*ECDHKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("kcrypto: ecdh: %w", err)
	}
	return &ECDHKey{priv: priv}, nil
}

// PublicBytes returns the public half for transmission.
func (k *ECDHKey) PublicBytes() []byte {
	return k.priv.PublicKey().Bytes()
}

// Bytes returns the private key material for persistence (protect it
// like any private key).
func (k *ECDHKey) Bytes() []byte {
	return k.priv.Bytes()
}

// ECDHKeyFromBytes reconstructs a private key persisted with Bytes.
func ECDHKeyFromBytes(b []byte) (*ECDHKey, error) {
	priv, err := ecdh.X25519().NewPrivateKey(b)
	if err != nil {
		return nil, fmt.Errorf("kcrypto: ecdh private key: %w", err)
	}
	return &ECDHKey{priv: priv}, nil
}

// SharedKey derives the pairwise symmetric key from the peer's public
// half.
func (k *ECDHKey) SharedKey(peerPublic []byte) (*SymmetricKey, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerPublic)
	if err != nil {
		return nil, fmt.Errorf("kcrypto: ecdh peer key: %w", err)
	}
	secret, err := k.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("kcrypto: ecdh: %w", err)
	}
	derived := sha256.Sum256(append([]byte("proxykit-ecdh:"), secret...))
	return SymmetricKeyFromBytes(derived[:])
}

// Seed returns the Ed25519 seed of the private key, used to transfer a
// public-key proxy key to its grantee (always sealed; see ECDHKey).
func (kp *KeyPair) Seed() []byte {
	seed := make([]byte, ed25519.SeedSize)
	copy(seed, kp.priv.Seed())
	return seed
}
