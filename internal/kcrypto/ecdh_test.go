package kcrypto

import (
	"bytes"
	"testing"
)

func TestECDHSharedKeyAgreement(t *testing.T) {
	a, err := NewECDHKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewECDHKey()
	if err != nil {
		t.Fatal(err)
	}
	ka, err := a.SharedKey(b.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.SharedKey(a.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !ka.Equal(kb) {
		t.Fatal("shared keys disagree")
	}
	// The derived key seals and opens.
	sealed, err := ka.Seal([]byte("proxy key material"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := kb.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, []byte("proxy key material")) {
		t.Fatal("round trip mismatch")
	}
}

func TestECDHDistinctPairsDistinctKeys(t *testing.T) {
	a, _ := NewECDHKey()
	b, _ := NewECDHKey()
	c, _ := NewECDHKey()
	kab, _ := a.SharedKey(b.PublicBytes())
	kac, _ := a.SharedKey(c.PublicBytes())
	if kab.Equal(kac) {
		t.Fatal("different peers yielded the same key")
	}
}

func TestECDHRejectsGarbagePeer(t *testing.T) {
	a, _ := NewECDHKey()
	if _, err := a.SharedKey([]byte("short")); err == nil {
		t.Fatal("garbage peer key accepted")
	}
}

func TestKeyPairSeedRoundTrip(t *testing.T) {
	kp, err := NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	again, err := KeyPairFromSeed(kp.Seed())
	if err != nil {
		t.Fatal(err)
	}
	if again.KeyID() != kp.KeyID() {
		t.Fatal("seed round trip changed identity")
	}
	// Mutating the returned seed must not affect the key pair.
	s := kp.Seed()
	s[0] ^= 0xff
	again2, _ := KeyPairFromSeed(kp.Seed())
	if again2.KeyID() != kp.KeyID() {
		t.Fatal("Seed() aliased internal state")
	}
}

func TestECDHKeyPersistenceRoundTrip(t *testing.T) {
	k, err := NewECDHKey()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ECDHKeyFromBytes(k.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	peer, _ := NewECDHKey()
	s1, err := k.SharedKey(peer.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := again.SharedKey(peer.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Fatal("persisted key derives different secrets")
	}
	if _, err := ECDHKeyFromBytes([]byte("short")); err == nil {
		t.Fatal("bad key material accepted")
	}
}
