// Package kcrypto is the cryptographic substrate for proxykit.
//
// The 1993 paper is written against DES-era primitives; this package
// provides the same three roles with modern stdlib algorithms:
//
//   - integrity signatures under a shared key (HMAC-SHA256), used to sign
//     proxy certificates with a proxy key (Fig. 1 and Fig. 4 of the paper);
//   - public-key signatures (Ed25519), used for public-key proxies
//     (Fig. 6) and grantor identity signatures;
//   - authenticated sealing (AES-256-CTR with encrypt-then-MAC), used to
//     protect proxy keys and ticket bodies from disclosure in transit.
//
// All verification paths use constant-time comparison.
package kcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// Scheme identifies the algorithm family behind a Signer or Verifier.
type Scheme uint8

// Supported signature schemes.
const (
	SchemeHMAC Scheme = iota + 1
	SchemeEd25519
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeHMAC:
		return "hmac-sha256"
	case SchemeEd25519:
		return "ed25519"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// Errors returned by verification and sealing operations.
var (
	ErrBadSignature  = errors.New("kcrypto: signature verification failed")
	ErrBadCiphertext = errors.New("kcrypto: ciphertext authentication failed")
	ErrShortKey      = errors.New("kcrypto: key too short")
)

// Signer produces integrity signatures over canonical message bytes.
type Signer interface {
	// Sign returns a signature over msg.
	Sign(msg []byte) ([]byte, error)
	// Scheme reports the algorithm family of the signatures produced.
	Scheme() Scheme
	// KeyID returns a short stable identifier for the signing key, used
	// to select verification keys and to tag audit records. It reveals
	// nothing about secret key material.
	KeyID() string
}

// Verifier checks integrity signatures produced by the matching Signer.
type Verifier interface {
	// Verify returns nil iff sig is a valid signature of msg.
	Verify(msg, sig []byte) error
	// Scheme reports the algorithm family accepted.
	Scheme() Scheme
	// KeyID returns the identifier of the verification key.
	KeyID() string
}

// SymmetricKeySize is the byte length of all symmetric keys (AES-256 and
// HMAC-SHA256 share the same key length here for simplicity).
const SymmetricKeySize = 32

// SymmetricKey is a shared secret usable both as an integrity key
// (HMAC signer/verifier) and as a sealing key. Proxy keys in the
// conventional-cryptography mode of the paper are SymmetricKeys.
type SymmetricKey struct {
	k  []byte
	id string
}

// NewSymmetricKey generates a fresh random symmetric key.
func NewSymmetricKey() (*SymmetricKey, error) {
	k := make([]byte, SymmetricKeySize)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		return nil, fmt.Errorf("kcrypto: generate key: %w", err)
	}
	return SymmetricKeyFromBytes(k)
}

// SymmetricKeyFromBytes wraps existing key material. The slice is copied.
func SymmetricKeyFromBytes(k []byte) (*SymmetricKey, error) {
	if len(k) < 16 {
		return nil, ErrShortKey
	}
	cp := make([]byte, len(k))
	copy(cp, k)
	return &SymmetricKey{k: cp, id: keyIDFor(cp)}, nil
}

// keyIDFor derives a non-reversible short identifier from key material.
func keyIDFor(k []byte) string {
	h := sha256.Sum256(append([]byte("proxykit-keyid:"), k...))
	return hex.EncodeToString(h[:8])
}

// Bytes returns a copy of the raw key material. Callers transporting the
// key must seal it first (see Seal).
func (s *SymmetricKey) Bytes() []byte {
	cp := make([]byte, len(s.k))
	copy(cp, s.k)
	return cp
}

// KeyID implements Signer and Verifier.
func (s *SymmetricKey) KeyID() string { return s.id }

// Scheme implements Signer and Verifier.
func (s *SymmetricKey) Scheme() Scheme { return SchemeHMAC }

// Sign implements Signer using HMAC-SHA256.
func (s *SymmetricKey) Sign(msg []byte) ([]byte, error) {
	m := hmac.New(sha256.New, s.k)
	m.Write(msg)
	return m.Sum(nil), nil
}

// Verify implements Verifier.
func (s *SymmetricKey) Verify(msg, sig []byte) error {
	want, err := s.Sign(msg)
	if err != nil {
		return err
	}
	if !hmac.Equal(want, sig) {
		return ErrBadSignature
	}
	return nil
}

// Equal reports whether two keys hold identical material, in constant
// time.
func (s *SymmetricKey) Equal(o *SymmetricKey) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.k) != len(o.k) {
		return false
	}
	return subtle.ConstantTimeCompare(s.k, o.k) == 1
}

// sealOverhead is IV (16) + MAC (32).
const sealOverhead = aes.BlockSize + sha256.Size

// Seal encrypts-then-MACs plaintext under the key. Layout:
//
//	IV (16) || ciphertext || HMAC-SHA256(IV || ciphertext)
//
// Encryption and MAC subkeys are derived from the key so that a single
// SymmetricKey safely serves both purposes.
func (s *SymmetricKey) Seal(plaintext []byte) ([]byte, error) {
	encKey, macKey := s.deriveSubkeys()
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("kcrypto: seal: %w", err)
	}
	out := make([]byte, sealOverhead+len(plaintext))
	iv := out[:aes.BlockSize]
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("kcrypto: seal iv: %w", err)
	}
	ct := out[aes.BlockSize : aes.BlockSize+len(plaintext)]
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)
	m := hmac.New(sha256.New, macKey)
	m.Write(out[:aes.BlockSize+len(plaintext)])
	copy(out[aes.BlockSize+len(plaintext):], m.Sum(nil))
	return out, nil
}

// Open authenticates and decrypts a sealed message produced by Seal.
func (s *SymmetricKey) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < sealOverhead {
		return nil, ErrBadCiphertext
	}
	encKey, macKey := s.deriveSubkeys()
	body := sealed[:len(sealed)-sha256.Size]
	tag := sealed[len(sealed)-sha256.Size:]
	m := hmac.New(sha256.New, macKey)
	m.Write(body)
	if !hmac.Equal(m.Sum(nil), tag) {
		return nil, ErrBadCiphertext
	}
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("kcrypto: open: %w", err)
	}
	iv := body[:aes.BlockSize]
	pt := make([]byte, len(body)-aes.BlockSize)
	cipher.NewCTR(block, iv).XORKeyStream(pt, body[aes.BlockSize:])
	return pt, nil
}

// deriveSubkeys expands the key into independent encryption and MAC keys.
func (s *SymmetricKey) deriveSubkeys() (encKey, macKey []byte) {
	e := sha256.Sum256(append([]byte("proxykit-enc:"), s.k...))
	m := sha256.Sum256(append([]byte("proxykit-mac:"), s.k...))
	return e[:], m[:]
}

// KeyPair is an Ed25519 identity key pair used for public-key proxies and
// grantor signatures.
type KeyPair struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
	id   string
}

// NewKeyPair generates a fresh Ed25519 key pair.
func NewKeyPair() (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("kcrypto: generate keypair: %w", err)
	}
	return &KeyPair{pub: pub, priv: priv, id: keyIDFor(pub)}, nil
}

// KeyPairFromSeed derives a deterministic key pair from a 32-byte seed.
// Tests use this for reproducible identities.
func KeyPairFromSeed(seed []byte) (*KeyPair, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("kcrypto: seed must be %d bytes", ed25519.SeedSize)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)
	return &KeyPair{pub: pub, priv: priv, id: keyIDFor(pub)}, nil
}

// Public returns the verification half of the pair.
func (kp *KeyPair) Public() *PublicKey {
	return &PublicKey{pub: kp.pub, id: kp.id}
}

// KeyID implements Signer.
func (kp *KeyPair) KeyID() string { return kp.id }

// Scheme implements Signer.
func (kp *KeyPair) Scheme() Scheme { return SchemeEd25519 }

// Sign implements Signer with Ed25519.
func (kp *KeyPair) Sign(msg []byte) ([]byte, error) {
	return ed25519.Sign(kp.priv, msg), nil
}

// Verify implements Verifier, allowing a KeyPair to verify its own
// signatures.
func (kp *KeyPair) Verify(msg, sig []byte) error {
	return kp.Public().Verify(msg, sig)
}

// PublicKey is the verification half of a KeyPair.
type PublicKey struct {
	pub ed25519.PublicKey
	id  string
}

// PublicKeyFromBytes wraps raw Ed25519 public key bytes.
func PublicKeyFromBytes(b []byte) (*PublicKey, error) {
	if len(b) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("kcrypto: public key must be %d bytes", ed25519.PublicKeySize)
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return &PublicKey{pub: cp, id: keyIDFor(cp)}, nil
}

// Bytes returns the raw public key bytes.
func (p *PublicKey) Bytes() []byte {
	cp := make([]byte, len(p.pub))
	copy(cp, p.pub)
	return cp
}

// KeyID implements Verifier.
func (p *PublicKey) KeyID() string { return p.id }

// Scheme implements Verifier.
func (p *PublicKey) Scheme() Scheme { return SchemeEd25519 }

// Verify implements Verifier.
func (p *PublicKey) Verify(msg, sig []byte) error {
	if !ed25519.Verify(p.pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// Nonce returns n cryptographically random bytes, used for challenges,
// check numbers and session identifiers.
func Nonce(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("kcrypto: nonce: %w", err)
	}
	return b, nil
}

// Digest returns the SHA-256 digest of msg; used to bind application
// payloads into authenticators.
func Digest(msg []byte) []byte {
	d := sha256.Sum256(msg)
	return d[:]
}

// Interface compliance.
var (
	_ Signer   = (*SymmetricKey)(nil)
	_ Verifier = (*SymmetricKey)(nil)
	_ Signer   = (*KeyPair)(nil)
	_ Verifier = (*KeyPair)(nil)
	_ Verifier = (*PublicKey)(nil)
)
