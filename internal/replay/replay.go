// Package replay provides the once-only registries required by the
// accept-once restriction (§7.7 of the paper) and by authenticator
// replay detection in the Kerberos substrate (§6.2).
//
// "Once a check is paid, the accounting server keeps track of the check
// number until the expiration time on the check. If, within that period,
// another check with the same number is seen, it is rejected."
//
// Retired entries are garbage-collected with expiry buckets: each entry
// is filed under its expiry minute, and a sweep visits only buckets
// whose minute has passed — O(expired), not O(retained). The E7 ablation
// (BenchmarkE7AcceptOnce*) measures the difference against a full-scan
// sweep.
package replay

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"proxykit/internal/clock"
)

// ErrDuplicate is returned when an identifier is presented again within
// its retention window.
var ErrDuplicate = errors.New("replay: identifier already accepted")

// bucketGranularity is the width of one expiry bucket.
const bucketGranularity = time.Minute

// Cache is a thread-safe once-only registry with bucketed expiry GC.
type Cache struct {
	mu      sync.Mutex
	clk     clock.Clock
	entries map[string]time.Time
	buckets map[int64][]string
	ops     int
	// SweepEvery controls amortized garbage collection: every
	// SweepEvery accepted entries, expired buckets are reclaimed.
	// <=0 disables automatic sweeping (callers must call Sweep).
	SweepEvery int
}

// New returns a Cache using clk (nil means the system clock).
func New(clk clock.Clock) *Cache {
	if clk == nil {
		clk = clock.System{}
	}
	return &Cache{
		clk:        clk,
		entries:    make(map[string]time.Time),
		buckets:    make(map[int64][]string),
		SweepEvery: 1024,
	}
}

// compositeKey makes (grantor, id) injective via a length prefix.
func compositeKey(grantorKeyID, id string) string {
	return fmt.Sprintf("%d:%s:%s", len(grantorKeyID), grantorKeyID, id)
}

// bucketOf files an expiry instant into its bucket.
func bucketOf(expires time.Time) int64 {
	return expires.UnixNano() / int64(bucketGranularity)
}

// Accept implements restrict.AcceptOnceRegistry: it records the
// (grantor, id) pair until expires, rejecting duplicates still within
// their window.
func (c *Cache) Accept(grantorKeyID, id string, expires time.Time) error {
	return c.Seen(compositeKey(grantorKeyID, id), expires)
}

// Seen records an arbitrary key until expires, returning ErrDuplicate if
// the key is already present and unexpired. A zero expires is rejected —
// retention must be bounded.
func (c *Cache) Seen(key string, expires time.Time) error {
	if expires.IsZero() {
		return fmt.Errorf("replay: entry %q has no expiry", key)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clk.Now()
	if exp, ok := c.entries[key]; ok && now.Before(exp) {
		return fmt.Errorf("%w: %q", ErrDuplicate, key)
	}
	c.entries[key] = expires
	b := bucketOf(expires)
	c.buckets[b] = append(c.buckets[b], key)
	c.ops++
	if c.SweepEvery > 0 && c.ops >= c.SweepEvery {
		c.sweepLocked(now)
		c.ops = 0
	}
	return nil
}

// Forget removes a previously accepted (grantor, id) pair — used when
// the operation the acceptance guarded ultimately failed, so a retry of
// the same identifier is not treated as a replay. The bucket reference
// is left behind and skipped at sweep time.
func (c *Cache) Forget(grantorKeyID, id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, compositeKey(grantorKeyID, id))
}

// Sweep removes expired entries immediately and reports how many were
// removed.
func (c *Cache) Sweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sweepLocked(c.clk.Now())
}

// sweepLocked reclaims every bucket whose minute has fully passed. An
// entry is deleted only if its recorded expiry has really passed — it
// may have been re-accepted with a later expiry, in which case it lives
// in a newer bucket too.
func (c *Cache) sweepLocked(now time.Time) int {
	removed := 0
	nowBucket := bucketOf(now)
	for b, keys := range c.buckets {
		if b >= nowBucket {
			continue
		}
		for _, k := range keys {
			if exp, ok := c.entries[k]; ok && !now.Before(exp) {
				delete(c.entries, k)
				removed++
			}
		}
		delete(c.buckets, b)
	}
	return removed
}

// Entry is one exported registry entry — the retained key and the
// instant it may be forgotten. Snapshots of accounting state carry
// these so a restarted bank still rejects paid check numbers (§7.7).
type Entry struct {
	Key     string    `json:"key"`
	Expires time.Time `json:"expires"`
}

// Export returns every retained entry sorted by key (deterministic for
// snapshot byte-comparison), including expired entries not yet swept.
func (c *Cache) Export() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, len(c.entries))
	for k, exp := range c.entries {
		out = append(out, Entry{Key: k, Expires: exp})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Restore loads exported entries into an empty or existing cache,
// bypassing the duplicate check — restoring the same key twice keeps
// the later expiry's bucket alongside the earlier one, which the sweep
// already tolerates.
func (c *Cache) Restore(entries []Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range entries {
		c.entries[e.Key] = e.Expires
		b := bucketOf(e.Expires)
		c.buckets[b] = append(c.buckets[b], e.Key)
	}
}

// Clear empties the registry. Replication snapshot installs replace the
// accept-once state wholesale: the installed snapshot carries the
// primary's entries, and anything retained locally belongs to a history
// the standby is abandoning.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]time.Time)
	c.buckets = make(map[int64][]string)
	c.ops = 0
}

// Len reports the number of retained entries (including expired entries
// not yet swept).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
