package replay

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"proxykit/internal/clock"
)

func TestAcceptRejectsDuplicate(t *testing.T) {
	clk := clock.NewFake(time.Unix(100, 0))
	c := New(clk)
	exp := clk.Now().Add(time.Hour)

	if err := c.Accept("grantor1", "check-1", exp); err != nil {
		t.Fatal(err)
	}
	if err := c.Accept("grantor1", "check-1", exp); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
}

func TestAcceptNamespacedByGrantor(t *testing.T) {
	clk := clock.NewFake(time.Unix(100, 0))
	c := New(clk)
	exp := clk.Now().Add(time.Hour)
	if err := c.Accept("g1", "check-1", exp); err != nil {
		t.Fatal(err)
	}
	if err := c.Accept("g2", "check-1", exp); err != nil {
		t.Fatalf("different grantor rejected: %v", err)
	}
	// A crafted grantor/id pair must not collide with another pair via
	// string concatenation.
	if err := c.Accept("g3\x00x", "y", exp); err != nil {
		t.Fatal(err)
	}
	if err := c.Accept("g3", "x\x00y", exp); err != nil {
		t.Fatalf("separator collision: %v", err)
	}
}

func TestExpiryAllowsReuse(t *testing.T) {
	clk := clock.NewFake(time.Unix(100, 0))
	c := New(clk)
	if err := c.Accept("g", "id", clk.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	// Past the retention window the identifier may appear again — the
	// certificate carrying it would itself have expired.
	if err := c.Accept("g", "id", clk.Now().Add(time.Minute)); err != nil {
		t.Fatalf("expired entry still blocking: %v", err)
	}
}

func TestZeroExpiryRejected(t *testing.T) {
	c := New(clock.NewFake(time.Unix(100, 0)))
	if err := c.Accept("g", "id", time.Time{}); err == nil {
		t.Fatal("unbounded retention accepted")
	}
}

func TestSweepRemovesExpired(t *testing.T) {
	clk := clock.NewFake(time.Unix(100, 0))
	c := New(clk)
	c.SweepEvery = 0 // manual sweeping only
	for i := 0; i < 10; i++ {
		if err := c.Seen(fmt.Sprintf("k%d", i), clk.Now().Add(time.Duration(i+1)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	// Reclamation is bucketed: entries are reclaimed once their expiry
	// bucket (one minute wide) has fully passed, so advance past the
	// fifth entry's bucket.
	clk.Advance(6 * time.Minute)
	removed := c.Sweep()
	if removed != 5 {
		t.Fatalf("removed %d, want 5", removed)
	}
	if c.Len() != 5 {
		t.Fatalf("len = %d, want 5", c.Len())
	}
	// Even before being swept, an expired entry never blocks
	// re-acceptance (Seen checks expiry directly).
	if err := c.Seen("k5", clk.Now().Add(time.Hour)); err != nil {
		t.Fatalf("expired entry blocked reuse: %v", err)
	}
}

func TestAmortizedSweep(t *testing.T) {
	clk := clock.NewFake(time.Unix(100, 0))
	c := New(clk)
	c.SweepEvery = 4
	for i := 0; i < 4; i++ {
		if err := c.Seen(fmt.Sprintf("old%d", i), clk.Now().Add(time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Minute)
	// The 4th insert after advancing triggers a sweep of the expired
	// entries.
	for i := 0; i < 4; i++ {
		if err := c.Seen(fmt.Sprintf("new%d", i), clk.Now().Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4 (expired entries not swept)", c.Len())
	}
}

func TestConcurrentAcceptOnlyOneWins(t *testing.T) {
	clk := clock.NewFake(time.Unix(100, 0))
	c := New(clk)
	exp := clk.Now().Add(time.Hour)

	const goroutines = 32
	var wg sync.WaitGroup
	wins := make(chan struct{}, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c.Accept("g", "contested", exp) == nil {
				wins <- struct{}{}
			}
		}()
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d acceptances of the same identifier", n)
	}
}

func TestNilClockDefaultsToSystem(t *testing.T) {
	c := New(nil)
	if err := c.Seen("k", time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
}

func TestForgetAllowsRetry(t *testing.T) {
	clk := clock.NewFake(time.Unix(100, 0))
	c := New(clk)
	exp := clk.Now().Add(time.Hour)
	if err := c.Accept("g", "id", exp); err != nil {
		t.Fatal(err)
	}
	c.Forget("g", "id")
	if err := c.Accept("g", "id", exp); err != nil {
		t.Fatalf("retry after forget rejected: %v", err)
	}
	c.Forget("g", "never-accepted") // must not panic
}

// TestPropertyBucketedGC drives random accepts, forgets, and time
// advances, checking the registry's core invariants throughout:
// an unexpired accepted identifier is always rejected, an expired one is
// always re-acceptable, and sweeping reclaims every sufficiently old
// entry.
func TestPropertyBucketedGC(t *testing.T) {
	clk := clock.NewFake(time.Unix(1000, 0))
	c := New(clk)
	c.SweepEvery = 7

	rng := rand.New(rand.NewSource(5))
	expiries := make(map[string]time.Time) // id -> latest accepted expiry
	var ids []string
	for i := 0; i < 2000; i++ {
		switch rng.Intn(4) {
		case 0, 1: // accept a fresh id
			id := fmt.Sprintf("id-%d", i)
			exp := clk.Now().Add(time.Duration(1+rng.Intn(300)) * time.Second)
			if err := c.Accept("g", id, exp); err != nil {
				t.Fatalf("fresh accept rejected: %v", err)
			}
			expiries[id] = exp
			ids = append(ids, id)
		case 2: // duplicate attempt on a random accepted id
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			newExp := clk.Now().Add(time.Hour)
			err := c.Accept("g", id, newExp)
			if clk.Now().Before(expiries[id]) {
				if err == nil {
					t.Fatalf("unexpired %q re-accepted", id)
				}
			} else if err != nil {
				t.Fatalf("expired %q still blocked: %v", id, err)
			} else {
				expiries[id] = newExp
			}
		case 3: // time passes
			clk.Advance(time.Duration(rng.Intn(90)) * time.Second)
		}
	}
	// After everything expires and a sweep, the registry is empty.
	clk.Advance(2 * time.Hour)
	c.Sweep()
	if c.Len() != 0 {
		t.Fatalf("len = %d after full expiry sweep", c.Len())
	}
}
