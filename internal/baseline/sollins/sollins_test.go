package sollins

import (
	"errors"
	"testing"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
	"proxykit/internal/transport"
)

var (
	alice = principal.New("alice", "ISI.EDU")
	bob   = principal.New("bob", "ISI.EDU")
	carol = principal.New("carol", "ISI.EDU")
)

func setup(t *testing.T) (*transport.Network, transport.Client, map[principal.ID]*kcrypto.SymmetricKey) {
	t.Helper()
	as := NewAuthServer()
	keys := make(map[principal.ID]*kcrypto.SymmetricKey)
	for _, id := range []principal.ID{alice, bob, carol} {
		k, err := as.Register(id)
		if err != nil {
			t.Fatal(err)
		}
		keys[id] = k
	}
	net := transport.NewNetwork()
	net.Register("as", as.Mux())
	return net, net.MustDial("as"), keys
}

func TestChainVerifyCountsRoundTrips(t *testing.T) {
	net, asClient, keys := setup(t)

	l1, err := NewLink(alice, keys[alice], bob, restrict.Set{restrict.Quota{Currency: "p", Limit: 10}})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLink(bob, keys[bob], carol, restrict.Set{restrict.Quota{Currency: "p", Limit: 5}})
	if err != nil {
		t.Fatal(err)
	}
	chain := Chain{}.Extend(l1).Extend(l2)

	rs, trips, err := Verify(chain, carol, asClient)
	if err != nil {
		t.Fatal(err)
	}
	if trips != 2 {
		t.Fatalf("trips = %d, want 2 (one per link)", trips)
	}
	if q := rs.Quotas()["p"]; q != 5 {
		t.Fatalf("accumulated quota = %d", q)
	}
	if _, rts, _ := net.Stats().Snapshot(); rts != 2 {
		t.Fatalf("network round trips = %d", rts)
	}
}

func TestChainContinuityChecked(t *testing.T) {
	_, asClient, keys := setup(t)
	l1, _ := NewLink(alice, keys[alice], bob, nil)
	l2, _ := NewLink(alice, keys[alice], carol, nil) // should be from bob
	if _, _, err := Verify(Chain{l1, l2}, carol, asClient); !errors.Is(err, ErrBadChain) {
		t.Fatalf("err = %v", err)
	}
	// Wrong final holder.
	if _, _, err := Verify(Chain{l1}, carol, asClient); !errors.Is(err, ErrBadChain) {
		t.Fatalf("holder err = %v", err)
	}
	// Empty chain.
	if _, _, err := Verify(nil, carol, asClient); !errors.Is(err, ErrBadChain) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestForgedLinkRejected(t *testing.T) {
	_, asClient, keys := setup(t)
	// Bob forges a link claiming to be from alice, using his own key.
	forged, _ := NewLink(alice, keys[bob], bob, nil)
	if _, _, err := Verify(Chain{forged}, bob, asClient); err == nil {
		t.Fatal("forged link accepted")
	}
}

func TestTamperedRestrictionsRejected(t *testing.T) {
	_, asClient, keys := setup(t)
	l, _ := NewLink(alice, keys[alice], bob, restrict.Set{restrict.Quota{Currency: "p", Limit: 1}})
	l.Restrictions = restrict.Set{restrict.Quota{Currency: "p", Limit: 1 << 40}}
	if _, _, err := Verify(Chain{l}, bob, asClient); err == nil {
		t.Fatal("tampered restrictions accepted")
	}
}

func TestUnknownPrincipalRejected(t *testing.T) {
	_, asClient, keys := setup(t)
	ghost := principal.New("ghost", "ISI.EDU")
	l, _ := NewLink(ghost, keys[alice], bob, nil)
	if _, _, err := Verify(Chain{l}, bob, asClient); err == nil {
		t.Fatal("unknown principal accepted")
	}
}

func TestVerifyLinkDirect(t *testing.T) {
	as := NewAuthServer()
	k, err := as.Register(alice)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLink(alice, k, bob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.VerifyLink(l); err != nil {
		t.Fatal(err)
	}
	if err := as.VerifyLink(&Link{From: principal.New("x", "Y"), To: bob}); !errors.Is(err, ErrUnknownPrincipal) {
		t.Fatalf("err = %v", err)
	}
}
