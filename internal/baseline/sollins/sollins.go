// Package sollins implements the cascaded-authentication baseline the
// paper compares against (§3.4, §5): Sollins's 1988 scheme in which
// restrictions are passed from party to party, but "the end-server has
// to contact the authentication server to verify the authenticity of a
// chain of proxies."
//
// Each link is authenticated with a key the issuer shares only with the
// authentication server, so the end-server cannot check any link
// locally: verification costs one authentication-server round trip per
// link. The restricted-proxy model removes exactly this cost, which
// experiment E4 measures.
package sollins

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
	"proxykit/internal/transport"
	"proxykit/internal/wire"
)

// Errors returned by the baseline.
var (
	ErrUnknownPrincipal = errors.New("sollins: unknown principal")
	ErrBadLink          = errors.New("sollins: link verification failed")
	ErrBadChain         = errors.New("sollins: invalid chain")
)

// Link is one hop of a cascaded-authentication chain: From passes its
// rights to To with added restrictions, sealed with the key From shares
// with the authentication server.
type Link struct {
	// From is the delegating principal.
	From principal.ID
	// To is the receiving principal.
	To principal.ID
	// Restrictions added at this hop.
	Restrictions restrict.Set
	// MAC authenticates the link under From's AS-shared key.
	MAC []byte
}

// linkBytes is the canonical MAC input.
func linkBytes(from, to principal.ID, rs restrict.Set) []byte {
	e := wire.NewEncoder(128)
	e.String("sollins-link-v1")
	from.Encode(e)
	to.Encode(e)
	rs.Encode(e)
	return e.Bytes()
}

// AuthServer is the central authentication server that registered every
// principal's key and verifies links on demand.
type AuthServer struct {
	mu   sync.RWMutex
	keys map[principal.ID]*kcrypto.SymmetricKey
}

// NewAuthServer returns an empty authentication server.
func NewAuthServer() *AuthServer {
	return &AuthServer{keys: make(map[principal.ID]*kcrypto.SymmetricKey)}
}

// Register provisions a principal and returns its shared key.
func (a *AuthServer) Register(id principal.ID) (*kcrypto.SymmetricKey, error) {
	key, err := kcrypto.NewSymmetricKey()
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.keys[id] = key
	return key, nil
}

// VerifyLink checks one link's MAC.
func (a *AuthServer) VerifyLink(l *Link) error {
	a.mu.RLock()
	key, ok := a.keys[l.From]
	a.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPrincipal, l.From)
	}
	if err := key.Verify(linkBytes(l.From, l.To, l.Restrictions), l.MAC); err != nil {
		return fmt.Errorf("%w: %s -> %s", ErrBadLink, l.From, l.To)
	}
	return nil
}

// VerifyLinkMethod is the RPC method name for link verification.
const VerifyLinkMethod = "sollins.verify-link"

// Mux serves link verification over a transport.
func (a *AuthServer) Mux() *transport.Mux {
	m := transport.NewMux()
	m.Handle(VerifyLinkMethod, func(_ context.Context, body []byte) ([]byte, error) {
		l, err := decodeLink(body)
		if err != nil {
			return nil, err
		}
		if err := a.VerifyLink(l); err != nil {
			return nil, err
		}
		return []byte{1}, nil
	})
	return m
}

// NewLink creates a MAC'd link from a principal holding its AS-shared
// key.
func NewLink(from principal.ID, key *kcrypto.SymmetricKey, to principal.ID, rs restrict.Set) (*Link, error) {
	mac, err := key.Sign(linkBytes(from, to, rs))
	if err != nil {
		return nil, err
	}
	return &Link{From: from, To: to, Restrictions: rs, MAC: mac}, nil
}

// Chain is an ordered sequence of links from the original grantor to the
// final holder.
type Chain []*Link

// Extend appends a hop.
func (c Chain) Extend(l *Link) Chain {
	out := make(Chain, len(c)+1)
	copy(out, c)
	out[len(c)] = l
	return out
}

// Restrictions returns the accumulated restriction set.
func (c Chain) Restrictions() restrict.Set {
	var out restrict.Set
	for _, l := range c {
		out = out.Merge(l.Restrictions)
	}
	return out
}

// Verify validates the chain at an end-server: structural continuity
// locally, plus one authentication-server round trip per link — the
// cost the restricted-proxy model eliminates. It returns the accumulated
// restrictions and the number of server round trips performed.
func Verify(c Chain, holder principal.ID, as transport.Client) (restrict.Set, int, error) {
	if len(c) == 0 {
		return nil, 0, fmt.Errorf("%w: empty", ErrBadChain)
	}
	for i := 1; i < len(c); i++ {
		if c[i].From != c[i-1].To {
			return nil, 0, fmt.Errorf("%w: hop %d from %s, previous to %s",
				ErrBadChain, i, c[i].From, c[i-1].To)
		}
	}
	if c[len(c)-1].To != holder {
		return nil, 0, fmt.Errorf("%w: final hop to %s, holder is %s",
			ErrBadChain, c[len(c)-1].To, holder)
	}
	trips := 0
	for i, l := range c {
		trips++
		if _, err := as.Call(VerifyLinkMethod, encodeLink(l)); err != nil {
			return nil, trips, fmt.Errorf("link %d: %w", i, err)
		}
	}
	return c.Restrictions(), trips, nil
}

func encodeLink(l *Link) []byte {
	e := wire.NewEncoder(256)
	l.From.Encode(e)
	l.To.Encode(e)
	l.Restrictions.Encode(e)
	e.Bytes32(l.MAC)
	return e.Bytes()
}

func decodeLink(b []byte) (*Link, error) {
	d := wire.NewDecoder(b)
	l := &Link{}
	l.From = principal.DecodeID(d)
	l.To = principal.DecodeID(d)
	rs, err := restrict.Decode(d)
	if err != nil {
		return nil, err
	}
	l.Restrictions = rs
	l.MAC = d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return l, nil
}
