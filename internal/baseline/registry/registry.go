// Package registry implements the Grapevine / Yellow-Pages style
// baseline of §5: "end-servers query registration servers to determine
// whether a client is a member of a particular group. ... In both
// approaches, the authorization decision remains with the local system."
//
// Every authorization decision costs the end-server one registration-
// server round trip; with group proxies the client fetches a proxy once
// and the end-server decides offline. Experiment E3 measures the
// difference.
package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"proxykit/internal/principal"
	"proxykit/internal/transport"
	"proxykit/internal/wire"
)

// ErrNotMember is returned when membership does not hold.
var ErrNotMember = errors.New("registry: not a member")

// Server is the registration server holding group membership files
// (the /etc/group of Sun's Yellow Pages).
type Server struct {
	mu     sync.RWMutex
	groups map[string]principal.Set
}

// NewServer returns an empty registration server.
func NewServer() *Server {
	return &Server{groups: make(map[string]principal.Set)}
}

// AddMember records membership.
func (s *Server) AddMember(group string, p principal.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[group]
	if !ok {
		g = principal.NewSet()
		s.groups[group] = g
	}
	g.Add(p)
}

// IsMember answers a membership query.
func (s *Server) IsMember(group string, p principal.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g, ok := s.groups[group]
	return ok && g.Contains(p)
}

// IsMemberMethod is the RPC method name for membership queries.
const IsMemberMethod = "registry.is-member"

// Mux serves membership queries over a transport.
func (s *Server) Mux() *transport.Mux {
	m := transport.NewMux()
	m.Handle(IsMemberMethod, func(_ context.Context, body []byte) ([]byte, error) {
		d := wire.NewDecoder(body)
		group := d.String()
		p := principal.DecodeID(d)
		if err := d.Finish(); err != nil {
			return nil, err
		}
		if !s.IsMember(group, p) {
			return nil, fmt.Errorf("%w: %s in %s", ErrNotMember, p, group)
		}
		return []byte{1}, nil
	})
	return m
}

// EndServer is an application server that delegates no decisions: it
// queries the registration server on every request.
type EndServer struct {
	// RequiredGroup gates every operation.
	RequiredGroup string

	reg transport.Client
}

// NewEndServer returns an end-server gating on group via the
// registration-server client.
func NewEndServer(group string, reg transport.Client) *EndServer {
	return &EndServer{RequiredGroup: group, reg: reg}
}

// Authorize performs one decision: one registration-server round trip.
func (e *EndServer) Authorize(client principal.ID) error {
	enc := wire.NewEncoder(64)
	enc.String(e.RequiredGroup)
	client.Encode(enc)
	if _, err := e.reg.Call(IsMemberMethod, enc.Bytes()); err != nil {
		return fmt.Errorf("registry: authorize %s: %w", client, err)
	}
	return nil
}
