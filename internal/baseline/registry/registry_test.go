package registry

import (
	"errors"
	"testing"

	"proxykit/internal/principal"
	"proxykit/internal/transport"
)

var (
	alice = principal.New("alice", "ISI.EDU")
	bob   = principal.New("bob", "ISI.EDU")
)

func TestAuthorizePerRequestRoundTrip(t *testing.T) {
	reg := NewServer()
	reg.AddMember("staff", alice)
	net := transport.NewNetwork()
	net.Register("reg", reg.Mux())
	es := NewEndServer("staff", net.MustDial("reg"))

	// Every decision costs one registration-server round trip — the
	// Grapevine pattern E3 compares against.
	for i := 0; i < 5; i++ {
		if err := es.Authorize(alice); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if _, rts, _ := net.Stats().Snapshot(); rts != 5 {
		t.Fatalf("round trips = %d, want 5", rts)
	}

	if err := es.Authorize(bob); err == nil {
		t.Fatal("non-member authorized")
	}
	var re *transport.RemoteError
	if err := es.Authorize(bob); !errors.As(err, &re) {
		t.Fatalf("expected remote error, got %v", err)
	}
}

func TestIsMemberDirect(t *testing.T) {
	reg := NewServer()
	reg.AddMember("staff", alice)
	if !reg.IsMember("staff", alice) {
		t.Fatal("member missing")
	}
	if reg.IsMember("staff", bob) || reg.IsMember("ghosts", alice) {
		t.Fatal("phantom membership")
	}
}
