// Package amoeba implements the prepay bank-server baseline of §5:
// "In Amoeba, a client must contact the bank and transfer funds into
// the server's account before it contacts the server. The server will
// then provide services until the pre-paid funds have been exhausted."
//
// Experiment E8 compares its message pattern against check-based
// accounting: prepay requires bank round trips on the request path
// (client prepays, server confirms), while a check travels with the
// request and clears off the critical path.
package amoeba

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"proxykit/internal/principal"
	"proxykit/internal/transport"
	"proxykit/internal/wire"
)

// Errors returned by the bank and servers.
var (
	ErrNoAccount         = errors.New("amoeba: no such account")
	ErrInsufficientFunds = errors.New("amoeba: insufficient funds")
	ErrNotPrepaid        = errors.New("amoeba: no prepaid funds")
)

// Bank is the central bank server. Accounts are keyed by principal;
// prepaid service funds live in sub-accounts keyed by (server, client).
type Bank struct {
	mu       sync.Mutex
	accounts map[string]map[string]int64 // account key -> currency -> balance
}

// NewBank returns an empty bank.
func NewBank() *Bank {
	return &Bank{accounts: make(map[string]map[string]int64)}
}

func accountKey(p principal.ID) string { return "acct:" + p.String() }

func prepaidKey(server, client principal.ID) string {
	return "prepaid:" + server.String() + ":" + client.String()
}

func (b *Bank) balanceOf(key, currency string) int64 {
	if a, ok := b.accounts[key]; ok {
		return a[currency]
	}
	return 0
}

func (b *Bank) credit(key, currency string, amount int64) {
	a, ok := b.accounts[key]
	if !ok {
		a = make(map[string]int64)
		b.accounts[key] = a
	}
	a[currency] += amount
}

// Mint provisions a client account.
func (b *Bank) Mint(p principal.ID, currency string, amount int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.credit(accountKey(p), currency, amount)
}

// Balance reports a principal's main account balance.
func (b *Bank) Balance(p principal.ID, currency string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balanceOf(accountKey(p), currency)
}

// Prepay moves funds from the client's account into the (server,
// client) prepaid pool.
func (b *Bank) Prepay(client, server principal.ID, currency string, amount int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.balanceOf(accountKey(client), currency) < amount {
		return fmt.Errorf("%w: %s", ErrInsufficientFunds, client)
	}
	b.credit(accountKey(client), currency, -amount)
	b.credit(prepaidKey(server, client), currency, amount)
	return nil
}

// Consume draws down prepaid funds on behalf of the server and deposits
// them into the server's account.
func (b *Bank) Consume(server, client principal.ID, currency string, amount int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	key := prepaidKey(server, client)
	if b.balanceOf(key, currency) < amount {
		return fmt.Errorf("%w: %s at %s", ErrNotPrepaid, client, server)
	}
	b.credit(key, currency, -amount)
	b.credit(accountKey(server), currency, amount)
	return nil
}

// PrepaidBalance reports the remaining prepaid funds for (server,
// client).
func (b *Bank) PrepaidBalance(server, client principal.ID, currency string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balanceOf(prepaidKey(server, client), currency)
}

// RPC method names.
const (
	PrepayMethod  = "amoeba.prepay"
	ConsumeMethod = "amoeba.consume"
	BalanceMethod = "amoeba.prepaid-balance"
)

// Mux serves the bank over a transport.
func (b *Bank) Mux() *transport.Mux {
	m := transport.NewMux()
	m.Handle(PrepayMethod, func(_ context.Context, body []byte) ([]byte, error) {
		client, server, cur, amt, err := decodeOp(body)
		if err != nil {
			return nil, err
		}
		if err := b.Prepay(client, server, cur, amt); err != nil {
			return nil, err
		}
		return []byte{1}, nil
	})
	m.Handle(ConsumeMethod, func(_ context.Context, body []byte) ([]byte, error) {
		client, server, cur, amt, err := decodeOp(body)
		if err != nil {
			return nil, err
		}
		if err := b.Consume(server, client, cur, amt); err != nil {
			return nil, err
		}
		return []byte{1}, nil
	})
	m.Handle(BalanceMethod, func(_ context.Context, body []byte) ([]byte, error) {
		client, server, cur, _, err := decodeOp(body)
		if err != nil {
			return nil, err
		}
		bal := b.PrepaidBalance(server, client, cur)
		return []byte(strconv.FormatInt(bal, 10)), nil
	})
	return m
}

// EncodeOp builds the wire body shared by the bank methods.
func EncodeOp(client, server principal.ID, currency string, amount int64) []byte {
	e := wire.NewEncoder(64)
	client.Encode(e)
	server.Encode(e)
	e.String(currency)
	e.Int64(amount)
	return e.Bytes()
}

func decodeOp(b []byte) (client, server principal.ID, currency string, amount int64, err error) {
	d := wire.NewDecoder(b)
	client = principal.DecodeID(d)
	server = principal.DecodeID(d)
	currency = d.String()
	amount = d.Int64()
	if e := d.Finish(); e != nil {
		return principal.ID{}, principal.ID{}, "", 0, e
	}
	return client, server, currency, amount, nil
}

// Service is an application server charging per request via the bank:
// each request verifies and draws down prepaid funds with one bank round
// trip.
type Service struct {
	// ID is the server's identity at the bank.
	ID principal.ID
	// CostPerRequest in Currency.
	CostPerRequest int64
	// Currency charged.
	Currency string

	bank transport.Client
}

// NewService returns a service charging via the bank client.
func NewService(id principal.ID, bank transport.Client, currency string, cost int64) *Service {
	return &Service{ID: id, bank: bank, Currency: currency, CostPerRequest: cost}
}

// Serve performs one chargeable request for client: it consumes prepaid
// funds (one bank round trip) and fails if the client has not prepaid
// enough — the Amoeba model.
func (s *Service) Serve(client principal.ID) error {
	_, err := s.bank.Call(ConsumeMethod, EncodeOp(client, s.ID, s.Currency, s.CostPerRequest))
	if err != nil {
		var re *transport.RemoteError
		if errors.As(err, &re) && strings.Contains(re.Msg, "no prepaid funds") {
			return fmt.Errorf("%w: %s", ErrNotPrepaid, client)
		}
		return err
	}
	return nil
}

// Client is the client side: it must prepay before using a service.
type Client struct {
	// ID is the client principal.
	ID principal.ID

	bank transport.Client
}

// NewClient returns a bank client for id.
func NewClient(id principal.ID, bank transport.Client) *Client {
	return &Client{ID: id, bank: bank}
}

// Prepay transfers funds to the (server, client) pool — the mandatory
// pre-contact bank round trip.
func (c *Client) Prepay(server principal.ID, currency string, amount int64) error {
	_, err := c.bank.Call(PrepayMethod, EncodeOp(c.ID, server, currency, amount))
	return err
}
