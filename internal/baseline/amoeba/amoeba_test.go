package amoeba

import (
	"errors"
	"testing"

	"proxykit/internal/principal"
	"proxykit/internal/transport"
)

var (
	client1 = principal.New("client1", "ISI.EDU")
	client2 = principal.New("client2", "ISI.EDU")
	server1 = principal.New("server1", "ISI.EDU")
)

func setup(t *testing.T) (*Bank, *transport.Network, transport.Client) {
	t.Helper()
	b := NewBank()
	b.Mint(client1, "credits", 100)
	net := transport.NewNetwork()
	net.Register("bank", b.Mux())
	return b, net, net.MustDial("bank")
}

func TestPrepayThenServe(t *testing.T) {
	b, net, bc := setup(t)
	c := NewClient(client1, bc)
	svc := NewService(server1, bc, "credits", 10)

	if err := c.Prepay(server1, "credits", 30); err != nil {
		t.Fatal(err)
	}
	// Three requests consume the prepaid pool.
	for i := 0; i < 3; i++ {
		if err := svc.Serve(client1); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// The fourth fails: funds exhausted.
	if err := svc.Serve(client1); !errors.Is(err, ErrNotPrepaid) {
		t.Fatalf("err = %v", err)
	}
	if got := b.Balance(client1, "credits"); got != 70 {
		t.Fatalf("client balance = %d", got)
	}
	if got := b.Balance(server1, "credits"); got != 30 {
		t.Fatalf("server balance = %d", got)
	}
	// Message pattern: 1 prepay + 4 consume attempts = 5 round trips.
	if _, rts, _ := net.Stats().Snapshot(); rts != 5 {
		t.Fatalf("round trips = %d, want 5", rts)
	}
}

func TestServeWithoutPrepayFails(t *testing.T) {
	_, _, bc := setup(t)
	svc := NewService(server1, bc, "credits", 10)
	if err := svc.Serve(client2); !errors.Is(err, ErrNotPrepaid) {
		t.Fatalf("err = %v", err)
	}
}

func TestPrepayInsufficientFunds(t *testing.T) {
	_, _, bc := setup(t)
	c := NewClient(client1, bc)
	if err := c.Prepay(server1, "credits", 1000); err == nil {
		t.Fatal("overdraft prepay accepted")
	}
}

func TestPrepaidPoolsIsolated(t *testing.T) {
	b, _, bc := setup(t)
	b.Mint(client2, "credits", 50)
	c1 := NewClient(client1, bc)
	c2 := NewClient(client2, bc)
	if err := c1.Prepay(server1, "credits", 20); err != nil {
		t.Fatal(err)
	}
	if err := c2.Prepay(server1, "credits", 5); err != nil {
		t.Fatal(err)
	}
	if got := b.PrepaidBalance(server1, client1, "credits"); got != 20 {
		t.Fatalf("pool1 = %d", got)
	}
	if got := b.PrepaidBalance(server1, client2, "credits"); got != 5 {
		t.Fatalf("pool2 = %d", got)
	}
	// client2's pool can't cover a 10-credit request even though
	// client1's can.
	svc := NewService(server1, bc, "credits", 10)
	if err := svc.Serve(client2); !errors.Is(err, ErrNotPrepaid) {
		t.Fatalf("err = %v", err)
	}
	if err := svc.Serve(client1); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleCurrencies(t *testing.T) {
	b := NewBank()
	b.Mint(client1, "credits", 10)
	b.Mint(client1, "pages", 3)
	if b.Balance(client1, "credits") != 10 || b.Balance(client1, "pages") != 3 {
		t.Fatal("currencies mixed")
	}
	if err := b.Prepay(client1, server1, "pages", 3); err != nil {
		t.Fatal(err)
	}
	if b.Balance(client1, "credits") != 10 {
		t.Fatal("prepay crossed currencies")
	}
}

func TestBalanceMethodOverTransport(t *testing.T) {
	_, _, bc := setup(t)
	c := NewClient(client1, bc)
	if err := c.Prepay(server1, "credits", 42); err != nil {
		t.Fatal(err)
	}
	resp, err := bc.Call(BalanceMethod, EncodeOp(client1, server1, "credits", 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "42" {
		t.Fatalf("balance = %q", resp)
	}
}
