package group

import "proxykit/internal/obs"

// mGrants counts group-membership proxy issuance (§3.3) by outcome.
var mGrants = obs.Default.NewCounterVec("proxykit_group_grants_total",
	"Group-membership proxy grant requests, by outcome (granted, denied).", "outcome")
