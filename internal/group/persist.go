package group

// Durable group databases: each membership mutation is one WAL record
// appended before the in-memory change becomes visible, and a periodic
// snapshot bounds replay. Mutations are JSON-encoded — the group
// database changes at administrative rates, not on any hot path.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"proxykit/internal/ledger"
	"proxykit/internal/principal"
)

// groupOp is one WAL record.
type groupOp struct {
	Kind      string `json:"kind"` // add-group | add-member | add-nested | remove-member
	Group     string `json:"group"`
	Principal string `json:"principal,omitempty"`
	Nested    string `json:"nested,omitempty"`
}

const (
	gopAddGroup     = "add-group"
	gopAddMember    = "add-member"
	gopAddNested    = "add-nested"
	gopRemoveMember = "remove-member"
)

// commitLocked appends the op and applies it; callers hold the write
// lock. With no ledger attached the apply is immediate. An append
// failure skips the mutation — the ledger fails closed, and a change
// that is not durable must not become visible.
func (s *Server) commitLocked(o *groupOp) error {
	if s.gate != nil {
		if err := s.gate(); err != nil {
			return err
		}
	}
	if s.ledger != nil {
		raw, err := json.Marshal(o)
		if err != nil {
			return err
		}
		if _, err := s.ledger.Append(raw); err != nil {
			return fmt.Errorf("group: %w", err)
		}
	}
	return s.applyLocked(o)
}

// applyLocked mutates in-memory state for one op — shared by the live
// mutators and recovery replay.
func (s *Server) applyLocked(o *groupOp) error {
	ensure := func() *members {
		g, ok := s.groups[o.Group]
		if !ok {
			g = &members{principals: principal.NewSet()}
			s.groups[o.Group] = g
		}
		return g
	}
	switch o.Kind {
	case gopAddGroup:
		ensure()
	case gopAddMember:
		p, err := principal.Parse(o.Principal)
		if err != nil {
			return fmt.Errorf("group: replay member %q: %w", o.Principal, err)
		}
		ensure().principals.Add(p)
	case gopAddNested:
		sub, err := principal.ParseGlobal(o.Nested)
		if err != nil {
			return fmt.Errorf("group: replay nested %q: %w", o.Nested, err)
		}
		g := ensure()
		g.nested = append(g.nested, sub)
	case gopRemoveMember:
		p, err := principal.Parse(o.Principal)
		if err != nil {
			return fmt.Errorf("group: replay member %q: %w", o.Principal, err)
		}
		if g, ok := s.groups[o.Group]; ok {
			delete(g.principals, p)
		}
	default:
		return fmt.Errorf("group: replay: unknown op %q", o.Kind)
	}
	return nil
}

// snapGroup / snapState are the snapshot schema, sorted throughout so
// identical databases marshal identically.
type snapGroup struct {
	Name       string   `json:"name"`
	Principals []string `json:"principals,omitempty"`
	Nested     []string `json:"nested,omitempty"`
}

type snapState struct {
	Groups []snapGroup `json:"groups"`
}

// SnapshotState captures the full database and the WAL sequence the
// capture covers.
func (s *Server) SnapshotState() ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := snapState{}
	names := make([]string, 0, len(s.groups))
	for name := range s.groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := s.groups[name]
		sg := snapGroup{Name: name}
		for p := range g.principals {
			sg.Principals = append(sg.Principals, p.String())
		}
		sort.Strings(sg.Principals)
		for _, sub := range g.nested {
			sg.Nested = append(sg.Nested, sub.String())
		}
		st.Groups = append(st.Groups, sg)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		return nil, 0, err
	}
	var seq uint64
	if s.ledger != nil {
		seq = s.ledger.LastSeq()
	}
	return raw, seq, nil
}

// restoreLocked rebuilds the database from a snapshot document.
func (s *Server) restoreLocked(raw []byte) error {
	var st snapState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("group: restore snapshot: %w", err)
	}
	for _, sg := range st.Groups {
		g := &members{principals: principal.NewSet()}
		for _, ps := range sg.Principals {
			p, err := principal.Parse(ps)
			if err != nil {
				return fmt.Errorf("group: restore principal %q: %w", ps, err)
			}
			g.principals.Add(p)
		}
		for _, ns := range sg.Nested {
			sub, err := principal.ParseGlobal(ns)
			if err != nil {
				return fmt.Errorf("group: restore nested %q: %w", ns, err)
			}
			g.nested = append(g.nested, sub)
		}
		s.groups[sg.Name] = g
	}
	return nil
}

// OpenLedger attaches a durable ledger to a fresh server, restoring any
// snapshot and replaying the WAL tail.
func (s *Server) OpenLedger(o ledger.Options) (*ledger.Recovery, error) {
	lg, rec, err := ledger.Open(o)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ledger != nil {
		lg.Close()
		return nil, errors.New("group: ledger already open")
	}
	if len(s.groups) != 0 {
		lg.Close()
		return nil, errors.New("group: OpenLedger requires a server with no groups yet")
	}
	if rec.Snapshot != nil {
		if err := s.restoreLocked(rec.Snapshot); err != nil {
			lg.Close()
			return nil, err
		}
	}
	for _, e := range rec.Entries {
		var o groupOp
		if err := json.Unmarshal(e.Data, &o); err != nil {
			lg.Close()
			return nil, fmt.Errorf("group: WAL record %d: %w", e.Seq, err)
		}
		if err := s.applyLocked(&o); err != nil {
			lg.Close()
			return nil, fmt.Errorf("group: replay record %d: %w", e.Seq, err)
		}
	}
	s.ledger = lg
	return rec, nil
}

// SnapshotNow captures the current database and commits it as a
// snapshot.
func (s *Server) SnapshotNow() error {
	state, seq, err := s.SnapshotState()
	if err != nil {
		return err
	}
	s.mu.RLock()
	lg := s.ledger
	s.mu.RUnlock()
	if lg == nil {
		return errors.New("group: no ledger attached")
	}
	return lg.WriteSnapshot(state, seq)
}

// StartSnapshotter runs SnapshotNow every interval while new WAL
// records exist; the returned stop function halts it.
func (s *Server) StartSnapshotter(interval time.Duration) (stop func()) {
	s.mu.RLock()
	lg := s.ledger
	s.mu.RUnlock()
	if lg == nil {
		return func() {}
	}
	return lg.StartSnapshotter(interval, s.SnapshotNow)
}

// CloseLedger flushes and closes the attached ledger.
func (s *Server) CloseLedger() error {
	s.mu.Lock()
	lg := s.ledger
	s.ledger = nil
	s.mu.Unlock()
	if lg == nil {
		return nil
	}
	return lg.Close()
}
