// Package group implements the group server of §3.3: it maintains group
// membership databases and "grants proxies that delegate the right to
// assert membership in a particular group".
//
// Group names are global: the composition of the group server's identity
// and the local group name. Groups may contain principals and nested
// groups — including groups maintained by other group servers, whose
// membership the client proves by presenting that server's group proxy.
package group

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"proxykit/internal/audit"
	"proxykit/internal/clock"
	"proxykit/internal/ledger"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
)

// Errors returned by the group server.
var (
	ErrUnknownGroup = errors.New("group: unknown group")
	ErrNotMember    = errors.New("group: not a member")
)

// members is one group's membership.
type members struct {
	principals principal.Set
	nested     []principal.Global
}

// Server is the group server.
type Server struct {
	// ID is the server's principal identity; it forms the server half of
	// every global group name this server maintains.
	ID principal.ID

	identity *pubkey.Identity
	clk      clock.Clock

	mu      sync.RWMutex
	groups  map[string]*members
	journal *audit.Journal
	ledger  *ledger.Ledger
	gate    func() error // commit gate; non-nil refusal blocks mutations
}

// SetJournal attaches an audit journal; every Grant decision is sealed
// into its chain.
func (s *Server) SetJournal(j *audit.Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// New creates a group server with the given signing identity.
func New(identity *pubkey.Identity, clk clock.Clock) *Server {
	if clk == nil {
		clk = clock.System{}
	}
	return &Server{
		ID:       identity.ID,
		identity: identity,
		clk:      clk,
		groups:   make(map[string]*members),
	}
}

// Global returns the global name of a local group.
func (s *Server) Global(name string) principal.Global {
	return principal.NewGlobal(s.ID, name)
}

// AddGroup creates an empty group (idempotent).
func (s *Server) AddGroup(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.groups[name]; !ok {
		_ = s.commitLocked(&groupOp{Kind: gopAddGroup, Group: name})
	}
}

// AddMember adds a principal to a group, creating the group if needed.
func (s *Server) AddMember(name string, p principal.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.commitLocked(&groupOp{Kind: gopAddMember, Group: name, Principal: p.String()})
}

// AddNestedGroup makes every member of sub a member of name. sub may be
// local or maintained by another group server.
func (s *Server) AddNestedGroup(name string, sub principal.Global) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.commitLocked(&groupOp{Kind: gopAddNested, Group: name, Nested: sub.String()})
}

// RemoveMember removes a principal from a group. Outstanding group
// proxies remain valid until they expire — the expiration-based
// revocation trade-off of §3.1.
func (s *Server) RemoveMember(name string, p principal.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.groups[name]; ok {
		_ = s.commitLocked(&groupOp{Kind: gopRemoveMember, Group: name, Principal: p.String()})
	}
}

// GrantRequest asks for a group-membership proxy.
type GrantRequest struct {
	// Client is the authenticated requesting principal.
	Client principal.ID
	// Groups are the local group names the client wants to assert; all
	// must check out.
	Groups []string
	// VerifiedGroups are memberships already proven by group proxies
	// from other servers — used to satisfy nested foreign groups.
	VerifiedGroups map[principal.Global]bool
	// Lifetime of the issued proxy.
	Lifetime time.Duration
	// Delegate, when true, restricts the proxy to the client's identity.
	Delegate bool
	// Propagated restrictions from presented proxies (§7.9).
	Propagated restrict.Set
}

// Grant verifies membership and issues a proxy whose group-membership
// restriction limits assertion to exactly the verified groups (§7.6).
func (s *Server) Grant(req *GrantRequest) (*proxy.Proxy, error) {
	return s.GrantCtx(context.Background(), req)
}

// GrantCtx is Grant with a request context; the context's trace ID is
// stamped onto the audit record.
func (s *Server) GrantCtx(ctx context.Context, req *GrantRequest) (p *proxy.Proxy, err error) {
	defer func() {
		if err != nil {
			mGrants.With("denied").Inc()
		} else {
			mGrants.With("granted").Inc()
		}
		s.auditGrant(ctx, req, err)
	}()
	if len(req.Groups) == 0 {
		return nil, fmt.Errorf("%w: no groups requested", ErrUnknownGroup)
	}
	granted := make([]principal.Global, 0, len(req.Groups))
	for _, name := range req.Groups {
		ok, err := s.IsMember(name, req.Client, req.VerifiedGroups)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%w: %s in %s", ErrNotMember, req.Client, s.Global(name))
		}
		granted = append(granted, s.Global(name))
	}
	rs := restrict.Set{restrict.GroupMembership{Groups: granted}}
	rs = rs.Merge(req.Propagated.Propagate(nil))
	if req.Delegate {
		rs = rs.Merge(restrict.Set{restrict.Grantee{Principals: []principal.ID{req.Client}}})
	}
	lifetime := req.Lifetime
	if lifetime <= 0 {
		lifetime = time.Hour
	}
	return proxy.Grant(proxy.GrantParams{
		Grantor:       s.ID,
		GrantorSigner: s.identity.Signer(),
		Restrictions:  rs,
		Lifetime:      lifetime,
		Mode:          proxy.ModePublicKey,
		Clock:         s.clk,
	})
}

// auditGrant records one grant decision if a journal is attached.
func (s *Server) auditGrant(ctx context.Context, req *GrantRequest, err error) {
	s.mu.RLock()
	j := s.journal
	s.mu.RUnlock()
	if j == nil {
		return
	}
	rec := audit.Record{
		Time:       s.clk.Now(),
		Kind:       audit.KindGroupGrant,
		Server:     s.ID,
		TraceID:    obs.TraceIDFrom(ctx),
		Presenters: []principal.ID{req.Client},
		Object:     strings.Join(req.Groups, ","),
		Op:         "grant",
		Outcome:    audit.OutcomeGranted,
		Detail:     map[string]string{"delegate": fmt.Sprint(req.Delegate)},
	}
	if err != nil {
		rec.Outcome = audit.OutcomeDenied
		rec.Reason = err.Error()
	}
	j.Append(rec)
}

// IsMember reports whether p belongs to the named local group, directly
// or through nesting. Foreign nested groups are satisfied by
// verifiedGroups; local nesting recurses with cycle protection.
func (s *Server) IsMember(name string, p principal.ID, verifiedGroups map[principal.Global]bool) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.isMemberLocked(name, p, verifiedGroups, make(map[string]bool))
}

func (s *Server) isMemberLocked(name string, p principal.ID, verified map[principal.Global]bool, visiting map[string]bool) (bool, error) {
	if visiting[name] {
		return false, nil // cycle; already being checked higher up
	}
	visiting[name] = true
	g, ok := s.groups[name]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownGroup, s.Global(name))
	}
	if g.principals.Contains(p) {
		return true, nil
	}
	for _, sub := range g.nested {
		if sub.Server == s.ID {
			ok, err := s.isMemberLocked(sub.Name, p, verified, visiting)
			if err != nil {
				// Unknown local nested groups are skipped rather than
				// failing the whole check; the database may be edited
				// out of order.
				continue
			}
			if ok {
				return true, nil
			}
			continue
		}
		if verified[sub] {
			return true, nil
		}
	}
	return false, nil
}

// Groups returns the names of all local groups, sorted: listings (and
// anything hashed or golden-tested downstream) must not jitter with
// map iteration order.
func (s *Server) Groups() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.groups))
	for name := range s.groups {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
