package group

import (
	"errors"
	"slices"
	"sort"
	"testing"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
)

var (
	alice  = principal.New("alice", "ISI.EDU")
	bob    = principal.New("bob", "ISI.EDU")
	carol  = principal.New("carol", "MIT.EDU")
	fileSv = principal.New("file/sv1", "ISI.EDU")
)

type world struct {
	t   *testing.T
	clk *clock.Fake
	srv *Server
	env *proxy.VerifyEnv
}

func newWorld(t *testing.T) *world {
	t.Helper()
	clk := clock.NewFake(time.Unix(11_000_000, 0))
	dir := pubkey.NewDirectory()
	ident, err := pubkey.NewIdentity(principal.New("groups", "ISI.EDU"))
	if err != nil {
		t.Fatal(err)
	}
	dir.RegisterIdentity(ident)
	return &world{
		t:   t,
		clk: clk,
		srv: New(ident, clk),
		env: &proxy.VerifyEnv{Server: fileSv, Clock: clk, ResolveIdentity: dir.Resolver()},
	}
}

func TestGrantMember(t *testing.T) {
	w := newWorld(t)
	w.srv.AddMember("staff", alice)

	p, err := w.srv.Grant(&GrantRequest{Client: alice, Groups: []string{"staff"}, Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.env.VerifyChain(p.Certs)
	if err != nil {
		t.Fatal(err)
	}
	if v.Grantor != w.srv.ID {
		t.Fatalf("grantor = %v", v.Grantor)
	}
	// The proxy asserts exactly "staff".
	ctx := &restrict.Context{Server: fileSv, AssertedGroups: []principal.Global{w.srv.Global("staff")}}
	if err := v.Authorize(ctx); err != nil {
		t.Fatal(err)
	}
	ctx.AssertedGroups = []principal.Global{w.srv.Global("admin")}
	if err := v.Authorize(ctx); err == nil {
		t.Fatal("proxy asserted ungranted group")
	}
}

func TestGrantNonMemberDenied(t *testing.T) {
	w := newWorld(t)
	w.srv.AddMember("staff", alice)
	if _, err := w.srv.Grant(&GrantRequest{Client: bob, Groups: []string{"staff"}}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v", err)
	}
}

func TestGrantUnknownGroup(t *testing.T) {
	w := newWorld(t)
	if _, err := w.srv.Grant(&GrantRequest{Client: alice, Groups: []string{"ghosts"}}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("err = %v", err)
	}
	if _, err := w.srv.Grant(&GrantRequest{Client: alice}); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("empty request err = %v", err)
	}
}

func TestMultiGroupGrantAllOrNothing(t *testing.T) {
	w := newWorld(t)
	w.srv.AddMember("staff", alice)
	w.srv.AddMember("admin", bob)
	if _, err := w.srv.Grant(&GrantRequest{Client: alice, Groups: []string{"staff", "admin"}}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v", err)
	}
	w.srv.AddMember("admin", alice)
	p, err := w.srv.Grant(&GrantRequest{Client: alice, Groups: []string{"staff", "admin"}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.env.VerifyChain(p.Certs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &restrict.Context{
		Server:         fileSv,
		AssertedGroups: []principal.Global{w.srv.Global("staff"), w.srv.Global("admin")},
	}
	if err := v.Authorize(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestNestedLocalGroups(t *testing.T) {
	w := newWorld(t)
	w.srv.AddMember("developers", alice)
	w.srv.AddNestedGroup("staff", w.srv.Global("developers"))

	ok, err := w.srv.IsMember("staff", alice, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("nested membership not found")
	}
	ok, _ = w.srv.IsMember("staff", bob, nil)
	if ok {
		t.Fatal("non-member found via nesting")
	}
}

func TestNestedGroupCycleTerminates(t *testing.T) {
	w := newWorld(t)
	w.srv.AddGroup("a")
	w.srv.AddGroup("b")
	w.srv.AddNestedGroup("a", w.srv.Global("b"))
	w.srv.AddNestedGroup("b", w.srv.Global("a"))
	w.srv.AddMember("b", alice)
	ok, err := w.srv.IsMember("a", alice, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("membership through cyclic nesting not found")
	}
	if ok, _ := w.srv.IsMember("a", bob, nil); ok {
		t.Fatal("phantom membership")
	}
}

func TestForeignNestedGroupViaVerified(t *testing.T) {
	// carol is a member of visitors%othergroups@MIT.EDU, which is nested
	// in our "staff". She proves it with a verified group proxy from the
	// foreign server.
	w := newWorld(t)
	foreign := principal.NewGlobal(principal.New("othergroups", "MIT.EDU"), "visitors")
	w.srv.AddGroup("staff")
	w.srv.AddNestedGroup("staff", foreign)

	ok, err := w.srv.IsMember("staff", carol, nil)
	if err != nil || ok {
		t.Fatalf("unproven foreign membership: ok=%v err=%v", ok, err)
	}
	ok, err = w.srv.IsMember("staff", carol, map[principal.Global]bool{foreign: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("verified foreign membership rejected")
	}

	// And a grant based on it works end to end.
	p, err := w.srv.Grant(&GrantRequest{
		Client:         carol,
		Groups:         []string{"staff"},
		VerifiedGroups: map[principal.Global]bool{foreign: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.env.VerifyChain(p.Certs); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveMember(t *testing.T) {
	w := newWorld(t)
	w.srv.AddMember("staff", alice)
	w.srv.RemoveMember("staff", alice)
	if _, err := w.srv.Grant(&GrantRequest{Client: alice, Groups: []string{"staff"}}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v", err)
	}
	w.srv.RemoveMember("nonexistent", alice) // must not panic
}

func TestDelegateGroupProxy(t *testing.T) {
	w := newWorld(t)
	w.srv.AddMember("staff", alice)
	p, err := w.srv.Grant(&GrantRequest{Client: alice, Groups: []string{"staff"}, Delegate: true})
	if err != nil {
		t.Fatal(err)
	}
	gs := p.Restrictions().Grantees()
	if len(gs) != 1 || gs[0] != alice {
		t.Fatalf("grantees = %v", gs)
	}
}

func TestGroupsListing(t *testing.T) {
	w := newWorld(t)
	w.srv.AddGroup("a")
	w.srv.AddMember("b", alice)
	if got := w.srv.Groups(); len(got) != 2 {
		t.Fatalf("groups = %v", got)
	}
}

// TestGroupsListingSorted: the listing must be deterministic (sorted),
// not map-iteration order — proxyctl listings and golden outputs
// depend on it.
func TestGroupsListingSorted(t *testing.T) {
	w := newWorld(t)
	names := []string{"zeta", "alpha", "mid", "beta", "omega", "gamma", "delta", "kappa"}
	for _, n := range names {
		w.srv.AddGroup(n)
	}
	want := append([]string(nil), names...)
	sort.Strings(want)
	for trial := 0; trial < 4; trial++ {
		got := w.srv.Groups()
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: groups = %v, want %v", trial, got, want)
		}
	}
}
