package group

// Replication hooks: a standby group server replays the primary's WAL
// records through the same applyLocked path recovery uses, and a commit
// gate refuses local mutations on standbys and deposed primaries.

import (
	"encoding/json"
	"errors"
	"fmt"

	"proxykit/internal/ledger"
)

// SetCommitGate installs a check run before every mutation commit; a
// non-nil error refuses the mutation. nil removes the gate. Replicated
// applies bypass it.
func (s *Server) SetCommitGate(gate func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gate = gate
}

// Ledger returns the attached ledger, nil when the server is in-memory
// only.
func (s *Server) Ledger() *ledger.Ledger {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ledger
}

// ApplyReplicated appends one shipped WAL record to the local ledger
// and applies it — the standby's replay path. The locally assigned
// sequence number must equal the primary's; a mismatch means the logs
// diverged.
func (s *Server) ApplyReplicated(seq uint64, payload []byte) error {
	var o groupOp
	if err := json.Unmarshal(payload, &o); err != nil {
		return fmt.Errorf("group: replicate: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ledger == nil {
		return errors.New("group: no ledger attached")
	}
	got, err := s.ledger.Append(payload)
	if err != nil {
		return fmt.Errorf("group: replicate: %w", err)
	}
	if got != seq {
		return fmt.Errorf("group: replication divergence: local seq %d, shipped seq %d", got, seq)
	}
	return s.applyLocked(&o)
}

// InstallSnapshot replaces the whole database with a snapshot shipped
// from the primary and resets the local ledger to cover it.
func (s *Server) InstallSnapshot(state []byte, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ledger == nil {
		return errors.New("group: no ledger attached")
	}
	s.groups = make(map[string]*members)
	if err := s.restoreLocked(state); err != nil {
		return err
	}
	return s.ledger.Reset(state, seq)
}
