package principal

import (
	"errors"
	"testing"
	"testing/quick"

	"proxykit/internal/wire"
)

func TestParseValid(t *testing.T) {
	tests := []struct {
		in          string
		name, realm string
	}{
		{"bcn@ISI.EDU", "bcn", "ISI.EDU"},
		{"file/server1@ATHENA.MIT.EDU", "file/server1", "ATHENA.MIT.EDU"},
		{"krbtgt/ISI.EDU@ISI.EDU", "krbtgt/ISI.EDU", "ISI.EDU"},
	}
	for _, tt := range tests {
		id, err := Parse(tt.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.in, err)
		}
		if id.Name != tt.name || id.Realm != tt.realm {
			t.Fatalf("Parse(%q) = %+v", tt.in, id)
		}
		if id.String() != tt.in {
			t.Fatalf("String() = %q, want %q", id.String(), tt.in)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, in := range []string{"", "noat", "@REALM", "name@", "a@b@", "a%b@R"} {
		if _, err := Parse(in); !errors.Is(err, ErrBadName) {
			t.Fatalf("Parse(%q) err = %v, want ErrBadName", in, err)
		}
	}
}

func TestZeroID(t *testing.T) {
	var id ID
	if !id.IsZero() {
		t.Fatal("zero ID not IsZero")
	}
	if id.String() != "<anonymous>" {
		t.Fatalf("String() = %q", id.String())
	}
	if New("a", "R").IsZero() {
		t.Fatal("real ID IsZero")
	}
}

func TestIDEncodeDecode(t *testing.T) {
	id := New("bcn", "ISI.EDU")
	e := wire.NewEncoder(0)
	id.Encode(e)
	d := wire.NewDecoder(e.Bytes())
	got := DecodeID(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Fatalf("round trip: %v != %v", got, id)
	}
}

func TestGlobalParseAndString(t *testing.T) {
	g, err := ParseGlobal("staff%groups@ISI.EDU")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "staff" || g.Server != New("groups", "ISI.EDU") {
		t.Fatalf("g = %+v", g)
	}
	if g.String() != "staff%groups@ISI.EDU" {
		t.Fatalf("String() = %q", g.String())
	}
	for _, in := range []string{"", "nopercent@R", "%srv@R", "name%", "name%bad"} {
		if _, err := ParseGlobal(in); !errors.Is(err, ErrBadGlobal) {
			t.Fatalf("ParseGlobal(%q) err = %v", in, err)
		}
	}
}

func TestGlobalEncodeDecode(t *testing.T) {
	g := NewGlobal(New("acct", "BANK.COM"), "alice-checking")
	e := wire.NewEncoder(0)
	g.Encode(e)
	d := wire.NewDecoder(e.Bytes())
	got := DecodeGlobal(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("round trip: %v != %v", got, g)
	}
	if g.IsZero() {
		t.Fatal("IsZero on real global")
	}
	var zero Global
	if !zero.IsZero() {
		t.Fatal("zero global not IsZero")
	}
}

func TestCompoundCanonical(t *testing.T) {
	a, b := New("a", "R"), New("b", "R")
	c1 := NewCompound(b, a, b)
	c2 := NewCompound(a, b)
	if c1.String() != c2.String() {
		t.Fatalf("%q != %q", c1.String(), c2.String())
	}
	if len(c1) != 2 {
		t.Fatalf("dedup failed: %v", c1)
	}
	if c1.String() != "a@R+b@R" {
		t.Fatalf("String() = %q", c1.String())
	}
}

func TestCompoundSatisfiedBy(t *testing.T) {
	user, host := New("bcn", "ISI.EDU"), New("host/wks1", "ISI.EDU")
	c := NewCompound(user, host)
	tests := []struct {
		name    string
		present []ID
		want    bool
	}{
		{"both present", []ID{user, host}, true},
		{"extra identities ok", []ID{host, New("x", "R"), user}, true},
		{"user only", []ID{user}, false},
		{"none", nil, false},
	}
	for _, tt := range tests {
		if got := c.SatisfiedBy(tt.present); got != tt.want {
			t.Fatalf("%s: got %v", tt.name, got)
		}
	}
	if !NewCompound().SatisfiedBy(nil) {
		t.Fatal("empty compound should be trivially satisfied")
	}
}

func TestCompoundEncodeDecode(t *testing.T) {
	c := NewCompound(New("a", "R1"), New("b", "R2"))
	e := wire.NewEncoder(0)
	c.Encode(e)
	d := wire.NewDecoder(e.Bytes())
	got := DecodeCompound(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if got.String() != c.String() {
		t.Fatalf("round trip: %v != %v", got, c)
	}
}

func TestSetOperations(t *testing.T) {
	a, b, c := New("a", "R"), New("b", "R"), New("c", "R")
	s := NewSet(a, b)
	if !s.Contains(a) || !s.Contains(b) || s.Contains(c) {
		t.Fatal("membership wrong")
	}
	s.Add(c)
	if !s.Contains(c) {
		t.Fatal("Add failed")
	}
	sl := s.Slice()
	if len(sl) != 3 || sl[0] != a || sl[2] != c {
		t.Fatalf("Slice() = %v", sl)
	}
}

func TestIDLessOrdering(t *testing.T) {
	if !New("a", "R1").Less(New("a", "R2")) {
		t.Fatal("realm should dominate")
	}
	if !New("a", "R").Less(New("b", "R")) {
		t.Fatal("name tiebreak")
	}
	if New("b", "R").Less(New("a", "R")) {
		t.Fatal("not antisymmetric")
	}
}

// Property: String/Parse round-trips for well-formed names.
func TestPropertyParseRoundTrip(t *testing.T) {
	f := func(nameSeed, realmSeed uint8) bool {
		name := "user" + string(rune('a'+nameSeed%26))
		realm := "REALM" + string(rune('A'+realmSeed%26))
		id := New(name, realm)
		got, err := Parse(id.String())
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding garbage never panics.
func TestPropertyDecodeNoPanic(t *testing.T) {
	f := func(garbage []byte) bool {
		d := wire.NewDecoder(garbage)
		_ = DecodeID(d)
		_ = DecodeGlobal(d)
		_ = DecodeCompound(d)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
