// Package principal defines the naming model for parties in proxykit.
//
// A principal is identified by a name within a realm, written
// "name@REALM" (the paper builds on Kerberos naming, §6.2). Groups and
// accounts are named globally as the composition of the identity of the
// server maintaining them and a local name on that server (§3.3, §4),
// written "local%server@REALM". Compound principals (§3.5) express the
// required concurrence of several principals in a single ACL entry.
package principal

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"proxykit/internal/wire"
)

// Parsing errors.
var (
	ErrBadName   = errors.New("principal: malformed principal name")
	ErrBadGlobal = errors.New("principal: malformed global name")
)

// ID identifies a principal: a user, host, or service within a realm.
// The zero value is the anonymous principal.
type ID struct {
	// Name is the principal's name within the realm, e.g. "bcn" or
	// "file/server1".
	Name string
	// Realm is the administrative domain, e.g. "ISI.EDU".
	Realm string
}

// New returns the ID for name within realm.
func New(name, realm string) ID { return ID{Name: name, Realm: realm} }

// Parse parses "name@REALM". The name part may contain '/' components
// (service names) but not '@' or '%'.
func Parse(s string) (ID, error) {
	at := strings.LastIndexByte(s, '@')
	if at <= 0 || at == len(s)-1 {
		return ID{}, fmt.Errorf("%w: %q", ErrBadName, s)
	}
	name, realm := s[:at], s[at+1:]
	if strings.ContainsAny(name, "@%") || strings.ContainsAny(realm, "@%/") {
		return ID{}, fmt.Errorf("%w: %q", ErrBadName, s)
	}
	return ID{Name: name, Realm: realm}, nil
}

// String renders the ID as "name@REALM".
func (id ID) String() string {
	if id.IsZero() {
		return "<anonymous>"
	}
	return id.Name + "@" + id.Realm
}

// IsZero reports whether the ID is the anonymous principal.
func (id ID) IsZero() bool { return id.Name == "" && id.Realm == "" }

// Less orders IDs lexicographically by realm then name, giving compound
// principals a canonical form.
func (id ID) Less(o ID) bool {
	if id.Realm != o.Realm {
		return id.Realm < o.Realm
	}
	return id.Name < o.Name
}

// Encode appends the ID to e in canonical form.
func (id ID) Encode(e *wire.Encoder) {
	e.String(id.Name)
	e.String(id.Realm)
}

// DecodeID reads an ID encoded by Encode.
func DecodeID(d *wire.Decoder) ID {
	name := d.String()
	realm := d.String()
	return ID{Name: name, Realm: realm}
}

// Global names an object maintained by a particular server: a group on a
// group server (§3.3) or an account on an accounting server (§4). The
// paper: "a global name of a group is composed of the name of the group
// server, and the name of the group on that server."
type Global struct {
	// Server is the principal identity of the maintaining server.
	Server ID
	// Name is the object's local name on that server.
	Name string
}

// NewGlobal composes a global name.
func NewGlobal(server ID, name string) Global {
	return Global{Server: server, Name: name}
}

// ParseGlobal parses "local%server@REALM".
func ParseGlobal(s string) (Global, error) {
	pct := strings.IndexByte(s, '%')
	if pct <= 0 || pct == len(s)-1 {
		return Global{}, fmt.Errorf("%w: %q", ErrBadGlobal, s)
	}
	srv, err := Parse(s[pct+1:])
	if err != nil {
		return Global{}, fmt.Errorf("%w: %q: %v", ErrBadGlobal, s, err)
	}
	return Global{Server: srv, Name: s[:pct]}, nil
}

// String renders the global name as "local%server@REALM".
func (g Global) String() string { return g.Name + "%" + g.Server.String() }

// IsZero reports whether the name is empty.
func (g Global) IsZero() bool { return g.Server.IsZero() && g.Name == "" }

// Encode appends the global name to e.
func (g Global) Encode(e *wire.Encoder) {
	g.Server.Encode(e)
	e.String(g.Name)
}

// DecodeGlobal reads a Global encoded by Encode.
func DecodeGlobal(d *wire.Decoder) Global {
	srv := DecodeID(d)
	name := d.String()
	return Global{Server: srv, Name: name}
}

// Compound is a conjunction of principals that must all concur for an
// operation (§3.5): e.g. both a user and a host credential. A Compound of
// one ID is equivalent to that ID.
type Compound []ID

// NewCompound returns a canonical (sorted, deduplicated) compound
// principal.
func NewCompound(ids ...ID) Compound {
	c := make(Compound, 0, len(ids))
	c = append(c, ids...)
	sort.Slice(c, func(i, j int) bool { return c[i].Less(c[j]) })
	out := c[:0]
	for i, id := range c {
		if i == 0 || id != c[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// String renders the compound as "a@R+b@R".
func (c Compound) String() string {
	parts := make([]string, len(c))
	for i, id := range c {
		parts[i] = id.String()
	}
	return strings.Join(parts, "+")
}

// SatisfiedBy reports whether every member of the compound appears in
// present.
func (c Compound) SatisfiedBy(present []ID) bool {
	for _, want := range c {
		found := false
		for _, have := range present {
			if have == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Encode appends the compound to e.
func (c Compound) Encode(e *wire.Encoder) {
	e.Uint32(uint32(len(c)))
	for _, id := range c {
		id.Encode(e)
	}
}

// DecodeCompound reads a Compound encoded by Encode.
func DecodeCompound(d *wire.Decoder) Compound {
	n := d.Uint32()
	if d.Err() != nil || n == 0 {
		return nil
	}
	if n > wire.MaxSliceLen {
		return nil
	}
	out := make(Compound, 0, min(int(n), 64))
	for i := uint32(0); i < n; i++ {
		out = append(out, DecodeID(d))
		if d.Err() != nil {
			return nil
		}
	}
	return out
}

// Set is an unordered collection of principal IDs with set operations,
// used for delegate lists and ACL matching.
type Set map[ID]struct{}

// NewSet builds a Set from ids.
func NewSet(ids ...ID) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Contains reports membership.
func (s Set) Contains(id ID) bool {
	_, ok := s[id]
	return ok
}

// Add inserts id.
func (s Set) Add(id ID) { s[id] = struct{}{} }

// Slice returns the members in canonical order.
func (s Set) Slice() []ID {
	out := make([]ID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
