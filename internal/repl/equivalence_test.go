package repl_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/acl"
	"proxykit/internal/authz"
	"proxykit/internal/clock"
	"proxykit/internal/group"
	"proxykit/internal/ledger"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
	"proxykit/internal/repl"
	"proxykit/internal/transport"
)

// TestStandbyEquivalenceProperty drives a randomized mixed workload
// against replicated accounting, group, and authz primaries and then
// deep-compares each standby's full state (accounts, balances, holds,
// accept-once registry, groups, rules) against its primary at the same
// WAL sequence. The snapshots are deterministic sorted JSON, so
// byte-equality IS deep state equality.
func TestStandbyEquivalenceProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEquivalence(t, seed)
		})
	}
}

// replPair wires a standby of sm over net; primary must already be
// mounted under name.
func startStandby(t *testing.T, sm repl.StateMachine, dir string, net *transport.Network, name string) *repl.Node {
	t.Helper()
	node, err := repl.NewNode(repl.Config{
		SM: sm, Dir: dir, Standby: true,
		Source:   net.MustDial(name),
		PullWait: 50 * time.Millisecond, RetryWait: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	return node
}

func startPrimary(t *testing.T, sm repl.StateMachine, dir string, net *transport.Network, name string) *repl.Node {
	t.Helper()
	node, err := repl.NewNode(repl.Config{SM: sm, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	mux := transport.NewMux()
	node.Mount(mux)
	net.Register(name, mux)
	return node
}

func runEquivalence(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	clk := clock.NewFake(time.Unix(21_000_000, 0))
	net := transport.NewNetwork()

	pdir := pubkey.NewDirectory()
	ids := map[principal.ID]*pubkey.Identity{}
	gsrvID := principal.New("groups", "ISI.EDU")
	authzID := principal.New("authz", "ISI.EDU")
	for i, id := range []principal.ID{rCarol, rDave, rBank, gsrvID, authzID} {
		ident := seededIdentity(t, id, byte(i+1))
		ids[id] = ident
		pdir.RegisterIdentity(ident)
	}

	// Accounting pair.
	bankP := accounting.NewServer(ids[rBank], pdir.Resolver(), clk)
	bankS := accounting.NewServer(ids[rBank], pdir.Resolver(), clk)
	bpDir, bsDir := t.TempDir(), t.TempDir()
	if _, err := bankP.OpenLedger(ledger.Options{Dir: bpDir, Fsync: ledger.FsyncOff}); err != nil {
		t.Fatal(err)
	}
	if _, err := bankS.OpenLedger(ledger.Options{Dir: bsDir, Fsync: ledger.FsyncOff}); err != nil {
		t.Fatal(err)
	}
	defer bankP.CloseLedger()
	defer bankS.CloseLedger()
	startPrimary(t, bankP, bpDir, net, "bank")
	startStandby(t, bankS, bsDir, net, "bank")

	// Group pair.
	grpP := group.New(ids[gsrvID], clk)
	grpS := group.New(ids[gsrvID], clk)
	gpDir, gsDir := t.TempDir(), t.TempDir()
	if _, err := grpP.OpenLedger(ledger.Options{Dir: gpDir, Fsync: ledger.FsyncOff}); err != nil {
		t.Fatal(err)
	}
	if _, err := grpS.OpenLedger(ledger.Options{Dir: gsDir, Fsync: ledger.FsyncOff}); err != nil {
		t.Fatal(err)
	}
	defer grpP.CloseLedger()
	defer grpS.CloseLedger()
	startPrimary(t, grpP, gpDir, net, "groups")
	startStandby(t, grpS, gsDir, net, "groups")

	// Authz pair.
	authP := authz.New(ids[authzID], clk)
	authS := authz.New(ids[authzID], clk)
	apDir, asDir := t.TempDir(), t.TempDir()
	if _, err := authP.OpenLedger(ledger.Options{Dir: apDir, Fsync: ledger.FsyncOff}); err != nil {
		t.Fatal(err)
	}
	if _, err := authS.OpenLedger(ledger.Options{Dir: asDir, Fsync: ledger.FsyncOff}); err != nil {
		t.Fatal(err)
	}
	defer authP.CloseLedger()
	defer authS.CloseLedger()
	startPrimary(t, authP, apDir, net, "authz")
	startStandby(t, authS, asDir, net, "authz")

	// Seed accounts.
	mustDo(t, bankP.CreateAccount("carol", rCarol))
	mustDo(t, bankP.CreateAccount("dave", rDave))
	mustDo(t, bankP.Mint("carol", "dollars", 50_000))
	mustDo(t, bankP.Mint("dave", "dollars", 50_000))

	accounts := []string{"carol", "dave"}
	owners := map[string]principal.ID{"carol": rCarol, "dave": rDave}
	groups := []string{"staff", "admins", "guests"}
	var lastCheck *accounting.Check

	const steps = 200
	for i := 0; i < steps; i++ {
		clk.Advance(time.Duration(1+rng.Intn(30)) * time.Second)
		from := accounts[rng.Intn(len(accounts))]
		to := accounts[rng.Intn(len(accounts))]
		amount := int64(1 + rng.Intn(400))
		switch rng.Intn(10) {
		case 0:
			_ = bankP.Mint(from, "dollars", amount)
		case 1, 2:
			// Business refusals (self-transfer, insufficient funds) are
			// part of the workload.
			_ = bankP.Transfer(from, to, "dollars", amount, []principal.ID{owners[from]})
		case 3, 4: // check written, endorsed, and deposited
			c, err := accounting.WriteCheck(accounting.WriteCheckParams{
				Payor: ids[owners[from]], Bank: bankP.ID, Account: from,
				Payee: owners[to], Currency: "dollars", Amount: amount,
				Lifetime: time.Hour, Clock: clk,
			})
			if err != nil {
				t.Fatal(err)
			}
			endorsed, err := c.Endorse(ids[owners[to]], bankP.ID, bankP.ID, bankP.Global(to), false, clk)
			if err != nil {
				t.Fatal(err)
			}
			_, _ = bankP.DepositCheck(endorsed, []principal.ID{owners[to]}, to)
			lastCheck = endorsed
		case 5: // replay the previous check: accept-once must refuse it
			if lastCheck != nil {
				_, _ = bankP.DepositCheck(lastCheck, nil, "")
			}
		case 6: // certified check: places a hold
			c, err := accounting.WriteCheck(accounting.WriteCheckParams{
				Payor: ids[owners[from]], Bank: bankP.ID, Account: from,
				Payee: owners[to], Currency: "dollars", Amount: amount,
				Lifetime: time.Hour, Clock: clk,
			})
			if err != nil {
				t.Fatal(err)
			}
			_, _ = bankP.Certify(from, []principal.ID{owners[from]}, c)
		case 7:
			g := groups[rng.Intn(len(groups))]
			grpP.AddGroup(g)
			grpP.AddMember(g, owners[from])
		case 8:
			g := groups[rng.Intn(len(groups))]
			switch rng.Intn(3) {
			case 0:
				grpP.RemoveMember(g, owners[from])
			case 1:
				grpP.AddNestedGroup(g, grpP.Global(groups[rng.Intn(len(groups))]))
			default:
				grpP.AddMember(g, owners[to])
			}
		default:
			authP.AddRule(authz.Rule{
				EndServer: principal.New(fmt.Sprintf("srv%d", rng.Intn(4)), "ISI.EDU"),
				Object:    fmt.Sprintf("obj%d", rng.Intn(8)),
				Subject:   acl.Subject{Principals: []principal.ID{owners[from]}},
				Ops:       []string{"read"},
			})
		}
	}

	// Wait for all three standbys to reach their primary's sequence,
	// then compare snapshots byte for byte at the same seq.
	type pair struct {
		name string
		p, s repl.StateMachine
	}
	pairs := []pair{{"accounting", bankP, bankS}, {"group", grpP, grpS}, {"authz", authP, authS}}
	for _, pr := range pairs {
		want := pr.p.Ledger().LastSeq()
		deadline := time.Now().Add(10 * time.Second)
		for pr.s.Ledger().LastSeq() < want {
			if time.Now().After(deadline) {
				t.Fatalf("%s standby stuck at %d, want %d", pr.name, pr.s.Ledger().LastSeq(), want)
			}
			time.Sleep(time.Millisecond)
		}
		pState, pSeq, err := pr.p.SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		sState, sSeq, err := pr.s.SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		if pSeq != sSeq {
			t.Fatalf("%s: snapshot seq %d (primary) != %d (standby)", pr.name, pSeq, sSeq)
		}
		if !bytes.Equal(pState, sState) {
			t.Fatalf("%s: standby state diverged at seq %d:\nprimary: %s\nstandby: %s",
				pr.name, pSeq, pState, sState)
		}
		if want == 0 {
			t.Fatalf("%s: workload produced no WAL records", pr.name)
		}
	}
}
