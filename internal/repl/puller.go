package repl

import (
	"time"
)

// pullLoop is the standby's tailing loop: long-poll the primary from
// the local ledger position, replay what comes back through the shared
// apply path, install a snapshot when the needed records were
// truncated, and keep the lag gauges honest. Transport failures back
// off and retry — the standby keeps serving reads while the primary is
// away.
func (n *Node) pullLoop(stop <-chan struct{}, exited chan<- struct{}) {
	defer close(exited)
	cl := NewClient(n.source)
	for {
		select {
		case <-stop:
			return
		default:
		}
		st, err := cl.Status()
		if err != nil {
			n.logger.Debug("repl: status from primary failed; retrying", "err", err)
			if !n.sleep(stop, n.retryWait) {
				return
			}
			continue
		}
		if _, err := n.adoptTerm(st.Term); err != nil {
			n.logger.Error("repl: persisting observed term failed", "err", err)
			if !n.sleep(stop, n.retryWait) {
				return
			}
			continue
		}
		if st.Term < n.Term() {
			// The source believes an older term than we have seen: it is
			// a deposed primary. Never follow it — its tail may contain
			// writes the fenced history does not.
			mFencingRejections.Inc()
			n.logger.Warn("repl: refusing to pull from stale-term source",
				"sourceTerm", st.Term, "localTerm", n.Term())
			if !n.sleep(stop, n.retryWait) {
				return
			}
			continue
		}
		if !n.tail(stop, cl, st.Term) {
			return
		}
		if !n.sleep(stop, n.retryWait) {
			return
		}
	}
}

// tail pulls and applies until an error sends us back to the status
// probe; false means stop was signalled and the loop must exit.
func (n *Node) tail(stop <-chan struct{}, cl *Client, term uint64) bool {
	for {
		select {
		case <-stop:
			return false
		default:
		}
		from := n.lg.LastSeq() + 1
		res, err := cl.Pull(term, from, n.pullBatch, n.pullWait)
		if err != nil {
			n.logger.Debug("repl: pull failed; reprobing primary", "err", err)
			return true
		}
		if res.Term != term {
			return true // term moved: reprobe and re-adopt via status
		}
		if res.NeedSnapshot {
			if !n.catchUpViaSnapshot(cl) {
				return true
			}
			continue
		}
		for _, ent := range res.Entries {
			if err := n.sm.ApplyReplicated(ent.Seq, ent.Data); err != nil {
				// Divergence or a local ledger failure: applying further
				// records would corrupt the books. Fail the puller loudly
				// and leave the standby read-only at its last good state.
				n.logger.Error("repl: apply failed; standby halted", "seq", ent.Seq, "err", err)
				return false
			}
			mStandbyApplies.Inc()
		}
		n.noteProgress(res.LastSeq)
	}
}

// catchUpViaSnapshot fetches and installs the primary's snapshot; false
// sends the caller back to the status probe.
func (n *Node) catchUpViaSnapshot(cl *Client) bool {
	state, seq, _, err := cl.Snapshot()
	if err != nil {
		n.logger.Warn("repl: snapshot fetch failed", "err", err)
		return false
	}
	if seq <= n.lg.LastSeq() {
		// The primary snapshotted behind our position between the pull
		// and the fetch; our records are still valid, keep tailing.
		return true
	}
	if err := n.sm.InstallSnapshot(state, seq); err != nil {
		n.logger.Error("repl: snapshot install failed", "seq", seq, "err", err)
		return false
	}
	mSnapshotInstalls.Inc()
	n.noteProgress(seq)
	n.logger.Info("repl: installed catch-up snapshot", "seq", seq, "bytes", len(state))
	return true
}

// noteProgress updates the lag gauges after a successful pull round:
// primaryLast is the primary's last sequence as of that round.
func (n *Node) noteProgress(primaryLast uint64) {
	applied := n.lg.LastSeq()
	var lag uint64
	if primaryLast > applied {
		lag = primaryLast - applied
	}
	now := time.Now()
	n.mu.Lock()
	n.lastProgress = now
	n.mu.Unlock()
	mLagSeq.Set(int64(lag))
	mLagSeconds.Set(0)
}

// sleep waits d or until stop; false means stop was signalled. The lag
// clock keeps counting while the primary is unreachable.
func (n *Node) sleep(stop <-chan struct{}, d time.Duration) bool {
	n.mu.Lock()
	last := n.lastProgress
	n.mu.Unlock()
	mLagSeconds.Set(int64(time.Since(last) / time.Second))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}
