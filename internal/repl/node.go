package repl

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"proxykit/internal/ledger"
	"proxykit/internal/transport"
)

// Config configures a replication node.
type Config struct {
	// SM is the server being replicated.
	SM StateMachine
	// Dir is the ledger directory; the fencing term persists beside the
	// WAL and snapshot.
	Dir string
	// Standby starts the node as a pulling standby of Source instead of
	// a primary.
	Standby bool
	// Source is the client to the primary's RPC mux; required for a
	// standby, unused for a primary.
	Source transport.Client
	// SyncTimeout, when positive, makes the primary semi-synchronous:
	// each commit's append hook holds the commit until a standby has
	// acknowledged pulling it, or until this timeout passes (counted in
	// proxykit_repl_sync_degraded_total). Zero ships asynchronously.
	SyncTimeout time.Duration
	// PullBatch bounds records per pull; default 256.
	PullBatch int
	// PullWait is the long-poll hold on an empty pull; default 500ms.
	PullWait time.Duration
	// RetryWait is the standby's pause after a failed pull or status
	// call before redialing; default 250ms.
	RetryWait time.Duration
	// Logger receives replication diagnostics; nil discards.
	Logger *slog.Logger
}

// Node is one replication endpoint: a primary shipping its WAL, or a
// standby pulling and replaying it. Mount registers its RPC handlers;
// Promote fails a standby over.
type Node struct {
	sm          StateMachine
	lg          *ledger.Ledger
	dir         string
	logger      *slog.Logger
	syncTimeout time.Duration
	pullBatch   int
	pullWait    time.Duration
	retryWait   time.Duration
	source      transport.Client

	mu     sync.Mutex
	role   Role
	term   uint64
	closed bool
	// notify is closed and replaced on every primary append — the pulse
	// that wakes held pulls.
	notify chan struct{}
	// ackSeq is the highest sequence a standby has acknowledged (by
	// pulling from past it); ackCh is closed and replaced when it
	// advances.
	ackSeq uint64
	ackCh  chan struct{}
	// lastProgress is when the standby last applied records or
	// confirmed being caught up (lag-seconds metric).
	lastProgress time.Time

	pullStop   chan struct{}
	pullExited chan struct{}
}

// NewNode builds and starts a node: loads (or initializes) the fencing
// term, installs the commit gate on the state machine, and — for a
// primary — hooks the ledger's ordered append stream, or — for a
// standby — starts the puller.
func NewNode(cfg Config) (*Node, error) {
	if cfg.SM == nil {
		return nil, errors.New("repl: no state machine")
	}
	lg := cfg.SM.Ledger()
	if lg == nil {
		return nil, errors.New("repl: state machine has no ledger attached")
	}
	if cfg.Dir == "" {
		return nil, errors.New("repl: no directory for term persistence")
	}
	if cfg.Standby && cfg.Source == nil {
		return nil, errors.New("repl: standby requires a source client")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	term, err := LoadTerm(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if term == 0 {
		term = 1
		if err := StoreTerm(cfg.Dir, term); err != nil {
			return nil, err
		}
	}
	n := &Node{
		sm:           cfg.SM,
		lg:           lg,
		dir:          cfg.Dir,
		logger:       logger,
		syncTimeout:  cfg.SyncTimeout,
		pullBatch:    cfg.PullBatch,
		pullWait:     cfg.PullWait,
		retryWait:    cfg.RetryWait,
		source:       cfg.Source,
		term:         term,
		notify:       make(chan struct{}),
		ackCh:        make(chan struct{}),
		lastProgress: time.Now(),
	}
	if n.pullBatch <= 0 {
		n.pullBatch = 256
	}
	if n.pullWait <= 0 {
		n.pullWait = 500 * time.Millisecond
	}
	if n.retryWait <= 0 {
		n.retryWait = 250 * time.Millisecond
	}
	cfg.SM.SetCommitGate(n.commitGate)
	if cfg.Standby {
		n.role = RoleStandby
		n.pullStop = make(chan struct{})
		n.pullExited = make(chan struct{})
		go n.pullLoop(n.pullStop, n.pullExited)
	} else {
		n.role = RolePrimary
		lg.SetAppendHook(n.onAppend)
	}
	return n, nil
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Term returns the node's current fencing term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// commitGate is installed as the state machine's commit gate: only the
// primary admits local mutations. Standbys fail closed with
// ErrNotPrimary; deposed nodes with ErrFenced — this is what keeps a
// split brain from double-paying a check.
func (n *Node) commitGate() error {
	n.mu.Lock()
	role, term := n.role, n.term
	n.mu.Unlock()
	switch role {
	case RolePrimary:
		return nil
	case RoleStandby:
		return ErrNotPrimary
	default:
		mFencingRejections.Inc()
		return fmt.Errorf("%w: local term %d", ErrFenced, term)
	}
}

// onAppend is the primary's ordered append hook: wake held pulls, then
// — in semi-sync mode — hold this commit until a standby acknowledges
// having pulled past it. Hooks are delivered in sequence order, so at
// most one commit waits here at a time and acknowledged prefixes are
// dense.
func (n *Node) onAppend(seq uint64) {
	n.mu.Lock()
	ch := n.notify
	n.notify = make(chan struct{})
	n.mu.Unlock()
	close(ch)

	if n.syncTimeout <= 0 {
		return
	}
	deadline := time.NewTimer(n.syncTimeout)
	defer deadline.Stop()
	for {
		n.mu.Lock()
		if n.ackSeq >= seq || n.role != RolePrimary || n.closed {
			n.mu.Unlock()
			return
		}
		ack := n.ackCh
		n.mu.Unlock()
		select {
		case <-ack:
		case <-deadline.C:
			mSyncDegraded.Inc()
			n.logger.Warn("repl: semi-sync ack timed out; shipping degraded to async",
				"seq", seq, "timeout", n.syncTimeout)
			return
		}
	}
}

// observeAck records that a standby has pulled from position from —
// acknowledging every record below it — and releases semi-sync waiters.
func (n *Node) observeAck(from uint64) {
	if from == 0 {
		return
	}
	ack := from - 1
	n.mu.Lock()
	if ack > n.ackSeq {
		n.ackSeq = ack
		ch := n.ackCh
		n.ackCh = make(chan struct{})
		close(ch)
	}
	n.mu.Unlock()
}

// adoptTerm persists and adopts a higher term observed on the wire,
// deposing this node if it believed itself primary. Returns the
// (possibly unchanged) current term.
func (n *Node) adoptTerm(term uint64) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if term <= n.term {
		return n.term, nil
	}
	if err := StoreTerm(n.dir, term); err != nil {
		return n.term, err
	}
	prev := n.role
	n.term = term
	if n.role == RolePrimary {
		n.role = RoleDeposed
		n.logger.Warn("repl: deposed by higher term", "term", term, "was", prev.String())
	}
	return n.term, nil
}

// Fence delivers a fencing term to this node (the repl.fence RPC and
// `proxyctl promote` both land here): a term above the node's own
// deposes it — its commit gate refuses all mutations from now on. A
// term at or below the node's own is a stale fence and is refused.
func (n *Node) Fence(term uint64) (uint64, error) {
	n.mu.Lock()
	cur := n.term
	n.mu.Unlock()
	if term <= cur {
		mFencingRejections.Inc()
		return cur, fmt.Errorf("repl: stale fence term %d (current %d)", term, cur)
	}
	return n.adoptTerm(term)
}

// Promote fails this standby over to primary: the puller is stopped
// and drained, the fencing term advances past everything this node has
// seen, and the ledger's append hook is installed so new commits ship
// onward. Promoting a primary is idempotent; promoting a deposed node
// is refused.
func (n *Node) Promote() (uint64, error) {
	n.mu.Lock()
	switch n.role {
	case RolePrimary:
		t := n.term
		n.mu.Unlock()
		return t, nil
	case RoleDeposed:
		t := n.term
		n.mu.Unlock()
		mFencingRejections.Inc()
		return t, fmt.Errorf("%w: cannot promote at term %d", ErrFenced, t)
	}
	stop, exited := n.pullStop, n.pullExited
	n.pullStop, n.pullExited = nil, nil
	n.mu.Unlock()
	if stop != nil {
		close(stop)
		<-exited // drain: no apply is mid-flight when the role flips
	}

	n.mu.Lock()
	newTerm := n.term + 1
	if err := StoreTerm(n.dir, newTerm); err != nil {
		n.mu.Unlock()
		return 0, err
	}
	n.term = newTerm
	n.role = RolePrimary
	n.lastProgress = time.Now()
	n.mu.Unlock()
	n.lg.SetAppendHook(n.onAppend)
	mPromotes.Inc()
	mLagSeq.Set(0)
	mLagSeconds.Set(0)
	n.logger.Info("repl: promoted to primary", "term", newTerm, "lastSeq", n.lg.LastSeq())
	return newTerm, nil
}

// Close stops the puller (if any) and detaches the node. The state
// machine's commit gate is left in place: a closed standby must not
// silently become writable.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	stop, exited := n.pullStop, n.pullExited
	n.pullStop, n.pullExited = nil, nil
	role := n.role
	n.mu.Unlock()
	if stop != nil {
		close(stop)
		<-exited
	}
	if role == RolePrimary {
		n.lg.SetAppendHook(nil)
	}
}

// Status is a point-in-time view of a node, served by repl.status.
type Status struct {
	Role    Role
	Term    uint64
	LastSeq uint64
	SnapSeq uint64
}

// Status returns the node's current status.
func (n *Node) Status() Status {
	n.mu.Lock()
	role, term := n.role, n.term
	n.mu.Unlock()
	return Status{Role: role, Term: term, LastSeq: n.lg.LastSeq(), SnapSeq: n.lg.SnapshotSeq()}
}

// Health contributes the node's replication state to a daemon's
// /healthz document.
func (n *Node) Health() map[string]any {
	st := n.Status()
	return map[string]any{
		"replRole":    st.Role.String(),
		"replTerm":    st.Term,
		"replLastSeq": st.LastSeq,
		"replSnapSeq": st.SnapSeq,
	}
}
