package repl

import "proxykit/internal/obs"

// Replication metrics. Process-global like the ledger's: a process is
// one node (primary or standby); in-process test topologies share the
// counters, which the tests tolerate.
var (
	mShippedBatches = obs.Default.NewCounter("proxykit_repl_shipped_batches_total",
		"Non-empty record batches served to standbys by the primary's shipping cursor.")
	mShippedRecords = obs.Default.NewCounter("proxykit_repl_shipped_records_total",
		"WAL records shipped to standbys, summed over batches.")
	mStandbyApplies = obs.Default.NewCounter("proxykit_repl_standby_applies_total",
		"Shipped WAL records this standby appended and applied through the shared replay path.")
	mSnapshotInstalls = obs.Default.NewCounter("proxykit_repl_snapshot_installs_total",
		"Full-snapshot catch-ups installed by this standby (the primary had truncated the needed records).")
	mFencingRejections = obs.Default.NewCounter("proxykit_repl_fencing_rejections_total",
		"Replication RPCs and commits refused because of a stale or deposed fencing term.")
	mPromotes = obs.Default.NewCounter("proxykit_repl_promotes_total",
		"Standby-to-primary promotions performed by this node.")
	mSyncDegraded = obs.Default.NewCounter("proxykit_repl_sync_degraded_total",
		"Semi-sync commits acknowledged without a standby ack (wait timed out; replication degraded to async).")
	mLagSeq = obs.Default.NewGauge("proxykit_repl_lag_seq",
		"Standby replication lag in WAL records: primary last sequence minus locally applied sequence.")
	mLagSeconds = obs.Default.NewGauge("proxykit_repl_lag_seconds",
		"Seconds since this standby last applied records or confirmed it was caught up with the primary.")
)
