package repl

import (
	"context"
	"errors"
	"fmt"
	"time"

	"proxykit/internal/ledger"
	"proxykit/internal/transport"
	"proxykit/internal/wire"
)

// Replication RPC methods, mounted on the owning daemon's mux alongside
// its service methods. Bodies are wire-codec binary: shipping rides the
// transfer hot path's transport, so it uses the hot path's encoder.
const (
	MethodStatus   = "repl.status"
	MethodPull     = "repl.pull"
	MethodSnapshot = "repl.snapshot"
	MethodFence    = "repl.fence"
	MethodPromote  = "repl.promote"
)

// PullResult is one answered pull: either a record batch or a
// snapshot-needed redirect, plus the primary's horizons and term.
type PullResult struct {
	Term         uint64
	NeedSnapshot bool
	SnapSeq      uint64
	LastSeq      uint64
	Entries      []ledger.Entry
}

// Mount registers the node's replication handlers on m.
func (n *Node) Mount(m *transport.Mux) {
	m.Handle(MethodStatus, n.handleStatus)
	m.Handle(MethodPull, n.handlePull)
	m.Handle(MethodSnapshot, n.handleSnapshot)
	m.Handle(MethodFence, n.handleFence)
	m.Handle(MethodPromote, n.handlePromote)
}

func (n *Node) handleStatus(ctx context.Context, body []byte) ([]byte, error) {
	st := n.Status()
	e := wire.GetEncoder(32)
	defer e.Release()
	e.Uint64(st.Term)
	e.Uint8(uint8(st.Role))
	e.Uint64(st.LastSeq)
	e.Uint64(st.SnapSeq)
	return append([]byte(nil), e.Bytes()...), nil
}

// checkServing refuses replication reads (pull, snapshot) on nodes that
// must not ship history: standbys (chained replication is unsupported)
// and deposed primaries (their tail may contain unfenced writes).
func (n *Node) checkServing(reqTerm uint64, carriesTerm bool) error {
	n.mu.Lock()
	role, term := n.role, n.term
	n.mu.Unlock()
	if carriesTerm && reqTerm > term {
		// The puller has seen a newer term than we have: we were deposed
		// and are only finding out now.
		if _, err := n.adoptTerm(reqTerm); err != nil {
			return err
		}
		mFencingRejections.Inc()
		return fmt.Errorf("%w: puller term %d exceeds local term %d", ErrFenced, reqTerm, term)
	}
	switch role {
	case RoleDeposed:
		mFencingRejections.Inc()
		return fmt.Errorf("%w: local term %d", ErrFenced, term)
	case RoleStandby:
		return errors.New("repl: cannot ship from a standby")
	}
	if carriesTerm && reqTerm < term {
		mFencingRejections.Inc()
		return fmt.Errorf("repl: stale puller term %d (current term %d)", reqTerm, term)
	}
	return nil
}

func (n *Node) handlePull(ctx context.Context, body []byte) ([]byte, error) {
	d := wire.NewDecoder(body)
	reqTerm := d.Uint64()
	from := d.Uint64()
	max := int(d.Uint32())
	waitMs := d.Uint32()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("repl: pull request: %w", err)
	}
	if err := n.checkServing(reqTerm, true); err != nil {
		return nil, err
	}
	n.observeAck(from)

	deadline := time.Now().Add(time.Duration(waitMs) * time.Millisecond)
	var res ledger.CursorResult
	needSnapshot := false
	for {
		// Grab the pulse channel before reading so an append landing
		// between the read and the wait still wakes us.
		n.mu.Lock()
		notify := n.notify
		n.mu.Unlock()
		var err error
		res, err = n.lg.ReadEntries(from, max)
		if err != nil {
			if !errors.Is(err, ledger.ErrTruncated) {
				return nil, err
			}
			needSnapshot = true
			break
		}
		if len(res.Entries) > 0 {
			break
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break // caught up: an empty response is the answer
		}
		t := time.NewTimer(remaining)
		select {
		case <-notify:
			t.Stop()
		case <-t.C:
		}
	}

	term := n.Term()
	e := wire.GetEncoder(64)
	defer e.Release()
	e.Uint64(term)
	e.Bool(needSnapshot)
	e.Uint64(res.SnapSeq)
	e.Uint64(res.LastSeq)
	if needSnapshot {
		e.Uint32(0)
	} else {
		e.Uint32(uint32(len(res.Entries)))
		for _, ent := range res.Entries {
			e.Uint64(ent.Seq)
			e.Bytes32(ent.Data)
		}
		if len(res.Entries) > 0 {
			mShippedBatches.Inc()
			mShippedRecords.Add(uint64(len(res.Entries)))
		}
	}
	return append([]byte(nil), e.Bytes()...), nil
}

func (n *Node) handleSnapshot(ctx context.Context, body []byte) ([]byte, error) {
	if err := n.checkServing(0, false); err != nil {
		return nil, err
	}
	state, seq, err := n.sm.SnapshotState()
	if err != nil {
		return nil, fmt.Errorf("repl: capture snapshot: %w", err)
	}
	e := wire.GetEncoder(32 + len(state))
	defer e.Release()
	e.Uint64(n.Term())
	e.Uint64(seq)
	e.Bytes32(state)
	return append([]byte(nil), e.Bytes()...), nil
}

func (n *Node) handleFence(ctx context.Context, body []byte) ([]byte, error) {
	d := wire.NewDecoder(body)
	term := d.Uint64()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("repl: fence request: %w", err)
	}
	cur, err := n.Fence(term)
	if err != nil {
		return nil, err
	}
	e := wire.GetEncoder(8)
	defer e.Release()
	e.Uint64(cur)
	return append([]byte(nil), e.Bytes()...), nil
}

func (n *Node) handlePromote(ctx context.Context, body []byte) ([]byte, error) {
	term, err := n.Promote()
	if err != nil {
		return nil, err
	}
	e := wire.GetEncoder(8)
	defer e.Release()
	e.Uint64(term)
	return append([]byte(nil), e.Bytes()...), nil
}

// Client issues replication RPCs to a node.
type Client struct {
	c transport.Client
}

// NewClient wraps a transport client (in-memory or TCP) for the repl
// methods.
func NewClient(c transport.Client) *Client { return &Client{c: c} }

// Status fetches the remote node's role, term, and horizons.
func (c *Client) Status() (Status, error) {
	raw, err := c.c.Call(MethodStatus, nil)
	if err != nil {
		return Status{}, err
	}
	d := wire.NewDecoder(raw)
	st := Status{}
	st.Term = d.Uint64()
	st.Role = Role(d.Uint8())
	st.LastSeq = d.Uint64()
	st.SnapSeq = d.Uint64()
	if err := d.Finish(); err != nil {
		return Status{}, fmt.Errorf("repl: status response: %w", err)
	}
	return st, nil
}

// Pull requests up to max records from sequence from, holding the
// request open up to wait when the primary is caught up. term is the
// puller's view of the primary's fencing term.
func (c *Client) Pull(term, from uint64, max int, wait time.Duration) (*PullResult, error) {
	e := wire.GetEncoder(32)
	e.Uint64(term)
	e.Uint64(from)
	e.Uint32(uint32(max))
	e.Uint32(uint32(wait / time.Millisecond))
	raw, err := c.c.Call(MethodPull, e.Bytes())
	e.Release()
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(raw)
	res := &PullResult{}
	res.Term = d.Uint64()
	res.NeedSnapshot = d.Bool()
	res.SnapSeq = d.Uint64()
	res.LastSeq = d.Uint64()
	count := int(d.Uint32())
	for i := 0; i < count && d.Err() == nil; i++ {
		seq := d.Uint64()
		data := d.Bytes32()
		res.Entries = append(res.Entries, ledger.Entry{Seq: seq, Data: data})
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("repl: pull response: %w", err)
	}
	return res, nil
}

// Snapshot fetches a full state snapshot from the primary.
func (c *Client) Snapshot() (state []byte, seq uint64, term uint64, err error) {
	raw, err := c.c.Call(MethodSnapshot, nil)
	if err != nil {
		return nil, 0, 0, err
	}
	d := wire.NewDecoder(raw)
	term = d.Uint64()
	seq = d.Uint64()
	state = d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, 0, 0, fmt.Errorf("repl: snapshot response: %w", err)
	}
	return state, seq, term, nil
}

// Fence delivers term to the remote node, deposing it if the term is
// higher than its own. Returns the remote's resulting term.
func (c *Client) Fence(term uint64) (uint64, error) {
	e := wire.GetEncoder(8)
	e.Uint64(term)
	raw, err := c.c.Call(MethodFence, e.Bytes())
	e.Release()
	if err != nil {
		return 0, err
	}
	d := wire.NewDecoder(raw)
	cur := d.Uint64()
	if err := d.Finish(); err != nil {
		return 0, fmt.Errorf("repl: fence response: %w", err)
	}
	return cur, nil
}

// Promote asks the remote standby to fail over to primary; returns its
// new fencing term.
func (c *Client) Promote() (uint64, error) {
	raw, err := c.c.Call(MethodPromote, nil)
	if err != nil {
		return 0, err
	}
	d := wire.NewDecoder(raw)
	term := d.Uint64()
	if err := d.Finish(); err != nil {
		return 0, fmt.Errorf("repl: promote response: %w", err)
	}
	return term, nil
}
