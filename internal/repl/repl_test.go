package repl_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/clock"
	"proxykit/internal/ledger"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
	"proxykit/internal/repl"
	"proxykit/internal/transport"
)

var (
	rCarol = principal.New("carol", "ISI.EDU")
	rDave  = principal.New("dave", "ISI.EDU")
	rBank  = principal.New("bank", "ISI.EDU")
)

func seededIdentity(t *testing.T, id principal.ID, n byte) *pubkey.Identity {
	t.Helper()
	ident, err := pubkey.IdentityFromSeed(id, bytes.Repeat([]byte{n}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return ident
}

// bankPair is a primary accounting server replicating to a hot standby
// over the in-memory transport network.
type bankPair struct {
	t        *testing.T
	clk      *clock.Fake
	primary  *accounting.Server
	standby  *accounting.Server
	pNode    *repl.Node
	sNode    *repl.Node
	pDir     string
	sDir     string
	net      *transport.Network
	syncMode bool
}

// newBank builds an accounting server with a durable ledger in dir.
func newBank(t *testing.T, clk clock.Clock, dir string, fsync ledger.FsyncMode) *accounting.Server {
	t.Helper()
	pdir := pubkey.NewDirectory()
	for i, id := range []principal.ID{rCarol, rDave, rBank} {
		pdir.RegisterIdentity(seededIdentity(t, id, byte(i+1)))
	}
	s := accounting.NewServer(seededIdentity(t, rBank, 3), pdir.Resolver(), clk)
	if _, err := s.OpenLedger(ledger.Options{Dir: dir, Fsync: fsync}); err != nil {
		t.Fatal(err)
	}
	return s
}

// newBankPair wires primary and standby nodes. syncTimeout > 0 makes
// the primary semi-synchronous.
func newBankPair(t *testing.T, syncTimeout time.Duration) *bankPair {
	t.Helper()
	bp := &bankPair{
		t:        t,
		clk:      clock.NewFake(time.Unix(20_000_000, 0)),
		pDir:     t.TempDir(),
		sDir:     t.TempDir(),
		net:      transport.NewNetwork(),
		syncMode: syncTimeout > 0,
	}
	bp.primary = newBank(t, bp.clk, bp.pDir, ledger.FsyncAlways)
	bp.standby = newBank(t, bp.clk, bp.sDir, ledger.FsyncAlways)

	mux := transport.NewMux()
	var err error
	bp.pNode, err = repl.NewNode(repl.Config{
		SM: bp.primary, Dir: bp.pDir, SyncTimeout: syncTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	bp.pNode.Mount(mux)
	bp.net.Register("bank-primary", mux)

	bp.sNode, err = repl.NewNode(repl.Config{
		SM: bp.standby, Dir: bp.sDir, Standby: true,
		Source:   bp.net.MustDial("bank-primary"),
		PullWait: 100 * time.Millisecond, RetryWait: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		bp.sNode.Close()
		bp.pNode.Close()
		bp.primary.CloseLedger()
		bp.standby.CloseLedger()
	})
	return bp
}

// waitCaughtUp blocks until the standby's ledger reaches the primary's
// last sequence.
func (bp *bankPair) waitCaughtUp() {
	bp.t.Helper()
	want := bp.primary.Ledger().LastSeq()
	deadline := time.Now().Add(5 * time.Second)
	for bp.standby.Ledger().LastSeq() < want {
		if time.Now().After(deadline) {
			bp.t.Fatalf("standby stuck at seq %d, want %d",
				bp.standby.Ledger().LastSeq(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertEqualState byte-compares the two banks' deterministic snapshots
// at the same sequence.
func (bp *bankPair) assertEqualState() {
	bp.t.Helper()
	pState, pSeq, err := bp.primary.SnapshotState()
	if err != nil {
		bp.t.Fatal(err)
	}
	sState, sSeq, err := bp.standby.SnapshotState()
	if err != nil {
		bp.t.Fatal(err)
	}
	if pSeq != sSeq {
		bp.t.Fatalf("snapshot seqs differ: primary %d, standby %d", pSeq, sSeq)
	}
	if !bytes.Equal(pState, sState) {
		bp.t.Fatalf("states diverge at seq %d:\nprimary: %s\nstandby: %s", pSeq, pState, sState)
	}
}

func TestTermPersistence(t *testing.T) {
	dir := t.TempDir()
	term, err := repl.LoadTerm(dir)
	if err != nil || term != 0 {
		t.Fatalf("fresh dir: term=%d err=%v, want 0, nil", term, err)
	}
	if err := repl.StoreTerm(dir, 7); err != nil {
		t.Fatal(err)
	}
	term, err = repl.LoadTerm(dir)
	if err != nil || term != 7 {
		t.Fatalf("after store: term=%d err=%v, want 7, nil", term, err)
	}
	raw, err := os.ReadFile(repl.TermPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "7\n" {
		t.Fatalf("term file = %q, want %q", raw, "7\n")
	}
	if _, err := os.Stat(filepath.Join(dir, "repl_term.tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestStandbyTailsPrimary(t *testing.T) {
	bp := newBankPair(t, 0)
	mustDo(t, bp.primary.CreateAccount("carol", rCarol))
	mustDo(t, bp.primary.CreateAccount("dave", rDave))
	mustDo(t, bp.primary.Mint("carol", "dollars", 1_000))
	for i := 0; i < 10; i++ {
		mustDo(t, bp.primary.Transfer("carol", "dave", "dollars", 10, []principal.ID{rCarol}))
	}
	bp.waitCaughtUp()
	bp.assertEqualState()

	// The standby answers reads from replicated state...
	bal, err := bp.standby.Balance("dave", "dollars", []principal.ID{rDave})
	if err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("standby balance = %d, want 100", bal)
	}
	// ...but fails every mutation closed.
	if err := bp.standby.Mint("carol", "dollars", 1); !errors.Is(err, repl.ErrNotPrimary) {
		t.Fatalf("standby Mint = %v, want ErrNotPrimary", err)
	}
	if err := bp.standby.CreateAccount("evil", rDave); !errors.Is(err, repl.ErrNotPrimary) {
		t.Fatalf("standby CreateAccount = %v, want ErrNotPrimary", err)
	}
	if bp.sNode.Role() != repl.RoleStandby {
		t.Fatalf("standby role = %v", bp.sNode.Role())
	}
}

func TestSemiSyncCommitWaitsForStandbyAck(t *testing.T) {
	bp := newBankPair(t, 5*time.Second)
	mustDo(t, bp.primary.CreateAccount("carol", rCarol))
	mustDo(t, bp.primary.CreateAccount("dave", rDave))
	mustDo(t, bp.primary.Mint("carol", "dollars", 1_000))
	for i := 0; i < 20; i++ {
		mustDo(t, bp.primary.Transfer("carol", "dave", "dollars", 1, []principal.ID{rCarol}))
		// Semi-sync: the commit only returned because a standby pulled
		// past it, so the record is on the standby *now*, not eventually.
		p, s := bp.primary.Ledger().LastSeq(), bp.standby.Ledger().LastSeq()
		if s < p {
			t.Fatalf("op %d: commit acked at seq %d but standby only at %d", i, p, s)
		}
	}
	bp.assertEqualState()
}

func TestSemiSyncDegradesWithoutStandby(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(time.Unix(20_000_000, 0))
	bank := newBank(t, clk, dir, ledger.FsyncOff)
	defer bank.CloseLedger()
	node, err := repl.NewNode(repl.Config{SM: bank, Dir: dir, SyncTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	// No standby is pulling: each commit waits out the sync timeout and
	// then completes anyway (degraded, not wedged).
	start := time.Now()
	mustDo(t, bank.CreateAccount("carol", rCarol))
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("semi-sync commit returned in %v, want >= 20ms wait", d)
	}
	mustDo(t, bank.Mint("carol", "dollars", 5))
}

func TestCatchUpViaSnapshot(t *testing.T) {
	pDir, sDir := t.TempDir(), t.TempDir()
	clk := clock.NewFake(time.Unix(20_000_000, 0))
	primary := newBank(t, clk, pDir, ledger.FsyncAlways)
	defer primary.CloseLedger()
	pNode, err := repl.NewNode(repl.Config{SM: primary, Dir: pDir})
	if err != nil {
		t.Fatal(err)
	}
	defer pNode.Close()

	// Build history, snapshot (truncating the WAL), then more history:
	// a fresh standby cannot tail from seq 1 and must install the
	// snapshot first.
	mustDo(t, primary.CreateAccount("carol", rCarol))
	mustDo(t, primary.CreateAccount("dave", rDave))
	mustDo(t, primary.Mint("carol", "dollars", 500))
	mustDo(t, primary.SnapshotNow())
	for i := 0; i < 5; i++ {
		mustDo(t, primary.Transfer("carol", "dave", "dollars", 7, []principal.ID{rCarol}))
	}
	if primary.Ledger().SnapshotSeq() == 0 {
		t.Fatal("snapshot did not truncate")
	}

	net := transport.NewNetwork()
	mux := transport.NewMux()
	pNode.Mount(mux)
	net.Register("bank-primary", mux)
	standby := newBank(t, clk, sDir, ledger.FsyncAlways)
	defer standby.CloseLedger()
	sNode, err := repl.NewNode(repl.Config{
		SM: standby, Dir: sDir, Standby: true,
		Source:   net.MustDial("bank-primary"),
		PullWait: 50 * time.Millisecond, RetryWait: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sNode.Close()

	want := primary.Ledger().LastSeq()
	deadline := time.Now().Add(5 * time.Second)
	for standby.Ledger().LastSeq() < want {
		if time.Now().After(deadline) {
			t.Fatalf("standby stuck at %d, want %d", standby.Ledger().LastSeq(), want)
		}
		time.Sleep(time.Millisecond)
	}
	pState, pSeq, _ := primary.SnapshotState()
	sState, sSeq, _ := standby.SnapshotState()
	if pSeq != sSeq || !bytes.Equal(pState, sState) {
		t.Fatalf("post-catch-up divergence: seq %d vs %d", pSeq, sSeq)
	}
	// The standby's ledger carries the installed snapshot horizon, and
	// recovery from its own directory works (reopen check).
	if standby.Ledger().SnapshotSeq() == 0 {
		t.Fatal("standby has no installed snapshot horizon")
	}
}

func TestPromoteFencesDeposedPrimary(t *testing.T) {
	bp := newBankPair(t, 0)
	mustDo(t, bp.primary.CreateAccount("carol", rCarol))
	mustDo(t, bp.primary.Mint("carol", "dollars", 100))
	bp.waitCaughtUp()

	oldTerm := bp.sNode.Term()
	newTerm, err := bp.sNode.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if newTerm != oldTerm+1 {
		t.Fatalf("promoted term = %d, want %d", newTerm, oldTerm+1)
	}
	if bp.sNode.Role() != repl.RolePrimary {
		t.Fatalf("promoted role = %v", bp.sNode.Role())
	}
	// The new primary accepts writes now.
	mustDo(t, bp.standby.Mint("carol", "dollars", 50))

	// Deliver the fence to the deposed primary: every local mutation is
	// refused from here on.
	if _, err := bp.pNode.Fence(newTerm); err != nil {
		t.Fatal(err)
	}
	if bp.pNode.Role() != repl.RoleDeposed {
		t.Fatalf("deposed role = %v", bp.pNode.Role())
	}
	err = bp.primary.Mint("carol", "dollars", 1_000_000)
	if !repl.IsFenced(err) {
		t.Fatalf("deposed Mint = %v, want fenced", err)
	}
	err = bp.primary.Transfer("carol", "carol", "dollars", 1, []principal.ID{rCarol})
	if err == nil {
		t.Fatal("deposed Transfer succeeded")
	}
	// The fenced term survives a restart of the deposed node.
	term, err := repl.LoadTerm(bp.pDir)
	if err != nil || term != newTerm {
		t.Fatalf("persisted deposed term = %d, %v, want %d", term, err, newTerm)
	}
	// A stale fence (at or below current) is refused.
	if _, err := bp.pNode.Fence(newTerm); err == nil {
		t.Fatal("stale fence accepted")
	}
	// A deposed node can never promote itself back.
	if _, err := bp.pNode.Promote(); !repl.IsFenced(err) {
		t.Fatalf("deposed Promote = %v, want fenced", err)
	}
	// And it refuses to ship history: a puller that has seen the new
	// term is told so; one that hasn't gets a fencing refusal too.
	cl := repl.NewClient(bp.net.MustDial("bank-primary"))
	if _, err := cl.Pull(oldTerm, 1, 16, 0); err == nil {
		t.Fatal("deposed primary served a pull")
	}
	if _, _, _, err := cl.Snapshot(); err == nil {
		t.Fatal("deposed primary served a snapshot")
	}
}

func TestPullWithNewerTermDeposesPrimary(t *testing.T) {
	bp := newBankPair(t, 0)
	mustDo(t, bp.primary.CreateAccount("carol", rCarol))
	bp.waitCaughtUp()

	// A pull carrying a higher term than the primary's own means a
	// promotion happened elsewhere: the primary must depose itself even
	// though no explicit fence has arrived yet.
	cl := repl.NewClient(bp.net.MustDial("bank-primary"))
	higher := bp.pNode.Term() + 3
	if _, err := cl.Pull(higher, 1, 16, 0); err == nil {
		t.Fatal("pull with newer term was served")
	}
	if bp.pNode.Role() != repl.RoleDeposed {
		t.Fatalf("primary role after newer-term pull = %v, want deposed", bp.pNode.Role())
	}
	if bp.pNode.Term() != higher {
		t.Fatalf("primary term = %d, want adopted %d", bp.pNode.Term(), higher)
	}
	if err := bp.primary.Mint("carol", "dollars", 1); !repl.IsFenced(err) {
		t.Fatalf("deposed Mint = %v, want fenced", err)
	}
}

func TestPromoteIdempotentOnPrimary(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(time.Unix(20_000_000, 0))
	bank := newBank(t, clk, dir, ledger.FsyncOff)
	defer bank.CloseLedger()
	node, err := repl.NewNode(repl.Config{SM: bank, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	before := node.Term()
	term, err := node.Promote()
	if err != nil || term != before {
		t.Fatalf("promote on primary = %d, %v, want %d, nil", term, err, before)
	}
}

func TestStandbyRefusesStaleTermSource(t *testing.T) {
	// Standby that has already seen term 5 must never follow a source
	// still at term 1 — that source is a deposed primary whose tail may
	// hold fenced writes.
	pDir, sDir := t.TempDir(), t.TempDir()
	clk := clock.NewFake(time.Unix(20_000_000, 0))
	primary := newBank(t, clk, pDir, ledger.FsyncOff)
	defer primary.CloseLedger()
	pNode, err := repl.NewNode(repl.Config{SM: primary, Dir: pDir})
	if err != nil {
		t.Fatal(err)
	}
	defer pNode.Close()
	mustDo(t, primary.CreateAccount("carol", rCarol))

	if err := repl.StoreTerm(sDir, 5); err != nil {
		t.Fatal(err)
	}
	net := transport.NewNetwork()
	mux := transport.NewMux()
	pNode.Mount(mux)
	net.Register("bank-primary", mux)
	standby := newBank(t, clk, sDir, ledger.FsyncOff)
	defer standby.CloseLedger()
	sNode, err := repl.NewNode(repl.Config{
		SM: standby, Dir: sDir, Standby: true,
		Source:   net.MustDial("bank-primary"),
		PullWait: 20 * time.Millisecond, RetryWait: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sNode.Close()

	time.Sleep(100 * time.Millisecond)
	if got := standby.Ledger().LastSeq(); got != 0 {
		t.Fatalf("standby replicated %d records from a stale-term source", got)
	}
}

func mustDo(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
