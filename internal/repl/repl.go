// Package repl replicates a ledger-backed server (accounting, group,
// authz) to hot standbys by shipping WAL records, and performs fenced
// failover between them.
//
// Neuman's accounting servers are the trust anchors of the proxy
// scheme: no payment, quota, or restricted-proxy workflow completes
// while the bank is down (§4). This package turns the durable WAL into
// availability. A primary serves its ordinary traffic and, in addition,
// lets standbys *pull* committed WAL records over the multiplexed RPC
// transport; a standby replays each record through the same apply path
// live recovery uses, so a promoted standby is the same state machine
// with the same books — not a reimplementation.
//
// # Shipping
//
// Shipping is pull-based long-polling: the standby asks for records
// from its own ledger position, the primary answers from the shipping
// cursor (ledger.ReadEntries), holding the request open briefly when it
// is already caught up. The ordered append hook wakes those held
// requests the moment a group-commit cohort lands, so batches ride
// cohorts without a separate streaming channel. The next pull from
// position N+1 acknowledges everything through N — the standby only
// advances its position after the records are durable and applied
// locally.
//
// # Catch-up
//
// A joining or long-lagging standby may need records the primary's
// snapshotter has already truncated away. The cursor reports that as
// ledger.ErrTruncated; the standby then fetches a full snapshot
// (repl.snapshot), installs it wholesale (InstallSnapshot resets the
// local ledger to the snapshot's sequence), and tails from snapSeq+1.
//
// # Fencing
//
// Failover is guarded by a monotonic fencing term persisted beside both
// ledgers. Promote stops the standby's puller, bumps its term past the
// highest it has seen, and makes it the primary. The deposed primary is
// told the new term (repl.fence — `proxyctl promote` delivers it), after
// which its commit gate refuses every local mutation: appends, check
// admissions, accept-once registrations. Replication RPCs carry terms
// both ways and refuse stale ones, so a deposed primary cannot ship
// history to anyone and a split brain cannot double-pay a check. The
// window between promotion and the fence landing is bounded by
// semi-synchronous mode (Config.SyncTimeout): the primary's append hook
// holds each commit until a standby has acknowledged it, so killing the
// primary loses no acknowledged payment.
package repl

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"proxykit/internal/ledger"
)

// Role is a node's replication role.
type Role int

// Roles. A node is created Primary or Standby; Deposed is entered when
// a higher fencing term is observed and is terminal.
const (
	RolePrimary Role = iota
	RoleStandby
	RoleDeposed
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleStandby:
		return "standby"
	case RoleDeposed:
		return "deposed"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// ErrNotPrimary is returned to mutations on a standby: it serves reads
// only, and the write must go to the primary.
var ErrNotPrimary = errors.New("repl: not primary (standby serves reads only)")

// ErrFenced is returned to mutations and replication RPCs on a deposed
// node: a higher fencing term exists, so this node's writes must never
// become visible.
var ErrFenced = errors.New("repl: fenced (deposed by a higher term)")

// IsFenced reports whether err (possibly a transport.RemoteError
// carrying only the message text) is a fencing refusal.
func IsFenced(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrFenced) || strings.Contains(err.Error(), "repl: fenced")
}

// StateMachine is the ledger-backed server being replicated. The
// accounting, group, and authz servers all satisfy it.
type StateMachine interface {
	// Ledger returns the attached ledger (the WAL being shipped).
	Ledger() *ledger.Ledger
	// SnapshotState captures full state and the WAL seq it covers.
	SnapshotState() ([]byte, uint64, error)
	// ApplyReplicated appends one shipped record to the local ledger and
	// applies it through the shared replay path.
	ApplyReplicated(seq uint64, payload []byte) error
	// InstallSnapshot replaces all state with a shipped snapshot.
	InstallSnapshot(state []byte, seq uint64) error
	// SetCommitGate installs a check refusing local mutations.
	SetCommitGate(gate func() error)
}

// termName is the fencing-term file beside the WAL and snapshot.
const termName = "repl_term"

// TermPath returns the fencing-term file path inside a ledger dir.
func TermPath(dir string) string { return filepath.Join(dir, termName) }

// LoadTerm reads the persisted fencing term; 0 when none was ever
// stored (callers treat a fresh directory as term 1).
func LoadTerm(dir string) (uint64, error) {
	raw, err := os.ReadFile(TermPath(dir))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("repl: read term: %w", err)
	}
	t, err := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: parse term file: %w", err)
	}
	return t, nil
}

// StoreTerm durably persists the fencing term (tmp + fsync + rename):
// a node must never come back from a crash believing an older term.
func StoreTerm(dir string, term uint64) error {
	path := TermPath(dir)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("repl: store term: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", term); err != nil {
		f.Close()
		return fmt.Errorf("repl: store term: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repl: store term: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repl: store term: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("repl: store term: %w", err)
	}
	return nil
}
