package repl

// Daemon-side flag plumbing: acctd, groupd, and authzd all wire
// replication identically, so the flag set and startup live here.

import (
	"flag"
	"fmt"
	"log/slog"
	"time"

	"proxykit/internal/transport"
)

// Flags is the replication flag set shared by the ledgered daemons.
type Flags struct {
	// Standby starts the daemon as a read-only hot standby.
	Standby bool
	// ReplicateFrom is the primary's RPC address (required with
	// Standby).
	ReplicateFrom string
	// SyncTimeout > 0 makes a primary semi-synchronous.
	SyncTimeout time.Duration
}

// Register installs the replication flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Standby, "standby", false,
		"run as a read-only hot standby replaying the primary's WAL (requires -ledger-dir and -replicate-from)")
	fs.StringVar(&f.ReplicateFrom, "replicate-from", "",
		"primary's RPC address to replicate from (standby mode)")
	fs.DurationVar(&f.SyncTimeout, "repl-sync-timeout", 0,
		"semi-synchronous replication: hold each commit until a standby acknowledges it or this timeout passes; 0 ships asynchronously")
}

// Start creates and mounts the daemon's replication node. A daemon
// with a durable ledger is always shippable (the repl.* methods are
// mounted on its mux); the flags select standby mode and the primary's
// durability/latency trade. Returns nil without error when ledgerDir
// is empty and no replication flag was set.
func (f *Flags) Start(sm StateMachine, ledgerDir string, mux *transport.Mux, logger *slog.Logger) (*Node, error) {
	if ledgerDir == "" {
		if f.Standby || f.ReplicateFrom != "" || f.SyncTimeout > 0 {
			return nil, fmt.Errorf("repl: replication requires -ledger-dir")
		}
		return nil, nil
	}
	cfg := Config{
		SM: sm, Dir: ledgerDir,
		Standby:     f.Standby,
		SyncTimeout: f.SyncTimeout,
		Logger:      logger,
	}
	if f.Standby {
		if f.ReplicateFrom == "" {
			return nil, fmt.Errorf("repl: -standby requires -replicate-from")
		}
		src, err := transport.DialTCP(f.ReplicateFrom, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("repl: dial primary %s: %w", f.ReplicateFrom, err)
		}
		cfg.Source = src
	} else if f.ReplicateFrom != "" {
		return nil, fmt.Errorf("repl: -replicate-from requires -standby")
	}
	node, err := NewNode(cfg)
	if err != nil {
		return nil, err
	}
	node.Mount(mux)
	if logger != nil {
		st := node.Status()
		logger.Info("replication node started",
			"role", st.Role.String(), "term", st.Term, "lastSeq", st.LastSeq,
			"source", f.ReplicateFrom, "syncTimeout", f.SyncTimeout)
	}
	return node, nil
}
