package authz

import (
	"errors"
	"testing"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/clock"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
)

var (
	alice  = principal.New("alice", "ISI.EDU")
	bob    = principal.New("bob", "ISI.EDU")
	fileSv = principal.New("file/sv1", "ISI.EDU")
	mailSv = principal.New("mail/sv1", "ISI.EDU")
	grpSv  = principal.New("groups", "ISI.EDU")
	staff  = principal.NewGlobal(grpSv, "staff")
)

type world struct {
	t   *testing.T
	clk *clock.Fake
	dir *pubkey.Directory
	srv *Server
	env *proxy.VerifyEnv
}

func newWorld(t *testing.T) *world {
	t.Helper()
	clk := clock.NewFake(time.Unix(9_000_000, 0))
	dir := pubkey.NewDirectory()
	ident, err := pubkey.NewIdentity(principal.New("authz", "ISI.EDU"))
	if err != nil {
		t.Fatal(err)
	}
	dir.RegisterIdentity(ident)
	srv := New(ident, clk)
	env := &proxy.VerifyEnv{
		Server:          fileSv,
		Clock:           clk,
		ResolveIdentity: dir.Resolver(),
	}
	return &world{t: t, clk: clk, dir: dir, srv: srv, env: env}
}

func (w *world) addReadRule() {
	w.srv.AddRule(Rule{
		EndServer: fileSv,
		Object:    "/etc/motd",
		Subject:   acl.Subject{Principals: principal.NewCompound(alice)},
		Ops:       []string{"read"},
	})
}

func TestGrantAuthorizedClient(t *testing.T) {
	w := newWorld(t)
	w.addReadRule()

	p, err := w.srv.Grant(&GrantRequest{Client: alice, EndServer: fileSv, Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.env.VerifyChain(p.Certs)
	if err != nil {
		t.Fatal(err)
	}
	if v.Grantor != w.srv.ID {
		t.Fatalf("grantor = %v", v.Grantor)
	}

	// The proxy authorizes exactly the database's grant.
	ctx := &restrict.Context{Server: fileSv, Object: "/etc/motd", Operation: "read"}
	if err := v.Authorize(ctx); err != nil {
		t.Fatal(err)
	}
	ctx.Operation = "write"
	if err := v.Authorize(ctx); err == nil {
		t.Fatal("write authorized beyond database")
	}
}

func TestGrantDeniedForUnknownClient(t *testing.T) {
	w := newWorld(t)
	w.addReadRule()
	if _, err := w.srv.Grant(&GrantRequest{Client: bob, EndServer: fileSv}); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("err = %v", err)
	}
}

func TestGrantDeniedForWrongEndServer(t *testing.T) {
	w := newWorld(t)
	w.addReadRule()
	if _, err := w.srv.Grant(&GrantRequest{Client: alice, EndServer: mailSv}); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("err = %v", err)
	}
}

func TestIssuedForConfinesProxy(t *testing.T) {
	w := newWorld(t)
	w.addReadRule()
	p, err := w.srv.Grant(&GrantRequest{Client: alice, EndServer: fileSv})
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.env.VerifyChain(p.Certs)
	if err != nil {
		t.Fatal(err)
	}
	// Presented at a different server, the issued-for restriction
	// rejects it.
	ctx := &restrict.Context{Server: mailSv, Object: "/etc/motd", Operation: "read"}
	if err := v.Authorize(ctx); err == nil {
		t.Fatal("proxy usable at unintended server")
	}
}

func TestRequestedSubsetIntersection(t *testing.T) {
	w := newWorld(t)
	w.srv.AddRule(Rule{
		EndServer: fileSv,
		Object:    "/data",
		Subject:   acl.Subject{Principals: principal.NewCompound(alice)},
		Ops:       []string{"read", "write", "delete"},
	})
	p, err := w.srv.Grant(&GrantRequest{
		Client:    alice,
		EndServer: fileSv,
		Objects:   []RequestedObject{{Object: "/data", Ops: []string{"read", "chmod"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.env.VerifyChain(p.Certs)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &restrict.Context{Server: fileSv, Object: "/data", Operation: "read"}
	if err := v.Authorize(ctx); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{"write", "chmod", "delete"} {
		ctx.Operation = op
		if err := v.Authorize(ctx); err == nil {
			t.Fatalf("op %q granted beyond intersection", op)
		}
	}
}

func TestRequestedObjectNotInDatabase(t *testing.T) {
	w := newWorld(t)
	w.addReadRule()
	if _, err := w.srv.Grant(&GrantRequest{
		Client:    alice,
		EndServer: fileSv,
		Objects:   []RequestedObject{{Object: "/etc/passwd"}},
	}); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("err = %v", err)
	}
}

func TestRuleRestrictionsCopied(t *testing.T) {
	// §3.5: "the restrictions field of a matching access-control-list
	// entry can be copied to the restrictions field of the resulting
	// proxy."
	w := newWorld(t)
	w.srv.AddRule(Rule{
		EndServer:    fileSv,
		Object:       "/printer",
		Subject:      acl.Subject{Principals: principal.NewCompound(alice)},
		Ops:          []string{"print"},
		Restrictions: restrict.Set{restrict.Quota{Currency: "pages", Limit: 20}},
	})
	p, err := w.srv.Grant(&GrantRequest{Client: alice, EndServer: fileSv})
	if err != nil {
		t.Fatal(err)
	}
	if q := p.Restrictions().Quotas()["pages"]; q != 20 {
		t.Fatalf("quota = %d", q)
	}
}

func TestGroupBackedRule(t *testing.T) {
	w := newWorld(t)
	w.srv.AddRule(Rule{
		EndServer: fileSv,
		Object:    "/shared",
		Subject:   acl.Subject{Groups: []principal.Global{staff}},
		Ops:       []string{"read"},
	})
	// Without group proof: denied.
	if _, err := w.srv.Grant(&GrantRequest{Client: bob, EndServer: fileSv}); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("err = %v", err)
	}
	// With verified staff membership: granted.
	p, err := w.srv.Grant(&GrantRequest{
		Client:    bob,
		EndServer: fileSv,
		Groups:    map[principal.Global]bool{staff: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Restrictions()) == 0 {
		t.Fatal("no restrictions on issued proxy")
	}
}

func TestDelegateGrantNamesClient(t *testing.T) {
	w := newWorld(t)
	w.addReadRule()
	p, err := w.srv.Grant(&GrantRequest{Client: alice, EndServer: fileSv, Delegate: true})
	if err != nil {
		t.Fatal(err)
	}
	gs := p.Restrictions().Grantees()
	if len(gs) != 1 || gs[0] != alice {
		t.Fatalf("grantees = %v", gs)
	}
}

func TestPropagatedRestrictionsCarried(t *testing.T) {
	w := newWorld(t)
	w.addReadRule()
	// A limit restriction that applies only to mailSv is dropped when
	// the proxy is confined to fileSv (§7.9); a quota always carries.
	propagated := restrict.Set{
		restrict.Quota{Currency: "pages", Limit: 2},
		restrict.Limit{Servers: []principal.ID{mailSv}, Restrictions: restrict.Set{restrict.Quota{Currency: "msgs", Limit: 1}}},
	}
	p, err := w.srv.Grant(&GrantRequest{Client: alice, EndServer: fileSv, Propagated: propagated})
	if err != nil {
		t.Fatal(err)
	}
	rs := p.Restrictions()
	if q := rs.Quotas()["pages"]; q != 2 {
		t.Fatalf("quota = %d", q)
	}
	for _, r := range rs {
		if r.Type() == restrict.TypeLimit {
			t.Fatal("irrelevant limit restriction propagated")
		}
	}
}

func TestRulesCopy(t *testing.T) {
	w := newWorld(t)
	w.addReadRule()
	rules := w.srv.Rules()
	if len(rules) != 1 {
		t.Fatalf("rules = %v", rules)
	}
	rules[0].Object = "/mutated"
	if w.srv.Rules()[0].Object != "/etc/motd" {
		t.Fatal("Rules() aliased internal slice")
	}
}

func TestDefaultLifetime(t *testing.T) {
	w := newWorld(t)
	w.addReadRule()
	p, err := w.srv.Grant(&GrantRequest{Client: alice, EndServer: fileSv})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Expires().After(w.clk.Now()) {
		t.Fatal("proxy already expired")
	}
}
