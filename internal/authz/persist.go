package authz

// Durable authorization databases: each AddRule is one WAL record
// appended before the rule becomes visible, with periodic snapshots
// bounding replay. Rules change at administrative rates, so records are
// JSON.

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"proxykit/internal/ledger"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
)

// snapRule is the serialized form of one Rule.
type snapRule struct {
	EndServer    string   `json:"endServer"`
	Object       string   `json:"object,omitempty"`
	Principals   []string `json:"principals,omitempty"`
	Groups       []string `json:"groups,omitempty"`
	Ops          []string `json:"ops,omitempty"`
	Restrictions []byte   `json:"restrictions,omitempty"` // restrict.Set wire bytes
}

type snapState struct {
	Rules []snapRule `json:"rules"`
}

func encodeRule(r Rule) (snapRule, error) {
	sr := snapRule{
		EndServer: r.EndServer.String(),
		Object:    r.Object,
		Ops:       r.Ops,
	}
	for _, p := range r.Subject.Principals {
		sr.Principals = append(sr.Principals, p.String())
	}
	for _, g := range r.Subject.Groups {
		sr.Groups = append(sr.Groups, g.String())
	}
	if len(r.Restrictions) > 0 {
		sr.Restrictions = r.Restrictions.Marshal()
	}
	return sr, nil
}

func decodeRule(sr snapRule) (Rule, error) {
	end, err := principal.Parse(sr.EndServer)
	if err != nil {
		return Rule{}, fmt.Errorf("authz: restore end-server %q: %w", sr.EndServer, err)
	}
	r := Rule{EndServer: end, Object: sr.Object, Ops: sr.Ops}
	for _, ps := range sr.Principals {
		p, err := principal.Parse(ps)
		if err != nil {
			return Rule{}, fmt.Errorf("authz: restore principal %q: %w", ps, err)
		}
		r.Subject.Principals = append(r.Subject.Principals, p)
	}
	for _, gs := range sr.Groups {
		g, err := principal.ParseGlobal(gs)
		if err != nil {
			return Rule{}, fmt.Errorf("authz: restore group %q: %w", gs, err)
		}
		r.Subject.Groups = append(r.Subject.Groups, g)
	}
	if len(sr.Restrictions) > 0 {
		rs, err := restrict.Unmarshal(sr.Restrictions)
		if err != nil {
			return Rule{}, fmt.Errorf("authz: restore restrictions: %w", err)
		}
		r.Restrictions = rs
	}
	return r, nil
}

// commitLocked appends the rule record and applies it; callers hold the
// write lock. An append failure skips the mutation (the ledger fails
// closed).
func (s *Server) commitLocked(r Rule) error {
	if s.gate != nil {
		if err := s.gate(); err != nil {
			return err
		}
	}
	if s.ledger != nil {
		sr, err := encodeRule(r)
		if err != nil {
			return err
		}
		raw, err := json.Marshal(sr)
		if err != nil {
			return err
		}
		if _, err := s.ledger.Append(raw); err != nil {
			return fmt.Errorf("authz: %w", err)
		}
	}
	s.rules = append(s.rules, r)
	return nil
}

// SnapshotState captures the full rule database and the WAL sequence
// the capture covers.
func (s *Server) SnapshotState() ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := snapState{}
	for _, r := range s.rules {
		sr, err := encodeRule(r)
		if err != nil {
			return nil, 0, err
		}
		st.Rules = append(st.Rules, sr)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		return nil, 0, err
	}
	var seq uint64
	if s.ledger != nil {
		seq = s.ledger.LastSeq()
	}
	return raw, seq, nil
}

// OpenLedger attaches a durable ledger to a fresh server, restoring any
// snapshot and replaying the WAL tail.
func (s *Server) OpenLedger(o ledger.Options) (*ledger.Recovery, error) {
	lg, rec, err := ledger.Open(o)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ledger != nil {
		lg.Close()
		return nil, errors.New("authz: ledger already open")
	}
	if len(s.rules) != 0 {
		lg.Close()
		return nil, errors.New("authz: OpenLedger requires a server with no rules yet")
	}
	if rec.Snapshot != nil {
		var st snapState
		if err := json.Unmarshal(rec.Snapshot, &st); err != nil {
			lg.Close()
			return nil, fmt.Errorf("authz: restore snapshot: %w", err)
		}
		for _, sr := range st.Rules {
			r, err := decodeRule(sr)
			if err != nil {
				lg.Close()
				return nil, err
			}
			s.rules = append(s.rules, r)
		}
	}
	for _, e := range rec.Entries {
		var sr snapRule
		if err := json.Unmarshal(e.Data, &sr); err != nil {
			lg.Close()
			return nil, fmt.Errorf("authz: WAL record %d: %w", e.Seq, err)
		}
		r, err := decodeRule(sr)
		if err != nil {
			lg.Close()
			return nil, fmt.Errorf("authz: replay record %d: %w", e.Seq, err)
		}
		s.rules = append(s.rules, r)
	}
	s.ledger = lg
	return rec, nil
}

// SnapshotNow captures the current database and commits it as a
// snapshot.
func (s *Server) SnapshotNow() error {
	state, seq, err := s.SnapshotState()
	if err != nil {
		return err
	}
	s.mu.RLock()
	lg := s.ledger
	s.mu.RUnlock()
	if lg == nil {
		return errors.New("authz: no ledger attached")
	}
	return lg.WriteSnapshot(state, seq)
}

// StartSnapshotter runs SnapshotNow every interval while new WAL
// records exist; the returned stop function halts it.
func (s *Server) StartSnapshotter(interval time.Duration) (stop func()) {
	s.mu.RLock()
	lg := s.ledger
	s.mu.RUnlock()
	if lg == nil {
		return func() {}
	}
	return lg.StartSnapshotter(interval, s.SnapshotNow)
}

// CloseLedger flushes and closes the attached ledger.
func (s *Server) CloseLedger() error {
	s.mu.Lock()
	lg := s.ledger
	s.ledger = nil
	s.mu.Unlock()
	if lg == nil {
		return nil
	}
	return lg.Close()
}
