package authz

import "proxykit/internal/obs"

// mGrants counts authorization-proxy issuance (§3.2, Fig. 3) by
// outcome.
var mGrants = obs.Default.NewCounterVec("proxykit_authzsrv_grants_total",
	"Authorization-server proxy grant requests, by outcome (granted, denied).", "outcome")
