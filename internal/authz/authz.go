// Package authz implements the authorization server of §3.2: a service
// that "grants a restricted proxy allowing the authorized client ... to
// act as the authorization server for the purpose of asserting the
// client's rights to access particular objects. The restrictions in the
// proxy (in this case a list of authorized actions) are determined by
// consulting the authorization server's database."
//
// The end-server participates by naming the authorization server in its
// own ACL (§3.5); the proxy this package issues then conveys the
// authorization server's rights, narrowed to exactly the actions the
// database allows the client.
package authz

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/audit"
	"proxykit/internal/clock"
	"proxykit/internal/ledger"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
)

// Errors returned by the authorization server.
var (
	ErrNotAuthorized = errors.New("authz: client not authorized")
	ErrNoRules       = errors.New("authz: no rules for end-server")
)

// Rule is one line of the authorization database: who may do what to
// which object on which end-server, with associated restrictions that
// are copied into issued proxies (§3.5).
type Rule struct {
	// EndServer the rule applies to.
	EndServer principal.ID
	// Object on that end-server.
	Object string
	// Subject that must match the requesting client.
	Subject acl.Subject
	// Ops permitted; empty means all.
	Ops []string
	// Restrictions copied into the issued proxy.
	Restrictions restrict.Set
}

// Server is the authorization server.
type Server struct {
	// ID is the server's principal identity — the name end-servers put
	// in their ACLs to delegate authorization.
	ID principal.ID

	identity *pubkey.Identity
	clk      clock.Clock

	mu      sync.RWMutex
	rules   []Rule
	journal *audit.Journal
	ledger  *ledger.Ledger
	gate    func() error // commit gate; non-nil refusal blocks mutations
}

// SetJournal attaches an audit journal; every Grant decision is sealed
// into its chain.
func (s *Server) SetJournal(j *audit.Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// New creates an authorization server with the given signing identity.
func New(identity *pubkey.Identity, clk clock.Clock) *Server {
	if clk == nil {
		clk = clock.System{}
	}
	return &Server{ID: identity.ID, identity: identity, clk: clk}
}

// AddRule appends a rule to the database. With a ledger attached the
// rule is durably logged before it becomes visible.
func (s *Server) AddRule(r Rule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.commitLocked(r)
}

// Rules returns a copy of the database.
func (s *Server) Rules() []Rule {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Rule, len(s.rules))
	copy(out, s.rules)
	return out
}

// RequestedObject names one object (and optionally specific operations)
// the client wants authorization for.
type RequestedObject struct {
	Object string
	// Ops requested; empty asks for everything the database allows.
	Ops []string
}

// GrantRequest asks for an authorization proxy (message 1 of Fig. 3).
// The caller (service layer) authenticates the client before invoking
// Grant.
type GrantRequest struct {
	// Client is the authenticated requesting principal.
	Client principal.ID
	// Identities are all authenticated identities presented (compound
	// support); Client is implied.
	Identities []principal.ID
	// Groups are memberships verified from group proxies presented with
	// the request (§3.3: group proxies may feed authorization servers).
	Groups map[principal.Global]bool
	// EndServer the proxy should be usable at.
	EndServer principal.ID
	// Objects requested; empty requests everything the database allows
	// the client on that end-server.
	Objects []RequestedObject
	// Lifetime of the issued proxy.
	Lifetime time.Duration
	// Delegate, when true, restricts the proxy to the client's identity
	// (a delegate proxy); otherwise possession of the proxy key
	// suffices.
	Delegate bool
	// Propagated carries restrictions from any proxies the client
	// presented to authenticate or to prove group membership; they are
	// propagated into the issued proxy per §7.9.
	Propagated restrict.Set
}

// Grant consults the database and issues the authorization proxy
// (message 2 of Fig. 3). The proxy's restrictions are the granted
// (object, ops) list, an issued-for restriction confining it to the
// end-server, the restrictions of every matched rule, and the
// propagated restrictions.
func (s *Server) Grant(req *GrantRequest) (*proxy.Proxy, error) {
	return s.GrantCtx(context.Background(), req)
}

// GrantCtx is Grant with a request context; the context's trace ID is
// stamped onto the audit record.
func (s *Server) GrantCtx(ctx context.Context, req *GrantRequest) (p *proxy.Proxy, err error) {
	defer func() {
		if err != nil {
			mGrants.With("denied").Inc()
		} else {
			mGrants.With("granted").Inc()
		}
		s.auditGrant(ctx, req, err)
	}()
	identities := req.Identities
	if len(identities) == 0 && !req.Client.IsZero() {
		identities = []principal.ID{req.Client}
	}
	matched, entries, ruleRestrictions := s.match(req.EndServer, req.Objects, identities, req.Groups)
	if !matched {
		return nil, fmt.Errorf("%w: %s at %s", ErrNotAuthorized, req.Client, req.EndServer)
	}

	rs := restrict.Set{
		restrict.Authorized{Entries: entries},
		restrict.IssuedFor{Servers: []principal.ID{req.EndServer}},
	}
	rs = rs.Merge(ruleRestrictions)
	rs = rs.Merge(req.Propagated.Propagate([]principal.ID{req.EndServer}))
	if req.Delegate {
		rs = rs.Merge(restrict.Set{restrict.Grantee{Principals: []principal.ID{req.Client}}})
	}
	lifetime := req.Lifetime
	if lifetime <= 0 {
		lifetime = time.Hour
	}
	return proxy.Grant(proxy.GrantParams{
		Grantor:       s.ID,
		GrantorSigner: s.identity.Signer(),
		Restrictions:  rs,
		Lifetime:      lifetime,
		Mode:          proxy.ModePublicKey,
		Clock:         s.clk,
	})
}

// auditGrant records one grant decision if a journal is attached.
func (s *Server) auditGrant(ctx context.Context, req *GrantRequest, err error) {
	s.mu.RLock()
	j := s.journal
	s.mu.RUnlock()
	if j == nil {
		return
	}
	objects := make([]string, len(req.Objects))
	for i, o := range req.Objects {
		objects[i] = o.Object
	}
	presenters := req.Identities
	if len(presenters) == 0 && !req.Client.IsZero() {
		presenters = []principal.ID{req.Client}
	}
	rec := audit.Record{
		Time:       s.clk.Now(),
		Kind:       audit.KindAuthzGrant,
		Server:     s.ID,
		TraceID:    obs.TraceIDFrom(ctx),
		Presenters: presenters,
		Object:     strings.Join(objects, ","),
		Op:         "grant",
		Outcome:    audit.OutcomeGranted,
		Detail: map[string]string{
			"endServer": req.EndServer.String(),
			"delegate":  fmt.Sprint(req.Delegate),
		},
	}
	if err != nil {
		rec.Outcome = audit.OutcomeDenied
		rec.Reason = err.Error()
	}
	j.Append(rec)
}

// match computes the granted (object, ops) entries for the client.
func (s *Server) match(endServer principal.ID, requested []RequestedObject, identities []principal.ID, groups map[principal.Global]bool) (bool, []restrict.AuthorizedEntry, restrict.Set) {
	s.mu.RLock()
	defer s.mu.RUnlock()

	var entries []restrict.AuthorizedEntry
	var rs restrict.Set
	for _, rule := range s.rules {
		if rule.EndServer != endServer {
			continue
		}
		if !subjectMatches(rule.Subject, identities, groups) {
			continue
		}
		ops := grantedOps(rule, requested)
		if ops == nil {
			continue
		}
		entries = append(entries, restrict.AuthorizedEntry{Object: rule.Object, Ops: ops})
		rs = rs.Merge(rule.Restrictions)
	}
	return len(entries) > 0, entries, rs
}

// grantedOps intersects a rule with the request, returning nil when the
// rule contributes nothing. An empty non-nil slice means "all ops".
func grantedOps(rule Rule, requested []RequestedObject) []string {
	if len(requested) == 0 {
		ops := make([]string, len(rule.Ops))
		copy(ops, rule.Ops)
		return ops
	}
	for _, req := range requested {
		if req.Object != rule.Object {
			continue
		}
		if len(rule.Ops) == 0 {
			// Rule allows all; grant what was asked (or all).
			ops := make([]string, len(req.Ops))
			copy(ops, req.Ops)
			return ops
		}
		if len(req.Ops) == 0 {
			ops := make([]string, len(rule.Ops))
			copy(ops, rule.Ops)
			return ops
		}
		var ops []string
		for _, want := range req.Ops {
			for _, have := range rule.Ops {
				if want == have {
					ops = append(ops, want)
					break
				}
			}
		}
		if len(ops) > 0 {
			return ops
		}
		return nil
	}
	return nil
}

// subjectMatches mirrors acl matching for the rule subject.
func subjectMatches(sub acl.Subject, identities []principal.ID, groups map[principal.Global]bool) bool {
	if len(sub.Principals) == 0 && len(sub.Groups) == 0 {
		return false
	}
	if !sub.Principals.SatisfiedBy(identities) {
		return false
	}
	for _, g := range sub.Groups {
		if !groups[g] {
			return false
		}
	}
	return true
}
