package obs

import "context"

// traceKey keys the request Trace in a context.Context.
type traceKey struct{}

// ContextWithTrace attaches the trace context of an in-flight request,
// so downstream decision points (audit records, fan-out calls) can join
// the same trace.
func ContextWithTrace(ctx context.Context, tr Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the trace attached to ctx, if any.
func TraceFrom(ctx context.Context) (Trace, bool) {
	tr, ok := ctx.Value(traceKey{}).(Trace)
	return tr, ok
}

// TraceIDFrom returns the trace ID attached to ctx, or "" — the form
// audit records store.
func TraceIDFrom(ctx context.Context) string {
	tr, _ := TraceFrom(ctx)
	return tr.TraceID
}
