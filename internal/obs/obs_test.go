package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "help")
	vec := r.NewCounterVec("test_labeled_total", "help", "method")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				vec.With("a").Inc()
				vec.With("b").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("a").Value(); got != workers*perWorker {
		t.Errorf("vec[a] = %d, want %d", got, workers*perWorker)
	}
	if got := vec.With("b").Value(); got != 2*workers*perWorker {
		t.Errorf("vec[b] = %d, want %d", got, 2*workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("test_gauge", "help")
	g.Set(5)
	g.Inc()
	g.Add(3)
	g.Dec()
	if got := g.Value(); got != 8 {
		t.Errorf("gauge = %d, want 8", got)
	}
	g.Set(-2)
	if got := g.Value(); got != -2 {
		t.Errorf("gauge = %d, want -2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_hist", "help", []float64{1, 2, 5})
	// Boundary values land in the bucket whose upper bound they equal
	// (le is inclusive, as in Prometheus).
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 5, 100} {
		h.Observe(v)
	}
	bounds, cumulative := h.Buckets()
	if len(bounds) != 3 || len(cumulative) != 4 {
		t.Fatalf("shape = %d bounds / %d counts", len(bounds), len(cumulative))
	}
	want := []uint64{2, 4, 6, 7} // le=1: {0.5,1}; le=2: +{1.5,2}; le=5: +{4,5}; +Inf: +{100}
	for i, w := range want {
		if cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cumulative[i], w)
		}
	}
	if got := h.Count(); got != 7 {
		t.Errorf("count = %d, want 7", got)
	}
	if got := h.Sum(); got != 114 {
		t.Errorf("sum = %g, want 114", got)
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_hist", "help", []float64{1})
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := h.Sum(), 0.5*workers*perWorker; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "help")
	b := r.NewCounter("dup_total", "help")
	if a != b {
		t.Error("re-registering the same schema should return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration should panic")
		}
	}()
	r.NewGauge("dup_total", "help")
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zz_last_total", "comes last").Add(3)
	v := r.NewCounterVec("aa_req_total", "requests", "method")
	v.With("get").Inc()
	v.With("put").Add(2)
	r.NewGauge("mm_inflight", "in flight").Set(4)
	h := r.NewHistogram("hh_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_req_total requests
# TYPE aa_req_total counter
aa_req_total{method="get"} 1
aa_req_total{method="put"} 2
# HELP hh_lat_seconds latency
# TYPE hh_lat_seconds histogram
hh_lat_seconds_bucket{le="0.1"} 1
hh_lat_seconds_bucket{le="1"} 2
hh_lat_seconds_bucket{le="+Inf"} 3
hh_lat_seconds_sum 2.55
hh_lat_seconds_count 3
# HELP mm_inflight in flight
# TYPE mm_inflight gauge
mm_inflight 4
# HELP zz_last_total comes last
# TYPE zz_last_total counter
zz_last_total 3
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("plain_total", "help").Add(7)
	r.NewCounterVec("labeled_total", "help", "op").With("read").Add(2)
	h := r.NewHistogram("lat_seconds", "help", []float64{1})
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if got := doc["plain_total"]; got != float64(7) {
		t.Errorf("plain_total = %v, want 7", got)
	}
	labeled, ok := doc["labeled_total"].(map[string]any)
	if !ok || labeled["op=read"] != float64(2) {
		t.Errorf("labeled_total = %v, want {op=read: 2}", doc["labeled_total"])
	}
	hist, ok := doc["lat_seconds"].(map[string]any)
	if !ok || hist["count"] != float64(1) || hist["sum"] != 0.5 {
		t.Errorf("lat_seconds = %v", doc["lat_seconds"])
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b_total", "")
	r.NewGauge("a_gauge", "")
	got := r.Names()
	if len(got) != 2 || got[0] != "a_gauge" || got[1] != "b_total" {
		t.Errorf("Names() = %v, want [a_gauge b_total]", got)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	root := NewTrace()
	if root.TraceID == "" || root.SpanID == "" || root.Parent != "" {
		t.Fatalf("bad root trace: %+v", root)
	}
	parsed := ParseTrace(root.String())
	if parsed.TraceID != root.TraceID {
		t.Errorf("trace ID not preserved: %q vs %q", parsed.TraceID, root.TraceID)
	}
	if parsed.Parent != root.SpanID {
		t.Errorf("sender span should become parent: %q vs %q", parsed.Parent, root.SpanID)
	}
	if parsed.SpanID == root.SpanID {
		t.Error("receiver should get a fresh span ID")
	}

	child := root.Child()
	if child.TraceID != root.TraceID || child.Parent != root.SpanID || child.SpanID == root.SpanID {
		t.Errorf("bad child: %+v", child)
	}

	for _, malformed := range []string{"", "nodash", "-x", "x-"} {
		tr := ParseTrace(malformed)
		if tr.TraceID == "" || tr.SpanID == "" {
			t.Errorf("ParseTrace(%q) should yield a fresh root, got %+v", malformed, tr)
		}
	}
	if (Trace{}).String() != "" {
		t.Error("zero trace should render empty")
	}
}

func TestSpanLogRing(t *testing.T) {
	l := NewSpanLog(3)
	for i := 0; i < 5; i++ {
		l.Record(Span{Method: string(rune('a' + i)), Start: time.Unix(int64(i), 0)})
	}
	if got := l.Total(); got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
	recent := l.Recent()
	if len(recent) != 3 {
		t.Fatalf("len(recent) = %d, want 3", len(recent))
	}
	// Newest first: e, d, c.
	for i, want := range []string{"e", "d", "c"} {
		if recent[i].Method != want {
			t.Errorf("recent[%d] = %q, want %q", i, recent[i].Method, want)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("proxykit_demo_total", "demo").Inc()
	spans := NewSpanLog(4)
	spans.Record(Span{Method: "x.y", Kind: "server"})
	h := Handler(r, spans)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "proxykit_demo_total 1") {
		t.Errorf("/metrics: code=%d body=%q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Errorf("/metrics?format=json not JSON: %v", err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("/healthz code = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "x.y") {
		t.Errorf("/traces: code=%d body=%q", rec.Code, rec.Body.String())
	}
}
