package obs

import "flag"

// TraceOptions carries the shared observability daemon flags: span
// ring sizing (-trace-buffer), the JSONL span sink (-trace-file), and
// latency objectives (-slo). Every daemon registers them via
// RegisterFlags and calls Apply once flags are parsed, so the whole
// fleet shares one spelling of the tracing/SLO surface.
type TraceOptions struct {
	// Buffer is the span ring capacity.
	Buffer int
	// File is the JSONL span sink path; empty disables the sink.
	File string
	// SLO is the latency-objective spec; empty arms nothing.
	SLO string
}

// RegisterFlags registers -trace-buffer, -trace-file, and -slo on fs.
func (o *TraceOptions) RegisterFlags(fs *flag.FlagSet) {
	fs.IntVar(&o.Buffer, "trace-buffer", 256, "span ring capacity served at /traces; overflow is counted by proxykit_obs_spans_dropped_total")
	fs.StringVar(&o.File, "trace-file", "", "JSONL span sink path (append-only); empty keeps spans in the in-memory ring only")
	fs.StringVar(&o.SLO, "slo", "", "per-method latency objectives, e.g. 'end.request<5ms@p99,acct.transfer<10ms@p99.9'; compliance is served at /slo (see OBSERVABILITY.md)")
}

// Apply configures the process-wide Spans ring and DefaultSLO engine
// from the parsed flag values and returns a cleanup that closes the
// span sink.
func (o TraceOptions) Apply() (func(), error) {
	Spans.Resize(o.Buffer)
	if o.File != "" {
		if err := Spans.SetSink(o.File); err != nil {
			return nil, err
		}
	}
	objs, err := ParseSLO(o.SLO)
	if err != nil {
		_ = Spans.CloseSink()
		return nil, err
	}
	DefaultSLO.Configure(objs)
	return func() { _ = Spans.CloseSink() }, nil
}
