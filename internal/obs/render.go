package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4), deterministically ordered by
// family name and label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		// Labeled families with no children yet still advertise their
		// HELP/TYPE header, so scrapes show every metric the process
		// can produce.
		keys, children := f.sortedChildren()
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for i, key := range keys {
			if err := writeSample(w, f, key, children[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, f *family, key string, child any) error {
	base := labelString(f.labels, key, "", "")
	switch m := child.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, base, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, base, m.Value())
		return err
	case *Histogram:
		bounds, cumulative := m.Buckets()
		for i, b := range bounds {
			ls := labelString(f.labels, key, "le", formatFloat(b))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cumulative[i]); err != nil {
				return err
			}
		}
		ls := labelString(f.labels, key, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, ls, cumulative[len(cumulative)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, base, formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, base, m.Count())
		return err
	}
	return nil
}

// labelString renders {k="v",...}, appending one extra pair (the
// histogram le label) when extraKey is non-empty. An empty schema with
// no extra pair renders as "".
func labelString(names []string, key, extraKey, extraVal string) string {
	values := []string{}
	if key != "" || len(names) > 0 {
		values = strings.Split(key, labelSep)
	}
	var b strings.Builder
	for i, name := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", name, v)
	}
	if extraKey != "" {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	if b.Len() == 0 {
		return ""
	}
	return "{" + b.String() + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// jsonHistogram is the JSON shape of one histogram child.
type jsonHistogram struct {
	Buckets map[string]uint64 `json:"buckets"`
	Sum     float64           `json:"sum"`
	Count   uint64            `json:"count"`
}

// WriteJSON renders the registry as an expvar-style JSON document:
// unlabeled metrics map name -> value; labeled metrics map name ->
// {"k=v,...": value}; histograms render cumulative buckets keyed by
// upper bound, plus sum and count.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := make(map[string]any)
	for _, f := range r.sortedFamilies() {
		keys, children := f.sortedChildren()
		if len(keys) == 0 {
			doc[f.name] = map[string]any{}
			continue
		}
		if len(f.labels) == 0 {
			doc[f.name] = jsonValue(children[0])
			continue
		}
		m := make(map[string]any, len(keys))
		for i, key := range keys {
			values := strings.Split(key, labelSep)
			pairs := make([]string, len(f.labels))
			for j, name := range f.labels {
				v := ""
				if j < len(values) {
					v = values[j]
				}
				pairs[j] = name + "=" + v
			}
			m[strings.Join(pairs, ",")] = jsonValue(children[i])
		}
		doc[f.name] = m
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func jsonValue(child any) any {
	switch m := child.(type) {
	case *Counter:
		return m.Value()
	case *Gauge:
		return m.Value()
	case *Histogram:
		bounds, cumulative := m.Buckets()
		buckets := make(map[string]uint64, len(cumulative))
		for i, b := range bounds {
			buckets[formatFloat(b)] = cumulative[i]
		}
		buckets["+Inf"] = cumulative[len(cumulative)-1]
		return jsonHistogram{Buckets: buckets, Sum: m.Sum(), Count: m.Count()}
	}
	return nil
}
