package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHealthzDocument(t *testing.T) {
	h := HandlerWith(HandlerOpts{
		Registry: NewRegistry(),
		Spans:    NewSpanLog(4),
		Health: func() map[string]any {
			return map[string]any{"audit": map[string]any{"records": 3}}
		},
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz code = %d", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, rec.Body.String())
	}
	if doc["status"] != "ok" {
		t.Errorf("status = %v", doc["status"])
	}
	if _, ok := doc["uptimeSeconds"].(float64); !ok {
		t.Errorf("uptimeSeconds missing: %v", doc)
	}
	if _, ok := doc["goVersion"].(string); !ok {
		t.Errorf("goVersion missing: %v", doc)
	}
	audit, ok := doc["audit"].(map[string]any)
	if !ok || audit["records"].(float64) != 3 {
		t.Errorf("Health extras not merged: %v", doc)
	}
}

func TestAuditMount(t *testing.T) {
	h := HandlerWith(HandlerOpts{
		Registry: NewRegistry(),
		Spans:    NewSpanLog(4),
		Audit: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Write([]byte("journal"))
		}),
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/audit?since=0", nil))
	if rec.Code != 200 || rec.Body.String() != "journal" {
		t.Fatalf("/audit: code=%d body=%q", rec.Code, rec.Body.String())
	}
	// Without an audit handler the path 404s.
	rec = httptest.NewRecorder()
	Handler(NewRegistry(), NewSpanLog(4)).ServeHTTP(rec, httptest.NewRequest("GET", "/audit", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/audit without journal: code=%d", rec.Code)
	}
}

func TestContextTrace(t *testing.T) {
	if id := TraceIDFrom(context.Background()); id != "" {
		t.Fatalf("TraceIDFrom(empty ctx) = %q", id)
	}
	tr := NewTrace()
	ctx := ContextWithTrace(context.Background(), tr)
	got, ok := TraceFrom(ctx)
	if !ok || got != tr {
		t.Fatalf("TraceFrom = %+v, %v; want %+v", got, ok, tr)
	}
	if TraceIDFrom(ctx) != tr.TraceID {
		t.Fatalf("TraceIDFrom = %q; want %q", TraceIDFrom(ctx), tr.TraceID)
	}
}
