package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	objs, err := ParseSLO("end.request<5ms@p99, acct.transfer<10ms@p99.9; POST /v1/authorize<250ms@p50")
	if err != nil {
		t.Fatal(err)
	}
	want := []Objective{
		{Method: "end.request", Target: 5 * time.Millisecond, Quantile: 0.99},
		{Method: "acct.transfer", Target: 10 * time.Millisecond, Quantile: 0.999},
		{Method: "POST /v1/authorize", Target: 250 * time.Millisecond, Quantile: 0.50},
	}
	if len(objs) != len(want) {
		t.Fatalf("parsed %d objectives, want %d", len(objs), len(want))
	}
	for i, o := range objs {
		if o.Method != want[i].Method || o.Target != want[i].Target {
			t.Errorf("objective %d = %+v, want %+v", i, o, want[i])
		}
		if diff := o.Quantile - want[i].Quantile; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("objective %d quantile = %v, want %v", i, o.Quantile, want[i].Quantile)
		}
	}

	if objs, err := ParseSLO(""); err != nil || len(objs) != 0 {
		t.Errorf("empty spec = %v, %v; want no objectives, no error", objs, err)
	}
	if objs, err := ParseSLO(" , ; "); err != nil || len(objs) != 0 {
		t.Errorf("separator-only spec = %v, %v", objs, err)
	}

	for _, bad := range []string{
		"nonsense",               // no '<'
		"<5ms@p99",               // empty method
		"end.request<5ms",        // missing @pQuantile
		"end.request<banana@p99", // unparsable duration
		"end.request<-5ms@p99",   // non-positive target
		"end.request<5ms@99",     // quantile missing the p prefix
		"end.request<5ms@p0",     // quantile at the open bound
		"end.request<5ms@p100",   // quantile at the open bound
		"end.request<5ms@pxyz",   // unparsable percentile
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted a malformed spec", bad)
		}
	}
}

func TestSLOObserveAndReport(t *testing.T) {
	s := NewSLO()
	s.Configure([]Objective{{Method: "end.request", Target: 5 * time.Millisecond, Quantile: 0.90}})

	// 9 fast calls and 1 slow one: exactly the p90 budget — compliant.
	for i := 0; i < 9; i++ {
		s.Observe("end.request", time.Millisecond, "")
	}
	s.Observe("end.request", 20*time.Millisecond, "trace-slow-1")
	// Observations for unarmed methods are ignored.
	s.Observe("acct.transfer", time.Hour, "ignored")

	reps := s.Report()
	if len(reps) != 1 {
		t.Fatalf("Report = %d objectives, want 1", len(reps))
	}
	r := reps[0]
	if r.Method != "end.request" || r.Total != 10 || r.Breaches != 1 {
		t.Fatalf("report = %+v", r)
	}
	// 1 breach out of 1 allowed (10% of 10): budget exactly spent.
	if r.BudgetRemainingPpm != 0 || !r.Compliant {
		t.Fatalf("budget = %d compliant = %v, want 0 ppm compliant", r.BudgetRemainingPpm, r.Compliant)
	}
	if len(r.ExemplarTraceIDs) != 1 || r.ExemplarTraceIDs[0] != "trace-slow-1" {
		t.Fatalf("exemplars = %v", r.ExemplarTraceIDs)
	}
	if r.ObservedQuantileNs <= 0 {
		t.Fatalf("observed quantile = %d, want > 0", r.ObservedQuantileNs)
	}

	// One more breach blows the objective.
	s.Observe("end.request", 30*time.Millisecond, "trace-slow-2")
	r = s.Report()[0]
	if r.Compliant || r.BudgetRemainingPpm >= 0 {
		t.Fatalf("after second breach: %+v, want blown", r)
	}
	if len(r.ExemplarTraceIDs) != 2 {
		t.Fatalf("exemplars = %v, want both slow traces", r.ExemplarTraceIDs)
	}
}

func TestSLOExemplarRing(t *testing.T) {
	s := NewSLO()
	s.Configure([]Objective{{Method: "m", Target: time.Millisecond, Quantile: 0.99}})
	// More breaches than the ring retains: the oldest roll off.
	ids := []string{"t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10"}
	for _, id := range ids {
		s.Observe("m", time.Second, id)
	}
	r := s.Report()[0]
	if len(r.ExemplarTraceIDs) != sloExemplars {
		t.Fatalf("retained %d exemplars, want %d", len(r.ExemplarTraceIDs), sloExemplars)
	}
	// Oldest-first, holding the most recent sloExemplars IDs.
	want := ids[len(ids)-sloExemplars:]
	for i, id := range r.ExemplarTraceIDs {
		if id != want[i] {
			t.Fatalf("exemplars = %v, want %v", r.ExemplarTraceIDs, want)
		}
	}
}

func TestSLOUnarmedIsInert(t *testing.T) {
	s := NewSLO()
	s.Observe("end.request", time.Hour, "tr") // must not panic or record
	if reps := s.Report(); len(reps) != 0 {
		t.Fatalf("unarmed Report = %+v", reps)
	}
	// Configure(nil) disarms a previously armed engine.
	s.Configure([]Objective{{Method: "m", Target: time.Millisecond, Quantile: 0.5}})
	s.Configure(nil)
	if s.armed.Load() {
		t.Fatal("Configure(nil) left the engine armed")
	}
}

func TestBudgetPpm(t *testing.T) {
	// Quantile 0.75 keeps the allowance exact in binary floating point,
	// so the expected ppm values are exact too.
	cases := []struct {
		total, breached uint64
		quantile        float64
		want            int64
	}{
		{0, 0, 0.75, 1_000_000},     // no data: untouched
		{100, 0, 0.75, 1_000_000},   // no breaches: untouched
		{100, 25, 0.75, 0},          // exactly the allowance
		{1000, 125, 0.75, 500_000},  // half spent
		{100, 50, 0.75, -1_000_000}, // double the allowance: blown
	}
	for _, c := range cases {
		if got := budgetPpm(c.total, c.breached, c.quantile); got != c.want {
			t.Errorf("budgetPpm(%d, %d, %v) = %d, want %d", c.total, c.breached, c.quantile, got, c.want)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	// Buckets: <=1, <=2, <=4, +Inf with 10, 10, 0, 0 observations.
	bounds := []float64{1, 2, 4}
	cum := []uint64{10, 20, 20, 20}
	// p50 rank = 10 lands exactly on the first bucket's edge.
	if q := histQuantile(bounds, cum, 0.5); q != 1 {
		t.Errorf("p50 = %v, want 1", q)
	}
	// p75 rank = 15 interpolates halfway through (1, 2].
	if q := histQuantile(bounds, cum, 0.75); q != 1.5 {
		t.Errorf("p75 = %v, want 1.5", q)
	}
	// Everything in the overflow bucket clamps to the largest bound.
	if q := histQuantile(bounds, []uint64{0, 0, 0, 7}, 0.5); q != 4 {
		t.Errorf("overflow p50 = %v, want 4", q)
	}
	if q := histQuantile(bounds, []uint64{0, 0, 0, 0}, 0.5); q != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", q)
	}
}

func TestSLOEndpoint(t *testing.T) {
	s := NewSLO()
	s.Configure([]Objective{{Method: "end.request", Target: 5 * time.Millisecond, Quantile: 0.99}})
	s.Observe("end.request", time.Millisecond, "")

	h := HandlerWith(HandlerOpts{Registry: NewRegistry(), Spans: NewSpanLog(4), SLO: s})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	if rr.Code != 200 {
		t.Fatalf("/slo = %d", rr.Code)
	}
	var doc struct {
		Objectives []ObjectiveReport `json:"objectives"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Objectives) != 1 || doc.Objectives[0].Method != "end.request" ||
		doc.Objectives[0].Total != 1 || !doc.Objectives[0].Compliant {
		t.Fatalf("/slo document = %+v", doc)
	}
	if doc.Objectives[0].TargetText != "5ms" {
		t.Fatalf("target text = %q", doc.Objectives[0].TargetText)
	}
}
