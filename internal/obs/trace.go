package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"strings"
	"sync"
	"time"
)

// Trace is the per-RPC trace context carried through the transport
// wire envelope: a request (trace) ID shared by every span of one
// logical operation, the current span ID, and the parent span ID (empty
// for a root span). IDs are 8 random bytes rendered as hex — trace
// correlation, not security tokens.
type Trace struct {
	// TraceID identifies the whole request tree.
	TraceID string `json:"traceId"`
	// SpanID identifies this hop.
	SpanID string `json:"spanId"`
	// Parent is the calling hop's span ID, empty at the root.
	Parent string `json:"parent,omitempty"`
}

func newID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// NewTrace starts a new trace with a fresh root span.
func NewTrace() Trace {
	return Trace{TraceID: newID(), SpanID: newID()}
}

// Child derives the context for an outgoing call made while handling
// this span.
func (t Trace) Child() Trace {
	return Trace{TraceID: t.TraceID, SpanID: newID(), Parent: t.SpanID}
}

// String renders the wire form "traceID-spanID". The zero Trace renders
// as "".
func (t Trace) String() string {
	if t.TraceID == "" {
		return ""
	}
	return t.TraceID + "-" + t.SpanID
}

// ParseTrace parses the wire form produced by String. The sender's span
// becomes the Parent of the receiver-side context; the receiver gets a
// fresh SpanID. Malformed or empty input yields a new root trace, so a
// server span is always well-formed.
func ParseTrace(s string) Trace {
	traceID, spanID, ok := strings.Cut(s, "-")
	if !ok || traceID == "" || spanID == "" {
		return NewTrace()
	}
	return Trace{TraceID: traceID, SpanID: newID(), Parent: spanID}
}

// Span is one completed, timed unit of work — an RPC as seen by the
// server, or a client call.
type Span struct {
	Trace
	// Kind is "server" or "client".
	Kind string `json:"kind"`
	// Method is the RPC method name.
	Method string `json:"method"`
	// Start is when the span began.
	Start time.Time `json:"start"`
	// Duration is the span's wall-clock length.
	Duration time.Duration `json:"durationNs"`
	// Err is the error text for failed spans, empty on success.
	Err string `json:"err,omitempty"`
	// Note carries an optional annotation (e.g. whether a chain
	// verification was served from the verified-chain cache).
	Note string `json:"note,omitempty"`
}

// SpanLog is a bounded ring of recently completed spans, served by the
// metrics listener at /traces for post-hoc RPC inspection.
type SpanLog struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// NewSpanLog returns a log retaining the last n spans.
func NewSpanLog(n int) *SpanLog {
	if n <= 0 {
		n = 256
	}
	return &SpanLog{buf: make([]Span, 0, n)}
}

// Spans is the process-wide span log the transport records into.
var Spans = NewSpanLog(256)

// Record appends a completed span, evicting the oldest when full.
func (l *SpanLog) Record(s Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, s)
		return
	}
	l.buf[l.next] = s
	l.next = (l.next + 1) % cap(l.buf)
}

// Recent returns the retained spans, newest first.
func (l *SpanLog) Recent() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, 0, len(l.buf))
	// Entries [next, len) are older than [0, next) once the ring wraps.
	for i := l.next - 1; i >= 0; i-- {
		out = append(out, l.buf[i])
	}
	for i := len(l.buf) - 1; i >= l.next; i-- {
		out = append(out, l.buf[i])
	}
	return out
}

// Total returns how many spans were ever recorded (including evicted).
func (l *SpanLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// WriteJSON renders the retained spans, newest first.
func (l *SpanLog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Total uint64 `json:"total"`
		Spans []Span `json:"spans"`
	}{l.Total(), l.Recent()})
}
