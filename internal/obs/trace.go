package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strings"
	"sync"
	"time"
)

// Trace is the per-RPC trace context carried through the transport
// wire envelope: a request (trace) ID shared by every span of one
// logical operation, the current span ID, and the parent span ID (empty
// for a root span). IDs are 8 random bytes rendered as hex — trace
// correlation, not security tokens.
type Trace struct {
	// TraceID identifies the whole request tree.
	TraceID string `json:"traceId"`
	// SpanID identifies this hop.
	SpanID string `json:"spanId"`
	// Parent is the calling hop's span ID, empty at the root.
	Parent string `json:"parent,omitempty"`
}

func newID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// NewTrace starts a new trace with a fresh root span.
func NewTrace() Trace {
	return Trace{TraceID: newID(), SpanID: newID()}
}

// Child derives the context for an outgoing call made while handling
// this span.
func (t Trace) Child() Trace {
	return Trace{TraceID: t.TraceID, SpanID: newID(), Parent: t.SpanID}
}

// String renders the wire form "traceID-spanID". The zero Trace renders
// as "".
func (t Trace) String() string {
	if t.TraceID == "" {
		return ""
	}
	return t.TraceID + "-" + t.SpanID
}

// ParseTrace parses the wire form produced by String. The sender's span
// becomes the Parent of the receiver-side context; the receiver gets a
// fresh SpanID. Malformed or empty input yields a new root trace, so a
// server span is always well-formed.
func ParseTrace(s string) Trace {
	traceID, spanID, ok := strings.Cut(s, "-")
	if !ok || traceID == "" || spanID == "" {
		return NewTrace()
	}
	return Trace{TraceID: traceID, SpanID: newID(), Parent: spanID}
}

// Span is one completed, timed unit of work — an RPC as seen by the
// server, or a client call.
type Span struct {
	Trace
	// Seq is the span's position in this process's span log — a dense
	// monotonic cursor assigned by Record, starting at 1. Pollers feed
	// the highest Seq they have seen back as /traces?since=.
	Seq uint64 `json:"seq,omitempty"`
	// Kind is "server", "client", or "call" (a logical retried
	// operation whose attempts are its children).
	Kind string `json:"kind"`
	// Method is the RPC method name.
	Method string `json:"method"`
	// Start is when the span began.
	Start time.Time `json:"start"`
	// Duration is the span's wall-clock length.
	Duration time.Duration `json:"durationNs"`
	// Err is the error text for failed spans, empty on success.
	Err string `json:"err,omitempty"`
	// Note carries an optional annotation (e.g. whether a chain
	// verification was served from the verified-chain cache).
	Note string `json:"note,omitempty"`
}

// spansDropped counts spans evicted from a full ring before any poller
// could have read them at that capacity — the signal to raise
// -trace-buffer or attach a -trace-file sink.
var spansDropped = Default.NewCounter("proxykit_obs_spans_dropped_total",
	"Spans evicted from the in-memory span ring because it was full.")

// SpanLog is a bounded ring of recently completed spans, served by the
// metrics listener at /traces for post-hoc RPC inspection. Every span
// gets a dense monotonic Seq so pollers can page incrementally, and an
// optional JSONL file sink retains what the ring evicts.
type SpanLog struct {
	mu       sync.Mutex
	buf      []Span
	start    int // index of the oldest retained span
	count    int
	total    uint64 // Seq of the newest span ever recorded
	f        *os.File
	writeErr uint64
}

// NewSpanLog returns a log retaining the last n spans.
func NewSpanLog(n int) *SpanLog {
	if n <= 0 {
		n = 256
	}
	return &SpanLog{buf: make([]Span, n)}
}

// Spans is the process-wide span log the transport records into.
var Spans = NewSpanLog(256)

// Record appends a completed span, assigning its Seq and evicting the
// oldest when full (counted by proxykit_obs_spans_dropped_total). With
// a sink attached the span is also appended as one JSONL line.
func (l *SpanLog) Record(s Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	s.Seq = l.total
	idx := (l.start + l.count) % len(l.buf)
	l.buf[idx] = s
	if l.count < len(l.buf) {
		l.count++
	} else {
		l.start = (l.start + 1) % len(l.buf)
		spansDropped.Inc()
	}
	if l.f != nil {
		line, err := json.Marshal(s)
		if err == nil {
			// One Write call per span: O_APPEND makes the line append
			// atomic with respect to other writers, the audit-journal
			// idiom applied to the span stream.
			_, err = l.f.Write(append(line, '\n'))
		}
		if err != nil {
			l.writeErr++
		}
	}
}

// Resize changes the ring capacity, retaining the newest min(n, count)
// spans. Invalid n keeps the 256 default.
func (l *SpanLog) Resize(n int) {
	if n <= 0 {
		n = 256
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := l.count
	if keep > n {
		keep = n
	}
	buf := make([]Span, n)
	for i := 0; i < keep; i++ {
		// The last `keep` spans, oldest of those first.
		buf[i] = l.buf[(l.start+l.count-keep+i)%len(l.buf)]
	}
	l.buf, l.start, l.count = buf, 0, keep
}

// SetSink attaches a JSONL file sink at path: every subsequently
// recorded span is appended as one JSON line, so the file retains the
// full span stream while the ring holds only the recent window. The
// file is opened O_APPEND; restarts extend it.
func (l *SpanLog) SetSink(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("obs: open span sink: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		_ = l.f.Close()
	}
	l.f = f
	return nil
}

// CloseSink detaches and closes the file sink, if any.
func (l *SpanLog) CloseSink() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Recent returns the retained spans, newest first.
func (l *SpanLog) Recent() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, 0, l.count)
	for i := l.count - 1; i >= 0; i-- {
		out = append(out, l.buf[(l.start+i)%len(l.buf)])
	}
	return out
}

// Total returns how many spans were ever recorded (including evicted).
func (l *SpanLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Page returns retained spans with Seq > since, oldest first, at most
// limit (unlimited when limit <= 0), keeping only spans whose TraceID
// equals traceID when it is non-empty. The returned cursor is the
// highest Seq included (since when nothing matched) — feed it back as
// the next request's since. oldest is the oldest retained Seq (0 when
// empty); a since below oldest-1 means spans rotated out of the ring
// (and are only in the file sink, if one is attached).
func (l *SpanLog) Page(since uint64, limit int, traceID string) (spans []Span, cursor, oldest, total uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cursor = since
	if l.count > 0 {
		oldest = l.buf[l.start].Seq
	}
	for i := 0; i < l.count; i++ {
		s := l.buf[(l.start+i)%len(l.buf)]
		if s.Seq <= since {
			continue
		}
		if traceID != "" && s.TraceID != traceID {
			continue
		}
		spans = append(spans, s)
		cursor = s.Seq
		if limit > 0 && len(spans) >= limit {
			break
		}
	}
	return spans, cursor, oldest, l.total
}

// WriteJSON renders the retained spans, newest first.
func (l *SpanLog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Total uint64 `json:"total"`
		Spans []Span `json:"spans"`
	}{l.Total(), l.Recent()})
}
