package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// record appends a minimal span with the given trace ID.
func record(l *SpanLog, traceID, method string) {
	l.Record(Span{
		Trace:    Trace{TraceID: traceID, SpanID: newID()},
		Kind:     "server",
		Method:   method,
		Start:    time.Now(),
		Duration: time.Millisecond,
	})
}

func TestSpanLogPageCursor(t *testing.T) {
	l := NewSpanLog(16)
	for i := 0; i < 5; i++ {
		record(l, fmt.Sprintf("tr%d", i), "m")
	}

	// First page from zero returns everything oldest-first with a dense
	// Seq starting at 1.
	spans, cursor, oldest, total := l.Page(0, 0, "")
	if len(spans) != 5 || cursor != 5 || oldest != 1 || total != 5 {
		t.Fatalf("Page(0) = %d spans cursor=%d oldest=%d total=%d", len(spans), cursor, oldest, total)
	}
	for i, s := range spans {
		if s.Seq != uint64(i+1) {
			t.Fatalf("span %d Seq = %d, want %d", i, s.Seq, i+1)
		}
	}

	// Feeding the cursor back returns nothing new and keeps the cursor.
	spans, cursor, _, _ = l.Page(cursor, 0, "")
	if len(spans) != 0 || cursor != 5 {
		t.Fatalf("Page(5) = %d spans cursor=%d, want 0 spans cursor=5", len(spans), cursor)
	}

	// New spans appear after the cursor.
	record(l, "tr5", "m")
	spans, cursor, _, _ = l.Page(cursor, 0, "")
	if len(spans) != 1 || spans[0].TraceID != "tr5" || cursor != 6 {
		t.Fatalf("incremental page = %+v cursor=%d", spans, cursor)
	}
}

func TestSpanLogPageLimit(t *testing.T) {
	l := NewSpanLog(16)
	for i := 0; i < 10; i++ {
		record(l, "t", "m")
	}
	var got int
	since := uint64(0)
	for i := 0; i < 10; i++ {
		spans, cursor, _, _ := l.Page(since, 3, "")
		if len(spans) == 0 {
			break
		}
		if len(spans) > 3 {
			t.Fatalf("page %d returned %d spans, limit 3", i, len(spans))
		}
		got += len(spans)
		since = cursor
	}
	if got != 10 {
		t.Fatalf("paged %d spans total, want 10", got)
	}
}

func TestSpanLogPageTraceFilter(t *testing.T) {
	l := NewSpanLog(16)
	record(l, "aaa", "m1")
	record(l, "bbb", "m2")
	record(l, "aaa", "m3")

	spans, cursor, _, _ := l.Page(0, 0, "aaa")
	if len(spans) != 2 || spans[0].Method != "m1" || spans[1].Method != "m3" {
		t.Fatalf("trace filter = %+v", spans)
	}
	// Cursor is the highest Seq included, not the highest seen.
	if cursor != 3 {
		t.Fatalf("cursor = %d, want 3", cursor)
	}
	if spans, _, _, _ := l.Page(0, 0, "zzz"); len(spans) != 0 {
		t.Fatalf("unknown trace returned %d spans", len(spans))
	}
}

func TestSpanLogEvictionAndOldest(t *testing.T) {
	l := NewSpanLog(4)
	before := spansDropped.Value()
	for i := 0; i < 10; i++ {
		record(l, "t", "m")
	}
	if d := spansDropped.Value() - before; d != 6 {
		t.Fatalf("dropped counter delta = %d, want 6", d)
	}
	spans, cursor, oldest, total := l.Page(0, 0, "")
	if len(spans) != 4 || oldest != 7 || cursor != 10 || total != 10 {
		t.Fatalf("after eviction: %d spans oldest=%d cursor=%d total=%d", len(spans), oldest, cursor, total)
	}
	// A since inside the evicted range still works: it returns what is
	// retained, and oldest tells the caller spans were lost.
	spans, _, oldest, _ = l.Page(2, 0, "")
	if len(spans) != 4 || oldest != 7 {
		t.Fatalf("page from evicted since: %d spans oldest=%d", len(spans), oldest)
	}
}

func TestSpanLogResize(t *testing.T) {
	l := NewSpanLog(8)
	for i := 0; i < 8; i++ {
		record(l, fmt.Sprintf("tr%d", i), "m")
	}
	// Shrinking keeps the newest spans and their Seq numbers.
	l.Resize(3)
	spans, _, oldest, total := l.Page(0, 0, "")
	if len(spans) != 3 || oldest != 6 || total != 8 {
		t.Fatalf("after shrink: %d spans oldest=%d total=%d", len(spans), oldest, total)
	}
	if spans[0].TraceID != "tr5" || spans[2].TraceID != "tr7" {
		t.Fatalf("shrink kept wrong spans: %s..%s", spans[0].TraceID, spans[2].TraceID)
	}
	// Growing preserves content and admits more before evicting.
	l.Resize(10)
	record(l, "tr8", "m")
	spans, _, _, _ = l.Page(0, 0, "")
	if len(spans) != 4 || spans[3].TraceID != "tr8" {
		t.Fatalf("after grow: %d spans, last %s", len(spans), spans[len(spans)-1].TraceID)
	}
}

func TestSpanLogSink(t *testing.T) {
	l := NewSpanLog(2) // smaller than the span count: the sink must outlive the ring
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := l.SetSink(path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		record(l, fmt.Sprintf("tr%d", i), "m")
	}
	if err := l.CloseSink(); err != nil {
		t.Fatal(err)
	}
	// Recording after CloseSink must not write (or crash).
	record(l, "tr-after", "m")

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []Span
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, s)
	}
	if len(lines) != 5 {
		t.Fatalf("sink holds %d spans, want 5 (ring only retains 2)", len(lines))
	}
	for i, s := range lines {
		if s.Seq != uint64(i+1) || s.TraceID != fmt.Sprintf("tr%d", i) {
			t.Fatalf("sink line %d = seq %d trace %s", i, s.Seq, s.TraceID)
		}
	}
}

// TestServeTraces drives the /traces endpoint end to end: cursor
// paging, the X-Trace-Cursor header, and the trace filter.
func TestServeTraces(t *testing.T) {
	l := NewSpanLog(16)
	record(l, "aaa", "m1")
	record(l, "bbb", "m2")
	record(l, "aaa", "m3")
	h := Handler(NewRegistry(), l)

	get := func(url string) (doc struct {
		Total  uint64 `json:"total"`
		Oldest uint64 `json:"oldest"`
		Cursor uint64 `json:"cursor"`
		Spans  []Span `json:"spans"`
	}, header string) {
		t.Helper()
		req := httptest.NewRequest("GET", url, nil)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != 200 {
			t.Fatalf("GET %s = %d", url, rr.Code)
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		return doc, rr.Header().Get("X-Trace-Cursor")
	}

	doc, hdr := get("/traces")
	if len(doc.Spans) != 3 || doc.Cursor != 3 || doc.Total != 3 || doc.Oldest != 1 {
		t.Fatalf("full page = %+v", doc)
	}
	if hdr != "3" {
		t.Fatalf("X-Trace-Cursor = %q, want 3", hdr)
	}
	if doc.Spans[0].Seq != 1 {
		t.Fatalf("spans not oldest-first: %+v", doc.Spans)
	}

	doc, _ = get("/traces?since=2")
	if len(doc.Spans) != 1 || doc.Spans[0].Method != "m3" {
		t.Fatalf("since=2 page = %+v", doc)
	}

	doc, _ = get("/traces?limit=2")
	if len(doc.Spans) != 2 || doc.Cursor != 2 {
		t.Fatalf("limit=2 page = %+v", doc)
	}

	doc, hdr = get("/traces?trace=aaa")
	if len(doc.Spans) != 2 || doc.Spans[0].Method != "m1" || doc.Spans[1].Method != "m3" {
		t.Fatalf("trace filter page = %+v", doc)
	}
	if hdr != "3" {
		t.Fatalf("filtered X-Trace-Cursor = %q, want 3", hdr)
	}

	// An empty page echoes the caller's cursor back.
	doc, hdr = get("/traces?since=3")
	if len(doc.Spans) != 0 || doc.Cursor != 3 || hdr != "3" {
		t.Fatalf("empty page = %+v header %q", doc, hdr)
	}
}

func TestTraceOptionsApply(t *testing.T) {
	defer func() {
		Spans = NewSpanLog(256)
		DefaultSLO.Configure(nil)
	}()
	Spans = NewSpanLog(256)

	path := filepath.Join(t.TempDir(), "sink.jsonl")
	o := TraceOptions{Buffer: 32, File: path, SLO: "end.request<5ms@p99"}
	cleanup, err := o.Apply()
	if err != nil {
		t.Fatal(err)
	}
	Spans.Record(Span{Trace: NewTrace(), Kind: "server", Method: "end.request"})
	cleanup()
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) == 0 {
		t.Fatalf("sink file after Apply: %v (%d bytes)", err, len(raw))
	}
	if len(DefaultSLO.Report()) != 1 {
		t.Fatalf("Apply armed %d objectives, want 1", len(DefaultSLO.Report()))
	}

	// A bad SLO spec fails Apply and does not leak the sink.
	bad := TraceOptions{Buffer: 32, File: path, SLO: "nonsense"}
	if _, err := bad.Apply(); err == nil {
		t.Fatal("Apply accepted a malformed -slo spec")
	}
}
