package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SLO spec grammar (the -slo daemon flag): a comma- or semicolon-
// separated list of per-method latency objectives
//
//	method<target@pQuantile
//
// e.g. "end.request<5ms@p99,acct.transfer<10ms@p99.9". target is any
// time.ParseDuration string; the quantile is a percentile like p50,
// p99, or p99.9. An objective of "end.request<5ms@p99" reads: 99% of
// end.request calls must complete within 5ms — equivalently, the error
// budget is the 1% of calls allowed to run long. Every observation
// over target burns budget; the remaining budget is exported as a
// gauge, and the last few offending trace IDs are retained as
// exemplars so a blown objective points at concrete trace trees.

// Objective is one parsed per-method latency objective.
type Objective struct {
	// Method is the RPC method (or gateway route label) observed.
	Method string `json:"method"`
	// Target is the latency bound.
	Target time.Duration `json:"targetNs"`
	// Quantile is the fraction of calls that must meet Target,
	// e.g. 0.99 for p99.
	Quantile float64 `json:"quantile"`
}

// ParseSLO parses the -slo spec grammar above. An empty spec yields no
// objectives and no error.
func ParseSLO(spec string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ';' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		method, rest, ok := strings.Cut(part, "<")
		method = strings.TrimSpace(method)
		if !ok || method == "" {
			return nil, fmt.Errorf("obs: slo %q: want method<target@pQuantile", part)
		}
		targetStr, quantStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("obs: slo %q: missing @pQuantile", part)
		}
		target, err := time.ParseDuration(strings.TrimSpace(targetStr))
		if err != nil || target <= 0 {
			return nil, fmt.Errorf("obs: slo %q: bad target %q", part, targetStr)
		}
		quantStr = strings.TrimSpace(quantStr)
		if !strings.HasPrefix(quantStr, "p") {
			return nil, fmt.Errorf("obs: slo %q: quantile %q must look like p99", part, quantStr)
		}
		pct, err := strconv.ParseFloat(quantStr[1:], 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return nil, fmt.Errorf("obs: slo %q: quantile %q out of (p0, p100)", part, quantStr)
		}
		out = append(out, Objective{Method: method, Target: target, Quantile: pct / 100})
	}
	return out, nil
}

// sloExemplars is how many offending trace IDs each objective retains.
const sloExemplars = 8

var (
	sloRequests = Default.NewCounterVec("proxykit_slo_requests_total",
		"Observations counted against a configured latency objective, by method.", "method")
	sloBreaches = Default.NewCounterVec("proxykit_slo_breaches_total",
		"Observations that exceeded their objective's latency target (burned error budget), by method.", "method")
	sloBudget = Default.NewGaugeVec("proxykit_slo_error_budget_remaining_ppm",
		"Remaining error budget per objective in parts per million of the budget (1e6 = untouched, 0 = exhausted, negative = overspent), by method.", "method")
	sloLatency = Default.NewHistogramVec("proxykit_slo_latency_seconds",
		"Latency distribution of observations counted against an objective, by method.", DefLatencyBuckets, "method")
)

// objectiveState tracks one armed objective's burn.
type objectiveState struct {
	obj       Objective
	targetSec float64
	requests  *Counter
	breaches  *Counter
	budget    *Gauge
	hist      *Histogram

	mu        sync.Mutex
	total     uint64
	breached  uint64
	exemplars []string // ring of the last sloExemplars offending trace IDs
	exNext    int
}

// SLO evaluates per-method latency objectives as observations arrive.
// The zero-armed fast path is a single atomic load, so wiring Observe
// into every RPC costs nothing until -slo arms it.
type SLO struct {
	armed atomic.Bool
	mu    sync.RWMutex
	m     map[string]*objectiveState
}

// NewSLO returns an engine with no objectives armed.
func NewSLO() *SLO { return &SLO{m: map[string]*objectiveState{}} }

// DefaultSLO is the process-wide engine the transport and gateway
// observe into; daemons arm it from their -slo flag.
var DefaultSLO = NewSLO()

// Configure arms the given objectives, replacing any previous set. A
// repeated method keeps the last objective given for it.
func (s *SLO) Configure(objs []Objective) {
	m := make(map[string]*objectiveState, len(objs))
	for _, o := range objs {
		m[o.Method] = &objectiveState{
			obj:       o,
			targetSec: o.Target.Seconds(),
			requests:  sloRequests.With(o.Method),
			breaches:  sloBreaches.With(o.Method),
			budget:    sloBudget.With(o.Method),
			hist:      sloLatency.With(o.Method),
			exemplars: make([]string, 0, sloExemplars),
		}
		m[o.Method].budget.Set(1_000_000)
	}
	s.mu.Lock()
	s.m = m
	s.mu.Unlock()
	s.armed.Store(len(m) > 0)
}

// Observe counts one completed call against the method's objective, if
// one is armed. traceID (may be empty) becomes an exemplar when the
// call exceeds the target.
func (s *SLO) Observe(method string, d time.Duration, traceID string) {
	if !s.armed.Load() {
		return
	}
	s.mu.RLock()
	st := s.m[method]
	s.mu.RUnlock()
	if st == nil {
		return
	}
	sec := d.Seconds()
	st.requests.Inc()
	st.hist.Observe(sec)
	st.mu.Lock()
	st.total++
	if sec > st.targetSec {
		st.breached++
		st.breaches.Inc()
		if len(st.exemplars) < sloExemplars {
			st.exemplars = append(st.exemplars, traceID)
		} else {
			st.exemplars[st.exNext] = traceID
		}
		st.exNext = (st.exNext + 1) % sloExemplars
	}
	st.budget.Set(budgetPpm(st.total, st.breached, st.obj.Quantile))
	st.mu.Unlock()
}

// budgetPpm converts a breach count into remaining error budget: the
// budget is the (1 - quantile) fraction of calls allowed over target;
// spending is linear in breaches. 1e6 = untouched, 0 = exactly spent,
// negative = the objective is blown.
func budgetPpm(total, breached uint64, quantile float64) int64 {
	if total == 0 {
		return 1_000_000
	}
	allowed := (1 - quantile) * float64(total)
	if allowed <= 0 {
		return 1_000_000
	}
	return int64(1_000_000 * (1 - float64(breached)/allowed))
}

// ObjectiveReport is one objective's compliance summary, served at
// /slo and rendered by `proxyctl slo`.
type ObjectiveReport struct {
	Objective
	// TargetText is Target as a human duration string ("5ms").
	TargetText string `json:"target"`
	// Total and Breaches count observations since arming.
	Total    uint64 `json:"total"`
	Breaches uint64 `json:"breaches"`
	// BudgetRemainingPpm mirrors the gauge.
	BudgetRemainingPpm int64 `json:"budgetRemainingPpm"`
	// ObservedQuantileNs estimates the armed quantile from the
	// objective's own latency histogram.
	ObservedQuantileNs int64 `json:"observedQuantileNs"`
	// Compliant is whether the breach rate is within the budget.
	Compliant bool `json:"compliant"`
	// ExemplarTraceIDs are the most recent offending trace IDs —
	// feed them to `proxyctl trace show`.
	ExemplarTraceIDs []string `json:"exemplarTraceIds,omitempty"`
}

// Report summarizes every armed objective, sorted by method.
func (s *SLO) Report() []ObjectiveReport {
	s.mu.RLock()
	states := make([]*objectiveState, 0, len(s.m))
	for _, st := range s.m {
		states = append(states, st)
	}
	s.mu.RUnlock()
	out := make([]ObjectiveReport, 0, len(states))
	for _, st := range states {
		st.mu.Lock()
		r := ObjectiveReport{
			Objective:          st.obj,
			TargetText:         st.obj.Target.String(),
			Total:              st.total,
			Breaches:           st.breached,
			BudgetRemainingPpm: budgetPpm(st.total, st.breached, st.obj.Quantile),
			Compliant:          budgetPpm(st.total, st.breached, st.obj.Quantile) >= 0,
		}
		// Oldest exemplar first; drop empty IDs from untraced calls.
		for i := 0; i < len(st.exemplars); i++ {
			if id := st.exemplars[(st.exNext+i)%len(st.exemplars)]; id != "" {
				r.ExemplarTraceIDs = append(r.ExemplarTraceIDs, id)
			}
		}
		st.mu.Unlock()
		bounds, cum := st.hist.Buckets()
		r.ObservedQuantileNs = int64(histQuantile(bounds, cum, st.obj.Quantile) * float64(time.Second))
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Method < out[j].Method })
	return out
}

// histQuantile estimates the q-th quantile of a cumulative histogram by
// linear interpolation within the bucket holding the rank. bounds are
// the finite upper bounds, cum the cumulative counts parallel to them
// plus a final +Inf entry.
func histQuantile(bounds []float64, cum []uint64, q float64) float64 {
	if len(cum) == 0 {
		return 0
	}
	total := float64(cum[len(cum)-1])
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * total
	prevBound, prevCount := 0.0, 0.0
	for i, b := range bounds {
		c := float64(cum[i])
		if c >= rank {
			if c == prevCount {
				return b
			}
			return prevBound + (b-prevBound)*(rank-prevCount)/(c-prevCount)
		}
		prevBound, prevCount = b, c
	}
	// The rank falls in the +Inf bucket; clamp to the largest finite
	// bound rather than inventing an upper edge.
	return bounds[len(bounds)-1]
}

// ServeHTTP serves the /slo compliance document.
func (s *SLO) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Objectives []ObjectiveReport `json:"objectives"`
	}{s.Report()})
}
