// Package obs is proxykit's zero-dependency observability substrate:
// counters, gauges, and fixed-bucket latency histograms with atomic
// hot paths, collected in a Registry that renders both the Prometheus
// text-exposition format and an expvar-style JSON document, plus a
// lightweight per-RPC trace context (request ID + parent span carried
// through the transport wire envelope) recorded in a bounded span log.
//
// The package exists so the paper's measurable claims — verification
// latency (§2.3), cascade-chain depth (§3.4), and check-clearing
// traffic (§4, Fig. 5) — are visible from a running deployment, not
// only from the offline experiment harness. Every instrument is built
// on sync/atomic so the instrumented hot paths (RPC dispatch, proxy
// verification, check clearing) pay one atomic add per event.
//
// Metric names follow the Prometheus convention: a `proxykit_` prefix,
// a subsystem, and a unit-suffixed name (`_total` for counters,
// `_seconds` for latency histograms). The full catalogue lives in
// OBSERVABILITY.md at the repository root and is kept in sync with the
// code by a test.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType enumerates the instrument kinds a Registry holds.
type MetricType int

// Instrument kinds.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String returns the Prometheus TYPE keyword.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefLatencyBuckets are the default latency histogram bounds, in
// seconds. They span sub-millisecond in-process dispatch up to the
// multi-second timeouts the TCP client enforces.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// DefChainBuckets are the default bounds for proxy cascade-chain-length
// histograms (§3.4): chains are short integers, so unit buckets suffice.
var DefChainBuckets = []float64{1, 2, 3, 4, 5, 6, 8, 12, 16}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Buckets are cumulative at
// render time but stored per-interval so Observe is a single atomic
// add; the sum is a CAS loop over the float bits.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf after
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and the cumulative count at each,
// ending with the +Inf bucket (== Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	cumulative = make([]uint64, len(h.counts))
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	return h.bounds, cumulative
}

// family is one named metric with a fixed label schema and one child
// instrument per label-value combination.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string
	bounds []float64 // histograms only

	mu       sync.RWMutex
	children map[string]any // joined label values -> *Counter | *Gauge | *Histogram
}

// labelKey joins label values with an unprintable separator.
const labelSep = "\x1f"

func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var m any
	switch f.typ {
	case TypeCounter:
		m = &Counter{}
	case TypeGauge:
		m = &Gauge{}
	case TypeHistogram:
		m = newHistogram(f.bounds)
	}
	f.children[key] = m
	return m
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. Registration is idempotent: asking for an existing name
// with the same type returns the existing instrument, so package-level
// metric variables and tests can share the Default registry safely.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry the instrumented packages
// register into and the daemons' -metrics-addr listener serves.
var Default = NewRegistry()

func (r *Registry) register(name, help string, typ MetricType, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// NewCounter registers (or returns) an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, TypeCounter, nil, nil).child(nil).(*Counter)
}

// NewCounterVec registers (or returns) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, labels, nil)}
}

// NewGauge registers (or returns) an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, TypeGauge, nil, nil).child(nil).(*Gauge)
}

// NewGaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, TypeGauge, labels, nil)}
}

// NewHistogram registers (or returns) an unlabeled histogram with the
// given ascending upper bounds.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, TypeHistogram, nil, bounds).child(nil).(*Histogram)
}

// NewHistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, TypeHistogram, labels, bounds)}
}

// Names returns the sorted names of all registered metric families.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// sortedFamilies returns families in name order, and each family's
// child keys in key order, for deterministic rendering.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (f *family) sortedChildren() (keys []string, children []any) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys = make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children = make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	return keys, children
}
