package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"
)

// scrapes counts /metrics scrapes served by this process — a liveness
// signal for the monitoring pipeline itself.
var scrapes = Default.NewCounter("proxykit_metrics_scrapes_total",
	"Number of /metrics scrapes served by the metrics listener.")

// processStart anchors the uptime reported by /healthz.
var processStart = time.Now()

// HandlerOpts configures the side-listener handler beyond the process
// defaults.
type HandlerOpts struct {
	// Registry defaults to Default when nil.
	Registry *Registry
	// Spans defaults to the process-wide Spans log when nil.
	Spans *SpanLog
	// Audit, when non-nil, is mounted at /audit — typically an
	// *audit.Journal serving its in-memory tail.
	Audit http.Handler
	// Health, when non-nil, contributes extra top-level fields to the
	// /healthz JSON document (e.g. audit journal status).
	Health func() map[string]any
	// SLO defaults to the process-wide DefaultSLO engine when nil; it
	// is mounted at /slo.
	SLO *SLO
}

// Handler returns the side-listener HTTP handler every daemon mounts
// when started with -metrics-addr:
//
//	/metrics       Prometheus text format (?format=json for JSON)
//	/healthz       liveness + build info + uptime as JSON
//	/traces        recent RPC spans; ?since=<cursor>&limit=<n> pages
//	               incrementally, ?trace=<id> filters to one trace
//	/slo           latency-objective compliance (see the -slo flag)
//	/audit         the daemon's audit-journal tail (when configured)
//	/debug/pprof/  the standard net/http/pprof profiles
//
// reg and spans default to the process-wide Default registry and Spans
// log when nil. HandlerWith exposes the remaining options.
func Handler(reg *Registry, spans *SpanLog) http.Handler {
	return HandlerWith(HandlerOpts{Registry: reg, Spans: spans})
}

// HandlerWith is Handler with the full option set.
func HandlerWith(o HandlerOpts) http.Handler {
	reg := o.Registry
	if reg == nil {
		reg = Default
	}
	spans := o.Spans
	if spans == nil {
		spans = Spans
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		scrapes.Inc()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		doc := healthDoc()
		if o.Health != nil {
			for k, v := range o.Health() {
				doc[k] = v
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		serveTraces(w, r, spans)
	})
	slo := o.SLO
	if slo == nil {
		slo = DefaultSLO
	}
	mux.Handle("/slo", slo)
	if o.Audit != nil {
		mux.Handle("/audit", o.Audit)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveTraces serves the span ring with /audit's cursor semantics:
// ?since=<seq> returns spans with Seq > since, oldest first, at most
// ?limit; ?trace=<id> filters to one trace. The response's "cursor"
// (also the X-Trace-Cursor header) is the highest Seq returned — feed
// it back as the next request's since so polling never re-reads or
// misses a span. "oldest" is the oldest retained Seq; a since below
// oldest-1 means spans rotated out of the ring (raise -trace-buffer or
// attach -trace-file).
func serveTraces(w http.ResponseWriter, r *http.Request, spans *SpanLog) {
	q := r.URL.Query()
	since, _ := strconv.ParseUint(q.Get("since"), 10, 64)
	limit, _ := strconv.Atoi(q.Get("limit"))
	page, cursor, oldest, total := spans.Page(since, limit, q.Get("trace"))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Trace-Cursor", strconv.FormatUint(cursor, 10))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Total  uint64 `json:"total"`
		Oldest uint64 `json:"oldest"`
		Cursor uint64 `json:"cursor"`
		Spans  []Span `json:"spans"`
	}{total, oldest, cursor, page})
}

// healthDoc builds the base /healthz document: status, uptime, and
// build info from runtime/debug.ReadBuildInfo.
func healthDoc() map[string]any {
	doc := map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(processStart).Seconds(),
		"goVersion":     runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		doc["module"] = bi.Main.Path
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			doc["version"] = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				doc["vcsRevision"] = s.Value
			case "vcs.time":
				doc["vcsTime"] = s.Value
			case "vcs.modified":
				doc["vcsModified"] = s.Value == "true"
			}
		}
	}
	return doc
}

// Serve starts the observability side listener on addr and returns the
// running server and its bound address (useful with ":0"). The caller
// should Close the server on shutdown. Pass nil reg/spans for the
// process defaults.
func Serve(addr string, reg *Registry, spans *SpanLog) (*http.Server, net.Addr, error) {
	return ServeWith(addr, HandlerOpts{Registry: reg, Spans: spans})
}

// ServeWith is Serve with the full option set.
func ServeWith(addr string, o HandlerOpts) (*http.Server, net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           HandlerWith(o),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(l) }()
	return srv, l.Addr(), nil
}
