package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// scrapes counts /metrics scrapes served by this process — a liveness
// signal for the monitoring pipeline itself.
var scrapes = Default.NewCounter("proxykit_metrics_scrapes_total",
	"Number of /metrics scrapes served by the metrics listener.")

// Handler returns the side-listener HTTP handler every daemon mounts
// when started with -metrics-addr:
//
//	/metrics       Prometheus text format (?format=json for JSON)
//	/healthz       "ok" liveness probe
//	/traces        recent RPC spans, newest first, as JSON
//	/debug/pprof/  the standard net/http/pprof profiles
//
// reg and spans default to the process-wide Default registry and Spans
// log when nil.
func Handler(reg *Registry, spans *SpanLog) http.Handler {
	if reg == nil {
		reg = Default
	}
	if spans == nil {
		spans = Spans
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		scrapes.Inc()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = spans.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability side listener on addr and returns the
// running server and its bound address (useful with ":0"). The caller
// should Close the server on shutdown. Pass nil reg/spans for the
// process defaults.
func Serve(addr string, reg *Registry, spans *SpanLog) (*http.Server, net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(reg, spans),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(l) }()
	return srv, l.Addr(), nil
}
