package pubkey

import (
	"bytes"
	"errors"
	"testing"

	"proxykit/internal/principal"
	"proxykit/internal/transport"
)

var (
	pAlice = principal.New("alice", "ISI.EDU")
	pBob   = principal.New("bob", "ISI.EDU")
)

func TestIdentityAndDirectory(t *testing.T) {
	alice, err := NewIdentity(pAlice)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDirectory()
	d.RegisterIdentity(alice)

	pk, err := d.Lookup(pAlice)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("signed by alice")
	sig, err := alice.Signer().Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pk.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Lookup(pBob); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if d.Len() != 1 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestIdentityFromSeedDeterministic(t *testing.T) {
	seed := bytes.Repeat([]byte{9}, 32)
	a, err := IdentityFromSeed(pAlice, seed)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := IdentityFromSeed(pAlice, seed)
	if a.Public().KeyID() != b.Public().KeyID() {
		t.Fatal("seeded identity not deterministic")
	}
}

func TestResolver(t *testing.T) {
	alice, _ := NewIdentity(pAlice)
	d := NewDirectory()
	d.RegisterIdentity(alice)
	resolve := d.Resolver()
	v, err := resolve(pAlice)
	if err != nil {
		t.Fatal(err)
	}
	if v.KeyID() != alice.Public().KeyID() {
		t.Fatal("resolver returned wrong key")
	}
	if _, err := resolve(pBob); err == nil {
		t.Fatal("unknown principal resolved")
	}
}

func TestRemoveRevokesLookups(t *testing.T) {
	alice, _ := NewIdentity(pAlice)
	d := NewDirectory()
	d.RegisterIdentity(alice)
	d.Remove(pAlice)
	if _, err := d.Lookup(pAlice); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteDirectory(t *testing.T) {
	alice, _ := NewIdentity(pAlice)
	d := NewDirectory()
	d.RegisterIdentity(alice)

	n := transport.NewNetwork()
	n.Register("dir", d.Mux())
	rd := NewRemoteDirectory(n.MustDial("dir"))

	pk, err := rd.Lookup(pAlice)
	if err != nil {
		t.Fatal(err)
	}
	if pk.KeyID() != alice.Public().KeyID() {
		t.Fatal("remote lookup returned wrong key")
	}
	// Second lookup is served from cache: round trips stay at 1.
	if _, err := rd.Lookup(pAlice); err != nil {
		t.Fatal(err)
	}
	if _, rts, _ := n.Stats().Snapshot(); rts != 1 {
		t.Fatalf("round trips = %d, want 1 (cache miss only)", rts)
	}
	if _, err := rd.Lookup(pBob); err == nil {
		t.Fatal("unknown principal resolved remotely")
	}
	if _, err := rd.Resolver()(pAlice); err != nil {
		t.Fatal(err)
	}
}
