// Package pubkey is the public-key authentication substrate of §6.1: it
// manages Ed25519 identities and the name-server directory from which an
// end-server "decrypts the proxy using the public key of the grantor
// (obtained from an authentication/name server)".
package pubkey

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/transport"
	"proxykit/internal/wire"
)

// ErrNotFound is returned when a principal has no registered key.
var ErrNotFound = errors.New("pubkey: principal not found")

// Identity couples a principal with its Ed25519 signing key pair and an
// X25519 encryption key used to receive hybrid-mode proxy keys (§6.1).
type Identity struct {
	// ID is the principal.
	ID principal.ID

	keys *kcrypto.KeyPair
	enc  *kcrypto.ECDHKey
}

// NewIdentity generates a fresh identity for id.
func NewIdentity(id principal.ID) (*Identity, error) {
	kp, err := kcrypto.NewKeyPair()
	if err != nil {
		return nil, err
	}
	enc, err := kcrypto.NewECDHKey()
	if err != nil {
		return nil, err
	}
	return &Identity{ID: id, keys: kp, enc: enc}, nil
}

// IdentityFromSeed derives a deterministic signing identity (tests,
// examples); the encryption key is still fresh.
func IdentityFromSeed(id principal.ID, seed []byte) (*Identity, error) {
	kp, err := kcrypto.KeyPairFromSeed(seed)
	if err != nil {
		return nil, err
	}
	enc, err := kcrypto.NewECDHKey()
	if err != nil {
		return nil, err
	}
	return &Identity{ID: id, keys: kp, enc: enc}, nil
}

// IdentityFromKeys reconstructs a persisted identity.
func IdentityFromKeys(id principal.ID, signSeed, encPriv []byte) (*Identity, error) {
	kp, err := kcrypto.KeyPairFromSeed(signSeed)
	if err != nil {
		return nil, err
	}
	enc, err := kcrypto.ECDHKeyFromBytes(encPriv)
	if err != nil {
		return nil, err
	}
	return &Identity{ID: id, keys: kp, enc: enc}, nil
}

// Signer returns the identity's signing key.
func (i *Identity) Signer() kcrypto.Signer { return i.keys }

// Public returns the identity's verification key.
func (i *Identity) Public() *kcrypto.PublicKey { return i.keys.Public() }

// ECDH returns the identity's long-term encryption key (the private
// half; PublicBytes gives the publishable half).
func (i *Identity) ECDH() *kcrypto.ECDHKey { return i.enc }

// Directory is the name server mapping principals to their public keys:
// Ed25519 verification keys and, when published, X25519 encryption keys
// for hybrid-mode proxy grants. It is the trust root of the public-key
// mode: registering a key asserts the binding.
type Directory struct {
	mu   sync.RWMutex
	keys map[principal.ID]*kcrypto.PublicKey
	enc  map[principal.ID][]byte
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		keys: make(map[principal.ID]*kcrypto.PublicKey),
		enc:  make(map[principal.ID][]byte),
	}
}

// Register binds id to pk, replacing any previous binding.
func (d *Directory) Register(id principal.ID, pk *kcrypto.PublicKey) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.keys[id] = pk
}

// RegisterIdentity binds an identity's verification and encryption
// keys.
func (d *Directory) RegisterIdentity(i *Identity) {
	d.Register(i.ID, i.Public())
	if i.enc != nil {
		d.RegisterEncryption(i.ID, i.enc.PublicBytes())
	}
}

// RegisterEncryption binds id to an X25519 public key for hybrid-mode
// proxy grants.
func (d *Directory) RegisterEncryption(id principal.ID, pub []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := make([]byte, len(pub))
	copy(cp, pub)
	d.enc[id] = cp
}

// LookupEncryption returns the X25519 public key bound to id.
func (d *Directory) LookupEncryption(id principal.ID) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	pub, ok := d.enc[id]
	if !ok {
		return nil, fmt.Errorf("%w: encryption key for %s", ErrNotFound, id)
	}
	cp := make([]byte, len(pub))
	copy(cp, pub)
	return cp, nil
}

// Lookup returns the public key bound to id.
func (d *Directory) Lookup(id principal.ID) (*kcrypto.PublicKey, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	pk, ok := d.keys[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return pk, nil
}

// Resolver adapts the directory to the identity-resolution callback the
// proxy verifier uses.
func (d *Directory) Resolver() func(principal.ID) (kcrypto.Verifier, error) {
	return func(id principal.ID) (kcrypto.Verifier, error) {
		return d.Lookup(id)
	}
}

// Remove deletes a binding; outstanding proxies from that grantor become
// unverifiable — the revocation lever of §3.1.
func (d *Directory) Remove(id principal.ID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.keys, id)
	delete(d.enc, id)
}

// Len reports the number of bindings.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.keys)
}

// LookupMethod is the RPC method name for directory lookups.
const LookupMethod = "pubkey.lookup"

// Mux returns a transport mux serving directory lookups.
func (d *Directory) Mux() *transport.Mux {
	m := transport.NewMux()
	m.Handle(LookupMethod, func(_ context.Context, body []byte) ([]byte, error) {
		dec := wire.NewDecoder(body)
		id := principal.DecodeID(dec)
		if err := dec.Finish(); err != nil {
			return nil, err
		}
		pk, err := d.Lookup(id)
		if err != nil {
			return nil, err
		}
		e := wire.NewEncoder(64)
		e.Bytes32(pk.Bytes())
		return e.Bytes(), nil
	})
	return m
}

// RemoteDirectory looks up keys over a transport client, caching
// results; it satisfies the same Resolver contract as a local Directory.
type RemoteDirectory struct {
	client transport.Client

	mu    sync.RWMutex
	cache map[principal.ID]*kcrypto.PublicKey
}

// NewRemoteDirectory wraps a client for a directory service.
func NewRemoteDirectory(c transport.Client) *RemoteDirectory {
	return &RemoteDirectory{client: c, cache: make(map[principal.ID]*kcrypto.PublicKey)}
}

// Lookup fetches (and caches) the key for id.
func (r *RemoteDirectory) Lookup(id principal.ID) (*kcrypto.PublicKey, error) {
	r.mu.RLock()
	pk, ok := r.cache[id]
	r.mu.RUnlock()
	if ok {
		return pk, nil
	}
	e := wire.NewEncoder(64)
	id.Encode(e)
	resp, err := r.client.Call(LookupMethod, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(resp)
	raw := d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	pk, err = kcrypto.PublicKeyFromBytes(raw)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache[id] = pk
	r.mu.Unlock()
	return pk, nil
}

// Resolver adapts the remote directory for proxy verification.
func (r *RemoteDirectory) Resolver() func(principal.ID) (kcrypto.Verifier, error) {
	return func(id principal.ID) (kcrypto.Verifier, error) {
		return r.Lookup(id)
	}
}
