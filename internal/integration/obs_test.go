package integration

import (
	"bytes"
	"encoding/json"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/audit"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/svc"
)

// snapshot reads the process-global registry via its JSON rendering, so
// tests can assert deltas without reaching into other packages'
// unexported metric variables.
type snapshot map[string]any

func takeSnapshot(t *testing.T) snapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.Default.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc snapshot
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// counter returns an unlabeled counter/gauge value, 0 if absent.
func (s snapshot) counter(name string) float64 {
	v, _ := s[name].(float64)
	return v
}

// labeled returns one child of a labeled family ("outcome=ok" style
// key), 0 if absent.
func (s snapshot) labeled(name, key string) float64 {
	fam, _ := s[name].(map[string]any)
	v, _ := fam[key].(float64)
	return v
}

// labeledSum sums every child of a labeled family.
func (s snapshot) labeledSum(name string) float64 {
	fam, _ := s[name].(map[string]any)
	var total float64
	for _, v := range fam {
		if f, ok := v.(float64); ok {
			total += f
		}
	}
	return total
}

// histCount returns a histogram child's observation count; works for
// labeled ("method=x") and unlabeled ("") families.
func (s snapshot) histCount(name, key string) float64 {
	switch fam := s[name].(type) {
	case map[string]any:
		if h, ok := fam["count"].(float64); ok {
			return h // unlabeled histogram
		}
		child, _ := fam[key].(map[string]any)
		v, _ := child["count"].(float64)
		return v
	}
	return 0
}

func (s snapshot) histCountSum(name string) float64 {
	fam, _ := s[name].(map[string]any)
	if c, ok := fam["count"].(float64); ok {
		return c
	}
	var total float64
	for _, v := range fam {
		if child, ok := v.(map[string]any); ok {
			if c, ok := child["count"].(float64); ok {
				total += c
			}
		}
	}
	return total
}

// TestMetricsOnAuthorizeFlow runs the full group → authz → end-server
// flow over real TCP and asserts the counters the ISSUE's acceptance
// criteria name actually move: RPC request counts and latency
// histograms on both sides, envelope opens, per-outcome authorization
// decisions, grant counters, and the cascade-chain-length histogram.
func TestMetricsOnAuthorizeFlow(t *testing.T) {
	d := newDeployment(t)
	fileID := principal.New("file/srv1", realm)
	before := takeSnapshot(t)

	gc := svc.NewGroupClient(d.dial("groups"), d.bob, nil)
	gp, err := gc.Grant(svc.GroupGrantParams{Groups: []string{"staff"}, Lifetime: time.Hour, Delegate: true})
	if err != nil {
		t.Fatal(err)
	}
	ac := svc.NewAuthzClient(d.dial("authz"), d.bob, nil)
	ap, err := ac.Grant(svc.GrantParams{
		EndServer:    fileID,
		Lifetime:     time.Hour,
		Delegate:     true,
		GroupProxies: []*proxy.Presentation{gp.PresentDelegate()},
	})
	if err != nil {
		t.Fatal(err)
	}
	ec := svc.NewEndClient(d.dial("file"), d.bob, nil)
	if _, err := ec.Request(svc.RequestParams{
		Object: "/shared/doc", Op: "read",
		Proxies: []*proxy.Presentation{ap.PresentDelegate()},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ec.Request(svc.RequestParams{
		Object: "/shared/doc", Op: "write",
		Proxies: []*proxy.Presentation{ap.PresentDelegate()},
	}); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("write err = %v", err)
	}

	after := takeSnapshot(t)
	delta := func(get func(snapshot) float64) float64 { return get(after) - get(before) }

	// The flow made at least 4 RPCs (group grant, authz grant, 2
	// requests), seen by both server and client instrumentation.
	if n := delta(func(s snapshot) float64 { return s.labeledSum("proxykit_rpc_requests_total") }); n < 4 {
		t.Errorf("rpc_requests_total delta = %v, want >= 4", n)
	}
	if n := delta(func(s snapshot) float64 { return s.labeledSum("proxykit_rpc_client_requests_total") }); n < 4 {
		t.Errorf("rpc_client_requests_total delta = %v, want >= 4", n)
	}
	if n := delta(func(s snapshot) float64 { return s.histCountSum("proxykit_rpc_latency_seconds") }); n < 4 {
		t.Errorf("rpc_latency_seconds count delta = %v, want >= 4", n)
	}
	if n := delta(func(s snapshot) float64 { return s.labeled("proxykit_rpc_requests_total", "method=end.request") }); n != 2 {
		t.Errorf("rpc_requests_total{method=end.request} delta = %v, want 2", n)
	}

	// Sealed envelopes were opened successfully on every hop.
	if n := delta(func(s snapshot) float64 { return s.labeled("proxykit_envelope_open_total", "outcome=ok") }); n < 4 {
		t.Errorf("envelope_open_total{ok} delta = %v, want >= 4", n)
	}

	// One grant, one deny at the end-server; the granted decision came
	// through a verified proxy chain, so its length was observed.
	if n := delta(func(s snapshot) float64 { return s.labeled("proxykit_authz_decisions_total", "outcome=granted") }); n != 1 {
		t.Errorf("authz_decisions_total{granted} delta = %v, want 1", n)
	}
	if n := delta(func(s snapshot) float64 { return s.labeled("proxykit_authz_decisions_total", "outcome=denied") }); n != 1 {
		t.Errorf("authz_decisions_total{denied} delta = %v, want 1", n)
	}
	if n := delta(func(s snapshot) float64 { return s.histCount("proxykit_authz_chain_length", "") }); n != 1 {
		t.Errorf("authz_chain_length count delta = %v, want 1", n)
	}

	// Group and authorization servers each granted once.
	if n := delta(func(s snapshot) float64 { return s.labeled("proxykit_group_grants_total", "outcome=granted") }); n != 1 {
		t.Errorf("group_grants_total{granted} delta = %v, want 1", n)
	}
	if n := delta(func(s snapshot) float64 { return s.labeled("proxykit_authzsrv_grants_total", "outcome=granted") }); n != 1 {
		t.Errorf("authzsrv_grants_total{granted} delta = %v, want 1", n)
	}

	// Spans were recorded for the calls.
	if obs.Spans.Total() == 0 {
		t.Error("no spans recorded")
	}
}

// TestMetricsOnAccountingFlow asserts the accounting instrumentation:
// balance reads, check writes, deposits (including the accept-once
// duplicate rejection), and the clearing-hop histogram.
func TestMetricsOnAccountingFlow(t *testing.T) {
	d := newDeployment(t)
	before := takeSnapshot(t)

	aliceAcct := svc.NewAcctClient(d.dial("bank"), d.alice, nil)
	bobAcct := svc.NewAcctClient(d.dial("bank"), d.bob, nil)
	if err := aliceAcct.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	if err := bobAcct.CreateAccount("bob"); err != nil {
		t.Fatal(err)
	}
	if err := d.bank.Mint("alice", "dollars", 300); err != nil {
		t.Fatal(err)
	}
	check, err := accounting.WriteCheck(accounting.WriteCheckParams{
		Payor: d.alice, Bank: d.bank.ID, Account: "alice",
		Payee: d.bob.ID, Currency: "dollars", Amount: 120,
		Lifetime: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	endorsed, err := check.Endorse(d.bob, d.bank.ID, d.bank.ID, d.bank.Global("bob"), true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bobAcct.DepositCheck(endorsed, "bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := bobAcct.DepositCheck(endorsed, "bob"); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := bobAcct.Balance("bob", "dollars"); err != nil {
		t.Fatal(err)
	}

	after := takeSnapshot(t)
	delta := func(get func(snapshot) float64) float64 { return get(after) - get(before) }

	if n := delta(func(s snapshot) float64 { return s.counter("proxykit_acct_checks_written_total") }); n != 1 {
		t.Errorf("checks_written delta = %v, want 1", n)
	}
	if n := delta(func(s snapshot) float64 { return s.labeled("proxykit_acct_check_deposits_total", "outcome=ok") }); n != 1 {
		t.Errorf("deposits{ok} delta = %v, want 1", n)
	}
	if n := delta(func(s snapshot) float64 { return s.labeled("proxykit_acct_check_deposits_total", "outcome=duplicate") }); n != 1 {
		t.Errorf("deposits{duplicate} delta = %v, want 1", n)
	}
	if n := delta(func(s snapshot) float64 { return s.counter("proxykit_acct_accept_once_rejections_total") }); n != 1 {
		t.Errorf("accept_once_rejections delta = %v, want 1", n)
	}
	if n := delta(func(s snapshot) float64 { return s.histCount("proxykit_acct_clearing_hops", "") }); n != 1 {
		t.Errorf("clearing_hops count delta = %v, want 1", n)
	}
	if n := delta(func(s snapshot) float64 { return s.counter("proxykit_acct_balance_reads_total") }); n < 1 {
		t.Errorf("balance_reads delta = %v, want >= 1", n)
	}
}

var metricNameRE = regexp.MustCompile(`proxykit_[a-z0-9_]+`)

// TestObservabilityDocCatalogue diffs the registered metric names
// against OBSERVABILITY.md in both directions: every registered metric
// must be documented, and every metric the doc names must exist (series
// suffixes like _bucket/_sum/_count in example output are allowed).
func TestObservabilityDocCatalogue(t *testing.T) {
	raw, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	docNames := make(map[string]bool)
	for _, m := range metricNameRE.FindAllString(string(raw), -1) {
		docNames[m] = true
	}
	registered := make(map[string]bool)
	for _, name := range obs.Default.Names() {
		registered[name] = true
	}
	if len(registered) == 0 {
		t.Fatal("no metrics registered")
	}

	for name := range registered {
		if !docNames[name] {
			t.Errorf("metric %s is registered but missing from OBSERVABILITY.md", name)
		}
	}
	for name := range docNames {
		if registered[name] {
			continue
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suffix)
		}
		if !registered[base] {
			t.Errorf("OBSERVABILITY.md names %s, which is not a registered metric", name)
		}
	}
}

// auditKindRE matches backticked audit kinds like `acct.deposit` in
// the documentation's kinds table.
var auditKindRE = regexp.MustCompile("`((?:end|authz|group|acct|gateway)\\.[a-z-]+)`")

// TestAuditKindDocCatalogue diffs audit.Kinds() against the "Audit
// journal" section of OBSERVABILITY.md in both directions: every kind
// the journal can emit must be documented, and every kind the doc
// names must exist.
func TestAuditKindDocCatalogue(t *testing.T) {
	raw, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	_, section, ok := strings.Cut(string(raw), "## Audit journal")
	if !ok {
		t.Fatal("OBSERVABILITY.md has no \"## Audit journal\" section")
	}
	if i := strings.Index(section, "\n## "); i >= 0 {
		section = section[:i]
	}
	docKinds := make(map[string]bool)
	for _, m := range auditKindRE.FindAllStringSubmatch(section, -1) {
		docKinds[m[1]] = true
	}
	known := make(map[string]bool)
	for _, k := range audit.Kinds() {
		known[k] = true
	}
	if len(known) == 0 {
		t.Fatal("audit.Kinds() is empty")
	}
	for k := range known {
		if !docKinds[k] {
			t.Errorf("audit kind %s is not documented in OBSERVABILITY.md", k)
		}
	}
	for k := range docKinds {
		if !known[k] {
			t.Errorf("OBSERVABILITY.md names audit kind %s, which does not exist", k)
		}
	}
}
