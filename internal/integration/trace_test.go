package integration

import (
	"context"
	"net"
	"testing"
	"time"

	"proxykit/internal/faultpoint"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

// Trace-continuity tests: ISSUE 7 requires one trace tree across the
// three interesting boundaries — gateway HTTP → mux RPC → backend
// daemon, a cascaded multi-link authorize, and a retried call under
// fault injection (attempts as siblings, not new traces). They assert
// against the process-global span ring the way `proxyctl trace show`
// reads it: obs.Spans.Page filtered by trace ID.

// spansFor pages every retained span of one trace out of the global
// ring.
func spansFor(traceID string) []obs.Span {
	spans, _, _, _ := obs.Spans.Page(0, 0, traceID)
	return spans
}

// ancestorOf walks s's parent links through byID and reports whether it
// reaches root.
func ancestorOf(byID map[string]obs.Span, s obs.Span, root string) bool {
	for hops := 0; hops < 32; hops++ {
		if s.Parent == "" {
			return s.SpanID == root
		}
		if s.Parent == root {
			return true
		}
		next, ok := byID[s.Parent]
		if !ok {
			return false
		}
		s = next
	}
	return false
}

// TestTraceTreeGatewayToBackend crosses the HTTP boundary: one
// /v1/authorize call must yield a single trace whose root is the
// gateway's HTTP server span and whose descendants include the
// end-server's end.request server span, connected by parent links —
// the tree `proxyctl trace show` renders.
func TestTraceTreeGatewayToBackend(t *testing.T) {
	d := newGatewayDeployment(t)
	code, doc, traceID := d.call("POST", "/v1/authorize", ciToken, "",
		map[string]any{"object": "/shared/doc", "op": "read"})
	if code != 200 {
		t.Fatalf("authorize = %d: %v", code, doc)
	}
	if traceID == "" {
		t.Fatal("no X-Trace-Id header")
	}

	spans := spansFor(traceID)
	if len(spans) < 3 {
		t.Fatalf("trace %s has %d spans, want at least HTTP root + client + server", traceID, len(spans))
	}
	byID := make(map[string]obs.Span, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = s
	}

	var root obs.Span
	for _, s := range spans {
		if s.Kind == "server" && s.Method == "POST /v1/authorize" {
			root = s
		}
	}
	if root.SpanID == "" {
		t.Fatalf("trace %s has no gateway HTTP server span: %+v", traceID, spans)
	}
	if root.Parent != "" {
		t.Errorf("gateway HTTP span has parent %q, want a root span", root.Parent)
	}

	// The end-server's server-side span must hang off the gateway root
	// through its client span — one connected tree, no orphans.
	var endSpan obs.Span
	for _, s := range spans {
		if s.Kind == "server" && s.Method == "end.request" {
			endSpan = s
		}
	}
	if endSpan.SpanID == "" {
		t.Fatalf("trace %s has no end.request server span: %+v", traceID, spans)
	}
	if !ancestorOf(byID, endSpan, root.SpanID) {
		t.Errorf("end.request span does not chain to the HTTP root: %+v", spans)
	}

	// Every span of the trace chains to the one root: durations beyond
	// that are per-hop and positive.
	for _, s := range spans {
		if s.SpanID == root.SpanID {
			continue
		}
		if !ancestorOf(byID, s, root.SpanID) {
			t.Errorf("span %s %s/%s is disconnected from the root", s.SpanID, s.Kind, s.Method)
		}
		if s.Duration <= 0 {
			t.Errorf("span %s %s/%s has non-positive duration %v", s.SpanID, s.Kind, s.Method, s.Duration)
		}
	}
}

// TestTraceCascadedAuthorize binds one root trace across the full
// multi-link cascade — group proxy, then an authorization proxy
// presenting it, then the end-server request presenting that — issued
// over three different daemons' connections. All three RPCs must join
// the same trace as children of the bound root.
func TestTraceCascadedAuthorize(t *testing.T) {
	d := newDeployment(t)
	fileID := principal.New("file/srv1", realm)
	root := obs.NewTrace()

	gc := svc.NewGroupClient(transport.WithTrace(d.dial("groups"), root), d.bob, nil)
	gp, err := gc.Grant(svc.GroupGrantParams{Groups: []string{"staff"}, Lifetime: time.Hour, Delegate: true})
	if err != nil {
		t.Fatal(err)
	}
	ac := svc.NewAuthzClient(transport.WithTrace(d.dial("authz"), root), d.bob, nil)
	ap, err := ac.Grant(svc.GrantParams{
		EndServer: fileID, Lifetime: time.Hour, Delegate: true,
		GroupProxies: []*proxy.Presentation{gp.PresentDelegate()},
	})
	if err != nil {
		t.Fatal(err)
	}
	ec := svc.NewEndClient(transport.WithTrace(d.dial("file"), root), d.bob, nil)
	if _, err := ec.Request(svc.RequestParams{
		Object: "/shared/doc", Op: "read",
		Proxies: []*proxy.Presentation{ap.PresentDelegate()},
	}); err != nil {
		t.Fatal(err)
	}

	spans := spansFor(root.TraceID)
	byID := make(map[string]obs.Span, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	serverSeen := map[string]bool{}
	for _, s := range spans {
		if s.Kind == "server" {
			serverSeen[s.Method] = true
		}
		// Client spans issued through the bound root are its direct
		// children; server spans chain through them.
		if !ancestorOf(byID, s, root.SpanID) {
			t.Errorf("span %s %s/%s escaped the bound trace", s.SpanID, s.Kind, s.Method)
		}
	}
	for _, method := range []string{"group.grant", "authz.grant", "end.request"} {
		if !serverSeen[method] {
			t.Errorf("cascade link %s has no server span under trace %s (have %v)", method, root.TraceID, serverSeen)
		}
	}
}

// TestTraceRetrySiblings crosses the retry boundary under fault
// injection: a call whose first attempt is injected away must record
// its attempts as sibling spans under one logical "call" parent, in a
// single trace — not as a fresh root trace per attempt.
func TestTraceRetrySiblings(t *testing.T) {
	mux := transport.NewMux()
	mux.Handle("echo", func(_ context.Context, body []byte) ([]byte, error) { return body, nil })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewTCPServer(l, mux)
	t.Cleanup(func() { _ = srv.Close() })
	c, err := transport.DialTCP(srv.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	// Partition the client for exactly the first attempt: the retry
	// policy's Sleep hook heals it before attempt two, so the schedule
	// is fully deterministic.
	inj := faultpoint.New(1, faultpoint.Rule{Method: "echo", Partition: true})
	c.SetInjector(inj)
	rc := transport.NewRetryClient(c, transport.RetryPolicy{
		MaxAttempts: 3,
		Sleep:       func(time.Duration) { inj.SetEnabled(false) },
	})

	before := obs.Spans.Total()
	resp, err := rc.Call("echo", []byte("hi"))
	if err != nil || string(resp) != "hi" {
		t.Fatalf("retried call = %q, %v", resp, err)
	}

	// Find the logical root: the kind "call" span covering the retried
	// operation.
	newSpans, _, _, _ := obs.Spans.Page(before, 0, "")
	var call obs.Span
	for _, s := range newSpans {
		if s.Kind == "call" && s.Method == "echo" {
			call = s
		}
	}
	if call.SpanID == "" {
		t.Fatalf("no call-kind span recorded: %+v", newSpans)
	}
	if call.Err != "" {
		t.Errorf("call span carries error %q though the operation succeeded", call.Err)
	}

	var attempts []obs.Span
	traces := map[string]bool{}
	for _, s := range newSpans {
		if s.Method != "echo" {
			continue
		}
		traces[s.TraceID] = true
		if s.Kind == "client" {
			attempts = append(attempts, s)
		}
	}
	// The whole retried operation — failed attempt, successful attempt,
	// server span, and the call root — lives in ONE trace.
	if len(traces) != 1 || !traces[call.TraceID] {
		t.Fatalf("retried call spread across traces %v, want only %s", traces, call.TraceID)
	}
	if len(attempts) != 2 {
		t.Fatalf("recorded %d attempt spans, want 2: %+v", len(attempts), attempts)
	}
	for i, a := range attempts {
		if a.Parent != call.SpanID {
			t.Errorf("attempt %d has parent %q, want the call span %q (siblings under one parent)", i, a.Parent, call.SpanID)
		}
	}
	if attempts[0].Err == "" {
		t.Errorf("first attempt span records no error: %+v", attempts[0])
	}
	if attempts[1].Err != "" {
		t.Errorf("second attempt span records error %q, want success", attempts[1].Err)
	}
}
