package integration

// End-to-end replication failover over real TCP: the same wiring the
// daemons' -standby/-replicate-from flags and `proxyctl promote`
// produce — a primary accounting server shipping its WAL to a hot
// standby that serves reads, then a fenced promotion after the primary
// goes down.

import (
	"errors"
	"net"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/ledger"
	"proxykit/internal/principal"
	"proxykit/internal/repl"
	"proxykit/internal/statefile"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

func TestReplFailoverOverTCP(t *testing.T) {
	state := t.TempDir()
	carol, err := statefile.CreateIdentity(state, principal.New("carol", realm))
	if err != nil {
		t.Fatal(err)
	}
	bankIdent, err := statefile.CreateIdentity(state, principal.New("bank", realm))
	if err != nil {
		t.Fatal(err)
	}
	dir, err := statefile.LoadDirectory(state)
	if err != nil {
		t.Fatal(err)
	}
	resolve := dir.Resolver()

	serveTCP := func(mux *transport.Mux) (*transport.TCPServer, string) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := transport.NewTCPServer(l, mux)
		t.Cleanup(func() { _ = srv.Close() })
		return srv, srv.Addr().String()
	}

	// The primary: provisioned before its repl node exists, as acctd
	// provisions before any standby attaches.
	primary := accounting.NewServer(bankIdent, resolve, nil)
	primDir := t.TempDir()
	if _, err := primary.OpenLedger(ledger.Options{Dir: primDir, Fsync: ledger.FsyncOff}); err != nil {
		t.Fatal(err)
	}
	defer primary.CloseLedger()
	if err := primary.CreateAccount("carol", carol.ID); err != nil {
		t.Fatal(err)
	}
	if err := primary.Mint("carol", "dollars", 1000); err != nil {
		t.Fatal(err)
	}
	pmux := svc.NewAcctService(primary, resolve, nil).Mux()
	pnode, err := repl.NewNode(repl.Config{SM: primary, Dir: primDir, SyncTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer pnode.Close()
	pnode.Mount(pmux)
	psrv, paddr := serveTCP(pmux)

	// The standby: an empty replica of the same bank identity, tailing
	// the primary over TCP and serving reads on its own listener.
	standby := accounting.NewServer(bankIdent, resolve, nil)
	standbyDir := t.TempDir()
	if _, err := standby.OpenLedger(ledger.Options{Dir: standbyDir, Fsync: ledger.FsyncOff}); err != nil {
		t.Fatal(err)
	}
	defer standby.CloseLedger()
	src, err := transport.DialTCP(paddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	smux := svc.NewAcctService(standby, resolve, nil).Mux()
	snode, err := repl.NewNode(repl.Config{
		SM: standby, Dir: standbyDir, Standby: true, Source: src,
		PullWait: 50 * time.Millisecond, RetryWait: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer snode.Close()
	snode.Mount(smux)
	_, saddr := serveTCP(smux)

	// A semi-sync commit on the primary is on the standby by the time it
	// returns; an RPC read from the standby sees it.
	if err := primary.Mint("carol", "dollars", 500); err != nil {
		t.Fatal(err)
	}
	conn, err := transport.DialTCP(saddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := svc.NewAcctClient(conn, carol, nil).Balance("carol", "dollars")
	if err != nil {
		t.Fatal(err)
	}
	if bal != 1500 {
		t.Fatalf("standby read balance %d, want 1500", bal)
	}

	// The standby's commit gate refuses local writes.
	if err := standby.Mint("carol", "dollars", 1); !errors.Is(err, repl.ErrNotPrimary) {
		t.Fatalf("standby admitted a local mutation: err=%v", err)
	}

	// The primary dies; the operator promotes the standby over RPC —
	// exactly what `proxyctl promote -addr` does.
	_ = psrv.Close()
	opConn, err := transport.DialTCP(saddr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	newTerm, err := repl.NewClient(opConn).Promote()
	if err != nil {
		t.Fatal(err)
	}
	if newTerm < 2 {
		t.Fatalf("promotion term %d, want >= 2", newTerm)
	}

	// The deposed primary is fenced: its commit gate refuses every
	// mutation from the moment it learns the new term.
	if _, err := pnode.Fence(newTerm); err != nil {
		t.Fatal(err)
	}
	if err := primary.Mint("carol", "dollars", 1); !repl.IsFenced(err) {
		t.Fatalf("fenced primary admitted a mutation: err=%v", err)
	}

	// The promoted standby is the writable primary now, and its reads
	// reflect the new writes.
	if err := standby.Mint("carol", "dollars", 250); err != nil {
		t.Fatalf("promoted standby refused a write: %v", err)
	}
	bal, err = svc.NewAcctClient(conn, carol, nil).Balance("carol", "dollars")
	if err != nil {
		t.Fatal(err)
	}
	if bal != 1750 {
		t.Fatalf("promoted standby balance %d, want 1750", bal)
	}
}
