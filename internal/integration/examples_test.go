package integration

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end and checks
// for its signature output line, so the examples in the README cannot
// rot silently.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	root := repoRoot(t)
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "read /etc/motd: GRANTED"},
		{"cascaded-printing", "audit trail through: [spooler@PRINT.EXAMPLE.ORG]"},
		{"electronic-checks", "second deposit of the same check: REJECTED"},
		{"group-authz", "GRANTED via authz@CAMPUS.ORG"},
		{"kerberos-login", "read paper.tex: GRANTED"},
		{"cross-realm", "bob requests 2 gpu-hours: DENIED as expected"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}
