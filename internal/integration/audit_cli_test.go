package integration

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"proxykit/internal/audit"
	"proxykit/internal/principal"
)

// TestAuditVerifyCLI round-trips a journal through the real proxyctl
// binary: a clean chain verifies with exit 0, and a single flipped
// byte makes `proxyctl audit verify` exit non-zero naming the break.
func TestAuditVerifyCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns processes")
	}
	bin := t.TempDir()
	proxyctl := filepath.Join(bin, "proxyctl")
	build := exec.Command("go", "build", "-o", proxyctl, "./cmd/proxyctl")
	build.Dir = repoRoot(t)
	if b, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build proxyctl: %v\n%s", err, b)
	}

	work := t.TempDir()
	path := filepath.Join(work, "journal.jsonl")
	j, err := audit.New(audit.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	server := principal.New("filesrv", "EXAMPLE.ORG")
	for _, object := range []string{"/a", "/b", "/c"} {
		j.Append(audit.Record{
			Kind:    audit.KindAuthorize,
			Server:  server,
			Object:  object,
			Op:      "read",
			Outcome: audit.OutcomeGranted,
		})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean journal: exit 0, reports the record count.
	cmd := exec.Command(proxyctl, "audit", "verify", "-file", path)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("verify clean journal: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "chain intact, 3 records") {
		t.Fatalf("verify output: %s", out)
	}

	// Flip a single byte inside the second record's object field.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(raw, []byte("/b"))
	if i < 0 {
		t.Fatalf("no /b in journal:\n%s", raw)
	}
	raw[i+1] = 'x'
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	cmd = exec.Command(proxyctl, "audit", "verify", "-file", path)
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("tampered journal verified clean:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
		t.Fatalf("expected non-zero exit, got %v", err)
	}
	if !strings.Contains(string(out), "tampered") {
		t.Fatalf("tamper output should name the break:\n%s", out)
	}
}
