package integration

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/acl"
	"proxykit/internal/audit"
	"proxykit/internal/authz"
	"proxykit/internal/endserver"
	"proxykit/internal/gateway"
	"proxykit/internal/group"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/statefile"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

// Bearer tokens the gateway deployment recognizes.
const (
	ciToken    = "test-ci-token-8d1c"    // maps straight to ci@realm, staff, admin
	frontToken = "test-front-token-4a77" // impersonation-only front-end token
	plainToken = "test-plain-token-90ef" // maps to plain@realm: no groups, no admin
)

// gatewayDeployment is the backend TCP deployment plus a gatewayd core
// serving its HTTP API from an httptest server — the full edge path:
// HTTP client → gateway → group/authz/end/bank daemons.
type gatewayDeployment struct {
	t     *testing.T
	state string

	bank *accounting.Server

	fileJournal *audit.Journal
	bankJournal *audit.Journal
	gwJournal   *audit.Journal

	gw  *gateway.Gateway
	web *httptest.Server
}

// newGatewayDeployment wires the services the way the cmd/ daemons do,
// but resolves identities with statefile.DynamicResolver: the gateway
// materializes principals lazily (first request of a session), so the
// daemons must re-read the shared directory to verify their envelopes.
func newGatewayDeployment(t *testing.T) *gatewayDeployment {
	t.Helper()
	d := &gatewayDeployment{t: t, state: t.TempDir()}

	ids := make(map[string]*pubkey.Identity)
	for _, name := range []string{"groups", "authz", "file/srv1", "bank"} {
		ident, err := statefile.CreateIdentity(d.state, principal.New(name, realm))
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = ident
	}
	resolve := statefile.DynamicResolver(d.state)

	addrs := map[string]string{}
	serve := func(name string, mux *transport.Mux) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := transport.NewTCPServer(l, mux)
		t.Cleanup(func() { _ = srv.Close() })
		addrs[name] = srv.Addr().String()
	}
	dial := func(name string) *transport.TCPClient {
		c, err := transport.DialTCP(addrs[name], 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c
	}

	groupSrv := group.New(ids["groups"], nil)
	groupSrv.AddMember("staff", principal.New("ci", realm))
	groupSrv.AddMember("staff", principal.New("alice", realm))
	serve("groups", svc.NewGroupService(groupSrv, resolve, nil).Mux())

	authzSrv := authz.New(ids["authz"], nil)
	authzSrv.AddRule(authz.Rule{
		EndServer: ids["file/srv1"].ID,
		Object:    "/shared/doc",
		Subject:   acl.Subject{Groups: []principal.Global{groupSrv.Global("staff")}},
		Ops:       []string{"read"},
	})
	serve("authz", svc.NewAuthzService(authzSrv, resolve, nil).Mux())

	d.fileJournal = mustJournal(t)
	fileSrv := endserver.New(ids["file/srv1"].ID, &proxy.VerifyEnv{ResolveIdentity: resolve}, nil)
	fileSrv.SetJournal(d.fileJournal)
	fileSrv.SetACL("/shared/doc", acl.New(acl.PrincipalEntry(ids["authz"].ID, "read")))
	serve("file", svc.NewEndService(fileSrv, resolve, nil).Mux())

	d.bankJournal = mustJournal(t)
	d.bank = accounting.NewServer(ids["bank"], resolve, nil)
	d.bank.SetJournal(d.bankJournal)
	serve("bank", svc.NewAcctService(d.bank, resolve, nil).Mux())

	for acct, owner := range map[string]string{"ci": "ci", "ops": "ops", "alice": "alice"} {
		if err := d.bank.CreateAccount(acct, principal.New(owner, realm)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.bank.Mint("ci", "dollars", 500); err != nil {
		t.Fatal(err)
	}

	mapping := &gateway.MappingConfig{
		Tokens: []gateway.TokenEntry{
			{Token: ciToken, Subject: "ci", Principal: "ci@" + realm, Groups: []string{"staff"}, Admin: true},
			{Token: frontToken, Subject: "frontend", Impersonate: true},
			{Token: plainToken, Subject: "plain", Principal: "plain@" + realm},
		},
		Impersonation: []gateway.ImpersonationRule{
			{SubjectSuffix: "@corp.example.com", Realm: realm, Groups: []string{"staff"}},
		},
	}
	d.gwJournal = mustJournal(t)
	gw, err := gateway.New(gateway.Options{
		StateDir:    d.state,
		ID:          principal.New("gateway", realm),
		Mapping:     mapping,
		AuthzClient: dial("authz"),
		GroupClient: dial("groups"),
		AcctClient:  dial("bank"),
		EndClient:   dial("file"),
		EndServerID: ids["file/srv1"].ID,
		BankID:      ids["bank"].ID,
		Journal:     d.gwJournal,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.gw = gw
	d.web = httptest.NewServer(gw.Handler())
	t.Cleanup(d.web.Close)
	return d
}

// call drives one HTTP API request and returns the status, the decoded
// body, and the X-Trace-Id response header.
func (d *gatewayDeployment) call(method, path, token, impersonate string, reqBody any) (int, map[string]any, string) {
	d.t.Helper()
	var body io.Reader
	if reqBody != nil {
		raw, err := json.Marshal(reqBody)
		if err != nil {
			d.t.Fatal(err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, d.web.URL+path, body)
	if err != nil {
		d.t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if impersonate != "" {
		req.Header.Set("X-Impersonate-Subject", impersonate)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		d.t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		d.t.Fatalf("%s %s: decode body: %v", method, path, err)
	}
	return resp.StatusCode, doc, resp.Header.Get("X-Trace-Id")
}

func mustJournal(t *testing.T) *audit.Journal {
	t.Helper()
	j, err := audit.New(audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// journalHasTrace reports whether any record in j carries traceID,
// optionally restricted to one kind.
func journalHasTrace(j *audit.Journal, kind, traceID string) bool {
	for _, r := range j.Tail(0) {
		if r.TraceID == traceID && (kind == "" || r.Kind == kind) {
			return true
		}
	}
	return false
}

// TestGatewayEndToEnd is the edge-path integration test: an HTTP client
// authorizes against the end-server and transfers funds at the bank
// through the gateway, and one trace ID joins the HTTP request to the
// downstream RPC spans and to the audit journals of the gateway AND the
// daemon that served the operation.
func TestGatewayEndToEnd(t *testing.T) {
	d := newGatewayDeployment(t)
	before := takeSnapshot(t)

	// Authorize: ci's staff membership flows token → group proxy →
	// cascaded authz proxy → end-server decision.
	code, doc, traceID := d.call("POST", "/v1/authorize", ciToken, "",
		map[string]any{"object": "/shared/doc", "op": "read"})
	if code != http.StatusOK {
		t.Fatalf("authorize = %d: %v", code, doc)
	}
	if doc["allowed"] != true || doc["via"] != "authz@"+realm || doc["viaProxy"] != true {
		t.Fatalf("authorize decision = %v", doc)
	}
	if traceID == "" || doc["traceId"] != traceID {
		t.Fatalf("trace ID mismatch: header %q body %v", traceID, doc["traceId"])
	}

	// The same trace ID must appear in the gateway's own journal and in
	// the end-server's journal — the §5 accountability trail crosses the
	// HTTP boundary intact.
	if !journalHasTrace(d.gwJournal, "gateway.request", traceID) {
		t.Errorf("gateway journal has no gateway.request record for trace %s", traceID)
	}
	if !journalHasTrace(d.fileJournal, "end.authorize", traceID) {
		t.Errorf("end-server journal has no end.authorize record for trace %s", traceID)
	}

	// And the span log holds both sides: the gateway's HTTP server span
	// and downstream RPC spans under the same trace.
	var httpSpan, rpcSpan bool
	for _, s := range obs.Spans.Recent() {
		if s.TraceID != traceID {
			continue
		}
		if s.Kind == "server" && s.Method == "POST /v1/authorize" {
			httpSpan = true
		}
		if strings.Contains(s.Method, ".") { // an RPC method like end.request
			rpcSpan = true
		}
	}
	if !httpSpan || !rpcSpan {
		t.Errorf("trace %s: httpSpan=%v rpcSpan=%v; want both", traceID, httpSpan, rpcSpan)
	}

	// A second identical call is served from the proxy cache.
	if code, doc, _ := d.call("POST", "/v1/authorize", ciToken, "",
		map[string]any{"object": "/shared/doc", "op": "read"}); code != http.StatusOK {
		t.Fatalf("second authorize = %d: %v", code, doc)
	}
	after := takeSnapshot(t)
	if n := after.counter("proxykit_gateway_proxy_cache_hits_total") - before.counter("proxykit_gateway_proxy_cache_hits_total"); n < 1 {
		t.Errorf("proxy cache hits delta = %v, want >= 1", n)
	}
	if n := after.counter("proxykit_gateway_proxy_cache_misses_total") - before.counter("proxykit_gateway_proxy_cache_misses_total"); n < 1 {
		t.Errorf("proxy cache misses delta = %v, want >= 1", n)
	}

	// An unauthorized op comes back as a clean 403, audited as denied.
	code, doc, denyTrace := d.call("POST", "/v1/authorize", ciToken, "",
		map[string]any{"object": "/shared/doc", "op": "write"})
	if code != http.StatusForbidden {
		t.Fatalf("write authorize = %d: %v", code, doc)
	}
	if !journalHasTrace(d.gwJournal, "gateway.request", denyTrace) {
		t.Errorf("denied request not audited under trace %s", denyTrace)
	}

	// Transfer: the same edge path into the bank.
	code, doc, xferTrace := d.call("POST", "/v1/transfer", ciToken, "",
		map[string]any{"from": "ci", "to": "ops", "currency": "dollars", "amount": 120})
	if code != http.StatusOK {
		t.Fatalf("transfer = %d: %v", code, doc)
	}
	if !journalHasTrace(d.bankJournal, "acct.transfer", xferTrace) {
		t.Errorf("bank journal has no acct.transfer record for trace %s", xferTrace)
	}
	if !journalHasTrace(d.gwJournal, "gateway.request", xferTrace) {
		t.Errorf("gateway journal has no gateway.request record for trace %s", xferTrace)
	}
	code, doc, _ = d.call("GET", "/v1/balance?account=ci&currency=dollars", ciToken, "", nil)
	if code != http.StatusOK || doc["balance"] != float64(380) {
		t.Fatalf("balance = %d %v, want 380", code, doc)
	}
}

// TestGatewayImpersonation maps an external identity through the
// front-end token: the declarative rule turns alice@corp.example.com
// into alice@<realm> with the staff group, the mapping decision is
// audited, and the cascaded authorize works under her principal.
func TestGatewayImpersonation(t *testing.T) {
	d := newGatewayDeployment(t)

	// Session introspection shows the mapped identity.
	code, doc, _ := d.call("GET", "/v1/session", frontToken, "alice@corp.example.com", nil)
	if code != http.StatusOK {
		t.Fatalf("session = %d: %v", code, doc)
	}
	if doc["principal"] != "alice@"+realm || doc["impersonated"] != true {
		t.Fatalf("session = %v", doc)
	}

	// The full authorize path as the impersonated principal.
	code, doc, traceID := d.call("POST", "/v1/authorize", frontToken, "alice@corp.example.com",
		map[string]any{"object": "/shared/doc", "op": "read"})
	if code != http.StatusOK || doc["allowed"] != true {
		t.Fatalf("impersonated authorize = %d: %v", code, doc)
	}
	if !journalHasTrace(d.fileJournal, "end.authorize", traceID) {
		t.Errorf("end-server journal missing trace %s for impersonated request", traceID)
	}

	// The mapping decision itself is on the gateway's journal.
	var mapped bool
	for _, r := range d.gwJournal.Tail(0) {
		if r.Kind == "gateway.map" && r.Object == "alice@corp.example.com" &&
			r.Outcome == audit.OutcomeGranted &&
			r.Detail["tokenSubject"] == "frontend" {
			mapped = true
		}
	}
	if !mapped {
		t.Error("no granted gateway.map record for alice@corp.example.com")
	}

	// A subject no rule covers is refused and audited as denied.
	code, doc, _ = d.call("GET", "/v1/session", frontToken, "eve@elsewhere.example.net", nil)
	if code != http.StatusForbidden {
		t.Fatalf("unmapped subject = %d: %v", code, doc)
	}
	var denied bool
	for _, r := range d.gwJournal.Tail(0) {
		if r.Kind == "gateway.map" && r.Outcome == audit.OutcomeDenied {
			denied = true
		}
	}
	if !denied {
		t.Error("refused mapping left no denied gateway.map record")
	}

	// A token without the impersonate bit cannot use the header.
	if code, _, _ := d.call("GET", "/v1/session", plainToken, "alice@corp.example.com", nil); code != http.StatusForbidden {
		t.Fatalf("non-impersonation token with header = %d, want 403", code)
	}
	// And an impersonation-only token needs the header.
	if code, _, _ := d.call("GET", "/v1/session", frontToken, "", nil); code != http.StatusForbidden {
		t.Fatalf("impersonation token without header = %d, want 403", code)
	}
}

// TestGatewayErrorMapping pins the HTTP status the gateway reports for
// the interesting downstream refusals: policy (403), missing accounts
// (404), exhausted funds (402), and bad credentials (401).
func TestGatewayErrorMapping(t *testing.T) {
	d := newGatewayDeployment(t)

	if code, _, _ := d.call("GET", "/v1/session", "no-such-token", "", nil); code != http.StatusUnauthorized {
		t.Errorf("unknown token = %d, want 401", code)
	}
	// plain@realm is not staff: the group server refuses the cascade.
	if code, doc, _ := d.call("POST", "/v1/authorize", plainToken, "",
		map[string]any{"object": "/shared/doc", "op": "read"}); code != http.StatusForbidden {
		t.Errorf("non-member authorize = %d: %v, want 403", code, doc)
	}
	if code, doc, _ := d.call("GET", "/v1/balance?account=nope&currency=dollars", ciToken, "", nil); code != http.StatusNotFound {
		t.Errorf("unknown account = %d: %v, want 404", code, doc)
	}
	if code, doc, _ := d.call("POST", "/v1/transfer", ciToken, "",
		map[string]any{"from": "ci", "to": "ops", "currency": "dollars", "amount": 9999}); code != http.StatusPaymentRequired {
		t.Errorf("overdraft = %d: %v, want 402", code, doc)
	}
	// Reading an account the principal has no rights on is a denial.
	if code, doc, _ := d.call("GET", "/v1/balance?account=ops&currency=dollars", plainToken, "", nil); code != http.StatusForbidden {
		t.Errorf("foreign balance read = %d: %v, want 403", code, doc)
	}
	// Admin introspection is refused to non-admin tokens.
	if code, _, _ := d.call("GET", "/v1/sessions", plainToken, "", nil); code != http.StatusForbidden {
		t.Errorf("non-admin /v1/sessions, want 403")
	}
}

// TestGatewaySmoke is the `make gateway-smoke` entry point: it drives
// every route of the HTTP API against a live deployment — including the
// check write/deposit round trip between two sessions — then verifies
// the hash chains of all three audit journals.
func TestGatewaySmoke(t *testing.T) {
	d := newGatewayDeployment(t)

	// ci writes a check payable to alice.
	code, doc, _ := d.call("POST", "/v1/check/write", ciToken, "",
		map[string]any{"account": "ci", "payee": "alice@" + realm, "currency": "dollars", "amount": 75})
	if code != http.StatusOK {
		t.Fatalf("check/write = %d: %v", code, doc)
	}
	checkB64, _ := doc["check"].(string)
	if checkB64 == "" {
		t.Fatalf("check/write returned no check: %v", doc)
	}

	// Bearer checks must be refused outright.
	if code, doc, _ := d.call("POST", "/v1/check/write", ciToken, "",
		map[string]any{"account": "ci", "currency": "dollars", "amount": 10}); code != http.StatusBadRequest {
		t.Fatalf("bearer check/write = %d: %v, want 400", code, doc)
	}

	// alice — an impersonated session — endorses and deposits it.
	code, doc, _ = d.call("POST", "/v1/check/deposit", frontToken, "alice@corp.example.com",
		map[string]any{"check": checkB64, "account": "alice"})
	if code != http.StatusOK {
		t.Fatalf("check/deposit = %d: %v", code, doc)
	}
	if doc["amount"] != float64(75) || doc["collected"] != true {
		t.Fatalf("deposit receipt = %v", doc)
	}
	// Depositing the same check twice trips accept-once.
	if code, doc, _ := d.call("POST", "/v1/check/deposit", frontToken, "alice@corp.example.com",
		map[string]any{"check": checkB64, "account": "alice"}); code != http.StatusConflict {
		t.Fatalf("duplicate deposit = %d: %v, want 409", code, doc)
	}

	// Remaining read routes.
	if code, _, _ := d.call("POST", "/v1/authorize", ciToken, "",
		map[string]any{"object": "/shared/doc", "op": "read"}); code != http.StatusOK {
		t.Fatal("authorize failed")
	}
	if code, doc, _ := d.call("GET", "/v1/balance?account=alice&currency=dollars", frontToken, "alice@corp.example.com", nil); code != http.StatusOK || doc["balance"] != float64(75) {
		t.Fatalf("alice balance = %d %v", code, doc)
	}
	if code, _, _ := d.call("GET", "/v1/session", ciToken, "", nil); code != http.StatusOK {
		t.Fatal("session failed")
	}
	code, doc, _ = d.call("GET", "/v1/sessions", ciToken, "", nil)
	if code != http.StatusOK {
		t.Fatalf("sessions = %d: %v", code, doc)
	}
	if sess, _ := doc["sessions"].([]any); len(sess) < 2 {
		t.Fatalf("sessions = %v, want ci and alice", doc)
	}
	code, doc, _ = d.call("GET", "/v1/proxies", ciToken, "", nil)
	if code != http.StatusOK {
		t.Fatalf("proxies = %d: %v", code, doc)
	}
	if proxies, _ := doc["proxies"].([]any); len(proxies) == 0 {
		t.Fatal("proxy cache empty after authorize calls")
	}

	// Every journal the flow touched must verify end to end.
	for name, j := range map[string]*audit.Journal{
		"gateway": d.gwJournal, "end-server": d.fileJournal, "bank": d.bankJournal,
	} {
		recs := j.Tail(0)
		if len(recs) == 0 {
			t.Errorf("%s journal is empty", name)
			continue
		}
		if err := audit.VerifyChain(recs); err != nil {
			t.Errorf("%s journal chain broken: %v", name, err)
		}
	}
}

// gatewayRouteRE matches backticked routes like `POST /v1/authorize`.
var gatewayRouteRE = regexp.MustCompile("`(GET|POST) (/v1/[a-z/]+)`")

// gatewayFlagRE matches backticked flags like `-metrics-addr` in the
// Flags section's table.
var gatewayFlagRE = regexp.MustCompile("`-([a-z][a-z0-9-]*)`")

// TestGatewayDocCatalogue holds GATEWAY.md to the code in both
// directions, the way TestObservabilityDocCatalogue does for
// OBSERVABILITY.md: every route, daemon flag, gateway metric, and
// gateway audit kind must be documented, and everything the document
// names must exist.
func TestGatewayDocCatalogue(t *testing.T) {
	raw, err := os.ReadFile("../../GATEWAY.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	// Routes ↔ the HTTP API reference.
	docRoutes := make(map[string]bool)
	for _, m := range gatewayRouteRE.FindAllStringSubmatch(doc, -1) {
		docRoutes[m[1]+" "+m[2]] = true
	}
	realRoutes := make(map[string]bool)
	for _, r := range gateway.Routes() {
		key := r.Method + " " + r.Path
		realRoutes[key] = true
		if !docRoutes[key] {
			t.Errorf("route %s is served but not documented in GATEWAY.md", key)
		}
	}
	for key := range docRoutes {
		if !realRoutes[key] {
			t.Errorf("GATEWAY.md documents %s, which is not a served route", key)
		}
	}

	// Flags ↔ the Flags section.
	_, flagSection, ok := strings.Cut(doc, "## Flags")
	if !ok {
		t.Fatal("GATEWAY.md has no \"## Flags\" section")
	}
	if i := strings.Index(flagSection, "\n## "); i >= 0 {
		flagSection = flagSection[:i]
	}
	docFlags := make(map[string]bool)
	for _, m := range gatewayFlagRE.FindAllStringSubmatch(flagSection, -1) {
		docFlags[m[1]] = true
	}
	var opts gateway.DaemonOptions
	fs := flag.NewFlagSet("gatewayd", flag.ContinueOnError)
	opts.RegisterFlags(fs)
	realFlags := make(map[string]bool)
	fs.VisitAll(func(f *flag.Flag) {
		realFlags[f.Name] = true
		if !docFlags[f.Name] {
			t.Errorf("flag -%s is registered but not documented in GATEWAY.md", f.Name)
		}
	})
	for name := range docFlags {
		if !realFlags[name] {
			t.Errorf("GATEWAY.md documents -%s, which gatewayd does not register", name)
		}
	}

	// Gateway metrics ↔ the Metrics section.
	docMetrics := make(map[string]bool)
	for _, m := range metricNameRE.FindAllString(doc, -1) {
		docMetrics[m] = true
	}
	registered := make(map[string]bool)
	for _, name := range obs.Default.Names() {
		if strings.HasPrefix(name, "proxykit_gateway_") {
			registered[name] = true
			if !docMetrics[name] {
				t.Errorf("metric %s is registered but not documented in GATEWAY.md", name)
			}
		}
	}
	if len(registered) == 0 {
		t.Fatal("no gateway metrics registered")
	}
	for name := range docMetrics {
		if !strings.HasPrefix(name, "proxykit_gateway_") {
			continue
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suffix)
		}
		if !registered[base] {
			t.Errorf("GATEWAY.md names %s, which is not a registered metric", name)
		}
	}

	// Gateway audit kinds ↔ the audit section.
	docKinds := make(map[string]bool)
	for _, m := range auditKindRE.FindAllStringSubmatch(doc, -1) {
		if strings.HasPrefix(m[1], "gateway.") {
			docKinds[m[1]] = true
		}
	}
	for _, k := range audit.Kinds() {
		if !strings.HasPrefix(k, "gateway.") {
			continue
		}
		if !docKinds[k] {
			t.Errorf("audit kind %s is not documented in GATEWAY.md", k)
		}
		delete(docKinds, k)
	}
	for k := range docKinds {
		t.Errorf("GATEWAY.md names audit kind %s, which does not exist", k)
	}
}
