package integration

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandLineDeployment builds the real cmd/ binaries and drives
// the README deployment: proxyctl keygen, three daemons with JSON
// config files, then the group-proxy → authorization-proxy → request
// flow through proxyctl.
func TestCommandLineDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns processes")
	}
	bin := t.TempDir()
	build := func(name string) string {
		t.Helper()
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = repoRoot(t)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	proxyctl := build("proxyctl")
	groupd := build("groupd")
	authzd := build("authzd")
	filed := build("filed")

	work := t.TempDir()
	state := filepath.Join(work, "state")

	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(proxyctl, args...)
		cmd.Dir = work
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("proxyctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	runExpectFail := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(proxyctl, args...)
		cmd.Dir = work
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("proxyctl %v unexpectedly succeeded:\n%s", args, out)
		}
		return string(out)
	}

	// Identities first, so daemons can resolve clients.
	run("keygen", "-state", state, "-me", "alice")
	run("keygen", "-state", state, "-me", "bob")

	// Config files.
	groupsJSON := filepath.Join(work, "groups.json")
	writeFile(t, groupsJSON, `{"staff": ["bob@EXAMPLE.ORG"]}`)
	rulesJSON := filepath.Join(work, "rules.json")
	writeFile(t, rulesJSON, `[
	  {"endServer": "file/srv1@EXAMPLE.ORG", "object": "/shared/doc",
	   "groups": ["staff%groups@EXAMPLE.ORG"], "ops": ["read"]}
	]`)
	aclJSON := filepath.Join(work, "acl.json")
	writeFile(t, aclJSON, `{
	  "/shared/doc": [{"principals": ["authz@EXAMPLE.ORG"], "ops": ["read"]}]
	}`)

	// Daemons on ephemeral ports. The daemons register their own
	// identities in the shared directory at startup, so start them
	// before the client flows.
	groupAddr := freePort(t)
	authzAddr := freePort(t)
	fileAddr := freePort(t)
	startDaemon(t, work, groupd, "-state", state, "-name", "groups", "-listen", groupAddr, "-groups", groupsJSON)
	waitListening(t, groupAddr)
	startDaemon(t, work, authzd, "-state", state, "-name", "authz", "-listen", authzAddr, "-rules", rulesJSON)
	waitListening(t, authzAddr)
	startDaemon(t, work, filed, "-state", state, "-name", "file/srv1", "-listen", fileAddr, "-acl", aclJSON)
	waitListening(t, fileAddr)

	// bob's flow, exactly as in the README.
	out := run("group-grant", "-state", state, "-me", "bob",
		"-server", groupAddr, "-groups", "staff", "-out", "group.json")
	if !strings.Contains(out, "group-membership(staff%groups@EXAMPLE.ORG)") {
		t.Fatalf("group-grant output: %s", out)
	}
	out = run("authz-grant", "-state", state, "-me", "bob",
		"-server", authzAddr, "-end-server", "file/srv1@EXAMPLE.ORG",
		"-group-proxy", "group.json", "-out", "authz.json")
	if !strings.Contains(out, "authorized(/shared/doc:read)") {
		t.Fatalf("authz-grant output: %s", out)
	}
	out = run("request", "-state", state, "-me", "bob",
		"-server", fileAddr, "-object", "/shared/doc", "-op", "read",
		"-proxy", "authz.json")
	if !strings.Contains(out, "GRANTED via authz@EXAMPLE.ORG") {
		t.Fatalf("request output: %s", out)
	}

	// Denied paths come back as errors through the CLI.
	out = runExpectFail("request", "-state", state, "-me", "bob",
		"-server", fileAddr, "-object", "/shared/doc", "-op", "write",
		"-proxy", "authz.json")
	if !strings.Contains(out, "denied") {
		t.Fatalf("write denial output: %s", out)
	}
	// alice is not staff.
	out = runExpectFail("group-grant", "-state", state, "-me", "alice",
		"-server", groupAddr, "-groups", "staff", "-out", "nope.json")
	if !strings.Contains(out, "not a member") {
		t.Fatalf("non-member output: %s", out)
	}

	// Local grant + cascade round-trips through files.
	run("grant", "-state", state, "-me", "alice", "-out", "cap.json",
		"-object", "/x", "-ops", "read", "-lifetime", "1h")
	out = run("cascade", "-state", state, "-me", "alice", "-in", "cap.json",
		"-out", "cap2.json", "-quota", "pages:5")
	if !strings.Contains(out, "2 links") || !strings.Contains(out, "quota(5 pages)") {
		t.Fatalf("cascade output: %s", out)
	}
}

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found")
		}
		dir = parent
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// freePort reserves an ephemeral port and returns host:port.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// startDaemon launches a daemon process and arranges for cleanup; its
// output is surfaced through the test log for diagnosis.
func startDaemon(t *testing.T, dir, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out := &strings.Builder{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		if t.Failed() && out.Len() > 0 {
			t.Logf("%s output:\n%s", filepath.Base(bin), out.String())
		}
	})
}

// waitListening polls until every address accepts connections.
func waitListening(t *testing.T, addrs ...string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for _, addr := range addrs {
		for {
			conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
			if err == nil {
				_ = conn.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon on %s never came up: %v", addr, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}
