// Package integration exercises a full proxykit deployment over real
// TCP sockets: the same wiring the cmd/ daemons use, driven end to end —
// identities from a shared state directory, group + authorization +
// file + accounting + KDC services, and the complete client flows.
package integration

import (
	"net"
	"strings"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/acl"
	"proxykit/internal/authz"
	"proxykit/internal/endserver"
	"proxykit/internal/group"
	"proxykit/internal/kerberos"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
	"proxykit/internal/statefile"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

const realm = "TCP.EXAMPLE.ORG"

// deployment is a running multi-service TCP deployment.
type deployment struct {
	t     *testing.T
	state string
	dir   *pubkey.Directory

	alice, bob *pubkey.Identity

	groupSrv *group.Server
	authzSrv *authz.Server
	fileSrv  *endserver.Server
	bank     *accounting.Server

	addrs map[string]string
}

func newDeployment(t *testing.T) *deployment {
	t.Helper()
	d := &deployment{t: t, state: t.TempDir(), addrs: map[string]string{}}

	var err error
	if d.alice, err = statefile.CreateIdentity(d.state, principal.New("alice", realm)); err != nil {
		t.Fatal(err)
	}
	if d.bob, err = statefile.CreateIdentity(d.state, principal.New("bob", realm)); err != nil {
		t.Fatal(err)
	}
	groupIdent, err := statefile.CreateIdentity(d.state, principal.New("groups", realm))
	if err != nil {
		t.Fatal(err)
	}
	authzIdent, err := statefile.CreateIdentity(d.state, principal.New("authz", realm))
	if err != nil {
		t.Fatal(err)
	}
	fileIdent, err := statefile.CreateIdentity(d.state, principal.New("file/srv1", realm))
	if err != nil {
		t.Fatal(err)
	}
	bankIdent, err := statefile.CreateIdentity(d.state, principal.New("bank", realm))
	if err != nil {
		t.Fatal(err)
	}

	// Every daemon loads the shared directory, as cmd/ binaries do.
	if d.dir, err = statefile.LoadDirectory(d.state); err != nil {
		t.Fatal(err)
	}
	resolve := d.dir.Resolver()

	d.groupSrv = group.New(groupIdent, nil)
	d.groupSrv.AddMember("staff", d.bob.ID)
	d.serve("groups", svc.NewGroupService(d.groupSrv, resolve, nil).Mux())

	d.authzSrv = authz.New(authzIdent, nil)
	d.authzSrv.AddRule(authz.Rule{
		EndServer: fileIdent.ID,
		Object:    "/shared/doc",
		Subject:   acl.Subject{Groups: []principal.Global{d.groupSrv.Global("staff")}},
		Ops:       []string{"read"},
	})
	d.serve("authz", svc.NewAuthzService(d.authzSrv, resolve, nil).Mux())

	env := &proxy.VerifyEnv{ResolveIdentity: resolve}
	d.fileSrv = endserver.New(fileIdent.ID, env, nil)
	d.fileSrv.SetACL("/shared/doc", acl.New(acl.PrincipalEntry(authzIdent.ID, "read")))
	d.serve("file", svc.NewEndService(d.fileSrv, resolve, nil).Mux())

	d.bank = accounting.NewServer(bankIdent, resolve, nil)
	d.serve("bank", svc.NewAcctService(d.bank, resolve, nil).Mux())

	return d
}

// serve starts a TCP server for mux and records its address.
func (d *deployment) serve(name string, mux *transport.Mux) {
	d.t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		d.t.Fatal(err)
	}
	srv := transport.NewTCPServer(l, mux)
	d.t.Cleanup(func() { _ = srv.Close() })
	d.addrs[name] = srv.Addr().String()
}

// dial connects to a named service.
func (d *deployment) dial(name string) *transport.TCPClient {
	d.t.Helper()
	c, err := transport.DialTCP(d.addrs[name], 2*time.Second)
	if err != nil {
		d.t.Fatal(err)
	}
	d.t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestFullAuthorizationFlowOverTCP(t *testing.T) {
	d := newDeployment(t)
	fileID := principal.New("file/srv1", realm)

	// bob: group proxy over TCP.
	gc := svc.NewGroupClient(d.dial("groups"), d.bob, nil)
	gp, err := gc.Grant(svc.GroupGrantParams{Groups: []string{"staff"}, Lifetime: time.Hour, Delegate: true})
	if err != nil {
		t.Fatal(err)
	}

	// bob: authorization proxy over TCP, presenting the group proxy.
	ac := svc.NewAuthzClient(d.dial("authz"), d.bob, nil)
	ap, err := ac.Grant(svc.GrantParams{
		EndServer:    fileID,
		Lifetime:     time.Hour,
		Delegate:     true,
		GroupProxies: []*proxy.Presentation{gp.PresentDelegate()},
	})
	if err != nil {
		t.Fatal(err)
	}

	// bob: request over TCP.
	ec := svc.NewEndClient(d.dial("file"), d.bob, nil)
	dec, err := ec.Request(svc.RequestParams{
		Object: "/shared/doc", Op: "read",
		Proxies: []*proxy.Presentation{ap.PresentDelegate()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Via != principal.New("authz", realm) || !dec.ViaProxy {
		t.Fatalf("decision = %+v", dec)
	}

	// Denials travel over the wire too: write is not authorized.
	if _, err := ec.Request(svc.RequestParams{
		Object: "/shared/doc", Op: "write",
		Proxies: []*proxy.Presentation{ap.PresentDelegate()},
	}); err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("err = %v", err)
	}

	// alice is not staff: the group server refuses her over TCP.
	acAlice := svc.NewGroupClient(d.dial("groups"), d.alice, nil)
	if _, err := acAlice.Grant(svc.GroupGrantParams{Groups: []string{"staff"}}); err == nil {
		t.Fatal("non-member granted over TCP")
	}
}

func TestBearerCapabilityOverTCP(t *testing.T) {
	d := newDeployment(t)
	fileID := principal.New("file/srv1", realm)
	d.fileSrv.SetACL("/cap/doc", acl.New(acl.PrincipalEntry(d.alice.ID, "read")))

	cap, err := proxy.Grant(proxy.GrantParams{
		Grantor:       d.alice.ID,
		GrantorSigner: d.alice.Signer(),
		Restrictions: restrict.Set{restrict.Authorized{Entries: []restrict.AuthorizedEntry{
			{Object: "/cap/doc", Ops: []string{"read"}},
		}}},
		Lifetime: time.Hour,
		Mode:     proxy.ModePublicKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The proxy survives a save/load cycle (how proxyctl hands it off).
	path := d.state + "/cap.json"
	if err := statefile.SaveProxy(path, cap); err != nil {
		t.Fatal(err)
	}
	loaded, err := statefile.LoadProxy(path)
	if err != nil {
		t.Fatal(err)
	}

	ec := svc.NewEndClient(d.dial("file"), d.bob, nil)
	ch, err := ec.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	pres, err := loaded.Present(ch, fileID)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ec.Request(svc.RequestParams{
		Object: "/cap/doc", Op: "read",
		Challenge: ch,
		Proxies:   []*proxy.Presentation{pres},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Via != d.alice.ID {
		t.Fatalf("via = %v", dec.Via)
	}
}

func TestAccountingOverTCP(t *testing.T) {
	d := newDeployment(t)

	aliceAcct := svc.NewAcctClient(d.dial("bank"), d.alice, nil)
	bobAcct := svc.NewAcctClient(d.dial("bank"), d.bob, nil)
	if err := aliceAcct.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	if err := bobAcct.CreateAccount("bob"); err != nil {
		t.Fatal(err)
	}
	if err := d.bank.Mint("alice", "dollars", 300); err != nil {
		t.Fatal(err)
	}

	check, err := accounting.WriteCheck(accounting.WriteCheckParams{
		Payor: d.alice, Bank: d.bank.ID, Account: "alice",
		Payee: d.bob.ID, Currency: "dollars", Amount: 120,
		Lifetime: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	endorsed, err := check.Endorse(d.bob, d.bank.ID, d.bank.ID, d.bank.Global("bob"), true, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := bobAcct.DepositCheck(endorsed, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if r.Amount != 120 || r.Hops != 1 {
		t.Fatalf("receipt = %+v", r)
	}
	bal, err := bobAcct.Balance("bob", "dollars")
	if err != nil {
		t.Fatal(err)
	}
	if bal != 120 {
		t.Fatalf("bob = %d", bal)
	}
	// Duplicate deposit rejected across the wire.
	if _, err := bobAcct.DepositCheck(endorsed, "bob"); err == nil {
		t.Fatal("duplicate accepted over TCP")
	}
}

func TestKDCOverTCP(t *testing.T) {
	kdc, err := kerberos.NewKDC(realm, nil)
	if err != nil {
		t.Fatal(err)
	}
	aliceID := principal.New("alice", realm)
	aliceKey, err := kdc.RegisterWithPassword(aliceID, "pw")
	if err != nil {
		t.Fatal(err)
	}
	fileID := principal.New("file/srv1", realm)
	fileKey, err := kdc.RegisterWithPassword(fileID, "spw")
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewTCPServer(l, svc.NewKDCService(kdc).Mux())
	defer srv.Close()

	tc, err := transport.DialTCP(srv.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	kc := svc.NewKDCClient(tc)

	alice := kerberos.NewClient(aliceID, aliceKey, nil)
	tgt, err := alice.Login(kc, kdc.TGS(), time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	creds, err := alice.RequestTicket(kc, tgt, fileID, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	fileServer := kerberos.NewServer(fileID, fileKey, nil)
	req, err := alice.MakeAPRequest(creds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fileServer.VerifyAPRequest(req, nil); err != nil {
		t.Fatal(err)
	}

	// TGS proxy over TCP: bob obtains a restricted ticket.
	px, err := kerberos.MakeProxy(tgt, restrict.Set{
		restrict.Authorized{Entries: []restrict.AuthorizedEntry{{Object: "/x", Ops: []string{"read"}}}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := kerberos.RequestTicketWithProxy(kc, px, principal.New("bob", realm), fileID, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if derived.Client != aliceID {
		t.Fatalf("derived ticket names %v", derived.Client)
	}
	if len(derived.AuthzData) == 0 {
		t.Fatal("restrictions lost over TCP TGS proxy flow")
	}
}
