package logging

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"":        slog.LevelInfo,
		"info":    slog.LevelInfo,
		"DEBUG":   slog.LevelDebug,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"error":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
}

func TestRegisterFlags(t *testing.T) {
	var o Options
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o.RegisterFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if o.Level != "debug" || o.Format != "json" {
		t.Errorf("parsed options = %+v", o)
	}
}

func TestNewLoggerText(t *testing.T) {
	var buf bytes.Buffer
	l, err := Options{Level: "warn", Format: "text"}.NewLogger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("shown", "key", "value")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line emitted at warn level:\n%s", out)
	}
	if !strings.Contains(out, "msg=shown") || !strings.Contains(out, "key=value") {
		t.Errorf("warn line missing fields:\n%s", out)
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := Options{Format: "json"}.NewLogger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("structured", "n", 7)
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if doc["msg"] != "structured" || doc["n"] != float64(7) {
		t.Errorf("unexpected document: %v", doc)
	}
}

func TestNewLoggerRejectsBadInputs(t *testing.T) {
	if _, err := (Options{Level: "loud"}).NewLogger(nil); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := (Options{Format: "xml"}).NewLogger(nil); err == nil {
		t.Error("bad format accepted")
	}
}
