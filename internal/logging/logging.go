// Package logging configures structured logging (log/slog) for the
// daemons and proxyctl. Every command registers the same two flags —
// -log-level and -log-format — and routes both slog and the legacy
// log package through one handler, so operational output is uniformly
// greppable (text) or machine-parseable (json) across the system.
package logging

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Options are the shared logging settings.
type Options struct {
	// Level is the minimum level emitted: debug, info, warn, or error.
	Level string
	// Format selects the handler: text or json.
	Format string
}

// RegisterFlags registers -log-level and -log-format on fs with the
// conventional defaults (info, text).
func (o *Options) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.Level, "log-level", "info", "minimum log level: debug, info, warn, or error")
	fs.StringVar(&o.Format, "log-format", "text", "log output format: text or json")
}

// ParseLevel maps a level name to its slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("logging: unknown level %q (want debug, info, warn, or error)", s)
	}
}

// NewLogger builds a logger per the options, writing to w (os.Stderr
// when nil).
func (o Options) NewLogger(w io.Writer) (*slog.Logger, error) {
	if w == nil {
		w = os.Stderr
	}
	lvl, err := ParseLevel(o.Level)
	if err != nil {
		return nil, err
	}
	hopts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(o.Format)) {
	case "", "text":
		h = slog.NewTextHandler(w, hopts)
	case "json":
		h = slog.NewJSONHandler(w, hopts)
	default:
		return nil, fmt.Errorf("logging: unknown format %q (want text or json)", o.Format)
	}
	return slog.New(h), nil
}

// Setup builds the logger and installs it as the process default:
// slog.Info et al. and the legacy log package (log.Printf, log.Fatal)
// both route through it.
func (o Options) Setup(w io.Writer) (*slog.Logger, error) {
	l, err := o.NewLogger(w)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(l)
	return l, nil
}
