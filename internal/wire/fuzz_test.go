package wire

import (
	"bytes"
	"testing"
	"time"
)

// sampleEnvelope encodes the field mix a sealed svc request envelope
// uses on the wire (identity strings, method, body, timestamp, nonce,
// signature), giving the fuzzer a realistic corpus seed.
func sampleEnvelope() []byte {
	e := NewEncoder(256)
	e.String("carol@EXAMPLE.ORG")
	e.String("acct.deposit-check")
	e.Bytes32([]byte("request-body-bytes"))
	e.Time(time.Unix(13_000_000, 0))
	e.Bytes32([]byte("nonce-0123456789"))
	e.Bytes32(bytes.Repeat([]byte{0xAB}, 64))
	return e.Bytes()
}

// sampleMessage exercises the remaining field kinds (bools, ints,
// slices).
func sampleMessage() []byte {
	e := NewEncoder(128)
	e.Uint8(7)
	e.Bool(true)
	e.Uint32(42)
	e.Int64(-5)
	e.StringSlice([]string{"read", "write"})
	e.BytesSlice([][]byte{{1, 2}, nil, {3}})
	return e.Bytes()
}

// FuzzDecode drives the decoder over arbitrary bytes with a
// data-derived schedule of field reads: decoding must never panic,
// must never report success with trailing garbage, and whatever the
// schedule re-encodes must round-trip byte for byte.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0}, sampleEnvelope())
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, sampleMessage())
	f.Add([]byte{2, 2, 2}, []byte{})
	f.Add([]byte{5}, []byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, schedule, data []byte) {
		d := NewDecoder(data)
		e := NewEncoder(len(data))
		for _, op := range schedule {
			switch op % 8 {
			case 0:
				e.String(d.String())
			case 1:
				e.Bytes32(d.Bytes32())
			case 2:
				e.Uint8(d.Uint8())
			case 3:
				e.Bool(d.Bool())
			case 4:
				e.Uint32(d.Uint32())
			case 5:
				e.Int64(d.Int64())
			case 6:
				e.Time(d.Time())
			case 7:
				e.StringSlice(d.StringSlice())
			}
			if d.Err() != nil {
				return // decode failed cleanly; nothing to compare
			}
		}
		if err := d.Finish(); err != nil {
			return // trailing bytes correctly rejected
		}
		// Everything decoded and consumed: the same field schedule must
		// have re-encoded the input exactly (Bool canonicalizes 0/1, so
		// skip the comparison when the schedule read bools).
		for _, op := range schedule {
			if op%8 == 3 {
				return
			}
		}
		if !bytes.Equal(e.Bytes(), data) {
			t.Fatalf("round trip diverged:\n in  %x\n out %x", data, e.Bytes())
		}
	})
}

// FuzzReadFrame feeds arbitrary streams to the frame reader: no
// panics, size cap enforced, and an accepted frame must round-trip
// through WriteFrame.
func FuzzReadFrame(f *testing.F) {
	var framed bytes.Buffer
	if err := WriteFrame(&framed, []byte("hello proxykit")); err != nil {
		f.Fatal(err)
	}
	f.Add(framed.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("frame round trip diverged")
		}
	})
}
