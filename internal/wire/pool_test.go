package wire

import (
	"bytes"
	"sync"
	"testing"
)

// writeRecorder records the size of every Write call.
type writeRecorder struct {
	buf    bytes.Buffer
	writes []int
}

func (w *writeRecorder) Write(p []byte) (int, error) {
	w.writes = append(w.writes, len(p))
	return w.buf.Write(p)
}

// TestWriteFrameSingleWrite pins the torn-header fix: a frame must go
// out in exactly one Write call. Two writes (header, then body) can
// interleave with a concurrent sender's frame on a shared net.Conn,
// corrupting the stream.
func TestWriteFrameSingleWrite(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 5000)}
	for _, p := range payloads {
		rec := &writeRecorder{}
		if err := WriteFrame(rec, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
		if len(rec.writes) != 1 {
			t.Fatalf("WriteFrame(%d bytes): %d Write calls, want exactly 1", len(p), len(rec.writes))
		}
		if rec.writes[0] != 4+len(p) {
			t.Fatalf("WriteFrame(%d bytes): wrote %d bytes, want %d", len(p), rec.writes[0], 4+len(p))
		}
		got, err := ReadFrame(&rec.buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(p))
		}
	}
}

// TestReadFrameReuse verifies the reuse variant returns correct
// payloads while recycling its scratch buffer across frames.
func TestReadFrameReuse(t *testing.T) {
	var stream bytes.Buffer
	frames := [][]byte{
		bytes.Repeat([]byte("a"), 100),
		bytes.Repeat([]byte("b"), 10),
		bytes.Repeat([]byte("c"), 500),
		{},
	}
	for _, f := range frames {
		if err := WriteFrame(&stream, f); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range frames {
		got, next, err := ReadFrameReuse(&stream, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
		if i > 0 && len(want) <= cap(scratch) && len(want) > 0 && &got[0] != &scratch[:1][0] {
			t.Fatalf("frame %d: expected payload to reuse scratch buffer", i)
		}
		scratch = next
	}
}

// TestGetEncoderReset verifies pooled encoders come back empty with at
// least the hinted capacity, and that concurrent use is safe.
func TestGetEncoderReset(t *testing.T) {
	e := GetEncoder(128)
	e.String("leftover state")
	e.Release()

	e2 := GetEncoder(64)
	if e2.Len() != 0 {
		t.Fatalf("pooled encoder not reset: Len=%d", e2.Len())
	}
	if cap(e2.buf) < 64 {
		t.Fatalf("size hint not honored: cap=%d", cap(e2.buf))
	}
	e2.Uint64(42)
	d := NewDecoder(e2.Bytes())
	if v := d.Uint64(); v != 42 || d.Finish() != nil {
		t.Fatalf("pooled encoder round trip: got %d, err %v", v, d.Finish())
	}
	e2.Release()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				e := GetEncoder(32)
				e.Uint64(uint64(n))
				e.Bytes32(bytes.Repeat([]byte{byte(n)}, 16))
				d := NewDecoder(e.Bytes())
				if v := d.Uint64(); v != uint64(n) {
					t.Errorf("cross-goroutine encoder corruption: got %d want %d", v, n)
				}
				e.Release()
			}
		}(i)
	}
	wg.Wait()
}

// TestPoolDropsOversized verifies buffers beyond the retention cap are
// not pooled (preventing one huge message from pinning memory).
func TestPoolDropsOversized(t *testing.T) {
	e := GetEncoder(maxPooledBuf * 2)
	e.Release()
	if e.buf != nil {
		t.Fatal("oversized encoder buffer retained after Release")
	}
}
