// Package wire provides the canonical binary encoding used for every
// signed structure in proxykit (proxy certificates, tickets, checks) and
// the length-prefixed framing used on network connections.
//
// Signatures are computed over encoded bytes, so encoding must be
// deterministic: fixed field order, fixed-width integers in big-endian
// byte order, and length-prefixed variable fields. The Encoder/Decoder
// pair implements a minimal schema-less format; each structure's
// marshaling code fixes its own field order.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Limits protecting decoders from hostile inputs.
const (
	// MaxFieldLen bounds a single variable-length field.
	MaxFieldLen = 1 << 24
	// MaxFrameLen bounds one framed network message.
	MaxFrameLen = 1 << 26
	// MaxSliceLen bounds the element count of encoded slices.
	MaxSliceLen = 1 << 20
)

// Decoding errors.
var (
	ErrTruncated  = errors.New("wire: truncated input")
	ErrFieldSize  = errors.New("wire: field exceeds size limit")
	ErrTrailing   = errors.New("wire: trailing bytes after structure")
	ErrFrameSize  = errors.New("wire: frame exceeds size limit")
	ErrSliceCount = errors.New("wire: slice exceeds element limit")
)

// Encoder accumulates a deterministic byte encoding. The zero value is
// ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with capacity preallocated for sizeHint
// bytes.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the accumulated encoding. The returned slice aliases the
// encoder's buffer; callers must not retain it across further writes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Uint32 appends a fixed-width big-endian uint32.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// Uint64 appends a fixed-width big-endian uint64.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Int64 appends a two's-complement int64.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Time appends an instant as Unix nanoseconds. The zero time encodes as
// math.MinInt64 so it survives round-trips distinctly.
func (e *Encoder) Time(t time.Time) {
	if t.IsZero() {
		e.Int64(math.MinInt64)
		return
	}
	e.Int64(t.UnixNano())
}

// Bytes32 appends a variable-length byte field with a uint32 length
// prefix.
func (e *Encoder) Bytes32(b []byte) {
	e.Uint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.Uint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// StringSlice appends a count-prefixed slice of strings.
func (e *Encoder) StringSlice(ss []string) {
	e.Uint32(uint32(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// BytesSlice appends a count-prefixed slice of byte fields.
func (e *Encoder) BytesSlice(bs [][]byte) {
	e.Uint32(uint32(len(bs)))
	for _, b := range bs {
		e.Bytes32(b)
	}
}

// Decoder consumes an encoding produced by Encoder. Errors are sticky:
// after the first failure every subsequent read returns the zero value
// and Err reports the failure.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps buf for decoding. The buffer is not copied.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish verifies the input was consumed exactly and returns any pending
// error.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a boolean; any nonzero value is true.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Uint32 reads a big-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int64 reads a two's-complement int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Time reads an instant encoded by Encoder.Time.
func (d *Decoder) Time() time.Time {
	v := d.Int64()
	if d.err != nil || v == math.MinInt64 {
		return time.Time{}
	}
	return time.Unix(0, v)
}

// Bytes32 reads a length-prefixed byte field. The result is a copy.
func (d *Decoder) Bytes32() []byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > MaxFieldLen {
		d.fail(ErrFieldSize)
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uint32()
	if d.err != nil {
		return ""
	}
	if n > MaxFieldLen {
		d.fail(ErrFieldSize)
		return ""
	}
	b := d.take(int(n))
	return string(b)
}

// StringSlice reads a count-prefixed slice of strings.
func (d *Decoder) StringSlice() []string {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > MaxSliceLen {
		d.fail(ErrSliceCount)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		out = append(out, d.String())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// BytesSlice reads a count-prefixed slice of byte fields.
func (d *Decoder) BytesSlice() [][]byte {
	n := d.Uint32()
	if d.err != nil {
		return nil
	}
	if n > MaxSliceLen {
		d.fail(ErrSliceCount)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([][]byte, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		out = append(out, d.Bytes32())
		if d.err != nil {
			return nil
		}
	}
	return out
}

// WriteFrame writes one length-prefixed message to w as a single Write
// call. A single write matters when w is an unbuffered net.Conn shared
// by concurrent senders: header and body issued as two writes can
// interleave with another frame, tearing the stream irrecoverably.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameLen {
		return ErrFrameSize
	}
	bp := getFrameBuf(4 + len(payload))
	frame := *bp
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	copy(frame[4:], payload)
	_, err := w.Write(frame)
	putFrameBuf(bp)
	if err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message from r. The payload is
// freshly allocated and owned by the caller.
func ReadFrame(r io.Reader) ([]byte, error) {
	return readFrame(r, nil)
}

// ReadFrameReuse reads one length-prefixed message from r into scratch
// when it has sufficient capacity, allocating only when the frame is
// larger. It returns the payload (which may alias scratch) and a buffer
// to pass as scratch on the next call. Only for read loops that fully
// consume each frame before reading the next — the payload must not
// escape the loop iteration.
func ReadFrameReuse(r io.Reader, scratch []byte) (payload, next []byte, err error) {
	payload, err = readFrame(r, scratch)
	if err != nil {
		return nil, scratch, err
	}
	if cap(payload) > cap(scratch) {
		scratch = payload
	}
	return payload, scratch, nil
}

func readFrame(r io.Reader, scratch []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameLen {
		return nil, ErrFrameSize
	}
	var payload []byte
	if int(n) <= cap(scratch) {
		payload = scratch[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: read frame body: %w", err)
	}
	return payload, nil
}
