package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripScalars(t *testing.T) {
	e := NewEncoder(64)
	now := time.Unix(1234567890, 987654321)
	e.Uint8(7)
	e.Bool(true)
	e.Bool(false)
	e.Uint32(0xdeadbeef)
	e.Uint64(1 << 60)
	e.Int64(-42)
	e.Time(now)
	e.Time(time.Time{})

	d := NewDecoder(e.Bytes())
	if got := d.Uint8(); got != 7 {
		t.Fatalf("uint8 = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools")
	}
	if got := d.Uint32(); got != 0xdeadbeef {
		t.Fatalf("uint32 = %x", got)
	}
	if got := d.Uint64(); got != 1<<60 {
		t.Fatalf("uint64 = %d", got)
	}
	if got := d.Int64(); got != -42 {
		t.Fatalf("int64 = %d", got)
	}
	if got := d.Time(); !got.Equal(now) {
		t.Fatalf("time = %v", got)
	}
	if got := d.Time(); !got.IsZero() {
		t.Fatalf("zero time = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripVariable(t *testing.T) {
	e := NewEncoder(0)
	e.Bytes32([]byte{1, 2, 3})
	e.Bytes32(nil)
	e.String("principal@REALM")
	e.String("")
	e.StringSlice([]string{"a", "b", "c"})
	e.StringSlice(nil)
	e.BytesSlice([][]byte{{9}, {8, 7}})
	e.BytesSlice(nil)

	d := NewDecoder(e.Bytes())
	if got := d.Bytes32(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", got)
	}
	if got := d.Bytes32(); len(got) != 0 {
		t.Fatalf("nil bytes = %v", got)
	}
	if got := d.String(); got != "principal@REALM" {
		t.Fatalf("string = %q", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("empty string = %q", got)
	}
	ss := d.StringSlice()
	if len(ss) != 3 || ss[0] != "a" || ss[2] != "c" {
		t.Fatalf("string slice = %v", ss)
	}
	if got := d.StringSlice(); got != nil {
		t.Fatalf("nil slice = %v", got)
	}
	bs := d.BytesSlice()
	if len(bs) != 2 || !bytes.Equal(bs[1], []byte{8, 7}) {
		t.Fatalf("bytes slice = %v", bs)
	}
	if got := d.BytesSlice(); got != nil {
		t.Fatalf("nil bytes slice = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	enc := func() []byte {
		e := NewEncoder(0)
		e.String("grantor")
		e.StringSlice([]string{"r1", "r2"})
		e.Time(time.Unix(100, 0))
		out := make([]byte, len(e.Bytes()))
		copy(out, e.Bytes())
		return out
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("encoding not deterministic")
	}
}

func TestDecoderTruncation(t *testing.T) {
	e := NewEncoder(0)
	e.String("hello")
	full := e.Bytes()
	// Every strict prefix must fail with ErrTruncated, never panic.
	for i := 0; i < len(full); i++ {
		d := NewDecoder(full[:i])
		_ = d.String()
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Fatalf("prefix %d: err = %v", i, d.Err())
		}
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{0x01})
	_ = d.Uint32() // fails
	if d.Err() == nil {
		t.Fatal("expected error")
	}
	first := d.Err()
	_ = d.String()
	_ = d.Uint64()
	if d.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestDecoderFieldSizeLimit(t *testing.T) {
	e := NewEncoder(0)
	e.Uint32(MaxFieldLen + 1)
	d := NewDecoder(e.Bytes())
	_ = d.Bytes32()
	if !errors.Is(d.Err(), ErrFieldSize) {
		t.Fatalf("err = %v", d.Err())
	}
	d2 := NewDecoder(e.Bytes())
	_ = d2.String()
	if !errors.Is(d2.Err(), ErrFieldSize) {
		t.Fatalf("string err = %v", d2.Err())
	}
}

func TestDecoderSliceCountLimit(t *testing.T) {
	e := NewEncoder(0)
	e.Uint32(MaxSliceLen + 1)
	d := NewDecoder(e.Bytes())
	_ = d.StringSlice()
	if !errors.Is(d.Err(), ErrSliceCount) {
		t.Fatalf("err = %v", d.Err())
	}
	d2 := NewDecoder(e.Bytes())
	_ = d2.BytesSlice()
	if !errors.Is(d2.Err(), ErrSliceCount) {
		t.Fatalf("bytes err = %v", d2.Err())
	}
}

func TestFinishDetectsTrailing(t *testing.T) {
	e := NewEncoder(0)
	e.Uint8(1)
	e.Uint8(2)
	d := NewDecoder(e.Bytes())
	_ = d.Uint8()
	if err := d.Finish(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v", err)
	}
}

func TestBytes32ReturnsCopy(t *testing.T) {
	e := NewEncoder(0)
	e.Bytes32([]byte{1, 2, 3})
	buf := e.Bytes()
	d := NewDecoder(buf)
	got := d.Bytes32()
	got[0] = 99
	d2 := NewDecoder(buf)
	if d2.Bytes32()[0] != 1 {
		t.Fatal("decoded bytes alias the input buffer")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{[]byte("first"), {}, []byte("third message")}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFrameSizeLimits(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrameLen+1)); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("write: %v", err)
	}
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // absurd length header
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("read: %v", err)
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("complete")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// Property: any sequence of string/bytes fields round-trips.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(s string, b []byte, ss []string, n uint64, tt int64) bool {
		e := NewEncoder(0)
		e.String(s)
		e.Bytes32(b)
		e.StringSlice(ss)
		e.Uint64(n)
		e.Int64(tt)

		d := NewDecoder(e.Bytes())
		gs := d.String()
		gb := d.Bytes32()
		gss := d.StringSlice()
		gn := d.Uint64()
		gt := d.Int64()
		if err := d.Finish(); err != nil {
			return false
		}
		if gs != s || !bytes.Equal(gb, b) || gn != n || gt != tt {
			return false
		}
		if len(gss) != len(ss) {
			return false
		}
		for i := range ss {
			if gss[i] != ss[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary garbage never panics.
func TestPropertyDecoderNoPanic(t *testing.T) {
	f := func(garbage []byte) bool {
		d := NewDecoder(garbage)
		_ = d.String()
		_ = d.Bytes32()
		_ = d.StringSlice()
		_ = d.BytesSlice()
		_ = d.Time()
		_ = d.Finish()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderLenAndDecoderRemaining(t *testing.T) {
	e := NewEncoder(0)
	if e.Len() != 0 {
		t.Fatal("fresh encoder not empty")
	}
	e.Uint32(7)
	e.String("ab")
	if e.Len() != 4+4+2 {
		t.Fatalf("len = %d", e.Len())
	}
	d := NewDecoder(e.Bytes())
	if d.Remaining() != e.Len() {
		t.Fatalf("remaining = %d", d.Remaining())
	}
	_ = d.Uint32()
	if d.Remaining() != 6 {
		t.Fatalf("remaining after read = %d", d.Remaining())
	}
}
