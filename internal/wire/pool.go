package wire

import "sync"

// Encoder and frame-buffer pooling. Every request/response on the hot
// path allocates an encoder buffer and a frame payload; under load those
// allocations dominate the transport profile. The pools below recycle
// both, with a cap bound so one pathological message does not pin a
// huge buffer forever.

// maxPooledBuf bounds the capacity of buffers returned to the pools.
// Larger buffers are dropped for the GC to reclaim.
const maxPooledBuf = 64 << 10

var encoderPool = sync.Pool{
	New: func() any { return new(Encoder) },
}

// GetEncoder returns a pooled Encoder, reset and ready to use. If the
// pooled buffer is smaller than sizeHint it is grown once up front.
// Callers must not retain the encoder or its Bytes() past Release.
func GetEncoder(sizeHint int) *Encoder {
	e := encoderPool.Get().(*Encoder)
	if cap(e.buf) < sizeHint {
		e.buf = make([]byte, 0, sizeHint)
	} else {
		e.buf = e.buf[:0]
	}
	return e
}

// Release returns the encoder to the pool. The encoder and any slice
// previously obtained from Bytes() must not be used afterwards.
// Oversized buffers are dropped rather than pooled.
func (e *Encoder) Release() {
	if cap(e.buf) > maxPooledBuf {
		e.buf = nil
	}
	encoderPool.Put(e)
}

var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getFrameBuf(n int) *[]byte {
	bp := framePool.Get().(*[]byte)
	if cap(*bp) < n {
		b := make([]byte, n)
		*bp = b
	} else {
		*bp = (*bp)[:n]
	}
	return bp
}

func putFrameBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	framePool.Put(bp)
}
