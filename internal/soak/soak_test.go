package soak

import (
	"flag"
	"os"
	"strings"
	"testing"
	"time"
)

var (
	soakTime = flag.Duration("soak.time", 6*time.Second, "TestSoakStorm duration")
	soakSeed = flag.Int64("soak.seed", 1, "TestSoakStorm seed")
)

// TestMain lets a re-exec'd copy of this binary become the soak child
// bank instead of running the test suite.
func TestMain(m *testing.M) {
	MaybeRunChild()
	os.Exit(m.Run())
}

// TestSoakStorm is the full storm: every scenario concurrently, fault
// injection on the clearing hop, SIGKILL crash/recovery of the child
// bank, and the always-on verifier. `make soak` runs this with
// SOAK_TIME/SOAK_SEED.
func TestSoakStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process soak storm in -short mode")
	}
	rep, err := Run(Config{
		Seed:     *soakSeed,
		Duration: *soakTime,
		Failover: true,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.VerifyPasses < 2 {
		t.Errorf("verifier ran %d clean passes, want >= 2", rep.VerifyPasses)
	}
	if rep.Crashes < 1 {
		t.Errorf("child bank crashed %d times, want >= 1", rep.Crashes)
	}
	if rep.Recoveries != rep.Crashes {
		t.Errorf("crashes=%d recoveries=%d, want equal", rep.Crashes, rep.Recoveries)
	}
	if rep.Failovers != rep.Crashes {
		t.Errorf("failovers=%d crashes=%d, want a promote-under-load audit per crash cycle", rep.Failovers, rep.Crashes)
	}
	for _, name := range []string{
		"authorize", "transfer", "deposit", "clearing", "certified",
		"gateway", "login", "churn", "childbank",
	} {
		if rep.Ops[name] == 0 {
			t.Errorf("op %q never completed successfully (errors: %d)", name, rep.Errors[name])
		}
	}
	t.Logf("storm: %d ops, %d verify passes, %d crashes, %d downtime errors",
		len(rep.OpLog), rep.VerifyPasses, rep.Crashes, rep.DowntimeErrors)
}

// TestSoakCatchesDoubleCredit proves the verifier is live: money minted
// outside provisioning must be flagged as a conservation break within
// one verification pass.
func TestSoakCatchesDoubleCredit(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run in -short mode")
	}
	rep, err := Run(Config{
		Seed:               7,
		MaxOps:             260,
		Workers:            4,
		Principals:         4,
		VerifyInterval:     200 * time.Millisecond,
		NoChild:            true,
		InjectDoubleCredit: true,
		Logf:               t.Logf,
	})
	if err == nil {
		t.Fatalf("verifier missed the injected double credit (%d passes)", rep.VerifyPasses)
	}
	if !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("violation is not a conservation break: %v", err)
	}
	if !strings.Contains(err.Error(), "reproduce:") {
		t.Errorf("violation lacks a reproduction command: %v", err)
	}
}

// TestSoakSeedReproducesSchedule: the same seed and op count draw the
// same schedule, independent of execution interleaving.
func TestSoakSeedReproducesSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run in -short mode")
	}
	run := func() []string {
		t.Helper()
		rep, err := Run(Config{
			Seed:       99,
			MaxOps:     200,
			Workers:    4,
			Principals: 4,
			NoChild:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.OpLog
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("op logs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}
