// Package soak is the standing correctness net: a long-running,
// seed-deterministic scenario storm over the full multi-realm topology
// — Kerberos logins, cascaded authorizations, group/ACL churn,
// same-bank and cross-bank payments, certified checks, gateway HTTP
// traffic — with seeded fault injection on the inter-bank clearing hop
// and periodic SIGKILL crash/recovery of a ledger-backed bank running
// in a child process. A continuous verifier re-walks the banks' audit
// journals and money census between operations, asserting global
// conservation of money to the dollar, exactly-once clearing per check
// number, unbroken hash chains, and trace completeness. Any violation
// stops the run immediately and reports the seed and a reproduction
// command.
//
// The op schedule is drawn from a single seeded PRNG before dispatch,
// so the same seed (and the same op count) reproduces the same
// schedule regardless of execution interleaving.
package soak

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"proxykit/internal/loadgen"
	"proxykit/internal/obs"
)

// Config parameterizes a soak run.
type Config struct {
	// Seed drives the op schedule, fault injection, and child-bank
	// crash points. 0 means 1.
	Seed int64
	// Duration bounds the storm by wall clock. Zero is allowed when
	// MaxOps is set.
	Duration time.Duration
	// MaxOps, when positive, bounds the storm by op count instead of
	// (or in addition to) Duration — a fixed count plus a fixed seed
	// makes the whole schedule deterministic.
	MaxOps int
	// Workers is the closed-loop concurrency (default 8).
	Workers int
	// Principals is the simulated population size (default 8).
	Principals int
	// VerifyInterval is how often the continuous verifier runs between
	// its mandatory final pass (default 2s).
	VerifyInterval time.Duration
	// CrashInterval is how often the child bank is SIGKILLed and
	// recovered; default Duration/4 clamped to [2s, 15s]. Ignored with
	// NoChild.
	CrashInterval time.Duration
	// FaultDrop and FaultDup are the per-message drop/duplicate
	// probabilities injected on the inter-bank clearing hop (defaults
	// 0.25 and 0.10).
	FaultDrop, FaultDup float64
	// NoChild disables the child-process bank and its crash/recovery
	// cycles — used by deterministic-schedule tests.
	NoChild bool
	// Failover runs a hot standby replicating the child bank's WAL and,
	// on every crash cycle, promotes it under load before the child is
	// restarted: the promoted replica must have held its read-only gate,
	// advanced the fencing term, conserved money, refused the last
	// acknowledged check, and cleared fresh writes. Ignored with NoChild.
	Failover bool
	// ChildArgs are extra argv entries for the re-exec'd child process.
	ChildArgs []string
	// InjectDoubleCredit mints unaccounted money into a customer
	// account mid-run through a test-only hook; a correct verifier must
	// flag the conservation break on its next pass.
	InjectDoubleCredit bool
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Report summarizes a run. When Run also returns an error, the report
// reflects progress up to the violation.
type Report struct {
	Seed    int64
	Elapsed time.Duration
	// Ops and Errors count completed operations per op name.
	Ops    map[string]int
	Errors map[string]int
	// OpLog is the drawn schedule, in draw order: "name p=<i> amt=<n>".
	OpLog []string
	// VerifyPasses counts clean verifier passes.
	VerifyPasses int
	// Crashes and Recoveries count child-bank SIGKILL cycles; they are
	// equal unless the run ended mid-cycle.
	Crashes, Recoveries int
	// Failovers counts standby promotions that passed the failover audit
	// (Failover mode only).
	Failovers int
	// DowntimeErrors counts child-bank ops that failed while the child
	// was dead or restarting — expected, not violations.
	DowntimeErrors int
}

type job struct {
	op  *soakOp
	p   int
	amt int64
}

type soakOp struct {
	name   string
	weight int
	do     func(p int, amt int64) error
}

type harness struct {
	cfg  Config
	topo *loadgen.Topology

	// gate quiesces money movement: every money-moving op holds the
	// read side for its whole call (clearing retries included), and the
	// verifier takes the write side, so its money census never observes
	// a transfer or clearing hop mid-flight.
	gate sync.RWMutex

	mu           sync.Mutex
	opLog        []string
	ops          map[string]int
	errs         map[string]int
	numbers      map[string]string // cleared cross-bank check number -> trace ID
	verifyPasses int
	crashes      int
	recoveries   int
	failovers    int
	downtimeErrs int

	child          *childCtl
	journalCleanup func()

	cancel    context.CancelFunc
	failOnce  sync.Once
	violation error
}

func (h *harness) logf(format string, args ...any) {
	if h.cfg.Logf != nil {
		h.cfg.Logf(format, args...)
	}
}

// fail records the first invariant violation with its reproduction
// command and stops the run.
func (h *harness) fail(err error) {
	h.failOnce.Do(func() {
		h.violation = fmt.Errorf("soak: %w\nreproduce: make soak SOAK_SEED=%d SOAK_TIME=%s",
			err, h.cfg.Seed, h.cfg.Duration)
		h.cancel()
	})
}

// Run executes the storm and returns its report. A non-nil error means
// an invariant was violated (or the harness itself failed); expected
// fault-injection noise is reported, not returned.
func Run(cfg Config) (*Report, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Duration <= 0 && cfg.MaxOps <= 0 {
		return nil, fmt.Errorf("soak: duration or max ops must be positive")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Principals <= 0 {
		cfg.Principals = 8
	}
	if cfg.VerifyInterval <= 0 {
		cfg.VerifyInterval = 2 * time.Second
	}
	if cfg.CrashInterval <= 0 {
		cfg.CrashInterval = clampDuration(cfg.Duration/4, 2*time.Second, 15*time.Second)
	}
	if cfg.FaultDrop == 0 {
		cfg.FaultDrop = 0.25
	}
	if cfg.FaultDup == 0 {
		cfg.FaultDup = 0.10
	}

	h := &harness{
		cfg:     cfg,
		ops:     map[string]int{},
		errs:    map[string]int{},
		numbers: map[string]string{},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h.cancel = cancel

	if err := h.setup(); err != nil {
		return nil, err
	}
	defer h.teardown()

	ops := h.opTable()
	jobs := make(chan job)
	var workers sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for jb := range jobs {
				err := jb.op.do(jb.p, jb.amt)
				h.mu.Lock()
				if err != nil {
					h.errs[jb.op.name]++
				} else {
					h.ops[jb.op.name]++
				}
				h.mu.Unlock()
			}
		}()
	}

	// The continuous verifier.
	verifierDone := make(chan struct{})
	stopVerifier := make(chan struct{})
	go func() {
		defer close(verifierDone)
		t := time.NewTicker(cfg.VerifyInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-stopVerifier:
				return
			case <-t.C:
				if err := h.verifyPass(); err != nil {
					h.fail(err)
					return
				}
			}
		}
	}()

	// The child-bank crash/recovery cycle.
	var crasher sync.WaitGroup
	if h.child != nil {
		crasher.Add(1)
		go func() {
			defer crasher.Done()
			t := time.NewTicker(cfg.CrashInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := h.child.crashOnce(); err != nil {
						h.fail(err)
						return
					}
				}
			}
		}()
	}

	// The rogue teller: after roughly half the schedule, mint money the
	// provisioning record never saw. The verifier must catch it.
	var injector sync.WaitGroup
	if cfg.InjectDoubleCredit {
		injector.Add(1)
		go func() {
			defer injector.Done()
			target := cfg.MaxOps / 2
			if target <= 0 {
				target = 50
			}
			for ctx.Err() == nil {
				h.mu.Lock()
				n := len(h.opLog)
				h.mu.Unlock()
				if n >= target {
					h.gate.RLock()
					err := h.topo.Bank().Mint(h.topo.SimAccount(0), "dollars", 7)
					h.gate.RUnlock()
					h.logf("soak: injected unaccounted 7-dollar credit (err=%v)", err)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	// The generator: one seeded PRNG draws the entire schedule in draw
	// order, so the op log is a pure function of (seed, op count).
	begin := time.Now()
	deadline := begin.Add(cfg.Duration)
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := 0
	for _, op := range ops {
		total += op.weight
	}
	generated := 0
	for ctx.Err() == nil {
		if cfg.MaxOps > 0 && generated >= cfg.MaxOps {
			break
		}
		if cfg.Duration > 0 && !time.Now().Before(deadline) {
			break
		}
		x := rng.Intn(total)
		var op *soakOp
		for i := range ops {
			if x < ops[i].weight {
				op = &ops[i]
				break
			}
			x -= ops[i].weight
		}
		p := rng.Intn(cfg.Principals)
		amt := 1 + rng.Int63n(100)
		h.mu.Lock()
		h.opLog = append(h.opLog, fmt.Sprintf("%s p=%d amt=%d", op.name, p, amt))
		h.mu.Unlock()
		select {
		case jobs <- job{op: op, p: p, amt: amt}:
			generated++
		case <-ctx.Done():
		}
	}
	close(jobs)
	workers.Wait()
	injector.Wait()

	// Stop the background loops, then run the mandatory final pass over
	// the fully quiesced world. (Waiting for the crash loop first keeps
	// the violation field single-writer from here on.)
	close(stopVerifier)
	<-verifierDone
	cancel()
	crasher.Wait()
	if h.violation == nil {
		if err := h.verifyPass(); err != nil {
			h.fail(err)
		}
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	rep := &Report{
		Seed:           cfg.Seed,
		Elapsed:        time.Since(begin),
		Ops:            h.ops,
		Errors:         h.errs,
		OpLog:          h.opLog,
		VerifyPasses:   h.verifyPasses,
		Crashes:        h.crashes,
		Recoveries:     h.recoveries,
		Failovers:      h.failovers,
		DowntimeErrors: h.downtimeErrs,
	}
	return rep, h.violation
}

// setup builds the topology, arms the fault injector, and starts the
// child bank.
func (h *harness) setup() error {
	topo, journalCleanup, err := newStormTopology(h.cfg)
	if err != nil {
		return err
	}
	h.topo = topo
	h.journalCleanup = journalCleanup
	if !h.cfg.NoChild {
		child, err := startChild(h)
		if err != nil {
			topo.Close()
			journalCleanup()
			return err
		}
		h.child = child
	}
	return nil
}

func (h *harness) teardown() {
	if h.child != nil {
		h.child.stop()
	}
	if h.topo != nil {
		h.topo.Close()
	}
	if h.journalCleanup != nil {
		h.journalCleanup()
	}
}

// opTable returns the weighted op mix. Order is fixed: the schedule
// drawn from the seed depends on it.
func (h *harness) opTable() []soakOp {
	ops := []soakOp{
		{name: "authorize", weight: 3, do: func(p int, _ int64) error { return h.topo.Authorize(p) }},
		{name: "transfer", weight: 3, do: h.gatedTransfer},
		{name: "deposit", weight: 2, do: h.gatedDeposit},
		{name: "clearing", weight: 2, do: h.opClearing},
		{name: "certified", weight: 1, do: h.opCertified},
		{name: "gateway", weight: 1, do: func(p int, _ int64) error { return h.topo.Gateway(p) }},
		{name: "login", weight: 1, do: func(p int, _ int64) error { return h.topo.Login(p) }},
		{name: "churn", weight: 1, do: func(p int, _ int64) error { return h.topo.ChurnToggle(p) }},
	}
	if h.child != nil {
		ops = append(ops, soakOp{name: "childbank", weight: 1, do: h.opChild})
	}
	return ops
}

func (h *harness) gatedTransfer(p int, amt int64) error {
	h.gate.RLock()
	defer h.gate.RUnlock()
	return h.topo.Transfer(p, amt)
}

func (h *harness) gatedDeposit(p int, amt int64) error {
	h.gate.RLock()
	defer h.gate.RUnlock()
	return h.topo.Deposit(p, amt)
}

// opClearing runs a cross-bank clearing deposit under a fresh trace and
// records the check number so the verifier can join the journals back
// to the trace.
func (h *harness) opClearing(p int, amt int64) error {
	h.gate.RLock()
	defer h.gate.RUnlock()
	tr := obs.NewTrace()
	ctx := obs.ContextWithTrace(context.Background(), tr)
	num, err := h.topo.ClearingDeposit(ctx, p, amt)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.numbers[num] = tr.TraceID
	h.mu.Unlock()
	return nil
}

func (h *harness) opCertified(p int, amt int64) error {
	h.gate.RLock()
	defer h.gate.RUnlock()
	tr := obs.NewTrace()
	ctx := obs.ContextWithTrace(context.Background(), tr)
	num, err := h.topo.CertifiedDeposit(ctx, p, amt)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.numbers[num] = tr.TraceID
	h.mu.Unlock()
	return nil
}

// opChild drives the child-process bank. Failures while the child is
// down are expected and counted, not returned.
func (h *harness) opChild(_ int, amt int64) error {
	err := h.child.deposit(amt)
	if err != nil {
		h.mu.Lock()
		h.downtimeErrs++
		h.mu.Unlock()
	}
	return nil
}

func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
