package soak

import (
	"os"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/faultpoint"
	"proxykit/internal/loadgen"
	"proxykit/internal/transport"
)

// newStormTopology stands up the multi-realm world the storm runs over:
// the full loadgen deployment (group, authz, end-server, gateway over
// real TCP) extended with a KDC, churn groups, a second bank for
// cross-bank clearing, and file journals on both banks so the verifier
// can re-walk them live. The collector's clearing hop gets a seeded
// fault injector and a fast deterministic retry policy.
func newStormTopology(cfg Config) (*loadgen.Topology, func(), error) {
	journalDir, err := os.MkdirTemp("", "soak-journal-")
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() { _ = os.RemoveAll(journalDir) }
	churn := cfg.Principals / 4
	if churn < 2 {
		churn = 2
	}
	topo, err := loadgen.NewTopologyWith(loadgen.Options{
		Principals:  cfg.Principals,
		JournalDir:  journalDir,
		SecondBank:  true,
		ChurnGroups: churn,
		KDC:         true,
	})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	inj := faultpoint.New(cfg.Seed, faultpoint.Rule{
		Method: accounting.HopMethod,
		Drop:   cfg.FaultDrop,
		Dup:    cfg.FaultDup,
	})
	topo.Bank().SetHopInjector(inj)
	topo.Bank().SetHopRetry(transport.RetryPolicy{
		MaxAttempts: 6,
		Seed:        cfg.Seed,
		Sleep:       func(time.Duration) {}, // injected faults, not real latency
	})
	return topo, cleanup, nil
}
