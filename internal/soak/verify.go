package soak

// The continuous verifier. Each pass quiesces money movement (taking
// the write side of the gate every money-moving op read-holds), then:
//
//  1. re-walks both banks' hash-chained journals from disk — any chain
//     break is a violation;
//  2. asserts exactly-once clearing: no check number credited twice on
//     one journal, and every accept-once rejection refers to a payment
//     that actually happened;
//  3. takes a money census of both banks and asserts conservation to
//     the dollar: customer money (balances + uncollected + holds)
//     plus clearing orphans equals exactly what provisioning minted.
//     An orphan is a hop that had effect at the drawee (payor debited,
//     clearing account credited) whose receipt the collector never
//     got despite retries — the drawee's journal shows a granted
//     clearing credit with no matching grant on the collector's;
//  4. joins tracked cross-bank clearings back to their traces: every
//     check the harness cleared must appear on the collector's journal
//     under the trace ID that carried it.
//
// The double-credit injection (Config.InjectDoubleCredit) breaks (3):
// minting outside provisioning raises customer money above the minted
// supply, and the next pass reports it.

import (
	"fmt"
	"strconv"
	"strings"

	"proxykit/internal/accounting"
	"proxykit/internal/audit"
)

// depositFact is one granted deposit distilled from a journal.
type depositFact struct {
	amount   int64
	currency string
	credit   string
	traceID  string
}

// journalFacts is the digest of one bank's journal.
type journalFacts struct {
	granted      map[string]depositFact
	grantedCount map[string]int
	rejects      []string
}

// walkJournal re-walks one journal's hash chain from disk.
func walkJournal(path string) (*journalFacts, error) {
	f := &journalFacts{
		granted:      map[string]depositFact{},
		grantedCount: map[string]int{},
	}
	_, err := audit.WalkFile(path, func(r audit.Record) {
		switch r.Kind {
		case audit.KindDeposit:
			if r.Outcome != audit.OutcomeGranted {
				return
			}
			num := r.Detail["number"]
			amt, _ := strconv.ParseInt(r.Detail["amount"], 10, 64)
			f.grantedCount[num]++
			f.granted[num] = depositFact{
				amount:   amt,
				currency: r.Detail["currency"],
				credit:   r.Detail["credit"],
				traceID:  r.TraceID,
			}
		case audit.KindAcceptOnceReject:
			f.rejects = append(f.rejects, r.Detail["number"])
		}
	})
	if err != nil {
		return nil, fmt.Errorf("audit chain broken in %s: %w", path, err)
	}
	return f, nil
}

// orphanedMoney sums, per currency, drawee-side clearing credits whose
// check number the collector never granted: money stranded in the
// drawee's clearing account by an exhausted hop retry.
func orphanedMoney(drawee, collector *journalFacts) map[string]int64 {
	out := map[string]int64{}
	for num, f := range drawee.granted {
		if strings.HasPrefix(f.credit, accounting.ClearingAccountPrefix) && collector.grantedCount[num] == 0 {
			out[f.currency] += f.amount
		}
	}
	return out
}

func (h *harness) verifyPass() error {
	h.gate.Lock()
	defer h.gate.Unlock()

	b1, err := walkJournal(h.topo.JournalPath("bank1"))
	if err != nil {
		return err
	}
	b2, err := walkJournal(h.topo.JournalPath("bank2"))
	if err != nil {
		return err
	}

	// Exactly-once: one credit per check number per journal, and every
	// accept-once rejection names a payment that exists.
	for name, facts := range map[string]*journalFacts{"bank1": b1, "bank2": b2} {
		for num, n := range facts.grantedCount {
			if n > 1 {
				return fmt.Errorf("exactly-once violated: %s credited check %q %d times", name, num, n)
			}
		}
		for _, num := range facts.rejects {
			if facts.grantedCount[num] == 0 {
				return fmt.Errorf("accept-once registry on %s rejected check %q it never honored", name, num)
			}
		}
	}

	// Conservation: customer money + orphans == minted, per currency.
	// Clearing-account balances back collector-side credits already
	// counted, so they are excluded — except the orphaned slice, which
	// nothing else counts.
	orphans := orphanedMoney(b2, b1)
	for cur, amt := range orphanedMoney(b1, b2) {
		orphans[cur] += amt
	}
	t1 := h.topo.Bank().Totals()
	t2 := h.topo.SecondBank().Totals()
	for cur, minted := range h.topo.MintedSupply() {
		customer := t1.Balances[cur] + t1.Uncollected[cur] + t1.Held[cur] +
			t2.Balances[cur] + t2.Uncollected[cur] + t2.Held[cur]
		if customer+orphans[cur] != minted {
			return fmt.Errorf("conservation violated: %s: customer money %d + orphaned %d = %d, minted %d (diff %+d)",
				cur, customer, orphans[cur], customer+orphans[cur], minted, customer+orphans[cur]-minted)
		}
	}

	// Trace completeness: every cross-bank clearing the harness saw
	// succeed is on the collector's journal under its trace.
	h.mu.Lock()
	numbers := make(map[string]string, len(h.numbers))
	for num, tr := range h.numbers {
		numbers[num] = tr
	}
	h.mu.Unlock()
	for num, want := range numbers {
		f, ok := b1.granted[num]
		if !ok {
			return fmt.Errorf("trace incomplete: cleared check %q missing from collector journal", num)
		}
		if f.traceID != want {
			return fmt.Errorf("trace incomplete: check %q journaled under trace %q, cleared under %q",
				num, f.traceID, want)
		}
	}

	h.mu.Lock()
	h.verifyPasses++
	passes := h.verifyPasses
	ops := 0
	for _, n := range h.ops {
		ops += n
	}
	h.mu.Unlock()
	h.logf("soak: verify pass %d clean (%d ops done, %d clearings tracked, %d orphaned dollars)",
		passes, ops, len(numbers), orphans["dollars"])
	return nil
}
