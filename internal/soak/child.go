package soak

// The child bank: a ledger-backed accounting daemon running as a real
// OS process that the harness SIGKILLs and restarts on a timer, the
// crash-recovery discipline from internal/chaos generalized into a
// continuous cycle. Its economy (alice pays bob numbered checks) is
// disjoint from the main topology's, so the parent can audit it to the
// dollar at every crash: recover the WAL on a copy, check conservation
// and the journal chain, re-present the last paid check and demand
// ErrDuplicateCheck — then restart the child and demand the same
// refusal over RPC.
//
// The child is this same binary re-exec'd: MaybeRunChild intercepts
// processes launched with SOAK_CHILD_DIR set (wired into the soak
// package's TestMain and proxyctl's main).

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/audit"
	"proxykit/internal/chaos"
	"proxykit/internal/ledger"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
	"proxykit/internal/repl"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

const (
	childRealm = "SOAK-CHILD.ORG"
	childMint  = 1_000_000_000_000
	// childEnvDir and childEnvAddr gate MaybeRunChild.
	childEnvDir  = "SOAK_CHILD_DIR"
	childEnvAddr = "SOAK_CHILD_ADDR"
)

// childWorld is the child bank's economy, reconstructible from fixed
// identity seeds on both sides of the process boundary: recovery needs
// the same bank identity the WAL records were written under.
type childWorld struct {
	dir   *pubkey.Directory
	bank  *accounting.Server
	alice *pubkey.Identity
	bob   *pubkey.Identity
}

func newChildWorld() (*childWorld, error) {
	w := &childWorld{dir: pubkey.NewDirectory()}
	seeded := func(name string, fill byte) (*pubkey.Identity, error) {
		ident, err := pubkey.IdentityFromSeed(principal.New(name, childRealm), bytes.Repeat([]byte{fill}, 32))
		if err != nil {
			return nil, err
		}
		w.dir.RegisterIdentity(ident)
		return ident, nil
	}
	var err error
	if w.alice, err = seeded("alice", 0x5A); err != nil {
		return nil, err
	}
	if w.bob, err = seeded("bob", 0x5B); err != nil {
		return nil, err
	}
	bankIdent, err := seeded("bank", 0x5C)
	if err != nil {
		return nil, err
	}
	w.bank = accounting.NewServer(bankIdent, w.dir.Resolver(), nil)
	return w, nil
}

// open recovers (or freshly provisions) the bank from dir's ledger and
// journal. A torn journal tail — the expected wreckage of a SIGKILL
// mid-append — is repaired before replay; deeper damage is an error.
func (w *childWorld) open(dir string) (*ledger.Recovery, error) {
	journalPath := filepath.Join(dir, "audit.jsonl")
	if _, err := audit.RepairTornTail(journalPath); err != nil {
		return nil, err
	}
	rec, err := w.bank.OpenLedger(ledger.Options{
		Dir:   filepath.Join(dir, "ledger"),
		Fsync: ledger.FsyncAlways,
	})
	if err != nil {
		return nil, err
	}
	j, err := audit.New(audit.Options{Path: journalPath})
	if err != nil {
		return nil, err
	}
	w.bank.SetJournal(j)
	if rec.SnapshotSeq == 0 && rec.Replayed() == 0 {
		// First boot, not a recovery: provision the economy. A crashed
		// child always leaves WAL records behind (provisioning itself
		// is ledgered), so this never re-mints after a crash.
		if err := w.bank.CreateAccount("alice", w.alice.ID); err != nil {
			return nil, err
		}
		if err := w.bank.CreateAccount("bob", w.bob.ID); err != nil {
			return nil, err
		}
		if err := w.bank.Mint("alice", "dollars", childMint); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// writeNumbered writes and endorses check number num, alice -> bob.
func (w *childWorld) writeNumbered(num string, amount int64) (*accounting.Check, error) {
	c, err := accounting.WriteCheck(accounting.WriteCheckParams{
		Payor:    w.alice,
		Bank:     w.bank.ID,
		Account:  "alice",
		Payee:    w.bob.ID,
		Currency: "dollars",
		Amount:   amount,
		Lifetime: time.Hour,
		Number:   num,
	})
	if err != nil {
		return nil, err
	}
	return c.Endorse(w.bob, w.bank.ID, w.bank.ID, w.bank.Global("bob"), false, nil)
}

// MaybeRunChild turns this process into the soak child bank when
// SOAK_CHILD_DIR is set, never returning. Call it first thing from
// main() (proxyctl) or TestMain (test binaries) so a re-exec'd child
// skips the parent's work entirely. Returns false in the parent.
func MaybeRunChild() bool {
	dir := os.Getenv(childEnvDir)
	if dir == "" {
		return false
	}
	if err := runChild(dir, os.Getenv(childEnvAddr)); err != nil {
		fmt.Fprintln(os.Stderr, "soak child:", err)
		os.Exit(1)
	}
	select {} // serve until SIGKILLed
}

func runChild(dir, addr string) error {
	w, err := newChildWorld()
	if err != nil {
		return err
	}
	if _, err := w.open(dir); err != nil {
		return err
	}
	w.bank.StartSnapshotter(2 * time.Second)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := svc.NewAcctService(w.bank, w.dir.Resolver(), nil).Mux()
	// The child always ships its WAL (asynchronously): the failover
	// scenario attaches a parent-side standby to these repl.* methods
	// and promotes it after each SIGKILL.
	node, err := repl.NewNode(repl.Config{SM: w.bank, Dir: filepath.Join(dir, "ledger")})
	if err != nil {
		return err
	}
	node.Mount(mux)
	transport.NewTCPServer(l, mux)
	// The ready file is the recovery handshake: state replayed, socket
	// listening. The parent removes it before each restart.
	return os.WriteFile(filepath.Join(dir, "ready"), []byte("ok\n"), 0o600)
}

// childCtl is the parent-side controller for the child bank.
type childCtl struct {
	h     *harness
	dir   string
	addr  string
	world *childWorld // for check-writing and offline audits; no ledger attached
	proc  *chaos.Proc
	bankC *svc.AcctClient

	seq      atomic.Int64
	lastPaid atomic.Value // string: highest check number known paid

	standby *standbyCtl
}

// standbyCtl is the in-process hot standby of the child bank used by
// the failover scenario: a full replica (own ledger, own repl node)
// tailing the child's WAL over TCP, promoted after each SIGKILL and
// discarded once audited.
type standbyCtl struct {
	dir   string
	world *childWorld
	conn  *transport.TCPClient
	node  *repl.Node
}

func startChild(h *harness) (*childCtl, error) {
	dir, err := os.MkdirTemp("", "soak-child-")
	if err != nil {
		return nil, err
	}
	world, err := newChildWorld()
	if err != nil {
		return nil, err
	}
	// Pre-pick a fixed port so the auto-redialing client and every
	// restarted child agree on the address.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := l.Addr().String()
	_ = l.Close()
	c := &childCtl{h: h, dir: dir, addr: addr, world: world}
	if err := c.spawn(); err != nil {
		return nil, err
	}
	conn, err := transport.DialTCP(addr, 5*time.Second)
	if err != nil {
		c.stop()
		return nil, err
	}
	c.bankC = svc.NewAcctClient(conn, world.bob, nil)
	if h.cfg.Failover {
		if err := c.attachStandby(); err != nil {
			c.stop()
			return nil, err
		}
	}
	return c, nil
}

// attachStandby starts a fresh hot standby replicating from the child.
// Its ledger starts empty: the whole economy — provisioning included —
// arrives through the shipping stream (or a snapshot install when the
// child's snapshotter has already truncated the WAL).
func (c *childCtl) attachStandby() error {
	dir, err := os.MkdirTemp("", "soak-standby-")
	if err != nil {
		return err
	}
	world, err := newChildWorld()
	if err != nil {
		os.RemoveAll(dir)
		return err
	}
	if _, err := world.bank.OpenLedger(ledger.Options{Dir: filepath.Join(dir, "ledger"), Fsync: ledger.FsyncOff}); err != nil {
		os.RemoveAll(dir)
		return err
	}
	conn, err := transport.DialTCP(c.addr, 5*time.Second)
	if err != nil {
		world.bank.CloseLedger()
		os.RemoveAll(dir)
		return err
	}
	node, err := repl.NewNode(repl.Config{
		SM:        world.bank,
		Dir:       filepath.Join(dir, "ledger"),
		Standby:   true,
		Source:    conn,
		PullWait:  100 * time.Millisecond,
		RetryWait: 50 * time.Millisecond,
	})
	if err != nil {
		conn.Close()
		world.bank.CloseLedger()
		os.RemoveAll(dir)
		return err
	}
	c.standby = &standbyCtl{dir: dir, world: world, conn: conn, node: node}
	return nil
}

func (c *childCtl) detachStandby() {
	s := c.standby
	if s == nil {
		return
	}
	c.standby = nil
	s.node.Close()
	s.conn.Close()
	s.world.bank.CloseLedger()
	_ = os.RemoveAll(s.dir)
}

// awaitStandbyCaughtUp blocks until the standby's WAL position reaches
// the child's position as of the call. Load keeps the child's position
// moving, but anything acknowledged before this snapshot — the last
// paid check in particular — is on the standby once it returns.
func (c *childCtl) awaitStandbyCaughtUp(timeout time.Duration) error {
	conn, err := transport.DialTCP(c.addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	st, err := repl.NewClient(conn).Status()
	if err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	for c.standby.node.Status().LastSeq < st.LastSeq {
		if time.Now().After(deadline) {
			return fmt.Errorf("standby stuck at seq %d, child at %d after %s",
				c.standby.node.Status().LastSeq, st.LastSeq, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}

// failoverAudit promotes the standby over the dead child and audits the
// new primary: the read-only gate held until promotion, the fencing
// term advanced, the books conserve, the last acknowledged check is
// refused (accept-once survives failover), and fresh writes clear.
func (c *childCtl) failoverAudit(cycle int, refuseNum string) error {
	s := c.standby
	gateCheck, err := s.world.writeNumbered(fmt.Sprintf("failover-%06d-gate", cycle), 1)
	if err != nil {
		return err
	}
	if _, err := s.world.bank.DepositCheck(gateCheck, []principal.ID{s.world.bob.ID}, "bob"); !errors.Is(err, repl.ErrNotPrimary) {
		return fmt.Errorf("standby admitted a local mutation before promotion (err=%v)", err)
	}
	oldTerm := s.node.Term()
	newTerm, err := s.node.Promote()
	if err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	if newTerm <= oldTerm {
		return fmt.Errorf("promotion did not advance the term: %d -> %d", oldTerm, newTerm)
	}
	t := s.world.bank.Totals()
	if got := t.Balances["dollars"] + t.Uncollected["dollars"] + t.Held["dollars"]; got != childMint {
		return fmt.Errorf("conservation violated on promoted standby: books hold %d, minted %d", got, childMint)
	}
	if refuseNum != "" {
		endorsed, err := s.world.writeNumbered(refuseNum, 1)
		if err != nil {
			return err
		}
		if _, err := s.world.bank.DepositCheck(endorsed, []principal.ID{s.world.bob.ID}, "bob"); !errors.Is(err, accounting.ErrDuplicateCheck) {
			return fmt.Errorf("promoted standby honored already-paid check %q (err=%v)", refuseNum, err)
		}
	}
	fresh, err := s.world.writeNumbered(fmt.Sprintf("failover-%06d-fresh", cycle), 1)
	if err != nil {
		return err
	}
	if _, err := s.world.bank.DepositCheck(fresh, []principal.ID{s.world.bob.ID}, "bob"); err != nil {
		return fmt.Errorf("promoted standby refused a fresh deposit: %w", err)
	}
	return nil
}

func (c *childCtl) readyPath() string { return filepath.Join(c.dir, "ready") }

func (c *childCtl) spawn() error {
	proc, err := chaos.StartProc(os.Args[0], c.h.cfg.ChildArgs, []string{
		childEnvDir + "=" + c.dir,
		childEnvAddr + "=" + c.addr,
	})
	if err != nil {
		return err
	}
	c.proc = proc
	if err := chaos.AwaitFile(c.readyPath(), 15*time.Second); err != nil {
		proc.Stop()
		return err
	}
	return nil
}

func (c *childCtl) stop() {
	c.detachStandby()
	if c.proc != nil {
		c.proc.Stop()
	}
	_ = os.RemoveAll(c.dir)
}

// deposit pays bob the next numbered check over RPC. A duplicate
// rejection is a lost acknowledgment for a payment that happened —
// §7.7's accept-once-as-ack — so it counts as success.
func (c *childCtl) deposit(amount int64) error {
	num := fmt.Sprintf("soak-%06d", c.seq.Add(1))
	endorsed, err := c.world.writeNumbered(num, amount)
	if err != nil {
		return err
	}
	_, err = c.bankC.DepositCheck(endorsed, "bob")
	if err != nil && !strings.Contains(err.Error(), "duplicate") {
		return err
	}
	c.lastPaid.Store(num)
	return nil
}

// crashOnce is one full SIGKILL/audit/recover cycle. Any assertion
// failure is an invariant violation and ends the run.
func (c *childCtl) crashOnce() error {
	// The failover scenario pins the accept-once target before the kill:
	// the last check known paid is on the standby once catch-up returns,
	// so the promoted replica must refuse it later.
	var refuseNum string
	if c.standby != nil {
		refuseNum, _ = c.lastPaid.Load().(string)
		if err := c.awaitStandbyCaughtUp(10 * time.Second); err != nil {
			return fmt.Errorf("standby catch-up before failover: %w", err)
		}
	}
	if err := c.proc.Kill(); err != nil {
		return err
	}
	c.h.mu.Lock()
	c.h.crashes++
	crash := c.h.crashes
	c.h.mu.Unlock()
	c.h.logf("soak: crash cycle %d: child bank SIGKILLed", crash)

	if c.standby != nil {
		if err := c.failoverAudit(crash, refuseNum); err != nil {
			c.detachStandby()
			return fmt.Errorf("failover audit (cycle %d): %w", crash, err)
		}
		c.detachStandby()
		c.h.mu.Lock()
		c.h.failovers++
		c.h.mu.Unlock()
		c.h.logf("soak: crash cycle %d: standby promoted, audited, and retired", crash)
	}

	if err := c.auditOffline(); err != nil {
		return fmt.Errorf("post-crash audit (cycle %d): %w", crash, err)
	}

	if err := os.Remove(c.readyPath()); err != nil {
		return err
	}
	if err := c.spawn(); err != nil {
		return fmt.Errorf("restart (cycle %d): %w", crash, err)
	}

	// The recovered daemon must refuse the last paid number over RPC.
	if num, ok := c.lastPaid.Load().(string); ok {
		endorsed, err := c.world.writeNumbered(num, 1)
		if err != nil {
			return err
		}
		var last error
		for attempt := 0; attempt < 5; attempt++ {
			_, err := c.bankC.DepositCheck(endorsed, "bob")
			if err == nil {
				return fmt.Errorf("recovered child bank honored already-paid check %q", num)
			}
			if strings.Contains(err.Error(), "duplicate") {
				last = nil
				break
			}
			last = err
			time.Sleep(100 * time.Millisecond)
		}
		if last != nil {
			return fmt.Errorf("re-presenting %q to recovered child bank: %w", num, last)
		}
	}
	if c.h.cfg.Failover {
		if err := c.attachStandby(); err != nil {
			return fmt.Errorf("re-attach standby (cycle %d): %w", crash, err)
		}
	}
	c.h.mu.Lock()
	c.h.recoveries++
	c.h.mu.Unlock()
	c.h.logf("soak: crash cycle %d: child bank recovered and refused replayed check", crash)
	return nil
}

// auditOffline replays the dead child's WAL on a copy and audits the
// wreckage: books balance to the dollar, the journal chain holds (torn
// tail at most), and the last paid check is refused on repl. The copy
// keeps the audit from perturbing the state the restarted child will
// recover from.
func (c *childCtl) auditOffline() error {
	tmp, err := os.MkdirTemp("", "soak-audit-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	if err := copyDir(filepath.Join(c.dir, "ledger"), filepath.Join(tmp, "ledger")); err != nil {
		return err
	}
	if err := copyFile(filepath.Join(c.dir, "audit.jsonl"), filepath.Join(tmp, "audit.jsonl")); err != nil && !os.IsNotExist(err) {
		return err
	}

	w, err := newChildWorld()
	if err != nil {
		return err
	}
	if _, err := w.open(tmp); err != nil {
		return fmt.Errorf("recovery replay failed: %w", err)
	}
	defer w.bank.CloseLedger()

	// Conservation: alice + bob must still hold exactly the mint.
	t := w.bank.Totals()
	if got := t.Balances["dollars"] + t.Uncollected["dollars"] + t.Held["dollars"]; got != childMint {
		return fmt.Errorf("conservation violated in child bank: recovered books hold %d, minted %d", got, childMint)
	}

	// The journal chain verified during open (torn tail repaired). The
	// recovered books must refuse the last paid number.
	if num, ok := c.lastPaid.Load().(string); ok {
		endorsed, err := w.writeNumbered(num, 1)
		if err != nil {
			return err
		}
		if _, err := w.bank.DepositCheck(endorsed, []principal.ID{w.bob.ID}, "bob"); !errors.Is(err, accounting.ErrDuplicateCheck) {
			return fmt.Errorf("recovered WAL honored already-paid check %q (err=%v)", num, err)
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o700); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if err := copyFile(filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())); err != nil {
			return err
		}
	}
	return nil
}
