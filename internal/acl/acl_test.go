package acl

import (
	"errors"
	"strings"
	"testing"

	"proxykit/internal/principal"
	"proxykit/internal/restrict"
)

var (
	alice = principal.New("alice", "ISI.EDU")
	bob   = principal.New("bob", "ISI.EDU")
	host1 = principal.New("host/wks1", "ISI.EDU")
	staff = principal.NewGlobal(principal.New("groups", "ISI.EDU"), "staff")
	admin = principal.NewGlobal(principal.New("groups", "ISI.EDU"), "admin")
)

func TestPrincipalEntryMatch(t *testing.T) {
	a := New(PrincipalEntry(alice, "read", "write"))

	tests := []struct {
		name string
		q    Query
		ok   bool
	}{
		{"allowed op", Query{Op: "read", Identities: []principal.ID{alice}}, true},
		{"second op", Query{Op: "write", Identities: []principal.ID{alice}}, true},
		{"op not listed", Query{Op: "delete", Identities: []principal.ID{alice}}, false},
		{"wrong principal", Query{Op: "read", Identities: []principal.ID{bob}}, false},
		{"no identities", Query{Op: "read"}, false},
		{"extra identities fine", Query{Op: "read", Identities: []principal.ID{bob, alice}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := a.Match(tt.q)
			if tt.ok != (err == nil) {
				t.Fatalf("ok=%v err=%v", tt.ok, err)
			}
			if err != nil && !errors.Is(err, ErrDenied) {
				t.Fatalf("err = %v", err)
			}
		})
	}
}

func TestWildcardAndEmptyOps(t *testing.T) {
	a := New(
		Entry{Subject: Subject{Principals: principal.NewCompound(alice)}, Ops: []string{AllOps}},
		Entry{Subject: Subject{Principals: principal.NewCompound(bob)}}, // empty = all
	)
	for _, q := range []Query{
		{Op: "anything", Identities: []principal.ID{alice}},
		{Op: "anything", Identities: []principal.ID{bob}},
	} {
		if _, err := a.Match(q); err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
	}
}

func TestCompoundPrincipalConcurrence(t *testing.T) {
	// §3.5: require both user and host credentials.
	e := Entry{
		Subject: Subject{Principals: principal.NewCompound(alice, host1)},
		Ops:     []string{"launch"},
	}
	a := New(e)
	if _, err := a.Match(Query{Op: "launch", Identities: []principal.ID{alice}}); err == nil {
		t.Fatal("user alone satisfied compound entry")
	}
	if _, err := a.Match(Query{Op: "launch", Identities: []principal.ID{alice, host1}}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupEntry(t *testing.T) {
	a := New(GroupEntry(staff, "read"))
	groups := map[principal.Global]bool{staff: true}
	if _, err := a.Match(Query{Op: "read", Identities: []principal.ID{bob}, Groups: groups}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Match(Query{Op: "read", Identities: []principal.ID{bob}}); err == nil {
		t.Fatal("matched without group assertion")
	}
}

func TestMixedSubjectPrincipalPlusGroup(t *testing.T) {
	// Separation of privilege: a named user AND an asserted group.
	e := Entry{
		Subject: Subject{
			Principals: principal.NewCompound(alice),
			Groups:     []principal.Global{admin},
		},
		Ops: []string{"shutdown"},
	}
	a := New(e)
	q := Query{Op: "shutdown", Identities: []principal.ID{alice}}
	if _, err := a.Match(q); err == nil {
		t.Fatal("matched without group")
	}
	q.Groups = map[principal.Global]bool{admin: true}
	if _, err := a.Match(q); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySubjectNeverMatches(t *testing.T) {
	a := New(Entry{Ops: []string{AllOps}})
	if _, err := a.Match(Query{Op: "read", Identities: []principal.ID{alice}}); err == nil {
		t.Fatal("empty subject matched")
	}
}

func TestFirstMatchWinsAndRestrictionsReturned(t *testing.T) {
	narrow := restrict.Set{restrict.Quota{Currency: "pages", Limit: 5}}
	a := New(
		Entry{Subject: Subject{Principals: principal.NewCompound(alice)}, Ops: []string{"print"}, Restrictions: narrow},
		PrincipalEntry(alice, "print"),
	)
	e, err := a.Match(Query{Op: "print", Identities: []principal.ID{alice}})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Restrictions) != 1 {
		t.Fatalf("restrictions = %v", e.Restrictions)
	}
}

func TestAddAndEntriesCopy(t *testing.T) {
	a := New()
	a.Add(PrincipalEntry(alice, "read"))
	es := a.Entries()
	if len(es) != 1 {
		t.Fatalf("entries = %v", es)
	}
	es[0] = PrincipalEntry(bob, "read") // mutating the copy must not affect the ACL
	if _, err := a.Match(Query{Op: "read", Identities: []principal.ID{alice}}); err != nil {
		t.Fatal("Entries() returned aliased slice")
	}
}

func TestStrings(t *testing.T) {
	e := Entry{
		Subject:      Subject{Principals: principal.NewCompound(alice), Groups: []principal.Global{staff}},
		Ops:          []string{"read"},
		Restrictions: restrict.Set{restrict.Quota{Currency: "p", Limit: 1}},
	}
	s := e.String()
	for _, want := range []string{"alice@ISI.EDU", "staff%groups@ISI.EDU", "read", "quota"} {
		if !strings.Contains(s, want) {
			t.Fatalf("entry string %q missing %q", s, want)
		}
	}
	if got := (Subject{}).String(); got != "<empty>" {
		t.Fatal(got)
	}
	a := New(e, PrincipalEntry(bob))
	if lines := strings.Split(a.String(), "\n"); len(lines) != 2 {
		t.Fatalf("acl string = %q", a.String())
	}
}
