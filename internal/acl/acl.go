// Package acl implements the access-control-list abstraction of §3.5:
// entries whose subjects may be principals, compound principals
// (requiring concurrence), or group names maintained by group servers,
// each with a list of permitted operations and an associated restriction
// set.
//
// "Since the same access-control-list abstraction should be used on the
// authorization servers as on other servers, access-control-list entries
// can support an associated list of restrictions. On an authorization
// server, the restrictions field of a matching access-control-list entry
// can be copied to the restrictions field of the resulting proxy."
package acl

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"proxykit/internal/principal"
	"proxykit/internal/restrict"
)

// ErrDenied is returned when no entry authorizes a request.
var ErrDenied = errors.New("acl: no matching entry")

// AllOps is the wildcard operation.
const AllOps = "*"

// Subject identifies who an entry matches. All listed principals must be
// authenticated concurrently (compound principals, §3.5) and all listed
// groups must be asserted via verified group proxies. At least one of
// the two lists must be non-empty.
type Subject struct {
	// Principals that must all be present.
	Principals principal.Compound
	// Groups whose membership must all be verified.
	Groups []principal.Global
}

// String renders the subject for display.
func (s Subject) String() string {
	parts := make([]string, 0, len(s.Principals)+len(s.Groups))
	for _, p := range s.Principals {
		parts = append(parts, p.String())
	}
	for _, g := range s.Groups {
		parts = append(parts, g.String())
	}
	if len(parts) == 0 {
		return "<empty>"
	}
	return strings.Join(parts, "+")
}

// matches reports whether the presented identities and verified groups
// satisfy the subject.
func (s Subject) matches(identities []principal.ID, groups map[principal.Global]bool) bool {
	if len(s.Principals) == 0 && len(s.Groups) == 0 {
		return false
	}
	if !s.Principals.SatisfiedBy(identities) {
		return false
	}
	for _, g := range s.Groups {
		if !groups[g] {
			return false
		}
	}
	return true
}

// Entry is one ACL line: a subject, the operations it permits, and
// restrictions associated with the grant.
type Entry struct {
	// Subject the entry matches.
	Subject Subject
	// Ops permitted; contains AllOps or is empty for all operations.
	Ops []string
	// Restrictions associated with the entry. On an end-server they are
	// evaluated against the request; on an authorization server they are
	// copied into issued proxies (§3.5).
	Restrictions restrict.Set
}

// permits reports whether the entry covers op.
func (e Entry) permits(op string) bool {
	if len(e.Ops) == 0 {
		return true
	}
	for _, o := range e.Ops {
		if o == AllOps || o == op {
			return true
		}
	}
	return false
}

// String renders the entry.
func (e Entry) String() string {
	ops := AllOps
	if len(e.Ops) > 0 {
		ops = strings.Join(e.Ops, ",")
	}
	if len(e.Restrictions) == 0 {
		return fmt.Sprintf("%s: %s", e.Subject, ops)
	}
	return fmt.Sprintf("%s: %s [%s]", e.Subject, ops, e.Restrictions)
}

// ACL is an ordered list of entries; the first match wins. The zero
// value is an empty (deny-all) list.
type ACL struct {
	mu      sync.RWMutex
	entries []Entry
}

// New returns an ACL with the given entries.
func New(entries ...Entry) *ACL {
	a := &ACL{}
	a.entries = append(a.entries, entries...)
	return a
}

// Add appends an entry.
func (a *ACL) Add(e Entry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries = append(a.entries, e)
}

// Entries returns a copy of the entries.
func (a *ACL) Entries() []Entry {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]Entry, len(a.entries))
	copy(out, a.entries)
	return out
}

// Query describes one authorization question.
type Query struct {
	// Op is the requested operation.
	Op string
	// Identities are the authenticated principals acting (for a proxy
	// presentation: the grantor; compound requirements may need more).
	Identities []principal.ID
	// Groups are memberships verified via group proxies.
	Groups map[principal.Global]bool
}

// Match returns the first entry permitting the query, or ErrDenied.
func (a *ACL) Match(q Query) (Entry, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for _, e := range a.entries {
		if e.permits(q.Op) && e.Subject.matches(q.Identities, q.Groups) {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("%w: op %q for %v", ErrDenied, q.Op, q.Identities)
}

// String renders the whole list.
func (a *ACL) String() string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	parts := make([]string, len(a.entries))
	for i, e := range a.entries {
		parts[i] = e.String()
	}
	return strings.Join(parts, "\n")
}

// PrincipalEntry is a convenience constructor for the common
// single-principal entry.
func PrincipalEntry(p principal.ID, ops ...string) Entry {
	return Entry{Subject: Subject{Principals: principal.NewCompound(p)}, Ops: ops}
}

// GroupEntry is a convenience constructor for a single-group entry.
func GroupEntry(g principal.Global, ops ...string) Entry {
	return Entry{Subject: Subject{Groups: []principal.Global{g}}, Ops: ops}
}
