package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"proxykit/internal/faultpoint"
	"proxykit/internal/obs"
	"proxykit/internal/wire"
)

// DefaultServerWorkers bounds concurrent request handling per TCPServer
// when no explicit limit is configured. When every worker is busy the
// per-connection read loops block, which is the transport's natural
// backpressure: frames queue in the kernel, not in unbounded goroutines.
const DefaultServerWorkers = 64

// TCPServer serves a Mux on a listener. Each connection gets a read
// loop; every decoded frame is dispatched to a server-wide bounded
// worker pool, so one slow handler no longer stalls its connection —
// responses carry the request ID and may return out of order. Close
// stops the listener and waits for read loops and in-flight workers.
type TCPServer struct {
	mux *Mux
	l   net.Listener
	sem chan struct{} // worker slots

	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
	injector *faultpoint.Injector
	wg       sync.WaitGroup
}

// NewTCPServer starts serving mux on l with DefaultServerWorkers.
func NewTCPServer(l net.Listener, mux *Mux) *TCPServer {
	return NewTCPServerWorkers(l, mux, 0)
}

// NewTCPServerWorkers starts serving mux on l with a bounded handler
// pool of the given size; workers <= 0 selects DefaultServerWorkers.
func NewTCPServerWorkers(l net.Listener, mux *Mux, workers int) *TCPServer {
	if workers <= 0 {
		workers = DefaultServerWorkers
	}
	s := &TCPServer{
		mux:   mux,
		l:     l,
		sem:   make(chan struct{}, workers),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *TCPServer) Addr() net.Addr { return s.l.Addr() }

// SetInjector installs a fault injector on the server side of the
// transport (the daemons' -fault-spec flag): matching requests can be
// dropped (the client times out), duplicated (the handler runs twice,
// one response), delayed, or failed with an injected remote error.
// Injection decisions and delays run inside the dispatched worker, not
// the connection read loop, so an injected delay stalls one request,
// not the whole connection. nil removes injection.
func (s *TCPServer) SetInjector(inj *faultpoint.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.injector = inj
}

func (s *TCPServer) getInjector() *faultpoint.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injector
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// connWriter serializes response frames onto one connection; workers
// finish in any order, so each write needs the frame lock.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func (w *connWriter) write(frame []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return wire.WriteFrame(w.conn, frame)
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	cw := &connWriter{conn: conn}
	// decodeRequest copies every field out of the frame, so the read
	// loop can recycle one scratch buffer across frames instead of
	// allocating per request.
	var scratch []byte
	for {
		req, next, err := wire.ReadFrameReuse(conn, scratch)
		if err != nil {
			return
		}
		scratch = next
		id, method, trace, body, err := decodeRequest(req)
		if err != nil {
			mServerMalformed.Inc()
			return // malformed peer; drop the connection
		}
		waited := time.Now()
		s.sem <- struct{}{} // bounded pool: block the read loop when saturated
		mServerWorkerWait.Observe(time.Since(waited).Seconds())
		s.wg.Add(1)
		go func() {
			defer func() {
				<-s.sem
				s.wg.Done()
			}()
			mServerWorkersBusy.Inc()
			defer mServerWorkersBusy.Dec()
			s.serveFrame(cw, id, method, trace, body)
		}()
	}
}

// serveFrame handles one dispatched request frame inside a pool worker:
// fault-injection decisions, the handler itself, and the response write.
func (s *TCPServer) serveFrame(cw *connWriter, id uint64, method, trace string, body []byte) {
	respond := true
	if inj := s.getInjector(); inj != nil {
		d := inj.Decide(method)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		switch d.Action {
		case faultpoint.ActPartition, faultpoint.ActDropRequest:
			// Swallow the request; the client's deadline fires.
			return
		case faultpoint.ActError:
			// The client-side decoder wraps this as a RemoteError.
			e := encodeResponse(id, nil, errors.New(faultpoint.RemoteErrMsg))
			_ = cw.write(e.Bytes())
			e.Release()
			return
		case faultpoint.ActDropResponse:
			// The handler runs; the reply is lost.
			respond = false
		case faultpoint.ActDuplicate:
			// Duplicate delivery: the handler runs an extra time,
			// as if the network replayed the request frame.
			s.handleOne(trace, method, body)
		}
	}
	resp, herr := s.handleOne(trace, method, body)
	if !respond {
		return
	}
	e := encodeResponse(id, resp, herr)
	_ = cw.write(e.Bytes())
	e.Release()
}

// handleOne dispatches one decoded request with metrics and a server
// span.
func (s *TCPServer) handleOne(trace, method string, body []byte) ([]byte, error) {
	tr := obs.ParseTrace(trace)
	ctx := obs.ContextWithTrace(context.Background(), tr)
	mServerInflight.Inc()
	start := time.Now()
	resp, herr := dispatchSafely(ctx, s.mux, method, body)
	dur := time.Since(start)
	mServerInflight.Dec()
	mServerRequests.With(method).Inc()
	mServerLatency.With(method).Observe(dur.Seconds())
	span := obs.Span{Trace: tr, Kind: "server", Method: method, Start: start, Duration: dur}
	if herr != nil {
		mServerErrors.With(method).Inc()
		span.Err = herr.Error()
	}
	obs.Spans.Record(span)
	obs.DefaultSLO.Observe(method, dur, tr.TraceID)
	return resp, herr
}

// Close stops accepting, closes active connections, and waits for
// read loops and worker goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.l.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// dispatchSafely converts a handler panic into an error so one bad
// request cannot take the whole server down.
func dispatchSafely(ctx context.Context, m *Mux, method string, body []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("transport: handler panic in %s: %v", method, r)
		}
	}()
	return m.Dispatch(ctx, method, body)
}

// CallTimeoutError is the timeout-shaped error a multiplexed call
// returns when its per-call deadline fires. It satisfies net.Error so
// existing timeout classification (metrics, retry policies) applies.
type CallTimeoutError struct {
	// Method is the RPC that timed out.
	Method string
	// After is the deadline that elapsed.
	After time.Duration
}

// Error implements error.
func (e *CallTimeoutError) Error() string {
	return fmt.Sprintf("transport: call %s timed out after %v", e.Method, e.After)
}

// Timeout marks the error as a timeout (net.Error).
func (e *CallTimeoutError) Timeout() bool { return true }

// Temporary marks the error as retryable (net.Error).
func (e *CallTimeoutError) Temporary() bool { return true }

var _ net.Error = (*CallTimeoutError)(nil)

// clientConn is one multiplexed connection: a frame writer guarded by
// its own mutex (never held across a response wait) and a reader
// goroutine that demultiplexes response frames to pending calls by
// request ID.
type clientConn struct {
	conn net.Conn
	wmu  sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint64]chan []byte // request ID -> buffered response slot
	dead    bool
	err     error // reader exit cause, set when dead
}

func newClientConn(conn net.Conn) *clientConn {
	cc := &clientConn{conn: conn, pending: make(map[uint64]chan []byte)}
	go cc.readLoop()
	return cc
}

// readLoop demultiplexes response frames until the connection fails,
// then fails every pending call with the read error.
func (cc *clientConn) readLoop() {
	for {
		frame, err := wire.ReadFrame(cc.conn)
		if err != nil {
			cc.fail(fmt.Errorf("transport: connection lost: %w", err))
			return
		}
		id, rest, err := splitResponseID(frame)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[id]
		if ok {
			delete(cc.pending, id)
		}
		cc.mu.Unlock()
		if !ok {
			// A response whose call already timed out (or an injected
			// duplicate): discard without disturbing other calls.
			mClientStaleResponses.Inc()
			continue
		}
		ch <- rest // buffered; never blocks the demux loop
	}
}

// fail marks the connection dead and wakes every pending call.
func (cc *clientConn) fail(err error) {
	_ = cc.conn.Close()
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	cc.err = err
	pending := cc.pending
	cc.pending = make(map[uint64]chan []byte)
	cc.mu.Unlock()
	for _, ch := range pending {
		close(ch) // a closed slot signals connection failure
	}
}

// register allocates a response slot for id. It reports false when the
// connection is already dead.
func (cc *clientConn) register(id uint64) (chan []byte, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.dead {
		return nil, false
	}
	ch := make(chan []byte, 1)
	cc.pending[id] = ch
	return ch, true
}

// deregister removes a pending slot (deadline expiry, injected drop).
// The response, if it ever arrives, is discarded by the read loop.
func (cc *clientConn) deregister(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// send writes one request frame. writeTimeout bounds the write so a
// peer that stops reading cannot wedge every caller behind the frame
// lock; a write failure kills the connection.
func (cc *clientConn) send(frame []byte, writeTimeout time.Duration) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	if writeTimeout > 0 {
		if err := cc.conn.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
			return err
		}
	}
	if err := wire.WriteFrame(cc.conn, frame); err != nil {
		cc.fail(err)
		return err
	}
	return nil
}

// TCPClient is a pipelined, multiplexed Client: any number of calls may
// be in flight concurrently over each connection, matched to responses
// by request ID. A call that hits its per-call deadline fails alone —
// the connection and every other in-flight call are undisturbed, and
// the stale response is discarded by the demultiplexer when it finally
// arrives. Only a transport-level failure (dial error, write error,
// connection reset) tears a connection down, and the next call through
// that slot redials automatically. Only Close is terminal.
type TCPClient struct {
	addr string
	next atomic.Uint64 // request ID source
	rr   atomic.Uint64 // round-robin pool cursor

	mu       sync.Mutex // guards conns/closed/timeout/injector, never held across I/O
	conns    []*clientConn
	dialed   []bool // slot ever had a connection (distinguishes redial)
	closed   bool
	timeout  time.Duration
	injector *faultpoint.Injector
}

// DialTCP connects to a proxykit service at addr with a single
// multiplexed connection. timeout bounds the dial and becomes the
// default per-call deadline (see SetCallTimeout), so a hung daemon
// cannot wedge the client forever.
func DialTCP(addr string, timeout time.Duration) (*TCPClient, error) {
	return DialTCPPool(addr, timeout, 1)
}

// DialTCPPool is DialTCP with a small connection pool: calls are spread
// round-robin over size multiplexed connections. A pool is useful when
// a single connection's frame stream (or the kernel's per-socket
// buffering) becomes the bottleneck; most callers want size 1.
func DialTCPPool(addr string, timeout time.Duration, size int) (*TCPClient, error) {
	if size <= 0 {
		size = 1
	}
	c := &TCPClient{
		addr:    addr,
		conns:   make([]*clientConn, size),
		dialed:  make([]bool, size),
		timeout: timeout,
	}
	conn, err := net.DialTimeout("tcp", addr, c.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c.conns[0] = newClientConn(conn)
	c.dialed[0] = true
	return c, nil
}

// SetCallTimeout overrides the per-call deadline; zero disables it.
func (c *TCPClient) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// SetInjector installs a client-side fault injector: outbound calls
// can be dropped (observed as a timeout), duplicated on the wire,
// delayed, failed remotely, or partitioned. Decisions and delays run
// outside the client's mutex, so an injected delay stalls one call,
// not every concurrent caller. nil removes injection.
func (c *TCPClient) SetInjector(inj *faultpoint.Injector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.injector = inj
}

// dialTimeout returns a sane bound for dialing even when the per-call
// deadline was disabled.
func (c *TCPClient) dialTimeout() time.Duration {
	if c.timeout > 0 {
		return c.timeout
	}
	return 10 * time.Second
}

// getConn returns a live connection from the pool, redialing the slot
// if its previous connection died.
func (c *TCPClient) getConn() (*clientConn, error) {
	slot := int(c.rr.Add(1)-1) % len(c.conns)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	cc := c.conns[slot]
	if cc != nil {
		cc.mu.Lock()
		dead := cc.dead
		cc.mu.Unlock()
		if !dead {
			c.mu.Unlock()
			return cc, nil
		}
		c.conns[slot] = nil
	}
	redial := c.dialed[slot]
	dialTO := c.dialTimeout()
	c.mu.Unlock()

	// Dial outside the lock: other slots keep serving calls meanwhile.
	conn, err := net.DialTimeout("tcp", c.addr, dialTO)
	if err != nil {
		return nil, fmt.Errorf("transport: redial %s: %w", c.addr, err)
	}
	if redial {
		mClientRedials.Inc()
	}
	cc = newClientConn(conn)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cc.fail(ErrClosed)
		return nil, ErrClosed
	}
	if existing := c.conns[slot]; existing != nil {
		// A concurrent caller redialed the slot first; use theirs.
		c.mu.Unlock()
		cc.fail(ErrClosed)
		return existing, nil
	}
	c.conns[slot] = cc
	c.dialed[slot] = true
	c.mu.Unlock()
	return cc, nil
}

// Call implements Client. Each call starts a fresh trace whose context
// travels in the request envelope, registers a response slot under a
// new request ID, sends its frame (holding only the per-connection
// write lock for the write itself), and waits for the demultiplexed
// response or the per-call deadline — concurrent calls on one client
// proceed in parallel and responses may return in any order.
func (c *TCPClient) Call(method string, body []byte) ([]byte, error) {
	return c.CallTrace(obs.Trace{}, method, body)
}

// CallTrace is Call with an explicit parent trace context: the outgoing
// request travels as a child span of parent, so a multi-hop operation
// (e.g. an HTTP request through the gateway) shares one trace ID from
// the edge to every downstream RPC. A zero parent starts a fresh root
// trace, which is what Call does.
func (c *TCPClient) CallTrace(parent obs.Trace, method string, body []byte) ([]byte, error) {
	c.mu.Lock()
	closed, timeout, inj := c.closed, c.timeout, c.injector
	c.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	tr := obs.NewTrace()
	if parent.TraceID != "" {
		tr = parent.Child()
	}
	mClientRequests.With(method).Inc()
	start := time.Now()
	resp, err := c.callInjected(method, tr, body, timeout, inj)
	dur := time.Since(start)
	mClientLatency.With(method).Observe(dur.Seconds())
	span := obs.Span{Trace: tr, Kind: "client", Method: method, Start: start, Duration: dur}
	if err != nil {
		span.Err = err.Error()
		mClientErrors.With(method).Inc()
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			mClientTimeouts.With(method).Inc()
		}
	}
	obs.Spans.Record(span)
	return resp, err
}

// callInjected applies any client-side fault decision around the real
// exchange. Decisions, delays, and all I/O happen outside the client
// mutex, so injection on one call cannot stall concurrent callers.
// Injected drops return a timeout-shaped error, mirroring what a real
// lost frame produces.
func (c *TCPClient) callInjected(method string, tr obs.Trace, body []byte, timeout time.Duration, inj *faultpoint.Injector) ([]byte, error) {
	if inj != nil {
		d := inj.Decide(method)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		switch d.Action {
		case faultpoint.ActPartition, faultpoint.ActDropRequest:
			return nil, &faultpoint.Error{Action: d.Action, Method: method}
		case faultpoint.ActError:
			return nil, &RemoteError{Method: method, Msg: faultpoint.RemoteErrMsg}
		case faultpoint.ActDropResponse:
			// The request goes out and is served; the reply is
			// discarded unread by the demultiplexer (no waiter), like
			// any stale response — the connection survives.
			cc, err := c.getConn()
			if err != nil {
				return nil, err
			}
			id := c.next.Add(1)
			e := encodeRequest(id, method, tr.String(), body)
			err = cc.send(e.Bytes(), timeout)
			e.Release()
			if err != nil {
				return nil, err
			}
			return nil, &faultpoint.Error{Action: d.Action, Method: method}
		case faultpoint.ActDuplicate:
			// The frame is sent twice under one ID; the first response
			// wins, the demultiplexer discards the second as stale.
			return c.exchange(method, tr, body, timeout, 2)
		}
	}
	return c.exchange(method, tr, body, timeout, 1)
}

// exchange performs one multiplexed request/response: register the
// response slot, write the frame copies times, await the response or
// the deadline.
func (c *TCPClient) exchange(method string, tr obs.Trace, body []byte, timeout time.Duration, copies int) ([]byte, error) {
	cc, err := c.getConn()
	if err != nil {
		return nil, err
	}
	id := c.next.Add(1)
	ch, ok := cc.register(id)
	if !ok {
		return nil, fmt.Errorf("transport: connection lost before send")
	}
	mClientPending.Inc()
	defer mClientPending.Dec()
	e := encodeRequest(id, method, tr.String(), body)
	for i := 0; i < copies; i++ {
		if err := cc.send(e.Bytes(), timeout); err != nil {
			e.Release()
			cc.deregister(id)
			return nil, err
		}
	}
	e.Release()

	var timer *time.Timer
	var deadline <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case rest, open := <-ch:
		if !open {
			cc.mu.Lock()
			err := cc.err
			cc.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("transport: connection lost")
			}
			return nil, err
		}
		return decodeResponse(method, rest)
	case <-deadline:
		cc.deregister(id)
		// Drain the race where the response landed between the timer
		// firing and deregistration.
		select {
		case rest, open := <-ch:
			if open {
				return decodeResponse(method, rest)
			}
		default:
		}
		return nil, &CallTimeoutError{Method: method, After: timeout}
	}
}

// Close closes every pooled connection and marks the client dead;
// subsequent calls return ErrClosed rather than redialing.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.conns
	c.conns = make([]*clientConn, len(conns))
	c.mu.Unlock()
	for _, cc := range conns {
		if cc != nil {
			cc.fail(ErrClosed)
		}
	}
	return nil
}

var (
	_ Client      = (*memClient)(nil)
	_ Client      = (*TCPClient)(nil)
	_ TraceClient = (*memClient)(nil)
	_ TraceClient = (*TCPClient)(nil)
)
