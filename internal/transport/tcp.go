package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"proxykit/internal/faultpoint"
	"proxykit/internal/obs"
	"proxykit/internal/wire"
)

// TCPServer serves a Mux on a listener, one goroutine per connection,
// frames per request. Close stops the listener and waits for active
// connections to finish.
type TCPServer struct {
	mux *Mux
	l   net.Listener

	mu       sync.Mutex
	closed   bool
	conns    map[net.Conn]struct{}
	injector *faultpoint.Injector
	wg       sync.WaitGroup
}

// NewTCPServer starts serving mux on l.
func NewTCPServer(l net.Listener, mux *Mux) *TCPServer {
	s := &TCPServer{mux: mux, l: l, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *TCPServer) Addr() net.Addr { return s.l.Addr() }

// SetInjector installs a fault injector on the server side of the
// transport (the daemons' -fault-spec flag): matching requests can be
// dropped (the client times out), duplicated (the handler runs twice,
// one response), delayed, or failed with an injected remote error.
// nil removes injection.
func (s *TCPServer) SetInjector(inj *faultpoint.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.injector = inj
}

func (s *TCPServer) getInjector() *faultpoint.Injector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injector
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		method, trace, body, err := decodeRequest(req)
		if err != nil {
			mServerMalformed.Inc()
			return // malformed peer; drop the connection
		}
		respond := true
		if inj := s.getInjector(); inj != nil {
			d := inj.Decide(method)
			if d.Delay > 0 {
				time.Sleep(d.Delay)
			}
			switch d.Action {
			case faultpoint.ActPartition, faultpoint.ActDropRequest:
				// Swallow the request; the client's deadline fires.
				continue
			case faultpoint.ActError:
				// The client-side decoder wraps this as a RemoteError.
				if werr := wire.WriteFrame(conn, encodeResponse(nil, errors.New(faultpoint.RemoteErrMsg))); werr != nil {
					return
				}
				continue
			case faultpoint.ActDropResponse:
				// The handler runs; the reply is lost.
				respond = false
			case faultpoint.ActDuplicate:
				// Duplicate delivery: the handler runs an extra time,
				// as if the network replayed the request frame.
				s.handleOne(trace, method, body)
			}
		}
		resp, herr := s.handleOne(trace, method, body)
		if !respond {
			continue
		}
		if err := wire.WriteFrame(conn, encodeResponse(resp, herr)); err != nil {
			return
		}
	}
}

// handleOne dispatches one decoded request with metrics and a server
// span.
func (s *TCPServer) handleOne(trace, method string, body []byte) ([]byte, error) {
	tr := obs.ParseTrace(trace)
	ctx := obs.ContextWithTrace(context.Background(), tr)
	mServerInflight.Inc()
	start := time.Now()
	resp, herr := dispatchSafely(ctx, s.mux, method, body)
	dur := time.Since(start)
	mServerInflight.Dec()
	mServerRequests.With(method).Inc()
	mServerLatency.With(method).Observe(dur.Seconds())
	span := obs.Span{Trace: tr, Kind: "server", Method: method, Start: start, Duration: dur}
	if herr != nil {
		mServerErrors.With(method).Inc()
		span.Err = herr.Error()
	}
	obs.Spans.Record(span)
	return resp, herr
}

// Close stops accepting, closes active connections, and waits for
// handler goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.l.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// dispatchSafely converts a handler panic into an error so one bad
// request cannot take the whole server down.
func dispatchSafely(ctx context.Context, m *Mux, method string, body []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("transport: handler panic in %s: %v", method, r)
		}
	}()
	return m.Dispatch(ctx, method, body)
}

// TCPClient is a Client over a single TCP connection. Calls are
// serialized; services are stateless per request so one connection
// suffices for the CLI tools.
//
// A call that hits its deadline closes the connection (the stream may
// still carry the stale response), but the client is not dead: the
// next call dials a fresh connection automatically. Only Close is
// terminal.
type TCPClient struct {
	mu       sync.Mutex
	conn     net.Conn
	addr     string
	closed   bool
	timeout  time.Duration
	injector *faultpoint.Injector
}

// DialTCP connects to a proxykit service at addr. timeout bounds the
// dial and becomes the default per-call deadline (see SetCallTimeout),
// so a hung daemon cannot wedge the client forever.
func DialTCP(addr string, timeout time.Duration) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &TCPClient{conn: conn, addr: addr, timeout: timeout}, nil
}

// SetCallTimeout overrides the per-call deadline; zero disables it.
func (c *TCPClient) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// SetInjector installs a client-side fault injector: outbound calls
// can be dropped (observed as a timeout, connection torn down exactly
// as a real deadline expiry would), duplicated on the wire, delayed,
// failed remotely, or partitioned. nil removes injection.
func (c *TCPClient) SetInjector(inj *faultpoint.Injector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.injector = inj
}

// Call implements Client. Each call starts a fresh trace whose context
// travels in the request envelope, arms the per-call deadline, and is
// recorded in the client-side RPC metrics. A call that hits the
// deadline closes the connection — after a timeout the stream may
// still carry the stale response, so the connection cannot be reused —
// and the next call redials.
func (c *TCPClient) Call(method string, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.conn == nil {
		conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout())
		if err != nil {
			return nil, fmt.Errorf("transport: redial %s: %w", c.addr, err)
		}
		mClientRedials.Inc()
		c.conn = conn
	}
	tr := obs.NewTrace()
	mClientRequests.With(method).Inc()
	start := time.Now()
	resp, err := c.callInjected(method, tr, body)
	dur := time.Since(start)
	mClientLatency.With(method).Observe(dur.Seconds())
	span := obs.Span{Trace: tr, Kind: "client", Method: method, Start: start, Duration: dur}
	if err != nil {
		span.Err = err.Error()
		mClientErrors.With(method).Inc()
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			mClientTimeouts.With(method).Inc()
		}
		// Any non-application error leaves the frame stream in an
		// unknown state (deadline expiry, reset, short read): tear the
		// connection down and let the next call redial.
		var re *RemoteError
		if !errors.As(err, &re) && c.conn != nil {
			_ = c.conn.Close()
			c.conn = nil
		}
	}
	obs.Spans.Record(span)
	return resp, err
}

// dialTimeout returns a sane bound for redialing even when the
// per-call deadline was disabled.
func (c *TCPClient) dialTimeout() time.Duration {
	if c.timeout > 0 {
		return c.timeout
	}
	return 10 * time.Second
}

// callInjected applies any client-side fault decision around the real
// exchange. Injected drops return a timeout-shaped error, so the
// caller's deadline accounting (close + redial) applies unchanged.
func (c *TCPClient) callInjected(method string, tr obs.Trace, body []byte) ([]byte, error) {
	if c.injector != nil {
		d := c.injector.Decide(method)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		switch d.Action {
		case faultpoint.ActPartition, faultpoint.ActDropRequest:
			return nil, &faultpoint.Error{Action: d.Action, Method: method}
		case faultpoint.ActError:
			return nil, &RemoteError{Method: method, Msg: faultpoint.RemoteErrMsg}
		case faultpoint.ActDropResponse:
			// The request goes out and is served; the reply is
			// discarded unread, so the connection must be torn down
			// like any timeout (the stale frame is still in flight).
			_, _ = c.callLocked(method, tr, body)
			return nil, &faultpoint.Error{Action: d.Action, Method: method}
		case faultpoint.ActDuplicate:
			// The frame is sent twice; both responses are read to
			// keep the stream in sync, the first delivery's wins.
			resp, err := c.callLocked(method, tr, body)
			_, _ = c.callLocked(method, tr, body)
			return resp, err
		}
	}
	return c.callLocked(method, tr, body)
}

// callLocked performs one framed request/response exchange.
func (c *TCPClient) callLocked(method string, tr obs.Trace, body []byte) ([]byte, error) {
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
	}
	if err := wire.WriteFrame(c.conn, encodeRequest(method, tr.String(), body)); err != nil {
		return nil, err
	}
	resp, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	return decodeResponse(method, resp)
}

// Close closes the connection and marks the client dead; subsequent
// calls return ErrClosed rather than redialing.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

var (
	_ Client = (*memClient)(nil)
	_ Client = (*TCPClient)(nil)
)
