package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"proxykit/internal/wire"
)

// TCPServer serves a Mux on a listener, one goroutine per connection,
// frames per request. Close stops the listener and waits for active
// connections to finish.
type TCPServer struct {
	mux *Mux
	l   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewTCPServer starts serving mux on l.
func NewTCPServer(l net.Listener, mux *Mux) *TCPServer {
	s := &TCPServer{mux: mux, l: l, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *TCPServer) Addr() net.Addr { return s.l.Addr() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		method, body, err := decodeRequest(req)
		if err != nil {
			return // malformed peer; drop the connection
		}
		resp, herr := dispatchSafely(s.mux, method, body)
		if err := wire.WriteFrame(conn, encodeResponse(resp, herr)); err != nil {
			return
		}
	}
}

// Close stops accepting, closes active connections, and waits for
// handler goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.l.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// dispatchSafely converts a handler panic into an error so one bad
// request cannot take the whole server down.
func dispatchSafely(m *Mux, method string, body []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("transport: handler panic in %s: %v", method, r)
		}
	}()
	return m.Dispatch(method, body)
}

// TCPClient is a Client over a single TCP connection. Calls are
// serialized; services are stateless per request so one connection
// suffices for the CLI tools.
type TCPClient struct {
	mu   sync.Mutex
	conn net.Conn
}

// DialTCP connects to a proxykit service at addr.
func DialTCP(addr string, timeout time.Duration) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &TCPClient{conn: conn}, nil
}

// Call implements Client.
func (c *TCPClient) Call(method string, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrClosed
	}
	if err := wire.WriteFrame(c.conn, encodeRequest(method, body)); err != nil {
		return nil, err
	}
	resp, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	return decodeResponse(method, resp)
}

// Close closes the connection.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

var (
	_ Client = (*memClient)(nil)
	_ Client = (*TCPClient)(nil)
)
