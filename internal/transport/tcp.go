package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"proxykit/internal/obs"
	"proxykit/internal/wire"
)

// TCPServer serves a Mux on a listener, one goroutine per connection,
// frames per request. Close stops the listener and waits for active
// connections to finish.
type TCPServer struct {
	mux *Mux
	l   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewTCPServer starts serving mux on l.
func NewTCPServer(l net.Listener, mux *Mux) *TCPServer {
	s := &TCPServer{mux: mux, l: l, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *TCPServer) Addr() net.Addr { return s.l.Addr() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		method, trace, body, err := decodeRequest(req)
		if err != nil {
			mServerMalformed.Inc()
			return // malformed peer; drop the connection
		}
		tr := obs.ParseTrace(trace)
		ctx := obs.ContextWithTrace(context.Background(), tr)
		mServerInflight.Inc()
		start := time.Now()
		resp, herr := dispatchSafely(ctx, s.mux, method, body)
		dur := time.Since(start)
		mServerInflight.Dec()
		mServerRequests.With(method).Inc()
		mServerLatency.With(method).Observe(dur.Seconds())
		span := obs.Span{Trace: tr, Kind: "server", Method: method, Start: start, Duration: dur}
		if herr != nil {
			mServerErrors.With(method).Inc()
			span.Err = herr.Error()
		}
		obs.Spans.Record(span)
		if err := wire.WriteFrame(conn, encodeResponse(resp, herr)); err != nil {
			return
		}
	}
}

// Close stops accepting, closes active connections, and waits for
// handler goroutines to exit.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.l.Close()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// dispatchSafely converts a handler panic into an error so one bad
// request cannot take the whole server down.
func dispatchSafely(ctx context.Context, m *Mux, method string, body []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("transport: handler panic in %s: %v", method, r)
		}
	}()
	return m.Dispatch(ctx, method, body)
}

// TCPClient is a Client over a single TCP connection. Calls are
// serialized; services are stateless per request so one connection
// suffices for the CLI tools.
type TCPClient struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
}

// DialTCP connects to a proxykit service at addr. timeout bounds the
// dial and becomes the default per-call deadline (see SetCallTimeout),
// so a hung daemon cannot wedge the client forever.
func DialTCP(addr string, timeout time.Duration) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &TCPClient{conn: conn, timeout: timeout}, nil
}

// SetCallTimeout overrides the per-call deadline; zero disables it.
func (c *TCPClient) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Call implements Client. Each call starts a fresh trace whose context
// travels in the request envelope, arms the per-call deadline, and is
// recorded in the client-side RPC metrics. A call that hits the
// deadline closes the connection — after a timeout the stream may still
// carry the stale response, so the connection cannot be reused.
func (c *TCPClient) Call(method string, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrClosed
	}
	tr := obs.NewTrace()
	mClientRequests.With(method).Inc()
	start := time.Now()
	resp, err := c.callLocked(method, tr, body)
	dur := time.Since(start)
	mClientLatency.With(method).Observe(dur.Seconds())
	span := obs.Span{Trace: tr, Kind: "client", Method: method, Start: start, Duration: dur}
	if err != nil {
		span.Err = err.Error()
		mClientErrors.With(method).Inc()
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			mClientTimeouts.With(method).Inc()
			_ = c.conn.Close()
			c.conn = nil
		}
	}
	obs.Spans.Record(span)
	return resp, err
}

// callLocked performs one framed request/response exchange.
func (c *TCPClient) callLocked(method string, tr obs.Trace, body []byte) ([]byte, error) {
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
	}
	if err := wire.WriteFrame(c.conn, encodeRequest(method, tr.String(), body)); err != nil {
		return nil, err
	}
	resp, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	return decodeResponse(method, resp)
}

// Close closes the connection.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

var (
	_ Client = (*memClient)(nil)
	_ Client = (*TCPClient)(nil)
)
