package transport

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"proxykit/internal/obs"
)

// RetryPolicy configures retrying of failed RPCs: exponential backoff
// with jitter, an attempt cap, and a wall-clock budget. The zero value
// means "no retries" (a single attempt), so wrapping a client in a
// zero-policy RetryClient changes nothing.
//
// Retrying is only safe when redelivery is harmless. proxykit's
// protocol is built for that — the accept-once restriction suppresses
// duplicate check deposits, signed envelopes carry once-only nonces,
// and proxy verification is offline — but the duplicate shows up as an
// application-level rejection on the second delivery, which callers
// that retry must treat as an acknowledgment (see the clearing path in
// internal/accounting and AcctClient.DepositCheck in internal/svc).
type RetryPolicy struct {
	// MaxAttempts caps total attempts (first try included). Values
	// below 2 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the first backoff (default 10ms); each subsequent
	// backoff multiplies by Multiplier (default 2) up to MaxDelay
	// (default 1s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter randomizes each backoff by ±Jitter fraction (default 0.2;
	// negative disables).
	Jitter float64
	// Budget bounds the wall-clock spent across all attempts and
	// backoffs; once exceeded no further attempt is made. Zero means
	// attempts alone bound the call.
	Budget time.Duration
	// Seed drives the jitter PRNG; 0 uses the global math/rand source.
	// Fixing it (with a Sleep stub) makes retry schedules reproducible.
	Seed int64
	// Sleep replaces time.Sleep between attempts (tests).
	Sleep func(time.Duration)
	// Retryable classifies errors; nil uses IsRetryable.
	Retryable func(error) bool
}

// DefaultRetryPolicy is a sensible production policy: 4 attempts,
// 10ms..1s exponential backoff with 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4}
}

// Do runs fn (passing the 0-based attempt index) until it succeeds,
// returns a non-retryable error, or the policy is exhausted. method
// labels the retry metrics.
func (p RetryPolicy) Do(method string, fn func(attempt int) error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	retryable := p.Retryable
	if retryable == nil {
		retryable = IsRetryable
	}
	var rng *rand.Rand
	if p.Seed != 0 {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	var deadline time.Time
	if p.Budget > 0 {
		deadline = time.Now().Add(p.Budget)
	}

	delay := base
	var err error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			mRetries.With(method).Inc()
		}
		err = fn(attempt)
		if err == nil || !retryable(err) {
			return err
		}
		if attempt+1 >= attempts {
			mRetryExhausted.With(method).Inc()
			return err
		}
		d := delay
		if jitter > 0 {
			f := randFloat(rng)
			d = time.Duration(float64(d) * (1 + jitter*(2*f-1)))
		}
		if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
			mRetryExhausted.With(method).Inc()
			return err
		}
		sleep(d)
		delay = time.Duration(float64(delay) * mult)
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}

// globalRandMu serializes global math/rand access for the Seed==0 path
// (rand.Float64 is already safe, but keeping the helper uniform).
var globalRandMu sync.Mutex

func randFloat(rng *rand.Rand) float64 {
	if rng != nil {
		return rng.Float64()
	}
	globalRandMu.Lock()
	defer globalRandMu.Unlock()
	return rand.Float64()
}

// IsRetryable reports whether err looks like a transient transport
// failure: timeouts (including injected drops), closed or partitioned
// connections, and dial failures. Application-level errors — anything
// a handler returned, carried as *RemoteError — are not retried: the
// remote heard the request and answered.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	return !errors.As(err, &re)
}

// RetryClient wraps a Client with a RetryPolicy. It resends the same
// request bytes on every attempt, which suits raw (unsealed) RPCs;
// sealed envelopes carry a once-only nonce and must be re-sealed per
// attempt instead (the svc clients do this above the transport — see
// svc.SetRetry).
type RetryClient struct {
	c Client
	p RetryPolicy
}

// NewRetryClient wraps c.
func NewRetryClient(c Client, p RetryPolicy) *RetryClient {
	return &RetryClient{c: c, p: p}
}

// Call implements Client with retries. All attempts share one logical
// trace (see TraceRetries), so a retried call renders as sibling spans
// under a single parent rather than N unrelated root traces.
func (r *RetryClient) Call(method string, body []byte) ([]byte, error) {
	c, finish := TraceRetries(r.c, r.p, method)
	resp, err := r.do(c, method, body)
	finish(err)
	return resp, err
}

// CallTrace implements TraceClient: attempts become children of parent
// (siblings of each other), joining the caller's existing trace.
func (r *RetryClient) CallTrace(parent obs.Trace, method string, body []byte) ([]byte, error) {
	if parent.TraceID == "" {
		return r.Call(method, body)
	}
	return r.do(WithTrace(r.c, parent), method, body)
}

func (r *RetryClient) do(c Client, method string, body []byte) ([]byte, error) {
	var resp []byte
	err := r.p.Do(method, func(int) error {
		var cerr error
		resp, cerr = c.Call(method, body)
		return cerr
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

var _ TraceClient = (*RetryClient)(nil)

// TraceRetries prepares the shared trace context for a retried call
// with no ambient parent. When c supports trace propagation and p
// allows more than one attempt, it mints one logical root span and
// returns a client that issues every attempt as a child of it — so a
// retry appears as sibling spans under one parent, not a fresh trace
// per attempt — plus a finish func that records the root span (kind
// "call") covering the whole retried operation, backoffs included.
// Otherwise c is returned unchanged with a no-op finish. Callers that
// already bound a parent (WithTrace) need none of this: their attempts
// are siblings of the bound parent by construction.
func TraceRetries(c Client, p RetryPolicy, method string) (Client, func(error)) {
	if _, ok := c.(TraceClient); !ok || p.MaxAttempts < 2 {
		return c, func(error) {}
	}
	tr := obs.NewTrace()
	start := time.Now()
	return WithTrace(c, tr), func(err error) {
		span := obs.Span{Trace: tr, Kind: "call", Method: method, Start: start, Duration: time.Since(start)}
		if err != nil {
			span.Err = err.Error()
		}
		obs.Spans.Record(span)
	}
}
