package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"proxykit/internal/obs"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoMux() *Mux {
	m := NewMux()
	m.Handle("echo", func(_ context.Context, body []byte) ([]byte, error) {
		return body, nil
	})
	m.Handle("fail", func(_ context.Context, body []byte) ([]byte, error) {
		return nil, errors.New("handler exploded")
	})
	return m
}

func TestMemNetworkCall(t *testing.T) {
	n := NewNetwork()
	n.Register("svc", echoMux())
	c, err := n.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Call("echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("got %q", got)
	}
}

func TestMemNetworkRemoteError(t *testing.T) {
	n := NewNetwork()
	n.Register("svc", echoMux())
	c := n.MustDial("svc")
	_, err := c.Call("fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if re.Msg != "handler exploded" || re.Method != "fail" {
		t.Fatalf("re = %+v", re)
	}
}

func TestMemNetworkUnknowns(t *testing.T) {
	n := NewNetwork()
	n.Register("svc", echoMux())
	if _, err := n.Dial("nope"); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("dial err = %v", err)
	}
	c := n.MustDial("svc")
	_, err := c.Call("nope", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("unknown method should arrive as remote error, got %v", err)
	}
}

func TestMustDialPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewNetwork().MustDial("missing")
}

func TestStatsCounting(t *testing.T) {
	n := NewNetwork()
	n.Register("svc", echoMux())
	c := n.MustDial("svc")
	for i := 0; i < 3; i++ {
		if _, err := c.Call("echo", []byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}
	msgs, rts, bytesN := n.Stats().Snapshot()
	if msgs != 6 {
		t.Fatalf("messages = %d, want 6", msgs)
	}
	if rts != 3 {
		t.Fatalf("round trips = %d, want 3", rts)
	}
	if bytesN != 3*8 { // 4 bytes each way per call
		t.Fatalf("bytes = %d, want 24", bytesN)
	}
	n.Stats().Reset()
	if m, r, b := n.Stats().Snapshot(); m|r|b != 0 {
		t.Fatal("reset failed")
	}
}

func TestModeledLatency(t *testing.T) {
	n := NewNetwork()
	n.Register("svc", echoMux())
	n.SetLatency(5*time.Millisecond, false) // modeled only, no sleeping
	c := n.MustDial("svc")
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := c.Call("echo", nil); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("modeled latency slept: %v", elapsed)
	}
	if got := n.ModeledLatency(); got != 40*time.Millisecond {
		t.Fatalf("modeled latency = %v, want 40ms", got)
	}
}

func TestSleepLatency(t *testing.T) {
	n := NewNetwork()
	n.Register("svc", echoMux())
	n.SetLatency(10*time.Millisecond, true)
	c := n.MustDial("svc")
	start := time.Now()
	if _, err := c.Call("echo", nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("call returned in %v, want >= 20ms", elapsed)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := NewNetwork()
	n.Register("svc", echoMux())
	c := n.MustDial("svc")
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			got, err := c.Call("echo", msg)
			if err != nil || !bytes.Equal(got, msg) {
				t.Errorf("call %d: %v %q", i, err, got)
			}
		}(i)
	}
	wg.Wait()
	if _, rts, _ := n.Stats().Snapshot(); rts != 50 {
		t.Fatalf("round trips = %d", rts)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, echoMux())
	defer srv.Close()

	c, err := DialTCP(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got, err := c.Call("echo", []byte("over tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("over tcp")) {
		t.Fatalf("got %q", got)
	}

	// Errors cross the wire as RemoteError.
	_, err = c.Call("fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "handler exploded" {
		t.Fatalf("err = %v", err)
	}

	// Multiple sequential calls on one connection.
	for i := 0; i < 10; i++ {
		if _, err := c.Call("echo", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPServerClose(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, echoMux())
	c, err := DialTCP(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("echo", nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := c.Call("echo", nil); err == nil {
		t.Fatal("call succeeded after server close")
	}
	_ = c.Close()
	if _, err := c.Call("echo", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed client err = %v", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, echoMux())
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialTCP(srv.Addr().String(), time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				msg := []byte(fmt.Sprintf("%d-%d", i, j))
				got, err := c.Call("echo", msg)
				if err != nil || !bytes.Equal(got, msg) {
					t.Errorf("client %d call %d: %v", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestDialTCPFailure(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestRequestResponseEncoding(t *testing.T) {
	be := encodeRequest(42, "method.name", "abc123-def456", []byte("body"))
	defer be.Release()
	id, m, trace, body, err := decodeRequest(be.Bytes())
	if err != nil || id != 42 || m != "method.name" || trace != "abc123-def456" || !bytes.Equal(body, []byte("body")) {
		t.Fatalf("%d %q %q %q %v", id, m, trace, body, err)
	}
	if _, _, _, _, err := decodeRequest([]byte("garbage")); err == nil {
		t.Fatal("garbage request accepted")
	}

	r := encodeResponse(42, []byte("ok"), nil)
	defer r.Release()
	id, rest, err := splitResponseID(r.Bytes())
	if err != nil || id != 42 {
		t.Fatalf("split: id=%d err=%v", id, err)
	}
	body, err = decodeResponse("m", rest)
	if err != nil || !bytes.Equal(body, []byte("ok")) {
		t.Fatalf("%q %v", body, err)
	}
	r2 := encodeResponse(7, nil, errors.New("boom"))
	defer r2.Release()
	id, rest, err = splitResponseID(r2.Bytes())
	if err != nil || id != 7 {
		t.Fatalf("split: id=%d err=%v", id, err)
	}
	_, err = decodeResponse("m", rest)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "boom" {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := splitResponseID([]byte{2, 3}); err == nil {
		t.Fatal("short response frame accepted")
	}
	if _, err := decodeResponse("m", []byte{2, 3}); err == nil {
		t.Fatal("garbage response accepted")
	}
}

func TestTCPServerSurvivesHandlerPanic(t *testing.T) {
	m := NewMux()
	m.Handle("boom", func(context.Context, []byte) ([]byte, error) { panic("handler bug") })
	m.Handle("ok", func(_ context.Context, b []byte) ([]byte, error) { return b, nil })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, m)
	defer srv.Close()
	c, err := DialTCP(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Call("boom", nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "panic") {
		t.Fatalf("err = %v", err)
	}
	// The connection and server are still serviceable.
	got, err := c.Call("ok", []byte("still alive"))
	if err != nil || string(got) != "still alive" {
		t.Fatalf("after panic: %q %v", got, err)
	}
}

// TestHandlerContextCarriesTrace asserts both transports hand handlers
// a context carrying the request trace, so audit records can join it.
func TestHandlerContextCarriesTrace(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	m := NewMux()
	m.Handle("trace", func(ctx context.Context, _ []byte) ([]byte, error) {
		tr, ok := obs.TraceFrom(ctx)
		if !ok {
			return nil, errors.New("no trace in context")
		}
		mu.Lock()
		seen = append(seen, tr.TraceID)
		mu.Unlock()
		return []byte(tr.TraceID), nil
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, m)
	defer srv.Close()
	c, err := DialTCP(srv.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The handler-side trace ID must match what the client span recorded.
	var clientTrace string
	for _, s := range obs.Spans.Recent() {
		if s.Kind == "client" && s.Method == "trace" {
			clientTrace = s.TraceID
			break
		}
	}
	if clientTrace == "" || string(got) != clientTrace {
		t.Fatalf("handler saw trace %q, client span has %q", got, clientTrace)
	}

	// In-memory network: a fresh trace per call, still present in ctx.
	n := NewNetwork()
	n.Register("svc", m)
	if _, err := n.MustDial("svc").Call("trace", nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] == "" || seen[1] == "" {
		t.Fatalf("handler trace IDs = %q", seen)
	}
}
