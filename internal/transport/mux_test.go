package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proxykit/internal/faultpoint"
	"proxykit/internal/obs"
)

// pollUntil spins until cond holds or the deadline passes, reporting
// whether cond held. Tests use it in place of fixed sleeps so a loaded
// machine cannot turn a scheduling hiccup into a flake.
func pollUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// faultDelays reads the process-global injected-delay counter through
// the registry's JSON rendering (the raw counter is private to
// faultpoint).
func faultDelays(t *testing.T) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.Default.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc := map[string]any{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	v, _ := doc["proxykit_fault_delays_total"].(float64)
	return v
}

// slowEchoMux echoes its body after a per-call delay carried in the
// first 8 bytes (nanoseconds, big-endian; see delayedBody); bodies
// shorter than the header echo back whole, at once.
func slowEchoMux() *Mux {
	m := NewMux()
	m.Handle("echo", func(_ context.Context, body []byte) ([]byte, error) {
		if len(body) >= 8 {
			if d := time.Duration(binary.BigEndian.Uint64(body[:8])); d > 0 {
				time.Sleep(d)
			}
			return body[8:], nil
		}
		return body, nil
	})
	return m
}

func delayedBody(d time.Duration, payload []byte) []byte {
	b := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(b, uint64(d))
	copy(b[8:], payload)
	return b
}

// TestMuxConcurrentCallsOneClient: many concurrent calls on a single
// client/connection all complete with their own responses — the demux
// by request ID routes out-of-order replies correctly.
func TestMuxConcurrentCallsOneClient(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, slowEchoMux())
	defer srv.Close()

	c, err := DialTCP(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const calls = 64
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger delays so responses return out of order.
			d := time.Duration((calls-i)%8) * 2 * time.Millisecond
			msg := []byte(fmt.Sprintf("payload-%03d", i))
			got, err := c.Call("echo", delayedBody(d, msg))
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("call %d: got %q, want %q (cross-wired response)", i, got, msg)
			}
		}(i)
	}
	wg.Wait()
}

// TestMuxSlowCallDoesNotStallOthers: with one in-flight slow call, fast
// calls on the same connection complete immediately instead of queueing
// behind it (the old serialized client forced FIFO round trips).
func TestMuxSlowCallDoesNotStallOthers(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, slowEchoMux())
	defer srv.Close()

	c, err := DialTCP(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inflightBefore := mServerInflight.Value()
	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Call("echo", delayedBody(400*time.Millisecond, []byte("slow")))
		slowDone <- err
	}()
	// Wait until the server reports the slow call in flight; its handler
	// then sleeps 400ms, so the fast calls below race only against that.
	if !pollUntil(2*time.Second, func() bool { return mServerInflight.Value() > inflightBefore }) {
		t.Fatal("slow call never reached the server")
	}

	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.Call("echo", []byte("fast")); err != nil {
			t.Fatalf("fast call %d: %v", i, err)
		}
	}
	if fast := time.Since(start); fast > 300*time.Millisecond {
		t.Fatalf("fast calls took %v behind a slow one — transport still serialized", fast)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestMuxTimeoutIsolatesOneCall: a call that hits its deadline fails
// alone; a concurrent call on the same connection still completes, and
// the late response is counted as stale rather than delivered to the
// wrong caller.
func TestMuxTimeoutIsolatesOneCall(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, slowEchoMux())
	defer srv.Close()

	c, err := DialTCP(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(80 * time.Millisecond)

	staleBefore := mClientStaleResponses.Value()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := c.Call("echo", delayedBody(300*time.Millisecond, []byte("late")))
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Errorf("slow call err = %v, want timeout", err)
		}
	}()
	go func() {
		defer wg.Done()
		got, err := c.Call("echo", []byte("quick"))
		if err != nil || !bytes.Equal(got, []byte("quick")) {
			t.Errorf("concurrent quick call: %q %v", got, err)
		}
	}()
	wg.Wait()

	// After the late response finally arrives it must be discarded.
	deadline := time.Now().Add(2 * time.Second)
	for mClientStaleResponses.Value() == staleBefore && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := mClientStaleResponses.Value(); got != staleBefore+1 {
		t.Errorf("stale responses delta = %d, want 1", got-staleBefore)
	}

	// The connection survived: another call on the same client works.
	if got, err := c.Call("echo", []byte("after")); err != nil || !bytes.Equal(got, []byte("after")) {
		t.Fatalf("post-timeout call: %q %v", got, err)
	}
}

// TestMuxConnectionPool: a pooled client spreads calls over several
// connections and completes them all.
func TestMuxConnectionPool(t *testing.T) {
	var conns atomic.Int64
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	countingL := &connCountListener{Listener: l, n: &conns}
	srv := NewTCPServer(countingL, slowEchoMux())
	defer srv.Close()

	c, err := DialTCPPool(l.Addr().String(), 5*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("p%d", i))
			got, err := c.Call("echo", msg)
			if err != nil || !bytes.Equal(got, msg) {
				t.Errorf("pooled call %d: %q %v", i, got, err)
			}
		}(i)
	}
	wg.Wait()
	if got := conns.Load(); got < 2 {
		t.Errorf("pool opened %d connections, want >= 2", got)
	}
}

type connCountListener struct {
	net.Listener
	n *atomic.Int64
}

func (l *connCountListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.n.Add(1)
	}
	return c, err
}

// TestServerWorkerPoolBounds: a server with a 2-worker pool still
// completes a burst larger than the pool (backpressure, not loss), and
// the busy gauge never exceeds the bound.
func TestServerWorkerPoolBounds(t *testing.T) {
	var busy, maxBusy atomic.Int64
	m := NewMux()
	m.Handle("work", func(_ context.Context, body []byte) ([]byte, error) {
		b := busy.Add(1)
		for {
			cur := maxBusy.Load()
			if b <= cur || maxBusy.CompareAndSwap(cur, b) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		busy.Add(-1)
		return body, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServerWorkers(l, m, 2)
	defer srv.Close()

	c, err := DialTCP(srv.Addr().String(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte{byte(i)}
			got, err := c.Call("work", msg)
			if err != nil || !bytes.Equal(got, msg) {
				t.Errorf("call %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := maxBusy.Load(); got > 2 {
		t.Fatalf("max concurrent handlers = %d, want <= 2", got)
	}
}

// TestMuxInjectedDelayDoesNotStallPeers: the satellite bugfix — an
// injected client-side delay used to sleep while holding TCPClient.mu,
// serializing every caller behind it. Delays must now apply per call.
func TestMuxInjectedDelayDoesNotStallPeers(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, slowEchoMux())
	defer srv.Close()

	c, err := DialTCP(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Delay only the "slowmethod" calls; "echo" is untouched.
	inj, err := faultpoint.Parse("slowmethod:delay=300ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	c.SetInjector(inj)

	delaysBefore := faultDelays(t)
	delayed := make(chan struct{})
	go func() {
		defer close(delayed)
		// The method is unknown server-side: the call errors remotely,
		// but only after the injected client-side delay.
		_, _ = c.Call("slowmethod", nil)
	}()
	// The injector counts the delay verdict as it is decided, right
	// before the sleep begins — once the counter moves, the delayed call
	// has passed the lock acquisition and entered its injected sleep.
	if !pollUntil(2*time.Second, func() bool { return faultDelays(t) > delaysBefore }) {
		t.Fatal("injected delay was never decided")
	}

	start := time.Now()
	if _, err := c.Call("echo", []byte("free")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("echo call waited %v behind an injected delay — injection still inside the lock", d)
	}
	<-delayed
}
