package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"proxykit/internal/obs"
)

// traceEcho returns a mux whose one method reports the trace ID the
// handler observed in its context.
func traceEcho() *Mux {
	mux := NewMux()
	mux.Handle("echo.trace", func(ctx context.Context, body []byte) ([]byte, error) {
		tr, _ := obs.TraceFrom(ctx)
		return []byte(tr.TraceID), nil
	})
	return mux
}

func TestTCPCallTraceJoinsParent(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, traceEcho())
	defer srv.Close()
	c, err := DialTCP(l.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	parent := obs.NewTrace()
	got, err := c.CallTrace(parent, "echo.trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != parent.TraceID {
		t.Fatalf("handler saw trace %q, want caller's %q", got, parent.TraceID)
	}

	// A zero parent starts a fresh root, like Call.
	got, err = c.CallTrace(obs.Trace{}, "echo.trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == parent.TraceID {
		t.Fatalf("zero-parent call reused trace %q", got)
	}
}

func TestWithTraceWrapsMemClient(t *testing.T) {
	net := NewNetwork()
	net.Register("svc", traceEcho())
	parent := obs.NewTrace()
	c := WithTrace(net.MustDial("svc"), parent)
	got, err := c.Call("echo.trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != parent.TraceID {
		t.Fatalf("handler saw trace %q, want caller's %q", got, parent.TraceID)
	}

	// Zero parent: WithTrace is a no-op passthrough.
	plain := net.MustDial("svc")
	if WithTrace(plain, obs.Trace{}) != plain {
		t.Fatal("WithTrace with zero parent should return the client unchanged")
	}
}
