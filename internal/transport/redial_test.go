package transport

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"proxykit/internal/faultpoint"
)

// TestTCPClientRecoversAfterTimeout is the regression test for the
// dead-after-timeout bug: a TCPClient whose call hit the per-call
// deadline used to be permanently unusable (every later call returned
// ErrClosed). Under the multiplexed client a timeout fails only that
// call — the connection stays up, no redial is needed, and once the
// server recovers the same client completes calls; the wedged
// handler's late response is discarded by ID.
func TestTCPClientRecoversAfterTimeout(t *testing.T) {
	var hang atomic.Bool
	hang.Store(true)
	release := make(chan struct{})
	mux := NewMux()
	mux.Handle("echo", func(_ context.Context, body []byte) ([]byte, error) {
		if hang.Load() {
			<-release // simulate a wedged server
		}
		return body, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, mux)
	defer func() {
		close(release)
		_ = srv.Close()
	}()

	c, err := DialTCP(srv.Addr().String(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	redialsBefore := mClientRedials.Value()
	if _, err := c.Call("echo", []byte("first")); err == nil {
		t.Fatal("call against wedged server succeeded")
	} else {
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("err = %v, want net timeout", err)
		}
	}

	// Server recovers; the SAME client must complete a call.
	hang.Store(false)
	resp, err := c.Call("echo", []byte("second"))
	if err != nil {
		t.Fatalf("post-recovery call failed: %v", err)
	}
	if !bytes.Equal(resp, []byte("second")) {
		t.Fatalf("resp = %q, want %q", resp, "second")
	}
	if got := mClientRedials.Value(); got != redialsBefore {
		t.Errorf("redial counter delta = %d, want 0 (timeout must not kill the connection)", got-redialsBefore)
	}
}

// TestTCPClientRecoversAfterServerRestart: a connection reset (server
// gone) must also leave the client usable once a server is back on the
// same address.
func TestTCPClientRecoversAfterServerRestart(t *testing.T) {
	mux := NewMux()
	mux.Handle("echo", func(_ context.Context, body []byte) ([]byte, error) {
		return body, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv := NewTCPServer(l, mux)

	c, err := DialTCP(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}

	// Kill the server; the in-flight connection dies with it.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("echo", nil); err == nil {
		t.Fatal("call against dead server succeeded")
	}

	// Restart on the same address and call again with the same client.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2 := NewTCPServer(l2, mux)
	defer srv2.Close()
	resp, err := c.Call("echo", []byte("back"))
	if err != nil {
		t.Fatalf("post-restart call failed: %v", err)
	}
	if !bytes.Equal(resp, []byte("back")) {
		t.Fatalf("resp = %q, want %q", resp, "back")
	}
}

// TestTCPServerInjector drives the four server-side fault actions over
// a real socket: error surfaces as RemoteError, duplicate runs the
// handler twice for one response, drop forces a client timeout, and a
// disabled injector restores normal service.
func TestTCPServerInjector(t *testing.T) {
	var handled atomic.Int64
	mux := NewMux()
	mux.Handle("echo", func(_ context.Context, body []byte) ([]byte, error) {
		handled.Add(1)
		return body, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, mux)
	defer srv.Close()

	c, err := DialTCP(srv.Addr().String(), 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Injected remote error.
	srv.SetInjector(faultpoint.New(1, faultpoint.Rule{Method: "echo", Err: 1}))
	_, err = c.Call("echo", []byte("x"))
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != faultpoint.RemoteErrMsg {
		t.Fatalf("err = %v, want injected RemoteError", err)
	}

	// Duplicate delivery: handler runs twice, client gets one reply.
	srv.SetInjector(faultpoint.New(1, faultpoint.Rule{Method: "echo", Dup: 1}))
	before := handled.Load()
	resp, err := c.Call("echo", []byte("dup"))
	if err != nil || !bytes.Equal(resp, []byte("dup")) {
		t.Fatalf("dup call = %q, %v", resp, err)
	}
	if got := handled.Load() - before; got != 2 {
		t.Fatalf("handler ran %d times under duplication, want 2", got)
	}

	// Drop: the request is swallowed, the client's deadline fires.
	srv.SetInjector(faultpoint.New(2, faultpoint.Rule{Method: "echo", Drop: 1}))
	_, err = c.Call("echo", []byte("lost"))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("dropped call err = %v, want timeout", err)
	}

	// Clearing the injector restores service (and proves the client
	// survived the drop without losing its connection).
	srv.SetInjector(nil)
	if resp, err := c.Call("echo", []byte("ok")); err != nil || !bytes.Equal(resp, []byte("ok")) {
		t.Fatalf("post-injection call = %q, %v", resp, err)
	}
}

// TestRetryClientOverFaultyNetwork: a RetryClient on the in-memory
// network under heavy injected loss still completes every call, and
// the retry counters move.
func TestRetryClientOverFaultyNetwork(t *testing.T) {
	n := NewNetwork()
	mux := NewMux()
	var served atomic.Int64
	mux.Handle("ping", func(_ context.Context, body []byte) ([]byte, error) {
		served.Add(1)
		return body, nil
	})
	n.Register("svc", mux)
	n.SetInjector(faultpoint.New(99, faultpoint.Rule{Method: "ping", Drop: 0.4}))

	rc := NewRetryClient(n.MustDial("svc"), RetryPolicy{
		MaxAttempts: 10,
		Seed:        7,
		Sleep:       func(time.Duration) {},
	})
	retriesBefore := mRetries.With("ping").Value()
	for i := 0; i < 200; i++ {
		if _, err := rc.Call("ping", []byte{byte(i)}); err != nil {
			t.Fatalf("call %d failed through retries: %v", i, err)
		}
	}
	if served.Load() < 200 {
		t.Fatalf("server served %d < 200 calls", served.Load())
	}
	if mRetries.With("ping").Value() == retriesBefore {
		t.Error("no retries recorded under 40% drop — injection not active?")
	}
}

// TestRetryPolicyClassification: remote (application) errors are not
// retried; injected transport faults are; exhaustion is reported with
// the last error.
func TestRetryPolicyClassification(t *testing.T) {
	calls := 0
	err := RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}}.Do("m", func(int) error {
		calls++
		return &RemoteError{Method: "m", Msg: "no such account"}
	})
	if calls != 1 {
		t.Fatalf("remote error retried %d times", calls-1)
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError through", err)
	}

	calls = 0
	err = RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}.Do("m", func(int) error {
		calls++
		return &faultpoint.Error{Action: faultpoint.ActDropRequest, Method: "m"}
	})
	if calls != 3 {
		t.Fatalf("transport fault tried %d times, want 3", calls)
	}
	if !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("exhausted err = %v, want last fault", err)
	}

	// Success on a later attempt stops the loop.
	calls = 0
	err = RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}}.Do("m", func(a int) error {
		calls++
		if a < 2 {
			return &faultpoint.Error{Action: faultpoint.ActDropResponse, Method: "m"}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("recovering call: err=%v calls=%d", err, calls)
	}
}

// TestRetryPolicyBackoff: delays grow exponentially and respect the
// budget.
func TestRetryPolicyBackoff(t *testing.T) {
	var delays []time.Duration
	p := RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Jitter:      -1, // disable for exact assertions
		Sleep:       func(d time.Duration) { delays = append(delays, d) },
	}
	_ = p.Do("m", func(int) error {
		return &faultpoint.Error{Action: faultpoint.ActDropRequest, Method: "m"}
	})
	want := []time.Duration{10, 20, 40, 50, 50}
	if len(delays) != len(want) {
		t.Fatalf("delays = %v", delays)
	}
	for i, d := range want {
		if delays[i] != d*time.Millisecond {
			t.Errorf("delay %d = %v, want %v", i, delays[i], d*time.Millisecond)
		}
	}

	// A zero policy makes exactly one attempt.
	calls := 0
	_ = RetryPolicy{}.Do("m", func(int) error {
		calls++
		return &faultpoint.Error{Action: faultpoint.ActDropRequest, Method: "m"}
	})
	if calls != 1 {
		t.Fatalf("zero policy made %d attempts", calls)
	}
}
