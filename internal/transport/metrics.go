package transport

import "proxykit/internal/obs"

// RPC metrics, registered in the process-wide registry. Server-side
// instruments cover TCPServer.serveConn; client-side instruments cover
// TCPClient.Call. The in-memory Network keeps its own exact
// message/round-trip Stats for the experiments and is deliberately not
// routed through these (its hot loops are the measurement substrate).
var (
	mServerRequests = obs.Default.NewCounterVec("proxykit_rpc_requests_total",
		"RPC requests dispatched by TCP servers, by method.", "method")
	mServerErrors = obs.Default.NewCounterVec("proxykit_rpc_errors_total",
		"RPC requests whose handler returned an error, by method.", "method")
	mServerLatency = obs.Default.NewHistogramVec("proxykit_rpc_latency_seconds",
		"Server-side RPC handler latency in seconds.", obs.DefLatencyBuckets, "method")
	mServerInflight = obs.Default.NewGauge("proxykit_rpc_inflight",
		"RPC requests currently being handled by TCP servers.")
	mServerMalformed = obs.Default.NewCounter("proxykit_rpc_malformed_total",
		"Connections dropped because a request frame failed to decode.")

	mClientRequests = obs.Default.NewCounterVec("proxykit_rpc_client_requests_total",
		"RPC calls issued by TCP clients, by method.", "method")
	mClientErrors = obs.Default.NewCounterVec("proxykit_rpc_client_errors_total",
		"TCP client calls that returned an error (transport or remote), by method.", "method")
	mClientTimeouts = obs.Default.NewCounterVec("proxykit_rpc_client_timeouts_total",
		"TCP client calls that hit the per-call deadline, by method.", "method")
	mClientLatency = obs.Default.NewHistogramVec("proxykit_rpc_client_latency_seconds",
		"Client-observed RPC round-trip latency in seconds.", obs.DefLatencyBuckets, "method")
	mClientRedials = obs.Default.NewCounter("proxykit_rpc_client_redials_total",
		"TCP client reconnections after a connection died (reset, write failure, server restart).")
	mClientPending = obs.Default.NewGauge("proxykit_rpc_client_pending",
		"RPC calls currently in flight on multiplexed TCP client connections.")
	mClientStaleResponses = obs.Default.NewCounter("proxykit_rpc_client_stale_responses_total",
		"Response frames discarded by the client demultiplexer because no call was waiting (timed-out call, injected duplicate).")

	mServerWorkersBusy = obs.Default.NewGauge("proxykit_rpc_server_workers_busy",
		"TCP server pool workers currently executing a request.")
	mServerWorkerWait = obs.Default.NewHistogram("proxykit_rpc_server_worker_wait_seconds",
		"Time request frames waited for a free server pool worker.", obs.DefLatencyBuckets)

	mRetries = obs.Default.NewCounterVec("proxykit_rpc_retries_total",
		"RPC attempts beyond the first made under a RetryPolicy, by method.", "method")
	mRetryExhausted = obs.Default.NewCounterVec("proxykit_rpc_retry_exhausted_total",
		"RPC calls abandoned after the retry attempt cap or time budget ran out, by method.", "method")
)
