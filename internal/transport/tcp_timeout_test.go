package transport

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestTCPCallTimeout covers the per-call deadline: a server that never
// responds must not hang the client forever, the timeout must be
// counted, and only that call fails — the multiplexed connection stays
// up (a late response is discarded by ID, it cannot desynchronize the
// stream).
func TestTCPCallTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		<-done // hold the connection open without ever replying
	}()

	c, err := DialTCP(l.Addr().String(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := mClientTimeouts.With("echo").Value()
	start := time.Now()
	_, err = c.Call("echo", []byte("ping"))
	if err == nil {
		t.Fatal("call to silent server succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("call took %v, deadline not applied", elapsed)
	}
	if got := mClientTimeouts.With("echo").Value(); got != before+1 {
		t.Errorf("timeout counter = %d, want %d", got, before+1)
	}

	// The timeout failed only that call; the client is not dead: the
	// next call reuses the live connection (and times out against the
	// still-silent server — crucially not ErrClosed).
	if _, err := c.Call("echo", nil); errors.Is(err, ErrClosed) {
		t.Fatalf("post-timeout call err = %v; client wedged", err)
	}

	// Only an explicit Close is terminal.
	_ = c.Close()
	if _, err := c.Call("echo", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close call err = %v, want ErrClosed", err)
	}
}

// TestSetCallTimeout verifies the override is honored over the dial
// timeout default.
func TestSetCallTimeout(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		<-done
	}()

	c, err := DialTCP(l.Addr().String(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(50 * time.Millisecond)

	start := time.Now()
	if _, err := c.Call("echo", nil); err == nil {
		t.Fatal("call to silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("call took %v, SetCallTimeout not honored", elapsed)
	}
}
