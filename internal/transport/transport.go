// Package transport provides the message substrate the proxykit services
// run on: a request/response RPC abstraction with two implementations —
// an in-memory network that meters messages and injects latency (the
// measurement substrate for the experiments), and a TCP transport for
// the cmd/ daemons.
//
// The paper's design arguments are about message counts and round trips
// (e.g. offline proxy-chain verification vs Sollins's per-link
// authentication-server contact, §3.4); the in-memory network counts
// both so experiments can report them exactly.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"proxykit/internal/faultpoint"
	"proxykit/internal/obs"
	"proxykit/internal/wire"
)

// Errors returned by transports.
var (
	ErrUnknownService = errors.New("transport: unknown service")
	ErrUnknownMethod  = errors.New("transport: unknown method")
	ErrClosed         = errors.New("transport: closed")
)

// RemoteError carries an application-level error string returned by a
// remote handler.
type RemoteError struct {
	// Method is the RPC that failed.
	Method string
	// Msg is the remote error text.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote %s: %s", e.Method, e.Msg)
}

// Handler processes one request body and returns a response body. The
// context carries the request's obs.Trace (obs.TraceFrom), so handlers
// and the decision points behind them can tag audit records and
// downstream calls with the originating trace ID.
type Handler func(ctx context.Context, body []byte) ([]byte, error)

// Client issues RPCs to one service.
type Client interface {
	// Call invokes method with body and returns the response body; a
	// *RemoteError reports handler-level failures.
	Call(method string, body []byte) ([]byte, error)
}

// TraceClient is a Client whose calls can join an existing trace: the
// outgoing request is recorded as a child span of parent instead of a
// fresh root. Both transport implementations satisfy it.
type TraceClient interface {
	Client
	// CallTrace is Call with an explicit parent trace context; a zero
	// parent behaves like Call.
	CallTrace(parent obs.Trace, method string, body []byte) ([]byte, error)
}

// WithTrace binds a parent trace to c: every Call through the returned
// Client travels as a child span of parent. If c does not support trace
// propagation the calls pass through unchanged (fresh root traces).
// Service clients (svc.EndClient etc.) only see transport.Client, so
// this is how an edge daemon threads its per-request trace into the
// sealed-envelope call helpers without changing their signatures.
func WithTrace(c Client, parent obs.Trace) Client {
	tc, ok := c.(TraceClient)
	if !ok || parent.TraceID == "" {
		return c
	}
	return &tracedClient{tc: tc, parent: parent}
}

type tracedClient struct {
	tc     TraceClient
	parent obs.Trace
}

// Call implements Client, forwarding under the bound parent trace.
func (t *tracedClient) Call(method string, body []byte) ([]byte, error) {
	return t.tc.CallTrace(t.parent, method, body)
}

// Mux routes methods to handlers. The zero value is not usable; call
// NewMux.
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewMux returns an empty Mux.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]Handler)}
}

// Handle registers h for method, replacing any existing handler.
func (m *Mux) Handle(method string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[method] = h
}

// Dispatch runs the handler for method.
func (m *Mux) Dispatch(ctx context.Context, method string, body []byte) ([]byte, error) {
	m.mu.RLock()
	h, ok := m.handlers[method]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownMethod, method)
	}
	return h(ctx, body)
}

// Stats counts traffic through an in-memory Network.
type Stats struct {
	// Messages is the total message count (each call is two: request and
	// response).
	Messages atomic.Uint64
	// RoundTrips is the number of completed calls.
	RoundTrips atomic.Uint64
	// Bytes is the total payload bytes in both directions.
	Bytes atomic.Uint64
}

// Snapshot returns a point-in-time copy of the counters.
func (s *Stats) Snapshot() (messages, roundTrips, bytes uint64) {
	return s.Messages.Load(), s.RoundTrips.Load(), s.Bytes.Load()
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.Messages.Store(0)
	s.RoundTrips.Store(0)
	s.Bytes.Store(0)
}

// Network is an in-memory service fabric. Services register under names;
// clients dial by name. Every call is metered and optionally delayed by
// a configured per-round-trip latency.
type Network struct {
	mu       sync.RWMutex
	services map[string]*Mux
	latency  time.Duration
	sleep    bool
	injector *faultpoint.Injector
	stats    Stats
}

// NewNetwork returns an empty in-memory network.
func NewNetwork() *Network {
	return &Network{services: make(map[string]*Mux)}
}

// SetLatency configures the simulated one-way latency. If sleep is true
// each call really sleeps 2×latency (request + response); otherwise the
// latency is only modeled (see ModeledLatency).
func (n *Network) SetLatency(oneWay time.Duration, sleep bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = oneWay
	n.sleep = sleep
}

// SetInjector installs a fault injector on every call through the
// network, extending the latency hook into a full chaos substrate:
// drops, duplicates, remote errors, and partitions, per-method and
// seeded (see internal/faultpoint). nil removes injection.
func (n *Network) SetInjector(inj *faultpoint.Injector) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.injector = inj
}

// Register exposes mux as a service under name.
func (n *Network) Register(name string, mux *Mux) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.services[name] = mux
}

// Stats exposes the network's counters.
func (n *Network) Stats() *Stats { return &n.stats }

// ModeledLatency returns the network latency the recorded traffic would
// have experienced at the configured one-way latency: round trips ×
// 2 × latency.
func (n *Network) ModeledLatency() time.Duration {
	n.mu.RLock()
	lat := n.latency
	n.mu.RUnlock()
	return time.Duration(n.stats.RoundTrips.Load()) * 2 * lat
}

// Dial returns a Client for the named service.
func (n *Network) Dial(name string) (Client, error) {
	n.mu.RLock()
	mux, ok := n.services[name]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownService, name)
	}
	return &memClient{net: n, mux: mux, service: name}, nil
}

// MustDial is Dial for wiring code where the service is known to exist;
// it panics on unknown services (program construction error, not a
// runtime condition).
func (n *Network) MustDial(name string) Client {
	c, err := n.Dial(name)
	if err != nil {
		panic(err)
	}
	return c
}

type memClient struct {
	net     *Network
	mux     *Mux
	service string
}

// Call implements Client. Each call carries a fresh trace in its
// context so handler-side audit records correlate, mirroring what the
// TCP transport does on the wire (without the metering side effects).
// When an injector is installed, messages can be dropped, duplicated,
// delayed, failed, or partitioned before they reach the handler.
func (c *memClient) Call(method string, body []byte) ([]byte, error) {
	return c.CallTrace(obs.Trace{}, method, body)
}

// CallTrace is Call under an explicit parent trace; the handler-side
// context carries a child of parent, as the TCP transport does on the
// wire. A zero parent behaves like Call.
func (c *memClient) CallTrace(parent obs.Trace, method string, body []byte) ([]byte, error) {
	tr := obs.NewTrace()
	if parent.TraceID != "" {
		tr = parent.Child()
	}
	c.net.mu.RLock()
	lat, sleep, inj := c.net.latency, c.net.sleep, c.net.injector
	c.net.mu.RUnlock()
	if sleep && lat > 0 {
		time.Sleep(lat)
	}
	if inj != nil {
		d := inj.Decide(method)
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		switch d.Action {
		case faultpoint.ActPartition, faultpoint.ActDropRequest:
			// The request never reaches the service.
			return nil, &faultpoint.Error{Action: d.Action, Method: method}
		case faultpoint.ActError:
			return nil, &RemoteError{Method: method, Msg: faultpoint.RemoteErrMsg}
		case faultpoint.ActDropResponse:
			// The handler runs — its side effects happen — but the
			// reply is lost; the caller observes a timeout.
			_, _ = c.dispatch(tr, method, body)
			return nil, &faultpoint.Error{Action: d.Action, Method: method}
		case faultpoint.ActDuplicate:
			// Delivered twice; the caller sees the first delivery's
			// outcome, the second is the network's doing.
			resp, err := c.dispatch(tr, method, body)
			_, _ = c.dispatch(tr, method, body)
			return c.finish(method, resp, err, lat, sleep)
		}
	}
	resp, err := c.dispatch(tr, method, body)
	return c.finish(method, resp, err, lat, sleep)
}

// dispatch delivers one request to the service, metering the request
// message.
func (c *memClient) dispatch(tr obs.Trace, method string, body []byte) ([]byte, error) {
	c.net.stats.Messages.Add(1)
	c.net.stats.Bytes.Add(uint64(len(body)))
	// Mirror the TCP server's receive side: the handler gets its own
	// span within the caller's trace, parented on the client span.
	ctx := obs.ContextWithTrace(context.Background(), obs.ParseTrace(tr.String()))
	return dispatchSafely(ctx, c.mux, method, body)
}

// finish meters the response leg and converts handler errors into
// RemoteErrors, as the TCP transport does on the wire.
func (c *memClient) finish(method string, resp []byte, err error, lat time.Duration, sleep bool) ([]byte, error) {
	if sleep && lat > 0 {
		time.Sleep(lat)
	}
	c.net.stats.Messages.Add(1)
	c.net.stats.Bytes.Add(uint64(len(resp)))
	c.net.stats.RoundTrips.Add(1)
	if err != nil {
		return nil, &RemoteError{Method: method, Msg: err.Error()}
	}
	return resp, nil
}

// encodeRequest/decodeRequest define the on-wire RPC envelope of the
// TCP transport. id is the per-connection request ID that lets the
// multiplexed client match responses (which may arrive out of order)
// back to waiting calls. trace is the obs.Trace wire form
// ("traceID-spanID", possibly empty): the trace context and parent span
// that let the server correlate its span with the caller's.
//
// Both encoders come from the wire pool; the caller must Release the
// returned encoder after the frame has been written.
func encodeRequest(id uint64, method, trace string, body []byte) *wire.Encoder {
	e := wire.GetEncoder(72 + len(trace) + len(body))
	e.Uint64(id)
	e.String(method)
	e.String(trace)
	e.Bytes32(body)
	return e
}

func decodeRequest(b []byte) (id uint64, method, trace string, body []byte, err error) {
	d := wire.NewDecoder(b)
	id = d.Uint64()
	method = d.String()
	trace = d.String()
	body = d.Bytes32()
	if err := d.Finish(); err != nil {
		return 0, "", "", nil, err
	}
	return id, method, trace, body, nil
}

// encodeResponse echoes the request ID ahead of the response payload so
// the client-side demultiplexer can route it without decoding the body.
// The returned encoder is pooled; Release it after the write.
func encodeResponse(id uint64, body []byte, herr error) *wire.Encoder {
	e := wire.GetEncoder(72 + len(body))
	e.Uint64(id)
	if herr != nil {
		e.Bool(true)
		e.String(herr.Error())
		return e
	}
	e.Bool(false)
	e.Bytes32(body)
	return e
}

// splitResponseID peels the request ID off a response frame, returning
// the remainder for decodeResponse in the waiting call's goroutine.
func splitResponseID(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: short response frame", wire.ErrTruncated)
	}
	return binary.BigEndian.Uint64(b[:8]), b[8:], nil
}

func decodeResponse(method string, b []byte) ([]byte, error) {
	d := wire.NewDecoder(b)
	if d.Bool() {
		msg := d.String()
		if err := d.Finish(); err != nil {
			return nil, err
		}
		return nil, &RemoteError{Method: method, Msg: msg}
	}
	body := d.Bytes32()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return body, nil
}
