package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// benchBackendLatency models the server-side work behind each RPC (a
// disk read, a signature verification, a downstream call). Sleeping —
// rather than burning CPU — keeps the comparison honest on small
// machines: a serialized client is limited by round trips regardless
// of core count, while the multiplexed client overlaps them.
const benchBackendLatency = 2 * time.Millisecond

func newBenchServer(b *testing.B) net.Addr {
	b.Helper()
	mux := NewMux()
	mux.Handle("bench.echo", func(_ context.Context, body []byte) ([]byte, error) {
		time.Sleep(benchBackendLatency)
		return body, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewTCPServer(l, mux)
	b.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

// BenchmarkTCPSerialized is the baseline: one call in flight at a
// time, so each op pays a full round trip plus the simulated backend
// latency.
func BenchmarkTCPSerialized(b *testing.B) {
	addr := newBenchServer(b)
	c, err := DialTCP(addr.String(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	body := []byte("ping")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("bench.echo", body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPMultiplexed keeps many calls in flight on one shared
// client; responses demultiplex by request ID, so backend latencies
// overlap instead of summing.
func BenchmarkTCPMultiplexed(b *testing.B) {
	for _, inflight := range []int{4, 16} {
		b.Run(fmt.Sprintf("inflight=%d", inflight), func(b *testing.B) {
			addr := newBenchServer(b)
			c, err := DialTCP(addr.String(), 0)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			body := []byte("ping")
			b.SetParallelism(inflight) // goroutines = inflight × GOMAXPROCS
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := c.Call("bench.echo", body); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkTCPMultiplexedPool adds connection-level parallelism on
// top of request multiplexing.
func BenchmarkTCPMultiplexedPool(b *testing.B) {
	addr := newBenchServer(b)
	c, err := DialTCPPool(addr.String(), 0, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	body := []byte("ping")
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Call("bench.echo", body); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestMuxThroughputAdvantage is the acceptance check behind the
// benchmarks above in test form: with a 2ms backend, 16 concurrent
// callers on one multiplexed connection must clear at least 4× the
// serialized call rate.
func TestMuxThroughputAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	mux := NewMux()
	mux.Handle("bench.echo", func(_ context.Context, body []byte) ([]byte, error) {
		time.Sleep(benchBackendLatency)
		return body, nil
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewTCPServer(l, mux)
	defer srv.Close()
	c, err := DialTCP(srv.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const serialCalls = 50
	start := time.Now()
	for i := 0; i < serialCalls; i++ {
		if _, err := c.Call("bench.echo", nil); err != nil {
			t.Fatal(err)
		}
	}
	serialRate := float64(serialCalls) / time.Since(start).Seconds()

	const goroutines, perG = 16, 20
	var wg sync.WaitGroup
	start = time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := c.Call("bench.echo", nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	muxRate := float64(goroutines*perG) / time.Since(start).Seconds()

	if muxRate < 4*serialRate {
		t.Fatalf("multiplexed rate %.0f/s < 4x serialized %.0f/s", muxRate, serialRate)
	}
	t.Logf("serialized %.0f calls/s, multiplexed %.0f calls/s (%.1fx)", serialRate, muxRate, muxRate/serialRate)
}
