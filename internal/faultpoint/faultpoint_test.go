package faultpoint

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	inj, err := Parse("acct.deposit-check:drop=0.3,dup=0.2;acct.*:delay=5ms@0.5;*:err=0.1", 1)
	if err != nil {
		t.Fatal(err)
	}
	rules := inj.Rules()
	if len(rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(rules))
	}
	if rules[0].Drop != 0.3 || rules[0].Dup != 0.2 || rules[0].Method != "acct.deposit-check" {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if rules[1].Delay != 5*time.Millisecond || rules[1].DelayProb != 0.5 {
		t.Errorf("rule 1 = %+v", rules[1])
	}
	if rules[2].Err != 0.1 || rules[2].Method != "*" {
		t.Errorf("rule 2 = %+v", rules[2])
	}
}

func TestParseEmpty(t *testing.T) {
	inj, err := Parse("   ", 1)
	if err != nil || inj != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", inj, err)
	}
	// A nil injector is usable: it never injects.
	if d := inj.Decide("anything"); d.Action != ActNone || d.Delay != 0 {
		t.Fatalf("nil injector decided %+v", d)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"no-colon-rule",
		"m:drop=1.5",
		"m:drop=x",
		"m:unknown=1",
		"m:delay=notadur",
		"m:partition=maybe",
		":drop=0.5",
		"m:drop",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestRuleMatching(t *testing.T) {
	cases := []struct {
		rule, method string
		want         bool
	}{
		{"*", "anything", true},
		{"acct.*", "acct.deposit-check", true},
		{"acct.*", "authz.grant", false},
		{"acct.deposit-check", "acct.deposit-check", true},
		{"acct.deposit-check", "acct.deposit", false},
	}
	for _, c := range cases {
		if got := (Rule{Method: c.rule}).matches(c.method); got != c.want {
			t.Errorf("Rule(%q).matches(%q) = %v, want %v", c.rule, c.method, got, c.want)
		}
	}
}

// TestDeterminism: same seed, same call sequence, same decisions.
func TestDeterminism(t *testing.T) {
	mk := func() *Injector {
		return New(42, Rule{Method: "*", Drop: 0.3, Dup: 0.2, Err: 0.1})
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		da, db := a.Decide("m"), b.Decide("m")
		if da != db {
			t.Fatalf("call %d: %+v != %+v", i, da, db)
		}
	}
}

// TestProbabilities: over many rolls the empirical rates land near the
// configured ones, and drops split between request and response.
func TestProbabilities(t *testing.T) {
	inj := New(7, Rule{Method: "*", Drop: 0.3, Dup: 0.2})
	const n = 20000
	counts := map[Action]int{}
	for i := 0; i < n; i++ {
		counts[inj.Decide("m").Action]++
	}
	drops := counts[ActDropRequest] + counts[ActDropResponse]
	if f := float64(drops) / n; f < 0.25 || f > 0.35 {
		t.Errorf("drop rate = %v, want ~0.3", f)
	}
	if counts[ActDropRequest] == 0 || counts[ActDropResponse] == 0 {
		t.Error("drops never split between request and response")
	}
	// dup only rolls when drop didn't trigger: expect ~0.7*0.2 = 0.14.
	if f := float64(counts[ActDuplicate]) / n; f < 0.10 || f > 0.18 {
		t.Errorf("dup rate = %v, want ~0.14", f)
	}
}

func TestPartitionAndEnable(t *testing.T) {
	inj := New(1, Rule{Method: "svc.*", Partition: true})
	if d := inj.Decide("svc.call"); d.Action != ActPartition {
		t.Fatalf("decision = %+v, want partition", d)
	}
	if d := inj.Decide("other.call"); d.Action != ActNone {
		t.Fatalf("unmatched method decided %+v", d)
	}
	inj.SetEnabled(false)
	if d := inj.Decide("svc.call"); d.Action != ActNone {
		t.Fatalf("disabled injector decided %+v", d)
	}
	inj.SetEnabled(true)
	if d := inj.Decide("svc.call"); d.Action != ActPartition {
		t.Fatalf("re-enabled injector decided %+v", d)
	}
}

// TestErrorIsNetTimeout: injected drops look like deadline expiries so
// the TCP client's timeout path and retry classifier treat them as
// such; partitions are failures but not timeouts.
func TestErrorIsNetTimeout(t *testing.T) {
	var nerr net.Error
	drop := &Error{Action: ActDropResponse, Method: "m"}
	if !errors.As(error(drop), &nerr) || !nerr.Timeout() {
		t.Errorf("drop error %v is not a net timeout", drop)
	}
	if !errors.Is(drop, ErrInjected) {
		t.Error("drop error does not unwrap to ErrInjected")
	}
	part := &Error{Action: ActPartition, Method: "m"}
	if part.Timeout() {
		t.Error("partition error claims to be a timeout")
	}
}

func TestDelayProbability(t *testing.T) {
	inj := New(3, Rule{Method: "*", Delay: time.Millisecond, DelayProb: 0.5})
	const n = 4000
	delayed := 0
	for i := 0; i < n; i++ {
		if inj.Decide("m").Delay > 0 {
			delayed++
		}
	}
	if f := float64(delayed) / n; f < 0.45 || f > 0.55 {
		t.Errorf("delay rate = %v, want ~0.5", f)
	}
}
