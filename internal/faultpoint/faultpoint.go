// Package faultpoint provides deterministic, seeded fault injection
// for proxykit's transports and clearing paths.
//
// The paper's accounting protocol is designed for unreliable delivery:
// the accept-once restriction (§4, §7.7) makes duplicate check
// deposits harmless, and cascaded verification (§3.4) is offline so a
// request can be re-presented without contacting the grantor. An
// Injector makes that robustness testable: it sits at a transport
// boundary and — according to per-method rules and a seeded PRNG —
// drops messages, delays them, duplicates them, fails them with a
// remote error, or partitions the endpoint entirely.
//
// The same injector type plugs into the in-memory transport.Network,
// the TCP transport (client and server side), and the inter-bank
// clearing hop in internal/accounting. Daemons accept a rule spec on
// the command line via -fault-spec (see Parse).
package faultpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Action is one injected fault.
type Action uint8

// Injected fault kinds. A drop is split into request and response
// variants because they differ observably: a dropped request never
// reaches the handler, while a dropped response means the handler ran
// and only the acknowledgment was lost — the case that forces
// exactly-once machinery (accept-once) to earn its keep under retry.
const (
	ActNone Action = iota
	ActDropRequest
	ActDropResponse
	ActError
	ActDuplicate
	ActPartition
)

// String implements fmt.Stringer; the values appear as metric labels.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActDropRequest:
		return "drop-request"
	case ActDropResponse:
		return "drop-response"
	case ActError:
		return "error"
	case ActDuplicate:
		return "duplicate"
	case ActPartition:
		return "partition"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// ErrInjected tags every fault the injector manufactures, so tests and
// retry classifiers can tell injected faults from real ones.
var ErrInjected = errors.New("faultpoint: injected fault")

// Error is the transport-level failure an injected drop or partition
// produces. It implements net.Error with Timeout() true for drops, so
// the TCP client's timeout path (close + redial) and the retry
// classifier treat an injected loss exactly like a real one.
type Error struct {
	// Action that produced the failure.
	Action Action
	// Method the failed call targeted.
	Method string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faultpoint: injected %s on %s", e.Action, e.Method)
}

// Unwrap lets errors.Is(err, ErrInjected) identify injected faults.
func (e *Error) Unwrap() error { return ErrInjected }

// Timeout implements net.Error: a dropped message is observed as a
// deadline expiry.
func (e *Error) Timeout() bool {
	return e.Action == ActDropRequest || e.Action == ActDropResponse
}

// Temporary implements net.Error (deprecated there, required for the
// interface); injected faults are always transient.
func (e *Error) Temporary() bool { return true }

// RemoteErrMsg is the message carried by injected remote errors, which
// transports surface as their application-level error type.
const RemoteErrMsg = "faultpoint: injected remote error"

// Decision is the injector's verdict for one message.
type Decision struct {
	// Delay to impose before (and in addition to) Action.
	Delay time.Duration
	// Action to take; ActNone delivers normally.
	Action Action
}

// Rule matches a set of methods and gives each fault a probability.
// The zero value matches nothing and injects nothing.
type Rule struct {
	// Method is an exact method name ("acct.deposit-check"), a prefix
	// pattern ("acct.*"), or "*" for every method.
	Method string
	// Drop, Dup, and Err are per-message probabilities in [0, 1]. A
	// triggered drop is split evenly between request and response loss.
	Drop, Dup, Err float64
	// Delay is imposed with probability DelayProb (1 if Delay is set
	// and DelayProb is 0).
	Delay     time.Duration
	DelayProb float64
	// Partition fails every matching message while set.
	Partition bool
}

// matches reports whether the rule applies to method.
func (r Rule) matches(method string) bool {
	if r.Method == "*" {
		return true
	}
	if p, ok := strings.CutSuffix(r.Method, "*"); ok {
		return strings.HasPrefix(method, p)
	}
	return r.Method == method
}

// Injector decides faults for messages. It is safe for concurrent use;
// all randomness flows from the seed given to New, so a serial call
// sequence yields an identical fault sequence on every run.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []Rule
	disabled bool
}

// New returns an Injector applying rules (first match wins) with a
// deterministic PRNG seeded by seed.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), rules: rules}
}

// SetEnabled turns injection on or off; while disabled every Decide
// returns ActNone. Healing a partition mid-test is SetEnabled(false)
// on the partition's injector.
func (i *Injector) SetEnabled(enabled bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.disabled = !enabled
}

// Decide returns the fault verdict for one message to method. Dice are
// rolled in a fixed order (delay, partition, drop, error, duplicate)
// so a fixed seed and call sequence reproduce exactly.
func (i *Injector) Decide(method string) Decision {
	if i == nil {
		return Decision{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.disabled {
		return Decision{}
	}
	var d Decision
	for _, r := range i.rules {
		if !r.matches(method) {
			continue
		}
		if r.Delay > 0 {
			p := r.DelayProb
			if p == 0 {
				p = 1
			}
			if i.rng.Float64() < p {
				d.Delay = r.Delay
			}
		}
		switch {
		case r.Partition:
			d.Action = ActPartition
		case r.Drop > 0 && i.rng.Float64() < r.Drop:
			d.Action = ActDropRequest
			if i.rng.Float64() < 0.5 {
				d.Action = ActDropResponse
			}
		case r.Err > 0 && i.rng.Float64() < r.Err:
			d.Action = ActError
		case r.Dup > 0 && i.rng.Float64() < r.Dup:
			d.Action = ActDuplicate
		}
		break // first matching rule wins
	}
	if d.Action != ActNone {
		mInjections.With(d.Action.String()).Inc()
	}
	if d.Delay > 0 {
		mDelays.Inc()
	}
	return d
}

// Rules returns a copy of the injector's rules, for logging.
func (i *Injector) Rules() []Rule {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Rule(nil), i.rules...)
}
