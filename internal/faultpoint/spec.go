package faultpoint

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds an Injector from a -fault-spec string:
//
//	spec   = rule *(";" rule)
//	rule   = method ":" action *("," action)
//	action = "drop=" prob | "dup=" prob | "err=" prob
//	       | "delay=" duration ["@" prob] | "partition=" ("0"|"1")
//
// method is an exact RPC method, a prefix pattern ending in "*", or
// "*". Examples:
//
//	acct.deposit-check:drop=0.3,dup=0.2
//	acct.*:delay=5ms@0.5;*:drop=0.05
//	*:partition=1
//
// An empty spec returns a nil Injector (no injection). seed drives the
// injector's PRNG; the same seed and call sequence reproduce the same
// fault sequence.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		method, actions, ok := strings.Cut(rs, ":")
		if !ok {
			return nil, fmt.Errorf("faultpoint: rule %q has no method (want method:action=...)", rs)
		}
		r := Rule{Method: strings.TrimSpace(method)}
		if r.Method == "" {
			return nil, fmt.Errorf("faultpoint: rule %q has an empty method", rs)
		}
		for _, a := range strings.Split(actions, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			name, val, ok := strings.Cut(a, "=")
			if !ok {
				return nil, fmt.Errorf("faultpoint: action %q (want name=value)", a)
			}
			if err := applyAction(&r, name, val); err != nil {
				return nil, err
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return New(seed, rules...), nil
}

func applyAction(r *Rule, name, val string) error {
	switch name {
	case "drop", "dup", "err":
		p, err := parseProb(name, val)
		if err != nil {
			return err
		}
		switch name {
		case "drop":
			r.Drop = p
		case "dup":
			r.Dup = p
		case "err":
			r.Err = p
		}
	case "delay":
		durStr, probStr, hasProb := strings.Cut(val, "@")
		d, err := time.ParseDuration(durStr)
		if err != nil || d < 0 {
			return fmt.Errorf("faultpoint: delay %q: want a duration like 5ms", durStr)
		}
		r.Delay = d
		if hasProb {
			p, err := parseProb("delay", probStr)
			if err != nil {
				return err
			}
			r.DelayProb = p
		}
	case "partition":
		switch val {
		case "1", "true":
			r.Partition = true
		case "0", "false":
			r.Partition = false
		default:
			return fmt.Errorf("faultpoint: partition=%q: want 0 or 1", val)
		}
	default:
		return fmt.Errorf("faultpoint: unknown action %q (want drop, dup, err, delay, or partition)", name)
	}
	return nil
}

func parseProb(name, s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("faultpoint: %s=%q: want a probability in [0,1]", name, s)
	}
	return p, nil
}
