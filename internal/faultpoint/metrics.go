package faultpoint

import "proxykit/internal/obs"

// Fault-injection metrics: what the chaos harness actually did to the
// system, so a converged chaos run can prove faults really occurred
// (injections > 0) rather than passing vacuously.
var (
	mInjections = obs.Default.NewCounterVec("proxykit_fault_injections_total",
		"Faults injected, by action (drop-request, drop-response, error, duplicate, partition).", "action")
	mDelays = obs.Default.NewCounter("proxykit_fault_delays_total",
		"Injected message delays.")
)
