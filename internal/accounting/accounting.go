// Package accounting implements the distributed accounting service of
// §4 of the paper.
//
// "Accounts are maintained on accounting servers. At a minimum, each
// account contains a unique name, an access-control-list, and a
// collection of records, each record specifying a currency and a
// balance. Accounting servers support multiple currencies, either
// monetary (dollars, pounds, or yen) or resource specific (disk blocks,
// cpu cycles, or printer pages)."
//
// Resource transfer uses checks: numbered delegate proxies whose
// restrictions encode the check number (accept-once), the amount
// (quota), the payee (grantee), and the bank drawn on (issued-for).
// Endorsements are cascaded proxies; clearing crosses accounting servers
// exactly as in Fig. 5, with each bank marking deposited funds
// uncollected until the payor's bank honors the check. Certified checks
// place holds; cashier's checks (the paper's "exercise for the reader")
// are drawn on the bank's own operating account.
package accounting

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/audit"
	"proxykit/internal/clock"
	"proxykit/internal/faultpoint"
	"proxykit/internal/kcrypto"
	"proxykit/internal/ledger"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/replay"
	"proxykit/internal/transport"
)

// Account operations appearing in account ACLs.
const (
	OpDebit  = "debit"
	OpCredit = "credit"
	OpRead   = "read"
)

// Errors returned by the accounting server.
var (
	ErrNoAccount         = errors.New("accounting: no such account")
	ErrAccountExists     = errors.New("accounting: account already exists")
	ErrInsufficientFunds = errors.New("accounting: insufficient resources")
	ErrDeniedByACL       = errors.New("accounting: denied by account ACL")
	ErrBadCheck          = errors.New("accounting: invalid check")
	ErrDuplicateCheck    = errors.New("accounting: duplicate check number")
	ErrNoRoute           = errors.New("accounting: no route to drawee bank")
	ErrHoldExists        = errors.New("accounting: hold already exists for check number")
)

// hold is an outstanding certified-check reservation.
type hold struct {
	currency string
	amount   int64
	expires  time.Time
}

// account is one account's state.
type account struct {
	name        string
	acl         *acl.ACL
	balances    map[string]int64
	uncollected map[string]int64
	holds       map[string]*hold
	history     []Transaction
}

// Server is one accounting server ("$1", "$2" in Fig. 5).
type Server struct {
	// ID is the server's principal identity. Account global names
	// compose it with the local account name.
	ID principal.ID

	identity *pubkey.Identity
	env      *proxy.VerifyEnv
	clk      clock.Clock
	registry *replay.Cache

	// createMu serializes account creation (the check-then-commit in
	// CreateAccount/ensureAccount), so two racing creates of one name
	// cannot both commit an opCreate record.
	createMu sync.Mutex

	// acctMu guards the accounts map itself (membership); the state
	// inside each account is guarded by its stripe in locks.go.
	acctMu   sync.RWMutex
	accounts map[string]*account

	// stripes are the hash-striped account locks; see locks.go for the
	// order discipline.
	stripes [lockStripes]sync.RWMutex

	// cfgMu guards the mutable wiring below — peers, hops, journal,
	// injectors, the ledger reference — and ForwardedChecks. It is a
	// leaf lock: nothing else is acquired while holding it.
	cfgMu    sync.Mutex
	peers    map[principal.ID]*Server
	nextHop  *Server
	journal  *audit.Journal
	hopRetry transport.RetryPolicy
	hopInj   *faultpoint.Injector
	ledger   *ledger.Ledger
	gate     func() error // commit gate; non-nil refusal blocks all mutations

	// ForwardedChecks counts checks this server endorsed onward to
	// another bank (clearing traffic, for the experiments). Guarded by
	// cfgMu; read directly only in sequential tests.
	ForwardedChecks int
}

// SetJournal attaches an audit journal; every balance-changing decision
// (transfers, deposits, clearing hops, holds) is sealed into its chain.
func (s *Server) SetJournal(j *audit.Journal) {
	s.cfgMu.Lock()
	defer s.cfgMu.Unlock()
	s.journal = j
}

// emit seals one record into the attached journal, if any. Callers must
// not hold account stripes. The record's Time and Server are filled in.
func (s *Server) emit(rec audit.Record) {
	s.cfgMu.Lock()
	j := s.journal
	s.cfgMu.Unlock()
	if j == nil {
		return
	}
	rec.Time = s.clk.Now()
	rec.Server = s.ID
	j.Append(rec)
}

// NewServer creates an accounting server. resolve supplies grantor
// identity verification (the public-key directory).
func NewServer(identity *pubkey.Identity, resolve func(principal.ID) (kcrypto.Verifier, error), clk clock.Clock) *Server {
	if clk == nil {
		clk = clock.System{}
	}
	s := &Server{
		ID:       identity.ID,
		identity: identity,
		clk:      clk,
		registry: replay.New(clk),
		accounts: make(map[string]*account),
		peers:    make(map[principal.ID]*Server),
	}
	s.env = &proxy.VerifyEnv{
		Server:          identity.ID,
		Clock:           clk,
		ResolveIdentity: resolve,
	}
	return s
}

// Global returns the global name of a local account.
func (s *Server) Global(name string) principal.Global {
	return principal.NewGlobal(s.ID, name)
}

// AddPeer registers a directly reachable peer bank.
func (s *Server) AddPeer(p *Server) {
	s.cfgMu.Lock()
	defer s.cfgMu.Unlock()
	s.peers[p.ID] = p
}

// SetNextHop sets the correspondent bank used to clear checks drawn on
// banks that are not direct peers.
func (s *Server) SetNextHop(p *Server) {
	s.cfgMu.Lock()
	defer s.cfgMu.Unlock()
	s.nextHop = p
}

// SetHopRetry configures retrying of outbound clearing hops. The zero
// policy (the default) makes a single attempt, preserving the
// synchronous Fig. 5 behavior. With retries enabled, a redelivered
// deposit that the next bank rejects as a duplicate is treated as the
// lost acknowledgment of an earlier success — the accept-once registry
// (§7.7) is the ack of record — so clearing under loss converges to
// exactly-once credit.
func (s *Server) SetHopRetry(p transport.RetryPolicy) {
	s.cfgMu.Lock()
	defer s.cfgMu.Unlock()
	s.hopRetry = p
}

// SetHopInjector installs a fault injector on outbound clearing hops
// (method "acct.clearing-hop"): deliveries to the next bank can be
// dropped before or after taking effect, duplicated, delayed, failed,
// or partitioned. nil removes injection.
func (s *Server) SetHopInjector(inj *faultpoint.Injector) {
	s.cfgMu.Lock()
	defer s.cfgMu.Unlock()
	s.hopInj = inj
}

// CreateAccount creates an account owned by owner, who receives full
// rights on it.
func (s *Server) CreateAccount(name string, owner principal.ID) error {
	s.createMu.Lock()
	defer s.createMu.Unlock()
	if _, ok := s.lookup(name); ok {
		return fmt.Errorf("%w: %s", ErrAccountExists, name)
	}
	// The new account's stripe is held across the commit so whole-bank
	// captures cannot observe the opCreate appended but not yet applied.
	unlock := s.lockAccount(name)
	defer unlock()
	return s.commitOp(&op{kind: opCreate, acct: name, owner: owner})
}

// createAccountApply inserts the account into the map; the applyOp leg
// of opCreate, for both the live path and recovery replay.
func (s *Server) createAccountApply(name string, owner principal.ID) error {
	s.acctMu.Lock()
	defer s.acctMu.Unlock()
	if _, ok := s.accounts[name]; ok {
		return fmt.Errorf("%w: %s", ErrAccountExists, name)
	}
	s.accounts[name] = &account{
		name:        name,
		acl:         acl.New(acl.PrincipalEntry(owner, OpDebit, OpCredit, OpRead)),
		balances:    make(map[string]int64),
		uncollected: make(map[string]int64),
		holds:       make(map[string]*hold),
	}
	return nil
}

// AccountACL returns the account's ACL for extension (e.g. adding an
// authorization server, §3.5). The ACL is internally synchronized.
func (s *Server) AccountACL(name string) (*acl.ACL, error) {
	a, ok := s.lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoAccount, name)
	}
	return a.acl, nil
}

// Mint credits an account out of thin air — provisioning for tests,
// examples, and resource-currency servers (a printer server minting
// "pages").
// A non-positive amount is rejected: minting zero is meaningless and a
// negative mint is a disguised debit that would bypass the account ACL.
func (s *Server) Mint(name, currency string, amount int64) error {
	if amount <= 0 {
		return fmt.Errorf("%w: mint amount must be positive, got %d", ErrBadCheck, amount)
	}
	if _, ok := s.lookup(name); !ok {
		return fmt.Errorf("%w: %s", ErrNoAccount, name)
	}
	unlock := s.lockAccount(name)
	defer unlock()
	return s.commitOp(&op{kind: opMint, time: s.clk.Now(), acct: name, currency: currency, amount: amount})
}

// Balance returns the collected balance, requiring read rights.
func (s *Server) Balance(name, currency string, requesters []principal.ID) (int64, error) {
	mBalanceReads.Inc()
	a, ok := s.lookup(name)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoAccount, name)
	}
	if _, err := a.acl.Match(acl.Query{Op: OpRead, Identities: requesters}); err != nil {
		return 0, fmt.Errorf("%w: read %s: %v", ErrDeniedByACL, name, err)
	}
	unlock := s.rlockAccount(name)
	defer unlock()
	return a.balances[currency], nil
}

// UncollectedBalance returns deposited-but-unclear funds.
func (s *Server) UncollectedBalance(name, currency string, requesters []principal.ID) (int64, error) {
	mBalanceReads.Inc()
	a, ok := s.lookup(name)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoAccount, name)
	}
	if _, err := a.acl.Match(acl.Query{Op: OpRead, Identities: requesters}); err != nil {
		return 0, fmt.Errorf("%w: read %s: %v", ErrDeniedByACL, name, err)
	}
	unlock := s.rlockAccount(name)
	defer unlock()
	return a.uncollected[currency], nil
}

// Transfer moves funds between two local accounts; requesters need
// debit rights on from. This is also the quota primitive: "Quotas are
// implemented by transferring funds of the appropriate currency out of
// an account when the resource is allocated and transferring the funds
// back when the resource is released."
func (s *Server) Transfer(from, to, currency string, amount int64, requesters []principal.ID) error {
	return s.TransferCtx(context.Background(), from, to, currency, amount, requesters)
}

// TransferCtx is Transfer with a request context; the context's trace
// ID is stamped onto the audit record.
func (s *Server) TransferCtx(ctx context.Context, from, to, currency string, amount int64, requesters []principal.ID) (err error) {
	defer func() {
		rec := audit.Record{
			Kind:       audit.KindTransfer,
			TraceID:    obs.TraceIDFrom(ctx),
			Presenters: requesters,
			Object:     debitObject(from),
			Op:         OpDebit,
			Outcome:    audit.OutcomeGranted,
			Detail: map[string]string{
				"from":     from,
				"to":       to,
				"currency": currency,
				"amount":   strconv.FormatInt(amount, 10),
			},
		}
		if err != nil {
			mTransfers.With("error").Inc()
			rec.Outcome = audit.OutcomeDenied
			rec.Reason = err.Error()
		} else {
			mTransfers.With("ok").Inc()
		}
		s.emit(rec)
	}()
	if amount < 0 {
		return fmt.Errorf("%w: negative amount", ErrBadCheck)
	}
	// A self-transfer is rejected rather than silently recorded: it
	// would add two no-op statement lines per call and, through
	// AllocateQuota/ReleaseQuota, let a consumer "reserve" quota into
	// its own account without ever parting with the funds.
	if from == to {
		return fmt.Errorf("%w: transfer from %q to itself", ErrBadCheck, from)
	}
	src, ok := s.lookup(from)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoAccount, from)
	}
	if _, ok := s.lookup(to); !ok {
		return fmt.Errorf("%w: %s", ErrNoAccount, to)
	}
	if _, err := src.acl.Match(acl.Query{Op: OpDebit, Identities: requesters}); err != nil {
		return fmt.Errorf("%w: debit %s: %v", ErrDeniedByACL, from, err)
	}
	// Both stripes, ascending: the funds check and the commit form one
	// critical section, and opposite-direction transfers cannot deadlock.
	unlock := s.lockPair(from, to)
	defer unlock()
	if src.balances[currency] < amount {
		return fmt.Errorf("%w: %s has %d %s, need %d", ErrInsufficientFunds,
			from, src.balances[currency], currency, amount)
	}
	return s.commitOp(&op{kind: opTransfer, time: s.clk.Now(), acct: from, to: to, currency: currency, amount: amount})
}

// AllocateQuota reserves amount of currency from the consumer's account
// into the resource holder's account, failing if the quota is exhausted.
func (s *Server) AllocateQuota(consumer, holder, currency string, amount int64, requesters []principal.ID) error {
	return s.Transfer(consumer, holder, currency, amount, requesters)
}

// ReleaseQuota returns previously allocated resources; the holder's ACL
// must grant the requesters debit rights on the holder account.
func (s *Server) ReleaseQuota(holder, consumer, currency string, amount int64, requesters []principal.ID) error {
	return s.Transfer(holder, consumer, currency, amount, requesters)
}
