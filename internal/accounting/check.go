package accounting

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"time"

	"proxykit/internal/audit"
	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
)

// Check is a numbered delegate proxy authorizing a transfer from the
// payor's account: "A principal authorized to debit an account (the
// payor) issues a numbered delegate proxy (a check) authorizing the
// payee to transfer funds from the payor's account to that of the
// payee."
//
// The metadata fields mirror the proxy's restrictions for convenience;
// the signed restrictions are authoritative and banks re-derive
// everything from them.
type Check struct {
	// Number is the check number (an accept-once identifier).
	Number string
	// Bank the check is drawn on.
	Bank principal.ID
	// Account is the payor's local account name at Bank.
	Account string
	// Currency and Amount of the payment.
	Currency string
	Amount   int64
	// Payee is the named payee; zero for a bearer check.
	Payee principal.ID
	// Proxy is the underlying restricted proxy (certificate chain plus,
	// for bearer checks, the proxy key).
	Proxy *proxy.Proxy
}

// debitObject is the restriction object name for debiting an account.
func debitObject(account string) string { return "account:" + account }

// WriteCheckParams describes a check to be written.
type WriteCheckParams struct {
	// Payor signs the check; the payor must hold debit rights on the
	// account at the bank.
	Payor *pubkey.Identity
	// Bank the check is drawn on.
	Bank principal.ID
	// Account is the payor's account at Bank.
	Account string
	// Payee the check is payable to; zero writes a bearer check.
	Payee principal.ID
	// Currency and Amount of the payment.
	Currency string
	Amount   int64
	// Lifetime bounds the check's validity (and the duplicate-number
	// retention window, §7.7).
	Lifetime time.Duration
	// Clock supplies the issue time; nil uses the system clock.
	Clock clock.Clock
	// Number overrides the generated check number when non-empty —
	// re-presenting a bounced check, or deterministic tests.
	Number string
	// Journal, when non-nil, records the check-write in an audit
	// journal (payor-side instruments are written outside any server).
	Journal *audit.Journal
}

// WriteCheck creates and signs a check. The restrictions encode the
// figure-5 check "[ckno, amount, S]C": accept-once carries the number,
// quota the amount, grantee the payee, authorized the payor account
// debit, and issued-for the drawee bank.
func WriteCheck(p WriteCheckParams) (*Check, error) {
	if p.Amount <= 0 {
		return nil, fmt.Errorf("%w: non-positive amount", ErrBadCheck)
	}
	if p.Lifetime <= 0 {
		p.Lifetime = 30 * 24 * time.Hour
	}
	number := p.Number
	if number == "" {
		num, err := kcrypto.Nonce(12)
		if err != nil {
			return nil, err
		}
		number = hex.EncodeToString(num)
	}
	rs := restrict.Set{
		restrict.AcceptOnce{ID: number},
		restrict.Quota{Currency: p.Currency, Limit: p.Amount},
		restrict.Authorized{Entries: []restrict.AuthorizedEntry{
			{Object: debitObject(p.Account), Ops: []string{OpDebit}},
		}},
		restrict.IssuedFor{Servers: []principal.ID{p.Bank}},
	}
	if !p.Payee.IsZero() {
		rs = append(rs, restrict.Grantee{Principals: []principal.ID{p.Payee}})
	}
	px, err := proxy.Grant(proxy.GrantParams{
		Grantor:       p.Payor.ID,
		GrantorSigner: p.Payor.Signer(),
		Restrictions:  rs,
		Lifetime:      p.Lifetime,
		Mode:          proxy.ModePublicKey,
		Clock:         p.Clock,
	})
	if err != nil {
		return nil, err
	}
	mChecksWritten.Inc()
	if p.Journal != nil {
		detail := map[string]string{
			"number":   number,
			"bank":     p.Bank.String(),
			"currency": p.Currency,
			"amount":   strconv.FormatInt(p.Amount, 10),
		}
		if !p.Payee.IsZero() {
			detail["payee"] = p.Payee.String()
		}
		p.Journal.Append(audit.Record{
			Kind:    audit.KindCheckWrite,
			Server:  p.Bank,
			Grantor: p.Payor.ID,
			Object:  debitObject(p.Account),
			Op:      "write-check",
			Outcome: audit.OutcomeGranted,
			Detail:  detail,
		})
	}
	return &Check{
		Number:   number,
		Bank:     p.Bank,
		Account:  p.Account,
		Currency: p.Currency,
		Amount:   p.Amount,
		Payee:    p.Payee,
		Proxy:    px,
	}, nil
}

// Endorse adds an endorsement: a cascaded proxy naming the next holder
// and directing the proceeds. honoringBank is the bank that must honor
// the deposit instruction; depositTo is the account (at honoringBank)
// the proceeds must be credited to.
//
// A restricted ("for deposit only") endorsement is a delegate cascade —
// the endorser signs with its identity, leaving an audit trail. An
// unrestricted endorsement is a bearer cascade signed with the check's
// proxy key (only possible while holding the key, i.e. for bearer
// checks).
func (c *Check) Endorse(endorser *pubkey.Identity, nextHolder principal.ID, honoringBank principal.ID, depositTo principal.Global, restricted bool, clk clock.Clock) (*Check, error) {
	added := restrict.Set{
		restrict.Limit{
			Servers:      []principal.ID{honoringBank},
			Restrictions: restrict.Set{restrict.DepositTo{Account: depositTo}},
		},
	}
	if !nextHolder.IsZero() {
		added = append(added, restrict.Grantee{Principals: []principal.ID{nextHolder}})
	}
	if clk == nil {
		clk = clock.System{}
	}
	lifetime := c.Proxy.Expires().Sub(clk.Now())
	if lifetime <= 0 {
		return nil, fmt.Errorf("%w: check expired", ErrBadCheck)
	}
	cp := proxy.CascadeParams{
		Added:    added,
		Lifetime: lifetime,
		Mode:     proxy.ModePublicKey,
		Clock:    clk,
	}
	var px *proxy.Proxy
	var err error
	if restricted {
		px, err = c.Proxy.CascadeDelegate(endorser.ID, endorser.Signer(), cp)
	} else {
		px, err = c.Proxy.CascadeBearer(cp)
	}
	if err != nil {
		return nil, fmt.Errorf("accounting: endorse: %w", err)
	}
	out := *c
	out.Proxy = px
	return &out, nil
}

// depositInstructionFor extracts the deposit-to instruction scoped to
// server, if any: the innermost (latest) limit-restriction naming the
// server wins, matching endorsement order.
func depositInstructionFor(rs restrict.Set, server principal.ID) (principal.Global, bool) {
	var out principal.Global
	found := false
	for _, r := range rs {
		l, ok := r.(restrict.Limit)
		if !ok {
			continue
		}
		applies := false
		for _, sv := range l.Servers {
			if sv == server {
				applies = true
				break
			}
		}
		if !applies {
			continue
		}
		for _, inner := range l.Restrictions {
			if dt, ok := inner.(restrict.DepositTo); ok {
				out = dt.Account
				found = true
			}
		}
	}
	return out, found
}
