package accounting

import (
	"errors"
	"sync"
	"testing"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/audit"
	"proxykit/internal/principal"
)

// TestConcurrentDuplicateDeposit races many depositors with copies of
// the same check: exactly one transfer must happen.
func TestConcurrentDuplicateDeposit(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	c, err := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
		Payee: dave, Currency: "dollars", Amount: 100,
		Lifetime: time.Hour, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}

	const racers = 16
	var wg sync.WaitGroup
	successes := make(chan *Receipt, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); err == nil {
				successes <- r
			} else if !errors.Is(err, ErrDuplicateCheck) {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	close(successes)
	n := 0
	for range successes {
		n++
	}
	if n != 1 {
		t.Fatalf("%d concurrent deposits of one check succeeded", n)
	}
	if got := w.balance(w.bank2, "carol", carol); got != 900 {
		t.Fatalf("carol = %d", got)
	}
	if got := w.balance(w.bank2, "dave", dave); got != 100 {
		t.Fatalf("dave = %d", got)
	}
}

// TestConcurrentDuplicateDepositAudit is the journal-level property:
// racing N depositors with copies of one numbered check credits the
// payee exactly once, and the journal seals exactly one granted
// deposit plus one accept-once rejection per suppressed duplicate — so
// the exactly-once outcome is reconstructible from the audit chain
// alone.
func TestConcurrentDuplicateDepositAudit(t *testing.T) {
	w := newWorld(t)
	journal := audit.NewMemory(1024)
	w.bank2.SetJournal(journal)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	c, err := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
		Payee: dave, Currency: "dollars", Amount: 100,
		Lifetime: time.Hour, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}

	const racers = 16
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = w.bank2.DepositCheck(c, []principal.ID{dave}, "dave")
		}()
	}
	wg.Wait()

	if got := w.balance(w.bank2, "dave", dave); got != 100 {
		t.Fatalf("dave = %d, want exactly-once credit of 100", got)
	}
	recs := journal.Tail(0)
	if err := audit.VerifyChain(recs); err != nil {
		t.Fatalf("journal chain: %v", err)
	}
	var granted, denied, rejects int
	for _, r := range recs {
		if r.Detail["number"] != c.Number {
			continue
		}
		switch {
		case r.Kind == audit.KindDeposit && r.Outcome == audit.OutcomeGranted:
			granted++
		case r.Kind == audit.KindDeposit && r.Outcome == audit.OutcomeDenied:
			denied++
		case r.Kind == audit.KindAcceptOnceReject:
			rejects++
		}
	}
	if granted != 1 {
		t.Errorf("journal: %d granted deposits, want 1", granted)
	}
	if rejects != racers-1 {
		t.Errorf("journal: %d accept-once rejections, want %d (one per duplicate)", rejects, racers-1)
	}
	if denied != racers-1 {
		t.Errorf("journal: %d denied deposits, want %d", denied, racers-1)
	}
}

// TestConcurrentTransfersConserve races transfers between two accounts
// in both directions and checks conservation and non-negativity.
func TestConcurrentTransfersConserve(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	if err := w.bank2.Mint("dave", "dollars", 1000); err != nil {
		t.Fatal(err)
	}
	// Both can debit both accounts for this test.
	carolACL, err := w.bank2.AccountACL("carol")
	if err != nil {
		t.Fatal(err)
	}
	carolACL.Add(acl.PrincipalEntry(dave, OpDebit, OpCredit, OpRead))
	daveACL, err := w.bank2.AccountACL("dave")
	if err != nil {
		t.Fatal(err)
	}
	daveACL.Add(acl.PrincipalEntry(carol, OpDebit, OpCredit, OpRead))

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = w.bank2.Transfer("carol", "dave", "dollars", 7, []principal.ID{carol})
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = w.bank2.Transfer("dave", "carol", "dollars", 5, []principal.ID{dave})
			}
		}()
	}
	wg.Wait()
	cb := w.balance(w.bank2, "carol", carol)
	db, err := w.bank2.Balance("dave", "dollars", []principal.ID{dave})
	if err != nil {
		t.Fatal(err)
	}
	if cb < 0 || db < 0 {
		t.Fatalf("negative balance: carol=%d dave=%d", cb, db)
	}
	if cb+db != 2000 {
		t.Fatalf("money not conserved: %d + %d != 2000", cb, db)
	}
}
