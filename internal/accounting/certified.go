package accounting

import (
	"fmt"
	"time"

	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/restrict"
)

// CertifiedCheck couples a check with the bank's certification proxy:
// "The accounting server places a hold on the resources and returns an
// authorization proxy to the client certifying that the client has
// sufficient resources to cover the check. The client presents the
// authorization proxy and the check to the end-server along with its
// application request."
type CertifiedCheck struct {
	// Check is the underlying check.
	Check *Check
	// Certification is the bank-signed proxy asserting the hold.
	Certification *proxy.Proxy
}

// certifiedObject is the restriction object naming a certified check.
func certifiedObject(number string) string { return "certified:" + number }

// OpVerifyFunds is the operation a certification proxy authorizes.
const OpVerifyFunds = "verify-funds"

// issueCertification builds the bank-signed authorization proxy for a
// held check.
func (s *Server) issueCertification(c *Check, lifetime time.Duration) (*proxy.Proxy, error) {
	if lifetime <= 0 {
		return nil, fmt.Errorf("%w: certification lifetime", ErrBadCheck)
	}
	rs := restrict.Set{
		restrict.Authorized{Entries: []restrict.AuthorizedEntry{
			{Object: certifiedObject(c.Number), Ops: []string{OpVerifyFunds}},
		}},
		restrict.Quota{Currency: c.Currency, Limit: c.Amount},
	}
	return proxy.Grant(proxy.GrantParams{
		Grantor:       s.ID,
		GrantorSigner: s.identity.Signer(),
		Restrictions:  rs,
		Lifetime:      lifetime,
		Mode:          proxy.ModePublicKey,
		Clock:         s.clk,
	})
}

// VerifyCertification lets an end-server check a certification before
// performing work: the proxy must be signed by the check's drawee bank
// and assert at least the check's amount for the check's number.
func VerifyCertification(cc *CertifiedCheck, env *proxy.VerifyEnv, server principal.ID) error {
	if cc == nil || cc.Check == nil || cc.Certification == nil {
		return fmt.Errorf("%w: incomplete certified check", ErrBadCheck)
	}
	v, err := env.VerifyChain(cc.Certification.Certs)
	if err != nil {
		return fmt.Errorf("%w: certification: %v", ErrBadCheck, err)
	}
	if v.Grantor != cc.Check.Bank {
		return fmt.Errorf("%w: certification signed by %s, check drawn on %s",
			ErrBadCheck, v.Grantor, cc.Check.Bank)
	}
	ctx := &restrict.Context{
		Server:    server,
		Object:    certifiedObject(cc.Check.Number),
		Operation: OpVerifyFunds,
		Amounts:   map[string]int64{cc.Check.Currency: cc.Check.Amount},
		Now:       env.Clock.Now(),
	}
	if err := v.Authorize(ctx); err != nil {
		return fmt.Errorf("%w: certification: %v", ErrBadCheck, err)
	}
	return nil
}
