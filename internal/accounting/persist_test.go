package accounting

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/faultpoint"
	"proxykit/internal/ledger"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
)

// ---- ledger-integrity regression tests ----

func TestMintRejectsNonPositive(t *testing.T) {
	w := newWorld(t)
	for _, amount := range []int64{0, -1, -1000} {
		err := w.bank2.Mint("carol", "dollars", amount)
		if !errors.Is(err, ErrBadCheck) {
			t.Errorf("Mint(%d) = %v, want ErrBadCheck", amount, err)
		}
	}
	// The balance survives untouched: a negative mint used to be a
	// disguised, ACL-free debit.
	bal, err := w.bank2.Balance("carol", "dollars", []principal.ID{carol})
	if err != nil {
		t.Fatal(err)
	}
	if bal != 1000 {
		t.Errorf("balance after rejected mints = %d, want 1000", bal)
	}
}

func TestTransferRejectsSelf(t *testing.T) {
	w := newWorld(t)
	err := w.bank2.Transfer("carol", "carol", "dollars", 10, []principal.ID{carol})
	if !errors.Is(err, ErrBadCheck) {
		t.Fatalf("self-transfer = %v, want ErrBadCheck", err)
	}
	// The quota primitives route through Transfer and must refuse a
	// consumer "reserving" quota into its own account.
	if err := w.bank2.AllocateQuota("carol", "carol", "pages", 1, []principal.ID{carol}); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("self AllocateQuota = %v, want ErrBadCheck", err)
	}
	st, err := w.bank2.Statement("carol", []principal.ID{carol})
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range st {
		if tx.Kind == TxTransferIn || tx.Kind == TxTransferOut {
			t.Fatalf("self-transfer left statement lines: %+v", tx)
		}
	}
}

// ---- recovery property test ----

// pworld is a two-bank economy where bankL (the bank under test) runs
// on a durable ledger and bankR is a plain in-memory peer.
type pworld struct {
	t     *testing.T
	clk   *clock.Fake
	dir   *pubkey.Directory
	ids   map[principal.ID]*pubkey.Identity
	bankL *Server
	bankR *Server
	ldir  string
}

var (
	pCarol = principal.New("carol", "ISI.EDU")
	pDave  = principal.New("dave", "ISI.EDU")
	pSrv   = principal.New("service", "ISI.EDU")
	pRita  = principal.New("rita", "ISI.EDU")
	pBankL = principal.New("bankL", "ISI.EDU")
	pBankR = principal.New("bankR", "ISI.EDU")
)

// seededIdentity derives a deterministic identity for id.
func seededIdentity(t *testing.T, id principal.ID, n byte) *pubkey.Identity {
	t.Helper()
	seed := bytes.Repeat([]byte{n}, 32)
	ident, err := pubkey.IdentityFromSeed(id, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ident
}

func newPWorld(t *testing.T, ldir string) *pworld {
	t.Helper()
	w := &pworld{
		t:    t,
		clk:  clock.NewFake(time.Unix(19_000_000, 0)),
		dir:  pubkey.NewDirectory(),
		ids:  make(map[principal.ID]*pubkey.Identity),
		ldir: ldir,
	}
	for i, id := range []principal.ID{pCarol, pDave, pSrv, pRita, pBankL, pBankR} {
		ident := seededIdentity(t, id, byte(i+1))
		w.ids[id] = ident
		w.dir.RegisterIdentity(ident)
	}
	w.bankL = NewServer(w.ids[pBankL], w.dir.Resolver(), w.clk)
	w.bankR = NewServer(w.ids[pBankR], w.dir.Resolver(), w.clk)
	// Disable amortized registry sweeping: a sweep mutates registry
	// state outside the WAL, which would make recovered state diverge
	// from the live reference by exactly the swept entries.
	w.bankL.registry.SweepEvery = 0
	w.bankR.registry.SweepEvery = 0
	w.bankL.AddPeer(w.bankR)
	w.bankR.AddPeer(w.bankL)

	if _, err := w.bankL.OpenLedger(ledger.Options{Dir: ldir, Fsync: ledger.FsyncAlways}); err != nil {
		t.Fatal(err)
	}
	mustDo(t, w.bankL.CreateAccount("carol", pCarol))
	mustDo(t, w.bankL.CreateAccount("dave", pDave))
	mustDo(t, w.bankL.CreateAccount("service", pSrv))
	mustDo(t, w.bankL.Mint("carol", "dollars", 5_000))
	mustDo(t, w.bankL.Mint("dave", "dollars", 5_000))
	mustDo(t, w.bankR.CreateAccount("rita", pRita))
	mustDo(t, w.bankR.Mint("rita", "dollars", 100_000))
	return w
}

func mustDo(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// snap returns the marshaled state and covered WAL sequence of bankL.
func (w *pworld) snap() ([]byte, uint64) {
	state, seq, err := w.bankL.SnapshotState()
	if err != nil {
		w.t.Fatal(err)
	}
	return state, seq
}

// step runs one random operation against bankL. Business errors
// (insufficient funds, duplicate numbers) are part of the workload.
func (w *pworld) step(rng *rand.Rand, i int) {
	w.clk.Advance(time.Duration(1+rng.Intn(90)) * time.Second)
	accounts := []string{"carol", "dave", "service"}
	owners := map[string]principal.ID{"carol": pCarol, "dave": pDave, "service": pSrv}
	from := accounts[rng.Intn(len(accounts))]
	to := accounts[rng.Intn(len(accounts))]
	amount := int64(1 + rng.Intn(500))

	switch rng.Intn(8) {
	case 0:
		_ = w.bankL.Mint(from, "dollars", amount)
	case 1:
		_ = w.bankL.Transfer(from, to, "dollars", amount, []principal.ID{owners[from]})
	case 2: // local check: from's owner pays to
		c, err := WriteCheck(WriteCheckParams{
			Payor: w.ids[owners[from]], Bank: w.bankL.ID, Account: from,
			Payee: owners[to], Currency: "dollars", Amount: amount,
			Lifetime: time.Hour, Clock: w.clk,
		})
		if err != nil {
			w.t.Fatal(err)
		}
		endorsed, err := c.Endorse(w.ids[owners[to]], w.bankL.ID, w.bankL.ID, w.bankL.Global(to), false, w.clk)
		if err != nil {
			w.t.Fatal(err)
		}
		_, _ = w.bankL.DepositCheck(endorsed, []principal.ID{owners[to]}, to)
	case 3: // cross-bank: rita pays from's owner, cleared via bankR
		c, err := WriteCheck(WriteCheckParams{
			Payor: w.ids[pRita], Bank: w.bankR.ID, Account: "rita",
			Payee: owners[from], Currency: "dollars", Amount: amount,
			Lifetime: time.Hour, Clock: w.clk,
		})
		if err != nil {
			w.t.Fatal(err)
		}
		endorsed, err := c.Endorse(w.ids[owners[from]], w.bankL.ID, w.bankR.ID, w.bankL.Global(from), false, w.clk)
		if err != nil {
			w.t.Fatal(err)
		}
		_, _ = w.bankL.DepositCheck(endorsed, []principal.ID{owners[from]}, from)
	case 4: // cross-bank deposit that bounces: the hop is partitioned
		w.bankL.SetHopInjector(faultpoint.New(int64(i), faultpoint.Rule{Method: HopMethod, Partition: true}))
		c, err := WriteCheck(WriteCheckParams{
			Payor: w.ids[pRita], Bank: w.bankR.ID, Account: "rita",
			Payee: owners[from], Currency: "dollars", Amount: amount,
			Lifetime: time.Hour, Clock: w.clk,
		})
		if err != nil {
			w.t.Fatal(err)
		}
		endorsed, err := c.Endorse(w.ids[owners[from]], w.bankL.ID, w.bankR.ID, w.bankL.Global(from), false, w.clk)
		if err != nil {
			w.t.Fatal(err)
		}
		if _, err := w.bankL.DepositCheck(endorsed, []principal.ID{owners[from]}, from); err == nil {
			w.t.Fatal("partitioned clearing hop unexpectedly succeeded")
		}
		w.bankL.SetHopInjector(nil)
	case 5: // certify (hold) and usually deposit the certified check
		c, err := WriteCheck(WriteCheckParams{
			Payor: w.ids[owners[from]], Bank: w.bankL.ID, Account: from,
			Payee: owners[to], Currency: "dollars", Amount: amount,
			Lifetime: time.Duration(1+rng.Intn(10)) * time.Minute, Clock: w.clk,
		})
		if err != nil {
			w.t.Fatal(err)
		}
		cc, err := w.bankL.Certify(from, []principal.ID{owners[from]}, c)
		if err != nil {
			return
		}
		if rng.Intn(3) > 0 {
			endorsed, err := cc.Check.Endorse(w.ids[owners[to]], w.bankL.ID, w.bankL.ID, w.bankL.Global(to), false, w.clk)
			if err != nil {
				w.t.Fatal(err)
			}
			_, _ = w.bankL.DepositCheck(endorsed, []principal.ID{owners[to]}, to)
		}
	case 6: // let holds lapse and sweep them back
		w.clk.Advance(time.Duration(rng.Intn(15)) * time.Minute)
		w.bankL.ReleaseExpiredHolds()
	case 7: // re-present a duplicate check number (accept-once refusal)
		c, err := WriteCheck(WriteCheckParams{
			Payor: w.ids[owners[from]], Bank: w.bankL.ID, Account: from,
			Payee: owners[to], Currency: "dollars", Amount: amount,
			Lifetime: time.Hour, Clock: w.clk, Number: fmt.Sprintf("dup-%d", rng.Intn(4)),
		})
		if err != nil {
			w.t.Fatal(err)
		}
		endorsed, err := c.Endorse(w.ids[owners[to]], w.bankL.ID, w.bankL.ID, w.bankL.Global(to), false, w.clk)
		if err != nil {
			w.t.Fatal(err)
		}
		_, _ = w.bankL.DepositCheck(endorsed, []principal.ID{owners[to]}, to)
	}
}

// recoverAt copies bankL's ledger directory with the WAL truncated to
// walBytes and opens a fresh server on the copy, returning it and the
// recovery report.
func (w *pworld) recoverAt(walBytes int64) (*Server, *ledger.Recovery) {
	w.t.Helper()
	dst := w.t.TempDir()
	if raw, err := os.ReadFile(ledger.SnapshotPath(w.ldir)); err == nil {
		if err := os.WriteFile(ledger.SnapshotPath(dst), raw, 0o600); err != nil {
			w.t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(ledger.WALPath(w.ldir))
	if err != nil {
		w.t.Fatal(err)
	}
	if walBytes > int64(len(raw)) {
		w.t.Fatalf("truncation point %d beyond WAL size %d", walBytes, len(raw))
	}
	if err := os.WriteFile(ledger.WALPath(dst), raw[:walBytes], 0o600); err != nil {
		w.t.Fatal(err)
	}
	srv := NewServer(w.ids[pBankL], w.dir.Resolver(), clock.NewFake(w.clk.Now()))
	srv.registry.SweepEvery = 0
	rec, err := srv.OpenLedger(ledger.Options{Dir: dst, Fsync: ledger.FsyncOff})
	if err != nil {
		w.t.Fatalf("recovery at %d bytes: %v", walBytes, err)
	}
	return srv, rec
}

// TestRecoveryLosslessProperty drives a random operation sequence
// against a ledger-backed bank, then simulates a crash at every WAL
// record boundary — and inside every record — and checks the recovered
// state deep-equals the reference state the live server had at exactly
// that point. State equality is byte-equality of the canonical
// (sorted) snapshot document.
func TestRecoveryLosslessProperty(t *testing.T) {
	const seed = 7
	rng := rand.New(rand.NewSource(seed))
	ldir := t.TempDir()
	w := newPWorld(t, ldir)

	// states[seq] is the reference state after the API call that
	// committed WAL record seq. Boundaries inside a multi-record call
	// (pending/collected/rollback) have no entry and are only checked
	// for clean recovery.
	states := map[uint64][]byte{}
	st, seq := w.snap()
	states[seq] = st
	const steps = 60
	for i := 0; i < steps; i++ {
		w.step(rng, i)
		st, seq := w.snap()
		states[seq] = st
	}
	if err := w.bankL.CloseLedger(); err != nil {
		t.Fatal(err)
	}

	offsets, err := ledger.ScanOffsets(ledger.WALPath(ldir))
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) < 40 {
		t.Fatalf("workload produced only %d WAL records", len(offsets))
	}

	check := func(walBytes int64, wantSeq uint64, wantTorn bool) {
		srv, rec := w.recoverAt(walBytes)
		defer srv.CloseLedger()
		if wantTorn && !rec.TornTail {
			t.Errorf("truncation at %d bytes: torn tail not reported", walBytes)
		}
		want, ok := states[wantSeq]
		if !ok {
			return // mid-call boundary: clean recovery is the assertion
		}
		got, _, err := srv.SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("recovered state at %d bytes (seq %d) diverges from reference\n got: %s\nwant: %s",
				walBytes, wantSeq, got, want)
		}
	}

	check(0, 0, false) // crash before anything hit the WAL
	prevEnd, prevSeq := int64(0), uint64(0)
	for _, pos := range offsets {
		check(pos.End, pos.Seq, false)
		// A torn write inside this record recovers to the previous one.
		if pos.End-prevEnd > 4 {
			check(pos.End-3, prevSeq, true)
		}
		prevEnd, prevSeq = pos.End, pos.Seq
	}
}

// TestRecoveryWithSnapshotProperty interleaves a snapshot into the
// workload and crash-tests every boundary after it: recovery must
// compose snapshot + WAL tail, and a crash with an empty tail must
// land exactly on the snapshot state.
func TestRecoveryWithSnapshotProperty(t *testing.T) {
	const seed = 11
	rng := rand.New(rand.NewSource(seed))
	ldir := t.TempDir()
	w := newPWorld(t, ldir)

	states := map[uint64][]byte{}
	for i := 0; i < 25; i++ {
		w.step(rng, i)
	}
	if err := w.bankL.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	st, seq := w.snap()
	states[seq] = st
	snapSeq := seq
	for i := 25; i < 50; i++ {
		w.step(rng, i)
		st, seq := w.snap()
		states[seq] = st
	}
	if err := w.bankL.CloseLedger(); err != nil {
		t.Fatal(err)
	}

	offsets, err := ledger.ScanOffsets(ledger.WALPath(ldir))
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) == 0 {
		t.Fatal("no WAL records after snapshot")
	}

	srv, rec := w.recoverAt(0)
	if rec.SnapshotSeq != snapSeq {
		t.Errorf("recovered snapshot seq = %d, want %d", rec.SnapshotSeq, snapSeq)
	}
	got, _, err := srv.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, states[snapSeq]) {
		t.Errorf("empty-tail recovery diverges from snapshot state")
	}
	srv.CloseLedger()

	for _, pos := range offsets {
		want, ok := states[pos.Seq]
		if !ok {
			continue
		}
		srv, _ := w.recoverAt(pos.End)
		got, _, err := srv.SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("recovered state at seq %d diverges from reference", pos.Seq)
		}
		srv.CloseLedger()
	}
}

// TestRecoveredBankRejectsPaidCheckNumber is the §7.7 durability claim
// in miniature: pay a check, crash, restart — the restarted bank must
// still refuse the number.
func TestRecoveredBankRejectsPaidCheckNumber(t *testing.T) {
	ldir := t.TempDir()
	w := newPWorld(t, ldir)
	writeNumbered := func(n string) *Check {
		c, err := WriteCheck(WriteCheckParams{
			Payor: w.ids[pCarol], Bank: w.bankL.ID, Account: "carol",
			Payee: pSrv, Currency: "dollars", Amount: 100,
			Lifetime: time.Hour, Clock: w.clk, Number: n,
		})
		if err != nil {
			t.Fatal(err)
		}
		endorsed, err := c.Endorse(w.ids[pSrv], w.bankL.ID, w.bankL.ID, w.bankL.Global("service"), false, w.clk)
		if err != nil {
			t.Fatal(err)
		}
		return endorsed
	}
	if _, err := w.bankL.DepositCheck(writeNumbered("ck-1"), []principal.ID{pSrv}, "service"); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ledger.WALPath(ldir))
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := w.recoverAt(int64(len(raw)))
	defer srv.CloseLedger()
	if _, err := srv.DepositCheck(writeNumbered("ck-1"), []principal.ID{pSrv}, "service"); !errors.Is(err, ErrDuplicateCheck) {
		t.Fatalf("recovered bank accepted a paid check number: %v", err)
	}
	bal, err := srv.Balance("service", "dollars", []principal.ID{pSrv})
	if err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("service balance after recovery = %d, want 100", bal)
	}
}
