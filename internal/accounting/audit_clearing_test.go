package accounting

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"proxykit/internal/audit"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
)

// TestClearingAuditTrailAcrossBanks deposits a cross-bank check and
// reconstructs the full clearing hop sequence from the two banks'
// journals alone: both files verify, every record carries the
// originating request's trace ID, and the hop records name each other.
func TestClearingAuditTrailAcrossBanks(t *testing.T) {
	w := newWorld(t)
	dir := t.TempDir()
	path1 := filepath.Join(dir, "bank1.jsonl")
	path2 := filepath.Join(dir, "bank2.jsonl")
	j1, err := audit.New(audit.Options{Path: path1})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := audit.New(audit.Options{Path: path2})
	if err != nil {
		t.Fatal(err)
	}
	w.bank1.SetJournal(j1)
	w.bank2.SetJournal(j2)

	tr := obs.NewTrace()
	ctx := obs.ContextWithTrace(context.Background(), tr)

	// Fig. 5: carol (banks at $2) pays the service (banks at $1); the
	// service deposits at its own bank, which collects from carol's.
	c := w.carolCheck(250)
	endorsed := w.endorseTo(c, srvS, w.bank1, "service")
	r, err := w.bank1.DepositCheckCtx(ctx, endorsed, []principal.ID{srvS}, "service")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Collected || r.Hops != 2 {
		t.Fatalf("receipt = %+v", r)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Both journal files re-verify from disk.
	for _, path := range []string{path1, path2} {
		if n, err := audit.VerifyFile(path); err != nil {
			t.Fatalf("verify %s: %v (after %d records)", path, err, n)
		}
	}

	byKind := func(recs []audit.Record, kind string) *audit.Record {
		var found *audit.Record
		for i := range recs {
			if recs[i].Kind == kind {
				if found != nil {
					t.Fatalf("duplicate %s record", kind)
				}
				found = &recs[i]
			}
		}
		return found
	}

	// The payee's bank recorded the deposit and its onward hop; the
	// drawee recorded the clearing deposit. All three share the trace.
	recs1 := j1.Tail(0)
	recs2 := j2.Tail(0)
	dep1 := byKind(recs1, audit.KindDeposit)
	hop1 := byKind(recs1, audit.KindClearingHop)
	dep2 := byKind(recs2, audit.KindDeposit)
	if dep1 == nil || hop1 == nil || dep2 == nil {
		t.Fatalf("missing records: bank1=%v bank2=%v", recs1, recs2)
	}
	for _, rec := range []*audit.Record{dep1, hop1, dep2} {
		if rec.TraceID != tr.TraceID {
			t.Errorf("%s record trace = %q, want %q", rec.Kind, rec.TraceID, tr.TraceID)
		}
		if rec.Outcome != audit.OutcomeGranted {
			t.Errorf("%s record outcome = %v", rec.Kind, rec.Outcome)
		}
		if rec.Detail["number"] != c.Number {
			t.Errorf("%s record number = %q, want %q", rec.Kind, rec.Detail["number"], c.Number)
		}
	}

	// Hop reconstruction: bank1 forwarded to bank2, and bank2 credited
	// bank1's clearing account against carol's.
	if hop1.Detail["next"] != w.bank2.ID.String() {
		t.Errorf("hop next = %q, want %s", hop1.Detail["next"], w.bank2.ID)
	}
	if dep1.Detail["credit"] != "service" || dep1.Detail["hops"] != "2" {
		t.Errorf("bank1 deposit detail = %v", dep1.Detail)
	}
	if dep2.Detail["credit"] != clearingAccount(w.bank1.ID) || dep2.Detail["hops"] != "1" {
		t.Errorf("bank2 deposit detail = %v", dep2.Detail)
	}
	if dep1.Server != w.bank1.ID || dep2.Server != w.bank2.ID {
		t.Errorf("server fields: %v / %v", dep1.Server, dep2.Server)
	}
}

// TestJournalSurvivesTamperOnlyOnDisk flips one byte in a written
// journal and checks VerifyFile reports the break.
func TestClearingJournalFlippedByteDetected(t *testing.T) {
	w := newWorld(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "bank2.jsonl")
	j, err := audit.New(audit.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	w.bank2.SetJournal(j)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	if err := w.bank2.Transfer("carol", "dave", "dollars", 1, []principal.ID{carol}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := -1
	for k := 0; k < len(raw); k++ {
		if raw[k] == '1' { // the amount digit inside the record
			i = k
			break
		}
	}
	if i < 0 {
		t.Fatalf("no amount byte found in %q", raw)
	}
	raw[i] = '2'
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := audit.VerifyFile(path); err == nil {
		t.Fatal("flipped byte went undetected")
	}
}
