package accounting

import (
	"errors"
	"testing"
	"time"

	"proxykit/internal/faultpoint"
	"proxykit/internal/principal"
	"proxykit/internal/transport"
)

// testHopRetry is a retry policy that never really sleeps and has a
// fixed seed, so these tests are fast and deterministic.
func testHopRetry(attempts int) transport.RetryPolicy {
	return transport.RetryPolicy{
		MaxAttempts: attempts,
		Seed:        1,
		Sleep:       func(time.Duration) {},
	}
}

// TestClearingRetriesUnderLoss drives cross-bank clearing with lossy,
// duplicating hop delivery and checks exactly-once convergence: every
// check clears, carol is debited exactly once per check, and both the
// retry and duplicate-ack machinery demonstrably fired. A dropped
// response redelivers a deposit that already landed; the next bank's
// accept-once rejection is then the ack of record.
func TestClearingRetriesUnderLoss(t *testing.T) {
	w := newWorld(t)
	w.bank1.SetHopRetry(testHopRetry(10))
	w.bank1.SetHopInjector(faultpoint.New(42,
		faultpoint.Rule{Method: HopMethod, Drop: 0.4, Dup: 0.2}))

	retriesBefore := mClearingRetries.Value()
	dupAcksBefore := mClearingDupAcks.Value()

	const n, amount = 20, 10
	for i := 0; i < n; i++ {
		c := w.carolCheck(amount)
		endorsed := w.endorseTo(c, srvS, w.bank1, "service")
		r, err := w.bank1.DepositCheck(endorsed, []principal.ID{srvS}, "service")
		if err != nil {
			t.Fatalf("check %d failed to clear under loss: %v", i, err)
		}
		if !r.Collected || r.Amount != amount {
			t.Fatalf("check %d receipt = %+v", i, r)
		}
	}

	if got := w.balance(w.bank2, "carol", carol); got != 1000-n*amount {
		t.Errorf("carol = %d, want %d (exactly-once debit)", got, 1000-n*amount)
	}
	if got := w.balance(w.bank1, "service", srvS); got != n*amount {
		t.Errorf("service = %d, want %d (exactly-once credit)", got, n*amount)
	}
	u, err := w.bank1.UncollectedBalance("service", "dollars", []principal.ID{srvS})
	if err != nil || u != 0 {
		t.Errorf("service uncollected = %d, %v; want 0", u, err)
	}
	if mClearingRetries.Value() == retriesBefore {
		t.Error("no hop retries recorded under 40% loss — injection inactive?")
	}
	if mClearingDupAcks.Value() == dupAcksBefore {
		t.Error("no duplicate-acks recorded — lost-response redelivery never exercised")
	}
}

// TestClearingExhaustionRollsBack: under a full partition the hop retry
// budget runs out, the uncollected credit is rolled back, and — because
// the check number was Forgotten — the very same check clears once the
// partition heals.
func TestClearingExhaustionRollsBack(t *testing.T) {
	w := newWorld(t)
	w.bank1.SetHopRetry(testHopRetry(3))
	w.bank1.SetHopInjector(faultpoint.New(7,
		faultpoint.Rule{Method: HopMethod, Partition: true}))

	abandonedBefore := mClearingAbandoned.Value()
	c := w.carolCheck(100)
	endorsed := w.endorseTo(c, srvS, w.bank1, "service")
	_, err := w.bank1.DepositCheck(endorsed, []principal.ID{srvS}, "service")
	if err == nil {
		t.Fatal("deposit across a full partition succeeded")
	}
	var fe *faultpoint.Error
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want injected fault after exhaustion", err)
	}
	if mClearingAbandoned.Value() != abandonedBefore+1 {
		t.Error("abandoned counter did not move")
	}
	u, uerr := w.bank1.UncollectedBalance("service", "dollars", []principal.ID{srvS})
	if uerr != nil || u != 0 {
		t.Fatalf("uncollected after rollback = %d, %v; want 0", u, uerr)
	}
	if got := w.balance(w.bank2, "carol", carol); got != 1000 {
		t.Fatalf("carol = %d after failed clearing, want 1000", got)
	}

	// Partition heals: the same instrument is re-presented and clears.
	w.bank1.SetHopInjector(nil)
	r, err := w.bank1.DepositCheck(endorsed, []principal.ID{srvS}, "service")
	if err != nil {
		t.Fatalf("re-presenting bounced check: %v", err)
	}
	if !r.Collected || r.Hops != 2 {
		t.Fatalf("receipt = %+v", r)
	}
	if got := w.balance(w.bank2, "carol", carol); got != 900 {
		t.Errorf("carol = %d, want 900", got)
	}
	if got := w.balance(w.bank1, "service", srvS); got != 100 {
		t.Errorf("service = %d, want 100", got)
	}
}

// TestClearingDefaultSingleAttempt: without SetHopRetry a hop failure
// surfaces immediately (the synchronous Fig. 5 behavior is preserved).
func TestClearingDefaultSingleAttempt(t *testing.T) {
	w := newWorld(t)
	w.bank1.SetHopInjector(faultpoint.New(3,
		faultpoint.Rule{Method: HopMethod, Drop: 1}))
	c := w.carolCheck(50)
	endorsed := w.endorseTo(c, srvS, w.bank1, "service")
	if _, err := w.bank1.DepositCheck(endorsed, []principal.ID{srvS}, "service"); err == nil {
		t.Fatal("zero-policy deposit survived a dropped hop")
	}
	if got := w.balance(w.bank2, "carol", carol); got != 1000 {
		t.Fatalf("carol = %d, want 1000", got)
	}
}
