package accounting

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/audit"
	"proxykit/internal/faultpoint"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/restrict"
	"proxykit/internal/transport"
)

// HopMethod is the fault-injection and retry-metric label for the
// inter-bank clearing hop (the Fig. 5 endorsement forward).
const HopMethod = "acct.clearing-hop"

// clearingAccount names the local account holding a collector bank's
// cleared funds at this bank.
func clearingAccount(collector principal.ID) string {
	return "clearing:" + collector.String()
}

// Receipt reports the outcome of a deposit.
type Receipt struct {
	// Number is the check number.
	Number string
	// Currency and Amount transferred.
	Currency string
	Amount   int64
	// Collected reports whether funds are final (true) or awaiting
	// clearing (never false on success in the synchronous model, but
	// recorded for the daemon version).
	Collected bool
	// Hops is the number of banks that processed the check, including
	// this one (Fig. 5: same-bank = 1, one endorsement step = 2, ...).
	Hops int
}

// DepositCheck deposits a check into a local account. presenters are
// the authenticated identities of the depositing party. If the check is
// drawn on this bank it is redeemed immediately; otherwise the funds are
// marked uncollected, the bank endorses the check onward ("the payee
// grants its own accounting server a cascaded proxy (endorsement) for
// the check allowing the accounting server to collect the resources on
// its behalf. Subsequent accounting servers repeat the process until the
// payor's accounting server is reached"), and on success the funds
// become collected.
func (s *Server) DepositCheck(c *Check, presenters []principal.ID, creditAccount string) (*Receipt, error) {
	return s.DepositCheckCtx(context.Background(), c, presenters, creditAccount)
}

// DepositCheckCtx is DepositCheck with a request context. The context's
// trace ID is stamped onto every audit record the deposit produces —
// including the records written by downstream banks during clearing, so
// a cleared check can be reconstructed hop-by-hop across journals.
func (s *Server) DepositCheckCtx(ctx context.Context, c *Check, presenters []principal.ID, creditAccount string) (*Receipt, error) {
	r, v, err := s.depositCheck(ctx, c, presenters, creditAccount)
	switch {
	case err == nil:
		mDeposits.With("ok").Inc()
		mClearingHops.Observe(float64(r.Hops))
	case errors.Is(err, ErrDuplicateCheck):
		mDeposits.With("duplicate").Inc()
	default:
		mDeposits.With("error").Inc()
	}
	s.auditDeposit(ctx, c, presenters, creditAccount, r, v, err)
	return r, err
}

// auditDeposit seals the deposit decision (and, for duplicate-number
// refusals, a dedicated accept-once record) into the journal.
func (s *Server) auditDeposit(ctx context.Context, c *Check, presenters []principal.ID, creditAccount string, r *Receipt, v *proxy.Verified, err error) {
	rec := audit.Record{
		Kind:       audit.KindDeposit,
		TraceID:    obs.TraceIDFrom(ctx),
		Presenters: presenters,
		Op:         OpCredit,
		Outcome:    audit.OutcomeGranted,
		Detail:     map[string]string{"credit": creditAccount},
	}
	if c != nil {
		rec.Object = debitObject(c.Account)
		rec.Detail["number"] = c.Number
		rec.Detail["bank"] = c.Bank.String()
		rec.Detail["currency"] = c.Currency
		rec.Detail["amount"] = strconv.FormatInt(c.Amount, 10)
	}
	if v != nil {
		// The check's signer and the endorsement cascade: the paper's
		// delegate-proxy audit trail (§3.4) applied to instruments.
		rec.Grantor = v.Grantor
		rec.Trail = v.Trail
	}
	if r != nil {
		rec.Detail["hops"] = strconv.Itoa(r.Hops)
	}
	if err != nil {
		rec.Outcome = audit.OutcomeDenied
		rec.Reason = err.Error()
		if errors.Is(err, ErrDuplicateCheck) {
			dup := rec
			dup.Kind = audit.KindAcceptOnceReject
			s.emit(dup)
		}
	}
	s.emit(rec)
}

func (s *Server) depositCheck(ctx context.Context, c *Check, presenters []principal.ID, creditAccount string) (*Receipt, *proxy.Verified, error) {
	if c == nil || c.Proxy == nil {
		return nil, nil, fmt.Errorf("%w: nil check", ErrBadCheck)
	}
	// Validate the chain's integrity and signatures regardless of which
	// bank we are.
	v, err := s.env.VerifyChain(c.Proxy.Certs)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadCheck, err)
	}
	number, ok := checkNumber(v.Restrictions)
	if !ok {
		return nil, v, fmt.Errorf("%w: no check number", ErrBadCheck)
	}

	// Honor any deposit instruction addressed to this bank.
	if target, ok := depositInstructionFor(v.Restrictions, s.ID); ok {
		if target != s.Global(creditAccount) {
			return nil, v, fmt.Errorf("%w: endorsement directs proceeds to %s, not %s",
				ErrBadCheck, target, s.Global(creditAccount))
		}
	}

	// A bearer check (no grantee anywhere in the chain) is payable to
	// whoever holds the proxy key — so possession must be proven, or a
	// copied certificate chain would spend like cash.
	if len(v.Restrictions.Grantees()) == 0 {
		if c.Proxy.Key == nil {
			return nil, v, fmt.Errorf("%w: bearer check without proxy key", ErrBadCheck)
		}
		ch, err := proxy.NewChallenge()
		if err != nil {
			return nil, v, err
		}
		proof, err := c.Proxy.Prove(ch, s.ID)
		if err != nil {
			return nil, v, fmt.Errorf("%w: %v", ErrBadCheck, err)
		}
		if err := s.env.VerifyPossession(v, c.Proxy.Certs[len(c.Proxy.Certs)-1], ch, proof); err != nil {
			return nil, v, fmt.Errorf("%w: %v", ErrBadCheck, err)
		}
	}

	// Each bank accepts a given check number once (§7.7). If the
	// deposit ultimately fails (e.g. insufficient funds), the number is
	// forgotten so the check can be re-presented once the problem is
	// fixed — a bounced check is returned, not voided.
	if err := s.registry.Accept(v.GrantorKeyID, number, v.Expires); err != nil {
		mAcceptOnceRejections.Inc()
		return nil, v, fmt.Errorf("%w: %v", ErrDuplicateCheck, err)
	}
	var receipt *Receipt
	var depErr error
	if c.Bank == s.ID {
		receipt, depErr = s.redeemLocal(c, v, presenters, creditAccount)
	} else {
		receipt, depErr = s.collectRemote(ctx, c, v, creditAccount)
	}
	if depErr != nil {
		s.registry.Forget(v.GrantorKeyID, number)
		return nil, v, depErr
	}
	return receipt, v, nil
}

// checkNumber extracts the accept-once identifier.
func checkNumber(rs restrict.Set) (string, bool) {
	for _, r := range rs {
		if ao, ok := r.(restrict.AcceptOnce); ok {
			return ao.ID, true
		}
	}
	return "", false
}

// redeemLocal performs the final transfer at the drawee bank.
func (s *Server) redeemLocal(c *Check, v *proxy.Verified, presenters []principal.ID, creditAccount string) (*Receipt, error) {
	payor, ok := s.lookup(c.Account)
	if !ok {
		return nil, fmt.Errorf("%w: payor %s", ErrNoAccount, c.Account)
	}
	if _, ok := s.lookup(creditAccount); !ok {
		return nil, fmt.Errorf("%w: credit %s", ErrNoAccount, creditAccount)
	}
	// Both stripes for the whole validate-then-commit: the hold/balance
	// check and the opRedeem commit must be one critical section.
	unlock := s.lockPair(c.Account, creditAccount)
	defer unlock()

	// Evaluate the check's accumulated restrictions: the drawee bank is
	// the end-server the check was issued for. The bank itself counts
	// among the client identities — it is the final holder processing
	// the instrument.
	ctx := &restrict.Context{
		Server:           s.ID,
		Object:           debitObject(c.Account),
		Operation:        OpDebit,
		ClientIdentities: append(append([]principal.ID{}, presenters...), s.ID),
		Amounts:          map[string]int64{c.Currency: c.Amount},
		DepositAccount:   s.Global(creditAccount),
		Now:              s.clk.Now(),
		AcceptOnce:       nopRegistry{}, // number already consumed above
	}
	if err := v.Authorize(ctx); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheck, err)
	}

	// The grantor must hold debit rights on the payor account.
	if _, err := payor.acl.Match(acl.Query{Op: OpDebit, Identities: []principal.ID{v.Grantor}}); err != nil {
		return nil, fmt.Errorf("%w: grantor %s cannot debit %s", ErrDeniedByACL, v.Grantor, c.Account)
	}

	// Certified check? It pays from the hold; otherwise the balance
	// must cover the amount. Validation happens here, the mutation is
	// one opRedeem record (accept-once entry + debit/hold-consume +
	// credit) committed through the ledger.
	if h, ok := payor.holds[c.Number]; ok {
		if h.currency != c.Currency || h.amount < c.Amount {
			return nil, fmt.Errorf("%w: hold mismatch for %s", ErrBadCheck, c.Number)
		}
	} else if payor.balances[c.Currency] < c.Amount {
		return nil, fmt.Errorf("%w: account %s has %d %s, check for %d",
			ErrInsufficientFunds, c.Account, payor.balances[c.Currency], c.Currency, c.Amount)
	}
	if err := s.commitOp(&op{
		kind: opRedeem, time: s.clk.Now(),
		acct: c.Account, to: creditAccount,
		currency: c.Currency, amount: c.Amount,
		number: c.Number, grantorKey: v.GrantorKeyID, expires: v.Expires,
	}); err != nil {
		return nil, err
	}
	return &Receipt{Number: c.Number, Currency: c.Currency, Amount: c.Amount, Collected: true, Hops: 1}, nil
}

// collectRemote credits the deposit as uncollected, endorses the check
// to the next bank toward the drawee, and finalizes on success. The
// context (and with it the originating trace ID) travels to the next
// bank, so every journal along the clearing path shares one trace.
func (s *Server) collectRemote(ctx context.Context, c *Check, v *proxy.Verified, creditAccount string) (*Receipt, error) {
	if _, ok := s.lookup(creditAccount); !ok {
		return nil, fmt.Errorf("%w: credit %s", ErrNoAccount, creditAccount)
	}
	s.cfgMu.Lock()
	next := s.peers[c.Bank]
	if next == nil {
		next = s.nextHop
	}
	s.cfgMu.Unlock()
	if next == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoRoute, c.Bank)
	}
	// Mark the deposit uncollected while clearing is in flight. The
	// pending record (accept-once entry + uncollected credit) is durable
	// before the endorsement leaves this bank: a crash mid-clearing
	// restarts with the check number accepted and the funds visibly
	// in-doubt, never silently re-creditable.
	unlock := s.lockAccount(creditAccount)
	err := s.commitOp(&op{
		kind: opPending, time: s.clk.Now(), to: creditAccount,
		currency: c.Currency, amount: c.Amount,
		number: c.Number, grantorKey: v.GrantorKeyID, expires: v.Expires,
	})
	unlock()
	if err != nil {
		return nil, err
	}
	s.cfgMu.Lock()
	s.ForwardedChecks++
	s.cfgMu.Unlock()
	mClearingForwards.Inc()

	// Endorse onward: the next bank becomes the holder, and must credit
	// this bank's clearing account there.
	endorsed, err := c.Endorse(s.identity, next.ID, next.ID, next.Global(clearingAccount(s.ID)), true, s.clk)
	if err != nil {
		s.rollbackUncollected(creditAccount, c, v)
		return nil, err
	}
	// Ensure the clearing account exists at the next bank.
	if err := next.ensureAccount(clearingAccount(s.ID), s.ID); err != nil {
		s.rollbackUncollected(creditAccount, c, v)
		return nil, err
	}
	receipt, attempts, err := s.deliverHop(ctx, next, endorsed)
	s.auditClearingHop(ctx, c, next.ID, receipt, attempts, err)
	if err != nil {
		// Retry budget exhausted (or a hard refusal): roll the
		// uncollected credit back. The check number is Forgotten
		// upstream, so the depositor can re-present once the network
		// heals.
		mClearingAbandoned.Inc()
		s.rollbackUncollected(creditAccount, c, v)
		return nil, fmt.Errorf("accounting: clearing via %s: %w", next.ID, err)
	}

	// Funds collected: convert uncollected to final balance.
	unlock = s.lockAccount(creditAccount)
	cerr := s.commitOp(&op{
		kind: opCollected, time: s.clk.Now(), to: creditAccount,
		currency: c.Currency, amount: c.Amount, number: c.Number,
	})
	unlock()
	if cerr != nil {
		return nil, cerr
	}
	return &Receipt{
		Number:    c.Number,
		Currency:  c.Currency,
		Amount:    c.Amount,
		Collected: true,
		Hops:      receipt.Hops + 1,
	}, nil
}

// deliverHop delivers the endorsed check to the next bank under the
// server's hop retry policy and fault injector. It reports the receipt,
// the number of delivery attempts made, and the final error.
//
// The exactly-once argument: every delivery of the same endorsed check
// carries the same check number, and the next bank accepts a number at
// most once (§7.7). If an earlier delivery landed but its
// acknowledgment was lost, the redelivery is rejected as a duplicate —
// which is precisely the proof that the funds were credited, so the
// rejection is converted into a success ("duplicate ack"). A delivery
// that failed for real Forgets the number at the next bank, so a later
// attempt is fresh.
func (s *Server) deliverHop(ctx context.Context, next *Server, endorsed *Check) (*Receipt, int, error) {
	s.cfgMu.Lock()
	pol, inj := s.hopRetry, s.hopInj
	s.cfgMu.Unlock()
	pol.Retryable = retryableHopError

	deliver := func() (*Receipt, error) {
		if inj != nil {
			d := inj.Decide(HopMethod)
			if d.Delay > 0 {
				time.Sleep(d.Delay)
			}
			switch d.Action {
			case faultpoint.ActPartition, faultpoint.ActDropRequest:
				// The endorsement never reaches the next bank.
				return nil, &faultpoint.Error{Action: d.Action, Method: HopMethod}
			case faultpoint.ActError:
				return nil, &transport.RemoteError{Method: HopMethod, Msg: faultpoint.RemoteErrMsg}
			case faultpoint.ActDropResponse:
				// Delivered and processed; the receipt is lost.
				_, _ = next.DepositCheckCtx(ctx, endorsed, []principal.ID{s.ID}, clearingAccount(s.ID))
				return nil, &faultpoint.Error{Action: d.Action, Method: HopMethod}
			case faultpoint.ActDuplicate:
				// Delivered twice; the second lands on accept-once.
				r, err := next.DepositCheckCtx(ctx, endorsed, []principal.ID{s.ID}, clearingAccount(s.ID))
				_, _ = next.DepositCheckCtx(ctx, endorsed, []principal.ID{s.ID}, clearingAccount(s.ID))
				return r, err
			}
		}
		return next.DepositCheckCtx(ctx, endorsed, []principal.ID{s.ID}, clearingAccount(s.ID))
	}

	var receipt *Receipt
	attempts := 0
	err := pol.Do(HopMethod, func(attempt int) error {
		attempts = attempt + 1
		if attempt > 0 {
			mClearingRetries.Inc()
		}
		r, derr := deliver()
		if derr != nil && attempt > 0 && errors.Is(derr, ErrDuplicateCheck) {
			// Lost ack from an earlier attempt: the next bank's
			// accept-once registry proves the deposit landed. Hops
			// beyond the next bank are unknown on this path, so the
			// receipt reports the minimum.
			mClearingDupAcks.Inc()
			receipt = &Receipt{
				Number:    endorsed.Number,
				Currency:  endorsed.Currency,
				Amount:    endorsed.Amount,
				Collected: true,
				Hops:      1,
			}
			return nil
		}
		if derr != nil {
			return derr
		}
		receipt = r
		return nil
	})
	if err != nil {
		return nil, attempts, err
	}
	return receipt, attempts, nil
}

// retryableHopError classifies hop failures: transport-shaped faults
// (injected drops and partitions, network timeouts, closed
// connections) are worth redelivering; accounting refusals — no such
// account, insufficient funds, a bad chain — are answers, not losses.
func retryableHopError(err error) bool {
	var fe *faultpoint.Error
	var nerr net.Error
	switch {
	case errors.As(err, &fe):
		return true
	case errors.As(err, &nerr) && nerr.Timeout():
		return true
	case errors.Is(err, transport.ErrClosed):
		return true
	}
	return false
}

// auditClearingHop seals the endorsement-forward record: this bank
// endorsed the check to next for collection (Fig. 5), in attempts
// deliveries.
func (s *Server) auditClearingHop(ctx context.Context, c *Check, next principal.ID, receipt *Receipt, attempts int, err error) {
	rec := audit.Record{
		Kind:    audit.KindClearingHop,
		TraceID: obs.TraceIDFrom(ctx),
		Object:  debitObject(c.Account),
		Op:      "endorse",
		Outcome: audit.OutcomeGranted,
		Detail: map[string]string{
			"number":    c.Number,
			"bank":      c.Bank.String(),
			"next":      next.String(),
			"depositTo": clearingAccount(s.ID),
			"currency":  c.Currency,
			"amount":    strconv.FormatInt(c.Amount, 10),
		},
	}
	if attempts > 1 {
		rec.Detail["attempts"] = strconv.Itoa(attempts)
	}
	if receipt != nil {
		rec.Detail["hops"] = strconv.Itoa(receipt.Hops)
	}
	if err != nil {
		rec.Outcome = audit.OutcomeDenied
		rec.Reason = err.Error()
	}
	s.emit(rec)
}

// rollbackUncollected undoes a pending deposit: the uncollected credit
// comes back out and the accept-once entry is released, durably, so a
// restarted bank lets the depositor re-present the bounced check.
func (s *Server) rollbackUncollected(name string, c *Check, v *proxy.Verified) {
	if _, ok := s.lookup(name); !ok {
		return
	}
	unlock := s.lockAccount(name)
	defer unlock()
	_ = s.commitOp(&op{
		kind: opRollback, to: name,
		currency: c.Currency, amount: c.Amount,
		number: c.Number, grantorKey: v.GrantorKeyID,
	})
}

// ensureAccount creates an account if absent (used for clearing
// accounts).
func (s *Server) ensureAccount(name string, owner principal.ID) error {
	s.createMu.Lock()
	defer s.createMu.Unlock()
	if _, ok := s.lookup(name); ok {
		return nil
	}
	unlock := s.lockAccount(name)
	defer unlock()
	return s.commitOp(&op{kind: opCreate, acct: name, owner: owner})
}

// nopRegistry satisfies accept-once checks for numbers the bank has
// already consumed in DepositCheck.
type nopRegistry struct{}

// Accept implements restrict.AcceptOnceRegistry.
func (nopRegistry) Accept(string, string, time.Time) error { return nil }

// Certify places a hold for a certified check (§4): "The accounting
// server places a hold on the resources and returns an authorization
// proxy to the client certifying that the client has sufficient
// resources to cover the check." requesters need debit rights.
func (s *Server) Certify(accountName string, requesters []principal.ID, c *Check) (*CertifiedCheck, error) {
	return s.CertifyCtx(context.Background(), accountName, requesters, c)
}

// CertifyCtx is Certify with a request context; the context's trace ID
// is stamped onto the audit record.
func (s *Server) CertifyCtx(ctx context.Context, accountName string, requesters []principal.ID, c *Check) (cc *CertifiedCheck, err error) {
	defer func() {
		rec := audit.Record{
			Kind:       audit.KindHold,
			TraceID:    obs.TraceIDFrom(ctx),
			Presenters: requesters,
			Object:     debitObject(accountName),
			Op:         "certify",
			Outcome:    audit.OutcomeGranted,
			Detail: map[string]string{
				"number":   c.Number,
				"currency": c.Currency,
				"amount":   strconv.FormatInt(c.Amount, 10),
			},
		}
		if err != nil {
			rec.Outcome = audit.OutcomeDenied
			rec.Reason = err.Error()
		}
		s.emit(rec)
	}()
	if c.Bank != s.ID {
		return nil, fmt.Errorf("%w: check drawn on %s", ErrBadCheck, c.Bank)
	}
	if c.Account != accountName {
		return nil, fmt.Errorf("%w: check drawn on account %s", ErrBadCheck, c.Account)
	}
	a, ok := s.lookup(accountName)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoAccount, accountName)
	}
	if _, err := a.acl.Match(acl.Query{Op: OpDebit, Identities: requesters}); err != nil {
		return nil, fmt.Errorf("%w: debit %s", ErrDeniedByACL, accountName)
	}
	unlock := s.lockAccount(accountName)
	if _, ok := a.holds[c.Number]; ok {
		unlock()
		return nil, fmt.Errorf("%w: %s", ErrHoldExists, c.Number)
	}
	if a.balances[c.Currency] < c.Amount {
		bal := a.balances[c.Currency]
		unlock()
		return nil, fmt.Errorf("%w: %s has %d %s", ErrInsufficientFunds, accountName, bal, c.Currency)
	}
	expires := c.Proxy.Expires()
	if err := s.commitOp(&op{
		kind: opHold, time: s.clk.Now(), acct: accountName,
		currency: c.Currency, amount: c.Amount,
		number: c.Number, expires: expires,
	}); err != nil {
		unlock()
		return nil, err
	}
	mHoldsPlaced.Inc()
	unlock()

	// The certification proxy: the bank asserts funds are held.
	lifetime := expires.Sub(s.clk.Now())
	px, err := s.issueCertification(c, lifetime)
	if err != nil {
		// Undo the hold on failure.
		undo := s.lockAccount(accountName)
		_ = s.commitOp(&op{kind: opHoldUndo, acct: accountName, number: c.Number})
		undo()
		return nil, err
	}
	return &CertifiedCheck{Check: c, Certification: px}, nil
}

// ReleaseExpiredHolds returns expired certified-check holds to their
// accounts and reports how many were released.
func (s *Server) ReleaseExpiredHolds() int {
	type releasedHold struct {
		account  string
		number   string
		currency string
		amount   int64
	}
	var freed []releasedHold
	now := s.clk.Now()
	// Walk accounts and holds in sorted order so the ledger and audit
	// journal record releases deterministically, not in map order. Each
	// account's stripe is held only while its own holds are swept, so
	// the sweeper never stalls the whole bank.
	names := s.SortedAccountNames()
	for _, name := range names {
		a, ok := s.lookup(name)
		if !ok {
			continue
		}
		unlock := s.lockAccount(name)
		nums := make([]string, 0, len(a.holds))
		for num := range a.holds {
			nums = append(nums, num)
		}
		sort.Strings(nums)
		for _, num := range nums {
			h := a.holds[num]
			if now.After(h.expires) {
				if s.commitOp(&op{kind: opHoldRelease, time: now, acct: name, number: num}) != nil {
					continue // ledger failed closed; the hold stays put
				}
				freed = append(freed, releasedHold{a.name, num, h.currency, h.amount})
			}
		}
		unlock()
	}
	mHoldsReleased.Add(uint64(len(freed)))
	for _, f := range freed {
		s.emit(audit.Record{
			Kind:    audit.KindHoldRelease,
			Object:  debitObject(f.account),
			Op:      "release-hold",
			Outcome: audit.OutcomeGranted,
			Detail: map[string]string{
				"number":   f.number,
				"currency": f.currency,
				"amount":   strconv.FormatInt(f.amount, 10),
			},
		})
	}
	return len(freed)
}

// StartHoldSweeper launches a goroutine that calls ReleaseExpiredHolds
// every interval, so certified-check holds whose check was never
// deposited return to their accounts without waiting for the next
// deposit to stumble over them. The returned stop function halts the
// sweeper and waits for it to exit; calling it again is a no-op.
func (s *Server) StartHoldSweeper(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.ReleaseExpiredHolds()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}

// CashiersCheck sells a check drawn on the bank's own operating account:
// the purchaser pays immediately, and the resulting check is always
// good. purchaser needs debit rights on purchaseAccount.
func (s *Server) CashiersCheck(purchaseAccount string, requesters []principal.ID, payee principal.ID, currency string, amount int64, lifetime time.Duration) (*Check, error) {
	const operating = "cashier:operating"
	if err := s.ensureAccount(operating, s.ID); err != nil {
		return nil, err
	}
	// Move the purchaser's funds into the operating account first.
	if err := s.Transfer(purchaseAccount, operating, currency, amount, requesters); err != nil {
		return nil, err
	}
	c, err := WriteCheck(WriteCheckParams{
		Payor:    s.identity,
		Bank:     s.ID,
		Account:  operating,
		Payee:    payee,
		Currency: currency,
		Amount:   amount,
		Lifetime: lifetime,
		Clock:    s.clk,
	})
	if err != nil {
		// Refund on failure.
		_ = s.Transfer(operating, purchaseAccount, currency, amount, []principal.ID{s.ID})
		return nil, err
	}
	return c, nil
}
