package accounting

import (
	"testing"
	"time"

	"proxykit/internal/principal"
)

// TestHoldSweeper: a background sweeper returns an expired
// certified-check hold without any deposit touching the account, and
// stop halts it cleanly.
func TestHoldSweeper(t *testing.T) {
	w := newWorld(t)
	c := w.carolCheck(300)
	if _, err := w.bank2.Certify("carol", []principal.ID{carol}, c); err != nil {
		t.Fatal(err)
	}
	if got := w.balance(w.bank2, "carol", carol); got != 700 {
		t.Fatalf("after hold = %d", got)
	}

	stop := w.bank2.StartHoldSweeper(5 * time.Millisecond)
	defer stop()

	// Not yet expired: give the sweeper a few ticks and check the hold
	// survives.
	time.Sleep(25 * time.Millisecond)
	if got := w.balance(w.bank2, "carol", carol); got != 700 {
		t.Fatalf("sweeper released a live hold: carol = %d", got)
	}

	// Expire the hold (check lifetime is 24h) and wait for the sweeper.
	w.clk.Advance(25 * time.Hour)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := w.balance(w.bank2, "carol", carol); got == 1000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never released the expired hold: carol = %d",
				w.balance(w.bank2, "carol", carol))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// stop is synchronous and idempotent: after it returns no further
	// sweeps run.
	stop()
	if _, err := w.bank2.Certify("carol", []principal.ID{carol}, w.carolCheck(100)); err != nil {
		t.Fatal(err)
	}
	w.clk.Advance(25 * time.Hour)
	time.Sleep(20 * time.Millisecond)
	if got := w.balance(w.bank2, "carol", carol); got != 900 {
		t.Fatalf("sweeper ran after stop: carol = %d", got)
	}
}
