package accounting

import (
	"testing"
	"time"

	"proxykit/internal/principal"
)

// TestHoldSweeper: a background sweeper returns an expired
// certified-check hold without any deposit touching the account, and
// stop halts it cleanly.
func TestHoldSweeper(t *testing.T) {
	w := newWorld(t)
	c := w.carolCheck(300)
	if _, err := w.bank2.Certify("carol", []principal.ID{carol}, c); err != nil {
		t.Fatal(err)
	}
	if got := w.balance(w.bank2, "carol", carol); got != 700 {
		t.Fatalf("after hold = %d", got)
	}

	stop := w.bank2.StartHoldSweeper(5 * time.Millisecond)
	defer stop()

	// Not yet expired: a sweep right now must leave the live hold alone.
	// Calling the sweep directly makes this deterministic — no fixed
	// sleep hoping the background ticker fired enough times.
	if n := w.bank2.ReleaseExpiredHolds(); n != 0 {
		t.Fatalf("sweep released %d live holds", n)
	}
	if got := w.balance(w.bank2, "carol", carol); got != 700 {
		t.Fatalf("sweeper released a live hold: carol = %d", got)
	}

	// Expire the hold (check lifetime is 24h) and wait for the sweeper.
	w.clk.Advance(25 * time.Hour)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := w.balance(w.bank2, "carol", carol); got == 1000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never released the expired hold: carol = %d",
				w.balance(w.bank2, "carol", carol))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// stop is synchronous and idempotent: once it returns the sweeper
	// goroutine has exited, so the expired hold below can never be
	// released — no grace sleep needed before asserting.
	stop()
	if _, err := w.bank2.Certify("carol", []principal.ID{carol}, w.carolCheck(100)); err != nil {
		t.Fatal(err)
	}
	w.clk.Advance(25 * time.Hour)
	if got := w.balance(w.bank2, "carol", carol); got != 900 {
		t.Fatalf("sweeper ran after stop: carol = %d", got)
	}
}
