package accounting

// Durable accounting state (§4: the accounting server is the system of
// record). Every committed mutation is one WAL record appended — while
// holding the stripes of every account it touches, so WAL order equals
// commit order for any two conflicting ops (ops on disjoint accounts
// commute, so their relative WAL order is irrelevant to replay) —
// *before* the in-memory state changes become visible, and both the
// live path and recovery replay go through the same applyOp, so a
// replayed server is the same state machine, not a reimplementation of
// it.
//
// One record per *logical* mutation keeps replay all-or-nothing: a
// check redemption is a single record carrying the accept-once entry,
// the hold consumption or balance debit, and the credit; a cross-bank
// deposit writes `pending` (accept + uncollected credit) before the
// clearing hop leaves this bank, then `collected` or `rollback` when
// the hop settles. A crash between `pending` and its settlement leaves
// an in-doubt deposit: funds uncollected and the number accepted —
// visible in the statement, resolved operationally (see DESIGN.md,
// "Durability").

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/ledger"
	"proxykit/internal/principal"
	"proxykit/internal/replay"
	"proxykit/internal/restrict"
	"proxykit/internal/wire"
)

// opKind enumerates WAL record types.
type opKind uint8

const (
	opCreate      opKind = iota + 1 // create account
	opMint                          // mint into a balance
	opTransfer                      // local transfer between accounts
	opRedeem                        // drawee-bank check redemption (accept + debit/hold-consume + credit)
	opPending                       // collecting bank: accept + uncollected credit, before the hop
	opCollected                     // collecting bank: uncollected -> final balance
	opRollback                      // collecting bank: undo pending (uncollected debit + forget)
	opHold                          // certified-check hold placed
	opHoldUndo                      // hold undone (certification failed to issue); no statement line
	opHoldRelease                   // expired hold returned to the account
)

// op is one WAL record. Fields are a union over the kinds; unused ones
// stay zero. The timestamp rides in the record so replayed statement
// lines carry the original times.
type op struct {
	kind       opKind
	time       time.Time
	acct       string // debit-side account (create/mint/transfer-from/payor/hold)
	to         string // credit-side account (transfer-to/redeem credit/pending credit)
	owner      principal.ID
	currency   string
	amount     int64
	number     string
	grantorKey string
	expires    time.Time
}

// encodeOp serializes an op with the wire codec — the WAL append is on
// the transfer hot path, and the binary encoder is an order of
// magnitude cheaper than JSON. The returned encoder comes from the
// shared pool; the caller releases it once the bytes have been
// consumed (Ledger.Append copies them before returning).
func encodeOp(o *op) *wire.Encoder {
	e := wire.GetEncoder(64 + len(o.acct) + len(o.to) + len(o.number) + len(o.grantorKey))
	e.Uint8(uint8(o.kind))
	e.Time(o.time)
	e.String(o.acct)
	e.String(o.to)
	o.owner.Encode(e)
	e.String(o.currency)
	e.Int64(o.amount)
	e.String(o.number)
	e.String(o.grantorKey)
	e.Time(o.expires)
	return e
}

// decodeOp parses a WAL record payload.
func decodeOp(b []byte) (*op, error) {
	d := wire.NewDecoder(b)
	o := &op{}
	o.kind = opKind(d.Uint8())
	o.time = d.Time()
	o.acct = d.String()
	o.to = d.String()
	o.owner = principal.DecodeID(d)
	o.currency = d.String()
	o.amount = d.Int64()
	o.number = d.String()
	o.grantorKey = d.String()
	o.expires = d.Time()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("accounting: decode WAL op: %w", err)
	}
	return o, nil
}

// commitOp durably records the op, then applies it. Callers hold, in
// write mode, the stripe of every account the op mutates, and have
// fully validated it; a failed append leaves the in-memory state
// untouched (the mutation never happened). Under the ledger's group
// commit, concurrent commitOp calls on disjoint stripes share one
// fsync.
func (s *Server) commitOp(o *op) error {
	if gate := s.gateRef(); gate != nil {
		if err := gate(); err != nil {
			return err
		}
	}
	if lg := s.ledgerRef(); lg != nil {
		e := encodeOp(o)
		_, err := lg.Append(e.Bytes())
		e.Release()
		if err != nil {
			return fmt.Errorf("accounting: %w", err)
		}
	}
	return s.applyOp(o)
}

// ledgerRef fetches the attached ledger under cfgMu.
func (s *Server) ledgerRef() *ledger.Ledger {
	s.cfgMu.Lock()
	defer s.cfgMu.Unlock()
	return s.ledger
}

// applyOp mutates in-memory state for one op. It is the single
// mutation path: the live handlers call it after validating and
// appending (holding the touched accounts' stripes), and recovery
// calls it single-threaded for every replayed record. It only fails on
// states a validated-then-logged op cannot produce (a missing account
// in a replayed record means the WAL is not ours).
func (s *Server) applyOp(o *op) error {
	get := func(name string) (*account, error) {
		a, ok := s.lookup(name)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoAccount, name)
		}
		return a, nil
	}
	switch o.kind {
	case opCreate:
		return s.createAccountApply(o.acct, o.owner)
	case opMint:
		a, err := get(o.acct)
		if err != nil {
			return err
		}
		a.balances[o.currency] += o.amount
		a.record(Transaction{Time: o.time, Kind: TxMint, Currency: o.currency, Amount: o.amount})
	case opTransfer:
		src, err := get(o.acct)
		if err != nil {
			return err
		}
		dst, err := get(o.to)
		if err != nil {
			return err
		}
		src.balances[o.currency] -= o.amount
		dst.balances[o.currency] += o.amount
		src.record(Transaction{Time: o.time, Kind: TxTransferOut, Currency: o.currency, Amount: o.amount, Counterparty: o.to})
		dst.record(Transaction{Time: o.time, Kind: TxTransferIn, Currency: o.currency, Amount: o.amount, Counterparty: o.acct})
	case opRedeem:
		payor, err := get(o.acct)
		if err != nil {
			return err
		}
		dst, err := get(o.to)
		if err != nil {
			return err
		}
		s.acceptReplayable(o.grantorKey, o.number, o.expires)
		if h, ok := payor.holds[o.number]; ok {
			delete(payor.holds, o.number)
			if h.amount > o.amount { // return the difference
				payor.balances[h.currency] += h.amount - o.amount
			}
		} else {
			payor.balances[o.currency] -= o.amount
		}
		dst.balances[o.currency] += o.amount
		payor.record(Transaction{Time: o.time, Kind: TxCheckPaid, Currency: o.currency, Amount: o.amount, Counterparty: o.to, CheckNumber: o.number})
		dst.record(Transaction{Time: o.time, Kind: TxCheckDeposited, Currency: o.currency, Amount: o.amount, Counterparty: o.acct, CheckNumber: o.number})
	case opPending:
		dst, err := get(o.to)
		if err != nil {
			return err
		}
		s.acceptReplayable(o.grantorKey, o.number, o.expires)
		dst.uncollected[o.currency] += o.amount
	case opCollected:
		dst, err := get(o.to)
		if err != nil {
			return err
		}
		dst.uncollected[o.currency] -= o.amount
		dst.balances[o.currency] += o.amount
		dst.record(Transaction{Time: o.time, Kind: TxCheckDeposited, Currency: o.currency, Amount: o.amount, CheckNumber: o.number})
	case opRollback:
		dst, err := get(o.to)
		if err != nil {
			return err
		}
		dst.uncollected[o.currency] -= o.amount
		s.registry.Forget(o.grantorKey, o.number)
	case opHold:
		a, err := get(o.acct)
		if err != nil {
			return err
		}
		a.balances[o.currency] -= o.amount
		a.holds[o.number] = &hold{currency: o.currency, amount: o.amount, expires: o.expires}
		a.record(Transaction{Time: o.time, Kind: TxHold, Currency: o.currency, Amount: o.amount, CheckNumber: o.number})
	case opHoldUndo:
		a, err := get(o.acct)
		if err != nil {
			return err
		}
		if h, ok := a.holds[o.number]; ok {
			delete(a.holds, o.number)
			a.balances[h.currency] += h.amount
		}
	case opHoldRelease:
		a, err := get(o.acct)
		if err != nil {
			return err
		}
		h, ok := a.holds[o.number]
		if !ok {
			return fmt.Errorf("accounting: replay: no hold %s on %s", o.number, o.acct)
		}
		delete(a.holds, o.number)
		a.balances[h.currency] += h.amount
		a.record(Transaction{Time: o.time, Kind: TxHoldReleased, Currency: h.currency, Amount: h.amount, CheckNumber: o.number})
	default:
		return fmt.Errorf("accounting: replay: unknown op kind %d", o.kind)
	}
	return nil
}

// acceptReplayable records a check number in the accept-once registry,
// tolerating ErrDuplicate: on the live path the number was already
// accepted by depositCheck before the op was committed, so the apply's
// accept is a no-op there and the real population step on replay.
func (s *Server) acceptReplayable(grantorKey, number string, expires time.Time) {
	if err := s.registry.Accept(grantorKey, number, expires); err != nil && !errors.Is(err, replay.ErrDuplicate) {
		// Only a zero expiry reaches here, and checks always carry one.
		s.registry.Forget(grantorKey, number)
	}
}

// ---- snapshot state ----

// Snapshot schema. Everything is sorted so the same logical state
// always marshals to the same bytes — the lossless-recovery property
// test compares snapshots of a recovered server against a never-crashed
// one byte-for-byte.

type snapACLEntry struct {
	Principals   []string `json:"principals,omitempty"`
	Groups       []string `json:"groups,omitempty"`
	Ops          []string `json:"ops,omitempty"`
	Restrictions []byte   `json:"restrictions,omitempty"` // restrict.Set wire bytes
}

type snapHold struct {
	Number   string    `json:"number"`
	Currency string    `json:"currency"`
	Amount   int64     `json:"amount"`
	Expires  time.Time `json:"expires"`
}

type snapAccount struct {
	Name        string           `json:"name"`
	ACL         []snapACLEntry   `json:"acl"`
	Balances    map[string]int64 `json:"balances"`
	Uncollected map[string]int64 `json:"uncollected"`
	Holds       []snapHold       `json:"holds,omitempty"`
	History     []Transaction    `json:"history,omitempty"`
}

type snapState struct {
	Accounts   []snapAccount  `json:"accounts"`
	AcceptOnce []replay.Entry `json:"acceptOnce,omitempty"`
}

// SnapshotState captures the full server state (accounts, balances,
// uncollected funds, holds, statement tails, accept-once entries) as a
// deterministic JSON document, plus the WAL sequence number the capture
// covers. Commits hold their accounts' stripes across append+apply, so
// with every stripe held here no commit is mid-flight: the captured
// state and the ledger's LastSeq agree.
func (s *Server) SnapshotState() ([]byte, uint64, error) {
	unlock := s.lockAll()
	defer unlock()
	s.acctMu.RLock()
	defer s.acctMu.RUnlock()
	st := snapState{AcceptOnce: s.registry.Export()}
	names := s.sortedNamesLocked()
	for _, name := range names {
		a := s.accounts[name]
		sa := snapAccount{
			Name:        name,
			Balances:    a.balances,
			Uncollected: a.uncollected,
			History:     a.history,
		}
		for _, e := range a.acl.Entries() {
			se := snapACLEntry{Ops: e.Ops}
			for _, p := range e.Subject.Principals {
				se.Principals = append(se.Principals, p.String())
			}
			for _, g := range e.Subject.Groups {
				se.Groups = append(se.Groups, g.String())
			}
			if len(e.Restrictions) > 0 {
				se.Restrictions = e.Restrictions.Marshal()
			}
			sa.ACL = append(sa.ACL, se)
		}
		nums := make([]string, 0, len(a.holds))
		for num := range a.holds {
			nums = append(nums, num)
		}
		sort.Strings(nums)
		for _, num := range nums {
			h := a.holds[num]
			sa.Holds = append(sa.Holds, snapHold{Number: num, Currency: h.currency, Amount: h.amount, Expires: h.expires})
		}
		st.Accounts = append(st.Accounts, sa)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		return nil, 0, fmt.Errorf("accounting: snapshot: %w", err)
	}
	var seq uint64
	if lg := s.ledgerRef(); lg != nil {
		seq = lg.LastSeq()
	}
	return raw, seq, nil
}

// restoreState rebuilds in-memory state from a snapshot document.
// Called from OpenLedger before the server takes traffic.
func (s *Server) restoreState(raw []byte) error {
	var st snapState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("accounting: restore snapshot: %w", err)
	}
	s.acctMu.Lock()
	defer s.acctMu.Unlock()
	for _, sa := range st.Accounts {
		entries := make([]acl.Entry, 0, len(sa.ACL))
		for _, se := range sa.ACL {
			e := acl.Entry{Ops: se.Ops}
			for _, p := range se.Principals {
				id, err := principal.Parse(p)
				if err != nil {
					return fmt.Errorf("accounting: restore ACL principal %q: %w", p, err)
				}
				e.Subject.Principals = append(e.Subject.Principals, id)
			}
			for _, g := range se.Groups {
				gl, err := principal.ParseGlobal(g)
				if err != nil {
					return fmt.Errorf("accounting: restore ACL group %q: %w", g, err)
				}
				e.Subject.Groups = append(e.Subject.Groups, gl)
			}
			if len(se.Restrictions) > 0 {
				rs, err := restrict.Unmarshal(se.Restrictions)
				if err != nil {
					return fmt.Errorf("accounting: restore ACL restrictions: %w", err)
				}
				e.Restrictions = rs
			}
			entries = append(entries, e)
		}
		a := &account{
			name:        sa.Name,
			acl:         acl.New(entries...),
			balances:    sa.Balances,
			uncollected: sa.Uncollected,
			holds:       make(map[string]*hold),
			history:     sa.History,
		}
		if a.balances == nil {
			a.balances = make(map[string]int64)
		}
		if a.uncollected == nil {
			a.uncollected = make(map[string]int64)
		}
		for _, h := range sa.Holds {
			a.holds[h.Number] = &hold{currency: h.Currency, amount: h.Amount, expires: h.Expires}
		}
		s.accounts[sa.Name] = a
	}
	s.registry.Restore(st.AcceptOnce)
	return nil
}

// ---- ledger lifecycle ----

// OpenLedger attaches a durable ledger to a freshly constructed server,
// restoring any recovered snapshot and replaying the WAL tail. It must
// be called before any accounts exist; provisioning after recovery
// should tolerate ErrAccountExists (the account came back from disk).
func (s *Server) OpenLedger(o ledger.Options) (*ledger.Recovery, error) {
	lg, rec, err := ledger.Open(o)
	if err != nil {
		return nil, err
	}
	if s.ledgerRef() != nil {
		lg.Close()
		return nil, errors.New("accounting: ledger already open")
	}
	s.acctMu.RLock()
	n := len(s.accounts)
	s.acctMu.RUnlock()
	if n != 0 {
		lg.Close()
		return nil, errors.New("accounting: OpenLedger requires a server with no accounts yet")
	}
	if rec.Snapshot != nil {
		if err := s.restoreState(rec.Snapshot); err != nil {
			lg.Close()
			return nil, err
		}
	}
	for _, e := range rec.Entries {
		o, err := decodeOp(e.Data)
		if err != nil {
			lg.Close()
			return nil, fmt.Errorf("accounting: WAL record %d: %w", e.Seq, err)
		}
		if err := s.applyOp(o); err != nil {
			lg.Close()
			return nil, fmt.Errorf("accounting: replay record %d: %w", e.Seq, err)
		}
	}
	s.cfgMu.Lock()
	s.ledger = lg
	s.cfgMu.Unlock()
	return rec, nil
}

// Ledger returns the attached ledger, nil when the server is in-memory
// only.
func (s *Server) Ledger() *ledger.Ledger {
	return s.ledgerRef()
}

// SnapshotNow captures the current state and commits it as a snapshot,
// truncating the WAL when nothing raced past the capture.
func (s *Server) SnapshotNow() error {
	state, seq, err := s.SnapshotState()
	if err != nil {
		return err
	}
	lg := s.Ledger()
	if lg == nil {
		return errors.New("accounting: no ledger attached")
	}
	return lg.WriteSnapshot(state, seq)
}

// StartSnapshotter runs SnapshotNow every interval while new WAL
// records exist. The returned stop function halts it and waits.
func (s *Server) StartSnapshotter(interval time.Duration) (stop func()) {
	lg := s.Ledger()
	if lg == nil {
		return func() {}
	}
	return lg.StartSnapshotter(interval, s.SnapshotNow)
}

// CloseLedger flushes and closes the attached ledger; the server keeps
// serving from memory afterwards.
func (s *Server) CloseLedger() error {
	s.cfgMu.Lock()
	lg := s.ledger
	s.ledger = nil
	s.cfgMu.Unlock()
	if lg == nil {
		return nil
	}
	return lg.Close()
}
