package accounting

import (
	"errors"
	"strings"
	"testing"
	"time"

	"proxykit/internal/principal"
)

func TestStatementRecordsLifecycle(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}

	// mint -> transfer -> check paid -> hold -> hold released
	if err := w.bank2.Transfer("carol", "dave", "dollars", 100, []principal.ID{carol}); err != nil {
		t.Fatal(err)
	}
	c, err := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
		Payee: dave, Currency: "dollars", Amount: 50,
		Lifetime: time.Hour, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); err != nil {
		t.Fatal(err)
	}
	held, err := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
		Payee: dave, Currency: "dollars", Amount: 25,
		Lifetime: time.Minute, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank2.Certify("carol", []principal.ID{carol}, held); err != nil {
		t.Fatal(err)
	}
	w.clk.Advance(2 * time.Minute)
	if n := w.bank2.ReleaseExpiredHolds(); n != 1 {
		t.Fatalf("released %d", n)
	}

	stmt, err := w.bank2.Statement("carol", []principal.ID{carol})
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TxKind, len(stmt))
	for i, tx := range stmt {
		kinds[i] = tx.Kind
	}
	want := []TxKind{TxMint, TxTransferOut, TxCheckPaid, TxHold, TxHoldReleased}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("entry %d kind = %s, want %s", i, kinds[i], want[i])
		}
	}
	// Line rendering includes the essentials.
	line := stmt[2].String()
	for _, needle := range []string{"check-paid", "50 dollars", "dave", "ck:"} {
		if !strings.Contains(line, needle) {
			t.Fatalf("statement line %q missing %q", line, needle)
		}
	}

	// The payee side sees the deposit.
	daveStmt, err := w.bank2.Statement("dave", []principal.ID{dave})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tx := range daveStmt {
		if tx.Kind == TxCheckDeposited && tx.Amount == 50 && tx.Counterparty == "carol" {
			found = true
		}
	}
	if !found {
		t.Fatalf("deposit not in dave's statement: %v", daveStmt)
	}
}

func TestStatementRequiresReadRight(t *testing.T) {
	w := newWorld(t)
	if _, err := w.bank2.Statement("carol", []principal.ID{dave}); !errors.Is(err, ErrDeniedByACL) {
		t.Fatalf("err = %v", err)
	}
	if _, err := w.bank2.Statement("ghost", []principal.ID{carol}); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
}

func TestStatementIsCopy(t *testing.T) {
	w := newWorld(t)
	stmt, err := w.bank2.Statement("carol", []principal.ID{carol})
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt) == 0 {
		t.Fatal("no mint entry")
	}
	stmt[0].Amount = 999999
	again, _ := w.bank2.Statement("carol", []principal.ID{carol})
	if again[0].Amount == 999999 {
		t.Fatal("Statement returned aliased history")
	}
}

func TestStatementRetentionBounded(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxStatementLen+50; i++ {
		if err := w.bank2.Transfer("carol", "dave", "dollars", 0, []principal.ID{carol}); err != nil {
			t.Fatal(err)
		}
	}
	stmt, err := w.bank2.Statement("carol", []principal.ID{carol})
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt) > maxStatementLen {
		t.Fatalf("history unbounded: %d", len(stmt))
	}
}

func TestTxKindString(t *testing.T) {
	for k, want := range map[TxKind]string{
		TxMint: "mint", TxTransferIn: "transfer-in", TxTransferOut: "transfer-out",
		TxCheckPaid: "check-paid", TxCheckDeposited: "check-deposited",
		TxHold: "hold", TxHoldReleased: "hold-released", TxKind(99): "tx(99)",
	} {
		if k.String() != want {
			t.Fatalf("%d = %q, want %q", k, k.String(), want)
		}
	}
}
