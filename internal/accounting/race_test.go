package accounting

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"proxykit/internal/principal"
)

// TestStripedTransferClearingRace hammers one bank pair from many
// goroutines at once — local transfers, same-bank and cross-bank check
// clearing, certified holds, expiry sweeps, and whole-bank snapshots —
// the workload the striped account locks exist for. Run under -race
// (make race) it checks the locking discipline; the final reconcile
// checks that concurrency never minted or destroyed money.
func TestStripedTransferClearingRace(t *testing.T) {
	w := newWorld(t)
	// A block of accounts on bank2 so transfers hit many stripes.
	names := []string{"carol", "dave", "erin", "frank", "grace", "heidi"}
	for _, n := range names[1:] {
		if err := w.bank2.CreateAccount(n, dave); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.bank2.Mint("dave", "dollars", 1000); err != nil {
		t.Fatal(err)
	}
	initial := bankDollars(w.bank2) + bankDollars(w.bank1)

	const perWorker = 150
	var settled atomic.Int64 // successful cross-bank volume
	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				fn(i)
			}
		}()
	}

	// Local transfers in both directions across the account block:
	// lockPair ordering under contention.
	for wkr := 0; wkr < 4; wkr++ {
		from, to := names[wkr%2], names[2+wkr%4]
		run(func(i int) {
			owner := carol
			if from != "carol" {
				owner = dave
			}
			_ = w.bank2.Transfer(from, to, "dollars", int64(1+i%7), []principal.ID{owner})
			_ = w.bank2.Transfer(to, from, "dollars", int64(1+i%5), []principal.ID{dave})
		})
	}

	// Same-bank check clearing: redeemLocal's payor/credit lockPair.
	run(func(i int) {
		c, err := WriteCheck(WriteCheckParams{
			Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
			Payee: dave, Currency: "dollars", Amount: int64(1 + i%9),
			Lifetime: time.Hour, Clock: w.clk,
		})
		if err != nil {
			t.Error(err)
			return
		}
		_, _ = w.bank2.DepositCheck(c, []principal.ID{dave}, "dave")
	})

	// Cross-bank clearing: uncollected credit, peer hop, collection —
	// single-account stripes interleaved with the transfer traffic.
	run(func(i int) {
		amt := int64(1 + i%6)
		c, err := WriteCheck(WriteCheckParams{
			Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
			Payee: srvS, Currency: "dollars", Amount: amt,
			Lifetime: time.Hour, Clock: w.clk,
		})
		if err != nil {
			t.Error(err)
			return
		}
		endorsed, err := c.Endorse(w.ids[srvS], w.bank1.ID, w.bank1.ID, w.bank1.Global("service"), true, w.clk)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := w.bank1.DepositCheck(endorsed, []principal.ID{srvS}, "service"); err == nil {
			settled.Add(amt)
		}
	})

	// Certified holds plus the expiry sweeper (lockAccount re-entry and
	// ReleaseExpiredHolds's whole-bank walk).
	run(func(i int) {
		c, err := WriteCheck(WriteCheckParams{
			Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
			Payee: dave, Currency: "dollars", Amount: int64(1 + i%4),
			Lifetime: time.Second, Clock: w.clk,
		})
		if err != nil {
			t.Error(err)
			return
		}
		_, _ = w.bank2.Certify("carol", []principal.ID{carol}, c)
		if i%16 == 0 {
			w.bank2.ReleaseExpiredHolds()
		}
	})

	// Whole-bank readers: Totals/AccountBalances (all-stripes) and
	// Statement (single stripe, read mode) racing the writers above.
	run(func(i int) {
		_ = w.bank2.Totals()
		_ = w.bank2.AccountBalances()
		_, _ = w.bank2.Statement("carol", []principal.ID{carol})
		if i%32 == 0 {
			w.clk.Advance(50 * time.Millisecond)
		}
	})

	wg.Wait()
	w.clk.Advance(time.Hour)
	w.bank2.ReleaseExpiredHolds()

	// Conservation: the cross-bank float (clearing accounts) grew by
	// exactly the settled volume; customer money never changed.
	final := bankDollars(w.bank2) + bankDollars(w.bank1)
	if final != initial {
		t.Fatalf("customer dollars not conserved: initial %d, final %d", initial, final)
	}
	t1, t2 := w.bank1.Totals(), w.bank2.Totals()
	float := t1.Clearing["dollars"] + t2.Clearing["dollars"]
	if float != settled.Load() {
		t.Fatalf("clearing float %d != settled cross-bank volume %d", float, settled.Load())
	}
}

// bankDollars sums a bank's customer dollars: balances, uncollected,
// and outstanding holds (clearing float excluded).
func bankDollars(s *Server) int64 {
	t := s.Totals()
	return t.Balances["dollars"] + t.Uncollected["dollars"] + t.Held["dollars"]
}
