package accounting

// Verification hooks for external invariant checkers (the soak world's
// continuous verifier, recovery audits). They expose aggregate state
// without the per-account read-ACL gate: a verifier is reconciling the
// whole bank, not reading one customer's balance, and it holds no
// principal identity of its own.

import (
	"strings"
)

// ClearingAccountPrefix names the inter-bank settlement accounts a bank
// creates for its correspondents during clearing (Fig. 5): funds a
// drawee bank credits to "clearing:<collector>" belong to the collector
// bank, not to this bank's customers.
const ClearingAccountPrefix = "clearing:"

// MoneyTotals is a per-currency census of where every unit of money on
// one server sits. Customer money is Balances + Uncollected + Held;
// Clearing is money owed to correspondent banks (it backs balances that
// already appear on the collector's books, so a cross-bank conservation
// check must not count it twice).
type MoneyTotals struct {
	// Balances sums collected balances across all accounts except
	// clearing accounts.
	Balances map[string]int64
	// Uncollected sums deposited-but-unclear funds.
	Uncollected map[string]int64
	// Held sums outstanding certified-check holds.
	Held map[string]int64
	// Clearing sums the balances of ClearingAccountPrefix accounts.
	Clearing map[string]int64
}

// Totals captures the server's money census with every stripe held, so
// the four maps are a consistent whole-bank snapshot (no commit is
// mid-flight between its WAL append and its in-memory apply).
func (s *Server) Totals() MoneyTotals {
	t := MoneyTotals{
		Balances:    map[string]int64{},
		Uncollected: map[string]int64{},
		Held:        map[string]int64{},
		Clearing:    map[string]int64{},
	}
	unlock := s.lockAll()
	defer unlock()
	s.acctMu.RLock()
	defer s.acctMu.RUnlock()
	for name, a := range s.accounts {
		clearing := strings.HasPrefix(name, ClearingAccountPrefix)
		for cur, v := range a.balances {
			if clearing {
				t.Clearing[cur] += v
			} else {
				t.Balances[cur] += v
			}
		}
		for cur, v := range a.uncollected {
			t.Uncollected[cur] += v
		}
		for _, h := range a.holds {
			t.Held[h.currency] += h.amount
		}
	}
	return t
}

// AccountBalances returns every account's collected balances as
// account -> currency -> amount. The outer and inner maps are copies;
// mutating them does not touch server state. Deterministic digests over
// the result should sort both key levels (see SortedAccountNames).
func (s *Server) AccountBalances() map[string]map[string]int64 {
	unlock := s.lockAll()
	defer unlock()
	s.acctMu.RLock()
	defer s.acctMu.RUnlock()
	out := make(map[string]map[string]int64, len(s.accounts))
	for name, a := range s.accounts {
		m := make(map[string]int64, len(a.balances))
		for cur, v := range a.balances {
			m[cur] = v
		}
		out[name] = m
	}
	return out
}

// SortedAccountNames lists all account names in sorted order — the
// stable iteration order for state digests.
func (s *Server) SortedAccountNames() []string {
	s.acctMu.RLock()
	defer s.acctMu.RUnlock()
	return s.sortedNamesLocked()
}
