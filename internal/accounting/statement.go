package accounting

import (
	"fmt"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/principal"
)

// TxKind classifies a statement entry.
type TxKind uint8

// Transaction kinds.
const (
	TxMint TxKind = iota + 1
	TxTransferIn
	TxTransferOut
	TxCheckPaid      // payor side: a check drawn on this account cleared
	TxCheckDeposited // payee side: a deposited check's proceeds arrived
	TxHold           // certified-check hold placed
	TxHoldReleased   // expired hold returned
)

// String implements fmt.Stringer.
func (k TxKind) String() string {
	switch k {
	case TxMint:
		return "mint"
	case TxTransferIn:
		return "transfer-in"
	case TxTransferOut:
		return "transfer-out"
	case TxCheckPaid:
		return "check-paid"
	case TxCheckDeposited:
		return "check-deposited"
	case TxHold:
		return "hold"
	case TxHoldReleased:
		return "hold-released"
	default:
		return fmt.Sprintf("tx(%d)", uint8(k))
	}
}

// Transaction is one statement line.
type Transaction struct {
	// Time of the transaction.
	Time time.Time
	// Kind of movement.
	Kind TxKind
	// Currency and Amount moved; Amount is always positive, Kind gives
	// the direction.
	Currency string
	Amount   int64
	// Counterparty is the other account (local name) when applicable.
	Counterparty string
	// CheckNumber for check-related entries.
	CheckNumber string
}

// String renders one statement line.
func (tx Transaction) String() string {
	s := fmt.Sprintf("%s %-15s %6d %s", tx.Time.UTC().Format(time.RFC3339), tx.Kind, tx.Amount, tx.Currency)
	if tx.Counterparty != "" {
		s += " <-> " + tx.Counterparty
	}
	if tx.CheckNumber != "" {
		s += " ck:" + tx.CheckNumber[:min(8, len(tx.CheckNumber))]
	}
	return s
}

// maxStatementLen bounds per-account history retention.
const maxStatementLen = 4096

// record appends a transaction to an account's history; callers hold
// the account's stripe in write mode.
func (a *account) record(tx Transaction) {
	a.history = append(a.history, tx)
	if len(a.history) > maxStatementLen {
		a.history = a.history[len(a.history)-maxStatementLen:]
	}
}

// Statement returns an account's retained transaction history, oldest
// first. Requesters need read rights.
func (s *Server) Statement(name string, requesters []principal.ID) ([]Transaction, error) {
	a, ok := s.lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoAccount, name)
	}
	if _, err := a.acl.Match(acl.Query{Op: OpRead, Identities: requesters}); err != nil {
		return nil, fmt.Errorf("%w: read %s: %v", ErrDeniedByACL, name, err)
	}
	unlock := s.rlockAccount(name)
	defer unlock()
	out := make([]Transaction, len(a.history))
	copy(out, a.history)
	return out, nil
}
