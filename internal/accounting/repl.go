package accounting

// Replication hooks: a standby bank replays the primary's WAL records
// through the same applyOp state machine the live path and recovery
// use, and a commit gate lets the replication layer refuse local
// mutations on standbys and deposed primaries (fail closed — a bank
// that is not the primary must not admit a check or move money).

import (
	"errors"
	"fmt"
)

// SetCommitGate installs a check run at the top of every mutation
// commit (before the WAL append). A non-nil error from the gate refuses
// the mutation; nil removes the gate. Replicated applies bypass the
// gate — they carry the primary's already-committed records.
func (s *Server) SetCommitGate(gate func() error) {
	s.cfgMu.Lock()
	defer s.cfgMu.Unlock()
	s.gate = gate
}

// gateRef fetches the commit gate under cfgMu.
func (s *Server) gateRef() func() error {
	s.cfgMu.Lock()
	defer s.cfgMu.Unlock()
	return s.gate
}

// lockOpAccounts write-locks the stripes of every account the op
// mutates, mirroring the live commit paths so whole-bank captures on a
// standby never observe a half-applied record.
func (s *Server) lockOpAccounts(o *op) (unlock func()) {
	a, b := o.acct, o.to
	switch {
	case a != "" && b != "":
		return s.lockPair(a, b)
	case a != "":
		return s.lockAccount(a)
	case b != "":
		return s.lockAccount(b)
	default:
		return func() {}
	}
}

// ApplyReplicated appends one shipped WAL record to the local ledger
// and applies it through applyOp — the standby's replay path. The
// locally assigned sequence number must equal the primary's; a mismatch
// means the two logs have diverged and the standby must not continue.
// Callers (the replication puller) are single-threaded.
func (s *Server) ApplyReplicated(seq uint64, payload []byte) error {
	o, err := decodeOp(payload)
	if err != nil {
		return err
	}
	lg := s.ledgerRef()
	if lg == nil {
		return errors.New("accounting: no ledger attached")
	}
	unlock := s.lockOpAccounts(o)
	defer unlock()
	got, err := lg.Append(payload)
	if err != nil {
		return fmt.Errorf("accounting: replicate: %w", err)
	}
	if got != seq {
		return fmt.Errorf("accounting: replication divergence: local seq %d, shipped seq %d", got, seq)
	}
	return s.applyOp(o)
}

// InstallSnapshot replaces the entire bank state with a snapshot
// shipped from the primary and resets the local ledger to cover it —
// replication catch-up when the primary has truncated the records a
// lagging standby still needs. All stripes are held exclusively, so no
// read observes the swap half-done.
func (s *Server) InstallSnapshot(state []byte, seq uint64) error {
	lg := s.ledgerRef()
	if lg == nil {
		return errors.New("accounting: no ledger attached")
	}
	s.createMu.Lock()
	defer s.createMu.Unlock()
	unlock := s.lockAllExclusive()
	defer unlock()
	s.acctMu.Lock()
	s.accounts = make(map[string]*account)
	s.acctMu.Unlock()
	s.registry.Clear()
	if err := s.restoreState(state); err != nil {
		return err
	}
	return lg.Reset(state, seq)
}
