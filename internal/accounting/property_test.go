package accounting

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"proxykit/internal/principal"
)

// TestPropertyConservation drives a random workload of transfers,
// checks (same-bank and cross-bank), certifications, and releases, and
// asserts the conservation invariant: the total of every currency
// across all accounts, uncollected balances, and holds in the economy
// never changes.
func TestPropertyConservation(t *testing.T) {
	w := newWorld(t)
	rng := rand.New(rand.NewSource(2026))

	// Extra accounts on both banks.
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	if err := w.bank1.CreateAccount("dave1", dave); err != nil {
		t.Fatal(err)
	}
	if err := w.bank1.Mint("dave1", "dollars", 500); err != nil {
		t.Fatal(err)
	}

	// Customer money must be conserved. Clearing accounts are interbank
	// float: bank1's asset at bank2 backing what bank1 credited its
	// customer — they grow by exactly the settled cross-bank volume.
	banks := []*Server{w.bank1, w.bank2}
	totals := func() (customer, clearing int64) {
		for _, b := range banks {
			unlock := b.lockAll()
			b.acctMu.RLock()
			for name, a := range b.accounts {
				sub := a.balances["dollars"] + a.uncollected["dollars"]
				for _, h := range a.holds {
					if h.currency == "dollars" {
						sub += h.amount
					}
				}
				if strings.HasPrefix(name, "clearing:") {
					clearing += sub
				} else {
					customer += sub
				}
			}
			b.acctMu.RUnlock()
			unlock()
		}
		return customer, clearing
	}

	initial, _ := totals()
	var settled int64
	ops := 0
	for i := 0; i < 300; i++ {
		switch rng.Intn(5) {
		case 0: // local transfer at bank2
			err := w.bank2.Transfer("carol", "dave", "dollars", int64(rng.Intn(50)), []principal.ID{carol})
			if err == nil {
				ops++
			}
		case 1: // same-bank check carol -> dave
			amt := int64(1 + rng.Intn(40))
			c, err := WriteCheck(WriteCheckParams{
				Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
				Payee: dave, Currency: "dollars", Amount: amt,
				Lifetime: time.Hour, Clock: w.clk,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); err == nil {
				ops++
			}
		case 2: // cross-bank check carol@bank2 -> service@bank1
			amt := int64(1 + rng.Intn(40))
			c, err := WriteCheck(WriteCheckParams{
				Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
				Payee: srvS, Currency: "dollars", Amount: amt,
				Lifetime: time.Hour, Clock: w.clk,
			})
			if err != nil {
				t.Fatal(err)
			}
			endorsed, err := c.Endorse(w.ids[srvS], w.bank1.ID, w.bank1.ID, w.bank1.Global("service"), true, w.clk)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.bank1.DepositCheck(endorsed, []principal.ID{srvS}, "service"); err == nil {
				ops++
				settled += amt
			}
		case 3: // certify (places a hold)
			amt := int64(1 + rng.Intn(30))
			c, err := WriteCheck(WriteCheckParams{
				Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
				Payee: dave, Currency: "dollars", Amount: amt,
				Lifetime: time.Minute, Clock: w.clk,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.bank2.Certify("carol", []principal.ID{carol}, c); err == nil {
				ops++
			}
		case 4: // time passes; expired holds release
			w.clk.Advance(time.Duration(rng.Intn(90)) * time.Second)
			w.bank2.ReleaseExpiredHolds()
		}
		customer, clearing := totals()
		if customer != initial {
			t.Fatalf("op %d (after %d successful): customer total %d != initial %d", i, ops, customer, initial)
		}
		if clearing != settled {
			t.Fatalf("op %d: clearing float %d != settled volume %d", i, clearing, settled)
		}
	}
	if ops < 50 {
		t.Fatalf("workload too skewed: only %d successful operations", ops)
	}
}

// TestPropertyNoOverdraft drives random checks and verifies an account
// can never go negative, even when checks exceed the balance.
func TestPropertyNoOverdraft(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		amt := int64(1 + rng.Intn(400)) // often exceeds what's left
		c, err := WriteCheck(WriteCheckParams{
			Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
			Payee: dave, Currency: "dollars", Amount: amt,
			Lifetime: time.Hour, Clock: w.clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, _ = w.bank2.DepositCheck(c, []principal.ID{dave}, "dave")
		bal, err := w.bank2.Balance("carol", "dollars", []principal.ID{carol})
		if err != nil {
			t.Fatal(err)
		}
		if bal < 0 {
			t.Fatalf("iteration %d: carol overdrawn: %d", i, bal)
		}
	}
}

// TestPropertyCheckNumberUniqueness verifies that independently written
// checks never collide on (grantor, number) — the accept-once namespace.
func TestPropertyCheckNumberUniqueness(t *testing.T) {
	w := newWorld(t)
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		c, err := WriteCheck(WriteCheckParams{
			Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
			Payee: dave, Currency: "dollars", Amount: 1,
			Lifetime: time.Hour, Clock: w.clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("%s/%s", c.Proxy.Grantor(), c.Number)
		if seen[key] {
			t.Fatalf("duplicate check number %s", key)
		}
		seen[key] = true
	}
}
