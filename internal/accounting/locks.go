package accounting

// Hash-striped account locks. The single server mutex serialized every
// operation on the bank; transfers between disjoint account pairs now
// proceed in parallel, each holding only the stripes its accounts hash
// to. Lock order, everywhere in the package:
//
//	createMu → stripes (ascending index) → acctMu → cfgMu
//
// Deadlock freedom follows from the total order: pair operations take
// both stripes in ascending index order, whole-bank captures take every
// stripe ascending, and acctMu (the accounts-map lock) is only ever
// taken while holding stripes or alone — never the reverse.
//
// Commit invariant: every commitOp call site holds, in write mode, the
// stripe of every account its op mutates. Whole-bank captures (Totals,
// SnapshotState) hold all stripes, so no commit is mid-flight between
// its WAL append and its in-memory apply while they look — the captured
// state and ledger sequence number agree.

import (
	"hash/fnv"
	"sort"
	"time"
)

// lockStripes is the number of account-lock stripes. A power of two
// comfortably above the daemon worker-pool size, so concurrent
// transfers rarely collide on a stripe they don't share an account
// with.
const lockStripes = 64

// stripeOf hashes an account name to its stripe index.
func stripeOf(name string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum32() % lockStripes)
}

// lookup fetches an account by name. Accounts are never deleted, so the
// returned pointer stays valid; its fields are guarded by the account's
// stripe, not by acctMu.
func (s *Server) lookup(name string) (*account, bool) {
	s.acctMu.RLock()
	a, ok := s.accounts[name]
	s.acctMu.RUnlock()
	return a, ok
}

// lockAccount write-locks the stripe guarding name.
func (s *Server) lockAccount(name string) (unlock func()) {
	i := stripeOf(name)
	start := time.Now()
	s.stripes[i].Lock()
	mStripeWait.Observe(time.Since(start).Seconds())
	mStripeLocks.With("single").Inc()
	return s.stripes[i].Unlock
}

// rlockAccount read-locks the stripe guarding name, for balance and
// statement reads that must not observe a mid-commit state.
func (s *Server) rlockAccount(name string) (unlock func()) {
	i := stripeOf(name)
	start := time.Now()
	s.stripes[i].RLock()
	mStripeWait.Observe(time.Since(start).Seconds())
	mStripeLocks.With("single").Inc()
	return s.stripes[i].RUnlock
}

// lockPair write-locks the stripes guarding two accounts in ascending
// index order (the deterministic ordered acquisition that keeps
// opposite-direction transfers from deadlocking); a shared stripe is
// taken once.
func (s *Server) lockPair(a, b string) (unlock func()) {
	i, j := stripeOf(a), stripeOf(b)
	if i == j {
		return s.lockAccount(a)
	}
	if i > j {
		i, j = j, i
	}
	start := time.Now()
	s.stripes[i].Lock()
	s.stripes[j].Lock()
	mStripeWait.Observe(time.Since(start).Seconds())
	mStripeLocks.With("pair").Inc()
	return func() {
		s.stripes[j].Unlock()
		s.stripes[i].Unlock()
	}
}

// lockAll read-locks every stripe in ascending order. Read mode still
// excludes writers, so in-flight commits (which hold their stripes in
// write mode across append+apply) finish before the capture begins —
// while concurrent whole-bank readers can overlap each other.
func (s *Server) lockAll() (unlock func()) {
	start := time.Now()
	for i := range s.stripes {
		s.stripes[i].RLock()
	}
	mStripeWait.Observe(time.Since(start).Seconds())
	mStripeLocks.With("all").Inc()
	return func() {
		for i := len(s.stripes) - 1; i >= 0; i-- {
			s.stripes[i].RUnlock()
		}
	}
}

// lockAllExclusive write-locks every stripe in ascending order.
// Replication snapshot installs replace the whole bank's state and must
// exclude readers as well as writers — a balance read overlapping the
// swap could observe the emptied map.
func (s *Server) lockAllExclusive() (unlock func()) {
	start := time.Now()
	for i := range s.stripes {
		s.stripes[i].Lock()
	}
	mStripeWait.Observe(time.Since(start).Seconds())
	mStripeLocks.With("all").Inc()
	return func() {
		for i := len(s.stripes) - 1; i >= 0; i-- {
			s.stripes[i].Unlock()
		}
	}
}

// sortedNamesLocked lists account names in sorted order; callers hold
// acctMu (either mode).
func (s *Server) sortedNamesLocked() []string {
	names := make([]string, 0, len(s.accounts))
	for name := range s.accounts {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
