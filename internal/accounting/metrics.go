package accounting

import "proxykit/internal/obs"

// Accounting metrics: balance reads, transfers (the quota primitive),
// the check lifecycle (§4, Fig. 5) — written, deposited, cleared
// through correspondent banks — and the accept-once duplicate
// suppression of §7.7.
var (
	mBalanceReads = obs.Default.NewCounter("proxykit_acct_balance_reads_total",
		"Balance and uncollected-balance read requests.")
	mTransfers = obs.Default.NewCounterVec("proxykit_acct_transfers_total",
		"Local transfers (including quota allocate/release), by outcome (ok, error).", "outcome")
	mChecksWritten = obs.Default.NewCounter("proxykit_acct_checks_written_total",
		"Checks written (signed numbered delegate proxies).")
	mDeposits = obs.Default.NewCounterVec("proxykit_acct_check_deposits_total",
		"Check deposits, by outcome (ok, duplicate, error).", "outcome")
	mClearingHops = obs.Default.NewHistogram("proxykit_acct_clearing_hops",
		"Banks that processed a successfully deposited check (Fig. 5: same-bank = 1).",
		obs.DefChainBuckets)
	mClearingForwards = obs.Default.NewCounter("proxykit_acct_clearing_forwards_total",
		"Checks endorsed onward to another bank for collection.")
	mAcceptOnceRejections = obs.Default.NewCounter("proxykit_acct_accept_once_rejections_total",
		"Deposits rejected because the check number was already accepted (§7.7).")
	mHoldsPlaced = obs.Default.NewCounter("proxykit_acct_holds_placed_total",
		"Certified-check holds placed.")
	mHoldsReleased = obs.Default.NewCounter("proxykit_acct_holds_released_total",
		"Expired certified-check holds returned to their accounts.")
	mClearingRetries = obs.Default.NewCounter("proxykit_acct_clearing_retries_total",
		"Clearing-hop deliveries retried after a transport-shaped failure.")
	mClearingDupAcks = obs.Default.NewCounter("proxykit_acct_clearing_duplicate_acks_total",
		"Duplicate-check rejections on a retried hop treated as the lost ack of an earlier success.")
	mClearingAbandoned = obs.Default.NewCounter("proxykit_acct_clearing_abandoned_total",
		"Clearing hops abandoned (retry budget exhausted or hard refusal), uncollected credit rolled back.")
	mStripeLocks = obs.Default.NewCounterVec("proxykit_acct_lock_stripe_acquisitions_total",
		"Account-lock stripe acquisitions, by scope (single account, ordered pair, whole-bank all-stripes).", "scope")
	mStripeWait = obs.Default.NewHistogram("proxykit_acct_lock_stripe_wait_seconds",
		"Time spent waiting to acquire account-lock stripes — contention on the striped bank.",
		obs.DefLatencyBuckets)
)
