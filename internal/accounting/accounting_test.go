package accounting

import (
	"errors"
	"testing"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
)

var (
	carol = principal.New("carol", "ISI.EDU") // client C in Fig. 5
	srvS  = principal.New("service", "ISI.EDU")
	dave  = principal.New("dave", "ISI.EDU")
)

// world holds a two-bank economy: carol banks at bank2 ($2), the service
// banks at bank1 ($1), mirroring Fig. 5.
type world struct {
	t     *testing.T
	clk   *clock.Fake
	dir   *pubkey.Directory
	ids   map[principal.ID]*pubkey.Identity
	bank1 *Server
	bank2 *Server
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{
		t:   t,
		clk: clock.NewFake(time.Unix(13_000_000, 0)),
		dir: pubkey.NewDirectory(),
		ids: make(map[principal.ID]*pubkey.Identity),
	}
	for _, id := range []principal.ID{carol, srvS, dave} {
		w.register(id)
	}
	b1 := w.register(principal.New("bank1", "ISI.EDU"))
	b2 := w.register(principal.New("bank2", "ISI.EDU"))
	w.bank1 = NewServer(b1, w.dir.Resolver(), w.clk)
	w.bank2 = NewServer(b2, w.dir.Resolver(), w.clk)
	w.dir.RegisterIdentity(w.bank1.identity)
	w.dir.RegisterIdentity(w.bank2.identity)
	w.bank1.AddPeer(w.bank2)
	w.bank2.AddPeer(w.bank1)

	if err := w.bank2.CreateAccount("carol", carol); err != nil {
		t.Fatal(err)
	}
	if err := w.bank2.Mint("carol", "dollars", 1000); err != nil {
		t.Fatal(err)
	}
	if err := w.bank1.CreateAccount("service", srvS); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *world) register(id principal.ID) *pubkey.Identity {
	w.t.Helper()
	ident, err := pubkey.NewIdentity(id)
	if err != nil {
		w.t.Fatal(err)
	}
	w.ids[id] = ident
	w.dir.RegisterIdentity(ident)
	return ident
}

// carolCheck writes a check from carol's account at bank2 payable to
// the service.
func (w *world) carolCheck(amount int64) *Check {
	w.t.Helper()
	c, err := WriteCheck(WriteCheckParams{
		Payor:    w.ids[carol],
		Bank:     w.bank2.ID,
		Account:  "carol",
		Payee:    srvS,
		Currency: "dollars",
		Amount:   amount,
		Lifetime: 24 * time.Hour,
		Clock:    w.clk,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return c
}

// endorseTo performs the payee-side endorsement of Fig. 5: the payee
// grants its bank a cascaded proxy directing deposit to its account.
func (w *world) endorseTo(c *Check, payee principal.ID, bank *Server, account string) *Check {
	w.t.Helper()
	e, err := c.Endorse(w.ids[payee], bank.ID, bank.ID, bank.Global(account), true, w.clk)
	if err != nil {
		w.t.Fatal(err)
	}
	return e
}

func (w *world) balance(b *Server, account string, who principal.ID) int64 {
	w.t.Helper()
	v, err := b.Balance(account, "dollars", []principal.ID{who})
	if err != nil {
		w.t.Fatal(err)
	}
	return v
}

func TestSameBankCheck(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	c, err := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
		Payee: dave, Currency: "dollars", Amount: 100,
		Lifetime: time.Hour, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave")
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops != 1 || !r.Collected || r.Amount != 100 {
		t.Fatalf("receipt = %+v", r)
	}
	if got := w.balance(w.bank2, "carol", carol); got != 900 {
		t.Fatalf("carol = %d", got)
	}
	if got := w.balance(w.bank2, "dave", dave); got != 100 {
		t.Fatalf("dave = %d", got)
	}
}

func TestDuplicateDepositRejected(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	c, _ := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
		Payee: dave, Currency: "dollars", Amount: 10,
		Lifetime: time.Hour, Clock: w.clk,
	})
	if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); !errors.Is(err, ErrDuplicateCheck) {
		t.Fatalf("err = %v", err)
	}
	// After the retention window (check expiry) the number could recur,
	// but the check itself has expired — both defenses overlap.
	w.clk.Advance(25 * time.Hour)
	if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("expired err = %v", err)
	}
}

func TestCrossBankClearing(t *testing.T) {
	// Fig. 5 exactly: C banks at $2, S banks at $1; S deposits at $1;
	// $1 endorses and forwards to $2.
	w := newWorld(t)
	c := w.endorseTo(w.carolCheck(250), srvS, w.bank1, "service")

	r, err := w.bank1.DepositCheck(c, []principal.ID{srvS}, "service")
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops != 2 {
		t.Fatalf("hops = %d, want 2", r.Hops)
	}
	if got := w.balance(w.bank2, "carol", carol); got != 750 {
		t.Fatalf("carol = %d", got)
	}
	if got := w.balance(w.bank1, "service", srvS); got != 250 {
		t.Fatalf("service = %d", got)
	}
	// Interbank settlement: bank1's clearing account at bank2 holds the
	// collected funds.
	got, err := w.bank2.Balance(clearingAccount(w.bank1.ID), "dollars", []principal.ID{w.bank1.ID})
	if err != nil {
		t.Fatal(err)
	}
	if got != 250 {
		t.Fatalf("clearing = %d", got)
	}
	// Nothing left uncollected.
	if u, _ := w.bank1.UncollectedBalance("service", "dollars", []principal.ID{srvS}); u != 0 {
		t.Fatalf("uncollected = %d", u)
	}
	if w.bank1.ForwardedChecks != 1 {
		t.Fatalf("forwarded = %d", w.bank1.ForwardedChecks)
	}
}

func TestMultiHopClearing(t *testing.T) {
	// A chain of four banks: deposit at bank A, drawn on bank D,
	// forwarded A→B→C→D via next hops.
	w := newWorld(t)
	banks := make([]*Server, 4)
	for i := range banks {
		ident := w.register(principal.New("chain"+string(rune('A'+i)), "ISI.EDU"))
		banks[i] = NewServer(ident, w.dir.Resolver(), w.clk)
	}
	for i := 0; i < 3; i++ {
		banks[i].SetNextHop(banks[i+1])
	}
	last := banks[3]
	if err := last.CreateAccount("payor", carol); err != nil {
		t.Fatal(err)
	}
	if err := last.Mint("payor", "credits", 500); err != nil {
		t.Fatal(err)
	}
	if err := banks[0].CreateAccount("payee", dave); err != nil {
		t.Fatal(err)
	}
	c, err := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: last.ID, Account: "payor",
		Payee: dave, Currency: "credits", Amount: 123,
		Lifetime: time.Hour, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	endorsed, err := c.Endorse(w.ids[dave], banks[0].ID, banks[0].ID, banks[0].Global("payee"), true, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	r, err := banks[0].DepositCheck(endorsed, []principal.ID{dave}, "payee")
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops != 4 {
		t.Fatalf("hops = %d, want 4", r.Hops)
	}
	if got, _ := last.Balance("payor", "credits", []principal.ID{carol}); got != 377 {
		t.Fatalf("payor = %d", got)
	}
	if got, _ := banks[0].Balance("payee", "credits", []principal.ID{dave}); got != 123 {
		t.Fatalf("payee = %d", got)
	}
}

func TestInsufficientFundsRollsBackUncollected(t *testing.T) {
	w := newWorld(t)
	c := w.endorseTo(w.carolCheck(5000), srvS, w.bank1, "service") // more than carol has
	if _, err := w.bank1.DepositCheck(c, []principal.ID{srvS}, "service"); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("err = %v", err)
	}
	if u, _ := w.bank1.UncollectedBalance("service", "dollars", []principal.ID{srvS}); u != 0 {
		t.Fatalf("uncollected not rolled back: %d", u)
	}
	if got := w.balance(w.bank1, "service", srvS); got != 0 {
		t.Fatalf("service credited: %d", got)
	}
}

func TestStolenPayeeCheckUnusable(t *testing.T) {
	// The check names the service as payee; dave cannot deposit it.
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	c := w.carolCheck(100)
	if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("err = %v", err)
	}
	// Carol's balance untouched.
	if got := w.balance(w.bank2, "carol", carol); got != 1000 {
		t.Fatalf("carol = %d", got)
	}
}

func TestGrantorWithoutDebitRightsRejected(t *testing.T) {
	// Dave writes a check on carol's account; he has no debit rights.
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	c, err := WriteCheck(WriteCheckParams{
		Payor: w.ids[dave], Bank: w.bank2.ID, Account: "carol",
		Payee: dave, Currency: "dollars", Amount: 10,
		Lifetime: time.Hour, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); !errors.Is(err, ErrDeniedByACL) {
		t.Fatalf("err = %v", err)
	}
}

func TestTamperedAmountRejected(t *testing.T) {
	// The metadata claims a larger amount than the signed quota.
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	c, _ := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
		Payee: dave, Currency: "dollars", Amount: 10,
		Lifetime: time.Hour, Clock: w.clk,
	})
	c.Amount = 900
	if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("err = %v", err)
	}
	// Tampered account name similarly fails the authorized restriction.
	c2, _ := WriteCheck(WriteCheckParams{
		Payor: w.ids[dave], Bank: w.bank2.ID, Account: "dave",
		Payee: dave, Currency: "dollars", Amount: 10,
		Lifetime: time.Hour, Clock: w.clk,
	})
	c2.Account = "carol"
	if _, err := w.bank2.DepositCheck(c2, []principal.ID{dave}, "dave"); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("account tamper err = %v", err)
	}
}

func TestBearerCheckNeedsProxyKey(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	c, err := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
		Currency: "dollars", Amount: 50, // no payee: bearer check
		Lifetime: time.Hour, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With the key (dave was handed the whole proxy) it spends.
	if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); err != nil {
		t.Fatal(err)
	}
	// A copied certificate chain without the key is worthless.
	c2, _ := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
		Currency: "dollars", Amount: 50,
		Lifetime: time.Hour, Clock: w.clk,
	})
	c2.Proxy.Key = nil
	if _, err := w.bank2.DepositCheck(c2, []principal.ID{dave}, "dave"); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("err = %v", err)
	}
}

func TestEndorsementDirectsProceeds(t *testing.T) {
	// The service endorses the check for deposit to its account at
	// bank1; bank1 refuses to credit any other account.
	w := newWorld(t)
	if err := w.bank1.CreateAccount("other", dave); err != nil {
		t.Fatal(err)
	}
	c := w.carolCheck(75)
	endorsed, err := c.Endorse(w.ids[srvS], w.bank1.ID, w.bank1.ID, w.bank1.Global("service"), true, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank1.DepositCheck(endorsed, []principal.ID{w.bank1.ID}, "other"); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("misdirected deposit err = %v", err)
	}
	if _, err := w.bank1.DepositCheck(endorsed, []principal.ID{w.bank1.ID}, "service"); err != nil {
		t.Fatal(err)
	}
}

func TestNoRouteError(t *testing.T) {
	w := newWorld(t)
	lonely := NewServer(w.register(principal.New("lonely", "ISI.EDU")), w.dir.Resolver(), w.clk)
	if err := lonely.CreateAccount("acct", dave); err != nil {
		t.Fatal(err)
	}
	c, err := w.carolCheck(10).Endorse(w.ids[srvS], lonely.ID, lonely.ID, lonely.Global("acct"), true, w.clk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lonely.DepositCheck(c, []principal.ID{srvS}, "acct"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestCertifiedCheck(t *testing.T) {
	w := newWorld(t)
	c := w.carolCheck(400)
	cc, err := w.bank2.Certify("carol", []principal.ID{carol}, c)
	if err != nil {
		t.Fatal(err)
	}
	// The hold reduced the available balance immediately.
	if got := w.balance(w.bank2, "carol", carol); got != 600 {
		t.Fatalf("carol after hold = %d", got)
	}
	// An end-server can verify the certification.
	envS := w.bank1.env // any env with the directory resolver works
	if err := VerifyCertification(cc, envS, srvS); err != nil {
		t.Fatal(err)
	}
	// Carol drains the rest of her account; the certified check still
	// clears from the hold.
	if err := w.bank2.CreateAccount("sink", carol); err != nil {
		t.Fatal(err)
	}
	if err := w.bank2.Transfer("carol", "sink", "dollars", 600, []principal.ID{carol}); err != nil {
		t.Fatal(err)
	}
	r, err := w.bank1.DepositCheck(w.endorseTo(cc.Check, srvS, w.bank1, "service"), []principal.ID{srvS}, "service")
	if err != nil {
		t.Fatal(err)
	}
	if r.Amount != 400 {
		t.Fatalf("receipt = %+v", r)
	}
	if got := w.balance(w.bank1, "service", srvS); got != 400 {
		t.Fatalf("service = %d", got)
	}
}

func TestCertifyValidation(t *testing.T) {
	w := newWorld(t)
	c := w.carolCheck(100)
	// Only holders of debit rights can certify.
	if _, err := w.bank2.Certify("carol", []principal.ID{dave}, c); !errors.Is(err, ErrDeniedByACL) {
		t.Fatalf("err = %v", err)
	}
	// Double certification of the same number fails.
	if _, err := w.bank2.Certify("carol", []principal.ID{carol}, c); err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank2.Certify("carol", []principal.ID{carol}, c); !errors.Is(err, ErrHoldExists) {
		t.Fatalf("err = %v", err)
	}
	// Certification beyond the balance fails.
	big := w.carolCheck(5000)
	if _, err := w.bank2.Certify("carol", []principal.ID{carol}, big); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("err = %v", err)
	}
	// Wrong bank / wrong account.
	if _, err := w.bank1.Certify("carol", []principal.ID{carol}, w.carolCheck(1)); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("err = %v", err)
	}
}

func TestExpiredHoldsReleased(t *testing.T) {
	w := newWorld(t)
	c := w.carolCheck(300)
	if _, err := w.bank2.Certify("carol", []principal.ID{carol}, c); err != nil {
		t.Fatal(err)
	}
	if got := w.balance(w.bank2, "carol", carol); got != 700 {
		t.Fatalf("after hold = %d", got)
	}
	w.clk.Advance(25 * time.Hour)
	if n := w.bank2.ReleaseExpiredHolds(); n != 1 {
		t.Fatalf("released = %d", n)
	}
	if got := w.balance(w.bank2, "carol", carol); got != 1000 {
		t.Fatalf("after release = %d", got)
	}
}

func TestCashiersCheck(t *testing.T) {
	w := newWorld(t)
	c, err := w.bank2.CashiersCheck("carol", []principal.ID{carol}, srvS, "dollars", 150, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Carol paid immediately.
	if got := w.balance(w.bank2, "carol", carol); got != 850 {
		t.Fatalf("carol = %d", got)
	}
	// The check is drawn on the bank itself and always clears.
	r, err := w.bank1.DepositCheck(w.endorseTo(c, srvS, w.bank1, "service"), []principal.ID{srvS}, "service")
	if err != nil {
		t.Fatal(err)
	}
	if r.Amount != 150 {
		t.Fatalf("receipt = %+v", r)
	}
	if got := w.balance(w.bank1, "service", srvS); got != 150 {
		t.Fatalf("service = %d", got)
	}
}

func TestQuotaAllocateRelease(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.CreateAccount("printer-held", dave); err != nil {
		t.Fatal(err)
	}
	if err := w.bank2.Mint("carol", "pages", 30); err != nil {
		t.Fatal(err)
	}
	if err := w.bank2.AllocateQuota("carol", "printer-held", "pages", 20, []principal.ID{carol}); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.bank2.Balance("carol", "pages", []principal.ID{carol}); got != 10 {
		t.Fatalf("carol pages = %d", got)
	}
	// Over-allocation fails: the quota is exhausted.
	if err := w.bank2.AllocateQuota("carol", "printer-held", "pages", 15, []principal.ID{carol}); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("err = %v", err)
	}
	// Release returns the unused portion.
	if err := w.bank2.ReleaseQuota("printer-held", "carol", "pages", 5, []principal.ID{dave}); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.bank2.Balance("carol", "pages", []principal.ID{carol}); got != 15 {
		t.Fatalf("carol pages = %d", got)
	}
}

func TestTransferValidation(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	if err := w.bank2.Transfer("carol", "dave", "dollars", 10, []principal.ID{dave}); !errors.Is(err, ErrDeniedByACL) {
		t.Fatalf("acl err = %v", err)
	}
	if err := w.bank2.Transfer("carol", "dave", "dollars", -5, []principal.ID{carol}); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("negative err = %v", err)
	}
	if err := w.bank2.Transfer("ghost", "dave", "dollars", 1, []principal.ID{carol}); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("missing src err = %v", err)
	}
	if err := w.bank2.Transfer("carol", "ghost", "dollars", 1, []principal.ID{carol}); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("missing dst err = %v", err)
	}
}

func TestBalanceRequiresReadRight(t *testing.T) {
	w := newWorld(t)
	if _, err := w.bank2.Balance("carol", "dollars", []principal.ID{dave}); !errors.Is(err, ErrDeniedByACL) {
		t.Fatalf("err = %v", err)
	}
	if _, err := w.bank2.UncollectedBalance("carol", "dollars", []principal.ID{dave}); !errors.Is(err, ErrDeniedByACL) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateAccountValidation(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.CreateAccount("carol", carol); !errors.Is(err, ErrAccountExists) {
		t.Fatalf("err = %v", err)
	}
	if _, err := w.bank2.AccountACL("ghost"); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
	if err := w.bank2.Mint("ghost", "dollars", 1); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteCheckValidation(t *testing.T) {
	w := newWorld(t)
	if _, err := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
		Currency: "dollars", Amount: 0, Clock: w.clk,
	}); !errors.Is(err, ErrBadCheck) {
		t.Fatalf("err = %v", err)
	}
}

func TestMultipleCurrenciesIndependent(t *testing.T) {
	w := newWorld(t)
	if err := w.bank2.Mint("carol", "pages", 7); err != nil {
		t.Fatal(err)
	}
	if got, _ := w.bank2.Balance("carol", "pages", []principal.ID{carol}); got != 7 {
		t.Fatalf("pages = %d", got)
	}
	if got, _ := w.bank2.Balance("carol", "dollars", []principal.ID{carol}); got != 1000 {
		t.Fatalf("dollars = %d", got)
	}
	if got, _ := w.bank2.Balance("carol", "yen", []principal.ID{carol}); got != 0 {
		t.Fatalf("yen = %d", got)
	}
}

func TestBouncedCheckCanBeRedeposited(t *testing.T) {
	// A check that bounces for insufficient funds is returned, not
	// voided: once the payor funds the account, the same check clears.
	w := newWorld(t)
	if err := w.bank2.CreateAccount("dave", dave); err != nil {
		t.Fatal(err)
	}
	c, err := WriteCheck(WriteCheckParams{
		Payor: w.ids[carol], Bank: w.bank2.ID, Account: "carol",
		Payee: dave, Currency: "dollars", Amount: 5000,
		Lifetime: time.Hour, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("err = %v", err)
	}
	if err := w.bank2.Mint("carol", "dollars", 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); err != nil {
		t.Fatalf("re-deposit after funding failed: %v", err)
	}
	// And only once: the successful deposit consumes the number.
	if _, err := w.bank2.DepositCheck(c, []principal.ID{dave}, "dave"); !errors.Is(err, ErrDuplicateCheck) {
		t.Fatalf("err = %v", err)
	}
}
