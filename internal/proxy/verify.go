package proxy

import (
	"errors"
	"fmt"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
	"proxykit/internal/wire"
)

// VerifyEnv supplies an end-server's environment for validating proxy
// chains: its identity, time source, and how it resolves the keys of
// grantors and unseals conventional proxy keys.
type VerifyEnv struct {
	// Server is the verifying end-server's identity.
	Server principal.ID
	// Clock supplies the verification instant; nil uses the system
	// clock.
	Clock clock.Clock
	// MaxSkew is the tolerated clock skew for IssuedAt checks.
	MaxSkew time.Duration
	// ResolveIdentity returns the verifier for a principal's identity
	// signatures: a directory lookup in public-key mode (§6.1), or the
	// session key established by the authentication system in
	// conventional mode (§6.2).
	ResolveIdentity func(principal.ID) (kcrypto.Verifier, error)
	// UnsealProxyKey recovers a conventional proxy key from a
	// certificate's sealed binding. Unused in pure public-key chains.
	UnsealProxyKey func(*Certificate) (*kcrypto.SymmetricKey, error)
	// Cache, when set, memoizes successful verifications of pure
	// public-key chains by chain digest: a hit skips the per-link
	// signature checks but still rechecks every validity window (see
	// ChainCache). nil verifies every chain in full.
	Cache *ChainCache
}

// UnsealWith returns an UnsealProxyKey function that opens sealed proxy
// keys with the supplied shared key — the common case where every
// binding in a chain was sealed toward the same end-server.
func UnsealWith(k *kcrypto.SymmetricKey) func(*Certificate) (*kcrypto.SymmetricKey, error) {
	return func(c *Certificate) (*kcrypto.SymmetricKey, error) {
		raw, err := k.Open(c.Binding.Sealed)
		if err != nil {
			return nil, err
		}
		return kcrypto.SymmetricKeyFromBytes(raw)
	}
}

// UnsealWithECDH returns an UnsealProxyKey function for hybrid-mode
// bindings (§6.1): the end-server derives the pairwise key from its
// long-term ECDH key and the grantor's ephemeral public half carried in
// the binding.
func UnsealWithECDH(priv *kcrypto.ECDHKey) func(*Certificate) (*kcrypto.SymmetricKey, error) {
	return func(c *Certificate) (*kcrypto.SymmetricKey, error) {
		if len(c.Binding.EphPub) == 0 {
			return nil, fmt.Errorf("proxy: binding carries no ephemeral key")
		}
		shared, err := priv.SharedKey(c.Binding.EphPub)
		if err != nil {
			return nil, err
		}
		raw, err := shared.Open(c.Binding.Sealed)
		if err != nil {
			return nil, err
		}
		return kcrypto.SymmetricKeyFromBytes(raw)
	}
}

// Verified is the outcome of successful chain verification: everything
// an end-server needs to evaluate a request against the proxy.
type Verified struct {
	// Grantor is the original grantor, whose rights (as limited by the
	// restrictions) the presenter exercises.
	Grantor principal.ID
	// GrantorKeyID identifies the grantor's signing key; the namespace
	// for accept-once identifiers.
	GrantorKeyID string
	// Restrictions is the accumulated set over the whole chain.
	Restrictions restrict.Set
	// Expires is the earliest expiry over the chain.
	Expires time.Time
	// Bearer reports bearer semantics: no grantee restriction applies at
	// this server, so possession of the proxy key is the sole check.
	Bearer bool
	// Trail lists the identities of delegate-cascade intermediates in
	// chain order — the audit trail of §3.4.
	Trail []principal.ID
	// ChainLen is the number of certificates verified.
	ChainLen int
	// Cached reports that signature verification was skipped because the
	// byte-identical chain was found in the VerifyEnv's ChainCache
	// (validity windows were still rechecked).
	Cached bool

	finalVerifier kcrypto.Verifier
}

// VerifyChain validates a certificate chain (Fig. 4): the first
// certificate against the grantor's identity, each bearer link against
// the previous link's proxy key, and each delegate link against the
// intermediate's identity plus its presence in the accumulated grantee
// list. It checks validity windows and accumulates restrictions. It does
// NOT check proof of possession; see VerifyPossession and
// VerifyPresentation.
func (env *VerifyEnv) VerifyChain(certs []*Certificate) (*Verified, error) {
	if len(certs) == 0 {
		return nil, fmt.Errorf("%w: empty chain", ErrBadChain)
	}
	if len(certs) > maxChainLen {
		return nil, fmt.Errorf("%w: chain length %d", ErrBadChain, len(certs))
	}
	if env.ResolveIdentity == nil {
		return nil, fmt.Errorf("proxy: verify: no identity resolver")
	}
	clk := env.Clock
	if clk == nil {
		clk = clock.System{}
	}
	now := clk.Now()

	// Consult the verified-chain cache. Only pure public-key chains are
	// eligible (chainCacheable); a hit skips signature re-verification
	// but every validity window is rechecked at the current instant, so
	// revocation-by-expiry (§3.1) behaves identically warm or cold.
	var cacheKey string
	if env.Cache != nil {
		if !chainCacheable(certs) {
			mCacheUncacheable.Inc()
		} else {
			cacheKey = chainCacheKey(env.Server, certs)
			if v, ok := env.Cache.get(cacheKey, now); ok {
				for i, c := range certs {
					if err := env.checkValidity(c, now); err != nil {
						if errors.Is(err, ErrExpired) {
							env.Cache.remove(cacheKey, "expired")
						}
						return nil, fmt.Errorf("certificate %d: %w", i, err)
					}
				}
				return &v, nil
			}
		}
	}

	out := &Verified{
		Grantor:  certs[0].Grantor,
		Expires:  certs[0].Expires,
		ChainLen: len(certs),
	}
	var accumulated restrict.Set
	for i, c := range certs {
		if err := env.checkValidity(c, now); err != nil {
			return nil, fmt.Errorf("certificate %d: %w", i, err)
		}
		verifier, err := env.linkVerifier(i, c, certs, accumulated)
		if err != nil {
			return nil, err
		}
		if verifier.Scheme() != c.SigScheme {
			return nil, fmt.Errorf("%w: certificate %d signed with %s but verifier is %s",
				ErrBadChain, i, c.SigScheme, verifier.Scheme())
		}
		if err := verifier.Verify(c.signedBytes(), c.Signature); err != nil {
			return nil, fmt.Errorf("%w: certificate %d: %v", ErrBadChain, i, err)
		}
		if i == 0 {
			out.GrantorKeyID = verifier.KeyID()
		}
		if i > 0 && !c.SignedByProxyKey {
			out.Trail = append(out.Trail, c.Grantor)
		}
		accumulated = accumulated.Merge(c.Restrictions)
		if c.Expires.Before(out.Expires) {
			out.Expires = c.Expires
		}
	}
	out.Restrictions = accumulated
	out.Bearer = !accumulated.HasGrantee(env.Server)
	final := certs[len(certs)-1]
	fv, err := env.bindingVerifier(final)
	if err != nil {
		return nil, fmt.Errorf("final binding: %w", err)
	}
	out.finalVerifier = fv
	if cacheKey != "" {
		env.Cache.put(cacheKey, out, now)
	}
	return out, nil
}

func (env *VerifyEnv) checkValidity(c *Certificate, now time.Time) error {
	if c.IssuedAt.After(now.Add(env.MaxSkew)) {
		return fmt.Errorf("%w: issued %v, now %v", ErrNotYetValid, c.IssuedAt, now)
	}
	if !now.Before(c.Expires) {
		return fmt.Errorf("%w: expired %v, now %v", ErrExpired, c.Expires, now)
	}
	return nil
}

// linkVerifier determines which key must have signed certificate i.
func (env *VerifyEnv) linkVerifier(i int, c *Certificate, certs []*Certificate, accumulated restrict.Set) (kcrypto.Verifier, error) {
	if i == 0 {
		if c.SignedByProxyKey {
			return nil, fmt.Errorf("%w: first certificate signed by a proxy key", ErrBadChain)
		}
		v, err := env.ResolveIdentity(c.Grantor)
		if err != nil {
			return nil, fmt.Errorf("%w: resolve grantor %s: %v", ErrBadChain, c.Grantor, err)
		}
		return v, nil
	}
	if c.SignedByProxyKey {
		// Bearer cascade: signed with the previous certificate's proxy
		// key (§3.4).
		return env.bindingVerifier(certs[i-1])
	}
	// Delegate cascade: signed directly by an intermediate that the
	// chain so far names as a grantee.
	named := false
	for _, g := range accumulated.Grantees() {
		if g == c.Grantor {
			named = true
			break
		}
	}
	if !named {
		return nil, fmt.Errorf("%w: certificate %d signer %s", ErrNotDelegate, i, c.Grantor)
	}
	v, err := env.ResolveIdentity(c.Grantor)
	if err != nil {
		return nil, fmt.Errorf("%w: resolve intermediate %s: %v", ErrBadChain, c.Grantor, err)
	}
	return v, nil
}

// bindingVerifier recovers the verifier for a certificate's proxy key.
func (env *VerifyEnv) bindingVerifier(c *Certificate) (kcrypto.Verifier, error) {
	switch c.Binding.Scheme {
	case kcrypto.SchemeEd25519:
		return kcrypto.PublicKeyFromBytes(c.Binding.Public)
	case kcrypto.SchemeHMAC:
		if env.UnsealProxyKey == nil {
			return nil, fmt.Errorf("%w: no unsealer for conventional proxy key", ErrBadChain)
		}
		k, err := env.UnsealProxyKey(c)
		if err != nil {
			return nil, fmt.Errorf("%w: unseal proxy key: %v", ErrBadChain, err)
		}
		return k, nil
	default:
		return nil, fmt.Errorf("%w: binding scheme %s", ErrBadChain, c.Binding.Scheme)
	}
}

// NewChallenge generates a server challenge for proof of possession.
func NewChallenge() ([]byte, error) { return kcrypto.Nonce(32) }

// popBytes is the canonical message signed to prove possession: it binds
// the challenge, the responding server, and the final certificate so a
// proof cannot be replayed against another chain or server.
func popBytes(challenge []byte, server principal.ID, final *Certificate) []byte {
	e := wire.NewEncoder(128)
	e.String("proxykit-pop-v1")
	e.Bytes32(challenge)
	server.Encode(e)
	e.Bytes32(kcrypto.Digest(final.Marshal()))
	return e.Bytes()
}

// Prove signs a server challenge with the proxy key, demonstrating
// proper possession ("proving possession of the proxy key thus
// preventing an attacker from using a proxy obtained by eavesdropping on
// the network", §7.1).
func (p *Proxy) Prove(challenge []byte, server principal.ID) ([]byte, error) {
	if p.Key == nil {
		return nil, ErrNoKey
	}
	final := p.Final()
	if final == nil {
		return nil, fmt.Errorf("%w: empty chain", ErrBadChain)
	}
	return p.Key.Sign(popBytes(challenge, server, final))
}

// VerifyPossession checks a proof produced by Prove against the final
// certificate's binding.
func (env *VerifyEnv) VerifyPossession(v *Verified, final *Certificate, challenge, proof []byte) error {
	if v.finalVerifier == nil {
		return fmt.Errorf("%w: verified chain lacks binding verifier", ErrBadChain)
	}
	if err := v.finalVerifier.Verify(popBytes(challenge, env.Server, final), proof); err != nil {
		return fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	return nil
}

// Presentation is what a grantee sends to an end-server: the certificate
// chain, and — for bearer use — a proof of possession over the server's
// challenge. Delegate presenters instead authenticate their own identity
// through the authentication substrate; the end-server places those
// identities in the restriction Context.
type Presentation struct {
	// Certs is the certificate chain.
	Certs []*Certificate
	// Challenge is the server-issued nonce the proof covers.
	Challenge []byte
	// Proof is the signature over the challenge with the proxy key; nil
	// for delegate presentation.
	Proof []byte
}

// Present prepares a bearer presentation for a server challenge.
func (p *Proxy) Present(challenge []byte, server principal.ID) (*Presentation, error) {
	proof, err := p.Prove(challenge, server)
	if err != nil {
		return nil, err
	}
	return &Presentation{Certs: p.Certs, Challenge: challenge, Proof: proof}, nil
}

// PresentDelegate prepares a delegate presentation: certificates only;
// the presenter authenticates separately under its own identity (§2).
func (p *Proxy) PresentDelegate() *Presentation {
	return &Presentation{Certs: p.Certs}
}

// VerifyPresentation validates a presentation end to end: chain
// verification, then — for bearer semantics — mandatory proof of
// possession. It returns the Verified summary for restriction
// evaluation.
func (env *VerifyEnv) VerifyPresentation(pr *Presentation, challenge []byte) (*Verified, error) {
	v, err := env.VerifyChain(pr.Certs)
	if err != nil {
		return nil, err
	}
	if pr.Proof == nil {
		if v.Bearer {
			return nil, ErrBearerNeedsKey
		}
		return v, nil
	}
	final := pr.Certs[len(pr.Certs)-1]
	if err := env.VerifyPossession(v, final, challenge, pr.Proof); err != nil {
		return nil, err
	}
	return v, nil
}

// Authorize evaluates the verified proxy's accumulated restrictions
// against a request context, filling in the chain-derived fields
// (expiry, grantor key) the restrictions need.
//
// Delegate-cascade intermediates count as authenticated: a grantee that
// signed a later link in the chain has cryptographically participated,
// which is the paper's rule that the intermediate "grants the
// subordinate a new proxy allowing the subordinate to act as the
// intermediate server for the purpose of executing the original proxy"
// (§3.4). Their identities are appended to the context's client
// identities so a Grantee restriction naming them is satisfied by the
// chain itself.
func (v *Verified) Authorize(ctx *restrict.Context) error {
	ctx.Expires = v.Expires
	ctx.GrantorKeyID = v.GrantorKeyID
	if len(v.Trail) > 0 {
		ids := make([]principal.ID, 0, len(ctx.ClientIdentities)+len(v.Trail))
		ids = append(ids, ctx.ClientIdentities...)
		ids = append(ids, v.Trail...)
		ctx.ClientIdentities = ids
	}
	return v.Restrictions.Check(ctx)
}

// Marshal encodes the presentation for transport.
func (pr *Presentation) Marshal() []byte {
	e := wire.NewEncoder(1024)
	e.Uint32(uint32(len(pr.Certs)))
	for _, c := range pr.Certs {
		c.encode(e)
	}
	e.Bytes32(pr.Challenge)
	e.Bytes32(pr.Proof)
	return e.Bytes()
}

// UnmarshalPresentation parses a presentation.
func UnmarshalPresentation(b []byte) (*Presentation, error) {
	d := wire.NewDecoder(b)
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if n == 0 || n > maxChainLen {
		return nil, fmt.Errorf("%w: chain length %d", ErrMalformed, n)
	}
	pr := &Presentation{Certs: make([]*Certificate, 0, n)}
	for i := uint32(0); i < n; i++ {
		c, err := decodeCertificate(d)
		if err != nil {
			return nil, err
		}
		pr.Certs = append(pr.Certs, c)
	}
	pr.Challenge = d.Bytes32()
	pr.Proof = d.Bytes32()
	if len(pr.Proof) == 0 {
		pr.Proof = nil
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return pr, nil
}
