// Package proxy implements the paper's primary contribution: restricted
// proxies (§2), their cascading (§3.4), and their presentation and
// verification at an end-server.
//
// A restricted proxy has two parts (Fig. 1):
//
//	Certificate:  [restrictions, K_proxy]_grantor
//	Proxy-key:    K_proxy
//
// The certificate is signed by the grantor — by the grantor's identity
// key for the first certificate in a chain, by the previous certificate's
// proxy key for a bearer cascade (Fig. 4), or by an intermediate server's
// identity for a delegate cascade. The proxy key is held secretly by the
// grantee and used to prove proper possession via a challenge-response
// exchange; it is never sent across the network in the clear.
//
// The package is authentication-substrate independent: both the
// public-key mode of §6.1 (Ed25519 certificates, embedded public proxy
// keys) and the conventional mode of §6.2 (HMAC signatures, proxy keys
// sealed toward the end-server) are supported through the same types.
package proxy

import (
	"errors"
	"fmt"
	"time"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
	"proxykit/internal/wire"
)

// Errors reported by certificate handling and chain verification.
var (
	ErrNoKey           = errors.New("proxy: proxy key not available")
	ErrExpired         = errors.New("proxy: certificate expired")
	ErrNotYetValid     = errors.New("proxy: certificate not yet valid")
	ErrBadChain        = errors.New("proxy: invalid certificate chain")
	ErrBadProof        = errors.New("proxy: proof of possession failed")
	ErrBearerNeedsKey  = errors.New("proxy: bearer presentation requires proof of possession")
	ErrNotDelegate     = errors.New("proxy: intermediate not named as grantee")
	ErrUnsupportedMode = errors.New("proxy: unsupported mode")
	ErrMalformed       = errors.New("proxy: malformed certificate")
)

// Mode selects the cryptographic integration of §6.
type Mode uint8

// Supported modes.
const (
	// ModeConventional uses shared-key integrity (HMAC) signatures, with
	// proxy keys sealed toward the end-server (§6.2).
	ModeConventional Mode = iota + 1
	// ModePublicKey uses Ed25519 signatures with the public half of the
	// proxy key embedded in the certificate (§6.1, Fig. 6).
	ModePublicKey
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeConventional:
		return "conventional"
	case ModePublicKey:
		return "public-key"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// VerifierBinding carries the material an end-server uses to check proof
// of possession of the certificate's proxy key.
type VerifierBinding struct {
	// Scheme is the proxy key's algorithm family.
	Scheme kcrypto.Scheme
	// KeyID identifies the proxy key.
	KeyID string
	// Public holds the raw Ed25519 public key when Scheme is
	// SchemeEd25519.
	Public []byte
	// Sealed holds the symmetric proxy key sealed under a key shared
	// between the grantor and the end-server when Scheme is SchemeHMAC
	// ("this key may require additional protection from disclosure",
	// §2 fn. 2).
	Sealed []byte
	// EphPub is set in hybrid mode (§6.1): the grantor's ephemeral
	// X25519 public half; Sealed is then encrypted under the shared key
	// derived with the end-server's long-term ECDH key ("the proxy key
	// must be additionally encrypted in the public key of the
	// end-server").
	EphPub []byte
}

// Certificate is one signed link in a proxy chain.
type Certificate struct {
	// Grantor is the principal whose signature covers the certificate.
	// For the first certificate it is the original grantor; for a
	// delegate cascade it is the intermediate server. For a bearer
	// cascade (signed by the previous proxy key) it records the previous
	// key's ID for diagnostics and SignedByProxyKey is true.
	Grantor principal.ID
	// SignedByProxyKey marks a bearer-cascade link: the signature was
	// produced with the previous certificate's proxy key rather than an
	// identity key.
	SignedByProxyKey bool
	// Restrictions added by this link. Restrictions accumulate along the
	// chain and are never removed (§6.2).
	Restrictions restrict.Set
	// IssuedAt and Expires bound the certificate's validity. "As
	// implemented on most authentication systems ... the resulting
	// capability would have an expiration time. This is a feature."
	// (§3.1).
	IssuedAt time.Time
	Expires  time.Time
	// Binding establishes the new proxy key for this link.
	Binding VerifierBinding
	// Nonce makes each certificate unique.
	Nonce []byte
	// SigScheme and Signature authenticate everything above.
	SigScheme kcrypto.Scheme
	Signature []byte
}

// signedBytes returns the canonical encoding covered by the signature.
func (c *Certificate) signedBytes() []byte {
	e := wire.NewEncoder(256)
	e.String("proxykit-cert-v1")
	c.Grantor.Encode(e)
	e.Bool(c.SignedByProxyKey)
	c.Restrictions.Encode(e)
	e.Time(c.IssuedAt)
	e.Time(c.Expires)
	e.Uint8(uint8(c.Binding.Scheme))
	e.String(c.Binding.KeyID)
	e.Bytes32(c.Binding.Public)
	e.Bytes32(c.Binding.Sealed)
	e.Bytes32(c.Binding.EphPub)
	e.Bytes32(c.Nonce)
	return e.Bytes()
}

// Marshal returns the certificate's complete wire encoding.
func (c *Certificate) Marshal() []byte {
	e := wire.NewEncoder(512)
	c.encode(e)
	return e.Bytes()
}

func (c *Certificate) encode(e *wire.Encoder) {
	e.Bytes32(c.signedBytes())
	e.Uint8(uint8(c.SigScheme))
	e.Bytes32(c.Signature)
}

// UnmarshalCertificate parses a certificate from its wire encoding.
func UnmarshalCertificate(b []byte) (*Certificate, error) {
	d := wire.NewDecoder(b)
	c, err := decodeCertificate(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return c, nil
}

func decodeCertificate(d *wire.Decoder) (*Certificate, error) {
	signed := d.Bytes32()
	scheme := kcrypto.Scheme(d.Uint8())
	sig := d.Bytes32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}

	sd := wire.NewDecoder(signed)
	if magic := sd.String(); magic != "proxykit-cert-v1" {
		return nil, fmt.Errorf("%w: bad magic %q", ErrMalformed, magic)
	}
	c := &Certificate{SigScheme: scheme, Signature: sig}
	c.Grantor = principal.DecodeID(sd)
	c.SignedByProxyKey = sd.Bool()
	rs, err := restrict.Decode(sd)
	if err != nil {
		return nil, fmt.Errorf("%w: restrictions: %v", ErrMalformed, err)
	}
	c.Restrictions = rs
	c.IssuedAt = sd.Time()
	c.Expires = sd.Time()
	c.Binding.Scheme = kcrypto.Scheme(sd.Uint8())
	c.Binding.KeyID = sd.String()
	c.Binding.Public = sd.Bytes32()
	c.Binding.Sealed = sd.Bytes32()
	c.Binding.EphPub = sd.Bytes32()
	c.Nonce = sd.Bytes32()
	if err := sd.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return c, nil
}

// Proxy couples a certificate chain with the secret proxy key for its
// final certificate. Key is nil when the holder received only the
// certificates (e.g. a delegate presenting under its own identity, or a
// verifier inspecting a presentation).
type Proxy struct {
	// Certs is the chain, original grantor's certificate first (Fig. 4).
	Certs []*Certificate
	// Key is the final proxy key: *kcrypto.SymmetricKey in conventional
	// mode, *kcrypto.KeyPair in public-key mode.
	Key kcrypto.Signer
}

// Final returns the last certificate in the chain.
func (p *Proxy) Final() *Certificate {
	if len(p.Certs) == 0 {
		return nil
	}
	return p.Certs[len(p.Certs)-1]
}

// Grantor returns the original grantor of the chain — the principal
// whose rights the proxy conveys.
func (p *Proxy) Grantor() principal.ID {
	if len(p.Certs) == 0 {
		return principal.ID{}
	}
	return p.Certs[0].Grantor
}

// Restrictions returns the accumulated restriction set of the whole
// chain: the union of every link's restrictions (§6.2: additive only).
func (p *Proxy) Restrictions() restrict.Set {
	var out restrict.Set
	for _, c := range p.Certs {
		out = out.Merge(c.Restrictions)
	}
	return out
}

// Expires returns the earliest expiry in the chain; the proxy is unusable
// past it.
func (p *Proxy) Expires() time.Time {
	var min time.Time
	for i, c := range p.Certs {
		if i == 0 || c.Expires.Before(min) {
			min = c.Expires
		}
	}
	return min
}

// MarshalCerts encodes the certificate chain for transfer. The proxy key
// is deliberately excluded: transferring it requires protection from
// disclosure and is the caller's responsibility (§2).
func (p *Proxy) MarshalCerts() []byte {
	e := wire.NewEncoder(1024)
	e.Uint32(uint32(len(p.Certs)))
	for _, c := range p.Certs {
		c.encode(e)
	}
	return e.Bytes()
}

// UnmarshalCerts parses a chain encoded by MarshalCerts.
func UnmarshalCerts(b []byte) ([]*Certificate, error) {
	d := wire.NewDecoder(b)
	n := d.Uint32()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if n == 0 || n > maxChainLen {
		return nil, fmt.Errorf("%w: chain length %d", ErrMalformed, n)
	}
	out := make([]*Certificate, 0, n)
	for i := uint32(0); i < n; i++ {
		c, err := decodeCertificate(d)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return out, nil
}

// maxChainLen bounds cascade depth; it comfortably exceeds any pipeline
// in the paper while preventing resource-exhaustion chains.
const maxChainLen = 64
