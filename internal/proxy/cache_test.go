package proxy

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
)

// countingEnv wraps a world's env with a resolver call counter and a
// fresh cache, so tests can observe whether a verification did real
// signature work (cold verifies resolve the grantor; hits resolve
// nothing).
func countingEnv(w *testWorld, cacheSize int) (*VerifyEnv, *atomic.Int64) {
	var resolves atomic.Int64
	inner := w.env.ResolveIdentity
	env := *w.env
	env.ResolveIdentity = func(id principal.ID) (kcrypto.Verifier, error) {
		resolves.Add(1)
		return inner(id)
	}
	env.Cache = NewChainCache(cacheSize)
	return &env, &resolves
}

func TestChainCacheHitSkipsReVerification(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, readMotd())
	env, resolves := countingEnv(w, 0)

	v1, err := env.VerifyChain(p.Certs)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Cached {
		t.Fatal("first verification reported Cached")
	}
	cold := resolves.Load()
	if cold == 0 {
		t.Fatal("cold verification resolved no identities")
	}

	v2, err := env.VerifyChain(p.Certs)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Fatal("second verification of identical chain not served from cache")
	}
	if got := resolves.Load(); got != cold {
		t.Fatalf("warm verification resolved identities (%d -> %d)", cold, got)
	}
	// The cached outcome must be indistinguishable from the cold one.
	if v2.Grantor != v1.Grantor || v2.Bearer != v1.Bearer ||
		v2.ChainLen != v1.ChainLen || !v2.Expires.Equal(v1.Expires) ||
		v2.GrantorKeyID != v1.GrantorKeyID {
		t.Fatalf("cached verified = %+v, cold = %+v", v2, v1)
	}
	if env.Cache.Len() != 1 {
		t.Fatalf("cache len = %d", env.Cache.Len())
	}
}

// TestChainCachePossessionStillChecked: a warm hit must not weaken
// proof-of-possession — presenting a cached bearer chain with a proof
// over the wrong challenge still fails.
func TestChainCachePossessionStillChecked(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, readMotd())
	env, _ := countingEnv(w, 0)

	ch, _ := NewChallenge()
	pr, err := p.Present(ch, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.VerifyPresentation(pr, ch); err != nil {
		t.Fatal(err)
	}
	// Warm: same chain, stale proof against a fresh challenge.
	ch2, _ := NewChallenge()
	if _, err := env.VerifyPresentation(pr, ch2); !errors.Is(err, ErrBadProof) {
		t.Fatalf("stale proof on warm chain: err = %v, want ErrBadProof", err)
	}
	// A correct proof over the new challenge passes, still cached.
	pr2, err := p.Present(ch2, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	v, err := env.VerifyPresentation(pr2, ch2)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Cached {
		t.Fatal("repeat presentation not served from cache")
	}
}

func TestChainCacheExpiredRejectedOnWarmHit(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, readMotd()) // 1h lifetime
	env, _ := countingEnv(w, 0)

	if _, err := env.VerifyChain(p.Certs); err != nil {
		t.Fatal(err)
	}
	if env.Cache.Len() != 1 {
		t.Fatalf("cache len = %d", env.Cache.Len())
	}

	// Past expiry the warm entry must NOT shortcut the rejection:
	// revocation-by-expiry (§3.1) is checked per request.
	w.clk.Advance(2 * time.Hour)
	if _, err := env.VerifyChain(p.Certs); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired chain on warm cache: err = %v, want ErrExpired", err)
	}
	if env.Cache.Len() != 0 {
		t.Fatalf("expired entry not evicted; cache len = %d", env.Cache.Len())
	}
}

func TestChainCacheConventionalChainsBypass(t *testing.T) {
	w := newWorld(t)
	p := w.grantConv(alice, readMotd())
	env, resolves := countingEnv(w, 0)

	for i := 0; i < 2; i++ {
		v, err := env.VerifyChain(p.Certs)
		if err != nil {
			t.Fatal(err)
		}
		if v.Cached {
			t.Fatal("conventional (HMAC-bound) chain served from cache")
		}
	}
	if env.Cache.Len() != 0 {
		t.Fatalf("conventional chain stored; cache len = %d", env.Cache.Len())
	}
	if resolves.Load() < 2 {
		t.Fatal("conventional chain skipped re-verification")
	}
}

func TestChainCacheKeyIncludesServer(t *testing.T) {
	w := newWorld(t)
	// Grantee nested under a Limit scoped to fileSv: bearer semantics
	// differ between fileSv (grantee applies → not bearer) and mailSv
	// (no grantee → bearer), so a shared cache must not cross-serve.
	rs := restrict.Set{restrict.Limit{
		Servers:      []principal.ID{fileSv},
		Restrictions: restrict.Set{restrict.Grantee{Principals: []principal.ID{bob}}},
	}}
	p := w.grantPK(alice, rs)

	shared := NewChainCache(0)
	envFile := *w.env
	envFile.Cache = shared
	envMail := *w.env
	envMail.Server = mailSv
	envMail.Cache = shared

	vf, err := envFile.VerifyChain(p.Certs)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := envMail.VerifyChain(p.Certs)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Cached {
		t.Fatal("mailSv served fileSv's cache entry — server identity missing from key")
	}
	if vf.Bearer == vm.Bearer {
		t.Fatalf("bearer(fileSv)=%v bearer(mailSv)=%v, want different", vf.Bearer, vm.Bearer)
	}
	if shared.Len() != 2 {
		t.Fatalf("shared cache len = %d, want 2", shared.Len())
	}
}

func TestChainCacheCapacityLRU(t *testing.T) {
	w := newWorld(t)
	env, _ := countingEnv(w, 2)

	chains := []*Proxy{
		w.grantPK(alice, readMotd()),
		w.grantPK(bob, readMotd()),
		w.grantPK(spool, readMotd()),
	}
	for _, p := range chains[:2] {
		if _, err := env.VerifyChain(p.Certs); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the first so the second becomes LRU.
	if v, err := env.VerifyChain(chains[0].Certs); err != nil || !v.Cached {
		t.Fatalf("touch: %v cached=%v", err, v != nil && v.Cached)
	}
	if _, err := env.VerifyChain(chains[2].Certs); err != nil {
		t.Fatal(err)
	}
	if env.Cache.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", env.Cache.Len())
	}
	// chains[0] survived (recently used), chains[1] was evicted.
	if v, err := env.VerifyChain(chains[0].Certs); err != nil || !v.Cached {
		t.Fatalf("recently-used entry evicted: %v", err)
	}
	if v, err := env.VerifyChain(chains[1].Certs); err != nil || v.Cached {
		t.Fatalf("LRU entry not evicted (err=%v)", err)
	}
}

func TestChainCacheInvalidation(t *testing.T) {
	w := newWorld(t)
	env, _ := countingEnv(w, 0)

	pa := w.grantPK(alice, readMotd())
	pb := w.grantPK(bob, readMotd())
	for _, p := range []*Proxy{pa, pb} {
		if _, err := env.VerifyChain(p.Certs); err != nil {
			t.Fatal(err)
		}
	}
	if n := env.Cache.InvalidateGrantor(alice); n != 1 {
		t.Fatalf("InvalidateGrantor(alice) = %d, want 1", n)
	}
	if v, err := env.VerifyChain(pa.Certs); err != nil || v.Cached {
		t.Fatalf("invalidated chain still cached (err=%v)", err)
	}
	if v, err := env.VerifyChain(pb.Certs); err != nil || !v.Cached {
		t.Fatalf("unrelated chain lost by invalidation (err=%v)", err)
	}

	env.Cache.Purge()
	if env.Cache.Len() != 0 {
		t.Fatalf("cache len after Purge = %d", env.Cache.Len())
	}
}

func TestChainCacheSweepExpired(t *testing.T) {
	w := newWorld(t)
	env, _ := countingEnv(w, 0)
	p := w.grantPK(alice, readMotd())
	if _, err := env.VerifyChain(p.Certs); err != nil {
		t.Fatal(err)
	}
	if n := env.Cache.SweepExpired(w.clk.Now()); n != 0 {
		t.Fatalf("sweep evicted %d live entries", n)
	}
	if n := env.Cache.SweepExpired(w.clk.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("sweep evicted %d, want 1", n)
	}
	if env.Cache.Len() != 0 {
		t.Fatalf("cache len = %d", env.Cache.Len())
	}
}
