package proxy

import (
	"errors"
	"testing"
	"time"

	"proxykit/internal/kcrypto"
	"proxykit/internal/restrict"
)

// TestHybridModeGrantPresentVerify exercises §6.1's hybrid case: a
// conventional proxy key sealed to the end-server's X25519 public key,
// needing no pre-established shared key.
func TestHybridModeGrantPresentVerify(t *testing.T) {
	w := newWorld(t)
	serverECDH, err := kcrypto.NewECDHKey()
	if err != nil {
		t.Fatal(err)
	}
	p, err := Grant(GrantParams{
		Grantor:       alice,
		GrantorSigner: w.identities[alice],
		Restrictions:  readMotd(),
		Lifetime:      time.Hour,
		Mode:          ModeConventional,
		EndServerECDH: serverECDH.PublicBytes(),
		Clock:         w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := *w.env
	env.UnsealProxyKey = UnsealWithECDH(serverECDH)

	ch, _ := NewChallenge()
	pr, err := p.Present(ch, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	v, err := env.VerifyPresentation(pr, ch)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &restrict.Context{Server: fileSv, Object: "/etc/motd", Operation: "read"}
	if err := v.Authorize(ctx); err != nil {
		t.Fatal(err)
	}

	// A different ECDH key cannot unseal the binding.
	otherECDH, _ := kcrypto.NewECDHKey()
	env2 := *w.env
	env2.UnsealProxyKey = UnsealWithECDH(otherECDH)
	if _, err := env2.VerifyPresentation(pr, ch); !errors.Is(err, ErrBadChain) {
		t.Fatalf("wrong key err = %v", err)
	}

	// A shared-key unsealer fails on a hybrid binding too.
	sym, _ := kcrypto.NewSymmetricKey()
	env3 := *w.env
	env3.UnsealProxyKey = UnsealWith(sym)
	if _, err := env3.VerifyPresentation(pr, ch); !errors.Is(err, ErrBadChain) {
		t.Fatalf("symmetric unsealer err = %v", err)
	}
}

func TestHybridBindingMarshalRoundTrip(t *testing.T) {
	w := newWorld(t)
	serverECDH, _ := kcrypto.NewECDHKey()
	p, err := Grant(GrantParams{
		Grantor:       alice,
		GrantorSigner: w.identities[alice],
		Lifetime:      time.Hour,
		Mode:          ModeConventional,
		EndServerECDH: serverECDH.PublicBytes(),
		Clock:         w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCertificate(p.Certs[0].Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Binding.EphPub) == 0 {
		t.Fatal("ephemeral public key lost in round trip")
	}
	env := *w.env
	env.UnsealProxyKey = UnsealWithECDH(serverECDH)
	if _, err := env.VerifyChain([]*Certificate{got}); err != nil {
		t.Fatal(err)
	}
}

func TestConventionalModeStillRequiresSomeKey(t *testing.T) {
	w := newWorld(t)
	if _, err := Grant(GrantParams{
		Grantor:       alice,
		GrantorSigner: w.identities[alice],
		Lifetime:      time.Hour,
		Mode:          ModeConventional,
	}); err == nil {
		t.Fatal("conventional mode without any end-server key accepted")
	}
	// UnsealWithECDH fails cleanly on a non-hybrid binding.
	p := w.grantConv(alice, nil)
	e, _ := kcrypto.NewECDHKey()
	if _, err := UnsealWithECDH(e)(p.Certs[0]); err == nil {
		t.Fatal("non-hybrid binding unsealed via ECDH")
	}
}

// TestHybridCascade seals a cascade link's key to the end-server's
// public key.
func TestHybridCascade(t *testing.T) {
	w := newWorld(t)
	serverECDH, _ := kcrypto.NewECDHKey()
	p := w.grantPK(alice, nil)
	p2, err := p.CascadeBearer(CascadeParams{
		Lifetime:      time.Hour,
		Mode:          ModeConventional,
		EndServerECDH: serverECDH.PublicBytes(),
		Clock:         w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	env := *w.env
	env.UnsealProxyKey = UnsealWithECDH(serverECDH)
	ch, _ := NewChallenge()
	pr, err := p2.Present(ch, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.VerifyPresentation(pr, ch); err != nil {
		t.Fatal(err)
	}
}
