package proxy

import (
	"container/list"
	"encoding/hex"
	"sync"
	"time"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/wire"
)

// ChainCache memoizes successful VerifyChain outcomes keyed by the
// digest of the presented certificate chain (and the verifying server's
// identity, which the Bearer determination depends on). The paper's
// §3.4 argument — proxy chains "can be verified without contacting the
// authentication server" because every link is offline-checkable — is
// exactly what makes verification cacheable: the signatures over a
// byte-identical chain cannot change, so re-verifying them per request
// buys nothing. What CAN change per request is everything the cache
// does not short-circuit: validity windows are rechecked on every hit
// (revocation-by-expiry, §3.1, is unchanged), and proof-of-possession,
// replay registration, and ACL evaluation all happen downstream of
// VerifyChain regardless.
//
// Only pure public-key chains are cached: a conventional (HMAC) link or
// binding is verified against mutable resolver/session-key state, so
// its outcome is not a function of the chain bytes alone.
//
// Entries are evicted when their chain expiry passes (expiry-aware
// sweep on access and via SweepExpired), by LRU order at capacity, and
// through the invalidation hooks (InvalidateGrantor, Purge). A
// ChainCache is safe for concurrent use and may be shared by several
// VerifyEnvs.
type ChainCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	ll      *list.List // front = most recently used
	cap     int
}

// DefaultChainCacheSize bounds a ChainCache when no capacity is given.
const DefaultChainCacheSize = 1024

type cacheEntry struct {
	key     string
	v       Verified // value copy; shared read-only innards
	grantor principal.ID
	expires time.Time
}

// NewChainCache returns a cache holding at most capacity verified
// chains; capacity <= 0 selects DefaultChainCacheSize.
func NewChainCache(capacity int) *ChainCache {
	if capacity <= 0 {
		capacity = DefaultChainCacheSize
	}
	return &ChainCache{
		entries: make(map[string]*list.Element),
		ll:      list.New(),
		cap:     capacity,
	}
}

// chainCacheable reports whether a chain's verification outcome is a
// pure function of its bytes: every signature and every binding must be
// public-key. HMAC links depend on session keys and unsealers outside
// the chain.
func chainCacheable(certs []*Certificate) bool {
	for _, c := range certs {
		if c.SigScheme != kcrypto.SchemeEd25519 || c.Binding.Scheme != kcrypto.SchemeEd25519 {
			return false
		}
	}
	return true
}

// chainCacheKey digests the verifying server's identity and the full
// marshaled chain. Two servers sharing one cache cannot collide (Bearer
// semantics differ per server), and any altered byte in any certificate
// produces a different key.
func chainCacheKey(server principal.ID, certs []*Certificate) string {
	e := wire.NewEncoder(256 * len(certs))
	e.String("proxykit-chain-cache-v1")
	server.Encode(e)
	e.Uint32(uint32(len(certs)))
	for _, c := range certs {
		e.Bytes32(c.Marshal())
	}
	return hex.EncodeToString(kcrypto.Digest(e.Bytes()))
}

// get returns the cached verification outcome for key, refreshing its
// LRU position. An entry whose chain expiry has passed is evicted and
// reported as a miss (the caller's full verification then produces the
// precise per-certificate expiry error).
func (cc *ChainCache) get(key string, now time.Time) (Verified, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	el, ok := cc.entries[key]
	if !ok {
		mCacheMisses.Inc()
		return Verified{}, false
	}
	ent := el.Value.(*cacheEntry)
	if !now.Before(ent.expires) {
		cc.removeLocked(el, "expired")
		mCacheMisses.Inc()
		return Verified{}, false
	}
	cc.ll.MoveToFront(el)
	mCacheHits.Inc()
	return ent.v, true
}

// put stores a successful verification outcome, evicting the LRU entry
// at capacity. Already-expired outcomes are not stored.
func (cc *ChainCache) put(key string, v *Verified, now time.Time) {
	if !now.Before(v.Expires) {
		return
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el, ok := cc.entries[key]; ok {
		el.Value.(*cacheEntry).v = *v
		el.Value.(*cacheEntry).expires = v.Expires
		cc.ll.MoveToFront(el)
		return
	}
	for cc.ll.Len() >= cc.cap {
		cc.removeLocked(cc.ll.Back(), "capacity")
	}
	ent := &cacheEntry{key: key, v: *v, grantor: v.Grantor, expires: v.Expires}
	ent.v.Cached = true // stored form is what hits return
	cc.entries[key] = cc.ll.PushFront(ent)
	mCacheEntries.Set(int64(cc.ll.Len()))
}

// remove drops one entry (used when a hit's validity recheck fails).
func (cc *ChainCache) remove(key, reason string) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el, ok := cc.entries[key]; ok {
		cc.removeLocked(el, reason)
	}
}

func (cc *ChainCache) removeLocked(el *list.Element, reason string) {
	ent := el.Value.(*cacheEntry)
	cc.ll.Remove(el)
	delete(cc.entries, ent.key)
	mCacheEvictions.With(reason).Inc()
	mCacheEntries.Set(int64(cc.ll.Len()))
}

// Len reports the number of cached chains.
func (cc *ChainCache) Len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.ll.Len()
}

// SweepExpired evicts every entry whose chain expiry has passed;
// callers with a periodic maintenance loop use it to bound memory
// between natural accesses. It returns the number evicted.
func (cc *ChainCache) SweepExpired(now time.Time) int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	n := 0
	for el := cc.ll.Front(); el != nil; {
		next := el.Next()
		if !now.Before(el.Value.(*cacheEntry).expires) {
			cc.removeLocked(el, "expired")
			n++
		}
		el = next
	}
	return n
}

// InvalidateGrantor drops every cached chain rooted at the given
// grantor — the hook for key revocation or directory changes, where
// waiting out revocation-by-expiry is not acceptable. It returns the
// number evicted.
func (cc *ChainCache) InvalidateGrantor(id principal.ID) int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	n := 0
	for el := cc.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*cacheEntry).grantor == id {
			cc.removeLocked(el, "invalidated")
			n++
		}
		el = next
	}
	return n
}

// Purge drops every entry (e.g. after rotating the server's identity or
// swapping the identity resolver).
func (cc *ChainCache) Purge() {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for el := cc.ll.Front(); el != nil; {
		next := el.Next()
		cc.removeLocked(el, "invalidated")
		el = next
	}
}
