package proxy

import (
	"testing"
	"time"

	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
)

// FuzzUnmarshalCertificate feeds arbitrary bytes to the certificate
// decoder: it must never panic, and anything it accepts must re-encode
// and decode again.
func FuzzUnmarshalCertificate(f *testing.F) {
	kp, err := kcrypto.NewKeyPair()
	if err != nil {
		f.Fatal(err)
	}
	p, err := Grant(GrantParams{
		Grantor:       principal.New("alice", "R"),
		GrantorSigner: kp,
		Restrictions: restrict.Set{
			restrict.Quota{Currency: "c", Limit: 5},
			restrict.Grantee{Principals: []principal.ID{principal.New("bob", "R")}},
		},
		Lifetime: time.Hour,
		Mode:     ModePublicKey,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(p.Certs[0].Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCertificate(data)
		if err != nil {
			return
		}
		again, err := UnmarshalCertificate(c.Marshal())
		if err != nil {
			t.Fatalf("accepted certificate failed round trip: %v", err)
		}
		if again.Grantor != c.Grantor {
			t.Fatal("round trip changed grantor")
		}
	})
}

// FuzzUnmarshalPresentation covers the presentation decoder.
func FuzzUnmarshalPresentation(f *testing.F) {
	kp, err := kcrypto.NewKeyPair()
	if err != nil {
		f.Fatal(err)
	}
	p, err := Grant(GrantParams{
		Grantor:       principal.New("alice", "R"),
		GrantorSigner: kp,
		Lifetime:      time.Hour,
		Mode:          ModePublicKey,
	})
	if err != nil {
		f.Fatal(err)
	}
	ch, _ := NewChallenge()
	pr, err := p.Present(ch, principal.New("sv", "R"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pr.Marshal())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalPresentation(data)
		if err != nil {
			return
		}
		if _, err := UnmarshalPresentation(got.Marshal()); err != nil {
			t.Fatalf("accepted presentation failed round trip: %v", err)
		}
	})
}
