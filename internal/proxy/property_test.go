package proxy

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"proxykit/internal/principal"
	"proxykit/internal/restrict"
)

// randomRestrictions builds a random restriction set from a seeded RNG.
func randomRestrictions(rng *rand.Rand) restrict.Set {
	var rs restrict.Set
	n := rng.Intn(4)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			rs = append(rs, restrict.Quota{
				Currency: fmt.Sprintf("c%d", rng.Intn(3)),
				Limit:    int64(rng.Intn(1000)),
			})
		case 1:
			rs = append(rs, restrict.Authorized{Entries: []restrict.AuthorizedEntry{
				{Object: fmt.Sprintf("/o%d", rng.Intn(5)), Ops: []string{"read", "write"}[0 : 1+rng.Intn(1)]},
			}})
		case 2:
			rs = append(rs, restrict.IssuedFor{Servers: []principal.ID{
				principal.New(fmt.Sprintf("sv%d", rng.Intn(3)), "ISI.EDU"),
			}})
		case 3:
			rs = append(rs, restrict.Grantee{Principals: []principal.ID{
				principal.New(fmt.Sprintf("u%d", rng.Intn(3)), "ISI.EDU"),
			}})
		}
	}
	return rs
}

// randomContext builds a random evaluation context.
func randomContext(rng *rand.Rand, now time.Time) *restrict.Context {
	return &restrict.Context{
		Server:    principal.New(fmt.Sprintf("sv%d", rng.Intn(3)), "ISI.EDU"),
		Object:    fmt.Sprintf("/o%d", rng.Intn(5)),
		Operation: []string{"read", "write"}[rng.Intn(2)],
		ClientIdentities: []principal.ID{
			principal.New(fmt.Sprintf("u%d", rng.Intn(3)), "ISI.EDU"),
		},
		Amounts: map[string]int64{
			fmt.Sprintf("c%d", rng.Intn(3)): int64(rng.Intn(1200)),
		},
		Now: now,
	}
}

// TestPropertyCascadeMonotonic checks the paper's central invariant
// (§6.2): "restrictions may be added, but not removed" — for random
// chains and random requests, anything the base chain denies remains
// denied after any cascade.
func TestPropertyCascadeMonotonic(t *testing.T) {
	w := newWorld(t)
	rng := rand.New(rand.NewSource(42))
	clk := w.clk

	for trial := 0; trial < 200; trial++ {
		base := w.grantPK(alice, randomRestrictions(rng))
		extended, err := base.CascadeBearer(CascadeParams{
			Added:    randomRestrictions(rng),
			Lifetime: time.Hour,
			Mode:     ModePublicKey,
			Clock:    clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		vBase, err := w.env.VerifyChain(base.Certs)
		if err != nil {
			t.Fatal(err)
		}
		vExt, err := w.env.VerifyChain(extended.Certs)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 20; probe++ {
			ctx1 := randomContext(rng, clk.Now())
			ctx2 := *ctx1 // same request against both chains
			baseErr := vBase.Authorize(ctx1)
			extErr := vExt.Authorize(&ctx2)
			if baseErr != nil && extErr == nil {
				t.Fatalf("trial %d probe %d: base denied (%v) but cascade allowed\nbase: %s\next: %s",
					trial, probe, baseErr, vBase.Restrictions, vExt.Restrictions)
			}
		}
	}
}

// TestPropertyChainExpiryMonotonic checks that cascading never extends
// a chain's effective lifetime.
func TestPropertyChainExpiryMonotonic(t *testing.T) {
	w := newWorld(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		p, err := Grant(GrantParams{
			Grantor:       alice,
			GrantorSigner: w.identities[alice],
			Lifetime:      time.Duration(1+rng.Intn(100)) * time.Minute,
			Mode:          ModePublicKey,
			Clock:         w.clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		expiry := p.Expires()
		for hop := 0; hop < 3; hop++ {
			p, err = p.CascadeBearer(CascadeParams{
				Lifetime: time.Duration(1+rng.Intn(100)) * time.Minute,
				Mode:     ModePublicKey,
				Clock:    w.clk,
			})
			if err != nil {
				t.Fatal(err)
			}
			if p.Expires().After(expiry) {
				t.Fatalf("trial %d hop %d: cascade extended expiry %v -> %v",
					trial, hop, expiry, p.Expires())
			}
			expiry = p.Expires()
		}
	}
}

// TestPropertyVerifiedMatchesLocalView checks that the verifier's
// accumulated restriction view matches the holder's local view for
// random chains.
func TestPropertyVerifiedMatchesLocalView(t *testing.T) {
	w := newWorld(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		p := w.grantPK(alice, randomRestrictions(rng))
		hops := rng.Intn(4)
		for i := 0; i < hops; i++ {
			var err error
			p, err = p.CascadeBearer(CascadeParams{
				Added:    randomRestrictions(rng),
				Lifetime: time.Hour,
				Mode:     ModePublicKey,
				Clock:    w.clk,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		v, err := w.env.VerifyChain(p.Certs)
		if err != nil {
			t.Fatal(err)
		}
		if v.Restrictions.String() != p.Restrictions().String() {
			t.Fatalf("trial %d: verifier view %s != holder view %s",
				trial, v.Restrictions, p.Restrictions())
		}
		if v.ChainLen != len(p.Certs) {
			t.Fatalf("chain len %d != %d", v.ChainLen, len(p.Certs))
		}
	}
}
