package proxy

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
)

var (
	alice  = principal.New("alice", "ISI.EDU")
	bob    = principal.New("bob", "ISI.EDU")
	spool  = principal.New("spooler", "ISI.EDU")
	fileSv = principal.New("file/sv1", "ISI.EDU")
	mailSv = principal.New("mail/sv1", "ISI.EDU")
)

// testWorld wires up identities, an end-server key, and a verify
// environment for one end-server.
type testWorld struct {
	t          *testing.T
	clk        *clock.Fake
	identities map[principal.ID]*kcrypto.KeyPair
	serverKey  *kcrypto.SymmetricKey // shared grantor<->end-server key (conventional mode)
	env        *VerifyEnv
}

func newWorld(t *testing.T) *testWorld {
	t.Helper()
	w := &testWorld{
		t:          t,
		clk:        clock.NewFake(time.Unix(1_000_000, 0)),
		identities: make(map[principal.ID]*kcrypto.KeyPair),
	}
	var err error
	if w.serverKey, err = kcrypto.NewSymmetricKey(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []principal.ID{alice, bob, spool, fileSv, mailSv} {
		kp, err := kcrypto.NewKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		w.identities[id] = kp
	}
	w.env = &VerifyEnv{
		Server:  fileSv,
		Clock:   w.clk,
		MaxSkew: time.Minute,
		ResolveIdentity: func(id principal.ID) (kcrypto.Verifier, error) {
			kp, ok := w.identities[id]
			if !ok {
				return nil, errors.New("unknown principal")
			}
			return kp.Public(), nil
		},
		UnsealProxyKey: nil,
	}
	w.env.UnsealProxyKey = UnsealWith(w.serverKey)
	return w
}

func (w *testWorld) grantPK(grantor principal.ID, rs restrict.Set) *Proxy {
	w.t.Helper()
	p, err := Grant(GrantParams{
		Grantor:       grantor,
		GrantorSigner: w.identities[grantor],
		Restrictions:  rs,
		Lifetime:      time.Hour,
		Mode:          ModePublicKey,
		Clock:         w.clk,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return p
}

func (w *testWorld) grantConv(grantor principal.ID, rs restrict.Set) *Proxy {
	w.t.Helper()
	p, err := Grant(GrantParams{
		Grantor:       grantor,
		GrantorSigner: w.identities[grantor],
		Restrictions:  rs,
		Lifetime:      time.Hour,
		Mode:          ModeConventional,
		EndServerKey:  w.serverKey,
		Clock:         w.clk,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return p
}

func readMotd() restrict.Set {
	return restrict.Set{restrict.Authorized{Entries: []restrict.AuthorizedEntry{
		{Object: "/etc/motd", Ops: []string{"read"}},
	}}}
}

func TestGrantVerifyPublicKey(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, readMotd())

	v, err := w.env.VerifyChain(p.Certs)
	if err != nil {
		t.Fatal(err)
	}
	if v.Grantor != alice {
		t.Fatalf("grantor = %v", v.Grantor)
	}
	if !v.Bearer {
		t.Fatal("capability should be bearer")
	}
	if v.ChainLen != 1 {
		t.Fatalf("chain len = %d", v.ChainLen)
	}
}

func TestGrantVerifyConventional(t *testing.T) {
	w := newWorld(t)
	p := w.grantConv(alice, readMotd())
	v, err := w.env.VerifyChain(p.Certs)
	if err != nil {
		t.Fatal(err)
	}
	if v.Grantor != alice || !v.Bearer {
		t.Fatalf("v = %+v", v)
	}
	// The sealed binding must be unusable without the server key.
	otherKey, _ := kcrypto.NewSymmetricKey()
	env2 := *w.env
	env2.UnsealProxyKey = UnsealWith(otherKey)
	ch, _ := NewChallenge()
	pr, err := p.Present(ch, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env2.VerifyPresentation(pr, ch); err == nil {
		t.Fatal("presentation verified without the correct server key")
	}
}

func TestGrantValidation(t *testing.T) {
	w := newWorld(t)
	if _, err := Grant(GrantParams{Grantor: alice, Lifetime: time.Hour, Mode: ModePublicKey}); err == nil {
		t.Fatal("nil signer accepted")
	}
	if _, err := Grant(GrantParams{Grantor: alice, GrantorSigner: w.identities[alice], Mode: ModePublicKey}); err == nil {
		t.Fatal("zero lifetime accepted")
	}
	if _, err := Grant(GrantParams{Grantor: alice, GrantorSigner: w.identities[alice], Lifetime: time.Hour, Mode: ModeConventional}); err == nil {
		t.Fatal("conventional mode without end-server key accepted")
	}
	if _, err := Grant(GrantParams{Grantor: alice, GrantorSigner: w.identities[alice], Lifetime: time.Hour, Mode: Mode(9)}); !errors.Is(err, ErrUnsupportedMode) {
		t.Fatalf("err = %v", err)
	}
}

func TestBearerPresentation(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, readMotd())

	ch, err := NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := p.Present(ch, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.env.VerifyPresentation(pr, ch)
	if err != nil {
		t.Fatal(err)
	}

	ctx := &restrict.Context{Server: fileSv, Object: "/etc/motd", Operation: "read"}
	if err := v.Authorize(ctx); err != nil {
		t.Fatalf("authorize: %v", err)
	}
	ctx2 := &restrict.Context{Server: fileSv, Object: "/etc/passwd", Operation: "read"}
	if err := v.Authorize(ctx2); err == nil {
		t.Fatal("unauthorized object allowed")
	}
}

func TestBearerRequiresProof(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, readMotd())
	pr := &Presentation{Certs: p.Certs} // stolen certs, no key
	if _, err := w.env.VerifyPresentation(pr, nil); !errors.Is(err, ErrBearerNeedsKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestProofBoundToServerAndChallenge(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, readMotd())
	ch, _ := NewChallenge()
	pr, _ := p.Present(ch, fileSv)

	// Same proof replayed with a different challenge fails.
	ch2, _ := NewChallenge()
	if _, err := w.env.VerifyPresentation(pr, ch2); !errors.Is(err, ErrBadProof) {
		t.Fatalf("stale challenge: %v", err)
	}
	// Proof made for fileSv rejected by mailSv.
	env2 := *w.env
	env2.Server = mailSv
	if _, err := env2.VerifyPresentation(pr, ch); !errors.Is(err, ErrBadProof) {
		t.Fatalf("cross-server replay: %v", err)
	}
}

func TestDelegateProxyPresentation(t *testing.T) {
	w := newWorld(t)
	rs := readMotd().Merge(restrict.Set{restrict.Grantee{Principals: []principal.ID{bob}}})
	p := w.grantPK(alice, rs)

	// Bob presents the certificates and authenticates as himself.
	pr := p.PresentDelegate()
	v, err := w.env.VerifyPresentation(pr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Bearer {
		t.Fatal("delegate proxy reported bearer")
	}
	ctx := &restrict.Context{
		Server: fileSv, Object: "/etc/motd", Operation: "read",
		ClientIdentities: []principal.ID{bob},
	}
	if err := v.Authorize(ctx); err != nil {
		t.Fatal(err)
	}
	// Carol cannot use it even with the certificates.
	ctx.ClientIdentities = []principal.ID{principal.New("carol", "MIT.EDU")}
	if err := v.Authorize(ctx); err == nil {
		t.Fatal("non-grantee used delegate proxy")
	}
}

func TestCascadeBearerChain(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, restrict.Set{restrict.Quota{Currency: "pages", Limit: 100}})

	p2, err := p.CascadeBearer(CascadeParams{
		Added:    restrict.Set{restrict.Quota{Currency: "pages", Limit: 10}},
		Lifetime: time.Hour,
		Mode:     ModePublicKey,
		Clock:    w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := p2.CascadeBearer(CascadeParams{
		Added:    restrict.Set{restrict.IssuedFor{Servers: []principal.ID{fileSv}}},
		Lifetime: 30 * time.Minute,
		Mode:     ModePublicKey,
		Clock:    w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p3.Certs) != 3 {
		t.Fatalf("chain len = %d", len(p3.Certs))
	}

	ch, _ := NewChallenge()
	pr, err := p3.Present(ch, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.env.VerifyPresentation(pr, ch)
	if err != nil {
		t.Fatal(err)
	}
	if v.Grantor != alice {
		t.Fatalf("grantor = %v", v.Grantor)
	}
	// Accumulated quota is the minimum (10).
	if q := v.Restrictions.Quotas()["pages"]; q != 10 {
		t.Fatalf("quota = %d", q)
	}
	// Chain expiry is the minimum over links.
	want := w.clk.Now().Add(30 * time.Minute)
	if !v.Expires.Equal(want) {
		t.Fatalf("expires = %v, want %v", v.Expires, want)
	}
	// The intermediate's old proxy key cannot present the extended chain.
	if p3.Key.KeyID() == p.Key.KeyID() {
		t.Fatal("cascade did not rotate the proxy key")
	}
}

func TestCascadeBearerRequiresKey(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, nil)
	p.Key = nil
	if _, err := p.CascadeBearer(CascadeParams{Added: nil, Lifetime: time.Hour, Mode: ModePublicKey, Clock: w.clk}); !errors.Is(err, ErrNoKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestCascadeDelegate(t *testing.T) {
	w := newWorld(t)
	// Alice grants a delegate proxy to the spooler.
	p := w.grantPK(alice, restrict.Set{
		restrict.Grantee{Principals: []principal.ID{spool}},
		restrict.Authorized{Entries: []restrict.AuthorizedEntry{{Object: "/spool/job1", Ops: []string{"read"}}}},
	})
	// The spooler delegates onward to the file server (named grantee),
	// adding a restriction and leaving an audit trail.
	p2, err := p.CascadeDelegate(spool, w.identities[spool], CascadeParams{
		Added:    restrict.Set{restrict.Grantee{Principals: []principal.ID{bob}}},
		Lifetime: time.Hour,
		Mode:     ModePublicKey,
		Clock:    w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}

	pr := p2.PresentDelegate()
	v, err := w.env.VerifyPresentation(pr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Trail) != 1 || v.Trail[0] != spool {
		t.Fatalf("audit trail = %v", v.Trail)
	}
	ctx := &restrict.Context{
		Server: fileSv, Object: "/spool/job1", Operation: "read",
		ClientIdentities: []principal.ID{bob, spool},
	}
	if err := v.Authorize(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeDelegateRequiresNamedIntermediate(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, restrict.Set{restrict.Grantee{Principals: []principal.ID{bob}}})
	if _, err := p.CascadeDelegate(spool, w.identities[spool], CascadeParams{
		Lifetime: time.Hour, Mode: ModePublicKey, Clock: w.clk,
	}); !errors.Is(err, ErrNotDelegate) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsForgedDelegateLink(t *testing.T) {
	w := newWorld(t)
	// Spool is NOT a grantee; forge a delegate link anyway by signing
	// with spool's real identity and check the verifier rejects it.
	p := w.grantPK(alice, restrict.Set{restrict.Grantee{Principals: []principal.ID{bob}}})
	forged := &Certificate{
		Grantor:   spool,
		IssuedAt:  w.clk.Now(),
		Expires:   w.clk.Now().Add(time.Hour),
		SigScheme: kcrypto.SchemeEd25519,
	}
	kp, _ := kcrypto.NewKeyPair()
	forged.Binding = VerifierBinding{Scheme: kcrypto.SchemeEd25519, KeyID: kp.KeyID(), Public: kp.Public().Bytes()}
	forged.Nonce, _ = kcrypto.Nonce(16)
	forged.Signature, _ = w.identities[spool].Sign(forged.signedBytes())

	chain := append(append([]*Certificate{}, p.Certs...), forged)
	if _, err := w.env.VerifyChain(chain); !errors.Is(err, ErrNotDelegate) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsTamperedRestrictions(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, restrict.Set{restrict.Quota{Currency: "pages", Limit: 1}})

	// An attacker widens the quota in transit.
	raw := p.MarshalCerts()
	certs, err := UnmarshalCerts(raw)
	if err != nil {
		t.Fatal(err)
	}
	certs[0].Restrictions = restrict.Set{restrict.Quota{Currency: "pages", Limit: 1 << 30}}
	if _, err := w.env.VerifyChain(certs); !errors.Is(err, ErrBadChain) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsExpiredAndFuture(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, nil)

	w.clk.Advance(2 * time.Hour)
	if _, err := w.env.VerifyChain(p.Certs); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired: %v", err)
	}
	w.clk.Advance(-3 * time.Hour) // now before IssuedAt - skew
	if _, err := w.env.VerifyChain(p.Certs); !errors.Is(err, ErrNotYetValid) {
		t.Fatalf("future: %v", err)
	}
}

func TestVerifySkewTolerance(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, nil)
	w.clk.Advance(-30 * time.Second) // issued 30s in the future
	if _, err := w.env.VerifyChain(p.Certs); err != nil {
		t.Fatalf("within skew rejected: %v", err)
	}
}

func TestVerifyRejectsUnknownGrantor(t *testing.T) {
	w := newWorld(t)
	stranger := principal.New("stranger", "EVIL.ORG")
	kp, _ := kcrypto.NewKeyPair()
	p, err := Grant(GrantParams{
		Grantor: stranger, GrantorSigner: kp,
		Lifetime: time.Hour, Mode: ModePublicKey, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.env.VerifyChain(p.Certs); !errors.Is(err, ErrBadChain) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsReorderedChain(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, nil)
	p2, err := p.CascadeBearer(CascadeParams{Lifetime: time.Hour, Mode: ModePublicKey, Clock: w.clk})
	if err != nil {
		t.Fatal(err)
	}
	swapped := []*Certificate{p2.Certs[1], p2.Certs[0]}
	if _, err := w.env.VerifyChain(swapped); err == nil {
		t.Fatal("reordered chain accepted")
	}
}

func TestVerifyEmptyChain(t *testing.T) {
	w := newWorld(t)
	if _, err := w.env.VerifyChain(nil); !errors.Is(err, ErrBadChain) {
		t.Fatalf("err = %v", err)
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	w := newWorld(t)
	p := w.grantConv(alice, readMotd())
	b := p.Certs[0].Marshal()
	got, err := UnmarshalCertificate(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Grantor != alice || got.Binding.KeyID != p.Certs[0].Binding.KeyID {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := w.env.VerifyChain([]*Certificate{got}); err != nil {
		t.Fatalf("re-verified: %v", err)
	}
}

func TestPresentationMarshalRoundTrip(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, readMotd())
	ch, _ := NewChallenge()
	pr, _ := p.Present(ch, fileSv)

	got, err := UnmarshalPresentation(pr.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.env.VerifyPresentation(got, ch); err != nil {
		t.Fatalf("round-tripped presentation rejected: %v", err)
	}

	// Delegate presentation round-trips with nil proof.
	del := p.PresentDelegate()
	got2, err := UnmarshalPresentation(del.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got2.Proof != nil {
		t.Fatal("nil proof not preserved")
	}
}

func TestChainLengthLimit(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, nil)
	var err error
	for i := 0; i < maxChainLen-1; i++ {
		p, err = p.CascadeBearer(CascadeParams{Lifetime: time.Hour, Mode: ModePublicKey, Clock: w.clk})
		if err != nil {
			t.Fatalf("link %d: %v", i, err)
		}
	}
	if _, err = p.CascadeBearer(CascadeParams{Lifetime: time.Hour, Mode: ModePublicKey, Clock: w.clk}); err == nil {
		t.Fatal("exceeded max chain length")
	}
}

func TestMixedModeChain(t *testing.T) {
	// A public-key root with a conventional final link: PK certificate
	// signed by identity, then a bearer cascade sealing an HMAC proxy
	// key toward the file server (the hybrid of §6.1).
	w := newWorld(t)
	p := w.grantPK(alice, nil)
	p2, err := p.CascadeBearer(CascadeParams{
		Lifetime: time.Hour, Mode: ModeConventional, EndServerKey: w.serverKey, Clock: w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := NewChallenge()
	pr, err := p2.Present(ch, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.env.VerifyPresentation(pr, ch); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if ModeConventional.String() != "conventional" || ModePublicKey.String() != "public-key" {
		t.Fatal("mode strings")
	}
	if Mode(7).String() != "mode(7)" {
		t.Fatal(Mode(7).String())
	}
}

// Property: unmarshaling arbitrary bytes never panics.
func TestPropertyUnmarshalGarbage(t *testing.T) {
	f := func(garbage []byte) bool {
		_, _ = UnmarshalCertificate(garbage)
		_, _ = UnmarshalCerts(garbage)
		_, _ = UnmarshalPresentation(garbage)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-byte corruption of a marshaled certificate is
// rejected (either at decode or verify).
func TestPropertyCorruptionRejected(t *testing.T) {
	w := newWorld(t)
	p := w.grantPK(alice, readMotd())
	raw := p.Certs[0].Marshal()
	for i := range raw {
		bad := make([]byte, len(raw))
		copy(bad, raw)
		bad[i] ^= 0x01
		c, err := UnmarshalCertificate(bad)
		if err != nil {
			continue
		}
		if _, err := w.env.VerifyChain([]*Certificate{c}); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}
