package proxy

import (
	"fmt"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/kcrypto"
	"proxykit/internal/principal"
	"proxykit/internal/restrict"
)

// GrantParams describes a request to create the first certificate of a
// proxy chain.
type GrantParams struct {
	// Grantor is the principal on whose behalf the proxy allows access.
	Grantor principal.ID
	// GrantorSigner signs the certificate: the grantor's Ed25519 key
	// pair in public-key mode, or (in conventional mode) a key the
	// end-server can verify — typically the session key established with
	// the end-server by the underlying authentication system (§6.2).
	GrantorSigner kcrypto.Signer
	// Restrictions to place on the proxy. An empty set grants the
	// grantor's full rights (an unrestricted proxy).
	Restrictions restrict.Set
	// Lifetime bounds the proxy's validity from the moment of grant.
	Lifetime time.Duration
	// Mode selects conventional or public-key integration.
	Mode Mode
	// EndServerKey seals the proxy key in conventional mode so only the
	// intended end-server can use it to check proof of possession.
	// Ignored in public-key mode. Exactly one of EndServerKey and
	// EndServerECDH must be set in conventional mode.
	EndServerKey *kcrypto.SymmetricKey
	// EndServerECDH selects the hybrid mode of §6.1: the symmetric proxy
	// key is sealed toward the end-server's long-term X25519 public key
	// via an ephemeral exchange, so no prior shared key is needed.
	EndServerECDH []byte
	// Clock supplies the issue time; nil uses the system clock.
	Clock clock.Clock
}

// Grant creates a restricted proxy (Fig. 1): it generates a fresh proxy
// key, binds its verification material into a certificate enumerating
// the restrictions, and signs the certificate with the grantor's signer.
func Grant(p GrantParams) (*Proxy, error) {
	if p.GrantorSigner == nil {
		return nil, fmt.Errorf("proxy: grant: nil grantor signer")
	}
	if p.Lifetime <= 0 {
		return nil, fmt.Errorf("proxy: grant: nonpositive lifetime")
	}
	clk := p.Clock
	if clk == nil {
		clk = clock.System{}
	}
	key, binding, err := newProxyKey(p.Mode, p.EndServerKey, p.EndServerECDH)
	if err != nil {
		return nil, err
	}
	now := clk.Now()
	cert := &Certificate{
		Grantor:      p.Grantor,
		Restrictions: p.Restrictions,
		IssuedAt:     now,
		Expires:      now.Add(p.Lifetime),
		Binding:      binding,
		SigScheme:    p.GrantorSigner.Scheme(),
	}
	if cert.Nonce, err = kcrypto.Nonce(16); err != nil {
		return nil, err
	}
	if cert.Signature, err = p.GrantorSigner.Sign(cert.signedBytes()); err != nil {
		return nil, fmt.Errorf("proxy: grant: sign: %w", err)
	}
	return &Proxy{Certs: []*Certificate{cert}, Key: key}, nil
}

// newProxyKey generates the proxy key for a new certificate and the
// binding an end-server needs to verify possession.
func newProxyKey(mode Mode, endServerKey *kcrypto.SymmetricKey, endServerECDH []byte) (kcrypto.Signer, VerifierBinding, error) {
	switch mode {
	case ModeConventional:
		key, err := kcrypto.NewSymmetricKey()
		if err != nil {
			return nil, VerifierBinding{}, err
		}
		switch {
		case endServerKey != nil:
			sealed, err := endServerKey.Seal(key.Bytes())
			if err != nil {
				return nil, VerifierBinding{}, err
			}
			return key, VerifierBinding{
				Scheme: kcrypto.SchemeHMAC,
				KeyID:  key.KeyID(),
				Sealed: sealed,
			}, nil
		case endServerECDH != nil:
			// Hybrid mode (§6.1): seal the conventional proxy key to the
			// end-server's public key via an ephemeral exchange.
			eph, err := kcrypto.NewECDHKey()
			if err != nil {
				return nil, VerifierBinding{}, err
			}
			shared, err := eph.SharedKey(endServerECDH)
			if err != nil {
				return nil, VerifierBinding{}, err
			}
			sealed, err := shared.Seal(key.Bytes())
			if err != nil {
				return nil, VerifierBinding{}, err
			}
			return key, VerifierBinding{
				Scheme: kcrypto.SchemeHMAC,
				KeyID:  key.KeyID(),
				Sealed: sealed,
				EphPub: eph.PublicBytes(),
			}, nil
		default:
			return nil, VerifierBinding{}, fmt.Errorf("proxy: conventional mode requires an end-server key (shared or ECDH) to seal the proxy key")
		}
	case ModePublicKey:
		kp, err := kcrypto.NewKeyPair()
		if err != nil {
			return nil, VerifierBinding{}, err
		}
		return kp, VerifierBinding{
			Scheme: kcrypto.SchemeEd25519,
			KeyID:  kp.KeyID(),
			Public: kp.Public().Bytes(),
		}, nil
	default:
		return nil, VerifierBinding{}, fmt.Errorf("%w: %s", ErrUnsupportedMode, mode)
	}
}

// CascadeParams describes adding a link to an existing chain (§3.4).
type CascadeParams struct {
	// Added restrictions for the new link; they accumulate with the
	// chain's existing restrictions and cannot remove any.
	Added restrict.Set
	// Lifetime bounds the new certificate; the effective chain expiry is
	// the minimum over all links.
	Lifetime time.Duration
	// Mode of the new proxy key.
	Mode Mode
	// EndServerKey seals the new proxy key in conventional mode.
	EndServerKey *kcrypto.SymmetricKey
	// EndServerECDH selects hybrid sealing (§6.1) for the new key.
	EndServerECDH []byte
	// Clock supplies the issue time; nil uses the system clock.
	Clock clock.Clock
}

// CascadeBearer extends a bearer chain: the new certificate is signed
// with the current proxy key ("Restrictions are added by signing a new
// proxy with the proxy key from the original proxy", §3.4). The caller
// must hold the proxy key. The returned proxy carries the whole chain
// and only the new proxy key.
func (p *Proxy) CascadeBearer(cp CascadeParams) (*Proxy, error) {
	if p.Key == nil {
		return nil, ErrNoKey
	}
	if len(p.Certs) >= maxChainLen {
		return nil, fmt.Errorf("%w: chain too long", ErrBadChain)
	}
	if cp.Lifetime <= 0 {
		return nil, fmt.Errorf("proxy: cascade: nonpositive lifetime")
	}
	clk := cp.Clock
	if clk == nil {
		clk = clock.System{}
	}
	key, binding, err := newProxyKey(cp.Mode, cp.EndServerKey, cp.EndServerECDH)
	if err != nil {
		return nil, err
	}
	now := clk.Now()
	cert := &Certificate{
		Grantor:          principal.ID{}, // anonymous: identified by the previous proxy key
		SignedByProxyKey: true,
		Restrictions:     cp.Added,
		IssuedAt:         now,
		Expires:          now.Add(cp.Lifetime),
		Binding:          binding,
		SigScheme:        p.Key.Scheme(),
	}
	if cert.Nonce, err = kcrypto.Nonce(16); err != nil {
		return nil, err
	}
	if cert.Signature, err = p.Key.Sign(cert.signedBytes()); err != nil {
		return nil, fmt.Errorf("proxy: cascade: sign: %w", err)
	}
	certs := make([]*Certificate, len(p.Certs)+1)
	copy(certs, p.Certs)
	certs[len(p.Certs)] = cert
	return &Proxy{Certs: certs, Key: key}, nil
}

// CascadeDelegate extends a delegate chain: the intermediate server,
// which must be named as a grantee of the existing chain, signs the new
// certificate directly with its own identity ("Instead of signing the
// new proxy with the proxy key from the original proxy, it is signed
// directly by the intermediate server", §3.4). This leaves an audit
// trail: the new certificate identifies the intermediate.
func (p *Proxy) CascadeDelegate(intermediate principal.ID, signer kcrypto.Signer, cp CascadeParams) (*Proxy, error) {
	if signer == nil {
		return nil, fmt.Errorf("proxy: delegate cascade: nil signer")
	}
	if len(p.Certs) >= maxChainLen {
		return nil, fmt.Errorf("%w: chain too long", ErrBadChain)
	}
	if cp.Lifetime <= 0 {
		return nil, fmt.Errorf("proxy: cascade: nonpositive lifetime")
	}
	named := false
	for _, g := range p.Restrictions().Grantees() {
		if g == intermediate {
			named = true
			break
		}
	}
	if !named {
		return nil, fmt.Errorf("%w: %s", ErrNotDelegate, intermediate)
	}
	clk := cp.Clock
	if clk == nil {
		clk = clock.System{}
	}
	key, binding, err := newProxyKey(cp.Mode, cp.EndServerKey, cp.EndServerECDH)
	if err != nil {
		return nil, err
	}
	now := clk.Now()
	cert := &Certificate{
		Grantor:      intermediate,
		Restrictions: cp.Added,
		IssuedAt:     now,
		Expires:      now.Add(cp.Lifetime),
		Binding:      binding,
		SigScheme:    signer.Scheme(),
	}
	if cert.Nonce, err = kcrypto.Nonce(16); err != nil {
		return nil, err
	}
	if cert.Signature, err = signer.Sign(cert.signedBytes()); err != nil {
		return nil, fmt.Errorf("proxy: delegate cascade: sign: %w", err)
	}
	certs := make([]*Certificate, len(p.Certs)+1)
	copy(certs, p.Certs)
	certs[len(p.Certs)] = cert
	return &Proxy{Certs: certs, Key: key}, nil
}
