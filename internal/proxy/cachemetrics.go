package proxy

import "proxykit/internal/obs"

// Verified-chain cache metrics. Hits avoid the per-link signature
// verifications (the dominant Authorize cost for long cascades);
// a high eviction rate with reason "capacity" means the cache is
// undersized for the live chain population.
var (
	mCacheHits = obs.Default.NewCounter("proxykit_chain_cache_hits_total",
		"Chain verifications served from the verified-chain cache (signatures skipped; validity windows still rechecked).")
	mCacheMisses = obs.Default.NewCounter("proxykit_chain_cache_misses_total",
		"Chain-cache lookups that fell through to full signature verification.")
	mCacheUncacheable = obs.Default.NewCounter("proxykit_chain_cache_uncacheable_total",
		"Chain verifications bypassing the cache because a link or binding uses a conventional (HMAC) key.")
	mCacheEvictions = obs.Default.NewCounterVec("proxykit_chain_cache_evictions_total",
		"Chain-cache entries evicted, by reason (expired, capacity, invalidated).", "reason")
	mCacheEntries = obs.Default.NewGauge("proxykit_chain_cache_entries",
		"Verified chains currently held in the chain cache.")
)
