package chaos

// Shared child-process crash/recovery helpers for this suite and the
// soak world (internal/soak): start a daemon as a real OS process,
// SIGKILL it mid-write, and await its recovery handshake.

import (
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"time"
)

// Proc is a child process hosting a daemon under crash testing.
type Proc struct {
	cmd *exec.Cmd
}

// StartProc launches bin with args and the parent environment extended
// by env ("KEY=value" entries). Stdout/stderr are inherited so the
// child's logs interleave with the harness's.
func StartProc(bin string, args []string, env []string) (*Proc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("chaos: start %s: %w", bin, err)
	}
	return &Proc{cmd: cmd}, nil
}

// Pid returns the child's process id.
func (p *Proc) Pid() int { return p.cmd.Process.Pid }

// Kill delivers SIGKILL — no shutdown hooks, no flush, the closest a
// test gets to pulling the power cord — and reaps the child, verifying
// it actually died by signal rather than exiting cleanly first.
func (p *Proc) Kill() error {
	if err := p.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("chaos: kill pid %d: %w", p.Pid(), err)
	}
	err := p.cmd.Wait()
	if err == nil {
		return fmt.Errorf("chaos: pid %d exited cleanly before SIGKILL landed", p.Pid())
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		return fmt.Errorf("chaos: wait pid %d: %w", p.Pid(), err)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		return fmt.Errorf("chaos: pid %d died with %v, want SIGKILL", p.Pid(), ee)
	}
	return nil
}

// Stop terminates the child without asserting how it dies — cleanup for
// harness teardown paths where the child may already be gone.
func (p *Proc) Stop() {
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}

// AwaitFile polls until path exists — the ready-file handshake a child
// daemon completes once it has recovered its state and is serving.
func AwaitFile(path string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if _, err := os.Stat(path); err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: %s not ready after %v", path, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
