// Package chaos holds the fault-injection integration suite: full
// check-clearing flows (§4, Fig. 5) driven under seeded injected
// drops, duplications, delays, and partitions (internal/faultpoint),
// with retry/backoff at the transport and clearing layers.
//
// The suite's claim is exactly-once convergence: under loss and
// duplication, a check deposited at one bank and cleared through
// another credits the payee exactly once and debits the payor exactly
// once — the accept-once restriction (§7.7) turns redelivery into an
// acknowledgment — and the whole history is reconstructible from the
// banks' tamper-evident audit journals. All tests use fixed PRNG
// seeds, so failures reproduce deterministically.
package chaos
