// Package chaos holds the fault-injection integration suite: full
// check-clearing flows (§4, Fig. 5) driven under seeded injected
// drops, duplications, delays, and partitions (internal/faultpoint),
// with retry/backoff at the transport and clearing layers.
//
// The suite's claim is exactly-once convergence: under loss and
// duplication, a check deposited at one bank and cleared through
// another credits the payee exactly once and debits the payor exactly
// once — the accept-once restriction (§7.7) turns redelivery into an
// acknowledgment — and the whole history is reconstructible from the
// banks' tamper-evident audit journals. All tests use fixed PRNG
// seeds, so failures reproduce deterministically.
//
// The crash-recovery half of the suite (crash_recovery_test.go, `make
// crash`) extends the claim across process death: a child bank process
// is SIGKILLed at a fault-injector-chosen WAL append boundary, and a
// recovered bank replaying the ledger must still refuse every paid
// check number, balance its books to the dollar, and sit exactly one
// payment ahead of its hash-chained audit journal (the WAL frame
// becomes durable before the journal line).
package chaos
