package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/audit"
	"proxykit/internal/clock"
	"proxykit/internal/faultpoint"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

var (
	carol = principal.New("carol", "CHAOS.ORG")
	srvS  = principal.New("service", "CHAOS.ORG")
)

// world is a two-bank economy with journals attached: carol banks at
// bank2 (the drawee), the service banks at bank1 (Fig. 5).
type world struct {
	t        *testing.T
	clk      *clock.Fake
	dir      *pubkey.Directory
	ids      map[principal.ID]*pubkey.Identity
	bank1    *accounting.Server
	bank2    *accounting.Server
	journal1 *audit.Journal
	journal2 *audit.Journal
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{
		t:   t,
		clk: clock.NewFake(time.Unix(19_000_000, 0)),
		dir: pubkey.NewDirectory(),
		ids: make(map[principal.ID]*pubkey.Identity),
	}
	for _, id := range []principal.ID{carol, srvS} {
		w.register(id)
	}
	b1 := w.register(principal.New("bank1", "CHAOS.ORG"))
	b2 := w.register(principal.New("bank2", "CHAOS.ORG"))
	w.bank1 = accounting.NewServer(b1, w.dir.Resolver(), w.clk)
	w.bank2 = accounting.NewServer(b2, w.dir.Resolver(), w.clk)
	w.bank1.AddPeer(w.bank2)
	w.bank2.AddPeer(w.bank1)
	w.journal1 = audit.NewMemory(8192)
	w.journal2 = audit.NewMemory(8192)
	w.bank1.SetJournal(w.journal1)
	w.bank2.SetJournal(w.journal2)

	if err := w.bank2.CreateAccount("carol", carol); err != nil {
		t.Fatal(err)
	}
	if err := w.bank2.Mint("carol", "dollars", 10_000); err != nil {
		t.Fatal(err)
	}
	if err := w.bank1.CreateAccount("service", srvS); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *world) register(id principal.ID) *pubkey.Identity {
	w.t.Helper()
	ident, err := pubkey.NewIdentity(id)
	if err != nil {
		w.t.Fatal(err)
	}
	w.ids[id] = ident
	w.dir.RegisterIdentity(ident)
	return ident
}

// endorsedCheck writes a check on carol's account at bank2 and
// endorses it to bank1 for deposit into the service's account.
func (w *world) endorsedCheck(amount int64) *accounting.Check {
	w.t.Helper()
	c, err := accounting.WriteCheck(accounting.WriteCheckParams{
		Payor:    w.ids[carol],
		Bank:     w.bank2.ID,
		Account:  "carol",
		Payee:    srvS,
		Currency: "dollars",
		Amount:   amount,
		Lifetime: 24 * time.Hour,
		Clock:    w.clk,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	e, err := c.Endorse(w.ids[srvS], w.bank1.ID, w.bank1.ID, w.bank1.Global("service"), true, w.clk)
	if err != nil {
		w.t.Fatal(err)
	}
	return e
}

func (w *world) balance(b *accounting.Server, account string, who principal.ID) int64 {
	w.t.Helper()
	v, err := b.Balance(account, "dollars", []principal.ID{who})
	if err != nil {
		w.t.Fatal(err)
	}
	return v
}

// chaosRetry is the retry policy for the suite: generous attempt cap,
// no real sleeping, fixed seed.
func chaosRetry(attempts int) transport.RetryPolicy {
	return transport.RetryPolicy{
		MaxAttempts: attempts,
		Seed:        1,
		Sleep:       func(time.Duration) {},
	}
}

// depositCtx returns a context carrying a fresh trace, so the records
// both banks journal for one deposit share a trace ID.
func depositCtx() (context.Context, string) {
	tr := obs.NewTrace()
	return obs.ContextWithTrace(context.Background(), tr), tr.TraceID
}

// TestExactlyOnceClearingUnderChaos is the headline scenario: checks
// written at bank2, deposited at bank1, cleared across the hop under
// 30% drop plus duplication. Every deposit converges, the payor is
// debited and the payee credited exactly once per check, and the whole
// history is reconstructible from the two audit journals.
func TestExactlyOnceClearingUnderChaos(t *testing.T) {
	w := newWorld(t)
	w.bank1.SetHopRetry(chaosRetry(12))
	w.bank1.SetHopInjector(faultpoint.New(1202,
		faultpoint.Rule{Method: accounting.HopMethod, Drop: 0.3, Dup: 0.15}))

	const n, amount = 25, 20
	traces := make(map[string]string, n) // check number -> trace ID
	for i := 0; i < n; i++ {
		endorsed := w.endorsedCheck(amount)
		ctx, traceID := depositCtx()
		r, err := w.bank1.DepositCheckCtx(ctx, endorsed, []principal.ID{srvS}, "service")
		if err != nil {
			t.Fatalf("check %d failed to clear under chaos: %v", i, err)
		}
		if !r.Collected || r.Amount != amount {
			t.Fatalf("check %d receipt = %+v", i, r)
		}
		traces[r.Number] = traceID
	}

	// Exactly-once money movement.
	if got := w.balance(w.bank2, "carol", carol); got != 10_000-n*amount {
		t.Errorf("carol = %d, want %d", got, 10_000-n*amount)
	}
	if got := w.balance(w.bank1, "service", srvS); got != n*amount {
		t.Errorf("service = %d, want %d", got, n*amount)
	}
	u, err := w.bank1.UncollectedBalance("service", "dollars", []principal.ID{srvS})
	if err != nil || u != 0 {
		t.Errorf("uncollected = %d, %v", u, err)
	}

	// Both journals' hash chains verify end to end.
	recs1, recs2 := w.journal1.Tail(0), w.journal2.Tail(0)
	if err := audit.VerifyChain(recs1); err != nil {
		t.Fatalf("bank1 journal chain: %v", err)
	}
	if err := audit.VerifyChain(recs2); err != nil {
		t.Fatalf("bank2 journal chain: %v", err)
	}

	// Reconstruct from the journals: per check number, exactly one
	// granted deposit at each bank; redeliveries appear only as
	// accept-once rejections at the drawee.
	granted1 := grantedDeposits(recs1)
	granted2 := grantedDeposits(recs2)
	rejects2 := countKind(recs2, audit.KindAcceptOnceReject)
	for number, traceID := range traces {
		if got := granted1[number]; got != 1 {
			t.Errorf("bank1 journal: %d granted deposits for %s, want 1", got, number)
		}
		if got := granted2[number]; got != 1 {
			t.Errorf("bank2 journal: %d granted deposits for %s, want 1", got, number)
		}
		if tid := depositTrace(recs2, number); tid != traceID {
			t.Errorf("check %s: drawee journal trace %q != deposit trace %q (clearing lost the trace)", number, tid, traceID)
		}
	}
	if rejects2 == 0 {
		t.Error("no accept-once rejections journaled at the drawee — redelivery never happened, chaos too tame")
	}
	// Every clearing hop was journaled with its delivery outcome.
	if hops := countKind(recs1, audit.KindClearingHop); hops < n {
		t.Errorf("bank1 journal: %d clearing-hop records, want >= %d", hops, n)
	}
}

// grantedDeposits counts granted deposit records per check number.
func grantedDeposits(recs []audit.Record) map[string]int {
	out := make(map[string]int)
	for _, r := range recs {
		if r.Kind == audit.KindDeposit && r.Outcome == audit.OutcomeGranted {
			out[r.Detail["number"]]++
		}
	}
	return out
}

// depositTrace returns the trace ID of the granted deposit for number.
func depositTrace(recs []audit.Record, number string) string {
	for _, r := range recs {
		if r.Kind == audit.KindDeposit && r.Outcome == audit.OutcomeGranted && r.Detail["number"] == number {
			return r.TraceID
		}
	}
	return ""
}

// countKind counts records of one kind.
func countKind(recs []audit.Record, kind string) int {
	n := 0
	for _, r := range recs {
		if r.Kind == kind {
			n++
		}
	}
	return n
}

// TestPartitionHealConvergence: a full partition exhausts the retry
// budget and the deposit bounces with the uncollected credit rolled
// back; after the partition heals the same check clears.
func TestPartitionHealConvergence(t *testing.T) {
	w := newWorld(t)
	w.bank1.SetHopRetry(chaosRetry(4))
	inj := faultpoint.New(5, faultpoint.Rule{Method: accounting.HopMethod, Partition: true})
	w.bank1.SetHopInjector(inj)

	endorsed := w.endorsedCheck(500)
	ctx, _ := depositCtx()
	_, err := w.bank1.DepositCheckCtx(ctx, endorsed, []principal.ID{srvS}, "service")
	var fe *faultpoint.Error
	if !errors.As(err, &fe) {
		t.Fatalf("partitioned deposit: err = %v, want injected fault", err)
	}
	if got := w.balance(w.bank2, "carol", carol); got != 10_000 {
		t.Fatalf("carol = %d during partition, want 10000", got)
	}
	u, _ := w.bank1.UncollectedBalance("service", "dollars", []principal.ID{srvS})
	if u != 0 {
		t.Fatalf("uncollected = %d after bounced deposit, want 0", u)
	}

	// Heal the partition without swapping the injector out: the same
	// rules stay installed, disabled.
	inj.SetEnabled(false)
	r, err := w.bank1.DepositCheckCtx(ctx, endorsed, []principal.ID{srvS}, "service")
	if err != nil {
		t.Fatalf("re-presenting after heal: %v", err)
	}
	if !r.Collected || r.Hops != 2 {
		t.Fatalf("receipt = %+v", r)
	}
	if got := w.balance(w.bank1, "service", srvS); got != 500 {
		t.Errorf("service = %d, want 500", got)
	}
}

// TestConcurrentDepositorsUnderChaos: many goroutines clear distinct
// checks through the same lossy hop concurrently; all converge, and
// the books balance exactly-once. Run with -race.
func TestConcurrentDepositorsUnderChaos(t *testing.T) {
	w := newWorld(t)
	w.bank1.SetHopRetry(chaosRetry(12))
	w.bank1.SetHopInjector(faultpoint.New(77,
		faultpoint.Rule{Method: accounting.HopMethod, Drop: 0.3, Dup: 0.1}))

	const n, amount = 16, 25
	checks := make([]*accounting.Check, n)
	for i := range checks {
		checks[i] = w.endorsedCheck(amount)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, _ := depositCtx()
			_, errs[i] = w.bank1.DepositCheckCtx(ctx, checks[i], []principal.ID{srvS}, "service")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent deposit %d: %v", i, err)
		}
	}
	if got := w.balance(w.bank2, "carol", carol); got != 10_000-n*amount {
		t.Errorf("carol = %d, want %d", got, 10_000-n*amount)
	}
	if got := w.balance(w.bank1, "service", srvS); got != n*amount {
		t.Errorf("service = %d, want %d", got, n*amount)
	}
	if err := audit.VerifyChain(w.journal2.Tail(0)); err != nil {
		t.Fatalf("bank2 journal chain after concurrency: %v", err)
	}
}

// TestWireDepositsUnderChaos stacks chaos at both layers: the
// depositing client reaches bank1 over a lossy in-memory network
// (re-sealing each retry), and bank1's clearing hop to bank2 is lossy
// too. Every deposit still converges to exactly-once credit.
func TestWireDepositsUnderChaos(t *testing.T) {
	w := newWorld(t)
	w.bank1.SetHopRetry(chaosRetry(12))
	w.bank1.SetHopInjector(faultpoint.New(88,
		faultpoint.Rule{Method: accounting.HopMethod, Drop: 0.3}))

	net := transport.NewNetwork()
	net.Register("bank1", svc.NewAcctService(w.bank1, w.dir.Resolver(), w.clk).Mux())
	net.SetInjector(faultpoint.New(31,
		faultpoint.Rule{Method: svc.DepositCheckMethod, Drop: 0.3, Dup: 0.1}))

	ac := svc.NewAcctClient(net.MustDial("bank1"), w.ids[srvS], w.clk)
	ac.SetRetry(chaosRetry(12))

	const n, amount = 15, 10
	for i := 0; i < n; i++ {
		endorsed := w.endorsedCheck(amount)
		r, err := ac.DepositCheck(endorsed, "service")
		if err != nil {
			t.Fatalf("wire deposit %d failed under chaos: %v", i, err)
		}
		if !r.Collected || r.Amount != amount {
			t.Fatalf("wire deposit %d receipt = %+v", i, r)
		}
	}
	if got := w.balance(w.bank2, "carol", carol); got != 10_000-n*amount {
		t.Errorf("carol = %d, want %d", got, 10_000-n*amount)
	}
	if got := w.balance(w.bank1, "service", srvS); got != n*amount {
		t.Errorf("service = %d, want %d", got, n*amount)
	}
}

// TestDeterministicConvergence: the same seed produces the same
// injection schedule, so the suite's chaos is reproducible — two runs
// over identical worlds leave identical books and identical injection
// decisions.
func TestDeterministicConvergence(t *testing.T) {
	run := func() (int64, []faultpoint.Decision) {
		w := newWorld(t)
		w.bank1.SetHopRetry(chaosRetry(12))
		w.bank1.SetHopInjector(faultpoint.New(4242,
			faultpoint.Rule{Method: accounting.HopMethod, Drop: 0.3, Dup: 0.15}))
		for i := 0; i < 10; i++ {
			ctx, _ := depositCtx()
			if _, err := w.bank1.DepositCheckCtx(ctx, w.endorsedCheck(10), []principal.ID{srvS}, "service"); err != nil {
				t.Fatalf("deposit %d: %v", i, err)
			}
		}
		probe := faultpoint.New(4242, faultpoint.Rule{Method: "*", Drop: 0.3, Dup: 0.15})
		var schedule []faultpoint.Decision
		for i := 0; i < 32; i++ {
			schedule = append(schedule, probe.Decide(fmt.Sprintf("m%d", i)))
		}
		return w.balance(w.bank2, "carol", carol), schedule
	}
	bal1, sched1 := run()
	bal2, sched2 := run()
	if bal1 != bal2 {
		t.Fatalf("same seed, different books: %d vs %d", bal1, bal2)
	}
	for i := range sched1 {
		if sched1[i] != sched2[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, sched1[i], sched2[i])
		}
	}
}
