package chaos

// Kill-the-primary failover suite: a child process runs a semi-sync
// replicated bank primary; the parent tails it as a hot standby over
// TCP, SIGKILLs the child after a seeded number of acknowledged
// deposits, promotes the standby, and proves the failover invariants:
//
//   - zero acknowledged payments lost: every check the child recorded
//     as acknowledged before the kill is present on the promoted
//     standby (re-presenting it is refused as a duplicate);
//   - the books balance exactly against the cleared count;
//   - the accept-once registry survived the failover;
//   - the deposed primary is fenced: restarted from its own ledger, it
//     refuses every mutation once the new term reaches it.
//
// Semi-sync is what makes the first invariant non-probabilistic: the
// child only acknowledges a deposit (writes its number to the acked
// file) after the commit returns, and the commit only returns after the
// standby has pulled past the record.

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/ledger"
	"proxykit/internal/principal"
	"proxykit/internal/repl"
	"proxykit/internal/transport"
)

const (
	failoverMaxSteps = 5_000
	failoverSeed     = 1789
)

// TestReplFailoverChild is the primary that dies. It only does real
// work when re-executed by TestReplFailoverKillPrimary.
func TestReplFailoverChild(t *testing.T) {
	dir := os.Getenv("CHAOS_FAILOVER_DIR")
	if dir == "" {
		t.Skip("child-only test")
	}
	w := newCrashWorld(t)
	ledgerDir := filepath.Join(dir, "primary")
	if _, err := w.bank.OpenLedger(ledger.Options{Dir: ledgerDir, Fsync: ledger.FsyncAlways}); err != nil {
		t.Fatal(err)
	}
	// Seed the economy before replication starts so setup commits do
	// not each wait out the semi-sync window while no standby exists.
	if err := w.bank.CreateAccount("carol", w.carol.ID); err != nil {
		t.Fatal(err)
	}
	if err := w.bank.CreateAccount("service", w.srv.ID); err != nil {
		t.Fatal(err)
	}
	if err := w.bank.Mint("carol", "dollars", crashMint); err != nil {
		t.Fatal(err)
	}

	node, err := repl.NewNode(repl.Config{
		SM: w.bank, Dir: ledgerDir,
		SyncTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := transport.NewMux()
	node.Mount(mux)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewTCPServer(l, mux)
	defer srv.Close()

	// Publish the address atomically: the parent dials as soon as the
	// file appears.
	addrTmp := filepath.Join(dir, "addr.tmp")
	if err := os.WriteFile(addrTmp, []byte(l.Addr().String()), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(addrTmp, filepath.Join(dir, "addr")); err != nil {
		t.Fatal(err)
	}

	acked, err := os.OpenFile(filepath.Join(dir, "acked"),
		os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < failoverMaxSteps; i++ {
		number := crashCheckNumber(i)
		if err := w.depositNumbered(number); err != nil {
			t.Fatalf("deposit %s: %v", number, err)
		}
		// The deposit returned: semi-sync guarantees the standby holds
		// it. Only now does it count as acknowledged to the client.
		if _, err := fmt.Fprintf(acked, "%s\n", number); err != nil {
			t.Fatal(err)
		}
		if err := acked.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// Surviving every step means the parent never killed us.
	if err := os.WriteFile(filepath.Join(dir, "completed"), []byte("no kill\n"), 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestReplFailoverKillPrimary(t *testing.T) {
	if os.Getenv("CHAOS_FAILOVER_DIR") != "" {
		return // child run; work happens in TestReplFailoverChild
	}
	if testing.Short() {
		t.Skip("multi-process failover test in -short mode")
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(failoverSeed))
	killAfter := 20 + rng.Intn(30) // acked deposits before the plug is pulled

	child, err := StartProc(os.Args[0],
		[]string{"-test.run=^TestReplFailoverChild$", "-test.v"},
		[]string{"CHAOS_FAILOVER_DIR=" + dir})
	if err != nil {
		t.Fatal(err)
	}
	defer child.Stop()

	if err := AwaitFile(filepath.Join(dir, "addr"), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	addrRaw, err := os.ReadFile(filepath.Join(dir, "addr"))
	if err != nil {
		t.Fatal(err)
	}
	client, err := transport.DialTCP(string(addrRaw), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// The parent is the hot standby.
	ws := newCrashWorld(t)
	standbyDir := filepath.Join(dir, "standby")
	if _, err := ws.bank.OpenLedger(ledger.Options{Dir: standbyDir, Fsync: ledger.FsyncAlways}); err != nil {
		t.Fatal(err)
	}
	defer ws.bank.CloseLedger()
	sNode, err := repl.NewNode(repl.Config{
		SM: ws.bank, Dir: standbyDir, Standby: true,
		Source:   client,
		PullWait: 100 * time.Millisecond, RetryWait: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sNode.Close()

	// Pull the plug once killAfter deposits have been acknowledged.
	ackedPath := filepath.Join(dir, "acked")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if len(readAckedNumbers(t, ackedPath)) >= killAfter {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("child acked fewer than %d deposits in time", killAfter)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := child.Kill(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "completed")); !os.IsNotExist(err) {
		t.Fatal("child completed all steps before the kill")
	}
	ackedNumbers := readAckedNumbers(t, ackedPath)
	if len(ackedNumbers) < killAfter {
		t.Fatalf("only %d acked deposits on record, want >= %d", len(ackedNumbers), killAfter)
	}
	t.Logf("killed primary after %d acked deposits (seed %d)", len(ackedNumbers), failoverSeed)

	// Failover: the standby becomes the primary under a fresh term.
	oldTerm := sNode.Term()
	newTerm, err := sNode.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if newTerm != oldTerm+1 {
		t.Fatalf("promoted term = %d, want %d", newTerm, oldTerm+1)
	}
	if got, err := repl.LoadTerm(standbyDir); err != nil || got != newTerm {
		t.Fatalf("persisted standby term = %d, %v, want %d", got, err, newTerm)
	}

	// Zero acknowledged payments lost: every acked check is already on
	// the promoted standby, so re-presenting it trips accept-once.
	for _, number := range ackedNumbers {
		err := ws.depositNumbered(number)
		if !errors.Is(err, accounting.ErrDuplicateCheck) {
			t.Fatalf("acked check %s after failover: err = %v, want ErrDuplicateCheck", number, err)
		}
	}

	// The books balance exactly: cleared checks per the statement match
	// the money moved, and cover at least every acknowledged deposit
	// (the standby may hold a final record whose ack never made it out).
	stmt, err := ws.bank.Statement("service", []principal.ID{ws.srv.ID})
	if err != nil {
		t.Fatal(err)
	}
	cleared := 0
	for _, tx := range stmt {
		if tx.Kind == accounting.TxCheckDeposited {
			cleared++
		}
	}
	if cleared < len(ackedNumbers) {
		t.Fatalf("standby cleared %d checks, acked %d — acknowledged payments were lost",
			cleared, len(ackedNumbers))
	}
	balance := func(account string, who principal.ID) int64 {
		t.Helper()
		got, err := ws.bank.Balance(account, "dollars", []principal.ID{who})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if got := balance("service", ws.srv.ID); got != int64(cleared)*crashAmount {
		t.Errorf("service balance = %d, want %d", got, int64(cleared)*crashAmount)
	}
	if got := balance("carol", ws.carol.ID); got != crashMint-int64(cleared)*crashAmount {
		t.Errorf("carol balance = %d, want %d", got, crashMint-int64(cleared)*crashAmount)
	}

	// The promoted standby accepts new traffic.
	if err := ws.depositNumbered("ck-post-failover"); err != nil {
		t.Fatalf("fresh deposit on promoted standby: %v", err)
	}

	// The deposed primary is fenced off. Restart it in-process from its
	// own ledger directory — it comes back still believing its old term
	// — then deliver the new term, as `proxyctl promote` would.
	wp := newCrashWorld(t)
	if _, err := wp.bank.OpenLedger(ledger.Options{
		Dir: filepath.Join(dir, "primary"), Fsync: ledger.FsyncAlways,
	}); err != nil {
		t.Fatalf("deposed primary recovery: %v", err)
	}
	defer wp.bank.CloseLedger()
	pNode, err := repl.NewNode(repl.Config{SM: wp.bank, Dir: filepath.Join(dir, "primary")})
	if err != nil {
		t.Fatal(err)
	}
	defer pNode.Close()
	if pNode.Term() != oldTerm {
		t.Fatalf("restarted deposed primary term = %d, want %d", pNode.Term(), oldTerm)
	}
	if _, err := pNode.Fence(newTerm); err != nil {
		t.Fatal(err)
	}
	if err := wp.depositNumbered("ck-deposed-write"); !repl.IsFenced(err) {
		t.Fatalf("deposed primary deposit = %v, want fenced", err)
	}
	if err := wp.bank.Mint("carol", "dollars", 1); !repl.IsFenced(err) {
		t.Fatalf("deposed primary mint = %v, want fenced", err)
	}
	// And its fenced term survives another restart.
	if got, err := repl.LoadTerm(filepath.Join(dir, "primary")); err != nil || got != newTerm {
		t.Fatalf("persisted deposed term = %d, %v, want %d", got, err, newTerm)
	}
}

// readAckedNumbers returns the complete lines of the acked file; a torn
// final line (the kill can land mid-write) is ignored — its deposit was
// never acknowledged.
func readAckedNumbers(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		t.Fatal(err)
	}
	end := strings.LastIndexByte(string(raw), '\n')
	if end < 0 {
		return nil
	}
	var numbers []string
	sc := bufio.NewScanner(strings.NewReader(string(raw[:end+1])))
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			numbers = append(numbers, line)
		}
	}
	return numbers
}
