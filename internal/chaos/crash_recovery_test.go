package chaos

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/audit"
	"proxykit/internal/clock"
	"proxykit/internal/faultpoint"
	"proxykit/internal/ledger"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/pubkey"
)

// The crash-recovery suite SIGKILLs a bank mid-clearing and proves the
// restarted bank refuses to honor already-paid check numbers and that
// its books still balance against the audit journal. The child process
// (TestCrashRecoveryChild) runs the bank and dies at a WAL append
// boundary chosen by a seeded fault injector; the parent replays the
// WAL in-process and audits the wreckage.
//
// Identities are derived from fixed seeds so the parent can reconstruct
// the child's world: recovery needs the same bank identity the WAL
// records were written under.

const (
	crashRealm    = "CRASH.ORG"
	crashMint     = 100_000
	crashAmount   = 10
	crashMaxSteps = 500
)

// crashWorld is the single-bank economy shared by child and parent:
// carol and the service both bank at one ledgered drawee, so every
// cleared check is a local redeem — exactly one WAL record.
type crashWorld struct {
	clk   *clock.Fake
	dir   *pubkey.Directory
	bank  *accounting.Server
	carol *pubkey.Identity
	srv   *pubkey.Identity
}

func newCrashWorld(t *testing.T) *crashWorld {
	t.Helper()
	w := &crashWorld{
		clk: clock.NewFake(time.Unix(19_000_000, 0)),
		dir: pubkey.NewDirectory(),
	}
	seeded := func(name string, fill byte) *pubkey.Identity {
		id := principal.New(name, crashRealm)
		ident, err := pubkey.IdentityFromSeed(id, bytes.Repeat([]byte{fill}, 32))
		if err != nil {
			t.Fatal(err)
		}
		w.dir.RegisterIdentity(ident)
		return ident
	}
	w.carol = seeded("carol", 0xC1)
	w.srv = seeded("service", 0xC2)
	bankIdent := seeded("bank", 0xC3)
	w.bank = accounting.NewServer(bankIdent, w.dir.Resolver(), w.clk)
	return w
}

func crashCheckNumber(i int) string { return fmt.Sprintf("ck-%03d", i) }

// depositNumbered writes a check carol -> service with a fixed number
// and presents it for deposit at the (single) bank.
func (w *crashWorld) depositNumbered(number string) error {
	c, err := accounting.WriteCheck(accounting.WriteCheckParams{
		Payor:    w.carol,
		Bank:     w.bank.ID,
		Account:  "carol",
		Payee:    w.srv.ID,
		Currency: "dollars",
		Amount:   crashAmount,
		Lifetime: time.Hour,
		Clock:    w.clk,
		Number:   number,
	})
	if err != nil {
		return err
	}
	endorsed, err := c.Endorse(w.srv, w.bank.ID, w.bank.ID, w.bank.Global("service"), false, w.clk)
	if err != nil {
		return err
	}
	_, err = w.bank.DepositCheck(endorsed, []principal.ID{w.srv.ID}, "service")
	return err
}

// TestCrashRecoveryChild is the process that dies. It only does real
// work when re-executed by TestCrashRecoveryUnderSIGKILL; the append
// hook SIGKILLs the process at a fault-injector-chosen WAL boundary
// once at least three checks have cleared.
func TestCrashRecoveryChild(t *testing.T) {
	dir := os.Getenv("CHAOS_CRASH_DIR")
	if dir == "" {
		t.Skip("child-only test")
	}
	seed, err := strconv.ParseInt(os.Getenv("CHAOS_CRASH_SEED"), 10, 64)
	if err != nil {
		t.Fatal(err)
	}

	w := newCrashWorld(t)
	journal, err := audit.New(audit.Options{Path: filepath.Join(dir, "audit.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.bank.OpenLedger(ledger.Options{
		Dir:   filepath.Join(dir, "ledger"),
		Fsync: ledger.FsyncAlways,
	}); err != nil {
		t.Fatal(err)
	}
	w.bank.SetJournal(journal)

	if err := w.bank.CreateAccount("carol", w.carol.ID); err != nil {
		t.Fatal(err)
	}
	if err := w.bank.CreateAccount("service", w.srv.ID); err != nil {
		t.Fatal(err)
	}
	if err := w.bank.Mint("carol", "dollars", crashMint); err != nil {
		t.Fatal(err)
	}

	// Arm the crash. The hook fires after the WAL frame is durable but
	// before the in-memory mutation and before the journal record — the
	// worst instant: the recovered bank must honor a payment its own
	// journal never saw. The gate (three cleared checks) keeps the
	// setup records intact so recovery always has balances to check.
	var cleared atomic.Int64
	inj := faultpoint.New(seed, faultpoint.Rule{Method: "ledger.crash", Err: 0.2})
	w.bank.Ledger().SetAppendHook(func(uint64) {
		if cleared.Load() >= 3 && inj.Decide("ledger.crash").Action == faultpoint.ActError {
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // never proceed past the crash point
		}
	})

	for i := 0; i < crashMaxSteps; i++ {
		if err := w.depositNumbered(crashCheckNumber(i)); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
		cleared.Add(1)
	}
	// Surviving all steps means the injector never fired — the parent
	// treats that as a failed run rather than silently passing.
	if err := os.WriteFile(filepath.Join(dir, "completed"), []byte("no crash\n"), 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryUnderSIGKILL(t *testing.T) {
	if os.Getenv("CHAOS_CRASH_DIR") != "" {
		return // child run; work happens in TestCrashRecoveryChild
	}
	if testing.Short() {
		t.Skip("multi-process crash test in -short mode")
	}
	const seed = 42
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashRecoveryChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CHAOS_CRASH_DIR="+dir,
		fmt.Sprintf("CHAOS_CRASH_SEED=%d", seed))
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child was not killed; output:\n%s", out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("child failed to run: %v\n%s", err, out)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child died, but not by SIGKILL: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(dir, "completed")); !os.IsNotExist(err) {
		t.Fatalf("child completed all %d steps without crashing", crashMaxSteps)
	}

	// Recover: a fresh bank process (this one) replays the WAL.
	w := newCrashWorld(t)
	rec, err := w.bank.OpenLedger(ledger.Options{
		Dir:   filepath.Join(dir, "ledger"),
		Fsync: ledger.FsyncAlways,
	})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer w.bank.CloseLedger()
	if rec.Replayed() == 0 {
		t.Fatal("recovery replayed no WAL records")
	}

	// How many checks cleared according to the recovered books?
	stmt, err := w.bank.Statement("service", []principal.ID{w.srv.ID})
	if err != nil {
		t.Fatal(err)
	}
	cleared := 0
	for _, tx := range stmt {
		if tx.Kind == accounting.TxCheckDeposited {
			cleared++
		}
	}
	if cleared < 3 {
		t.Fatalf("only %d checks cleared before the crash; want >= 3", cleared)
	}
	t.Logf("recovered: %d WAL records, %d cleared checks, tornTail=%v",
		rec.Replayed(), cleared, rec.TornTail)

	// Books balance: every cleared check moved crashAmount from carol
	// to the service, including the one in flight at the crash.
	assertBalance := func(account string, who principal.ID, want int64) {
		t.Helper()
		got, err := w.bank.Balance(account, "dollars", []principal.ID{who})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s balance = %d, want %d", account, got, want)
		}
	}
	assertBalance("service", w.srv.ID, int64(cleared)*crashAmount)
	assertBalance("carol", w.carol.ID, crashMint-int64(cleared)*crashAmount)

	// The restarted bank must refuse every already-paid check number —
	// including the final one, whose clearing the journal never saw.
	for i := 0; i < cleared; i++ {
		err := w.depositNumbered(crashCheckNumber(i))
		if !errors.Is(err, accounting.ErrDuplicateCheck) {
			t.Fatalf("re-presented %s after recovery: err = %v, want ErrDuplicateCheck",
				crashCheckNumber(i), err)
		}
	}
	// ...while a never-seen number still clears.
	if err := w.depositNumbered("ck-fresh"); err != nil {
		t.Fatalf("fresh check after recovery: %v", err)
	}
	assertBalance("service", w.srv.ID, int64(cleared+1)*crashAmount)

	// The journal's hash chain survived the kill, and it records every
	// cleared check except the one in flight: the WAL frame became
	// durable before the journal write, so recovery is exactly one
	// payment ahead of the journal — never behind it.
	journalDeposits := verifyCrashJournal(t, filepath.Join(dir, "audit.jsonl"))
	if journalDeposits != cleared-1 {
		t.Errorf("journal records %d cleared checks, recovered books show %d; want books = journal+1",
			journalDeposits, cleared)
	}

	// Recovery is observable: the replay counter moved in this process.
	if n := metricValue(t, "proxykit_ledger_replay_records_total"); n <= 0 {
		t.Errorf("proxykit_ledger_replay_records_total = %v, want > 0", n)
	}
}

// verifyCrashJournal checks the journal's hash chain, tolerating a torn
// final line (a SIGKILL can truncate at most the last record), and
// returns the number of granted deposit records.
func verifyCrashJournal(t *testing.T, path string) int {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := audit.VerifyReader(bytes.NewReader(raw)); err != nil {
		// Drop a torn final line and re-verify; anything else is real
		// corruption and fails the test.
		trimmed := raw
		if i := bytes.LastIndexByte(bytes.TrimRight(trimmed, "\n"), '\n'); i >= 0 {
			trimmed = trimmed[:i+1]
		}
		if _, err2 := audit.VerifyReader(bytes.NewReader(trimmed)); err2 != nil {
			t.Fatalf("journal chain broken beyond a torn tail: %v (full-file error: %v)", err2, err)
		}
		raw = trimmed
	}
	deposits := 0
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var rec struct {
			Kind    string `json:"kind"`
			Outcome string `json:"outcome"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn tail already handled above
		}
		if rec.Kind == audit.KindDeposit && rec.Outcome == audit.OutcomeGranted.String() {
			deposits++
		}
	}
	return deposits
}

// metricValue reads one unlabeled metric from the process-global
// registry via its JSON rendering.
func metricValue(t *testing.T, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.Default.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc := map[string]any{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	v, ok := doc[name].(float64)
	if !ok {
		t.Fatalf("metric %s missing or not scalar: %v", name, doc[name])
	}
	return v
}
