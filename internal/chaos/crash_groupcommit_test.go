package chaos

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"proxykit/internal/ledger"
)

// Group-commit durability under SIGKILL: concurrent appenders on an
// fsync=always ledger join commit cohorts — one leader fsyncs a whole
// batch. Group commit must never weaken the contract that a returned
// Append is durable, so the harness kills a child process while
// cohorts are in flight and proves:
//
//   - every sequence number the child acknowledged (Append returned,
//     ack line written) survives recovery, and
//   - the recovered WAL is a dense prefix — no holes where a cohort
//     member was lost while its batch-mates survived.
//
// The child appends from gcCrashWorkers goroutines and records each
// acknowledged seq in a per-worker O_APPEND ack file; the parent kills
// it at ack-count thresholds chosen to land at different cohort
// boundaries, then replays the WAL and reconciles it with the acks.

const gcCrashWorkers = 8

// TestCrashRecoveryGroupCommitChild only does real work when
// re-executed by TestCrashRecoveryGroupCommit; it appends until killed.
func TestCrashRecoveryGroupCommitChild(t *testing.T) {
	dir := os.Getenv("CHAOS_GC_CRASH_DIR")
	if dir == "" {
		t.Skip("child-only test")
	}
	l, _, err := ledger.Open(ledger.Options{
		Dir:   filepath.Join(dir, "ledger"),
		Fsync: ledger.FsyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < gcCrashWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acks, err := os.OpenFile(gcAckPath(dir, w), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; ; i++ {
				seq, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					return // ledger failed closed or test torn down
				}
				// The append is durable; acknowledge it. A SIGKILL can
				// tear at most this file's final line.
				if _, err := fmt.Fprintf(acks, "%d\n", seq); err != nil {
					return
				}
			}
		}(w)
	}
	if err := os.WriteFile(filepath.Join(dir, "ready"), nil, 0o600); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // workers never finish; the parent's SIGKILL ends this
}

func gcAckPath(dir string, worker int) string {
	return filepath.Join(dir, fmt.Sprintf("acks-%d", worker))
}

// gcReadAcks returns every acknowledged seq across the worker ack
// files, dropping a torn final line (the only corruption a SIGKILL can
// inflict on an O_APPEND stream of short lines).
func gcReadAcks(t *testing.T, dir string) []uint64 {
	t.Helper()
	var acked []uint64
	for w := 0; w < gcCrashWorkers; w++ {
		raw, err := os.ReadFile(gcAckPath(dir, w))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		sc := bufio.NewScanner(strings.NewReader(string(raw)))
		for sc.Scan() {
			seq, err := strconv.ParseUint(sc.Text(), 10, 64)
			if err != nil {
				continue // torn tail
			}
			acked = append(acked, seq)
		}
	}
	return acked
}

func TestCrashRecoveryGroupCommit(t *testing.T) {
	if os.Getenv("CHAOS_GC_CRASH_DIR") != "" {
		return // child run; work happens in the Child test
	}
	if testing.Short() {
		t.Skip("multi-process crash test in -short mode")
	}
	// Three kill points: early (first cohorts), mid-stream, and deep —
	// different batch phases at the moment the power cord is pulled.
	for _, killAfter := range []int{25, 120, 400} {
		t.Run(fmt.Sprintf("killAfter=%d", killAfter), func(t *testing.T) {
			gcCrashRound(t, killAfter)
		})
	}
}

func gcCrashRound(t *testing.T, killAfter int) {
	dir := t.TempDir()
	p, err := StartProc(os.Args[0],
		[]string{"-test.run=^TestCrashRecoveryGroupCommitChild$"},
		[]string{"CHAOS_GC_CRASH_DIR=" + dir})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := AwaitFile(filepath.Join(dir, "ready"), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for len(gcReadAcks(t, dir)) < killAfter {
		if time.Now().After(deadline) {
			t.Fatalf("child acknowledged %d appends in 30s; want >= %d",
				len(gcReadAcks(t, dir)), killAfter)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Kill(); err != nil {
		t.Fatal(err)
	}

	acked := gcReadAcks(t, dir)
	_, rec, err := ledger.Open(ledger.Options{
		Dir:   filepath.Join(dir, "ledger"),
		Fsync: ledger.FsyncAlways,
	})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}

	// The WAL must be a dense prefix 1..n: a cohort is one write, so a
	// surviving batch-mate implies every earlier record survived too.
	for i, e := range rec.Entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("WAL not dense: entry %d has seq %d", i, e.Seq)
		}
	}
	last := uint64(len(rec.Entries))

	// Nothing acknowledged may be lost. Density reduces presence to a
	// bound check.
	maxAcked := uint64(0)
	for _, seq := range acked {
		if seq > last {
			t.Fatalf("acknowledged seq %d lost: recovered WAL ends at %d (torn=%v)",
				seq, last, rec.TornTail)
		}
		if seq > maxAcked {
			maxAcked = seq
		}
	}

	// Per-worker payloads must also form dense prefixes: worker w only
	// appends record i after record i-1 returned (was durable), so a
	// recovered "w3-17" implies "w3-0".."w3-16" are all present.
	next := make([]int, gcCrashWorkers)
	for _, e := range rec.Entries {
		var w, i int
		if _, err := fmt.Sscanf(string(e.Data), "w%d-%d", &w, &i); err != nil {
			t.Fatalf("seq %d: unparseable payload %q", e.Seq, e.Data)
		}
		if i != next[w] {
			t.Fatalf("worker %d: recovered append %d out of order (want %d) at seq %d",
				w, i, next[w], e.Seq)
		}
		next[w]++
	}
	t.Logf("killAfter=%d: recovered %d records (%d acknowledged, max acked seq %d, torn=%v)",
		killAfter, last, len(acked), maxAcked, rec.TornTail)
}
