package endserver

import (
	"errors"
	"testing"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/restrict"
)

// TestForUseByGroupRestriction exercises §7.2: a capability restricted
// for-use-by-group is only exercisable alongside a group proxy proving
// the membership — even though the ACL itself names no group.
func TestForUseByGroupRestriction(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))

	cap := w.grant(alice, restrict.Set{
		restrict.ForUseByGroup{Groups: []principal.Global{staff}},
	})
	staffProxy := w.grant(grpSv, restrict.Set{
		restrict.GroupMembership{Groups: []principal.Global{staff}},
		restrict.Grantee{Principals: []principal.ID{bob}},
	})

	// With both the capability and the group proxy: granted.
	ch, err := w.srv.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	capPres, err := cap.Present(ch, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	d, err := w.srv.Authorize(&Request{
		Object: w.motd, Op: "read",
		Identities: []principal.ID{bob},
		Proxies:    []*proxy.Presentation{capPres, staffProxy.PresentDelegate()},
		Challenge:  ch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Groups) != 1 || d.Groups[0] != staff {
		t.Fatalf("credited groups = %v", d.Groups)
	}

	// Without the group proxy the capability alone is refused.
	ch2, _ := w.srv.Challenge()
	capPres2, _ := cap.Present(ch2, fileSv)
	if _, err := w.srv.Authorize(&Request{
		Object: w.motd, Op: "read",
		Identities: []principal.ID{bob},
		Proxies:    []*proxy.Presentation{capPres2},
		Challenge:  ch2,
	}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

// TestSeparationOfPrivilege exercises §7.2's two-group requirement:
// "One way to implement separation of privilege is to require assertion
// of membership in multiple groups with disjoint members."
func TestSeparationOfPrivilege(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL("/launch", acl.New(acl.PrincipalEntry(alice, "launch")))

	cap := w.grant(alice, restrict.Set{
		restrict.ForUseByGroup{Groups: []principal.Global{staff, admin}, Needed: 2},
	})
	staffProxy := w.grant(grpSv, restrict.Set{
		restrict.GroupMembership{Groups: []principal.Global{staff}},
		restrict.Grantee{Principals: []principal.ID{bob}},
	})
	adminProxy := w.grant(grpSv, restrict.Set{
		restrict.GroupMembership{Groups: []principal.Global{admin}},
		restrict.Grantee{Principals: []principal.ID{bob}},
	})

	// One group is not enough.
	ch, _ := w.srv.Challenge()
	capPres, _ := cap.Present(ch, fileSv)
	if _, err := w.srv.Authorize(&Request{
		Object: "/launch", Op: "launch",
		Identities: []principal.ID{bob},
		Proxies:    []*proxy.Presentation{capPres, staffProxy.PresentDelegate()},
		Challenge:  ch,
	}); !errors.Is(err, ErrDenied) {
		t.Fatalf("single group sufficed: %v", err)
	}

	// Both groups together satisfy the separation requirement.
	ch2, _ := w.srv.Challenge()
	capPres2, _ := cap.Present(ch2, fileSv)
	if _, err := w.srv.Authorize(&Request{
		Object: "/launch", Op: "launch",
		Identities: []principal.ID{bob},
		Proxies: []*proxy.Presentation{
			capPres2, staffProxy.PresentDelegate(), adminProxy.PresentDelegate(),
		},
		Challenge: ch2,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLimitScopedForUseByGroup nests a for-use-by-group inside a limit
// restriction: enforced only at the named server.
func TestLimitScopedForUseByGroup(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))
	other := principal.New("other/sv", "ISI.EDU")

	// The group requirement applies only at some other server; here it
	// is ignored.
	capOther := w.grant(alice, restrict.Set{restrict.Limit{
		Servers:      []principal.ID{other},
		Restrictions: restrict.Set{restrict.ForUseByGroup{Groups: []principal.Global{staff}}},
	}})
	ch, _ := w.srv.Challenge()
	pres, _ := capOther.Present(ch, fileSv)
	if _, err := w.srv.Authorize(&Request{
		Object: w.motd, Op: "read",
		Proxies: []*proxy.Presentation{pres}, Challenge: ch,
	}); err != nil {
		t.Fatalf("limit for another server enforced here: %v", err)
	}

	// The same restriction scoped to this server is enforced.
	capHere := w.grant(alice, restrict.Set{restrict.Limit{
		Servers:      []principal.ID{fileSv},
		Restrictions: restrict.Set{restrict.ForUseByGroup{Groups: []principal.Global{staff}}},
	}})
	ch2, _ := w.srv.Challenge()
	pres2, _ := capHere.Present(ch2, fileSv)
	if _, err := w.srv.Authorize(&Request{
		Object: w.motd, Op: "read",
		Proxies: []*proxy.Presentation{pres2}, Challenge: ch2,
	}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	// And satisfied by a group proxy.
	staffProxy := w.grant(grpSv, restrict.Set{
		restrict.GroupMembership{Groups: []principal.Global{staff}},
		restrict.Grantee{Principals: []principal.ID{bob}},
	})
	ch3, _ := w.srv.Challenge()
	pres3, _ := capHere.Present(ch3, fileSv)
	if _, err := w.srv.Authorize(&Request{
		Object: w.motd, Op: "read",
		Identities: []principal.ID{bob},
		Proxies:    []*proxy.Presentation{pres3, staffProxy.PresentDelegate()},
		Challenge:  ch3,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupProxyExpiryBlocksCredit verifies that an expired group proxy
// cannot credit memberships.
func TestGroupProxyExpiryBlocksCredit(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.GroupEntry(staff, "read")))
	gp := w.grant(grpSv, restrict.Set{
		restrict.GroupMembership{Groups: []principal.Global{staff}},
		restrict.Grantee{Principals: []principal.ID{bob}},
	})
	w.clk.Advance(2 * time.Hour)
	if _, err := w.srv.Authorize(&Request{
		Object: w.motd, Op: "read",
		Identities: []principal.ID{bob},
		Proxies:    []*proxy.Presentation{gp.PresentDelegate()},
	}); err == nil {
		t.Fatal("expired group proxy credited membership")
	}
}
