package endserver

import (
	"errors"
	"testing"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/clock"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/restrict"
)

var (
	alice  = principal.New("alice", "ISI.EDU")
	bob    = principal.New("bob", "ISI.EDU")
	host1  = principal.New("host/wks1", "ISI.EDU")
	fileSv = principal.New("file/sv1", "ISI.EDU")
	grpSv  = principal.New("groups", "ISI.EDU")
	staff  = principal.NewGlobal(grpSv, "staff")
	admin  = principal.NewGlobal(grpSv, "admin")
)

type world struct {
	t    *testing.T
	clk  *clock.Fake
	dir  *pubkey.Directory
	ids  map[principal.ID]*pubkey.Identity
	srv  *Server
	motd string
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{
		t:    t,
		clk:  clock.NewFake(time.Unix(7_000_000, 0)),
		dir:  pubkey.NewDirectory(),
		ids:  make(map[principal.ID]*pubkey.Identity),
		motd: "/etc/motd",
	}
	for _, id := range []principal.ID{alice, bob, host1, fileSv, grpSv} {
		ident, err := pubkey.NewIdentity(id)
		if err != nil {
			t.Fatal(err)
		}
		w.ids[id] = ident
		w.dir.RegisterIdentity(ident)
	}
	env := &proxy.VerifyEnv{
		ResolveIdentity: w.dir.Resolver(),
		MaxSkew:         time.Minute,
	}
	w.srv = New(fileSv, env, w.clk)
	return w
}

// grant creates a PK proxy from grantor with the given restrictions.
func (w *world) grant(grantor principal.ID, rs restrict.Set) *proxy.Proxy {
	w.t.Helper()
	p, err := proxy.Grant(proxy.GrantParams{
		Grantor:       grantor,
		GrantorSigner: w.ids[grantor].Signer(),
		Restrictions:  rs,
		Lifetime:      time.Hour,
		Mode:          proxy.ModePublicKey,
		Clock:         w.clk,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return p
}

// presentBearer obtains a challenge and builds a bearer presentation.
func (w *world) presentBearer(p *proxy.Proxy) (*proxy.Presentation, []byte) {
	w.t.Helper()
	ch, err := w.srv.Challenge()
	if err != nil {
		w.t.Fatal(err)
	}
	pr, err := p.Present(ch, fileSv)
	if err != nil {
		w.t.Fatal(err)
	}
	return pr, ch
}

func TestDirectIdentityACL(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))

	d, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Identities: []principal.ID{alice}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Via != alice || d.ViaProxy {
		t.Fatalf("decision = %+v", d)
	}
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "write", Identities: []principal.ID{alice}}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Identities: []principal.ID{bob}}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestNoACLDenies(t *testing.T) {
	w := newWorld(t)
	if _, err := w.srv.Authorize(&Request{Object: "/nowhere", Op: "read", Identities: []principal.ID{alice}}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestDefaultACLFallback(t *testing.T) {
	w := newWorld(t)
	w.srv.SetDefaultACL(acl.New(acl.PrincipalEntry(alice, "stat")))
	if _, err := w.srv.Authorize(&Request{Object: "/any/object", Op: "stat", Identities: []principal.ID{alice}}); err != nil {
		t.Fatal(err)
	}
}

func TestCapabilityFlow(t *testing.T) {
	// §3.1: ACL names only alice; alice grants a read capability that
	// bob exercises as a bearer.
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read", "write")))

	cap := w.grant(alice, restrict.Set{restrict.Authorized{Entries: []restrict.AuthorizedEntry{
		{Object: w.motd, Ops: []string{"read"}},
	}}})

	pr, ch := w.presentBearer(cap)
	d, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Proxies: []*proxy.Presentation{pr}, Challenge: ch})
	if err != nil {
		t.Fatal(err)
	}
	if !d.ViaProxy || d.Via != alice {
		t.Fatalf("decision = %+v", d)
	}

	// The capability does not extend to write even though alice could.
	pr2, ch2 := w.presentBearer(cap)
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "write", Proxies: []*proxy.Presentation{pr2}, Challenge: ch2}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestCapabilityRevocationViaACL(t *testing.T) {
	// §3.1: "one can revoke a capability by changing the access rights
	// available to the grantor of the capability."
	w := newWorld(t)
	a := acl.New(acl.PrincipalEntry(alice, "read"))
	w.srv.SetACL(w.motd, a)
	cap := w.grant(alice, nil)

	pr, ch := w.presentBearer(cap)
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Proxies: []*proxy.Presentation{pr}, Challenge: ch}); err != nil {
		t.Fatal(err)
	}

	// Revoke: replace the ACL without alice.
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(bob, "read")))
	pr2, ch2 := w.presentBearer(cap)
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Proxies: []*proxy.Presentation{pr2}, Challenge: ch2}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestBearerChallengeRequiredAndSingleUse(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))
	cap := w.grant(alice, nil)

	// A proof over a challenge the server never issued is rejected.
	bogus := []byte("not-a-real-challenge-from-server")
	pr, err := cap.Present(bogus, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Proxies: []*proxy.Presentation{pr}, Challenge: bogus}); !errors.Is(err, ErrBadChallenge) {
		t.Fatalf("err = %v", err)
	}

	// A consumed challenge cannot be replayed.
	pr2, ch := w.presentBearer(cap)
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Proxies: []*proxy.Presentation{pr2}, Challenge: ch}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Proxies: []*proxy.Presentation{pr2}, Challenge: ch}); !errors.Is(err, ErrBadChallenge) {
		t.Fatalf("replay err = %v", err)
	}

	// Expired challenges are rejected.
	pr3, ch3 := w.presentBearer(cap)
	w.clk.Advance(3 * time.Minute)
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Proxies: []*proxy.Presentation{pr3}, Challenge: ch3}); !errors.Is(err, ErrBadChallenge) {
		t.Fatalf("expired err = %v", err)
	}
}

func TestDelegateProxyNeedsGranteeIdentity(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))
	del := w.grant(alice, restrict.Set{restrict.Grantee{Principals: []principal.ID{bob}}})

	// Bob authenticates directly and presents certificates only.
	pr := del.PresentDelegate()
	d, err := w.srv.Authorize(&Request{
		Object: w.motd, Op: "read",
		Identities: []principal.ID{bob},
		Proxies:    []*proxy.Presentation{pr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Via != alice || !d.ViaProxy {
		t.Fatalf("decision = %+v", d)
	}

	// Without bob's identity the proxy is useless.
	if _, err := w.srv.Authorize(&Request{
		Object: w.motd, Op: "read",
		Identities: []principal.ID{host1},
		Proxies:    []*proxy.Presentation{pr},
	}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupProxyCreditsMembership(t *testing.T) {
	// §3.3: the ACL names a group; the client presents a group proxy
	// from the group server.
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.GroupEntry(staff, "read")))

	groupProxy := w.grant(grpSv, restrict.Set{
		restrict.GroupMembership{Groups: []principal.Global{staff}},
	})
	pr, ch := w.presentBearer(groupProxy)
	d, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Identities: []principal.ID{bob}, Proxies: []*proxy.Presentation{pr}, Challenge: ch})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Groups) != 1 || d.Groups[0] != staff {
		t.Fatalf("credited groups = %v", d.Groups)
	}

	// A proxy limited to a different group does not credit staff.
	adminProxy := w.grant(grpSv, restrict.Set{
		restrict.GroupMembership{Groups: []principal.Global{admin}},
	})
	pr2, ch2 := w.presentBearer(adminProxy)
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Identities: []principal.ID{bob}, Proxies: []*proxy.Presentation{pr2}, Challenge: ch2}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupProxyWithoutMembershipRestrictionAssertsAll(t *testing.T) {
	// §7.6: without the restriction, the grantee is considered a member
	// of all groups maintained by that group server.
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.GroupEntry(admin, "read")))
	anyGroup := w.grant(grpSv, nil)
	pr, ch := w.presentBearer(anyGroup)
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Identities: []principal.ID{bob}, Proxies: []*proxy.Presentation{pr}, Challenge: ch}); err != nil {
		t.Fatal(err)
	}
}

func TestCompoundPrincipalEntry(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL("/launch", acl.New(acl.Entry{
		Subject: acl.Subject{Principals: principal.NewCompound(alice, host1)},
		Ops:     []string{"launch"},
	}))
	if _, err := w.srv.Authorize(&Request{Object: "/launch", Op: "launch", Identities: []principal.ID{alice}}); !errors.Is(err, ErrDenied) {
		t.Fatal("single identity satisfied compound entry")
	}
	if _, err := w.srv.Authorize(&Request{Object: "/launch", Op: "launch", Identities: []principal.ID{alice, host1}}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryRestrictionsEnforced(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL("/printer", acl.New(acl.Entry{
		Subject:      acl.Subject{Principals: principal.NewCompound(alice)},
		Ops:          []string{"print"},
		Restrictions: restrict.Set{restrict.Quota{Currency: "pages", Limit: 10}},
	}))
	if _, err := w.srv.Authorize(&Request{
		Object: "/printer", Op: "print",
		Identities: []principal.ID{alice},
		Amounts:    map[string]int64{"pages": 5},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.srv.Authorize(&Request{
		Object: "/printer", Op: "print",
		Identities: []principal.ID{alice},
		Amounts:    map[string]int64{"pages": 50},
	}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestProxyRestrictionsComposeWithEntryRestrictions(t *testing.T) {
	// The grantor's entry allows 100 pages; the proxy narrows to 3.
	w := newWorld(t)
	w.srv.SetACL("/printer", acl.New(acl.Entry{
		Subject:      acl.Subject{Principals: principal.NewCompound(alice)},
		Ops:          []string{"print"},
		Restrictions: restrict.Set{restrict.Quota{Currency: "pages", Limit: 100}},
	}))
	capProxy := w.grant(alice, restrict.Set{restrict.Quota{Currency: "pages", Limit: 3}})

	pr, ch := w.presentBearer(capProxy)
	if _, err := w.srv.Authorize(&Request{
		Object: "/printer", Op: "print",
		Proxies: []*proxy.Presentation{pr}, Challenge: ch,
		Amounts: map[string]int64{"pages": 2},
	}); err != nil {
		t.Fatal(err)
	}
	pr2, ch2 := w.presentBearer(capProxy)
	if _, err := w.srv.Authorize(&Request{
		Object: "/printer", Op: "print",
		Proxies: []*proxy.Presentation{pr2}, Challenge: ch2,
		Amounts: map[string]int64{"pages": 50}, // within entry, beyond proxy
	}); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestCascadedProxyTrailReported(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))
	del := w.grant(alice, restrict.Set{restrict.Grantee{Principals: []principal.ID{bob}}})
	del2, err := del.CascadeDelegate(bob, w.ids[bob].Signer(), proxy.CascadeParams{
		Added:    restrict.Set{restrict.Grantee{Principals: []principal.ID{host1}}},
		Lifetime: time.Hour,
		Mode:     proxy.ModePublicKey,
		Clock:    w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := del2.PresentDelegate()
	d, err := w.srv.Authorize(&Request{
		Object: w.motd, Op: "read",
		Identities: []principal.ID{bob, host1},
		Proxies:    []*proxy.Presentation{pr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Trail) != 1 || d.Trail[0] != bob {
		t.Fatalf("trail = %v", d.Trail)
	}
}

func TestExpiredProxyRejected(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))
	cap := w.grant(alice, nil)
	pr, ch := w.presentBearer(cap)
	_ = pr
	_ = ch
	w.clk.Advance(2 * time.Hour)
	ch2, err := w.srv.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := cap.Present(ch2, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Proxies: []*proxy.Presentation{pr2}, Challenge: ch2}); err == nil {
		t.Fatal("expired proxy accepted")
	}
}

func TestConstantTimeEqual(t *testing.T) {
	if !ConstantTimeEqual([]byte("abc"), []byte("abc")) {
		t.Fatal("equal compared unequal")
	}
	if ConstantTimeEqual([]byte("abc"), []byte("abd")) || ConstantTimeEqual([]byte("a"), []byte("ab")) {
		t.Fatal("unequal compared equal")
	}
}
