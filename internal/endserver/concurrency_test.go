package endserver

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/restrict"
)

// TestNewDoesNotMutateCallerEnv is the regression test for the shared-
// env bug: New wrote its server identity through the caller's
// *proxy.VerifyEnv, so two servers built from one env both verified as
// the LAST-created server — bearer proofs bound to the first server
// (popBytes covers the server identity) stopped verifying.
func TestNewDoesNotMutateCallerEnv(t *testing.T) {
	w := newWorld(t)
	env := &proxy.VerifyEnv{
		ResolveIdentity: w.dir.Resolver(),
		MaxSkew:         time.Minute,
	}
	mailSv := principal.New("mail/sv1", "ISI.EDU")

	first := New(fileSv, env, w.clk)
	second := New(mailSv, env, w.clk)

	if env.Server != (principal.ID{}) {
		t.Fatalf("caller env mutated: Server = %v", env.Server)
	}

	// Behavioral half: a bearer presentation bound to the FIRST server
	// must still authorize there after the second server was created.
	first.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))
	second.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))
	p := w.grant(alice, restrict.Set{})

	ch, err := first.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := p.Present(ch, fileSv)
	if err != nil {
		t.Fatal(err)
	}
	d, err := first.Authorize(&Request{
		Object: w.motd, Op: "read",
		Proxies: []*proxy.Presentation{pr}, Challenge: ch,
	})
	if err != nil {
		t.Fatalf("first server rejected its own presentation: %v", err)
	}
	if d.Via != alice || !d.ViaProxy {
		t.Fatalf("decision = %+v", d)
	}

	// And the proof is NOT transferable to the second server (it would
	// be if both shared one identity through the aliased env).
	ch2, err := second.Challenge()
	if err != nil {
		t.Fatal(err)
	}
	pr2 := &proxy.Presentation{Certs: pr.Certs, Challenge: ch2, Proof: pr.Proof}
	if _, err := second.Authorize(&Request{
		Object: w.motd, Op: "read",
		Proxies: []*proxy.Presentation{pr2}, Challenge: ch2,
	}); !errors.Is(err, proxy.ErrBadProof) {
		t.Fatalf("replayed proof on second server: err = %v, want proxy.ErrBadProof", err)
	}
}

// TestConcurrentChallengeLifecycle hammers Challenge and
// consumeChallenge (via bearer Authorize) from many goroutines; run
// under -race this covers the challenge map and its opportunistic
// cleanup.
func TestConcurrentChallengeLifecycle(t *testing.T) {
	w := newWorld(t)
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))
	p := w.grant(alice, restrict.Set{})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ch, err := w.srv.Challenge()
				if err != nil {
					t.Errorf("challenge: %v", err)
					return
				}
				if i%3 == 0 {
					continue // fetched but never used; cleanup's job
				}
				pr, err := p.Present(ch, fileSv)
				if err != nil {
					t.Errorf("present: %v", err)
					return
				}
				if _, err := w.srv.Authorize(&Request{
					Object: w.motd, Op: "read",
					Proxies: []*proxy.Presentation{pr}, Challenge: ch,
				}); err != nil {
					t.Errorf("authorize: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestParallelAuthorize drives one server from many goroutines mixing
// direct-identity and bearer-proxy requests over a shared chain cache;
// under -race this covers the ACL map, replay registry, challenge map,
// and ChainCache together.
func TestParallelAuthorize(t *testing.T) {
	w := newWorld(t)
	w.srv.SetChainCache(proxy.NewChainCache(64))
	w.srv.SetACL(w.motd, acl.New(
		acl.PrincipalEntry(alice, "read"),
		acl.PrincipalEntry(bob, "read"),
	))
	p := w.grant(alice, restrict.Set{})

	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g%2 == 0 {
					if _, err := w.srv.Authorize(&Request{
						Object: w.motd, Op: "read",
						Identities: []principal.ID{bob},
					}); err != nil {
						t.Errorf("direct authorize: %v", err)
						return
					}
					continue
				}
				ch, err := w.srv.Challenge()
				if err != nil {
					t.Errorf("challenge: %v", err)
					return
				}
				pr, err := p.Present(ch, fileSv)
				if err != nil {
					t.Errorf("present: %v", err)
					return
				}
				if _, err := w.srv.Authorize(&Request{
					Object: w.motd, Op: "read",
					Proxies: []*proxy.Presentation{pr}, Challenge: ch,
				}); err != nil {
					t.Errorf("proxy authorize: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestExpiredCertRejectedOnWarmCacheHit: an end-server with a warm
// chain cache must still refuse the chain once it expires —
// revocation-by-expiry (§3.1) cannot be weakened by caching.
func TestExpiredCertRejectedOnWarmCacheHit(t *testing.T) {
	w := newWorld(t)
	w.srv.SetChainCache(proxy.NewChainCache(0))
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))
	p := w.grant(alice, restrict.Set{}) // 1h lifetime

	authorize := func() error {
		ch, err := w.srv.Challenge()
		if err != nil {
			t.Fatal(err)
		}
		pr, err := p.Present(ch, fileSv)
		if err != nil {
			t.Fatal(err)
		}
		_, err = w.srv.Authorize(&Request{
			Object: w.motd, Op: "read",
			Proxies: []*proxy.Presentation{pr}, Challenge: ch,
		})
		return err
	}

	// Warm the cache, then confirm a second authorize hits it.
	if err := authorize(); err != nil {
		t.Fatal(err)
	}
	if err := authorize(); err != nil {
		t.Fatal(err)
	}

	w.clk.Advance(2 * time.Hour)
	if err := authorize(); !errors.Is(err, proxy.ErrExpired) {
		t.Fatalf("expired chain on warm cache: err = %v, want proxy.ErrExpired", err)
	}
}

// TestGroupListDeterministic: Decision.Groups comes out sorted, not in
// map order.
func TestGroupListDeterministic(t *testing.T) {
	m := map[principal.Global]bool{}
	var want []string
	for i := 0; i < 8; i++ {
		g := principal.NewGlobal(grpSv, fmt.Sprintf("g%02d", i))
		m[g] = true
	}
	for i := 0; i < 8; i++ {
		want = append(want, fmt.Sprintf("g%02d", i))
	}
	for trial := 0; trial < 4; trial++ {
		got := groupList(m)
		if len(got) != len(want) {
			t.Fatalf("len = %d", len(got))
		}
		for i, g := range got {
			if g.Name != want[i] {
				t.Fatalf("trial %d: order %v", trial, got)
			}
		}
	}
}
