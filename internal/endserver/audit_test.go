package endserver

import (
	"testing"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/audit"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/restrict"
)

func TestAuditLogRecordsDecisions(t *testing.T) {
	w := newWorld(t)
	log := audit.NewLog(16)
	w.srv.SetAuditLog(log)
	w.srv.SetACL(w.motd, acl.New(acl.PrincipalEntry(alice, "read")))

	// A granted direct request.
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "read", Identities: []principal.ID{alice}}); err != nil {
		t.Fatal(err)
	}
	// A denied request.
	if _, err := w.srv.Authorize(&Request{Object: w.motd, Op: "write", Identities: []principal.ID{alice}}); err == nil {
		t.Fatal("expected denial")
	}
	// A proxy-conveyed request with a delegation trail.
	del := w.grant(alice, restrict.Set{restrict.Grantee{Principals: []principal.ID{bob}}})
	del2, err := del.CascadeDelegate(bob, w.ids[bob].Signer(), proxy.CascadeParams{
		Added:    restrict.Set{restrict.Grantee{Principals: []principal.ID{host1}}},
		Lifetime: time.Hour,
		Mode:     proxy.ModePublicKey,
		Clock:    w.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.srv.Authorize(&Request{
		Object: w.motd, Op: "read",
		Identities: []principal.ID{bob, host1},
		Proxies:    []*proxy.Presentation{del2.PresentDelegate()},
	}); err != nil {
		t.Fatal(err)
	}

	recs := log.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Outcome != audit.OutcomeGranted || !recs[0].Grantor.IsZero() {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[1].Outcome != audit.OutcomeDenied || recs[1].Reason == "" {
		t.Fatalf("rec1 = %+v", recs[1])
	}
	if recs[2].Grantor != alice || len(recs[2].Trail) != 1 || recs[2].Trail[0] != bob {
		t.Fatalf("rec2 = %+v", recs[2])
	}

	// The audit-trail query: which decisions involved bob as an
	// intermediate?
	if got := log.ByIntermediate(bob); len(got) != 1 {
		t.Fatalf("by intermediate = %d", len(got))
	}
}
