// Package endserver implements the application end-server side of the
// proxy model: it verifies presented proxies, consults per-object
// access-control-lists, credits group memberships from group proxies,
// and evaluates accumulated restrictions — the ACL/capability
// combination of §3.5.
//
// "Application servers would be designed to base authorization on a
// local access-control-list. Where a capability-based approach is
// required, the access-control-list would contain a single entry naming
// the principal ... authorized to grant capabilities for server
// operations."
package endserver

import (
	"context"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"proxykit/internal/acl"
	"proxykit/internal/audit"
	"proxykit/internal/clock"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/replay"
	"proxykit/internal/restrict"
)

// Errors returned by authorization.
var (
	ErrDenied       = errors.New("endserver: request denied")
	ErrBadChallenge = errors.New("endserver: unknown or expired challenge")
)

// challengeLifetime bounds how long an issued challenge may be used.
const challengeLifetime = 2 * time.Minute

// Server authorizes requests against per-object ACLs using direct
// identities and presented proxies.
type Server struct {
	// ID is the server's principal identity.
	ID principal.ID

	env      *proxy.VerifyEnv
	clk      clock.Clock
	registry *replay.Cache

	mu         sync.Mutex
	objects    map[string]*acl.ACL
	defaultACL *acl.ACL
	challenges map[string]time.Time
	journal    *audit.Journal
}

// New creates a Server with the supplied proxy verification environment.
// The environment is copied — New never mutates the caller's env, so
// one env can safely parameterize several servers — and the copy's
// Server and Clock fields are set from the arguments.
func New(id principal.ID, env *proxy.VerifyEnv, clk clock.Clock) *Server {
	if clk == nil {
		clk = clock.System{}
	}
	e := *env
	e.Server = id
	if e.Clock == nil {
		e.Clock = clk
	}
	return &Server{
		ID:         id,
		env:        &e,
		clk:        clk,
		registry:   replay.New(clk),
		objects:    make(map[string]*acl.ACL),
		challenges: make(map[string]time.Time),
	}
}

// SetChainCache installs a verified-chain cache on the server's
// verification environment: byte-identical pure public-key chains skip
// signature re-verification on repeat presentations, while validity
// windows, proof-of-possession, replay registration, and ACL
// evaluation still run on every request. Call during setup, before the
// server starts taking requests; nil disables caching.
func (s *Server) SetChainCache(cc *proxy.ChainCache) {
	s.env.Cache = cc
}

// SetAuditLog attaches an audit log; every Authorize decision is
// recorded, preserving the delegation trail of §3.4. The log's
// underlying journal becomes the server's journal.
func (s *Server) SetAuditLog(l *audit.Log) {
	s.SetJournal(l.Journal())
}

// SetJournal attaches a hash-chained audit journal; every Authorize
// decision is sealed into its chain.
func (s *Server) SetJournal(j *audit.Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// auditDecision records one decision if a journal is attached.
func (s *Server) auditDecision(ctx context.Context, req *Request, d *Decision, err error) {
	s.mu.Lock()
	j := s.journal
	s.mu.Unlock()
	if j == nil {
		return
	}
	rec := audit.Record{
		Time:       s.clk.Now(),
		Kind:       audit.KindAuthorize,
		Server:     s.ID,
		TraceID:    obs.TraceIDFrom(ctx),
		Presenters: req.Identities,
		Object:     req.Object,
		Op:         req.Op,
	}
	if err != nil {
		rec.Outcome = audit.OutcomeDenied
		rec.Reason = err.Error()
	} else {
		rec.Outcome = audit.OutcomeGranted
		if d.ViaProxy {
			rec.Grantor = d.Via
		}
		rec.Trail = d.Trail
	}
	j.Append(rec)
}

// SetACL installs the ACL for an object.
func (s *Server) SetACL(object string, a *acl.ACL) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[object] = a
}

// SetDefaultACL installs the ACL used for objects with no specific list.
func (s *Server) SetDefaultACL(a *acl.ACL) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.defaultACL = a
}

// aclFor returns the effective ACL for object.
func (s *Server) aclFor(object string) *acl.ACL {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.objects[object]; ok {
		return a
	}
	return s.defaultACL
}

// Hints returns the subjects of the ACL entries protecting object — the
// "a priori knowledge about the authorization credentials needed"
// (message 0 of Fig. 3), which the paper says "might be ... obtained
// from the end-server directly". A client reads the hints to learn
// which principals, authorization servers, or groups can convey access.
func (s *Server) Hints(object string) []acl.Subject {
	a := s.aclFor(object)
	if a == nil {
		return nil
	}
	entries := a.Entries()
	out := make([]acl.Subject, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Subject)
	}
	return out
}

// Registry exposes the server's accept-once registry.
func (s *Server) Registry() restrict.AcceptOnceRegistry { return s.registry }

// Challenge issues a fresh single-use challenge for bearer-proxy
// presentation.
func (s *Server) Challenge() ([]byte, error) {
	ch, err := proxy.NewChallenge()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clk.Now()
	// Expire stale challenges here too, so clients that fetch challenges
	// and never use them cannot grow the map without bound.
	for k, e := range s.challenges {
		if now.After(e) {
			delete(s.challenges, k)
		}
	}
	s.challenges[hex.EncodeToString(ch)] = now.Add(challengeLifetime)
	mChallengesIssued.Inc()
	return ch, nil
}

// consumeChallenge validates and retires a challenge.
func (s *Server) consumeChallenge(ch []byte) error {
	key := hex.EncodeToString(ch)
	s.mu.Lock()
	defer s.mu.Unlock()
	exp, ok := s.challenges[key]
	if !ok || s.clk.Now().After(exp) {
		mChallengesConsumed.With("rejected").Inc()
		return ErrBadChallenge
	}
	mChallengesConsumed.With("ok").Inc()
	delete(s.challenges, key)
	now := s.clk.Now()
	for k, e := range s.challenges { // opportunistic cleanup
		if now.After(e) {
			delete(s.challenges, k)
		}
	}
	return nil
}

// Request is one authorization question put to the server.
type Request struct {
	// Object and Op name the requested action.
	Object string
	Op     string
	// Identities are principals authenticated directly by the
	// underlying authentication substrate.
	Identities []principal.ID
	// Proxies are presented proxy chains: capabilities, authorization
	// proxies, and group proxies. Bearer presentations must carry a
	// proof over Challenge.
	Proxies []*proxy.Presentation
	// Challenge is the server-issued challenge the bearer proofs cover.
	Challenge []byte
	// Amounts is the resource consumption requested per currency.
	Amounts map[string]int64
}

// Decision reports how a request was authorized.
type Decision struct {
	// Via is the acting principal whose ACL entry matched — a direct
	// identity or a proxy grantor.
	Via principal.ID
	// ViaProxy reports whether a proxy conveyed the rights.
	ViaProxy bool
	// Entry is the matching ACL entry.
	Entry acl.Entry
	// Trail is the delegate-cascade audit trail, when a proxy was used.
	Trail []principal.ID
	// Groups lists memberships credited during the decision.
	Groups []principal.Global
}

// Authorize evaluates a request. It verifies every presented proxy,
// credits group memberships lazily against the object's ACL needs, then
// searches for an authorized acting principal: each direct identity and
// each proxy grantor in turn. The matched entry's restrictions and, for
// a proxy path, the proxy's accumulated restrictions must all pass. The
// decision is recorded in the attached audit journal, if any.
func (s *Server) Authorize(req *Request) (*Decision, error) {
	return s.AuthorizeCtx(context.Background(), req)
}

// AuthorizeCtx is Authorize with a request context; the context's
// trace ID (obs.TraceFrom) is stamped onto the audit record, joining
// the decision to the RPC span that carried it.
func (s *Server) AuthorizeCtx(ctx context.Context, req *Request) (*Decision, error) {
	d, err := s.authorize(ctx, req)
	if err != nil {
		mDecisions.With("denied").Inc()
	} else {
		mDecisions.With("granted").Inc()
	}
	s.auditDecision(ctx, req, d, err)
	return d, err
}

func (s *Server) authorize(ctx context.Context, req *Request) (*Decision, error) {
	a := s.aclFor(req.Object)
	if a == nil {
		return nil, fmt.Errorf("%w: no ACL for object %q", ErrDenied, req.Object)
	}

	// Verify presentations once. Bearer presentations consume the
	// challenge (proof-of-possession, §7.1).
	verified := make([]*proxy.Verified, 0, len(req.Proxies))
	challengeUsed := false
	for i, pr := range req.Proxies {
		if pr.Proof != nil && !challengeUsed {
			if err := s.consumeChallenge(req.Challenge); err != nil {
				return nil, err
			}
			challengeUsed = true
		}
		v, err := s.verifyPresentation(ctx, pr, req.Challenge)
		if err != nil {
			return nil, fmt.Errorf("proxy %d: %w", i, err)
		}
		verified = append(verified, v)
	}

	// Determine which groups the ACL could need and try to credit them
	// from group proxies.
	groups := s.creditGroups(a, req, verified)

	// Try direct identities first (local autonomy, §3.5) ...
	baseCtx := func() *restrict.Context {
		return &restrict.Context{
			Server:           s.ID,
			Object:           req.Object,
			Operation:        req.Op,
			ClientIdentities: req.Identities,
			VerifiedGroups:   groups,
			Amounts:          req.Amounts,
			Now:              s.clk.Now(),
			AcceptOnce:       s.registry,
		}
	}
	// Restriction denials explain more than ACL misses, so they take
	// precedence in the reported error.
	var restrictionErr, aclErr error
	if len(req.Identities) > 0 {
		entry, err := a.Match(acl.Query{Op: req.Op, Identities: req.Identities, Groups: groups})
		if err == nil {
			ctx := baseCtx()
			ctx.Expires = s.clk.Now().Add(challengeLifetime) // direct requests have no chain expiry
			if rerr := entry.Restrictions.Check(ctx); rerr == nil {
				return &Decision{Via: req.Identities[0], Entry: entry, Groups: groupList(groups)}, nil
			} else if restrictionErr == nil {
				restrictionErr = rerr
			}
		} else {
			aclErr = err
		}
	}

	// ... then each proxy's grantor.
	for i, v := range verified {
		entry, err := a.Match(acl.Query{Op: req.Op, Identities: append([]principal.ID{v.Grantor}, req.Identities...), Groups: groups})
		if err != nil {
			if aclErr == nil {
				aclErr = err
			}
			continue
		}
		ctx := baseCtx()
		if err := v.Authorize(ctx); err != nil {
			if restrictionErr == nil {
				restrictionErr = fmt.Errorf("proxy %d: %w", i, err)
			}
			continue
		}
		if err := entry.Restrictions.Check(ctx); err != nil {
			if restrictionErr == nil {
				restrictionErr = fmt.Errorf("proxy %d entry: %w", i, err)
			}
			continue
		}
		mChainLength.Observe(float64(v.ChainLen))
		return &Decision{
			Via:      v.Grantor,
			ViaProxy: true,
			Entry:    entry,
			Trail:    v.Trail,
			Groups:   groupList(groups),
		}, nil
	}
	cause := restrictionErr
	if cause == nil {
		cause = aclErr
	}
	if cause == nil {
		cause = acl.ErrDenied
	}
	return nil, fmt.Errorf("%w: %v", ErrDenied, cause)
}

// verifyPresentation validates one presented proxy and records a
// cache-aware "verify" span: the span's note distinguishes chains
// served from the verified-chain cache from fully verified ones, so
// /traces shows where Authorize latency went.
func (s *Server) verifyPresentation(ctx context.Context, pr *proxy.Presentation, challenge []byte) (*proxy.Verified, error) {
	tr, _ := obs.TraceFrom(ctx)
	start := time.Now()
	v, err := s.env.VerifyPresentation(pr, challenge)
	span := obs.Span{Trace: tr, Kind: "verify", Method: "proxy.chain", Start: start, Duration: time.Since(start)}
	switch {
	case err != nil:
		span.Err = err.Error()
	case v.Cached:
		span.Note = "chain-cache hit"
	case s.env.Cache != nil:
		span.Note = "chain-cache miss"
	}
	obs.Spans.Record(span)
	return v, err
}

// creditGroups determines which group memberships the presented group
// proxies can assert. Needed groups come from two places: groups named
// in the object's ACL (§3.3) and groups demanded by for-use-by-group
// restrictions in the presented proxies themselves (§7.2). A proxy from
// a group server with no group-membership restriction asserts every
// group on that server (§7.6).
func (s *Server) creditGroups(a *acl.ACL, req *Request, verified []*proxy.Verified) map[principal.Global]bool {
	needed := make(map[principal.Global]bool)
	for _, e := range a.Entries() {
		for _, g := range e.Subject.Groups {
			needed[g] = true
		}
	}
	for _, v := range verified {
		collectNeededGroups(v.Restrictions, s.ID, needed)
	}
	out := make(map[principal.Global]bool)
	if len(needed) == 0 {
		return out
	}
	for g := range needed {
		for _, v := range verified {
			if v.Grantor != g.Server {
				continue
			}
			ctx := &restrict.Context{
				Server:           s.ID,
				Object:           req.Object,
				Operation:        req.Op,
				ClientIdentities: req.Identities,
				AssertedGroups:   []principal.Global{g},
				Amounts:          req.Amounts,
				Now:              s.clk.Now(),
				AcceptOnce:       s.registry,
			}
			if err := v.Authorize(ctx); err == nil {
				out[g] = true
				break
			}
		}
	}
	return out
}

// collectNeededGroups gathers the groups named by for-use-by-group
// restrictions, descending into limit restrictions that apply to this
// server.
func collectNeededGroups(rs restrict.Set, server principal.ID, out map[principal.Global]bool) {
	for _, r := range rs {
		switch r := r.(type) {
		case restrict.ForUseByGroup:
			for _, g := range r.Groups {
				out[g] = true
			}
		case restrict.Limit:
			for _, sv := range r.Servers {
				if sv == server {
					collectNeededGroups(r.Restrictions, server, out)
					break
				}
			}
		}
	}
}

// groupList flattens a credited-group set in sorted order, so
// Decision.Groups (and the audit records built from it) are
// deterministic rather than jittering with map iteration.
func groupList(m map[principal.Global]bool) []principal.Global {
	out := make([]principal.Global, 0, len(m))
	for g := range m {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Server != out[j].Server {
			return out[i].Server.Less(out[j].Server)
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ConstantTimeEqual compares secrets without leaking length-prefix
// timing; exported for service implementations built on this package.
func ConstantTimeEqual(a, b []byte) bool {
	return len(a) == len(b) && subtle.ConstantTimeCompare(a, b) == 1
}
