package endserver

import "proxykit/internal/obs"

// Authorization metrics: decision outcomes, the verified
// cascade-chain-length distribution (§3.4 — how deep delegation runs
// in practice), and the bearer-challenge lifecycle (§7.1).
var (
	mDecisions = obs.Default.NewCounterVec("proxykit_authz_decisions_total",
		"Authorization decisions by end-servers, by outcome (granted, denied).", "outcome")
	mChainLength = obs.Default.NewHistogram("proxykit_authz_chain_length",
		"Certificate-chain length of the proxy that conveyed a granted decision.",
		obs.DefChainBuckets)
	mChallengesIssued = obs.Default.NewCounter("proxykit_authz_challenges_issued_total",
		"Bearer-presentation challenges issued.")
	mChallengesConsumed = obs.Default.NewCounterVec("proxykit_authz_challenges_consumed_total",
		"Challenge consumption attempts, by outcome (ok, rejected).", "outcome")
)
