package gateway

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"proxykit/internal/audit"
	"proxykit/internal/principal"
	"proxykit/internal/transport"
)

func TestRedactToken(t *testing.T) {
	const tok = "s3cret-token-value"
	ref := RedactToken(tok)
	if !strings.HasPrefix(ref, "tok-") || len(ref) != len("tok-")+8 {
		t.Fatalf("RedactToken = %q, want tok-<8 hex digits>", ref)
	}
	if strings.Contains(ref, tok) || strings.Contains(tok, strings.TrimPrefix(ref, "tok-")) {
		t.Fatalf("RedactToken %q leaks the secret", ref)
	}
	if RedactToken(tok) != ref {
		t.Fatal("RedactToken is not stable")
	}
	if RedactToken("other") == ref {
		t.Fatal("distinct tokens share a reference")
	}
}

func TestAuthenticatorLookup(t *testing.T) {
	cfg := &MappingConfig{Tokens: []TokenEntry{
		{Token: "alpha", Subject: "a", Principal: "a@X.ORG"},
		{Token: "bravo", Subject: "b", Principal: "b@X.ORG"},
	}}
	a := newAuthenticator(cfg)
	if e, ok := a.lookup("bravo"); !ok || e.Subject != "b" {
		t.Fatalf("lookup(bravo) = (%+v, %v)", e, ok)
	}
	if _, ok := a.lookup("charlie"); ok {
		t.Fatal("unknown token matched")
	}
	// A prefix of a real token must not match.
	if _, ok := a.lookup("alph"); ok {
		t.Fatal("prefix matched")
	}
	if _, ok := a.lookup(""); ok {
		t.Fatal("empty token matched")
	}
}

// newLoggedGateway builds a Gateway whose slog output is captured in
// the returned buffer, backed by an in-memory transport (no downstream
// service is actually called by the routes these tests drive).
func newLoggedGateway(t *testing.T, cfg *MappingConfig) (*Gateway, *bytes.Buffer, *audit.Journal) {
	t.Helper()
	net := transport.NewNetwork()
	for _, name := range []string{"authz", "acct", "end"} {
		net.Register(name, transport.NewMux())
	}
	var buf bytes.Buffer
	journal, err := audit.New(audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Options{
		StateDir:    t.TempDir(),
		ID:          principal.New("gateway", "TEST.ORG"),
		Mapping:     cfg,
		AuthzClient: net.MustDial("authz"),
		AcctClient:  net.MustDial("acct"),
		EndClient:   net.MustDial("end"),
		EndServerID: principal.New("files", "TEST.ORG"),
		BankID:      principal.New("bank", "TEST.ORG"),
		Journal:     journal,
		Logger:      slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, &buf, journal
}

// TestTokenNeverLoggedOrAudited is the redaction regression test: it
// drives authenticated requests, a bad token, and a refused
// impersonation through the HTTP handler, then greps everything the
// gateway wrote — log output and the full audit journal — for the raw
// secrets. Only RedactToken references may appear.
func TestTokenNeverLoggedOrAudited(t *testing.T) {
	const (
		goodToken = "super-secret-bearer-3492"
		frontTok  = "front-end-secret-7781"
	)
	cfg := &MappingConfig{
		Tokens: []TokenEntry{
			{Token: goodToken, Subject: "ci", Principal: "ci@TEST.ORG", Admin: true},
			{Token: frontTok, Subject: "web", Principal: "web@TEST.ORG"}, // Impersonate: false
		},
		Impersonation: []ImpersonationRule{{SubjectSuffix: "@corp.example.com", Realm: "TEST.ORG"}},
	}
	g, buf, journal := newLoggedGateway(t, cfg)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	do := func(token, impersonate string, wantCode int) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/session", nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		if impersonate != "" {
			req.Header.Set("X-Impersonate-Subject", impersonate)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantCode {
			t.Fatalf("GET /v1/session token=%s imp=%q: code = %d, want %d (%s)",
				RedactToken(token), impersonate, resp.StatusCode, wantCode, body.String())
		}
		for _, secret := range []string{goodToken, frontTok} {
			if bytes.Contains(body.Bytes(), []byte(secret)) {
				t.Fatalf("response body leaks a bearer token: %s", body.String())
			}
		}
	}

	do(goodToken, "", http.StatusOK)
	do("wrong-token-entirely", "", http.StatusUnauthorized)
	do(frontTok, "alice@corp.example.com", http.StatusForbidden) // not entitled to impersonate
	do("", "", http.StatusUnauthorized)

	// Sessions/token-map introspection must be redacted too.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/sessions", nil)
	req.Header.Set("Authorization", "Bearer "+goodToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sessionsBody bytes.Buffer
	if _, err := sessionsBody.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sessions = %d: %s", resp.StatusCode, sessionsBody.String())
	}

	journalJSON, err := json.Marshal(journal.Tail(0))
	if err != nil {
		t.Fatal(err)
	}
	captured := map[string][]byte{
		"log output":    buf.Bytes(),
		"audit journal": journalJSON,
		"/v1/sessions":  sessionsBody.Bytes(),
	}
	for where, data := range captured {
		for _, secret := range []string{goodToken, frontTok} {
			if bytes.Contains(data, []byte(secret)) {
				t.Errorf("%s contains a raw bearer token:\n%s", where, data)
			}
		}
	}
	// The redacted reference must appear where the token was named, so
	// operators can still correlate.
	if !bytes.Contains(buf.Bytes(), []byte(RedactToken(goodToken))) {
		t.Errorf("log output never names %s; redaction should keep the reference, not drop it", RedactToken(goodToken))
	}
	if !bytes.Contains(journalJSON, []byte(RedactToken(goodToken))) {
		t.Errorf("audit journal never names %s", RedactToken(goodToken))
	}
}
