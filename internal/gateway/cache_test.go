package gateway

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
)

// grantAt issues a fresh public-key proxy on clk with the given
// lifetime, standing in for a grant round trip to a real service.
func grantAt(t *testing.T, ident *pubkey.Identity, clk clock.Clock, lifetime time.Duration) *proxy.Proxy {
	t.Helper()
	p, err := proxy.Grant(proxy.GrantParams{
		Grantor:       ident.ID,
		GrantorSigner: ident.Signer(),
		Lifetime:      lifetime,
		Mode:          proxy.ModePublicKey,
		Clock:         clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testIdentity(t *testing.T) *pubkey.Identity {
	t.Helper()
	ident, err := pubkey.NewIdentity(principal.New("alice", "TEST.ORG"))
	if err != nil {
		t.Fatal(err)
	}
	return ident
}

// renewWaiter turns the cache's onRenew hook into something a test can
// block on: each background renewal outcome is delivered on a channel.
type renewWaiter struct {
	ch chan error
}

func newRenewWaiter() *renewWaiter { return &renewWaiter{ch: make(chan error, 16)} }

func (w *renewWaiter) hook(key string, err error) { w.ch <- err }

func (w *renewWaiter) wait(t *testing.T) error {
	t.Helper()
	select {
	case err := <-w.ch:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for background renewal")
		return nil
	}
}

// TestCacheRenewsBeforeExpiry drives a cached proxy into the renewal
// window and asserts the hit still serves the old (valid) proxy while a
// background renewal replaces it, so the next hit sees the fresh one
// without ever waiting on a grant.
func TestCacheRenewsBeforeExpiry(t *testing.T) {
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	ident := testIdentity(t)
	w := newRenewWaiter()
	c := NewCache(clk, 2*time.Minute, w.hook)

	var mu sync.Mutex
	acquires := 0
	acquire := func(tr obs.Trace) (*proxy.Proxy, error) {
		mu.Lock()
		acquires++
		mu.Unlock()
		return grantAt(t, ident, clk, 10*time.Minute), nil
	}

	p1, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil {
		t.Fatal(err)
	}
	firstExpiry := p1.Expires()

	// Still comfortably inside the lifetime: a pure hit, no renewal.
	clk.Advance(5 * time.Minute)
	p2, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Fatal("mid-lifetime hit did not serve the cached proxy")
	}

	// Inside the renewal window (90s to expiry): the hit must serve the
	// still-valid old proxy and kick off a background renewal.
	clk.Advance(3*time.Minute + 30*time.Second)
	p3, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("near-expiry hit blocked on renewal instead of serving the cached proxy")
	}
	if err := w.wait(t); err != nil {
		t.Fatalf("renewal failed: %v", err)
	}

	p4, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil {
		t.Fatal(err)
	}
	if !p4.Expires().After(firstExpiry) {
		t.Fatalf("post-renewal proxy expires %v, want after %v", p4.Expires(), firstExpiry)
	}
	mu.Lock()
	if acquires != 2 {
		t.Fatalf("acquires = %d, want 2 (initial + one background renewal)", acquires)
	}
	mu.Unlock()
}

// TestCacheNeverServesExpired expires a cached proxy in place and
// asserts the next Get evicts it and re-acquires synchronously — the
// stale credential is never returned.
func TestCacheNeverServesExpired(t *testing.T) {
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	ident := testIdentity(t)
	c := NewCache(clk, 2*time.Minute, nil)

	acquires := 0
	acquire := func(tr obs.Trace) (*proxy.Proxy, error) {
		acquires++
		return grantAt(t, ident, clk, 10*time.Minute), nil
	}

	p1, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil {
		t.Fatal(err)
	}

	// Jump straight past expiry (no intermediate hit ever entered the
	// renewal window, so nothing renewed in the background).
	clk.Advance(11 * time.Minute)
	p2, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Fatal("expired proxy was served")
	}
	if !clk.Now().Before(p2.Expires()) {
		t.Fatal("re-acquired proxy is not valid now")
	}
	if acquires != 2 {
		t.Fatalf("acquires = %d, want 2 (miss + expired re-acquire)", acquires)
	}
}

// TestCacheFailedRenewalDegradesCleanly makes renewal fail: the old
// proxy keeps serving until its natural expiry, after which the
// synchronous re-acquire surfaces the upstream failure as a plain error
// (which the HTTP layer maps to 401/403) — never a stale proxy, never a
// hang.
func TestCacheFailedRenewalDegradesCleanly(t *testing.T) {
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	ident := testIdentity(t)
	w := newRenewWaiter()
	c := NewCache(clk, 2*time.Minute, w.hook)

	var mu sync.Mutex
	acquires, failFrom := 0, 2
	acquire := func(tr obs.Trace) (*proxy.Proxy, error) {
		mu.Lock()
		acquires++
		n := acquires
		mu.Unlock()
		if n >= failFrom {
			return nil, fmt.Errorf("authorization revoked")
		}
		return grantAt(t, ident, clk, 10*time.Minute), nil
	}

	p1, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil {
		t.Fatal(err)
	}

	// Enter the renewal window; the background renewal fails but the
	// still-valid old proxy keeps being served.
	clk.Advance(9 * time.Minute)
	p2, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Fatal("want the still-valid cached proxy during failed renewal")
	}
	if err := w.wait(t); err == nil {
		t.Fatal("renewal unexpectedly succeeded")
	}
	p3, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil || p3 != p1 {
		t.Fatalf("Get after failed renewal = (%v, %v), want old proxy", p3, err)
	}

	// Past expiry the failure must surface to the caller; the expired
	// proxy must not.
	clk.Advance(2 * time.Minute)
	if _, err := c.Get("k", obs.NewTrace(), acquire); err == nil {
		t.Fatal("expired entry with failing acquire returned no error")
	}
	if got := len(c.Entries()); got != 0 {
		t.Fatalf("cache holds %d entries after eviction, want 0", got)
	}
}

// TestCacheSweep exercises the background loop's single pass: one entry
// fresh (left alone), one in the renewal window (renewed), one expired
// (evicted).
func TestCacheSweep(t *testing.T) {
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	ident := testIdentity(t)
	w := newRenewWaiter()
	c := NewCache(clk, 2*time.Minute, w.hook)

	mk := func(key string, lifetime time.Duration) {
		if _, err := c.Get(key, obs.NewTrace(), func(tr obs.Trace) (*proxy.Proxy, error) {
			return grantAt(t, ident, clk, lifetime), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("fresh", time.Hour)
	mk("near", 90*time.Second)
	mk("gone", time.Minute)

	clk.Advance(61 * time.Second) // "gone" expired, "near" has 29s left
	c.Sweep()
	if err := w.wait(t); err != nil {
		t.Fatalf("sweep renewal failed: %v", err)
	}

	entries := c.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries after sweep = %v, want fresh+near", entries)
	}
	for _, e := range entries {
		if e.Key == "gone" {
			t.Fatal("expired entry survived the sweep")
		}
		if e.Key == "near" && !e.Expires.After(clk.Now().Add(time.Minute)) {
			t.Fatalf("near entry was not renewed: expires %v", e.Expires)
		}
	}
}

// TestCacheConcurrentAccess hammers one key from many goroutines across
// the renewal window; run under -race this proves the lock discipline
// (mutex never held across acquire, stampede suppression via the
// renewing flag).
func TestCacheConcurrentAccess(t *testing.T) {
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	ident := testIdentity(t)
	c := NewCache(clk, 2*time.Minute, nil)

	acquire := func(tr obs.Trace) (*proxy.Proxy, error) {
		return grantAt(t, ident, clk, 10*time.Minute), nil
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p, err := c.Get("k", obs.NewTrace(), acquire)
				if err != nil || p == nil {
					t.Errorf("Get = (%v, %v)", p, err)
					return
				}
				if j%10 == 9 {
					clk.Advance(time.Minute)
				}
			}
		}()
	}
	wg.Wait()
}

// TestCacheRefusesExpiredAcquisition covers the fail-closed side of the
// miss path: an acquisition that comes back already expired (clock skew
// against the grantor, or a grant slower than its own lifetime) must be
// refused, not cached and not returned — the gateway would otherwise
// forward a dead restricted proxy to the end-server.
func TestCacheRefusesExpiredAcquisition(t *testing.T) {
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	ident := testIdentity(t)
	c := NewCache(clk, 2*time.Minute, nil)

	// The grant is issued on a clock 10 minutes behind "now" with a
	// 5-minute lifetime: valid when signed, expired on arrival.
	skewed := clock.NewFake(clk.Now().Add(-10 * time.Minute))
	acquire := func(tr obs.Trace) (*proxy.Proxy, error) {
		return grantAt(t, ident, skewed, 5*time.Minute), nil
	}
	_, err := c.Get("k", obs.NewTrace(), acquire)
	if !errors.Is(err, ErrExpiredProxy) {
		t.Fatalf("Get with expired acquisition = %v, want ErrExpiredProxy", err)
	}
	if got := len(c.Entries()); got != 0 {
		t.Fatalf("expired acquisition was cached: %d entries", got)
	}
	// The refusal maps to 503 at the HTTP edge: fail closed, retryable.
	if code := statusForUpstream(err); code != http.StatusServiceUnavailable {
		t.Fatalf("statusForUpstream(ErrExpiredProxy) = %d, want 503", code)
	}
}

// TestCacheRenewalRefusesExpiredProxy covers the renewal side: a
// background renewal that produces an already-expired proxy must be
// treated as a failed renewal — the still-valid cached proxy keeps
// serving, and the dead one is never installed over it.
func TestCacheRenewalRefusesExpiredProxy(t *testing.T) {
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	ident := testIdentity(t)
	w := newRenewWaiter()
	c := NewCache(clk, 2*time.Minute, w.hook)

	var mu sync.Mutex
	acquires := 0
	skewed := clock.NewFake(clk.Now().Add(-10 * time.Minute))
	acquire := func(tr obs.Trace) (*proxy.Proxy, error) {
		mu.Lock()
		acquires++
		n := acquires
		mu.Unlock()
		if n >= 2 {
			// Renewal round: issued on a skewed clock, dead on arrival.
			return grantAt(t, ident, skewed, 5*time.Minute), nil
		}
		return grantAt(t, ident, clk, 10*time.Minute), nil
	}

	p1, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(9 * time.Minute) // inside the renewal window
	p2, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil || p2 != p1 {
		t.Fatalf("hit inside renewal window = (%v, %v), want cached proxy", p2, err)
	}
	if err := w.wait(t); !errors.Is(err, ErrExpiredProxy) {
		t.Fatalf("renewal outcome = %v, want ErrExpiredProxy", err)
	}
	// The old, still-valid proxy is what the cache serves — not the
	// dead renewal.
	p3, err := c.Get("k", obs.NewTrace(), acquire)
	if err != nil || p3 != p1 {
		t.Fatalf("Get after expired renewal = (%v, %v), want old proxy kept", p3, err)
	}
}
