package gateway

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMappingValidate(t *testing.T) {
	valid := func() *MappingConfig {
		return &MappingConfig{
			Tokens: []TokenEntry{
				{Token: "t1", Subject: "ci", Principal: "ci@X.ORG", Groups: []string{"staff"}},
				{Token: "t2", Subject: "web", Impersonate: true},
			},
			Impersonation: []ImpersonationRule{
				{SubjectSuffix: "@corp.example.com", Realm: "X.ORG", Groups: []string{"staff"}},
			},
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*MappingConfig)
		want   string
	}{
		{"no tokens", func(c *MappingConfig) { c.Tokens = nil }, "no tokens"},
		{"empty token", func(c *MappingConfig) { c.Tokens[0].Token = "" }, "empty token"},
		{"empty subject", func(c *MappingConfig) { c.Tokens[0].Subject = "" }, "empty subject"},
		{"duplicate secret", func(c *MappingConfig) { c.Tokens[1].Token = "t1" }, "share a secret"},
		{"no principal", func(c *MappingConfig) { c.Tokens[0].Principal = "" }, "no principal"},
		{"bad principal", func(c *MappingConfig) { c.Tokens[0].Principal = "not a principal" }, "ci"},
		{"empty suffix", func(c *MappingConfig) { c.Impersonation[0].SubjectSuffix = "" }, "empty subjectSuffix"},
		{"empty realm", func(c *MappingConfig) { c.Impersonation[0].Realm = "" }, "empty realm"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid()
			tc.mutate(cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestMapSubject(t *testing.T) {
	cfg := &MappingConfig{
		Tokens: []TokenEntry{{Token: "t", Subject: "web", Impersonate: true}},
		Impersonation: []ImpersonationRule{
			{SubjectSuffix: "@corp.example.com", Realm: "X.ORG", Groups: []string{"staff"}},
			{SubjectSuffix: "@partner.example.net", Realm: "PARTNER.ORG"},
		},
	}

	pid, groups, err := cfg.mapSubject("alice@corp.example.com")
	if err != nil {
		t.Fatal(err)
	}
	if pid.String() != "alice@X.ORG" || len(groups) != 1 || groups[0] != "staff" {
		t.Fatalf("mapSubject = (%s, %v)", pid, groups)
	}

	pid, groups, err = cfg.mapSubject("bob@partner.example.net")
	if err != nil {
		t.Fatal(err)
	}
	if pid.String() != "bob@PARTNER.ORG" || len(groups) != 0 {
		t.Fatalf("mapSubject = (%s, %v)", pid, groups)
	}

	for _, bad := range []string{
		"eve@elsewhere.example.org",  // no rule
		"@corp.example.com",          // empty local part
		"a@b@corp.example.com",       // smuggled realm syntax
		"a b@corp.example.com",       // space in local part
		"path/name@corp.example.com", // slash in local part
	} {
		if _, _, err := cfg.mapSubject(bad); err == nil {
			t.Errorf("mapSubject(%q) accepted, want error", bad)
		}
	}
}

func TestLoadMapping(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mapping.json")
	good := `{
	  "tokens": [
	    {"token": "t1", "subject": "ci", "principal": "ci@X.ORG"}
	  ],
	  "impersonation": [
	    {"subjectSuffix": "@corp.example.com", "realm": "X.ORG"}
	  ]
	}`
	if err := os.WriteFile(path, []byte(good), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadMapping(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tokens) != 1 || cfg.Tokens[0].Subject != "ci" {
		t.Fatalf("loaded %+v", cfg)
	}

	if _, err := LoadMapping(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMapping(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"tokens": []}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMapping(invalid); err == nil {
		t.Fatal("invalid config accepted")
	}
}
