package gateway

import (
	"errors"
	"sort"
	"sync"
	"time"

	"proxykit/internal/clock"
	"proxykit/internal/obs"
	"proxykit/internal/proxy"
)

// ErrExpiredProxy is returned when an acquisition or renewal produced a
// proxy that is already expired (clock skew against the grantor, or a
// grant that outlived its own lifetime in transit). The cache fails
// closed: such a proxy is never cached and never returned — forwarding
// it would present a dead credential to the end-server as if it were
// live.
var ErrExpiredProxy = errors.New("gateway: acquired proxy already expired")

// AcquireFunc obtains a fresh proxy for a cache key. The trace is the
// request (or renewal) context the acquisition RPCs should join.
type AcquireFunc func(tr obs.Trace) (*proxy.Proxy, error)

// Cache holds acquired proxies keyed by (principal, restriction-set)
// strings. A Get within renewWithin of a cached proxy's expiry still
// serves the cached proxy but kicks off a background renewal, so the
// steady-state request path never waits on a grant round trip; a Get
// after expiry evicts and re-acquires synchronously — an expired proxy
// is never served. A failed renewal leaves the old proxy in place
// until it expires (requests keep working as long as the credential
// does), after which the synchronous re-acquire surfaces the failure
// to the caller as a clean denial.
type Cache struct {
	clk         clock.Clock
	renewWithin time.Duration
	// onRenew observes background renewal outcomes (audit hook);
	// err is nil on success. May be nil.
	onRenew func(key string, err error)

	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	p        *proxy.Proxy
	acquire  AcquireFunc
	renewing bool // a background renewal is in flight
}

// NewCache builds a cache on clk (nil = system clock). renewWithin is
// how close to expiry a cached proxy must be before a hit schedules
// its background renewal.
func NewCache(clk clock.Clock, renewWithin time.Duration, onRenew func(key string, err error)) *Cache {
	if clk == nil {
		clk = clock.System{}
	}
	return &Cache{
		clk:         clk,
		renewWithin: renewWithin,
		onRenew:     onRenew,
		entries:     make(map[string]*cacheEntry),
	}
}

// Get returns the proxy for key, acquiring it with acquire on a miss
// (or after expiry). The mutex is never held across an acquisition, so
// a slow grant for one key cannot stall hits on others; two concurrent
// misses on one key may both acquire, with the later insert winning —
// grants are idempotent, so that costs a round trip, not correctness.
func (c *Cache) Get(key string, tr obs.Trace, acquire AcquireFunc) (*proxy.Proxy, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		now := c.clk.Now()
		exp := e.p.Expires()
		if now.Before(exp) {
			p := e.p
			if exp.Sub(now) <= c.renewWithin && !e.renewing {
				e.renewing = true
				go c.renew(key)
			}
			c.mu.Unlock()
			mCacheHits.Inc()
			return p, nil
		}
		// Expired in place: evict; fall through to a synchronous
		// re-acquire. The stale proxy must never be presented.
		delete(c.entries, key)
		mCacheExpired.Inc()
		mCacheEntries.Set(int64(len(c.entries)))
	}
	c.mu.Unlock()
	mCacheMisses.Inc()
	p, err := acquire(tr)
	if err != nil {
		return nil, err
	}
	if !c.clk.Now().Before(p.Expires()) {
		// Fail closed: an already-expired acquisition must not be cached
		// or forwarded, even though the grant itself "succeeded".
		return nil, ErrExpiredProxy
	}
	c.mu.Lock()
	c.entries[key] = &cacheEntry{p: p, acquire: acquire}
	mCacheEntries.Set(int64(len(c.entries)))
	c.mu.Unlock()
	return p, nil
}

// renew re-acquires key's proxy in the background under a fresh root
// trace (a renewal belongs to no HTTP request). On failure the old
// proxy stays cached until it expires.
func (c *Cache) renew(key string) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return
	}
	acquire := e.acquire
	c.mu.Unlock()

	p, err := acquire(obs.NewTrace())
	if err == nil && !c.clk.Now().Before(p.Expires()) {
		// A renewal that came back already expired is a failed renewal:
		// keep the old proxy (still valid until its own expiry) rather
		// than install a credential that can never be presented.
		err = ErrExpiredProxy
	}

	c.mu.Lock()
	if e2, ok := c.entries[key]; ok {
		e2.renewing = false
		if err == nil {
			e2.p = p
		}
	}
	c.mu.Unlock()
	if err == nil {
		mRenewals.With("ok").Inc()
	} else {
		mRenewals.With("error").Inc()
	}
	if c.onRenew != nil {
		c.onRenew(key, err)
	}
}

// Sweep walks the cache once: entries inside the renewal window are
// renewed (in the background), expired entries are evicted. Called by
// the renewal loop so idle sessions' proxies stay fresh even with no
// request traffic to trigger renewal on a hit.
func (c *Cache) Sweep() {
	now := c.clk.Now()
	c.mu.Lock()
	for key, e := range c.entries {
		exp := e.p.Expires()
		switch {
		case !now.Before(exp):
			delete(c.entries, key)
			mCacheExpired.Inc()
		case exp.Sub(now) <= c.renewWithin && !e.renewing:
			e.renewing = true
			go c.renew(key)
		}
	}
	mCacheEntries.Set(int64(len(c.entries)))
	c.mu.Unlock()
}

// Start runs Sweep every interval until the returned stop function is
// called.
func (c *Cache) Start(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Sweep()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// EntryInfo describes one cached proxy for introspection (/v1/proxies,
// proxyctl gateway).
type EntryInfo struct {
	// Key is the cache key ("authz|alice@EXAMPLE.ORG|...").
	Key string `json:"key"`
	// Grantor signed the proxy's first certificate.
	Grantor string `json:"grantor"`
	// Expires is when the chain stops verifying.
	Expires time.Time `json:"expires"`
	// Renewing reports an in-flight background renewal.
	Renewing bool `json:"renewing"`
}

// Entries lists the cached proxies, sorted by key.
func (c *Cache) Entries() []EntryInfo {
	c.mu.Lock()
	out := make([]EntryInfo, 0, len(c.entries))
	for key, e := range c.entries {
		out = append(out, EntryInfo{
			Key:      key,
			Grantor:  e.p.Grantor().String(),
			Expires:  e.p.Expires(),
			Renewing: e.renewing,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
