package gateway

import (
	"flag"
	"time"

	"proxykit/internal/logging"
	"proxykit/internal/obs"
)

// DaemonOptions are gatewayd's command-line settings. They live here —
// not in cmd/gatewayd — so TestGatewayDocCatalogue can enumerate the
// registered flags and hold GATEWAY.md to them.
type DaemonOptions struct {
	State   string
	Name    string
	Realm   string
	Listen  string
	Mapping string

	AuthzAddr   string
	GroupAddr   string
	AcctAddr    string
	EndAddr     string
	EndServerID string
	BankID      string

	MetricsAddr string
	AuditFile   string
	FaultSpec   string
	FaultSeed   int64
	RPCPool     int

	ProxyLifetime time.Duration
	RenewWithin   time.Duration
	RenewInterval time.Duration
	DialTimeout   time.Duration

	Log   logging.Options
	Trace obs.TraceOptions
}

// RegisterFlags registers every gatewayd flag on fs, mirroring the
// other daemons' conventions (-state/-name/-realm/-listen,
// -metrics-addr, -audit-file, -fault-spec/-fault-seed).
func (o *DaemonOptions) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.State, "state", "./state", "shared state directory")
	fs.StringVar(&o.Name, "name", "gateway", "gateway principal name")
	fs.StringVar(&o.Realm, "realm", "EXAMPLE.ORG", "realm name")
	fs.StringVar(&o.Listen, "listen", "127.0.0.1:8095", "HTTP API listen address")
	fs.StringVar(&o.Mapping, "mapping", "", "JSON token/impersonation mapping file (required)")

	fs.StringVar(&o.AuthzAddr, "authz-server", "127.0.0.1:8090", "authorization server RPC address")
	fs.StringVar(&o.GroupAddr, "group-server", "", "group server RPC address (empty disables group proxies)")
	fs.StringVar(&o.AcctAddr, "acct-server", "127.0.0.1:8092", "accounting server RPC address")
	fs.StringVar(&o.EndAddr, "end-server", "127.0.0.1:8093", "end-server RPC address")
	fs.StringVar(&o.EndServerID, "end-server-id", "files@EXAMPLE.ORG", "end-server principal authz proxies target")
	fs.StringVar(&o.BankID, "bank-id", "bank@EXAMPLE.ORG", "accounting server principal (check endorsement)")

	fs.StringVar(&o.MetricsAddr, "metrics-addr", "", "observability HTTP listen address serving /metrics, /healthz, /traces, /audit, and /debug/pprof (disabled when empty)")
	fs.StringVar(&o.AuditFile, "audit-file", "", "hash-chained audit journal path (JSONL, append-only); empty keeps the journal in memory only")
	fs.StringVar(&o.FaultSpec, "fault-spec", "", "fault injection on the gateway's outbound RPC clients, e.g. 'end.*:drop=0.1' (chaos testing; see internal/faultpoint)")
	fs.Int64Var(&o.FaultSeed, "fault-seed", 1, "PRNG seed for -fault-spec decisions")
	fs.IntVar(&o.RPCPool, "rpc-pool", 1, "multiplexed connections per downstream service")

	fs.DurationVar(&o.ProxyLifetime, "proxy-lifetime", DefaultProxyLifetime, "lifetime requested for acquired proxies")
	fs.DurationVar(&o.RenewWithin, "renew-within", DefaultRenewWithin, "renew cached proxies this close to expiry")
	fs.DurationVar(&o.RenewInterval, "renew-interval", DefaultRenewInterval, "background renewal sweep interval; 0 disables the sweeper")
	fs.DurationVar(&o.DialTimeout, "dial-timeout", 5*time.Second, "downstream dial timeout and default per-call RPC deadline")

	o.Log.RegisterFlags(fs)
	o.Trace.RegisterFlags(fs)
}
