package gateway

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
)

// RedactToken returns the loggable reference for a bearer token:
// "tok-" plus the first 8 hex digits of its SHA-256. The reference is
// stable (operators can correlate a journal entry with a mapping file
// entry by hashing the secret themselves) but reveals nothing useful
// to an attacker reading logs. Every log line, audit record, and API
// response that needs to name a token uses this form; the raw secret
// must never leave the Authorization header.
func RedactToken(token string) string {
	sum := sha256.Sum256([]byte(token))
	return "tok-" + hex.EncodeToString(sum[:4])
}

// authenticator resolves presented bearer tokens to mapping entries in
// constant time. Entries are stored as SHA-256 digests; a lookup
// hashes the presented token once and compares it against every
// stored digest with crypto/subtle, never breaking out early, so the
// comparison cost is independent of which (if any) token matched and
// of how many prefix bytes agree.
type authenticator struct {
	digests [][sha256.Size]byte
	entries []TokenEntry
}

func newAuthenticator(cfg *MappingConfig) *authenticator {
	a := &authenticator{
		digests: make([][sha256.Size]byte, len(cfg.Tokens)),
		entries: make([]TokenEntry, len(cfg.Tokens)),
	}
	for i, t := range cfg.Tokens {
		a.digests[i] = sha256.Sum256([]byte(t.Token))
		a.entries[i] = t
	}
	return a
}

// lookup resolves token to its entry. The scan visits every stored
// digest regardless of where (or whether) a match occurs.
func (a *authenticator) lookup(token string) (TokenEntry, bool) {
	sum := sha256.Sum256([]byte(token))
	match := -1
	for i := range a.digests {
		if subtle.ConstantTimeCompare(sum[:], a.digests[i][:]) == 1 && match < 0 {
			match = i
		}
	}
	if match < 0 {
		return TokenEntry{}, false
	}
	return a.entries[match], true
}
