package gateway

import "proxykit/internal/obs"

// Gateway metrics, registered in the process-wide registry and
// documented in GATEWAY.md (catalogue-enforced by
// TestGatewayDocCatalogue alongside OBSERVABILITY.md).
var (
	mHTTPRequests = obs.Default.NewCounterVec("proxykit_gateway_http_requests_total",
		"HTTP requests served by the gateway, by route and status code.", "route", "code")
	mHTTPLatency = obs.Default.NewHistogramVec("proxykit_gateway_http_latency_seconds",
		"Gateway HTTP request latency in seconds, by route.", obs.DefLatencyBuckets, "route")
	mAuth = obs.Default.NewCounterVec("proxykit_gateway_auth_total",
		"Bearer-token authentication attempts, by outcome (ok, unknown-token, missing, denied).", "outcome")
	mImpersonations = obs.Default.NewCounterVec("proxykit_gateway_impersonations_total",
		"Impersonated-subject mapping attempts, by outcome (ok, not-allowed, no-rule).", "outcome")
	mSessions = obs.Default.NewGauge("proxykit_gateway_sessions",
		"Live gateway sessions (distinct token/subject pairs seen).")
	mCacheHits = obs.Default.NewCounter("proxykit_gateway_proxy_cache_hits_total",
		"Proxy-cache lookups served from a cached, unexpired proxy.")
	mCacheMisses = obs.Default.NewCounter("proxykit_gateway_proxy_cache_misses_total",
		"Proxy-cache lookups that acquired a proxy synchronously (cold or expired).")
	mCacheEntries = obs.Default.NewGauge("proxykit_gateway_proxy_cache_entries",
		"Proxies currently held in the gateway's cache.")
	mCacheExpired = obs.Default.NewCounter("proxykit_gateway_proxy_cache_expired_evictions_total",
		"Cached proxies evicted because they expired before renewal.")
	mRenewals = obs.Default.NewCounterVec("proxykit_gateway_proxy_renewals_total",
		"Background proxy renewals, by outcome (ok, error).", "outcome")
	mUpstreamErrors = obs.Default.NewCounterVec("proxykit_gateway_upstream_errors_total",
		"Errors returned by downstream services, by service (authz, group, acct, end).", "service")
)
