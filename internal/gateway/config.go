// Package gateway implements the HTTP edge daemon (gatewayd): it
// terminates plain HTTP+JSON, maps bearer tokens — and, optionally,
// impersonated external identities — onto proxykit principals, obtains
// restricted proxies on the caller's behalf through the authorization
// and group servers, caches them with background renewal, and forwards
// operations to end-servers and banks over the multiplexed RPC
// transport.
//
// The package is the repo's answer to ROADMAP item 4 ("web-shaped
// workloads"): clients that cannot speak the native credential
// protocol of the paper (Neuman 1993, §4–§6) get a front door that
// hides proxy acquisition entirely, the way grid gateways mapped
// web/Unix identities onto grid credentials. Every mapping decision is
// audited (gateway.map), every forwarded operation is audited
// (gateway.request), and every hop shares the HTTP request's trace ID.
//
// The full operator guide and HTTP API reference live in GATEWAY.md at
// the repository root, kept in sync with the code by
// TestGatewayDocCatalogue.
package gateway

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"proxykit/internal/principal"
)

// TokenEntry maps one bearer token to a principal. Tokens are opaque
// strings compared in constant time; they never appear in logs, audit
// records, or API responses — only their RedactToken reference does.
type TokenEntry struct {
	// Token is the bearer secret presented in the Authorization header.
	Token string `json:"token"`
	// Subject is a human-readable owner label ("ci-deployer",
	// "web-frontend"); it is what logs and audit records show.
	Subject string `json:"subject"`
	// Principal is the proxykit principal this token acts as
	// ("alice@EXAMPLE.ORG"). Ignored for impersonation-only entries.
	Principal string `json:"principal,omitempty"`
	// Groups are local group names asserted when acquiring proxies.
	Groups []string `json:"groups,omitempty"`
	// Impersonate marks a trusted front-end token that may act for
	// external identities via the X-Impersonate-Subject header, mapped
	// through the Impersonation rules.
	Impersonate bool `json:"impersonate,omitempty"`
	// Admin grants access to the introspection routes (/v1/sessions,
	// /v1/proxies).
	Admin bool `json:"admin,omitempty"`
}

// ImpersonationRule maps external identities onto principals by
// subject suffix: "alice@corp.example.com" with SubjectSuffix
// "@corp.example.com" and Realm "EXAMPLE.ORG" becomes
// alice@EXAMPLE.ORG. First matching rule wins.
type ImpersonationRule struct {
	// SubjectSuffix selects the external identities this rule maps
	// (matched against the X-Impersonate-Subject header value).
	SubjectSuffix string `json:"subjectSuffix"`
	// Realm the mapped principal lands in.
	Realm string `json:"realm"`
	// Groups are local group names granted to identities mapped by
	// this rule.
	Groups []string `json:"groups,omitempty"`
}

// MappingConfig is the gateway's declarative token and impersonation
// mapping, loaded from the -mapping JSON file.
type MappingConfig struct {
	// Tokens are the recognized bearer tokens.
	Tokens []TokenEntry `json:"tokens"`
	// Impersonation rules map external subjects onto principals.
	Impersonation []ImpersonationRule `json:"impersonation,omitempty"`
}

// LoadMapping reads and validates a mapping config file.
func LoadMapping(path string) (*MappingConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gateway: mapping: %w", err)
	}
	var cfg MappingConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("gateway: parse mapping %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Validate checks the config for the mistakes that would otherwise
// surface as confusing per-request failures: empty or duplicate
// tokens, unparsable principals, rules that can never match.
func (c *MappingConfig) Validate() error {
	if len(c.Tokens) == 0 {
		return fmt.Errorf("gateway: mapping has no tokens")
	}
	seen := make(map[string]string, len(c.Tokens))
	for i, t := range c.Tokens {
		if t.Token == "" {
			return fmt.Errorf("gateway: token %d (%q): empty token", i, t.Subject)
		}
		if t.Subject == "" {
			return fmt.Errorf("gateway: token %d: empty subject", i)
		}
		if prev, dup := seen[t.Token]; dup {
			return fmt.Errorf("gateway: tokens %q and %q share a secret", prev, t.Subject)
		}
		seen[t.Token] = t.Subject
		if t.Principal == "" && !t.Impersonate {
			return fmt.Errorf("gateway: token %q: no principal and not an impersonation token", t.Subject)
		}
		if t.Principal != "" {
			if _, err := principal.Parse(t.Principal); err != nil {
				return fmt.Errorf("gateway: token %q: %w", t.Subject, err)
			}
		}
	}
	for i, r := range c.Impersonation {
		if r.SubjectSuffix == "" {
			return fmt.Errorf("gateway: impersonation rule %d: empty subjectSuffix", i)
		}
		if r.Realm == "" {
			return fmt.Errorf("gateway: impersonation rule %d (%q): empty realm", i, r.SubjectSuffix)
		}
	}
	return nil
}

// mapSubject applies the impersonation rules to an external subject,
// returning the mapped principal and the rule's groups. The local part
// (subject with the rule suffix stripped) must be a plain name — a
// subject like "bob@evil@corp" cannot smuggle realm syntax through.
func (c *MappingConfig) mapSubject(subject string) (principal.ID, []string, error) {
	for _, r := range c.Impersonation {
		if !strings.HasSuffix(subject, r.SubjectSuffix) {
			continue
		}
		local := strings.TrimSuffix(subject, r.SubjectSuffix)
		if local == "" || strings.ContainsAny(local, "@/ ") {
			return principal.ID{}, nil, fmt.Errorf("gateway: subject %q: invalid local part", subject)
		}
		return principal.New(local, r.Realm), r.Groups, nil
	}
	return principal.ID{}, nil, fmt.Errorf("gateway: subject %q matches no impersonation rule", subject)
}
