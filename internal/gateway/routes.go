package gateway

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/faultpoint"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
	"proxykit/internal/wire"
)

// Route describes one HTTP API route. Routes() is the catalogue
// TestGatewayDocCatalogue checks GATEWAY.md against.
type Route struct {
	// Method is the HTTP verb.
	Method string
	// Path is the route pattern.
	Path string
	// Summary is a one-line description.
	Summary string
}

// Routes enumerates the gateway's HTTP API.
func Routes() []Route {
	return []Route{
		{"POST", "/v1/authorize", "Perform an authorized operation against the end-server via a cached restricted proxy."},
		{"POST", "/v1/transfer", "Transfer funds between accounts at the bank as the mapped principal."},
		{"GET", "/v1/balance", "Read an account balance at the bank."},
		{"POST", "/v1/check/write", "Write a payee-named check drawn on the caller's account."},
		{"POST", "/v1/check/deposit", "Endorse and deposit a previously written check."},
		{"GET", "/v1/session", "Describe the caller's own session."},
		{"GET", "/v1/sessions", "List all sessions and the redacted token map (admin only)."},
		{"GET", "/v1/proxies", "List cached proxies and their renewal state (admin only)."},
	}
}

// apiError is the JSON error body every failed request returns.
type apiError struct {
	Error   string `json:"error"`
	TraceID string `json:"traceId"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, tr obs.Trace, err error) {
	if code == http.StatusUnauthorized {
		w.Header().Set("WWW-Authenticate", "Bearer")
	}
	writeJSON(w, code, apiError{Error: err.Error(), TraceID: tr.TraceID})
}

// statusForUpstream maps a downstream failure onto an HTTP status:
// application-level refusals (RemoteError) become 4xx — denials 403,
// missing accounts 404, duplicates 409, exhausted funds 402 — while
// transport-level failures (timeouts, injected faults, dead daemons)
// become 502 so callers and probes can tell policy from plumbing.
func statusForUpstream(err error) int {
	if errors.Is(err, ErrExpiredProxy) {
		// The credential pipeline produced an already-dead proxy (clock
		// skew or a grant slower than its own lifetime): refuse to serve
		// rather than forward it, and tell the caller to retry.
		return http.StatusServiceUnavailable
	}
	var rerr *transport.RemoteError
	if errors.As(err, &rerr) {
		msg := rerr.Msg
		switch {
		case strings.Contains(msg, "denied"),
			strings.Contains(msg, "not authorized"),
			strings.Contains(msg, "not a member"),
			strings.Contains(msg, "unknown group"),
			strings.Contains(msg, "no rules"):
			return http.StatusForbidden
		case strings.Contains(msg, "no such account"):
			return http.StatusNotFound
		case strings.Contains(msg, "insufficient"):
			return http.StatusPaymentRequired
		case strings.Contains(msg, "duplicate check"),
			strings.Contains(msg, "already exists"):
			return http.StatusConflict
		default:
			return http.StatusBadRequest
		}
	}
	var ferr *faultpoint.Error
	var nerr net.Error
	if errors.As(err, &ferr) || errors.As(err, &nerr) || errors.Is(err, transport.ErrClosed) {
		return http.StatusBadGateway
	}
	return http.StatusBadGateway
}

// Handler returns the gateway's HTTP API handler.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/authorize", g.route("POST /v1/authorize", g.handleAuthorize))
	mux.HandleFunc("/v1/transfer", g.route("POST /v1/transfer", g.handleTransfer))
	mux.HandleFunc("/v1/balance", g.route("GET /v1/balance", g.handleBalance))
	mux.HandleFunc("/v1/check/write", g.route("POST /v1/check/write", g.handleCheckWrite))
	mux.HandleFunc("/v1/check/deposit", g.route("POST /v1/check/deposit", g.handleCheckDeposit))
	mux.HandleFunc("/v1/session", g.route("GET /v1/session", g.handleSession))
	mux.HandleFunc("/v1/sessions", g.route("GET /v1/sessions", g.handleSessions))
	mux.HandleFunc("/v1/proxies", g.route("GET /v1/proxies", g.handleProxies))
	return mux
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// route wraps a handler with the per-request scaffolding: method
// check, a fresh root trace (returned in X-Trace-Id), bearer
// authentication, metrics, and a server span — so one trace ID joins
// the HTTP request to every downstream RPC span and audit record.
func (g *Gateway) route(label string, h func(http.ResponseWriter, *http.Request, *session, obs.Trace)) http.HandlerFunc {
	method, _, _ := strings.Cut(label, " ")
	return func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace()
		w.Header().Set("X-Trace-Id", tr.TraceID)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		func() {
			if r.Method != method {
				writeErr(sw, http.StatusMethodNotAllowed, tr, fmt.Errorf("use %s", method))
				return
			}
			s, code, err := g.authenticate(r, tr)
			if err != nil {
				writeErr(sw, code, tr, err)
				return
			}
			h(sw, r, s, tr)
		}()
		dur := time.Since(start)
		mHTTPRequests.With(label, strconv.Itoa(sw.code)).Inc()
		mHTTPLatency.With(label).Observe(dur.Seconds())
		span := obs.Span{Trace: tr, Kind: "server", Method: label, Start: start, Duration: dur}
		if sw.code >= 400 {
			span.Err = http.StatusText(sw.code)
		}
		obs.Spans.Record(span)
		obs.DefaultSLO.Observe(label, dur, tr.TraceID)
	}
}

// decode reads a JSON request body into v.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// handleAuthorize performs one end-server operation as the mapped
// principal: acquire (or hit the cache for) a delegate authz proxy —
// cascaded through a group proxy when the session asserts groups —
// and present it with a sealed end-server request.
func (g *Gateway) handleAuthorize(w http.ResponseWriter, r *http.Request, s *session, tr obs.Trace) {
	var req struct {
		Object  string           `json:"object"`
		Op      string           `json:"op"`
		Amounts map[string]int64 `json:"amounts,omitempty"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, tr, err)
		return
	}
	if req.Object == "" || req.Op == "" {
		writeErr(w, http.StatusBadRequest, tr, fmt.Errorf("object and op are required"))
		return
	}
	p, err := g.authzProxy(s, tr, req.Object, req.Op)
	if err != nil {
		g.auditRequest(tr, s, req.Object, req.Op, err)
		writeErr(w, statusForUpstream(err), tr, err)
		return
	}
	ec := svc.NewEndClient(transport.WithTrace(g.opts.EndClient, tr), s.ident, g.clk)
	dec, err := ec.Request(svc.RequestParams{
		Object:  req.Object,
		Op:      req.Op,
		Proxies: []*proxy.Presentation{p.PresentDelegate()},
		Amounts: req.Amounts,
	})
	g.auditRequest(tr, s, req.Object, req.Op, err)
	if err != nil {
		mUpstreamErrors.With("end").Inc()
		writeErr(w, statusForUpstream(err), tr, err)
		return
	}
	trail := make([]string, len(dec.Trail))
	for i, t := range dec.Trail {
		trail[i] = t.String()
	}
	writeJSON(w, http.StatusOK, struct {
		Allowed  bool     `json:"allowed"`
		Via      string   `json:"via"`
		ViaProxy bool     `json:"viaProxy"`
		Trail    []string `json:"trail,omitempty"`
		TraceID  string   `json:"traceId"`
	}{true, dec.Via.String(), dec.ViaProxy, trail, tr.TraceID})
}

// handleTransfer moves funds between accounts as the mapped principal.
func (g *Gateway) handleTransfer(w http.ResponseWriter, r *http.Request, s *session, tr obs.Trace) {
	var req struct {
		From     string `json:"from"`
		To       string `json:"to"`
		Currency string `json:"currency"`
		Amount   int64  `json:"amount"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, tr, err)
		return
	}
	if req.From == "" || req.To == "" || req.Currency == "" || req.Amount <= 0 {
		writeErr(w, http.StatusBadRequest, tr, fmt.Errorf("from, to, currency, and a positive amount are required"))
		return
	}
	ac := svc.NewAcctClient(transport.WithTrace(g.opts.AcctClient, tr), s.ident, g.clk)
	err := ac.Transfer(req.From, req.To, req.Currency, req.Amount)
	g.auditRequest(tr, s, req.From+"->"+req.To, "transfer", err)
	if err != nil {
		mUpstreamErrors.With("acct").Inc()
		writeErr(w, statusForUpstream(err), tr, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		OK      bool   `json:"ok"`
		TraceID string `json:"traceId"`
	}{true, tr.TraceID})
}

// handleBalance reads an account balance.
func (g *Gateway) handleBalance(w http.ResponseWriter, r *http.Request, s *session, tr obs.Trace) {
	account := r.URL.Query().Get("account")
	currency := r.URL.Query().Get("currency")
	if account == "" || currency == "" {
		writeErr(w, http.StatusBadRequest, tr, fmt.Errorf("account and currency query parameters are required"))
		return
	}
	ac := svc.NewAcctClient(transport.WithTrace(g.opts.AcctClient, tr), s.ident, g.clk)
	bal, err := ac.Balance(account, currency)
	g.auditRequest(tr, s, account, "balance", err)
	if err != nil {
		mUpstreamErrors.With("acct").Inc()
		writeErr(w, statusForUpstream(err), tr, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Account  string `json:"account"`
		Currency string `json:"currency"`
		Balance  int64  `json:"balance"`
		TraceID  string `json:"traceId"`
	}{account, currency, bal, tr.TraceID})
}

// handleCheckWrite writes a payee-named check drawn on the caller's
// account (a numbered delegate proxy, §4 Fig. 5) and returns its
// public form. Bearer checks are refused: a check that anyone could
// cash must not transit an HTTP API.
func (g *Gateway) handleCheckWrite(w http.ResponseWriter, r *http.Request, s *session, tr obs.Trace) {
	var req struct {
		Account         string `json:"account"`
		Payee           string `json:"payee"`
		Currency        string `json:"currency"`
		Amount          int64  `json:"amount"`
		LifetimeSeconds int64  `json:"lifetimeSeconds,omitempty"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, tr, err)
		return
	}
	if req.Account == "" || req.Currency == "" || req.Amount <= 0 {
		writeErr(w, http.StatusBadRequest, tr, fmt.Errorf("account, currency, and a positive amount are required"))
		return
	}
	if req.Payee == "" {
		writeErr(w, http.StatusBadRequest, tr, fmt.Errorf("payee is required (bearer checks are not issued over HTTP)"))
		return
	}
	payee, err := principal.Parse(req.Payee)
	if err != nil {
		writeErr(w, http.StatusBadRequest, tr, err)
		return
	}
	lifetime := time.Hour
	if req.LifetimeSeconds > 0 {
		lifetime = time.Duration(req.LifetimeSeconds) * time.Second
	}
	check, err := accounting.WriteCheck(accounting.WriteCheckParams{
		Payor:    s.ident,
		Bank:     g.opts.BankID,
		Account:  req.Account,
		Payee:    payee,
		Currency: req.Currency,
		Amount:   req.Amount,
		Lifetime: lifetime,
		Clock:    g.clk,
		Journal:  g.opts.Journal,
	})
	g.auditRequest(tr, s, req.Account, "check-write", err)
	if err != nil {
		writeErr(w, http.StatusBadRequest, tr, err)
		return
	}
	e := wire.NewEncoder(1024)
	svc.EncodeCheck(e, check)
	writeJSON(w, http.StatusOK, struct {
		Check   string `json:"check"`
		Number  string `json:"number"`
		TraceID string `json:"traceId"`
	}{base64.StdEncoding.EncodeToString(e.Bytes()), check.Number, tr.TraceID})
}

// handleCheckDeposit endorses a received check for deposit — restricted
// to the gateway's bank and the named credit account — and deposits it
// as the mapped principal.
func (g *Gateway) handleCheckDeposit(w http.ResponseWriter, r *http.Request, s *session, tr obs.Trace) {
	var req struct {
		Check   string `json:"check"`
		Account string `json:"account"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, tr, err)
		return
	}
	if req.Check == "" || req.Account == "" {
		writeErr(w, http.StatusBadRequest, tr, fmt.Errorf("check and account are required"))
		return
	}
	raw, err := base64.StdEncoding.DecodeString(req.Check)
	if err != nil {
		writeErr(w, http.StatusBadRequest, tr, fmt.Errorf("check is not base64: %v", err))
		return
	}
	check, err := svc.DecodeCheck(wire.NewDecoder(raw))
	if err != nil {
		writeErr(w, http.StatusBadRequest, tr, err)
		return
	}
	endorsed, err := check.Endorse(s.ident, g.opts.BankID, g.opts.BankID,
		principal.Global{Server: g.opts.BankID, Name: req.Account}, true, g.clk)
	if err != nil {
		g.auditRequest(tr, s, req.Account, "check-deposit", err)
		writeErr(w, http.StatusBadRequest, tr, err)
		return
	}
	ac := svc.NewAcctClient(transport.WithTrace(g.opts.AcctClient, tr), s.ident, g.clk)
	receipt, err := ac.DepositCheck(endorsed, req.Account)
	g.auditRequest(tr, s, req.Account, "check-deposit", err)
	if err != nil {
		mUpstreamErrors.With("acct").Inc()
		writeErr(w, statusForUpstream(err), tr, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Number    string `json:"number"`
		Currency  string `json:"currency"`
		Amount    int64  `json:"amount"`
		Collected bool   `json:"collected"`
		Hops      int    `json:"hops"`
		TraceID   string `json:"traceId"`
	}{receipt.Number, receipt.Currency, receipt.Amount, receipt.Collected, receipt.Hops, tr.TraceID})
}

// handleSession describes the caller's own session.
func (g *Gateway) handleSession(w http.ResponseWriter, r *http.Request, s *session, tr obs.Trace) {
	g.mu.Lock()
	info := SessionInfo{
		Subject:      s.Subject,
		Principal:    s.Principal.String(),
		Groups:       s.Groups,
		Impersonated: s.Impersonated,
		Admin:        s.Admin,
		TokenRef:     s.TokenRef,
		Created:      s.Created,
		Requests:     s.requests,
	}
	g.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// handleSessions lists every session and the redacted token map.
func (g *Gateway) handleSessions(w http.ResponseWriter, r *http.Request, s *session, tr obs.Trace) {
	if !s.Admin {
		writeErr(w, http.StatusForbidden, tr, fmt.Errorf("admin token required"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Sessions []SessionInfo  `json:"sessions"`
		TokenMap []TokenMapInfo `json:"tokenMap"`
	}{g.Sessions(), g.TokenMap()})
}

// handleProxies lists the proxy cache.
func (g *Gateway) handleProxies(w http.ResponseWriter, r *http.Request, s *session, tr obs.Trace) {
	if !s.Admin {
		writeErr(w, http.StatusForbidden, tr, fmt.Errorf("admin token required"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Proxies []EntryInfo `json:"proxies"`
	}{g.cache.Entries()})
}
