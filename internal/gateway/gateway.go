package gateway

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"proxykit/internal/audit"
	"proxykit/internal/authz"
	"proxykit/internal/clock"
	"proxykit/internal/obs"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/statefile"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

// Default lifecycle parameters, overridable in Options.
const (
	// DefaultProxyLifetime is how long the gateway asks granted proxies
	// to live.
	DefaultProxyLifetime = 10 * time.Minute
	// DefaultRenewWithin is how close to expiry a cached proxy must be
	// before use triggers its background renewal.
	DefaultRenewWithin = 2 * time.Minute
	// DefaultRenewInterval is how often the background sweep renews
	// near-expiry proxies for idle sessions.
	DefaultRenewInterval = 30 * time.Second
)

// Options configure a Gateway.
type Options struct {
	// StateDir is the shared deployment state directory; the gateway
	// creates (and registers) identities for mapped principals here, so
	// downstream services can verify their sealed envelopes.
	StateDir string
	// ID is the gateway's own principal, stamped on audit records.
	ID principal.ID
	// Mapping is the token/impersonation config (required).
	Mapping *MappingConfig

	// AuthzClient, GroupClient, AcctClient, EndClient are transport
	// clients for the four downstream services. GroupClient may be nil
	// when no tokens assert groups.
	AuthzClient transport.Client
	GroupClient transport.Client
	AcctClient  transport.Client
	EndClient   transport.Client
	// EndServerID is the end-server principal authz proxies target.
	EndServerID principal.ID
	// BankID is the accounting server's principal (check endorsement).
	BankID principal.ID

	// ProxyLifetime, RenewWithin, RenewInterval tune the proxy cache
	// lifecycle; zero selects the defaults above.
	ProxyLifetime time.Duration
	RenewWithin   time.Duration
	RenewInterval time.Duration

	// Journal receives gateway.map / gateway.request /
	// gateway.proxy-renew records; nil uses an in-memory journal.
	Journal *audit.Journal
	// Logger for operational logging; nil discards. Bearer tokens are
	// never logged — only RedactToken references.
	Logger *slog.Logger
	// Clock for cache expiry and envelope timestamps; nil = system.
	Clock clock.Clock
}

// session is one authenticated (token, subject) pair: the mapped
// principal, its signing identity, and bookkeeping for introspection.
type session struct {
	Principal    principal.ID
	Subject      string
	Groups       []string
	Impersonated bool
	Admin        bool
	TokenRef     string
	Created      time.Time
	requests     uint64

	ident *pubkey.Identity
}

// Gateway is the HTTP edge daemon core: an http.Handler plus the
// session table and proxy cache behind it.
type Gateway struct {
	opts  Options
	auth  *authenticator
	cache *Cache
	clk   clock.Clock
	log   *slog.Logger

	mu       sync.Mutex
	sessions map[string]*session

	stopRenew func()
}

// New builds a Gateway. Call Start to begin background renewal and
// Close to stop it.
func New(opts Options) (*Gateway, error) {
	if opts.Mapping == nil {
		return nil, fmt.Errorf("gateway: nil mapping config")
	}
	if err := opts.Mapping.Validate(); err != nil {
		return nil, err
	}
	if opts.AuthzClient == nil || opts.AcctClient == nil || opts.EndClient == nil {
		return nil, fmt.Errorf("gateway: authz, acct, and end clients are required")
	}
	if opts.ProxyLifetime <= 0 {
		opts.ProxyLifetime = DefaultProxyLifetime
	}
	if opts.RenewWithin <= 0 {
		opts.RenewWithin = DefaultRenewWithin
	}
	if opts.RenewInterval <= 0 {
		opts.RenewInterval = DefaultRenewInterval
	}
	if opts.Clock == nil {
		opts.Clock = clock.System{}
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opts.Journal == nil {
		j, err := audit.New(audit.Options{})
		if err != nil {
			return nil, err
		}
		opts.Journal = j
	}
	g := &Gateway{
		opts:     opts,
		auth:     newAuthenticator(opts.Mapping),
		clk:      opts.Clock,
		log:      opts.Logger,
		sessions: make(map[string]*session),
	}
	g.cache = NewCache(opts.Clock, opts.RenewWithin, g.auditRenewal)
	return g, nil
}

// Start launches the background renewal sweep.
func (g *Gateway) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stopRenew == nil {
		g.stopRenew = g.cache.Start(g.opts.RenewInterval)
	}
}

// Close stops background renewal.
func (g *Gateway) Close() {
	g.mu.Lock()
	stop := g.stopRenew
	g.stopRenew = nil
	g.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// Cache exposes the proxy cache (introspection, tests).
func (g *Gateway) Cache() *Cache { return g.cache }

// auditRenewal is the cache's renewal hook: outcome to the journal,
// keyed by cache key (which names the principal and restriction set,
// never a token).
func (g *Gateway) auditRenewal(key string, err error) {
	rec := audit.Record{
		Kind:    audit.KindGatewayRenew,
		Server:  g.opts.ID,
		Object:  key,
		Op:      "renew",
		Outcome: audit.OutcomeGranted,
	}
	if err != nil {
		rec.Outcome = audit.OutcomeDenied
		rec.Reason = err.Error()
		g.log.Warn("proxy renewal failed", "key", key, "err", err)
	}
	g.opts.Journal.Append(rec)
}

// authenticate resolves the request's bearer token (and optional
// impersonated subject) to a session. It returns an HTTP status and
// error on failure; the raw token never reaches a log or journal.
func (g *Gateway) authenticate(r *http.Request, tr obs.Trace) (*session, int, error) {
	const prefix = "Bearer "
	h := r.Header.Get("Authorization")
	if !strings.HasPrefix(h, prefix) {
		mAuth.With("missing").Inc()
		return nil, http.StatusUnauthorized, fmt.Errorf("missing bearer token")
	}
	token := strings.TrimSpace(strings.TrimPrefix(h, prefix))
	entry, ok := g.auth.lookup(token)
	if !ok {
		mAuth.With("unknown-token").Inc()
		g.log.Warn("unknown bearer token", "tokenRef", RedactToken(token))
		return nil, http.StatusUnauthorized, fmt.Errorf("unknown bearer token")
	}
	tokenRef := RedactToken(token)

	subject := entry.Subject
	impersonated := false
	var (
		pid    principal.ID
		groups []string
	)
	if imp := r.Header.Get("X-Impersonate-Subject"); imp != "" {
		if !entry.Impersonate {
			mAuth.With("denied").Inc()
			mImpersonations.With("not-allowed").Inc()
			g.auditMap(tr, tokenRef, entry.Subject, imp, principal.ID{}, nil, fmt.Errorf("token %q may not impersonate", entry.Subject))
			return nil, http.StatusForbidden, fmt.Errorf("token not entitled to impersonate")
		}
		mapped, gset, err := g.opts.Mapping.mapSubject(imp)
		if err != nil {
			mAuth.With("denied").Inc()
			mImpersonations.With("no-rule").Inc()
			g.auditMap(tr, tokenRef, entry.Subject, imp, principal.ID{}, nil, err)
			return nil, http.StatusForbidden, fmt.Errorf("subject matches no impersonation rule")
		}
		pid, groups, subject, impersonated = mapped, gset, imp, true
		mImpersonations.With("ok").Inc()
	} else {
		if entry.Principal == "" {
			mAuth.With("denied").Inc()
			return nil, http.StatusForbidden, fmt.Errorf("impersonation token requires X-Impersonate-Subject")
		}
		pid, _ = principal.Parse(entry.Principal) // validated at load
		groups = entry.Groups
	}

	key := tokenRef + "|" + subject
	g.mu.Lock()
	if s, ok := g.sessions[key]; ok {
		s.requests++
		g.mu.Unlock()
		mAuth.With("ok").Inc()
		return s, 0, nil
	}
	g.mu.Unlock()

	// First sight of this (token, subject): materialize the principal's
	// signing identity in the shared state directory, which also
	// registers its public key for downstream envelope verification.
	ident, err := statefile.LoadOrCreateIdentity(g.opts.StateDir, pid)
	if err != nil {
		g.auditMap(tr, tokenRef, entry.Subject, subject, pid, groups, err)
		return nil, http.StatusInternalServerError, fmt.Errorf("provision identity: %v", err)
	}
	s := &session{
		Principal:    pid,
		Subject:      subject,
		Groups:       groups,
		Impersonated: impersonated,
		Admin:        entry.Admin,
		TokenRef:     tokenRef,
		Created:      g.clk.Now(),
		requests:     1,
		ident:        ident,
	}
	g.mu.Lock()
	if prior, ok := g.sessions[key]; ok {
		// A concurrent first request won the race; keep its session.
		prior.requests++
		s = prior
	} else {
		g.sessions[key] = s
		mSessions.Set(int64(len(g.sessions)))
	}
	g.mu.Unlock()
	g.auditMap(tr, tokenRef, entry.Subject, subject, pid, groups, nil)
	g.log.Info("session mapped", "tokenRef", tokenRef, "subject", subject,
		"principal", pid.String(), "impersonated", impersonated)
	mAuth.With("ok").Inc()
	return s, 0, nil
}

// auditMap records one mapping decision (kind gateway.map).
func (g *Gateway) auditMap(tr obs.Trace, tokenRef, tokenSubject, subject string, pid principal.ID, groups []string, err error) {
	rec := audit.Record{
		Kind:    audit.KindGatewayMap,
		Server:  g.opts.ID,
		TraceID: tr.TraceID,
		Object:  subject,
		Op:      "map",
		Outcome: audit.OutcomeGranted,
		Detail: map[string]string{
			"tokenRef":     tokenRef,
			"tokenSubject": tokenSubject,
		},
	}
	if !pid.IsZero() {
		rec.Presenters = []principal.ID{pid}
	}
	if len(groups) > 0 {
		rec.Detail["groups"] = strings.Join(groups, ",")
	}
	if err != nil {
		rec.Outcome = audit.OutcomeDenied
		rec.Reason = err.Error()
	}
	g.opts.Journal.Append(rec)
}

// auditRequest records one forwarded operation (kind gateway.request).
func (g *Gateway) auditRequest(tr obs.Trace, s *session, object, op string, err error) {
	rec := audit.Record{
		Kind:       audit.KindGatewayRequest,
		Server:     g.opts.ID,
		TraceID:    tr.TraceID,
		Presenters: []principal.ID{s.Principal},
		Object:     object,
		Op:         op,
		Outcome:    audit.OutcomeGranted,
		Detail:     map[string]string{"subject": s.Subject, "tokenRef": s.TokenRef},
	}
	if err != nil {
		rec.Outcome = audit.OutcomeDenied
		rec.Reason = err.Error()
	}
	g.opts.Journal.Append(rec)
}

// groupProxy returns (possibly from cache) a delegate group proxy
// asserting the session's groups, or nil when it has none.
func (g *Gateway) groupProxy(s *session, tr obs.Trace) (*proxy.Proxy, error) {
	if len(s.Groups) == 0 {
		return nil, nil
	}
	if g.opts.GroupClient == nil {
		return nil, fmt.Errorf("gateway: groups asserted but no group server configured")
	}
	groups := append([]string(nil), s.Groups...)
	sort.Strings(groups)
	key := "group|" + s.Principal.String() + "|" + strings.Join(groups, ",")
	ident := s.ident
	return g.cache.Get(key, tr, func(tr obs.Trace) (*proxy.Proxy, error) {
		gc := svc.NewGroupClient(transport.WithTrace(g.opts.GroupClient, tr), ident, g.clk)
		p, err := gc.Grant(svc.GroupGrantParams{
			Groups:   groups,
			Lifetime: g.opts.ProxyLifetime,
			Delegate: true,
		})
		if err != nil {
			mUpstreamErrors.With("group").Inc()
		}
		return p, err
	})
}

// authzProxy returns (possibly from cache) a delegate authorization
// proxy for (session, object, op), acquiring the session's group proxy
// first when it asserts groups — the cascaded §3.4 path.
func (g *Gateway) authzProxy(s *session, tr obs.Trace, object, op string) (*proxy.Proxy, error) {
	key := "authz|" + s.Principal.String() + "|" + g.opts.EndServerID.String() + "|" + object + "|" + op
	ident := s.ident
	return g.cache.Get(key, tr, func(tr obs.Trace) (*proxy.Proxy, error) {
		var groupPres []*proxy.Presentation
		gp, err := g.groupProxy(s, tr)
		if err != nil {
			return nil, err
		}
		if gp != nil {
			groupPres = append(groupPres, gp.PresentDelegate())
		}
		ac := svc.NewAuthzClient(transport.WithTrace(g.opts.AuthzClient, tr), ident, g.clk)
		p, err := ac.Grant(svc.GrantParams{
			EndServer:    g.opts.EndServerID,
			Objects:      []authz.RequestedObject{{Object: object, Ops: []string{op}}},
			Lifetime:     g.opts.ProxyLifetime,
			Delegate:     true,
			GroupProxies: groupPres,
		})
		if err != nil {
			mUpstreamErrors.With("authz").Inc()
		}
		return p, err
	})
}

// Sessions lists the live sessions for introspection, sorted by
// creation time then subject.
func (g *Gateway) Sessions() []SessionInfo {
	g.mu.Lock()
	out := make([]SessionInfo, 0, len(g.sessions))
	for _, s := range g.sessions {
		out = append(out, SessionInfo{
			Subject:      s.Subject,
			Principal:    s.Principal.String(),
			Groups:       s.Groups,
			Impersonated: s.Impersonated,
			Admin:        s.Admin,
			TokenRef:     s.TokenRef,
			Created:      s.Created,
			Requests:     s.requests,
		})
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].Subject < out[j].Subject
	})
	return out
}

// SessionInfo is one session as reported by /v1/sessions.
type SessionInfo struct {
	Subject      string    `json:"subject"`
	Principal    string    `json:"principal"`
	Groups       []string  `json:"groups,omitempty"`
	Impersonated bool      `json:"impersonated,omitempty"`
	Admin        bool      `json:"admin,omitempty"`
	TokenRef     string    `json:"tokenRef"`
	Created      time.Time `json:"created"`
	Requests     uint64    `json:"requests"`
}

// TokenMapInfo is one mapping-file entry as reported by /v1/sessions:
// the token↔principal map with secrets redacted.
type TokenMapInfo struct {
	TokenRef    string   `json:"tokenRef"`
	Subject     string   `json:"subject"`
	Principal   string   `json:"principal,omitempty"`
	Groups      []string `json:"groups,omitempty"`
	Impersonate bool     `json:"impersonate,omitempty"`
	Admin       bool     `json:"admin,omitempty"`
}

// TokenMap reports the configured token mapping, redacted.
func (g *Gateway) TokenMap() []TokenMapInfo {
	out := make([]TokenMapInfo, 0, len(g.opts.Mapping.Tokens))
	for _, t := range g.opts.Mapping.Tokens {
		out = append(out, TokenMapInfo{
			TokenRef:    RedactToken(t.Token),
			Subject:     t.Subject,
			Principal:   t.Principal,
			Groups:      t.Groups,
			Impersonate: t.Impersonate,
			Admin:       t.Admin,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Subject < out[j].Subject })
	return out
}
