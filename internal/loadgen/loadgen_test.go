package loadgen

import (
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// smokeDuration is how long TestLoadgenSmoke generates arrivals. The
// default keeps `go test ./...` fast; `make loadgen-smoke` raises it.
var smokeDuration = flag.Duration("loadgen.duration", 2*time.Second, "arrival window for TestLoadgenSmoke")

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("authorize=0.4, transfer=0.3,deposit=0.2,gateway=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 4 || mix["authorize"] != 0.4 || mix["gateway"] != 0.1 {
		t.Fatalf("mix = %v", mix)
	}
	if mix, err := ParseMix(""); err != nil || len(mix) != 0 {
		t.Fatalf("empty mix = %v, %v", mix, err)
	}
	for _, bad := range []string{"authorize", "authorize=x", "authorize=-1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted a malformed mix", bad)
		}
	}
}

func TestQuantile(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	if q := quantile(sorted, 0.50); q != 50*time.Millisecond {
		t.Errorf("p50 = %v", q)
	}
	if q := quantile(sorted, 0.99); q != 99*time.Millisecond {
		t.Errorf("p99 = %v", q)
	}
	if q := quantile(sorted, 0.999); q != 100*time.Millisecond {
		t.Errorf("p99.9 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty = %v", q)
	}
}

func TestRunValidation(t *testing.T) {
	noop := []Op{{Name: "noop", Do: func(int) error { return nil }}}
	if _, err := Run(Config{Rate: 0, Duration: time.Second}, noop); err == nil {
		t.Error("Run accepted rate 0")
	}
	if _, err := Run(Config{Rate: 10, Duration: 0}, noop); err == nil {
		t.Error("Run accepted duration 0")
	}
	if _, err := Run(Config{Rate: 10, Duration: time.Second, SLO: "nonsense"}, noop); err == nil {
		t.Error("Run accepted a malformed SLO spec")
	}
	if _, err := Run(Config{Rate: 10, Duration: time.Second, Mix: map[string]float64{"missing": 1}}, noop); err == nil {
		t.Error("Run accepted a mix naming an unknown op")
	}
	if _, err := Run(Config{Rate: 10, Duration: time.Second, Mix: map[string]float64{"noop": 0}}, noop); err == nil {
		t.Error("Run accepted a mix selecting no ops")
	}
}

// TestRunOpenLoop drives Run against in-memory ops and checks the
// report's accounting: offered matches the rate×duration schedule,
// every arrival completes, errors are counted, and the SLO engine's
// verdicts ride along.
func TestRunOpenLoop(t *testing.T) {
	ops := []Op{
		{Name: "ok", Do: func(int) error { return nil }},
		{Name: "fail", Do: func(int) error { return errors.New("boom") }},
	}
	rep, err := Run(Config{
		Rate: 500, Duration: 200 * time.Millisecond, Principals: 3, Seed: 7,
		Mix: map[string]float64{"ok": 0.8, "fail": 0.2},
		SLO: "ok<1s@p99",
	}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Completed != rep.Offered {
		t.Fatalf("offered=%d completed=%d", rep.Offered, rep.Completed)
	}
	if rep.Ops["ok"].Count == 0 || rep.Ops["fail"].Count == 0 {
		t.Fatalf("ops = %+v", rep.Ops)
	}
	if rep.Ops["fail"].Errors != rep.Ops["fail"].Count {
		t.Fatalf("fail op: %d errors of %d calls", rep.Ops["fail"].Errors, rep.Ops["fail"].Count)
	}
	if rep.Ops["ok"].Errors != 0 {
		t.Fatalf("ok op reported %d errors", rep.Ops["ok"].Errors)
	}
	if rep.AchievedRatePerSec <= 0 {
		t.Fatal("achieved rate missing")
	}
	if len(rep.SLO) != 1 || rep.SLO[0].Method != "ok" {
		t.Fatalf("slo report = %+v", rep.SLO)
	}
	// The same seed replays the same schedule.
	rep2, err := Run(Config{
		Rate: 500, Duration: 200 * time.Millisecond, Principals: 3, Seed: 7,
		Mix: map[string]float64{"ok": 0.8, "fail": 0.2},
	}, ops)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Ops["ok"].Count != rep.Ops["ok"].Count || rep2.Ops["fail"].Count != rep.Ops["fail"].Count {
		t.Fatalf("seeded runs diverged: %+v vs %+v", rep.Ops, rep2.Ops)
	}
}

// TestRunSeededDeterminism: a fixed seed plus a fixed op count pin the
// whole schedule — two independent runs report the same per-op mix and
// drive two fresh topologies into identical balance state (transfers
// and deposits move fixed amounts, so the final balances depend only
// on the drawn schedule, not on execution interleaving).
func TestRunSeededDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("topology runs are not short")
	}
	run := func() (map[string]*OpReport, string) {
		t.Helper()
		topo, err := NewTopology(4)
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		rep, err := Run(Config{
			Rate: 2000, MaxOps: 300, Principals: 4, Seed: 11,
			Mix: map[string]float64{"authorize": 0.3, "transfer": 0.3, "deposit": 0.3, "gateway": 0.1},
		}, topo.Ops())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Offered != 300 || rep.Completed != 300 {
			t.Fatalf("offered=%d completed=%d, want 300 each", rep.Offered, rep.Completed)
		}
		// Determinism only holds if every op applied its state change.
		for name, op := range rep.Ops {
			if op.Errors != 0 {
				t.Fatalf("op %s: %d/%d errors", name, op.Errors, op.Count)
			}
		}
		return rep.Ops, topo.StateDigest()
	}
	ops1, dig1 := run()
	ops2, dig2 := run()
	for name, op := range ops1 {
		if op.Count != ops2[name].Count {
			t.Errorf("op %s count diverged: %d vs %d", name, op.Count, ops2[name].Count)
		}
	}
	if dig1 != dig2 {
		t.Errorf("seeded runs left different topology state:\n  %s\n  %s", dig1, dig2)
	}
}

// TestLoadgenSmoke is the `make loadgen-smoke` entry point: the full
// in-process topology under a seeded mixed workload, judged against
// the standard SLO spec, with the report round-tripping as the
// BENCH_PR7.json document.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen smoke is not short")
	}
	topo, err := NewTopology(6)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	slo := "end.request<250ms@p99,acct.transfer<250ms@p99,acct.deposit-check<500ms@p99,POST /v1/authorize<1s@p99"
	rep, err := Run(Config{
		Rate:       50,
		Duration:   *smokeDuration,
		Principals: 6,
		Mix:        map[string]float64{"authorize": 0.4, "transfer": 0.3, "deposit": 0.2, "gateway": 0.1},
		Seed:       42,
		SLO:        slo,
	}, topo.Ops())
	if err != nil {
		t.Fatal(err)
	}

	if rep.Offered == 0 || rep.Completed != rep.Offered {
		t.Fatalf("offered=%d completed=%d", rep.Offered, rep.Completed)
	}
	for _, name := range []string{"authorize", "transfer", "deposit", "gateway"} {
		op := rep.Ops[name]
		if op == nil || op.Count == 0 {
			t.Fatalf("op %s never ran: %+v", name, rep.Ops)
		}
		if op.Errors != 0 {
			t.Errorf("op %s: %d/%d errors", name, op.Errors, op.Count)
		}
		if op.P50Ns <= 0 || op.P99Ns < op.P50Ns || op.MaxNs < op.P99Ns {
			t.Errorf("op %s distribution malformed: %+v", name, op)
		}
	}
	if len(rep.SLO) != 4 {
		t.Fatalf("slo report has %d objectives, want 4: %+v", len(rep.SLO), rep.SLO)
	}
	for _, o := range rep.SLO {
		if o.Total == 0 {
			t.Errorf("objective %s saw no observations", o.Method)
		}
	}

	// The report must be a well-formed BENCH_PR7.json document.
	path := filepath.Join(t.TempDir(), "BENCH_PR7.json")
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var back Report
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Config.Seed != 42 || back.Config.SLO != slo || back.Offered != rep.Offered {
		t.Fatalf("round-tripped report diverged: %+v", back.Config)
	}
	if len(back.Ops) != 4 || len(back.SLO) != 4 {
		t.Fatalf("round-tripped report lost sections: ops=%d slo=%d", len(back.Ops), len(back.SLO))
	}
}
