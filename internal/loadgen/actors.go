package loadgen

// Scenario actors: the individual operations a simulated principal can
// perform against the topology, factored out of the load-generator op
// table so richer harnesses (the soak world) can compose them with
// their own scheduling, amounts, and trace contexts.

import (
	"context"
	"fmt"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/kerberos"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/svc"
)

// Authorize presents principal p's cascaded authorization proxy to the
// end-server over TCP (method end.request).
func (t *Topology) Authorize(p int) error {
	s := t.sims[p%len(t.sims)]
	_, err := s.end.Request(svc.RequestParams{
		Object: "/shared/doc", Op: "read",
		Proxies: []*proxy.Presentation{s.authz.PresentDelegate()},
	})
	return err
}

// Transfer moves amount dollars from principal p to the next principal
// at the main bank (method acct.transfer).
func (t *Topology) Transfer(p int, amount int64) error {
	s := t.sims[p%len(t.sims)]
	to := t.sims[(p+1)%len(t.sims)]
	if to == s {
		return nil // a single principal cannot transfer to itself
	}
	return s.bank.Transfer(s.acct, to.acct, "dollars", amount)
}

// Deposit writes a same-bank check from principal p to the next
// principal, who endorses and deposits it over TCP (the §7.7 instrument
// flow with no clearing hop).
func (t *Topology) Deposit(p int, amount int64) error {
	payor := t.sims[p%len(t.sims)]
	payee := t.sims[(p+1)%len(t.sims)]
	check, err := accounting.WriteCheck(accounting.WriteCheckParams{
		Payor: payor.ident, Bank: t.bank.ID, Account: payor.acct,
		Payee: payee.ident.ID, Currency: "dollars", Amount: amount,
		Lifetime: time.Hour,
	})
	if err != nil {
		return err
	}
	endorsed, err := check.Endorse(payee.ident, t.bank.ID, t.bank.ID, t.bank.Global(payee.acct), true, nil)
	if err != nil {
		return err
	}
	_, err = payee.bank.DepositCheck(endorsed, payee.acct)
	return err
}

// Gateway authorizes through the HTTP edge with principal p's bearer
// token.
func (t *Topology) Gateway(p int) error { return t.opGateway(p) }

// Login performs the full Kerberos exchange for principal p: password
// AS login for a TGT, then a TGS request for a service ticket to the
// end-server. Requires Options.KDC.
func (t *Topology) Login(p int) error {
	s := t.sims[p%len(t.sims)]
	if t.kdc == nil {
		return fmt.Errorf("loadgen: topology has no KDC")
	}
	c, err := kerberos.NewClientWithPassword(s.ident.ID, s.password, nil)
	if err != nil {
		return err
	}
	creds, err := c.Login(t.kdcC, t.kdc.TGS(), 10*time.Minute, nil)
	if err != nil {
		return fmt.Errorf("AS login: %w", err)
	}
	if _, err := c.RequestTicket(t.kdcC, creds, t.fileID, 10*time.Minute, nil); err != nil {
		return fmt.Errorf("TGS request: %w", err)
	}
	return nil
}

// ClearingDeposit runs the Fig. 5 cross-bank flow for principal p: a
// check drawn on the principal's drawee-bank account, endorsed for
// deposit to its collector-bank account, presented at the collector —
// which clears it through the inter-bank hop. Returns the check number
// so callers can track it through journals. Requires Options.SecondBank.
func (t *Topology) ClearingDeposit(ctx context.Context, p int, amount int64) (string, error) {
	s := t.sims[p%len(t.sims)]
	if t.bank2 == nil {
		return "", fmt.Errorf("loadgen: topology has no second bank")
	}
	check, err := accounting.WriteCheck(accounting.WriteCheckParams{
		Payor: s.ident, Bank: t.bank2.ID, Account: s.acct2,
		Payee: s.ident.ID, Currency: "dollars", Amount: amount,
		Lifetime: time.Hour,
	})
	if err != nil {
		return "", err
	}
	return check.Number, t.presentAtCollector(ctx, s, check)
}

// CertifiedDeposit is ClearingDeposit with a certification hold first:
// the drawee certifies the check (placing a hold on the payor account),
// then the certified check clears cross-bank, consuming the hold.
func (t *Topology) CertifiedDeposit(ctx context.Context, p int, amount int64) (string, error) {
	s := t.sims[p%len(t.sims)]
	if t.bank2 == nil {
		return "", fmt.Errorf("loadgen: topology has no second bank")
	}
	check, err := accounting.WriteCheck(accounting.WriteCheckParams{
		Payor: s.ident, Bank: t.bank2.ID, Account: s.acct2,
		Payee: s.ident.ID, Currency: "dollars", Amount: amount,
		Lifetime: time.Hour,
	})
	if err != nil {
		return "", err
	}
	if _, err := t.bank2.CertifyCtx(ctx, s.acct2, []principal.ID{s.ident.ID}, check); err != nil {
		return "", fmt.Errorf("certify: %w", err)
	}
	return check.Number, t.presentAtCollector(ctx, s, check)
}

// presentAtCollector endorses a drawee-bank check to the principal's
// collector-bank account and presents it there in-process, so the
// collector's clearing hop (with whatever fault injector is installed)
// runs under the caller's trace context.
func (t *Topology) presentAtCollector(ctx context.Context, s *sim, check *accounting.Check) error {
	endorsed, err := check.Endorse(s.ident, t.bank.ID, t.bank.ID, t.bank.Global(s.acct), true, nil)
	if err != nil {
		return err
	}
	_, err = t.bank.DepositCheckCtx(ctx, endorsed, []principal.ID{s.ident.ID}, s.acct)
	return err
}

// ChurnToggle flips principal p's membership in its churn group and
// verifies the authorization cascade tracks the change: after joining,
// a fresh group proxy → authz proxy → end-server request for /churn/doc
// must succeed; after leaving, the group grant must be refused.
// Requires Options.ChurnGroups > 0.
func (t *Topology) ChurnToggle(p int) error {
	p = p % len(t.sims)
	s := t.sims[p]
	if t.opts.ChurnGroups == 0 {
		return fmt.Errorf("loadgen: topology has no churn groups")
	}
	g := churnGroupName(p % t.opts.ChurnGroups)
	t.churnMu[p].Lock()
	defer t.churnMu[p].Unlock()

	member, err := t.groupSrv.IsMember(g, s.ident.ID, nil)
	if err != nil {
		return err
	}
	gc := svc.NewGroupClient(t.groupC, s.ident, nil)
	if member {
		t.groupSrv.RemoveMember(g, s.ident.ID)
		if _, err := gc.Grant(svc.GroupGrantParams{Groups: []string{g}, Lifetime: time.Minute}); err == nil {
			return fmt.Errorf("churn %s: grant succeeded after removal from %s", s.acct, g)
		}
		return nil
	}
	t.groupSrv.AddMember(g, s.ident.ID)
	gp, err := gc.Grant(svc.GroupGrantParams{Groups: []string{g}, Lifetime: time.Minute, Delegate: true})
	if err != nil {
		return fmt.Errorf("churn %s: grant refused after joining %s: %w", s.acct, g, err)
	}
	ap, err := svc.NewAuthzClient(t.authzC, s.ident, nil).Grant(svc.GrantParams{
		EndServer: t.fileID, Lifetime: time.Minute, Delegate: true,
		GroupProxies: []*proxy.Presentation{gp.PresentDelegate()},
	})
	if err != nil {
		return fmt.Errorf("churn %s: authz grant via %s: %w", s.acct, g, err)
	}
	if _, err := s.end.Request(svc.RequestParams{
		Object: "/churn/doc", Op: "read",
		Proxies: []*proxy.Presentation{ap.PresentDelegate()},
	}); err != nil {
		return fmt.Errorf("churn %s: end request via %s: %w", s.acct, g, err)
	}
	return nil
}
