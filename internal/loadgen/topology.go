package loadgen

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"proxykit/internal/accounting"
	"proxykit/internal/acl"
	"proxykit/internal/authz"
	"proxykit/internal/endserver"
	"proxykit/internal/gateway"
	"proxykit/internal/group"
	"proxykit/internal/principal"
	"proxykit/internal/proxy"
	"proxykit/internal/pubkey"
	"proxykit/internal/statefile"
	"proxykit/internal/svc"
	"proxykit/internal/transport"
)

// Realm is the topology's Kerberos-style realm name.
const Realm = "LOAD.EXAMPLE.ORG"

// sim is one simulated principal with everything pre-provisioned at
// setup time so the measured operations are steady-state: an identity,
// a funded account, a cascaded authorization proxy for the end-server
// object, sealed-envelope service clients, and a gateway bearer token.
type sim struct {
	ident *pubkey.Identity
	acct  string
	authz *proxy.Proxy
	end   *svc.EndClient
	bank  *svc.AcctClient
	token string
}

// Topology is a full in-process deployment — group, authz, end-server,
// and accounting daemons over real TCP plus the HTTP gateway — with N
// simulated principals provisioned against it. It is the fixture
// `cmd/loadgen` and the loadgen-smoke CI target drive.
type Topology struct {
	StateDir string

	GatewayURL string

	bank    *accounting.Server
	fileID  principal.ID
	sims    []*sim
	httpc   *http.Client
	closers []func()
}

// Close tears down servers, clients, and the state directory.
func (t *Topology) Close() {
	for i := len(t.closers) - 1; i >= 0; i-- {
		t.closers[i]()
	}
}

// NewTopology stands up the deployment and provisions n principals:
// every principal is in the "staff" group, staff may read /shared/doc
// on the end-server, each principal owns a funded account, and each
// holds a delegate authorization proxy acquired through the real
// group-server → authz-server cascade.
func NewTopology(n int) (*Topology, error) {
	if n <= 0 {
		n = 1
	}
	state, err := os.MkdirTemp("", "loadgen-state-")
	if err != nil {
		return nil, err
	}
	t := &Topology{StateDir: state}
	t.closers = append(t.closers, func() { _ = os.RemoveAll(state) })
	if err := t.build(n); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

func (t *Topology) build(n int) error {
	ids := map[string]*pubkey.Identity{}
	for _, name := range []string{"groups", "authz", "file/srv1", "bank"} {
		ident, err := statefile.CreateIdentity(t.StateDir, principal.New(name, Realm))
		if err != nil {
			return err
		}
		ids[name] = ident
	}
	t.fileID = ids["file/srv1"].ID
	resolve := statefile.DynamicResolver(t.StateDir)

	addrs := map[string]string{}
	serve := func(name string, mux *transport.Mux) error {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := transport.NewTCPServer(l, mux)
		t.closers = append(t.closers, func() { _ = srv.Close() })
		addrs[name] = srv.Addr().String()
		return nil
	}
	dial := func(name string) (*transport.TCPClient, error) {
		c, err := transport.DialTCP(addrs[name], 5*time.Second)
		if err != nil {
			return nil, err
		}
		t.closers = append(t.closers, func() { _ = c.Close() })
		return c, nil
	}

	groupSrv := group.New(ids["groups"], nil)
	authzSrv := authz.New(ids["authz"], nil)
	authzSrv.AddRule(authz.Rule{
		EndServer: t.fileID,
		Object:    "/shared/doc",
		Subject:   acl.Subject{Groups: []principal.Global{groupSrv.Global("staff")}},
		Ops:       []string{"read"},
	})
	fileSrv := endserver.New(t.fileID, &proxy.VerifyEnv{ResolveIdentity: resolve}, nil)
	fileSrv.SetACL("/shared/doc", acl.New(acl.PrincipalEntry(ids["authz"].ID, "read")))
	t.bank = accounting.NewServer(ids["bank"], resolve, nil)

	// Provision principals before the servers take traffic.
	mapping := &gateway.MappingConfig{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%d", i)
		ident, err := statefile.CreateIdentity(t.StateDir, principal.New(name, Realm))
		if err != nil {
			return err
		}
		groupSrv.AddMember("staff", ident.ID)
		if err := t.bank.CreateAccount(name, ident.ID); err != nil {
			return err
		}
		if err := t.bank.Mint(name, "dollars", 1_000_000_000); err != nil {
			return err
		}
		token := fmt.Sprintf("tok-%s-%s", name, ident.Public().KeyID())
		mapping.Tokens = append(mapping.Tokens, gateway.TokenEntry{
			Token:     token,
			Subject:   name,
			Principal: name + "@" + Realm,
			Groups:    []string{"staff"},
		})
		t.sims = append(t.sims, &sim{ident: ident, acct: name, token: token})
	}

	if err := serve("groups", svc.NewGroupService(groupSrv, resolve, nil).Mux()); err != nil {
		return err
	}
	if err := serve("authz", svc.NewAuthzService(authzSrv, resolve, nil).Mux()); err != nil {
		return err
	}
	if err := serve("file", svc.NewEndService(fileSrv, resolve, nil).Mux()); err != nil {
		return err
	}
	if err := serve("bank", svc.NewAcctService(t.bank, resolve, nil).Mux()); err != nil {
		return err
	}

	groupC, err := dial("groups")
	if err != nil {
		return err
	}
	authzC, err := dial("authz")
	if err != nil {
		return err
	}
	fileC, err := dial("file")
	if err != nil {
		return err
	}
	bankC, err := dial("bank")
	if err != nil {
		return err
	}

	// Each principal walks the real cascade once at setup: group proxy
	// from the group server, then a delegate authorization proxy from
	// the authz server presenting it. The authorize op then presents
	// that proxy per request — the paper's steady state, where grants
	// are amortized over many end-server requests.
	for _, s := range t.sims {
		gp, err := svc.NewGroupClient(groupC, s.ident, nil).Grant(svc.GroupGrantParams{
			Groups: []string{"staff"}, Lifetime: time.Hour, Delegate: true,
		})
		if err != nil {
			return fmt.Errorf("provision %s: group grant: %w", s.acct, err)
		}
		ap, err := svc.NewAuthzClient(authzC, s.ident, nil).Grant(svc.GrantParams{
			EndServer: t.fileID, Lifetime: time.Hour, Delegate: true,
			GroupProxies: []*proxy.Presentation{gp.PresentDelegate()},
		})
		if err != nil {
			return fmt.Errorf("provision %s: authz grant: %w", s.acct, err)
		}
		s.authz = ap
		s.end = svc.NewEndClient(fileC, s.ident, nil)
		s.bank = svc.NewAcctClient(bankC, s.ident, nil)
	}

	// The HTTP edge: a real gatewayd core on a real listener.
	gw, err := gateway.New(gateway.Options{
		StateDir:    t.StateDir,
		ID:          principal.New("gateway", Realm),
		Mapping:     mapping,
		AuthzClient: authzC,
		GroupClient: groupC,
		AcctClient:  bankC,
		EndClient:   fileC,
		EndServerID: t.fileID,
		BankID:      ids["bank"].ID,
	})
	if err != nil {
		return err
	}
	t.closers = append(t.closers, gw.Close)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	web := &http.Server{Handler: gw.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = web.Serve(l) }()
	t.closers = append(t.closers, func() { _ = web.Close() })
	t.GatewayURL = "http://" + l.Addr().String()
	t.httpc = &http.Client{Timeout: 30 * time.Second}
	return nil
}

// Ops returns the four workload operations over this topology. The
// principal index selects which sim acts.
func (t *Topology) Ops() []Op {
	return []Op{
		{Name: "authorize", Do: t.opAuthorize},
		{Name: "transfer", Do: t.opTransfer},
		{Name: "deposit", Do: t.opDeposit},
		{Name: "gateway", Do: t.opGateway},
	}
}

// opAuthorize presents the principal's cascaded authorization proxy to
// the end-server (method end.request).
func (t *Topology) opAuthorize(p int) error {
	s := t.sims[p%len(t.sims)]
	_, err := s.end.Request(svc.RequestParams{
		Object: "/shared/doc", Op: "read",
		Proxies: []*proxy.Presentation{s.authz.PresentDelegate()},
	})
	return err
}

// opTransfer moves one dollar to the next principal's account (method
// acct.transfer).
func (t *Topology) opTransfer(p int) error {
	s := t.sims[p%len(t.sims)]
	to := t.sims[(p+1)%len(t.sims)]
	if to == s {
		return nil // a single principal cannot transfer to itself
	}
	return s.bank.Transfer(s.acct, to.acct, "dollars", 1)
}

// opDeposit writes a check to the next principal, who endorses and
// deposits it (method acct.depositCheck). The check write and
// endorsement are client-side crypto; only the deposit RPC is the
// measured server interaction, but the full §7.7 instrument flow runs.
func (t *Topology) opDeposit(p int) error {
	payor := t.sims[p%len(t.sims)]
	payee := t.sims[(p+1)%len(t.sims)]
	check, err := accounting.WriteCheck(accounting.WriteCheckParams{
		Payor: payor.ident, Bank: t.bank.ID, Account: payor.acct,
		Payee: payee.ident.ID, Currency: "dollars", Amount: 1,
		Lifetime: time.Hour,
	})
	if err != nil {
		return err
	}
	endorsed, err := check.Endorse(payee.ident, t.bank.ID, t.bank.ID, t.bank.Global(payee.acct), true, nil)
	if err != nil {
		return err
	}
	_, err = payee.bank.DepositCheck(endorsed, payee.acct)
	return err
}

// opGateway authorizes through the HTTP edge with the principal's
// bearer token (route "POST /v1/authorize" → end.request downstream).
func (t *Topology) opGateway(p int) error {
	s := t.sims[p%len(t.sims)]
	req, err := http.NewRequest("POST", t.GatewayURL+"/v1/authorize",
		bytes.NewReader([]byte(`{"object":"/shared/doc","op":"read"}`)))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+s.token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("gateway authorize: %s", resp.Status)
	}
	return nil
}
